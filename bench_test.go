// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md §5.
//
// Regeneration benches (one per experiment):
//
//	BenchmarkTable1    — Modified-Huffman optimality simulation (Table 1)
//	BenchmarkTable2    — Methods I–III over representative circuits (Table 2)
//	BenchmarkTable3    — Methods IV–VI over representative circuits (Table 3)
//	BenchmarkSummary   — all six methods + Section 4 summary ratios
//	BenchmarkFigure1   — the Figure 1 decomposition example
//
// Run the full-size experiments with cmd/tables; the benches use reduced
// workloads so `go test -bench=.` stays laptop-friendly. Custom metrics
// (uW, area) are attached so regressions in result quality — not just
// speed — show up in benchmark diffs.
package powermap

import (
	"context"
	"fmt"
	"testing"

	"powermap/internal/core"
	"powermap/internal/decomp"
	"powermap/internal/eval"
	"powermap/internal/huffman"
	"powermap/internal/mapper"
)

// benchCircuits are the representative rows used by the table benches.
var benchCircuits = []string{"cm42a", "s208", "alu2"}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := eval.Table1(60, 1993)
		if len(rows) != 4 {
			b.Fatal("table 1 shape broken")
		}
		b.ReportMetric(rows[3].PercentOptimal, "%opt-n6")
	}
}

func benchTable(b *testing.B, methods []Method) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunSuite(context.Background(), methods, core.Options{Style: Static}, benchCircuits)
		if err != nil {
			b.Fatal(err)
		}
		power, area := 0.0, 0.0
		for _, r := range rows {
			for _, rep := range r.Results {
				power += rep.PowerUW
				area += rep.GateArea
			}
		}
		b.ReportMetric(power, "uW")
		b.ReportMetric(area, "area")
	}
}

func BenchmarkTable2(b *testing.B) {
	benchTable(b, []Method{MethodI, MethodII, MethodIII})
}

func BenchmarkTable3(b *testing.B) {
	benchTable(b, []Method{MethodIV, MethodV, MethodVI})
}

func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunSuite(context.Background(), Methods(), core.Options{Style: Static}, benchCircuits)
		if err != nil {
			b.Fatal(err)
		}
		s := eval.Summarize(rows)
		b.ReportMetric(s.PdPower, "%pd-power")
		b.ReportMetric(s.PdArea, "%pd-area")
	}
}

func BenchmarkFigure1(b *testing.B) {
	alg := huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: huffman.DominoP}
	leaves := []huffman.Signal{
		huffman.SignalFromProb(0.3), huffman.SignalFromProb(0.4),
		huffman.SignalFromProb(0.7), huffman.SignalFromProb(0.5),
	}
	for i := 0; i < b.N; i++ {
		tr := huffman.Build[huffman.Signal](alg, leaves)
		sr := huffman.TotalCost[huffman.Signal](alg, tr) + 0.3 + 0.4 + 0.7 + 0.5
		if sr > 2.146+1e-9 {
			b.Fatalf("Figure 1 regression: SR = %v worse than configuration A", sr)
		}
	}
}

// BenchmarkFlow measures the end-to-end flow with observability off (nil
// scope, the default fast path) and on (full span + metric collection).
// The off variant is the regression guard: instrumentation must stay a
// nil-check away from free when no scope is installed.
func BenchmarkFlow(b *testing.B) {
	bench, err := BenchmarkByName("s208")
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Build()
	run := func(b *testing.B, sc *Scope) {
		for i := 0; i < b.N; i++ {
			res, err := Synthesize(src, Options{Method: MethodV, Style: Static, Obs: sc})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Report.PowerUW, "uW")
		}
	}
	b.Run("obs-off", func(b *testing.B) { run(b, nil) })
	b.Run("obs-on", func(b *testing.B) {
		sc := NewScope(ObsConfig{})
		run(b, sc)
		sn := sc.Snapshot()
		b.ReportMetric(float64(len(sn.Counters)), "counters")
	})
}

// --- Ablation benches (DESIGN.md §5) ---

// synthAblation measures one flow variant on alu2, reporting power/area.
func synthAblation(b *testing.B, o Options) {
	bench, err := BenchmarkByName("alu2")
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Build()
	o.Style = Static
	for i := 0; i < b.N; i++ {
		res, err := Synthesize(src, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.PowerUW, "uW")
		b.ReportMetric(res.Report.GateArea, "area")
		b.ReportMetric(res.Report.Delay, "ns")
	}
}

func BenchmarkAblationDAGHeuristic(b *testing.B) {
	// Fanout-division DAG matching vs strict tree partitioning (§3.3).
	b.Run("fanout-division", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV})
	})
	b.Run("tree-partition", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, TreeMode: true})
	})
}

func BenchmarkAblationEpsilon(b *testing.B) {
	// Curve ε-pruning: quality vs curve-size trade-off (§3.1).
	b.Run("exact", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, Epsilon: -1})
	})
	b.Run("eps0.05", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, Epsilon: 0.05})
	})
	b.Run("eps0.5", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, Epsilon: 0.5})
	})
}

func BenchmarkAblationDecomposition(b *testing.B) {
	// Conventional vs MINPOWER vs bounded-height (§2).
	for _, strat := range []struct {
		name string
		s    Strategy
	}{
		{"conventional", Conventional},
		{"minpower", MinPower},
		{"bounded", BoundedMinPower},
	} {
		b.Run(strat.name, func(b *testing.B) {
			synthAblation(b, Options{Decomposition: strat.s, Mapping: PowerDelay})
		})
	}
}

func BenchmarkAblationPowerAccounting(b *testing.B) {
	// Method 1 vs Method 2 dynamic-power accounting (§3.1). Method 1 uses
	// exact pin capacitances at the mapped parent; Method 2 prices each
	// node's own charge with the default load (the unknown-load problem).
	b.Run("method1", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV})
	})
	b.Run("method2", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, PowerMethod2: true})
	})
}

func BenchmarkAblationStrongSimplify(b *testing.B) {
	// Espresso-style node simplification vs the cheap containment pass
	// (extension; changes the freedom left to the decomposition).
	b.Run("cheap", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV})
	})
	b.Run("strong", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, StrongSimplify: true})
	})
}

func BenchmarkAblationStrash(b *testing.B) {
	// Structural hashing of the subject graph (extension): shrinks the
	// mapped netlist but narrows the decomposition-strategy gap, which is
	// why it is off by default (the paper's pipeline has no sharing pass).
	b.Run("off", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV})
	})
	b.Run("on", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, Strash: true})
	})
}

func BenchmarkAblationExactCosting(b *testing.B) {
	// Closed-form independence costs vs global-BDD exact costs (§1.4).
	b.Run("closed-form", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV})
	})
	b.Run("bdd-exact", func(b *testing.B) {
		synthAblation(b, Options{Method: MethodV, Exact: true})
	})
}

func BenchmarkAblationTreeConstruction(b *testing.B) {
	// Huffman vs Modified Huffman vs balanced on a quasi-linear instance:
	// Huffman and Modified Huffman must tie (Theorem 2.2); balanced pays.
	alg := huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: huffman.DominoP}
	leaves := make([]huffman.Signal, 12)
	for i := range leaves {
		leaves[i] = huffman.SignalFromProb(float64(i+1) / 13)
	}
	b.Run("huffman", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := huffman.Build[huffman.Signal](alg, leaves)
			b.ReportMetric(huffman.TotalCost[huffman.Signal](alg, tr), "activity")
		}
	})
	b.Run("modified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := huffman.BuildModified[huffman.Signal](alg, leaves)
			b.ReportMetric(huffman.TotalCost[huffman.Signal](alg, tr), "activity")
		}
	})
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := huffman.BuildBalanced[huffman.Signal](alg, leaves)
			b.ReportMetric(huffman.TotalCost[huffman.Signal](alg, tr), "activity")
		}
	})
	b.Run("bounded-L4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := huffman.BuildBounded[huffman.Signal](alg, leaves, 4, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(huffman.TotalCost[huffman.Signal](alg, tr), "activity")
		}
	})
}

func BenchmarkDriveRecovery(b *testing.B) {
	// Post-mapping drive-strength power recovery on a timing-pressed
	// ad-map netlist (extension; see EXPERIMENTS.md).
	bench, err := BenchmarkByName("s208")
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Build()
	lib := Lib2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Synthesize(src, Options{Method: MethodI, Relax: Float64(0.0001), Style: Static, Library: lib})
		if err != nil {
			b.Fatal(err)
		}
		before := res.Report.PowerUW
		res.Netlist.RecoverDrive(lib, nil)
		b.ReportMetric(res.Netlist.Report.PowerUW, "uW")
		b.ReportMetric(100*(res.Netlist.Report.PowerUW/before-1), "%change")
	}
}

func BenchmarkDecomposeOnly(b *testing.B) {
	// Raw decomposition throughput on a mid-size circuit.
	bench, err := BenchmarkByName("s344")
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := decomp.Decompose(context.Background(), src, decomp.Options{Strategy: decomp.MinPower, Style: huffman.Static})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalActivity, "activity")
	}
}

func BenchmarkMapOnly(b *testing.B) {
	// Raw mapping throughput on a prepared subject graph.
	bench, err := BenchmarkByName("s344")
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Build()
	d, err := decomp.Decompose(context.Background(), src, decomp.Options{Strategy: decomp.MinPower, Style: huffman.Static})
	if err != nil {
		b.Fatal(err)
	}
	lib := Lib2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl, err := mapper.Map(context.Background(), d.Network, d.Model, mapper.Options{
			Objective: mapper.PowerDelay, Library: lib, Relax: mapper.Float64(0.15),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(nl.Report.PowerUW, "uW")
	}
}

// BenchmarkSynthesizeParallel measures the end-to-end flow at several
// worker-pool sizes on a mid-size circuit. On a multi-core host the
// workers>1 variants should win; on a single-CPU host they only measure
// the pool's overhead, since every schedule degenerates to one runner.
func BenchmarkSynthesizeParallel(b *testing.B) {
	bench, err := BenchmarkByName("alu2")
	if err != nil {
		b.Fatal(err)
	}
	src := bench.Build()
	lib := Lib2()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := SynthesizeContext(context.Background(), src, Options{
					Method: MethodVI, Style: Static, Workers: w, Library: lib,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Report.PowerUW, "uW")
			}
		})
	}
}

// BenchmarkRunSuiteParallel measures the harness-level (circuit, method)
// fan-out at several pool sizes.
func BenchmarkRunSuiteParallel(b *testing.B) {
	names := []string{"cm42a", "x2"}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := eval.RunSuite(context.Background(), Methods(),
					core.Options{Style: Static, Workers: w}, names)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(names) {
					b.Fatal("suite shape broken")
				}
			}
		})
	}
}
