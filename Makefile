# powermap — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race check short bench benchcheck fuzz tables verify clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The pre-merge gate: compile, static analysis, full tests, race tests.
check: build vet test race

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The pipeline regression gate: rerun the pbench workload and fail on any
# phase slower than the committed BENCH_pipeline.json baseline beyond the
# threshold. Regenerate the baseline by committing the rewritten manifest.
benchcheck:
	$(GO) run ./cmd/pbench -runs 3 -quick -workers 1 -out BENCH_pipeline.json

# Brief fuzzing of the four parsers (seed corpora run in plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/blif/
	$(GO) test -fuzz=FuzzParseCover -fuzztime=20s ./internal/sop/
	$(GO) test -fuzz=FuzzParseExpr -fuzztime=20s ./internal/genlib/
	$(GO) test -fuzz=FuzzParseGenlib -fuzztime=20s ./internal/genlib/

# Regenerate every table/figure of the paper (see EXPERIMENTS.md).
tables:
	$(GO) run ./cmd/tables -table all

# The final artifacts requested by the reproduction protocol.
verify:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt
