package powermap_test

import (
	"fmt"
	"log"

	"powermap"
)

// ExampleSynthesize runs the full power-aware flow on a small netlist.
func ExampleSynthesize() {
	nw, err := powermap.ParseBLIFString(`
.model demo
.inputs a b c d
.outputs y
.names a b t
11 1
.names c d u
11 1
.names t u y
1- 1
-1 1
.end
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := powermap.Synthesize(nw, powermap.Options{
		Method: powermap.MethodV,
		Style:  powermap.Static,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := powermap.Verify(nw, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %d gates, functionally verified\n", res.Report.Gates)
	// Output: mapped 3 gates, functionally verified
}

// ExampleEstimateActivities computes exact switching activities (the
// Equation 2 BDD traversal) for the paper's Figure 1 instance.
func ExampleEstimateActivities() {
	nw, probs := powermap.Figure1()
	if _, err := powermap.EstimateActivities(nw, probs, powermap.DominoP); err != nil {
		log.Fatal(err)
	}
	y := nw.NodeByName("y")
	fmt.Printf("P(a*b*c*d = 1) = %.3f\n", y.Prob1)
	// Output: P(a*b*c*d = 1) = 0.042
}

// ExampleTable1 regenerates a reduced version of the paper's Table 1.
func ExampleTable1() {
	rows := powermap.Table1(50, 1993)
	fmt.Printf("n=3 optimality: %.0f%%\n", rows[0].PercentOptimal)
	// Output: n=3 optimality: 100%
}
