// domino: power-efficient decomposition for dynamic (domino) CMOS,
// including correlated inputs — the Section 2.1.1 machinery.
//
// The example decomposes a wide AND three ways:
//
//  1. p-type domino with independent inputs, where the weight combination
//     is quasi-linear and plain Huffman construction is provably optimal
//     (Theorem 2.2);
//  2. the same inputs with strong pairwise correlations, using the
//     Equation 7–9 correlated algebra (Modified Huffman);
//  3. the bounded-height variant (Larmore–Hirschberg, Theorem 2.3) when
//     the unrestricted tree is too deep for the cycle time.
//
// Run with: go run ./examples/domino
package main

import (
	"fmt"
	"log"

	"powermap/internal/huffman"
)

func main() {
	// Eight domino inputs with skewed 1-probabilities.
	probs := []float64{0.9, 0.8, 0.7, 0.6, 0.4, 0.3, 0.2, 0.1}
	alg := huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: huffman.DominoP}
	leaves := make([]huffman.Signal, len(probs))
	for i, p := range probs {
		leaves[i] = huffman.SignalFromProb(p)
	}

	// 1. Independent inputs: Huffman is optimal.
	tr := huffman.Build[huffman.Signal](alg, leaves)
	balanced := huffman.BuildBalanced[huffman.Signal](alg, leaves)
	fmt.Println("p-type domino AND decomposition, independent inputs:")
	fmt.Printf("  balanced tree: activity %.4f, height %d\n",
		huffman.TotalCost[huffman.Signal](alg, balanced), balanced.Height())
	fmt.Printf("  MINPOWER tree: activity %.4f, height %d  (Huffman, optimal)\n\n",
		huffman.TotalCost[huffman.Signal](alg, tr), tr.Height())

	// 2. Correlated inputs: joint probabilities replace products.
	// Neighboring signals are strongly positively correlated.
	n := len(probs)
	joint := make([][]float64, n)
	for i := range joint {
		joint[i] = make([]float64, n)
		for j := range joint[i] {
			pi, pj := probs[i], probs[j]
			indep := pi * pj
			if i == j {
				joint[i][j] = pi
				continue
			}
			if i/2 == j/2 {
				// Same pair: P(i,j) pushed toward min(pi,pj).
				joint[i][j] = 0.8*minF(pi, pj) + 0.2*indep
			} else {
				joint[i][j] = indep
			}
		}
	}
	corr, err := huffman.NewCorrDomino(false, probs, joint)
	if err != nil {
		log.Fatal(err)
	}
	ctr := huffman.BuildModified[huffman.CorrState](corr, corr.Leaves())
	fmt.Println("correlated inputs (Equations 7-9, Modified Huffman):")
	fmt.Printf("  MINPOWER tree: activity %.4f, height %d\n",
		huffman.TotalCost[huffman.CorrState](corr, ctr), ctr.Height())
	fmt.Println("  correlated pairs are merged first: their joint probability is")
	fmt.Println("  barely above the single-signal probability, so the AND output")
	fmt.Println("  switches almost as rarely as its rarer input.")
	fmt.Println()

	// 3. Height-bounded (cycle-time constrained) decomposition.
	for _, bound := range []int{5, 4, 3} {
		btr, err := huffman.BuildBounded[huffman.Signal](alg, leaves, bound, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bounded height <= %d: activity %.4f, height %d\n",
			bound, huffman.TotalCost[huffman.Signal](alg, btr), btr.Height())
	}
	fmt.Println("\nThe activity/height trade-off is the BOUNDED-HEIGHT MINPOWER")
	fmt.Println("problem of Section 2.2: tighter cycle times cost switching power.")
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
