// customlib: bring your own netlist and cell library.
//
// The example parses a BLIF netlist and a genlib library from strings (in
// a real flow these come from files), synthesizes with the power-delay
// mapper, prints the report, and round-trips the mapped netlist through
// the SIS mapped-BLIF form, re-verifying functional equivalence.
//
// Run with: go run ./examples/customlib
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"powermap"
	"powermap/internal/mapper"
	"powermap/internal/prob"
)

// A one-bit full adder, as a tool would dump it.
const adderBlif = `
.model fulladder
.inputs a b cin
.outputs sum cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b g
11 1
.names axb cin p
11 1
.names g p cout
1- 1
-1 1
.end
`

// A deliberately tiny library: inverter, NAND2 at two strengths, NOR2 and
// an AOI21. Mapping must still cover everything (inverter + NAND2 suffice;
// the rest improve quality).
const tinyGenlib = `
GATE not1  10 O=!a;        PIN * INV 1.0 999 0.3 0.8 0.3 0.8
GATE nd2   16 O=!(a*b);    PIN * INV 1.0 999 0.4 0.8 0.4 0.8
GATE nd2h  24 O=!(a*b);    PIN * INV 1.9 999 0.35 0.45 0.35 0.45
GATE nr2   16 O=!(a+b);    PIN * INV 1.2 999 0.5 1.0 0.5 1.0
GATE ao21  24 O=!(a*b+c);  PIN * INV 1.6 999 0.55 1.0 0.55 1.0
`

func main() {
	nw, err := powermap.ParseBLIFString(adderBlif)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := powermap.ParseGenlib(strings.NewReader(tinyGenlib))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d cells, default load %.2f, max %d inputs\n",
		len(lib.Cells), lib.DefaultLoad(), lib.MaxInputs())

	res, err := powermap.Synthesize(nw, powermap.Options{
		Method:  powermap.MethodV,
		Style:   powermap.Static,
		Library: lib,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := powermap.Verify(nw, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped full adder: %d gates, area %.0f, delay %.2f ns, power %.2f uW\n",
		res.Report.Gates, res.Report.GateArea, res.Report.Delay, res.Report.PowerUW)
	for _, cc := range res.Netlist.CellCounts() {
		fmt.Printf("  %-6s x%d\n", cc.Name, cc.Count)
	}

	// Round-trip through mapped BLIF and re-check equivalence against the
	// subject graph.
	var sb strings.Builder
	if err := res.Netlist.WriteBLIF(&sb); err != nil {
		log.Fatal(err)
	}
	back, err := mapper.ReadMappedBLIF(strings.NewReader(sb.String()), lib)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := prob.EquivalentOutputs(context.Background(), res.Decomp.Network, back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmapped BLIF round trip equivalent: %v\n", ok)
	fmt.Println("\nmapped BLIF:")
	fmt.Print(sb.String())
}
