// tradeoff: sweep the timing constraint and chart the power-delay
// trade-off curve of a mapped circuit — the curve the Section 3 mapper
// navigates internally, observed from the outside.
//
// A Method I (area-delay) reference run fixes per-output arrival times;
// the power-delay mapper is then re-run with every required time scaled by
// λ. Tight constraints (λ < 1) force big, cap-hungry, high-drive cells —
// and are met best-effort once they drop below what the library can
// achieve (negative slack). Loose constraints let the mapper relax into
// low-capacitance covers until the curve bottoms out at the unconstrained
// minimum-power mapping. The output is a CSV ready for plotting.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"powermap"
)

func main() {
	bench, err := powermap.BenchmarkByName("s208")
	if err != nil {
		log.Fatal(err)
	}
	src := bench.Build()

	ref, err := powermap.Synthesize(src, powermap.Options{
		Method: powermap.MethodI,
		Style:  powermap.Static,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := ref.Netlist.OutputArrivals()
	fmt.Printf("# %s reference (Method I): delay %.2f ns, power %.2f uW, area %.0f\n",
		src.Name, ref.Report.Delay, ref.Report.PowerUW, ref.Report.GateArea)
	fmt.Println("lambda,delay_ns,power_uW,area,gates,worst_slack_ns")

	for _, lambda := range []float64{0.70, 0.80, 0.90, 0.95, 1.00, 1.05, 1.10, 1.25, 1.50, 2.00} {
		req := make(map[string]float64, len(base))
		for name, t := range base {
			req[name] = t * lambda
		}
		res, err := powermap.Synthesize(src, powermap.Options{
			Method:     powermap.MethodV,
			Style:      powermap.Static,
			PORequired: req,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f,%.2f,%.2f,%.0f,%d,%.2f\n",
			lambda, res.Report.Delay, res.Report.PowerUW,
			res.Report.GateArea, res.Report.Gates, res.Netlist.WorstSlack(req))
	}
	fmt.Println("\n# Power falls monotonically as lambda grows: the mapper converts")
	fmt.Println("# timing slack into switched-capacitance savings, then bottoms out")
	fmt.Println("# at the unconstrained minimum-power mapping.")
}
