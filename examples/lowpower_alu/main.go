// lowpower_alu: the paper's headline experiment on a single circuit.
//
// A structural 4-bit ALU (the alu2-style benchmark) is synthesized twice
// under identical timing constraints: once with the conventional area-delay
// flow (Method I) and once with the full power-aware flow (Method VI,
// bounded-height MINPOWER decomposition + power-delay mapping). The example
// prints the side-by-side reports and the cell-usage diff, showing where
// the power mapper spends area to hide high-activity nets.
//
// Run with: go run ./examples/lowpower_alu
package main

import (
	"fmt"
	"log"

	"powermap"
	"powermap/internal/circuits"
)

func main() {
	src := circuits.ALU(4)
	fmt.Printf("circuit %s: %d PIs, %d POs, %d nodes\n\n",
		src.Name, len(src.PIs), len(src.Outputs), src.Stats().Nodes)

	// Reference run fixes the timing budget (the Tables 2/3 protocol).
	ref, err := powermap.Synthesize(src, powermap.Options{
		Method: powermap.MethodI,
		Style:  powermap.Static,
	})
	if err != nil {
		log.Fatal(err)
	}
	required := ref.Netlist.OutputArrivals()

	results := map[powermap.Method]*powermap.Result{}
	for _, m := range []powermap.Method{powermap.MethodI, powermap.MethodVI} {
		res, err := powermap.Synthesize(src, powermap.Options{
			Method:     m,
			Style:      powermap.Static,
			PORequired: required,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := powermap.Verify(src, res); err != nil {
			log.Fatal(err)
		}
		results[m] = res
	}

	fmt.Printf("%-28s %10s %10s\n", "", "Method I", "Method VI")
	adR, pdR := results[powermap.MethodI].Report, results[powermap.MethodVI].Report
	fmt.Printf("%-28s %10d %10d\n", "gates", adR.Gates, pdR.Gates)
	fmt.Printf("%-28s %10.0f %10.0f\n", "gate area", adR.GateArea, pdR.GateArea)
	fmt.Printf("%-28s %10.2f %10.2f\n", "delay (ns)", adR.Delay, pdR.Delay)
	fmt.Printf("%-28s %10.2f %10.2f\n", "average power (uW)", adR.PowerUW, pdR.PowerUW)
	fmt.Printf("\npower change: %+.1f%%   area change: %+.1f%%   delay change: %+.1f%%\n",
		100*(pdR.PowerUW/adR.PowerUW-1),
		100*(pdR.GateArea/adR.GateArea-1),
		100*(pdR.Delay/adR.Delay-1))

	fmt.Println("\ncell usage (Method I vs Method VI):")
	counts := map[string][2]int{}
	for _, cc := range results[powermap.MethodI].Netlist.CellCounts() {
		c := counts[cc.Name]
		c[0] = cc.Count
		counts[cc.Name] = c
	}
	for _, cc := range results[powermap.MethodVI].Netlist.CellCounts() {
		c := counts[cc.Name]
		c[1] = cc.Count
		counts[cc.Name] = c
	}
	for _, cc := range results[powermap.MethodI].Netlist.CellCounts() {
		c := counts[cc.Name]
		fmt.Printf("  %-8s %4d -> %4d\n", cc.Name, c[0], c[1])
		delete(counts, cc.Name)
	}
	for name, c := range counts {
		fmt.Printf("  %-8s %4d -> %4d\n", name, c[0], c[1])
	}
}
