// Quickstart: reproduce the paper's Figure 1 worked example, then run the
// complete power-aware synthesis flow on it.
//
// Figure 1 shows that the way a 4-input AND is decomposed into 2-input
// gates changes the total switching activity: with P(a)=0.3 P(b)=0.4
// P(c)=0.7 P(d)=0.5 in a p-type dynamic circuit, the chain ((ab)c)d has
// SR = 2.146 while the balanced (ab)(cd) has SR = 2.412. The MINPOWER
// decomposition finds the cheapest tree automatically.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powermap"
)

func main() {
	nw, probs := powermap.Figure1()

	// Part 1: the Figure 1 arithmetic, via the exact activity estimator.
	model, err := powermap.EstimateActivities(nw, probs, powermap.DominoP)
	if err != nil {
		log.Fatal(err)
	}
	_ = model
	y := nw.NodeByName("y")
	fmt.Printf("Figure 1: P(y = a·b·c·d) = %.4f (paper: 0.3·0.4·0.7·0.5 = 0.042)\n\n", y.Prob1)

	// Part 2: the full flow — decomposition chooses the minimum-activity
	// tree, mapping covers it with library gates.
	for _, m := range []powermap.Method{powermap.MethodI, powermap.MethodV} {
		res, err := powermap.Synthesize(nw, powermap.Options{
			Method: m,
			Style:  powermap.DominoP,
			PIProb: probs,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := powermap.Verify(nw, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("method %-3s (%v + %v):\n", m, m.Decomposition(), m.Mapping())
		fmt.Printf("  subject graph: %d NAND/INV nodes, total activity %.4f\n",
			res.Decomp.Network.Stats().Nodes, res.Decomp.TotalActivity)
		fmt.Printf("  mapped:        %d gates, area %.0f, delay %.2f ns, power %.3f uW\n",
			res.Report.Gates, res.Report.GateArea, res.Report.Delay, res.Report.PowerUW)
		for _, cc := range res.Netlist.CellCounts() {
			fmt.Printf("                 %-8s x%d\n", cc.Name, cc.Count)
		}
		fmt.Println()
	}
	fmt.Println("The MINPOWER decomposition (method V) merges the low-probability")
	fmt.Println("inputs first, so the high-activity intermediate products are the")
	fmt.Println("cheap ones — exactly the Figure 1 argument.")
}
