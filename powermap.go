// Package powermap is a from-scratch reproduction of "Technology
// Decomposition and Mapping Targeting Low Power Dissipation" (Tsui, Pedram,
// Despain; DAC 1993): power-aware technology decomposition and technology
// mapping for combinational CMOS logic, together with every substrate the
// paper depends on — Boolean networks, BLIF I/O, ROBDDs with exact signal
// probabilities, Huffman/package-merge tree constructions, a genlib cell
// library with the SIS pin-dependent delay model, and a curve-based tree
// mapper.
//
// This root package is the stable facade: it re-exports the flow entry
// points and the types a downstream user needs. The implementation lives
// in internal/ packages (one per subsystem; see DESIGN.md).
//
// Quick start:
//
//	nw, _ := powermap.ParseBLIF(strings.NewReader(myBlif))
//	res, _ := powermap.Synthesize(nw, powermap.Options{
//		Method: powermap.MethodVI, // bounded-height MINPOWER + pd-map
//		Style:  powermap.Static,
//	})
//	fmt.Printf("area %.0f, delay %.2f ns, power %.2f uW\n",
//		res.Report.GateArea, res.Report.Delay, res.Report.PowerUW)
package powermap

import (
	"context"
	"io"

	"powermap/internal/blif"
	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/decomp"
	"powermap/internal/eval"
	"powermap/internal/genlib"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/mapper"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/power"
	"powermap/internal/prob"
	"powermap/internal/sim"
	"powermap/internal/verify"
)

// Core flow types.
type (
	// Options configures a synthesis run; see core.Options.
	Options = core.Options
	// Result is a completed synthesis run.
	Result = core.Result
	// Method is one of the paper's six decomposition×mapping combinations.
	Method = core.Method
	// Network is a multi-level Boolean network.
	Network = network.Network
	// Node is one vertex of a Network.
	Node = network.Node
	// Netlist is a mapped gate-level circuit.
	Netlist = mapper.Netlist
	// Report carries gate area, delay (ns) and average power (µW).
	Report = power.Report
	// Library is a standard-cell library in genlib form.
	Library = genlib.Library
	// Style is the CMOS design style whose activity is minimized.
	Style = huffman.Style
	// Strategy selects the technology-decomposition algorithm.
	Strategy = decomp.Strategy
	// Objective selects the mapping cost (area-delay or power-delay).
	Objective = mapper.Objective
	// MapperBackend selects the mapper's match enumerator (structural
	// pattern matching or cut-based NPN Boolean matching).
	MapperBackend = mapper.Backend
	// Benchmark is one entry of the built-in benchmark suite.
	Benchmark = circuits.Benchmark
)

// The paper's six experimental methods (Tables 2 and 3).
const (
	MethodI   = core.MethodI
	MethodII  = core.MethodII
	MethodIII = core.MethodIII
	MethodIV  = core.MethodIV
	MethodV   = core.MethodV
	MethodVI  = core.MethodVI
)

// Design styles (Section 1.2).
const (
	Static  = huffman.Static
	DominoP = huffman.DominoP
	DominoN = huffman.DominoN
)

// Decomposition strategies (Section 2).
const (
	Conventional    = decomp.Conventional
	MinPower        = decomp.MinPower
	BoundedMinPower = decomp.BoundedMinPower
)

// Mapping objectives (Section 3).
const (
	AreaDelay  = mapper.AreaDelay
	PowerDelay = mapper.PowerDelay
)

// Mapper backends: the paper's structural pattern matcher (the default)
// and the cut-based NPN Boolean matcher over a structurally hashed AIG.
// Select with Options.Mapper; Options.LUT switches the cuts backend to a
// generic k-LUT workload.
const (
	BackendStructural = mapper.BackendStructural
	BackendCuts       = mapper.BackendCuts
)

// Observability re-exports (see internal/obs): set Options.Obs to a
// NewScope to collect phase spans and pipeline metrics from a run.
type (
	// Scope bundles a tracer and metrics registry; nil disables both.
	Scope = obs.Scope
	// ObsConfig configures a Scope (e.g. a slog.Logger for phase spans).
	ObsConfig = obs.Config
	// Snapshot is an exportable capture of a Scope's spans and metrics.
	Snapshot = obs.Snapshot
)

// NewScope returns an enabled observability scope.
func NewScope(cfg ObsConfig) *Scope { return obs.New(cfg) }

// Decision-provenance re-exports (see internal/journal and cmd/pexplain):
// set Options.Journal to a journal created with CreateJournal or NewJournal
// to record every decomposition, mapping and power-attribution decision of
// a run as JSONL.
type (
	// Journal is a run's decision-provenance writer; nil disables it.
	Journal = journal.Journal
	// JournalHeader is the first record of every journal file.
	JournalHeader = journal.Header
	// JournalRun is a fully parsed journal file.
	JournalRun = journal.Run
)

// NewJournal starts a journal on an arbitrary writer; write errors are
// deferred to Journal.Err and Journal.Close.
func NewJournal(w io.Writer, h JournalHeader) *Journal { return journal.New(w, h) }

// CreateJournal starts a journal file at path (created or truncated).
func CreateJournal(path string, h JournalHeader) (*Journal, error) { return journal.Create(path, h) }

// ReadJournal parses a journal file written by a previous run.
func ReadJournal(path string) (*JournalRun, error) { return journal.ReadRunFile(path) }

// NewRunID returns a fresh random run identifier for journal headers and
// stats snapshots.
func NewRunID() string { return journal.NewRunID() }

// Synthesize runs the full flow — quick-opt, power-efficient technology
// decomposition, power-efficient technology mapping — on a copy of the
// input network. Set Options.Workers to fan the per-node phases out across
// a worker pool; results are identical for every worker count.
func Synthesize(nw *Network, o Options) (*Result, error) { return core.Synthesize(nw, o) }

// SynthesizeContext is Synthesize with cancellation: deadlines and
// cancellation on ctx abort the run between pipeline phases and between
// nodes inside them.
func SynthesizeContext(ctx context.Context, nw *Network, o Options) (*Result, error) {
	return core.SynthesizeContext(ctx, nw, o)
}

// Float64 returns a pointer to v, for optional fields like Options.Relax.
func Float64(v float64) *float64 { return core.Float64(v) }

// Verify checks a synthesis result against its source network with exact
// BDD equivalence.
func Verify(src *Network, res *Result) error {
	return core.VerifyAgainstSource(context.Background(), src, res)
}

// VerifyContext is Verify with cancellation.
func VerifyContext(ctx context.Context, src *Network, res *Result) error {
	return core.VerifyAgainstSource(ctx, src, res)
}

// Formal-verification re-exports (see internal/verify and cmd/pcheck).
type (
	// MismatchError is an equivalence disproof with a counterexample cube.
	MismatchError = verify.MismatchError
	// RandConfig parameterizes RandomNetwork.
	RandConfig = verify.RandConfig
)

// VerifyResult proves a synthesis run end to end with an oracle independent
// of the pipeline: src ≡ optimized ≡ decomposed ≡ mapped (global ROBDDs
// rebuilt from scratch) plus report self-consistency. Equivalence failures
// come back as a *MismatchError carrying a counterexample input.
func VerifyResult(ctx context.Context, src *Network, res *Result) error {
	return verify.CheckResult(ctx, src, res)
}

// ProveEquivalent checks two networks over the same primary inputs for
// combinational equivalence, returning a *MismatchError with a
// counterexample cube on disproof (unlike Equivalent, which only reports a
// boolean verdict).
func ProveEquivalent(ctx context.Context, ref, impl *Network) error {
	return verify.Equivalent(ctx, ref, impl)
}

// RandomNetwork builds a seeded random multi-level network for
// property-based testing; equal configs produce identical networks.
func RandomNetwork(name string, cfg RandConfig) *Network {
	return verify.RandomNetwork(name, cfg)
}

// Methods lists the six methods in table order.
func Methods() []Method { return core.Methods() }

// ParseBLIF reads a BLIF netlist into a Network (latches are cut into
// pseudo-PI/PO pairs).
func ParseBLIF(r io.Reader) (*Network, error) { return blif.Parse(r) }

// ParseBLIFString is ParseBLIF over a string.
func ParseBLIFString(s string) (*Network, error) { return blif.ParseString(s) }

// WriteBLIF serializes a Network as BLIF.
func WriteBLIF(w io.Writer, nw *Network) error { return blif.Write(w, nw) }

// Lib2 returns the embedded lib2-style standard-cell library.
func Lib2() *Library { return genlib.Lib2() }

// ParseGenlib reads a genlib library description.
func ParseGenlib(r io.Reader) (*Library, error) { return genlib.Parse(r) }

// Benchmarks returns the 17-circuit suite of the paper's Tables 2 and 3.
func Benchmarks() []Benchmark { return circuits.Suite() }

// BenchmarkByName looks up one benchmark.
func BenchmarkByName(name string) (Benchmark, error) { return circuits.ByName(name) }

// Figure1 returns the worked example of the paper's Figure 1: a 4-input
// AND with input probabilities {0.3, 0.4, 0.7, 0.5}.
func Figure1() (*Network, map[string]float64) { return circuits.Figure1() }

// EstimateActivities annotates every node of the network with its exact
// zero-delay signal probability and switching activity (Equations 2–3) and
// returns the probability model.
func EstimateActivities(nw *Network, piProb map[string]float64, style Style) (*prob.Model, error) {
	return prob.Compute(nw, piProb, style)
}

// Activity-engine re-exports (see internal/sim and internal/prob): the
// bit-parallel sampling estimator and the exact/sampling policy consumed
// by Options.Activity.
type (
	// ActivityPolicy picks the engine that measures switching activities
	// (exact BDDs, bit-parallel sampling, or auto); the zero value is exact.
	ActivityPolicy = prob.Policy
	// ActivityEngine is one of ActivityExact/ActivitySampling/ActivityAuto.
	ActivityEngine = prob.Engine
	// SamplingOptions configures SampleActivities (budget, seed, workers,
	// confidence level, sequential CI target).
	SamplingOptions = sim.BitwiseOptions
	// SamplingResult is a completed sampling run: per-node estimates with
	// confidence intervals plus run-level statistics.
	SamplingResult = sim.BitwiseResult
	// ActivityEstimate is one node's sampled estimate.
	ActivityEstimate = sim.Estimate
)

// Activity engines selectable via ActivityPolicy.
const (
	ActivityExact    = prob.Exact
	ActivitySampling = prob.Sampling
	ActivityAuto     = prob.Auto
)

// SampleActivities estimates signal probabilities and switching activities
// with the bit-parallel Monte-Carlo engine: 64 sample lanes per machine
// word over a precompiled evaluation plan, with normal-approximation
// confidence intervals. Counts are bit-identical for every worker count.
func SampleActivities(ctx context.Context, nw *Network, piProb map[string]float64, o SamplingOptions) (*SamplingResult, error) {
	return sim.ActivitiesBitwise(ctx, nw, piProb, o)
}

// Equivalent reports whether two networks over the same primary inputs
// compute identical outputs (exact, via shared BDDs).
func Equivalent(a, b *Network) (bool, error) {
	return prob.EquivalentOutputs(context.Background(), a, b)
}

// Experiment harness re-exports (see cmd/tables for the CLI).
type (
	// Table1Row is one row of the paper's Table 1.
	Table1Row = eval.Table1Row
	// CircuitRow is one benchmark's results across methods.
	CircuitRow = eval.CircuitRow
	// Summary aggregates the Section 4 comparison ratios.
	Summary = eval.Summary
)

// Table1 reproduces the Table 1 simulation.
func Table1(patterns int, seed int64) []Table1Row { return eval.Table1(patterns, seed) }

// RunSuite synthesizes benchmarks with the given methods under common
// per-circuit timing constraints (the Tables 2/3 protocol). Set
// base.Workers to fan the (circuit, method) runs out across a pool.
func RunSuite(methods []Method, base Options, names []string) ([]CircuitRow, error) {
	return eval.RunSuite(context.Background(), methods, base, names)
}

// RunSuiteContext is RunSuite with cancellation: on expiry the error
// reports how many of the suite's runs completed.
func RunSuiteContext(ctx context.Context, methods []Method, base Options, names []string) ([]CircuitRow, error) {
	return eval.RunSuite(ctx, methods, base, names)
}

// Summarize computes the Section 4 summary ratios from six-method rows.
func Summarize(rows []CircuitRow) Summary { return eval.Summarize(rows) }
