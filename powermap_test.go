package powermap

import (
	"bytes"
	"strings"
	"testing"
)

const facadeBlif = `
.model facade
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
`

func TestFacadeFlow(t *testing.T) {
	nw, err := ParseBLIFString(facadeBlif)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(nw, Options{Method: MethodVI, Style: Static})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(nw, res); err != nil {
		t.Fatal(err)
	}
	if res.Report.Gates == 0 {
		t.Error("no gates")
	}
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, res.Optimized); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBLIF(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Equivalent(nw, back)
	if err != nil || !ok {
		t.Fatalf("optimized network round trip: %v %v", ok, err)
	}
}

func TestFacadeLibraryAndBenchmarks(t *testing.T) {
	lib := Lib2()
	if lib.Inverter() == nil || lib.Nand2() == nil {
		t.Error("library lookups broken")
	}
	lib2, err := ParseGenlib(strings.NewReader(
		"GATE i 1 O=!a;\nPIN * INV 1 99 1 1 1 1\nGATE n 2 O=!(a*b);\nPIN * INV 1 99 1 1 1 1\n"))
	if err != nil || len(lib2.Cells) != 2 {
		t.Fatalf("ParseGenlib: %v %v", lib2, err)
	}
	if got := len(Benchmarks()); got != 17 {
		t.Errorf("suite size %d", got)
	}
	b, err := BenchmarkByName("cm42a")
	if err != nil || b.Name != "cm42a" {
		t.Fatalf("BenchmarkByName: %v %v", b, err)
	}
	if len(Methods()) != 6 {
		t.Error("methods")
	}
}

func TestFacadeFigure1AndEstimation(t *testing.T) {
	nw, probs := Figure1()
	model, err := EstimateActivities(nw, probs, DominoP)
	if err != nil {
		t.Fatal(err)
	}
	_ = model
	y := nw.NodeByName("y")
	if y == nil || y.Prob1 <= 0.041 || y.Prob1 >= 0.043 {
		t.Errorf("Figure 1 probability wrong: %v", y)
	}
}

func TestFacadeTable1(t *testing.T) {
	rows := Table1(20, 3)
	if len(rows) != 4 || rows[0].Inputs != 3 {
		t.Errorf("Table1 rows: %v", rows)
	}
}

func TestFacadeRunSuite(t *testing.T) {
	rows, err := RunSuite([]Method{MethodI, MethodII, MethodIII, MethodIV, MethodV, MethodVI},
		Options{Style: Static}, []string{"cm42a"})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rows)
	if s.PdPower > 0.5 {
		t.Errorf("pd power change %+.1f%% unexpectedly positive", s.PdPower)
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	if Conventional == MinPower || MinPower == BoundedMinPower {
		t.Error("strategies collide")
	}
	if AreaDelay == PowerDelay {
		t.Error("objectives collide")
	}
	if Static == DominoP || DominoP == DominoN {
		t.Error("styles collide")
	}
}
