module powermap

go 1.22
