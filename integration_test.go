package powermap

import (
	"context"
	"testing"

	"powermap/internal/core"
	"powermap/internal/eval"
)

// TestSuiteShape runs the Tables 2/3 protocol on a representative subset
// and asserts the paper's qualitative results hold: power-delay mapping
// beats area-delay mapping on power for every circuit under common timing
// constraints, at an area premium and without delay degradation beyond the
// constraints. Skipped under -short (it synthesizes 4 circuits × 6
// methods).
func TestSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite shape test skipped in -short mode")
	}
	names := []string{"s208", "cm42a", "x2", "alu2"}
	rows, err := eval.RunSuite(context.Background(), Methods(), core.Options{Style: Static}, names)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ad := r.Results[MethodI]
		pd := r.Results[MethodIV]
		if pd.PowerUW > ad.PowerUW*1.02 {
			t.Errorf("%s: pd-map power %.1f not better than ad-map %.1f",
				r.Circuit, pd.PowerUW, ad.PowerUW)
		}
		if pd.GateArea < ad.GateArea*0.7 {
			t.Errorf("%s: pd-map area %.0f implausibly below ad-map %.0f",
				r.Circuit, pd.GateArea, ad.GateArea)
		}
	}
	s := eval.Summarize(rows)
	if s.PdPower > -5 {
		t.Errorf("pd-map power gain %.1f%% too small (paper: -22%%)", s.PdPower)
	}
	if s.PdArea < 0 {
		t.Errorf("pd-map area change %.1f%% should be positive (paper: +12.4%%)", s.PdArea)
	}
}
