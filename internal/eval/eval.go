// Package eval regenerates the paper's experimental results (Section 4):
//
//   - Table 1: the optimality rate of the Modified Huffman construction on
//     random static AND decompositions, n = 3..6, against exhaustive
//     enumeration of all decomposition trees;
//   - Tables 2 and 3: the 17-circuit × 6-method comparison reporting gate
//     area, delay and average power;
//   - the summary ratios quoted in the Section 4 text (minpower vs
//     conventional decomposition, bounded-height vs minpower, pd-map vs
//     ad-map).
package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/exec"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/obs"
	"powermap/internal/power"
	"powermap/internal/verify"
)

// Table1Row is one row of Table 1.
type Table1Row struct {
	Inputs         int
	PercentOptimal float64
}

// Table1 reproduces the Table 1 simulation: for each input count n in
// [3,6], patterns random probability vectors are drawn, a static AND
// decomposition is built with the Modified Huffman algorithm, and the
// result is compared against the exhaustive optimum.
func Table1(patterns int, seed int64) []Table1Row {
	r := rand.New(rand.NewSource(seed))
	alg := huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: huffman.Static}
	var rows []Table1Row
	for n := 3; n <= 6; n++ {
		optimal := 0
		for trial := 0; trial < patterns; trial++ {
			leaves := make([]huffman.Signal, n)
			for i := range leaves {
				leaves[i] = huffman.SignalFromProb(r.Float64())
			}
			tr := huffman.BuildModified[huffman.Signal](alg, leaves)
			got := huffman.TotalCost[huffman.Signal](alg, tr)
			_, opt := huffman.Enumerate[huffman.Signal](alg, leaves, 0)
			if got <= opt+1e-9 {
				optimal++
			}
		}
		rows = append(rows, Table1Row{
			Inputs:         n,
			PercentOptimal: 100 * float64(optimal) / float64(patterns),
		})
	}
	return rows
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-17s  %s\n", "numbers of input", "% of getting optimal result")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-17d  %.0f\n", r.Inputs, r.PercentOptimal)
	}
	return b.String()
}

// CircuitRow holds one benchmark's results across methods.
type CircuitRow struct {
	Circuit string
	Results map[core.Method]power.Report
}

// JournalConfig configures per-run provenance capture for a suite. The
// zero value disables journaling entirely.
type JournalConfig struct {
	// Dir receives one JSONL journal per synthesis run: <circuit>-ref.jsonl
	// for each Stage-A reference run and <circuit>-<method>.jsonl for each
	// (circuit, method) run. Empty disables journaling. The directory is
	// created if missing.
	Dir string
	// RunID stamps every journal header, tying the files of one suite
	// invocation together. Empty generates a fresh ID.
	RunID string
}

// RunSuite synthesizes every named benchmark with every method. A nil or
// empty names slice runs the full 17-circuit suite.
//
// Protocol ("given timing constraints", Section 4): for each circuit a
// reference run of Method I with the base Relax fixes the per-output
// required times, and every method is then synthesized under those common
// constraints — the fair comparison behind the paper's "without
// degradation in performance" claim.
//
// The suite fans out across base.Workers workers in two stages: the
// per-circuit reference runs, then every (circuit, method) run. Each task
// synthesizes its own copy of the benchmark (the source network's scratch
// traversal state must not be shared between concurrent runs), and rows
// are assembled in suite order, so results are identical to a sequential
// run for every worker count. On cancellation the error reports how many
// runs completed before expiry.
func RunSuite(ctx context.Context, methods []core.Method, base core.Options, names []string) ([]CircuitRow, error) {
	return RunSuiteJournaled(ctx, methods, base, names, JournalConfig{})
}

// RunSuiteJournaled is RunSuite with decision-provenance capture: when
// jc.Dir is set, every synthesis run (reference and suite) writes its own
// journal file there, sharing jc.RunID in the headers. cmd/pexplain
// queries and diffs the resulting files.
func RunSuiteJournaled(ctx context.Context, methods []core.Method, base core.Options, names []string, jc JournalConfig) (_ []CircuitRow, err error) {
	suite := circuits.Suite()
	if len(names) > 0 {
		var filtered []circuits.Benchmark
		for _, name := range names {
			b, err := circuits.ByName(name)
			if err != nil {
				return nil, err
			}
			filtered = append(filtered, b)
		}
		suite = filtered
	}
	if jc.Dir != "" {
		if err := os.MkdirAll(jc.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("eval: journal dir: %w", err)
		}
		if jc.RunID == "" {
			jc.RunID = journal.NewRunID()
		}
	}
	// openJournal creates the per-run journal file and threads it into the
	// run's options. Runs inside the worker task that owns o, so each file
	// has exactly one writer. Nil when journaling is off.
	openJournal := func(o *core.Options, b circuits.Benchmark, stage string) (*journal.Journal, error) {
		if jc.Dir == "" {
			return nil, nil
		}
		name := b.Name + "-" + o.Method.String() + ".jsonl"
		if stage == "reference" {
			// Stage-A runs are Method I too; a distinct suffix keeps them
			// from clashing with the Stage-B Method-I journal.
			name = b.Name + "-ref.jsonl"
		}
		jr, err := journal.Create(filepath.Join(jc.Dir, name), journal.Header{
			RunID:     jc.RunID,
			Circuit:   b.Name,
			Method:    o.Method.String(),
			Strategy:  o.Method.Decomposition().String(),
			Objective: o.Method.Mapping().String(),
			Style:     base.Style.String(),
			Stage:     stage,
			Workers:   o.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("eval: %s journal: %w", b.Name, err)
		}
		jr.SetObs(base.Obs)
		o.Journal = jr
		return jr, nil
	}
	// The scope rides the context so the worker pool (and any phase that
	// only sees the context) can instrument the fan-out itself.
	ctx = obs.WithScope(ctx, base.Obs)
	workers := exec.Workers(base.Workers)
	inner := base.Workers
	if workers > 1 {
		// Fan out across runs, not inside them: (circuit, method) tasks
		// outnumber cores on any real suite, and coarse tasks carry less
		// synchronization overhead than nested per-node pools.
		inner = 1
	}
	total := len(suite) * (1 + len(methods))
	var done atomic.Int64
	// A failing suite leaves a post-mortem beside its journals: the flight
	// recorder snapshots the span/log/runtime-sample tails at the moment the
	// suite gives up. The per-run core.synthesize capture fired first (and
	// owns the auto-dump), so this record adds the suite-level context.
	defer func() {
		if err != nil {
			base.Obs.Flight().CaptureFailure("eval.run_suite", err,
				"runs_done", done.Load(), "runs_total", int64(total))
		}
	}()
	interrupted := func(err error) error {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return fmt.Errorf("eval: suite interrupted after %d of %d runs: %w", done.Load(), total, err)
		}
		return err
	}

	// Stage A: Method-I reference runs fix each circuit's required times.
	// Every run is tagged with (circuit, method) labels on its context, so
	// the spans and labeled metrics it emits attribute to that job even when
	// many runs interleave across the worker pool.
	reqs, err := exec.Map(exec.WithLabel(ctx, "eval.reference"), workers, len(suite), func(ctx context.Context, i int) (map[string]float64, error) {
		b := suite[i]
		o := base
		o.Method = core.MethodI
		o.Workers = inner
		ctx = obs.WithLabels(ctx, "circuit", b.Name, "method", "I", "stage", "reference")
		span := base.Obs.StartCtx(ctx, "eval.reference")
		defer span.End()
		jr, err := openJournal(&o, b, "reference")
		if err != nil {
			return nil, err
		}
		ref, err := core.SynthesizeContext(ctx, b.Build(), o)
		if cerr := jr.Close(); cerr != nil && err == nil {
			return nil, fmt.Errorf("eval: %s reference journal: %w", b.Name, cerr)
		}
		if err != nil {
			return nil, fmt.Errorf("eval: %s reference run: %w", b.Name, err)
		}
		req := ref.Netlist.OutputArrivals()
		for name, t := range req {
			req[name] = t * 1.001 // absorb rounding in the reference arrivals
		}
		done.Add(1)
		return req, nil
	})
	if err != nil {
		return nil, interrupted(err)
	}

	// Stage B: every (circuit, method) run under the common constraints.
	type runKey struct{ ci, mi int }
	tasks := make([]runKey, 0, len(suite)*len(methods))
	for ci := range suite {
		for mi := range methods {
			tasks = append(tasks, runKey{ci, mi})
		}
	}
	reports, err := exec.Map(exec.WithLabel(ctx, "eval.suite"), workers, len(tasks), func(ctx context.Context, t int) (power.Report, error) {
		k := tasks[t]
		b := suite[k.ci]
		o := base
		o.Method = methods[k.mi]
		o.PORequired = reqs[k.ci]
		o.Workers = inner
		mname := methods[k.mi].String()
		ctx = obs.WithLabels(ctx, "circuit", b.Name, "method", mname)
		span := base.Obs.StartCtx(ctx, "eval.run")
		defer span.End()
		jr, err := openJournal(&o, b, "suite")
		if err != nil {
			return power.Report{}, err
		}
		src := b.Build()
		res, err := core.SynthesizeContext(ctx, src, o)
		if cerr := jr.Close(); cerr != nil && err == nil {
			return power.Report{}, fmt.Errorf("eval: %s method %v journal: %w", b.Name, methods[k.mi], cerr)
		}
		if err != nil {
			return power.Report{}, fmt.Errorf("eval: %s method %v: %w", b.Name, methods[k.mi], err)
		}
		// Every benchmark run is self-verifying: prove source ≡ optimized ≡
		// decomposed ≡ mapped and the report consistent before reporting it.
		if err := verify.CheckResult(ctx, src, res); err != nil {
			return power.Report{}, fmt.Errorf("eval: %s method %v: %w", b.Name, methods[k.mi], err)
		}
		span.SetAttr("gates", res.Report.Gates).SetAttr("power_uw", res.Report.PowerUW)
		base.Obs.Counter("eval.runs").With("circuit", b.Name, "method", mname).Inc()
		base.Obs.Gauge("eval.power_uw").With("circuit", b.Name, "method", mname).Set(res.Report.PowerUW)
		done.Add(1)
		return res.Report, nil
	})
	if err != nil {
		return nil, interrupted(err)
	}
	rows := make([]CircuitRow, len(suite))
	for ci, b := range suite {
		rows[ci] = CircuitRow{Circuit: b.Name, Results: make(map[core.Method]power.Report, len(methods))}
	}
	for t, rep := range reports {
		k := tasks[t]
		rows[k.ci].Results[methods[k.mi]] = rep
	}
	return rows, nil
}

// FormatTable renders rows in the paper's Tables 2/3 layout for the given
// methods (three columns of gate area / delay / average power each).
func FormatTable(rows []CircuitRow, methods []core.Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "circuit")
	for _, m := range methods {
		fmt.Fprintf(&b, " | %21s", "Method "+m.String())
	}
	fmt.Fprintf(&b, "\n%-8s", "")
	for range methods {
		fmt.Fprintf(&b, " | %6s %6s %7s", "area", "delay", "power")
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Circuit)
		for _, m := range methods {
			rep := r.Results[m]
			fmt.Fprintf(&b, " | %6.0f %6.2f %7.1f", rep.GateArea, rep.Delay, rep.PowerUW)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Summary aggregates the comparison ratios the paper quotes in Section 4.
// All values are mean percentage changes over the circuits (positive =
// increase).
type Summary struct {
	// MinpowerPower is the power change of minpower_t_decomp vs
	// conventional decomposition (pairs II/I and V/IV); paper: ≈ -3.7%.
	MinpowerPower float64
	// MinpowerArea is the matching area change; paper: ≈ +1.4%.
	MinpowerArea float64
	// BHPower and BHDelay compare bounded-height vs plain minpower (pairs
	// III/II and VI/V); paper: ≈ -1.6% each.
	BHPower float64
	BHDelay float64
	// PdPower, PdArea, PdDelay compare pd-map vs ad-map (pairs IV/I, V/II,
	// VI/III); paper: -22% power, +12.4% area, -1.1% delay.
	PdPower float64
	PdArea  float64
	PdDelay float64
}

// Summarize computes the summary ratios from full six-method rows.
func Summarize(rows []CircuitRow) Summary {
	var s Summary
	s.MinpowerPower = meanChange(rows, func(r CircuitRow) []float64 {
		return []float64{
			pct(r.Results[core.MethodII].PowerUW, r.Results[core.MethodI].PowerUW),
			pct(r.Results[core.MethodV].PowerUW, r.Results[core.MethodIV].PowerUW),
		}
	})
	s.MinpowerArea = meanChange(rows, func(r CircuitRow) []float64 {
		return []float64{
			pct(r.Results[core.MethodII].GateArea, r.Results[core.MethodI].GateArea),
			pct(r.Results[core.MethodV].GateArea, r.Results[core.MethodIV].GateArea),
		}
	})
	s.BHPower = meanChange(rows, func(r CircuitRow) []float64 {
		return []float64{
			pct(r.Results[core.MethodIII].PowerUW, r.Results[core.MethodII].PowerUW),
			pct(r.Results[core.MethodVI].PowerUW, r.Results[core.MethodV].PowerUW),
		}
	})
	s.BHDelay = meanChange(rows, func(r CircuitRow) []float64 {
		return []float64{
			pct(r.Results[core.MethodIII].Delay, r.Results[core.MethodII].Delay),
			pct(r.Results[core.MethodVI].Delay, r.Results[core.MethodV].Delay),
		}
	})
	s.PdPower = meanChange(rows, func(r CircuitRow) []float64 {
		return []float64{
			pct(r.Results[core.MethodIV].PowerUW, r.Results[core.MethodI].PowerUW),
			pct(r.Results[core.MethodV].PowerUW, r.Results[core.MethodII].PowerUW),
			pct(r.Results[core.MethodVI].PowerUW, r.Results[core.MethodIII].PowerUW),
		}
	})
	s.PdArea = meanChange(rows, func(r CircuitRow) []float64 {
		return []float64{
			pct(r.Results[core.MethodIV].GateArea, r.Results[core.MethodI].GateArea),
			pct(r.Results[core.MethodV].GateArea, r.Results[core.MethodII].GateArea),
			pct(r.Results[core.MethodVI].GateArea, r.Results[core.MethodIII].GateArea),
		}
	})
	s.PdDelay = meanChange(rows, func(r CircuitRow) []float64 {
		return []float64{
			pct(r.Results[core.MethodIV].Delay, r.Results[core.MethodI].Delay),
			pct(r.Results[core.MethodV].Delay, r.Results[core.MethodII].Delay),
			pct(r.Results[core.MethodVI].Delay, r.Results[core.MethodIII].Delay),
		}
	})
	return s
}

func pct(after, before float64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (after - before) / before
}

func meanChange(rows []CircuitRow, f func(CircuitRow) []float64) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		for _, v := range f(r) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatSummary renders the Section 4 comparison alongside the paper's
// reported values.
func FormatSummary(s Summary) string {
	var b strings.Builder
	rows := []struct {
		name     string
		measured float64
		paper    string
	}{
		{"minpower decomp: power (II/I, V/IV)", s.MinpowerPower, "-3.7%"},
		{"minpower decomp: area", s.MinpowerArea, "+1.4%"},
		{"bounded-height: power (III/II, VI/V)", s.BHPower, "-1.6%"},
		{"bounded-height: delay", s.BHDelay, "-1.6%"},
		{"pd-map vs ad-map: power", s.PdPower, "-22%"},
		{"pd-map vs ad-map: area", s.PdArea, "+12.4%"},
		{"pd-map vs ad-map: delay", s.PdDelay, "-1.1%"},
	}
	fmt.Fprintf(&b, "%-40s %10s %10s\n", "comparison", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s %+9.1f%% %10s\n", r.name, r.measured, r.paper)
	}
	return b.String()
}

// SuiteNames lists the benchmark names in table order (a convenience for
// CLIs and tests).
func SuiteNames() []string {
	var names []string
	for _, b := range circuits.Suite() {
		names = append(names, b.Name)
	}
	return names
}

// SortRowsByTableOrder orders rows to match the paper's tables.
func SortRowsByTableOrder(rows []CircuitRow) {
	order := map[string]int{}
	for i, n := range SuiteNames() {
		order[n] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return order[rows[i].Circuit] < order[rows[j].Circuit]
	})
}
