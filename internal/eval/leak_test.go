package eval

import (
	"context"
	"runtime"
	"testing"
	"time"

	"powermap/internal/core"
	"powermap/internal/huffman"
	"powermap/internal/obs"
)

// TestRunSuiteNoGoroutineLeak guards the exec pool and the runtime sampler
// against leaking workers: after a suite run (with the full observability
// stack live) the goroutine count must return to its pre-run level, within
// a retry window that lets already-exiting goroutines unwind.
func TestRunSuiteNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	sc := obs.New(obs.Config{RunID: "leaktest"})
	ctx, cancel := context.WithCancel(context.Background())
	sampler := sc.StartRuntimeSampler(ctx, time.Millisecond)
	opts := core.Options{Style: huffman.Static, Workers: 4, Obs: sc}
	if _, err := RunSuite(ctx, []core.Method{core.MethodI, core.MethodIV}, opts, []string{"cm42a", "x2"}); err != nil {
		t.Fatal(err)
	}
	sampler.Stop()
	cancel()

	// Workers park on channel receives and exit asynchronously after the
	// suite returns; poll instead of asserting a single instant.
	const slack = 2
	deadline := time.Now().Add(2 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after suite run\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
