package eval

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"powermap/internal/core"
	"powermap/internal/huffman"
	"powermap/internal/obs"
)

// TestHandlerScrapeDuringRunSuite hammers the telemetry endpoints from
// several goroutines while a parallel suite run mutates the scope, proving
// (under -race) that live scrapes never tear counters, spans, or snapshots.
func TestHandlerScrapeDuringRunSuite(t *testing.T) {
	sc := obs.New(obs.Config{RunID: "race-test"})
	srv := httptest.NewServer(sc.Handler())
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, endpoint := range []string{"/metrics", "/trace", "/snapshot"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("scrape %s: %v", url, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("read %s: %v", url, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(srv.URL + endpoint)
	}

	base := core.Options{Style: huffman.Static, Workers: 2, Obs: sc}
	rows, err := RunSuite(context.Background(), []core.Method{core.MethodI, core.MethodV}, base, []string{"x2"})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}

	// One quiescent scrape after the run: the snapshot must carry the run
	// id and the counters the run just incremented.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Error("post-run /metrics scrape is empty")
	}
	sn := sc.Snapshot()
	if sn.RunID != "race-test" {
		t.Errorf("snapshot run_id = %q, want race-test", sn.RunID)
	}
	if sn.Counters["decomp.nodes_planned"] == 0 || sn.Counters["mapper.sites_selected"] == 0 {
		t.Errorf("post-run counters missing: %v", sn.Counters)
	}
}
