package eval

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"powermap/internal/core"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/obs"
	"powermap/internal/power"
)

func TestTable1ShapeAndDeterminism(t *testing.T) {
	rows := Table1(60, 1993)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		if r.Inputs != i+3 {
			t.Errorf("row %d inputs = %d", i, r.Inputs)
		}
		if r.PercentOptimal < 70 || r.PercentOptimal > 100 {
			t.Errorf("n=%d optimality %.1f%% implausible", r.Inputs, r.PercentOptimal)
		}
	}
	// n=3 has only three distinct trees and the greedy evaluates all
	// pairs, so it must be exactly optimal.
	if rows[0].PercentOptimal != 100 {
		t.Errorf("n=3 optimality %.1f%%, want 100", rows[0].PercentOptimal)
	}
	again := Table1(60, 1993)
	for i := range rows {
		if rows[i] != again[i] {
			t.Error("Table1 is not deterministic for a fixed seed")
		}
	}
}

func TestFormatTable1(t *testing.T) {
	out := FormatTable1(Table1(10, 7))
	if !strings.Contains(out, "numbers of input") || !strings.Contains(out, "3") {
		t.Errorf("unexpected format:\n%s", out)
	}
}

func TestRunSuiteSmall(t *testing.T) {
	rows, err := RunSuite(context.Background(), core.Methods(), core.Options{Style: huffman.Static}, []string{"cm42a", "alu2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for _, m := range core.Methods() {
			rep, ok := r.Results[m]
			if !ok {
				t.Fatalf("%s missing method %v", r.Circuit, m)
			}
			if rep.Gates == 0 || rep.PowerUW <= 0 || rep.GateArea <= 0 || rep.Delay <= 0 {
				t.Errorf("%s method %v degenerate: %+v", r.Circuit, m, rep)
			}
		}
		// The headline shape on each circuit: pd-map (IV) beats ad-map (I)
		// on power under the common constraint.
		if r.Results[core.MethodIV].PowerUW > r.Results[core.MethodI].PowerUW*1.02 {
			t.Errorf("%s: pd-map power %.2f not better than ad-map %.2f",
				r.Circuit, r.Results[core.MethodIV].PowerUW, r.Results[core.MethodI].PowerUW)
		}
	}
	// Formatting and summary must not choke.
	table := FormatTable(rows, core.Methods())
	if !strings.Contains(table, "cm42a") || !strings.Contains(table, "alu2") {
		t.Errorf("format missing circuits:\n%s", table)
	}
	s := Summarize(rows)
	if s.PdPower >= 0 {
		t.Errorf("summary pd power change %.2f%% not negative", s.PdPower)
	}
	txt := FormatSummary(s)
	if !strings.Contains(txt, "paper") {
		t.Errorf("summary format:\n%s", txt)
	}
}

func TestRunSuiteUnknownCircuit(t *testing.T) {
	if _, err := RunSuite(context.Background(), core.Methods(), core.Options{Style: huffman.Static}, []string{"bogus"}); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestSortRowsByTableOrder(t *testing.T) {
	rows := []CircuitRow{{Circuit: "alu2"}, {Circuit: "s208"}, {Circuit: "cm42a"}}
	SortRowsByTableOrder(rows)
	if rows[0].Circuit != "s208" || rows[1].Circuit != "cm42a" || rows[2].Circuit != "alu2" {
		t.Errorf("order: %v %v %v", rows[0].Circuit, rows[1].Circuit, rows[2].Circuit)
	}
}

func TestSummarizeArithmetic(t *testing.T) {
	mk := func(a, d, p float64) power.Report { return power.Report{GateArea: a, Delay: d, PowerUW: p} }
	rows := []CircuitRow{{
		Circuit: "x",
		Results: map[core.Method]power.Report{
			core.MethodI:   mk(100, 10, 100),
			core.MethodII:  mk(100, 10, 90), // -10%
			core.MethodIII: mk(100, 10, 90),
			core.MethodIV:  mk(110, 10, 80), // vs I: +10% area, -20% power
			core.MethodV:   mk(110, 10, 72), // vs IV: -10% power
			core.MethodVI:  mk(110, 10, 72),
		},
	}}
	s := Summarize(rows)
	if !closeTo(s.MinpowerPower, -10) {
		t.Errorf("MinpowerPower = %v, want -10", s.MinpowerPower)
	}
	if !closeTo(s.PdArea, 10) {
		t.Errorf("PdArea = %v, want 10", s.PdArea)
	}
	// PdPower: IV/I = -20, V/II = -20, VI/III = -20.
	if !closeTo(s.PdPower, -20) {
		t.Errorf("PdPower = %v, want -20", s.PdPower)
	}
	if !closeTo(s.BHDelay, 0) {
		t.Errorf("BHDelay = %v, want 0", s.BHDelay)
	}
}

func closeTo(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestCorrelatedExperiment(t *testing.T) {
	// With independent inputs both trees must measure (statistically) the
	// same; with strong pair correlation the Equation 7–9 tree must win.
	indep, err := Correlated(4, 0, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := indep.ImprovementPct; d > 3 || d < -3 {
		t.Errorf("rho=0: improvement %.1f%% should be ~0", d)
	}
	strong, err := Correlated(4, 0.9, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if strong.ImprovementPct < 5 {
		t.Errorf("rho=0.9: improvement %.1f%%, want clearly positive", strong.ImprovementPct)
	}
	if strong.CorrMeasured >= strong.IndepMeasured {
		t.Errorf("correlated tree %.4f not below independence tree %.4f",
			strong.CorrMeasured, strong.IndepMeasured)
	}
}

func TestCorrelatedValidation(t *testing.T) {
	if _, err := Correlated(1, 0.5, 100, 1); err == nil {
		t.Error("single pair accepted")
	}
	if _, err := Correlated(3, 1.5, 100, 1); err == nil {
		t.Error("rho > 1 accepted")
	}
	if _, err := Correlated(3, 0.5, 0, 1); err == nil {
		t.Error("zero vectors accepted")
	}
}

func TestFormatCorrelated(t *testing.T) {
	r, err := Correlated(3, 0.5, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCorrelated([]CorrelatedResult{r})
	if !strings.Contains(out, "rho") || !strings.Contains(out, "0.50") {
		t.Errorf("format:\n%s", out)
	}
}

func TestSuiteNames(t *testing.T) {
	names := SuiteNames()
	if len(names) != 17 || names[0] != "s208" || names[len(names)-1] != "ex2" {
		t.Errorf("suite names: %v", names)
	}
}

// TestRunSuiteTelemetryLabels checks satellite instrumentation of the
// suite: every (circuit, method) run tags its spans and metrics with job
// labels, and those labels survive the worker-pool fan-out.
func TestRunSuiteTelemetryLabels(t *testing.T) {
	sc := obs.New(obs.Config{})
	base := core.Options{Style: huffman.Static, Obs: sc, Workers: 2}
	methods := []core.Method{core.MethodI, core.MethodVI}
	if _, err := RunSuite(context.Background(), methods, base, []string{"cm42a", "x2"}); err != nil {
		t.Fatal(err)
	}
	sn := sc.Snapshot()
	for _, key := range []string{
		`eval.runs{circuit="cm42a",method="I"}`,
		`eval.runs{circuit="cm42a",method="VI"}`,
		`eval.runs{circuit="x2",method="I"}`,
		`eval.runs{circuit="x2",method="VI"}`,
	} {
		if sn.Counters[key] != 1 {
			t.Errorf("counter %s = %d, want 1 (have %v)", key, sn.Counters[key], sn.Counters)
		}
	}
	runs, refs := 0, 0
	for _, sp := range sn.Spans {
		switch sp.Name {
		case "eval.run":
			runs++
			if sp.Attrs["circuit"] == nil || sp.Attrs["method"] == nil {
				t.Errorf("eval.run span missing job labels: %#v", sp.Attrs)
			}
			if sp.Attrs["gates"] == nil {
				t.Errorf("eval.run span missing gates attr: %#v", sp.Attrs)
			}
		case "eval.reference":
			refs++
			if sp.Attrs["stage"] != "reference" {
				t.Errorf("reference span attrs = %#v", sp.Attrs)
			}
		case "decompose", "map":
			// Pipeline phases inherit the job labels through the context
			// even when run from a pool worker goroutine.
			if sp.Attrs["circuit"] == nil {
				t.Errorf("%s span lost its job label: %#v", sp.Name, sp.Attrs)
			}
		}
	}
	if runs != 4 {
		t.Errorf("eval.run spans = %d, want 4", runs)
	}
	if refs != 2 {
		t.Errorf("eval.reference spans = %d, want 2", refs)
	}
	// The suite fan-out runs under labeled worker tracks.
	workerTracks := 0
	for _, name := range sc.TrackNames() {
		if strings.HasPrefix(name, "eval.suite/w") || strings.HasPrefix(name, "eval.reference/w") {
			workerTracks++
		}
	}
	if workerTracks == 0 {
		t.Errorf("no eval worker tracks allocated: %v", sc.TrackNames())
	}
}

func TestRunSuiteJournaled(t *testing.T) {
	dir := t.TempDir()
	sc := obs.New(obs.Config{})
	methods := []core.Method{core.MethodI, core.MethodV}
	rows, err := RunSuiteJournaled(context.Background(), methods,
		core.Options{Obs: sc, Workers: 2}, []string{"x2"},
		JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}

	// One journal per run: the reference run plus one per method.
	want := []string{"x2-I.jsonl", "x2-V.jsonl", "x2-ref.jsonl"}
	runID := ""
	for _, name := range want {
		run, err := journal.ReadRunFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h := run.Header
		if h.Circuit != "x2" {
			t.Errorf("%s: circuit = %q", name, h.Circuit)
		}
		if runID == "" {
			runID = h.RunID
		} else if h.RunID != runID {
			t.Errorf("%s: run_id = %q, want %q (all files share one suite ID)", name, h.RunID, runID)
		}
		if run.Counts[journal.TypeDecompNode] == 0 || run.Counts[journal.TypeMapSite] == 0 {
			t.Errorf("%s: missing provenance events: %v", name, run.Counts)
		}
		// Attribution must cover the report total exactly (same walk).
		if run.Report == nil {
			t.Fatalf("%s: no report event", name)
		}
		if run.Report.AttributedUW != run.Report.PowerUW {
			t.Errorf("%s: attributed %.9f != report %.9f", name, run.Report.AttributedUW, run.Report.PowerUW)
		}
	}
	ref, _ := journal.ReadRunFile(filepath.Join(dir, "x2-ref.jsonl"))
	if ref.Header.Stage != "reference" {
		t.Errorf("reference stage = %q", ref.Header.Stage)
	}
	if got := ref.Header.Method; got != "I" {
		t.Errorf("reference method = %q", got)
	}

	// The journaled suite must agree with a plain run: journaling is
	// observation, never perturbation.
	plain, err := RunSuite(context.Background(), methods, core.Options{Workers: 2}, []string{"x2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range methods {
		if rows[0].Results[m] != plain[0].Results[m] {
			t.Errorf("method %v: journaled %+v != plain %+v", m, rows[0].Results[m], plain[0].Results[m])
		}
	}

	// Fingerprint counters match the journal event totals.
	sn := sc.Snapshot()
	var nodes, sites int
	for _, name := range want {
		run, _ := journal.ReadRunFile(filepath.Join(dir, name))
		nodes += run.Counts[journal.TypeDecompNode]
		sites += run.Counts[journal.TypeMapSite]
	}
	if got := sn.Counters["decomp.nodes_planned"]; got != int64(nodes) {
		t.Errorf("decomp.nodes_planned = %d, journals hold %d decomp.node events", got, nodes)
	}
	if got := sn.Counters["mapper.sites_selected"]; got != int64(sites) {
		t.Errorf("mapper.sites_selected = %d, journals hold %d map.site events", got, sites)
	}
}
