package eval

import (
	"context"
	"strings"
	"testing"

	"powermap/internal/core"
)

// TestCompareBackendsSmall runs the structural-vs-cuts comparison on two
// small benchmarks and checks the protocol outcome: both legs verified,
// both reports populated, and the cuts leg meeting the same required
// times (delay within the shared 0.1% slack of the structural leg's).
func TestCompareBackendsSmall(t *testing.T) {
	rows, err := CompareBackends(context.Background(), core.Options{}, core.MethodVI, []string{"cm42a", "x2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Structural.Gates == 0 || r.Cuts.Gates == 0 {
			t.Errorf("%s: empty report (structural %d gates, cuts %d)", r.Circuit, r.Structural.Gates, r.Cuts.Gates)
		}
		if r.Cuts.Delay > r.Structural.Delay*1.001+1e-9 {
			t.Errorf("%s: cuts delay %.3f exceeds the common required time %.3f",
				r.Circuit, r.Cuts.Delay, r.Structural.Delay*1.001)
		}
	}
	table := FormatBackendTable(rows)
	for _, want := range []string{"cm42a", "x2", "mean", "area%"} {
		if !strings.Contains(table, want) {
			t.Errorf("formatted table missing %q:\n%s", want, table)
		}
	}
}

// TestCompareBackendsUnknownCircuit mirrors the suite harness contract:
// an unknown name is an error, not a silent skip.
func TestCompareBackendsUnknownCircuit(t *testing.T) {
	if _, err := CompareBackends(context.Background(), core.Options{}, core.MethodVI, []string{"nope"}); err == nil {
		t.Fatal("want error for unknown circuit")
	}
}
