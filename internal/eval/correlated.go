package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/sim"
	"powermap/internal/sop"
)

// CorrelatedResult compares decomposition trees for a domino AND whose
// inputs are pairwise correlated (Section 2.1.1): a tree built assuming
// independence (plain Huffman on the marginals) versus a tree built with
// the Equation 7–9 correlated algebra. Activities are *measured* by
// simulating the correlated input stream, so the numbers reflect the true
// objective rather than either algebra's own estimate.
type CorrelatedResult struct {
	Inputs          int
	Correlation     float64 // pair mixing strength ρ
	IndepMeasured   float64 // simulated activity of the independence-built tree
	CorrMeasured    float64 // simulated activity of the correlation-aware tree
	ImprovementPct  float64 // 100·(Indep-Corr)/Indep
	IndepTreeHeight int
	CorrTreeHeight  int
}

// Correlated runs the correlated-decomposition experiment on a 2k-input
// p-type domino AND. Inputs form pairs: within a pair the second input
// copies the first with probability rho and is otherwise independent.
func Correlated(pairs int, rho float64, vectors int, seed int64) (CorrelatedResult, error) {
	if pairs < 2 {
		return CorrelatedResult{}, fmt.Errorf("eval: need at least 2 pairs, got %d", pairs)
	}
	if rho < 0 || rho > 1 {
		return CorrelatedResult{}, fmt.Errorf("eval: correlation %v outside [0,1]", rho)
	}
	n := 2 * pairs
	// Skewed per-pair base probabilities give the trees room to differ.
	base := make([]float64, pairs)
	for i := range base {
		base[i] = 0.35 + 0.5*float64(i)/float64(pairs-1)
	}
	// Exact marginals and pairwise joints of the generative model:
	// x0 ~ Bern(p); x1 = x0 with prob rho, else fresh Bern(p).
	p1 := make([]float64, n)
	joint := make([][]float64, n)
	for i := range joint {
		joint[i] = make([]float64, n)
	}
	for k := 0; k < pairs; k++ {
		p := base[k]
		a, b := 2*k, 2*k+1
		p1[a], p1[b] = p, p
		jab := rho*p + (1-rho)*p*p
		joint[a][b], joint[b][a] = jab, jab
	}
	for i := 0; i < n; i++ {
		joint[i][i] = p1[i]
		for j := 0; j < n; j++ {
			if joint[i][j] == 0 && i != j {
				joint[i][j] = p1[i] * p1[j] // across pairs: independent
			}
		}
	}

	// Tree A: plain Huffman assuming independence.
	alg := huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: huffman.DominoP}
	leavesA := make([]huffman.Signal, n)
	for i, p := range p1 {
		leavesA[i] = huffman.SignalFromProb(p)
	}
	treeA := huffman.Build[huffman.Signal](alg, leavesA)

	// Tree B: correlation-aware Modified Huffman (Equations 7–9).
	corr, err := huffman.NewCorrDomino(false, p1, joint)
	if err != nil {
		return CorrelatedResult{}, err
	}
	treeB := huffman.BuildModified[huffman.CorrState](corr, corr.Leaves())

	// Measure both trees under the true correlated stream.
	measure := func(shape treeShape) (float64, error) {
		nw, names := andTreeNetwork(shape, n)
		src := pairSource(names, base, rho, seed)
		est, err := sim.ActivitiesFrom(nw, src, vectors)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for _, node := range nw.Nodes {
			if node.Kind == network.Internal {
				// Domino-p: the gate switches when it evaluates to 1.
				total += est[node].Prob1
			}
		}
		return total, nil
	}
	mA, err := measure(shapeOfSignal(treeA))
	if err != nil {
		return CorrelatedResult{}, err
	}
	mB, err := measure(shapeOfCorr(treeB))
	if err != nil {
		return CorrelatedResult{}, err
	}
	res := CorrelatedResult{
		Inputs:          n,
		Correlation:     rho,
		IndepMeasured:   mA,
		CorrMeasured:    mB,
		IndepTreeHeight: treeA.Height(),
		CorrTreeHeight:  treeB.Height(),
	}
	if mA > 0 {
		res.ImprovementPct = 100 * (mA - mB) / mA
	}
	return res, nil
}

// treeShape is an algebra-free binary tree over leaf indices.
type treeShape struct {
	leaf int
	l, r *treeShape
}

func shapeOfSignal(t *huffman.Tree[huffman.Signal]) treeShape {
	if t.IsLeaf() {
		return treeShape{leaf: t.Leaf}
	}
	l, r := shapeOfSignal(t.Left), shapeOfSignal(t.Right)
	return treeShape{leaf: -1, l: &l, r: &r}
}

func shapeOfCorr(t *huffman.Tree[huffman.CorrState]) treeShape {
	if t.IsLeaf() {
		return treeShape{leaf: t.Leaf}
	}
	l, r := shapeOfCorr(t.Left), shapeOfCorr(t.Right)
	return treeShape{leaf: -1, l: &l, r: &r}
}

// andTreeNetwork materializes a decomposition shape as a network of AND2
// nodes over n fresh primary inputs named x0..x{n-1}.
func andTreeNetwork(shape treeShape, n int) (*network.Network, []string) {
	nw := network.New("andtree")
	names := make([]string, n)
	pis := make([]*network.Node, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("x%d", i)
		pis[i] = nw.AddPI(names[i])
	}
	and2 := func() *sop.Cover {
		f := sop.NewCover(2)
		f.AddCube(sop.Cube{sop.Pos, sop.Pos})
		return f
	}
	seq := 0
	var build func(s treeShape) *network.Node
	build = func(s treeShape) *network.Node {
		if s.leaf >= 0 {
			return pis[s.leaf]
		}
		l, r := build(*s.l), build(*s.r)
		seq++
		return nw.AddNode(fmt.Sprintf("t%d", seq), []*network.Node{l, r}, and2())
	}
	root := build(shape)
	nw.MarkOutput("y", root)
	return nw, names
}

// pairSource draws correlated input vectors: within each pair the second
// input copies the first with probability rho.
func pairSource(names []string, base []float64, rho float64, seed int64) sim.VectorSource {
	r := rand.New(rand.NewSource(seed))
	return func(dst map[string]bool) {
		for k, p := range base {
			a := r.Float64() < p
			b := a
			if r.Float64() >= rho {
				b = r.Float64() < p
			}
			dst[names[2*k]] = a
			dst[names[2*k+1]] = b
		}
	}
}

// FormatCorrelated renders a sweep of the correlated experiment.
func FormatCorrelated(rows []CorrelatedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %14s %14s %12s\n",
		"inputs", "rho", "indep tree", "corr tree", "improvement")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-6.2f %14.4f %14.4f %+11.1f%%\n",
			r.Inputs, r.Correlation, r.IndepMeasured, r.CorrMeasured, -r.ImprovementPct)
	}
	return b.String()
}
