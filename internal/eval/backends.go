package eval

import (
	"context"
	"fmt"
	"strings"

	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/exec"
	"powermap/internal/mapper"
	"powermap/internal/obs"
	"powermap/internal/power"
	"powermap/internal/verify"
)

// BackendRow is one benchmark's structural-vs-cuts mapper comparison under
// common timing constraints.
type BackendRow struct {
	Circuit    string
	Structural power.Report
	Cuts       power.Report
}

// CompareBackends synthesizes every named benchmark with the given method
// under both mapper backends. The RunSuite protocol applies: a structural
// reference run fixes each circuit's per-output required times, and both
// backends are then mapped under those common constraints, so the rows
// compare matching power/area at equal performance. Every run is
// self-verifying (source ≡ optimized ≡ decomposed ≡ mapped). A nil or
// empty names slice runs the full suite.
func CompareBackends(ctx context.Context, base core.Options, method core.Method, names []string) ([]BackendRow, error) {
	suite := circuits.Suite()
	if len(names) > 0 {
		var filtered []circuits.Benchmark
		for _, name := range names {
			b, err := circuits.ByName(name)
			if err != nil {
				return nil, err
			}
			filtered = append(filtered, b)
		}
		suite = filtered
	}
	ctx = obs.WithScope(ctx, base.Obs)
	workers := exec.Workers(base.Workers)
	inner := base.Workers
	if workers > 1 {
		inner = 1
	}
	rows, err := exec.Map(exec.WithLabel(ctx, "eval.backends"), workers, len(suite), func(ctx context.Context, i int) (BackendRow, error) {
		b := suite[i]
		ctx = obs.WithLabels(ctx, "circuit", b.Name, "method", method.String())
		span := base.Obs.StartCtx(ctx, "eval.backends")
		defer span.End()
		run := func(backend mapper.Backend, req map[string]float64) (*core.Result, error) {
			o := base
			o.Method = method
			o.Mapper = backend
			if backend != mapper.BackendCuts {
				o.LUT = 0 // LUT mode only applies to the cuts leg
			}
			o.PORequired = req
			o.Workers = inner
			src := b.Build()
			res, err := core.SynthesizeContext(ctx, src, o)
			if err != nil {
				return nil, fmt.Errorf("eval: %s %s backend: %w", b.Name, backend, err)
			}
			if err := verify.CheckResult(ctx, src, res); err != nil {
				return nil, fmt.Errorf("eval: %s %s backend: %w", b.Name, backend, err)
			}
			return res, nil
		}
		ref, err := run(mapper.BackendStructural, nil)
		if err != nil {
			return BackendRow{}, err
		}
		req := ref.Netlist.OutputArrivals()
		for name, t := range req {
			req[name] = t * 1.001
		}
		structural, err := run(mapper.BackendStructural, req)
		if err != nil {
			return BackendRow{}, err
		}
		cuts, err := run(mapper.BackendCuts, req)
		if err != nil {
			return BackendRow{}, err
		}
		return BackendRow{Circuit: b.Name, Structural: structural.Report, Cuts: cuts.Report}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatBackendTable renders the structural-vs-cuts comparison with
// per-circuit percentage deltas and a mean-change footer.
func FormatBackendTable(rows []BackendRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s | %21s | %21s | %s\n", "circuit", "structural", "cuts", "delta")
	fmt.Fprintf(&b, "%-8s | %6s %6s %7s | %6s %6s %7s | %7s %7s\n",
		"", "area", "delay", "power", "area", "delay", "power", "area%", "power%")
	var sumArea, sumPower float64
	for _, r := range rows {
		da := pct(r.Cuts.GateArea, r.Structural.GateArea)
		dp := pct(r.Cuts.PowerUW, r.Structural.PowerUW)
		sumArea += da
		sumPower += dp
		fmt.Fprintf(&b, "%-8s | %6.0f %6.2f %7.1f | %6.0f %6.2f %7.1f | %+6.1f%% %+6.1f%%\n",
			r.Circuit,
			r.Structural.GateArea, r.Structural.Delay, r.Structural.PowerUW,
			r.Cuts.GateArea, r.Cuts.Delay, r.Cuts.PowerUW, da, dp)
	}
	if n := len(rows); n > 0 {
		fmt.Fprintf(&b, "%-8s | %21s | %21s | %+6.1f%% %+6.1f%%\n",
			"mean", "", "", sumArea/float64(n), sumPower/float64(n))
	}
	return b.String()
}
