package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"powermap/internal/bdd"
	"powermap/internal/blif"
	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/exec"
	"powermap/internal/network"
	"powermap/internal/obs"
)

// maxBodyBytes bounds a POST /synth payload; BLIF for the paper-scale
// circuits is a few hundred KiB at most.
const maxBodyBytes = 8 << 20

// Config sizes the daemon. Zero fields take the documented defaults.
type Config struct {
	// MaxInflight bounds concurrently synthesizing requests (default: one
	// per CPU, via exec.Workers).
	MaxInflight int
	// QueueDepth bounds requests waiting for a synthesis slot; the
	// QueueDepth+1-th waiter is refused with 429 (default 2*MaxInflight).
	QueueDepth int
	// CacheSize bounds the result cache entries (default 128).
	CacheSize int
	// PoolSize bounds the warm BDD-manager pool (default MaxInflight).
	PoolSize int
	// Workers is the per-request pipeline worker count (default 1: the
	// service parallelizes across requests, not inside them).
	Workers int
	// DefaultTimeout budgets requests that don't set timeout_ms (default
	// 60s); MaxTimeout clamps requests that do (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// BDDLimit is the default live-node budget for requests that don't
	// set bdd_limit (0 keeps the kernel default). When both are set the
	// request may only lower it: the server value is the ceiling.
	BDDLimit int
	// Scope receives the daemon's telemetry and backs /healthz, /readyz,
	// /metrics and the debug endpoints. Nil disables instrumentation.
	Scope *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = exec.Workers(0)
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.MaxInflight
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.PoolSize <= 0 {
		c.PoolSize = c.MaxInflight
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the synthesis service: Handler() is its HTTP surface, Drain()
// its graceful stop. Create with New.
type Server struct {
	cfg   Config
	pool  *bdd.Pool
	cache *cache

	sem      chan struct{}
	queued   atomic.Int64
	inflight sync.WaitGroup
	draining atomic.Bool
	drainCh  chan struct{}
	drainDo  sync.Once

	// run executes one admitted, cache-missed request. Tests substitute
	// deterministic stand-ins (a blocker for 429, a sleeper for 408);
	// production is Server.synthesize.
	run func(ctx context.Context, nw *network.Network, req Request, rv resolved) (*Response, error)
}

// New builds a Server; Explicit QueueDepth < 0 means "no waiting room".
func New(cfg Config) *Server {
	// A negative QueueDepth survives withDefaults as 0: refuse on busy.
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    bdd.NewPool(cfg.PoolSize),
		cache:   newCache(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.MaxInflight),
		drainCh: make(chan struct{}),
	}
	s.run = s.synthesize
	return s
}

// Pool exposes the warm manager pool (for pre-warming and stats).
func (s *Server) Pool() *bdd.Pool { return s.pool }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting work (new synthesis requests and queued waiters
// get 503, /readyz flips to 503) and blocks until every in-flight request
// finished. Idempotent; concurrent callers all block until the first
// drain completes.
func (s *Server) Drain() {
	s.drainDo.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	s.inflight.Wait()
}

// Handler returns the daemon's full HTTP surface: POST /synth, the
// drain-aware /readyz, and the scope's telemetry endpoints (/metrics,
// /healthz, /debug/flight, /debug/pprof, ...) for everything else.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /synth", s.handleSynth)
	mux.HandleFunc("/synth", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", http.MethodPost)
		s.writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
	})
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/", s.cfg.Scope.Handler())
	return mux
}

// handleReady is /readyz with the drain state folded in: a draining
// daemon is alive (in-flight work is finishing) but must not be routed
// new requests.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	h := s.cfg.Scope.Health()
	if s.draining.Load() {
		h.Ready = false
		h.Reasons = append(h.Reasons, "draining")
	}
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		s.cfg.Scope.LogError("readyz write failed", "err", err)
	}
}

// admit acquires a synthesis slot. It returns a non-nil release func on
// success; otherwise the HTTP status to refuse with — 503 draining, 429
// queue full, 408 budget expired while queued.
func (s *Server) admit(ctx context.Context) (release func(), status int) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable
	}
	acquired := func() func() {
		s.inflight.Add(1)
		s.observeGauges()
		var once sync.Once
		return func() {
			once.Do(func() {
				<-s.sem
				s.inflight.Done()
				s.observeGauges()
			})
		}
	}
	select {
	case s.sem <- struct{}{}:
		return acquired(), 0
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return nil, http.StatusTooManyRequests
	}
	defer func() {
		s.queued.Add(-1)
		s.observeGauges()
	}()
	s.observeGauges()
	select {
	case s.sem <- struct{}{}:
		return acquired(), 0
	case <-ctx.Done():
		return nil, http.StatusRequestTimeout
	case <-s.drainCh:
		return nil, http.StatusServiceUnavailable
	}
}

func (s *Server) observeGauges() {
	sc := s.cfg.Scope
	if sc == nil {
		return
	}
	sc.Gauge("serve.inflight").Set(float64(len(s.sem)))
	sc.Gauge("serve.queued").Set(float64(s.queued.Load()))
	idle := s.pool.Idle()
	sc.Gauge("serve.pool_idle").Set(float64(idle))
}

// handleSynth is POST /synth: parse → cache probe → admission →
// synthesis → cache fill, with the status-code contract of DESIGN.md §16.
func (s *Server) handleSynth(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status, body := s.serveSynth(r)
	s.writeJSON(w, status, body)
	sc := s.cfg.Scope
	if sc == nil {
		return
	}
	sc.Counter("serve.requests").With("code", fmt.Sprint(status)).Inc()
	sc.Histogram("serve.latency_ms").Observe(float64(time.Since(start)) / float64(time.Millisecond))
	hits, misses, evictions := s.cache.counters()
	sc.Gauge("serve.cache_hits").Set(float64(hits))
	sc.Gauge("serve.cache_misses").Set(float64(misses))
	sc.Gauge("serve.cache_evictions").Set(float64(evictions))
	sc.Gauge("serve.cache_entries").Set(float64(s.cache.len()))
}

// serveSynth computes one request's (status, body). Synthesis panics are
// contained here: the worker answers 500 and stays alive.
func (s *Server) serveSynth(r *http.Request) (status int, body any) {
	start := time.Now()
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()}
	}
	rv, err := req.Options.resolve()
	if err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	var nw *network.Network
	switch {
	case req.Circuit != "" && req.BLIF != "":
		return http.StatusBadRequest, ErrorResponse{Error: "give either circuit or blif, not both"}
	case req.Circuit != "":
		b, err := circuits.ByName(req.Circuit)
		if err != nil {
			return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
		}
		nw = b.Build()
	case req.BLIF != "":
		nw, err = blif.ParseString(req.BLIF)
		if err != nil {
			return http.StatusBadRequest, ErrorResponse{Error: "blif: " + err.Error()}
		}
	default:
		return http.StatusBadRequest, ErrorResponse{Error: "need circuit or blif"}
	}

	key := cacheKey(req.Circuit, req.BLIF, req.Options)
	if resp, ok := s.cache.get(key); ok {
		hit := *resp
		hit.Cached = true
		hit.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		return http.StatusOK, &hit
	}

	timeout := rv.timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	timeout = min(timeout, s.cfg.MaxTimeout)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	release, refuse := s.admit(ctx)
	if refuse != 0 {
		return refuse, ErrorResponse{Error: refuseReason(refuse)}
	}
	defer release()

	resp, err := s.runRecovered(ctx, nw, req, rv)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return http.StatusRequestTimeout, ErrorResponse{Error: fmt.Sprintf("request exceeded its %v budget", timeout)}
		case errors.Is(err, context.Canceled):
			return http.StatusRequestTimeout, ErrorResponse{Error: "request cancelled"}
		case bdd.IsNodeLimit(err):
			return http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()}
		default:
			s.cfg.Scope.LogError("synthesis failed", "circuit", nw.Name, "err", err)
			return http.StatusInternalServerError, ErrorResponse{Error: err.Error()}
		}
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.cache.put(key, resp)
	return http.StatusOK, resp
}

func refuseReason(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return "queue full; retry later"
	case http.StatusServiceUnavailable:
		return "draining"
	case http.StatusRequestTimeout:
		return "request budget expired while queued"
	}
	return http.StatusText(status)
}

// runRecovered invokes the synthesis step with panic containment: a
// panicking request answers 500, the admission slot is released normally,
// and the daemon keeps serving.
func (s *Server) runRecovered(ctx context.Context, nw *network.Network, req Request, rv resolved) (resp *Response, err error) {
	defer func() {
		if p := recover(); p != nil {
			resp, err = nil, fmt.Errorf("synthesis panicked: %v", p)
		}
	}()
	return s.run(ctx, nw, req, rv)
}

// synthesize is the production run function: the full pipeline with the
// warm pool threaded through every BDD allocation, then verification and
// netlist rendering per the request.
func (s *Server) synthesize(ctx context.Context, nw *network.Network, req Request, rv resolved) (*Response, error) {
	probs := make(map[string]float64, len(nw.PIs))
	for _, name := range nw.PINames() {
		probs[name] = rv.piProb
	}
	bddCfg := bdd.Config{Pool: s.pool, NodeLimit: s.bddLimit(rv), Reorder: rv.reorder}
	res, err := core.SynthesizeContext(ctx, nw, core.Options{
		Method:          rv.method,
		Style:           rv.style,
		PIProb:          probs,
		Mapper:          rv.backend,
		LUT:             rv.lut,
		TreeMode:        rv.treeMode,
		Workers:         s.cfg.Workers,
		Obs:             s.cfg.Scope,
		BDD:             bddCfg,
		Activity:        rv.activity,
		ActivityVectors: req.Options.Vectors,
	})
	if err != nil {
		return nil, err
	}
	defer res.Release()
	out := &Response{
		Circuit: req.Circuit,
		Method:  rv.method.String(),
		Report: Report{
			Gates:   res.Report.Gates,
			Area:    res.Report.GateArea,
			DelayNS: res.Report.Delay,
			PowerUW: res.Report.PowerUW,
		},
		SubjectNodes:  res.Decomp.Network.Stats().Nodes,
		TotalActivity: res.Decomp.TotalActivity,
	}
	if out.Circuit == "" {
		out.Circuit = nw.Name
	}
	if rv.verify {
		if err := core.VerifyAgainstSourceWith(ctx, nw, res, bddCfg); err != nil {
			return nil, err
		}
		ok := true
		out.Verified = &ok
	}
	if rv.netlist {
		var buf bytes.Buffer
		if err := res.Netlist.WriteBLIF(&buf); err != nil {
			return nil, err
		}
		out.NetlistBLIF = buf.String()
	}
	return out, nil
}

// bddLimit resolves the request's live-node budget against the server's:
// the request may tighten the server ceiling, never exceed it.
func (s *Server) bddLimit(rv resolved) int {
	switch {
	case rv.bddLimit == 0:
		return s.cfg.BDDLimit
	case s.cfg.BDDLimit == 0:
		return rv.bddLimit
	default:
		return min(rv.bddLimit, s.cfg.BDDLimit)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		s.cfg.Scope.LogError("response write failed", "err", err)
	}
}
