package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Default hardening for every HTTP listener this repository opens (the
// pserve API and the CLI -serve telemetry endpoint share them).
const (
	// DefaultReadHeaderTimeout bounds how long a connection may dribble its
	// request headers, closing the slowloris hole a bare http.Serve leaves
	// open.
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultIdleTimeout reclaims keep-alive connections that went quiet.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultShutdownGrace is how long Shutdown waits for in-flight
	// responses before the server is closed hard.
	DefaultShutdownGrace = 10 * time.Second
)

// HTTPOptions configures ListenAndServe's http.Server and its shutdown.
// Zero fields take the defaults above.
type HTTPOptions struct {
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	ShutdownGrace     time.Duration
	// OnShutdown, when non-nil, runs as soon as the context is cancelled,
	// before Shutdown stops accepting connections — the place to flip
	// /readyz to draining and wait out in-flight synthesis work.
	OnShutdown func()
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	if o.ShutdownGrace == 0 {
		o.ShutdownGrace = DefaultShutdownGrace
	}
	return o
}

// ListenAndServe serves h on ln with read-header and idle timeouts until
// ctx is cancelled, then drains gracefully: OnShutdown runs, the listener
// stops accepting, and in-flight responses get ShutdownGrace to finish
// before the server closes hard. A clean drain returns nil (an interrupt
// is the intended way to stop, not an error); anything else is the serve
// or shutdown failure.
func ListenAndServe(ctx context.Context, ln net.Listener, h http.Handler, opts HTTPOptions) error {
	opts = opts.withDefaults()
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		IdleTimeout:       opts.IdleTimeout,
	}
	// The watcher goroutine must always be released, including when Serve
	// fails on its own (bad listener): cancelling on return guarantees it.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		if opts.OnShutdown != nil {
			opts.OnShutdown()
		}
		graceCtx, cancel := context.WithTimeout(context.Background(), opts.ShutdownGrace)
		defer cancel()
		err := srv.Shutdown(graceCtx)
		if err != nil {
			// Grace expired with responses still streaming: close hard
			// rather than hang the process on a stuck client.
			srv.Close()
		}
		shutdownErr <- err
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	select {
	case err := <-shutdownErr:
		return err
	case <-time.After(opts.ShutdownGrace + time.Second):
		return errors.New("serve: shutdown did not complete")
	}
}
