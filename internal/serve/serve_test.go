package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"powermap/internal/network"
)

func postSynth(t *testing.T, h http.Handler, body string) (int, map[string]any) {
	t.Helper()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/synth", strings.NewReader(body))
	h.ServeHTTP(rr, req)
	var out map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("non-JSON response (%d): %v\n%s", rr.Code, err, rr.Body.String())
	}
	return rr.Code, out
}

// TestSynthesizeAndCacheHit runs the real pipeline end to end: a bundled
// circuit synthesizes to a 200 with a positive power figure and a verified
// netlist, and the identical re-request is served from the cache.
func TestSynthesizeAndCacheHit(t *testing.T) {
	s := New(Config{MaxInflight: 2})
	h := s.Handler()
	body := `{"circuit": "cm42a", "options": {"method": "VI", "verify": true, "netlist": true}}`

	code, out := postSynth(t, h, body)
	if code != 200 {
		t.Fatalf("synthesis = %d: %v", code, out)
	}
	rep, _ := out["report"].(map[string]any)
	if p, _ := rep["power_uw"].(float64); p <= 0 {
		t.Errorf("power_uw = %v, want > 0", rep["power_uw"])
	}
	if v, _ := out["verified"].(bool); !v {
		t.Errorf("verified = %v, want true", out["verified"])
	}
	if nl, _ := out["netlist_blif"].(string); !strings.Contains(nl, ".model") {
		t.Errorf("netlist_blif missing BLIF content: %q", nl)
	}
	if cached, _ := out["cached"].(bool); cached {
		t.Error("first request claims cached")
	}

	// The same computation spelled with explicit defaults hits the cache.
	code, out = postSynth(t, h,
		`{"circuit": "cm42a", "options": {"method": "vi", "style": "static", "mapper": "dag", "activity": "exact", "pi_prob": 0.5, "verify": true, "netlist": true, "timeout_ms": 9999}}`)
	if code != 200 {
		t.Fatalf("re-request = %d: %v", code, out)
	}
	if cached, _ := out["cached"].(bool); !cached {
		t.Error("identical re-request missed the cache")
	}
	hits, misses, _ := s.cache.counters()
	if hits != 1 || misses != 1 {
		t.Errorf("cache counters = %d hits / %d misses, want 1/1", hits, misses)
	}
	if st := s.pool.Stats(); st.Puts == 0 {
		t.Errorf("no manager was recycled into the warm pool: %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"not json", `{`},
		{"unknown field", `{"circiut": "cm42a"}`},
		{"no circuit", `{"options": {}}`},
		{"both sources", `{"circuit": "cm42a", "blif": ".model m\n.end\n"}`},
		{"unknown circuit", `{"circuit": "nope"}`},
		{"bad blif", `{"blif": ".inputs a"}`},
		{"bad method", `{"circuit": "cm42a", "options": {"method": "VII"}}`},
		{"bad style", `{"circuit": "cm42a", "options": {"style": "cmos"}}`},
		{"bad mapper", `{"circuit": "cm42a", "options": {"mapper": "magic"}}`},
		{"lut with tree", `{"circuit": "cm42a", "options": {"mapper": "tree", "lut": 4}}`},
		{"bad activity", `{"circuit": "cm42a", "options": {"activity": "guess"}}`},
		{"bad prob", `{"circuit": "cm42a", "options": {"pi_prob": 1.5}}`},
		{"negative timeout", `{"circuit": "cm42a", "options": {"timeout_ms": -1}}`},
	}
	for _, c := range cases {
		code, out := postSynth(t, h, c.body)
		if code != 400 {
			t.Errorf("%s: code = %d, want 400 (%v)", c.name, code, out)
		}
		if msg, _ := out["error"].(string); msg == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}
	// GET is not part of the API surface.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/synth", nil))
	if rr.Code != 405 {
		t.Errorf("GET /synth = %d, want 405", rr.Code)
	}
}

// blockingServer returns a server whose run function parks until release
// is closed, signalling each entry on started.
func blockingServer(cfg Config) (s *Server, started chan struct{}, release chan struct{}) {
	s = New(cfg)
	started = make(chan struct{}, 16)
	release = make(chan struct{})
	s.run = func(ctx context.Context, _ *network.Network, _ Request, _ resolved) (*Response, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &Response{Circuit: "fake"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, started, release
}

func TestQueueFull429(t *testing.T) {
	s, started, release := blockingServer(Config{MaxInflight: 1, QueueDepth: -1})
	h := s.Handler()
	defer close(release)

	first := make(chan int)
	go func() {
		code, _ := postSynth(t, h, `{"circuit": "cm42a"}`)
		first <- code
	}()
	<-started // the only slot is now held

	code, out := postSynth(t, h, `{"circuit": "cm42a"}`)
	if code != 429 {
		t.Fatalf("over-capacity request = %d (%v), want 429", code, out)
	}
	release <- struct{}{}
	if code := <-first; code != 200 {
		t.Fatalf("blocked request = %d, want 200", code)
	}
}

func TestQueuedTimeout408(t *testing.T) {
	s, started, release := blockingServer(Config{MaxInflight: 1, QueueDepth: 4})
	h := s.Handler()
	defer close(release)

	first := make(chan int)
	go func() {
		code, _ := postSynth(t, h, `{"circuit": "cm42a"}`)
		first <- code
	}()
	<-started

	// This one queues behind the blocked slot and its budget expires there.
	code, out := postSynth(t, h, `{"circuit": "s208", "options": {"timeout_ms": 30}}`)
	if code != 408 {
		t.Fatalf("queued request = %d (%v), want 408", code, out)
	}
	release <- struct{}{}
	if code := <-first; code != 200 {
		t.Fatalf("blocked request = %d, want 200", code)
	}
}

func TestRunningTimeout408(t *testing.T) {
	s, started, release := blockingServer(Config{MaxInflight: 1})
	defer close(release)
	h := s.Handler()
	done := make(chan struct{})
	go func() { <-started; close(done) }()
	code, out := postSynth(t, h, `{"circuit": "cm42a", "options": {"timeout_ms": 30}}`)
	<-done
	if code != 408 {
		t.Fatalf("expired request = %d (%v), want 408", code, out)
	}
}

// TestOverBudget422 drives the real pipeline into its node-limit budget:
// the request fails with 422, the daemon's /healthz stays 200, and the
// next request still synthesizes.
func TestOverBudget422(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	h := s.Handler()

	code, out := postSynth(t, h, `{"circuit": "s344", "options": {"bdd_limit": 64, "activity": "exact"}}`)
	if code != 422 {
		t.Fatalf("over-budget request = %d (%v), want 422", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "node limit") {
		t.Errorf("422 error does not name the node limit: %q", msg)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("/healthz after 422 = %d, want 200 (a refused request is not a sick daemon)", rr.Code)
	}
	if code, _ := postSynth(t, h, `{"circuit": "cm42a"}`); code != 200 {
		t.Fatalf("request after 422 = %d, want 200", code)
	}
}

func TestPanicContained500(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	s.run = func(context.Context, *network.Network, Request, resolved) (*Response, error) {
		panic("kaboom")
	}
	h := s.Handler()
	code, out := postSynth(t, h, `{"circuit": "cm42a"}`)
	if code != 500 {
		t.Fatalf("panicking request = %d (%v), want 500", code, out)
	}
	// The slot was released: a healthy run function serves again.
	s.run = func(context.Context, *network.Network, Request, resolved) (*Response, error) {
		return &Response{Circuit: "ok"}, nil
	}
	if code, _ := postSynth(t, h, `{"circuit": "s208"}`); code != 200 {
		t.Fatalf("request after panic = %d, want 200", code)
	}
}

// TestDrainNoLeak is the SIGTERM story under -race: with a request in
// flight, cancelling the serve context flips /readyz to 503 and refuses
// new synthesis, the in-flight request completes 200, ListenAndServe
// returns cleanly, and no goroutine survives.
func TestDrainNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	s, started, release := blockingServer(Config{MaxInflight: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ListenAndServe(ctx, ln, s.Handler(), HTTPOptions{
			ShutdownGrace: 5 * time.Second,
			OnShutdown:    s.Drain,
		})
	}()
	base := "http://" + ln.Addr().String()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/synth", "application/json",
			strings.NewReader(`{"circuit": "cm42a"}`))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-started // request is inside the run function

	cancel() // the SIGTERM
	waitFor(t, "drain flag", func() bool { return s.Draining() })

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("/readyz during drain: %v", err)
	}
	var hs struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hs)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 503 || hs.Ready || !contains(hs.Reasons, "draining") {
		t.Fatalf("/readyz during drain = %d %+v (err %v), want 503 with reason draining", resp.StatusCode, hs, err)
	}
	resp, err = http.Post(base+"/synth", "application/json", strings.NewReader(`{"circuit": "s208"}`))
	if err != nil {
		t.Fatalf("/synth during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("/synth during drain = %d, want 503", resp.StatusCode)
	}

	release <- struct{}{} // let the in-flight request finish
	if code := <-inflight; code != 200 {
		t.Fatalf("in-flight request during drain = %d, want 200", code)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ListenAndServe after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after drain")
	}
	close(release)

	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}

func TestCanonicalKey(t *testing.T) {
	sparse := cacheKey("cm42a", "", Options{})
	explicit := cacheKey("cm42a", "", Options{
		Method: "vi", Style: "Static", Mapper: "dag", Activity: "EXACT",
		PIProb: 0.5, TimeoutMS: 12345, Vectors: 4096,
	})
	if sparse != explicit {
		t.Error("defaulted and explicit spellings of one computation hash differently")
	}
	if cacheKey("cm42a", "", Options{Method: "I"}) == sparse {
		t.Error("different methods hash identically")
	}
	if cacheKey("s208", "", Options{}) == sparse {
		t.Error("different circuits hash identically")
	}
	if cacheKey("", ".model m\n.end\n", Options{}) == cacheKey("", ".model n\n.end\n", Options{}) {
		t.Error("different BLIF bodies hash identically")
	}
	// Vectors matter under the sampling engine (they change the result).
	if cacheKey("cm42a", "", Options{Activity: "sample", Vectors: 64}) ==
		cacheKey("cm42a", "", Options{Activity: "sample", Vectors: 128}) {
		t.Error("sampling budgets hash identically")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", &Response{Circuit: "a"})
	c.put("b", &Response{Circuit: "b"})
	c.get("a") // a is now most recent
	c.put("c", &Response{Circuit: "c"})
	if _, ok := c.get("b"); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used entry was evicted")
	}
	_, _, evictions := c.counters()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
