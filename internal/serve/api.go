// Package serve implements synthesis-as-a-service: an HTTP/JSON daemon
// (cmd/pserve) that runs the paper's decomposition+mapping pipeline per
// request, with the production concerns the CLI tools don't need — a warm
// pool of Reset-able BDD managers, content-addressed result caching,
// admission control with honest status codes, and graceful drain. See
// DESIGN.md §16 for the architecture and the status-code contract.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"powermap/internal/core"
	"powermap/internal/huffman"
	"powermap/internal/mapper"
	"powermap/internal/prob"
)

// Request is the POST /synth payload: one circuit (a bundled benchmark
// name or literal BLIF text, not both) plus synthesis options.
type Request struct {
	// Circuit names a bundled benchmark (pmap -list).
	Circuit string `json:"circuit,omitempty"`
	// BLIF is a literal BLIF netlist.
	BLIF    string  `json:"blif,omitempty"`
	Options Options `json:"options"`
}

// Options mirrors the pmap flag surface over JSON. Zero values take the
// CLI defaults (method VI, static style, dag mapper, exact activities,
// uniform P(pi=1)=0.5).
type Options struct {
	// Method is the paper method, "I".."VI".
	Method string `json:"method,omitempty"`
	// Style is the design style: static, domino-p, domino-n.
	Style string `json:"style,omitempty"`
	// Mapper selects the match enumerator: tree, dag or cuts.
	Mapper string `json:"mapper,omitempty"`
	// LUT maps k-feasible cuts to generic k-LUTs (2..6, implies cuts).
	LUT int `json:"lut,omitempty"`
	// Activity selects the activity engine: exact, sample or auto.
	Activity string `json:"activity,omitempty"`
	// Vectors is the sampling budget for sample/auto.
	Vectors int `json:"vectors,omitempty"`
	// PIProb is the uniform P(pi=1); 0 means the default 0.5.
	PIProb float64 `json:"pi_prob,omitempty"`
	// BDDLimit caps live BDD nodes for this request; an over-budget
	// network fails with 422. 0 takes the server's default.
	BDDLimit int `json:"bdd_limit,omitempty"`
	// Reorder enables dynamic BDD variable reordering.
	Reorder bool `json:"reorder,omitempty"`
	// TimeoutMS bounds the request's wall time; expiry returns 408.
	// 0 takes the server default; the server's -max-timeout clamps it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Verify additionally proves the result equivalent to the source.
	Verify bool `json:"verify,omitempty"`
	// Netlist returns the mapped netlist as BLIF in the response.
	Netlist bool `json:"netlist,omitempty"`
}

// Report is the paper's three reported metrics plus gate count.
type Report struct {
	Gates   int     `json:"gates"`
	Area    float64 `json:"area"`
	DelayNS float64 `json:"delay_ns"`
	PowerUW float64 `json:"power_uw"`
}

// Response is the 200 body of POST /synth.
type Response struct {
	Circuit       string  `json:"circuit"`
	Method        string  `json:"method"`
	Report        Report  `json:"report"`
	SubjectNodes  int     `json:"subject_nodes"`
	TotalActivity float64 `json:"total_activity"`
	// Verified is present only when the request asked for verification.
	Verified *bool `json:"verified,omitempty"`
	// NetlistBLIF is present only when the request asked for the netlist.
	NetlistBLIF string `json:"netlist_blif,omitempty"`
	// Cached reports whether this response was served from the result
	// cache rather than synthesized.
	Cached bool `json:"cached"`
	// ElapsedMS is this request's service time (near zero on a hit).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-200 status.
type ErrorResponse struct {
	Error string `json:"error"`
}

// resolved is an Options value parsed into pipeline types.
type resolved struct {
	method   core.Method
	style    huffman.Style
	backend  mapper.Backend
	treeMode bool
	lut      int
	activity prob.Policy
	piProb   float64
	bddLimit int
	reorder  bool
	timeout  time.Duration
	verify   bool
	netlist  bool
}

// resolve validates o and fills defaults. The string enums are parsed
// here rather than through internal/cli (which imports this package for
// the shared graceful listener); the accepted spellings match the flags.
func (o Options) resolve() (resolved, error) {
	r := resolved{
		lut:      o.LUT,
		piProb:   o.PIProb,
		bddLimit: o.BDDLimit,
		reorder:  o.Reorder,
		verify:   o.Verify,
		netlist:  o.Netlist,
	}
	method := o.Method
	if method == "" {
		method = "VI"
	}
	found := false
	for _, m := range core.Methods() {
		if strings.EqualFold(m.String(), method) {
			r.method, found = m, true
			break
		}
	}
	if !found {
		return r, fmt.Errorf("unknown method %q (want I..VI)", o.Method)
	}
	switch strings.ToLower(o.Style) {
	case "", "static":
		r.style = huffman.Static
	case "domino-p":
		r.style = huffman.DominoP
	case "domino-n":
		r.style = huffman.DominoN
	default:
		return r, fmt.Errorf("unknown style %q (want static, domino-p or domino-n)", o.Style)
	}
	switch o.Mapper {
	case "", "dag":
		if o.LUT > 0 {
			if o.Mapper == "" {
				r.backend = mapper.BackendCuts
			} else {
				return r, fmt.Errorf("lut requires the cuts mapper")
			}
		} else {
			r.backend = mapper.BackendStructural
		}
	case "tree":
		if o.LUT > 0 {
			return r, fmt.Errorf("lut requires the cuts mapper")
		}
		r.backend, r.treeMode = mapper.BackendStructural, true
	case "cuts":
		r.backend = mapper.BackendCuts
	default:
		return r, fmt.Errorf("unknown mapper %q (want tree, dag or cuts)", o.Mapper)
	}
	switch strings.ToLower(o.Activity) {
	case "", "exact":
		r.activity.Engine = prob.Exact
	case "sample", "sampling":
		r.activity.Engine = prob.Sampling
	case "auto":
		r.activity.Engine = prob.Auto
	default:
		return r, fmt.Errorf("unknown activity %q (want exact, sample or auto)", o.Activity)
	}
	if o.Vectors < 0 {
		return r, fmt.Errorf("vectors must be >= 0")
	}
	if o.PIProb == 0 {
		r.piProb = 0.5
	} else if o.PIProb < 0 || o.PIProb > 1 {
		return r, fmt.Errorf("pi_prob %v outside [0,1]", o.PIProb)
	}
	if o.BDDLimit < 0 {
		return r, fmt.Errorf("bdd_limit must be >= 0")
	}
	if o.TimeoutMS < 0 {
		return r, fmt.Errorf("timeout_ms must be >= 0")
	}
	r.timeout = time.Duration(o.TimeoutMS) * time.Millisecond
	return r, nil
}

// canonical returns the options with defaults applied and the cache-
// irrelevant fields zeroed, so two requests for the same computation hash
// identically however sparsely they were spelled. TimeoutMS is excluded:
// a budget changes whether a result arrives, never which result.
func (o Options) canonical() Options {
	if o.Method == "" {
		o.Method = "VI"
	} else {
		o.Method = strings.ToUpper(o.Method)
	}
	if o.Style == "" {
		o.Style = "static"
	} else {
		o.Style = strings.ToLower(o.Style)
	}
	if o.Mapper == "" {
		o.Mapper = "dag"
		if o.LUT > 0 {
			o.Mapper = "cuts"
		}
	}
	switch a := strings.ToLower(o.Activity); a {
	case "", "exact":
		o.Activity = "exact"
	case "sampling":
		o.Activity = "sample"
	default:
		o.Activity = a
	}
	if o.Activity == "exact" {
		// The sampling budget is inert under the exact engine.
		o.Vectors = 0
	}
	if o.PIProb == 0 {
		o.PIProb = 0.5
	}
	o.TimeoutMS = 0
	return o
}

// cacheKey content-addresses one computation: the circuit bytes (or the
// bundled-benchmark name, versioned implicitly by the binary) hashed with
// the canonicalized options.
func cacheKey(circuit, blifText string, o Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "circuit=%s\n", circuit)
	fmt.Fprintf(h, "blif=%d:", len(blifText))
	h.Write([]byte(blifText))
	opts, err := json.Marshal(o.canonical())
	if err != nil {
		// Options is a flat struct of scalars; Marshal cannot fail.
		panic(err)
	}
	h.Write([]byte("\nopts="))
	h.Write(opts)
	return hex.EncodeToString(h.Sum(nil))
}
