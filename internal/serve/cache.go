package serve

import (
	"container/list"
	"sync"
)

// cache is a bounded LRU over finished synthesis responses, keyed by the
// content address of (netlist bytes, canonical options). Values are
// *Response snapshots; the handler copies before mutating the per-request
// fields (Cached, ElapsedMS).
type cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent
	entries map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	val *Response
}

func newCache(max int) *cache {
	return &cache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

func (c *cache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *cache) put(key string, val *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for len(c.entries) > c.max {
		oldest := c.order.Back()
		ent := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.entries, ent.key)
		c.evictions++
	}
}

// counters returns (hits, misses, evictions) since creation.
func (c *cache) counters() (int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
