package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Run is a journal read back into memory, events bucketed by type in file
// order. Unknown event types are counted but otherwise skipped, so readers
// stay compatible with journals that carry additional event kinds.
type Run struct {
	Path          string
	Header        Header
	Decomp        []DecompNode
	DecompSummary *DecompSummary
	Sites         []MapSite
	Gates         []GatePower
	Report        *Report
	Events        []Generic
	// Counts is the number of events seen per type discriminator
	// (excluding the header), including types this reader doesn't model.
	Counts map[string]int
}

// Site returns the map.site event for a node name, or nil.
func (r *Run) Site(node string) *MapSite {
	for i := range r.Sites {
		if r.Sites[i].Node == node {
			return &r.Sites[i]
		}
	}
	return nil
}

// DecompNodeByName returns the decomp.node event for a node name, or nil.
func (r *Run) DecompNodeByName(node string) *DecompNode {
	for i := range r.Decomp {
		if r.Decomp[i].Node == node {
			return &r.Decomp[i]
		}
	}
	return nil
}

// Gate returns the power.gate attribution row for a signal name, or nil.
func (r *Run) Gate(signal string) *GatePower {
	for i := range r.Gates {
		if r.Gates[i].Signal == signal {
			return &r.Gates[i]
		}
	}
	return nil
}

// ReadRun parses one journal stream. The first line must be a header with
// a schema version this reader understands.
func ReadRun(r io.Reader) (*Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	run := &Run{Counts: make(map[string]int)}
	lineNo := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(line) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", lineNo, err)
		}
		if lineNo == 1 {
			if env.Type != TypeHeader {
				return nil, fmt.Errorf("journal: line 1: expected a %q record, got %q", TypeHeader, env.Type)
			}
			if err := json.Unmarshal(line, &run.Header); err != nil {
				return nil, fmt.Errorf("journal: header: %w", err)
			}
			if run.Header.Schema > SchemaVersion {
				return nil, fmt.Errorf("journal: schema version %d is newer than this reader (%d)", run.Header.Schema, SchemaVersion)
			}
			continue
		}
		run.Counts[env.Type]++
		var err error
		switch env.Type {
		case TypeDecompNode:
			var e DecompNode
			if err = json.Unmarshal(line, &e); err == nil {
				run.Decomp = append(run.Decomp, e)
			}
		case TypeDecompSummary:
			var e DecompSummary
			if err = json.Unmarshal(line, &e); err == nil {
				run.DecompSummary = &e
			}
		case TypeMapSite:
			var e MapSite
			if err = json.Unmarshal(line, &e); err == nil {
				run.Sites = append(run.Sites, e)
			}
		case TypeGatePower:
			var e GatePower
			if err = json.Unmarshal(line, &e); err == nil {
				run.Gates = append(run.Gates, e)
			}
		case TypeReport:
			var e Report
			if err = json.Unmarshal(line, &e); err == nil {
				run.Report = &e
			}
		case TypeEvent:
			var e Generic
			if err = json.Unmarshal(line, &e); err == nil {
				run.Events = append(run.Events, e)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("journal: line %d (%s): %w", lineNo, env.Type, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if lineNo == 0 {
		return nil, fmt.Errorf("journal: empty stream")
	}
	return run, nil
}

// ReadRunFile is ReadRun over a file.
func ReadRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	run, err := ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	run.Path = path
	return run, nil
}
