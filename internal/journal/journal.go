// Package journal records the decision provenance of one synthesis run as
// a stream of typed JSONL events: which tree shapes the decomposition chose
// (and which Huffman merges priced them), which library matches the mapper
// considered and picked at every site, and a per-gate power attribution
// whose rows sum to the report total. The journal is the durable,
// queryable counterpart of the in-memory obs metrics — cmd/pexplain reads
// it back to answer "where do the microwatts go", "why this gate", and
// "what changed between these two runs".
//
// A *Journal is threaded through the flow exactly like *obs.Scope
// (DESIGN.md §7): core forwards it to decomp and mapper via their Options,
// every emit method is safe on a nil receiver, and a disabled flow pays
// only a nil check. Emission sites that do extra work to assemble an event
// (walking tree shapes, copying curves) guard on Enabled() first.
//
// File format: one run per file. The first line is a schema-versioned
// Header; every following line is one event object tagged with a "type"
// discriminator and a monotonically increasing "seq". Unknown event types
// are skipped on read, so adding event kinds is a compatible change;
// changing or removing the meaning of an existing field requires bumping
// SchemaVersion (see DESIGN.md §12).
package journal

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"powermap/internal/obs"
)

// SchemaVersion is the journal file format version, written into every
// header. Readers reject files with a larger major version.
const SchemaVersion = 1

// Event type discriminators.
const (
	TypeHeader        = "header"
	TypeDecompNode    = "decomp.node"
	TypeDecompSummary = "decomp.summary"
	TypeMapSite       = "map.site"
	TypeGatePower     = "power.gate"
	TypeReport        = "report"
	TypeEvent         = "event"
)

// Host identifies the machine and toolchain that produced a run.
type Host struct {
	Name      string `json:"name,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// Header is the first line of every journal: the schema version, the run
// identity, and the workload being synthesized. Zero Host/Time fields are
// filled in by New.
type Header struct {
	Schema    int    `json:"schema"`
	RunID     string `json:"run_id"`
	Time      string `json:"time,omitempty"`
	Host      Host   `json:"host"`
	Circuit   string `json:"circuit,omitempty"`
	Method    string `json:"method,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Objective string `json:"objective,omitempty"`
	Style     string `json:"style,omitempty"`
	Stage     string `json:"stage,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Note      string `json:"note,omitempty"`
}

// TreeLeaf is one leaf of a decomposition tree: the power-cost input the
// Huffman construction priced (signal probability and the style's
// switching activity for that probability).
type TreeLeaf struct {
	Signal   string  `json:"signal"`
	Prob     float64 `json:"prob"`
	Activity float64 `json:"activity"`
}

// Merge is one internal node of a decomposition tree in construction
// order. A and B name either a leaf signal or "#k", the k-th earlier merge
// of the same tree. Prob and Cost are the merged signal's probability and
// switching activity — the quantity the tree construction minimizes the
// sum of.
type Merge struct {
	Gate string  `json:"gate"` // "and" or "or"
	A    string  `json:"a"`
	B    string  `json:"b"`
	Prob float64 `json:"prob"`
	Cost float64 `json:"cost"`
}

// DecompNode records how one optimized-network node was decomposed: the
// construction that won (balanced / huffman / modified-huffman), the tree
// shape summary, and the per-merge cost trail. The node keeps its name
// through materialization, so mapped gate roots refer back to it.
type DecompNode struct {
	Node      string `json:"node"`
	Tree      string `json:"tree"`
	Cubes     int    `json:"cubes"`
	Leaves    int    `json:"leaves"`
	Height    int    `json:"height"`
	MinHeight int    `json:"min_height"`
	Rebuilt   bool   `json:"rebuilt,omitempty"` // bounded pass replaced the tree
	Stuck     bool   `json:"stuck,omitempty"`   // bounded pass gave up on it
	// Exact marks runs whose construction was priced with global-BDD
	// activities; the Inputs/Merges costs below are then the closed-form
	// independence view of the same tree shapes.
	Exact  bool       `json:"exact,omitempty"`
	Inputs []TreeLeaf `json:"inputs,omitempty"`
	Merges []Merge    `json:"merges,omitempty"`
}

// DecompSummary is the decomposition phase rollup.
type DecompSummary struct {
	Nodes            int     `json:"nodes"`
	TotalActivity    float64 `json:"total_activity"`
	SubjectNodes     int     `json:"subject_nodes"`
	Depth            float64 `json:"depth"`
	Redecompositions int     `json:"redecompositions,omitempty"`
}

// Candidate is one point of a match site's pruned power-delay (or
// area-delay) curve: a non-inferior (arrival, cost) solution and the cell
// that realizes it.
type Candidate struct {
	Cell    string  `json:"cell"`
	Arrival float64 `json:"arrival_ns"`
	Cost    float64 `json:"cost"`
	Chosen  bool    `json:"chosen,omitempty"`
}

// MapSite records one mapper decision: the subject node covered, how many
// library matches were enumerated, the surviving curve, and which point
// was selected and why.
type MapSite struct {
	Node        string  `json:"node"`
	Cell        string  `json:"cell"`
	Matches     int     `json:"matches"`
	CurvePoints int     `json:"curve_points"`
	Required    float64 `json:"required_ns"`
	Arrival     float64 `json:"arrival_ns"`
	Cost        float64 `json:"cost"`
	Load        float64 `json:"load"`
	Visits      int     `json:"visits,omitempty"`
	Fallback    bool    `json:"fallback,omitempty"`
	Why         string  `json:"why"`
	// Cut-backend provenance: the subject signals the matched cut's cell
	// pins bind (in pin order) and the NPN class key of the cut function,
	// standing in for the structural backend's pattern trail. Absent on
	// structural-backend events — added fields keep the schema version.
	CutLeaves  []string    `json:"cut_leaves,omitempty"`
	NPNClass   string      `json:"npn_class,omitempty"`
	Candidates []Candidate `json:"candidates,omitempty"`
}

// GatePower is one row of the per-gate power attribution: a switched
// signal, its actual load, exact activity, and Equation 1 power. Rows with
// a Cell are mapped gate outputs; rows without are source signals (primary
// inputs) charging the pins they drive. The rows of one run sum to the
// report's PowerUW (see Report.AttributedUW).
type GatePower struct {
	Signal   string  `json:"signal"`
	Cell     string  `json:"cell,omitempty"`
	Load     float64 `json:"load"`
	Activity float64 `json:"activity"`
	PowerUW  float64 `json:"power_uw"`
}

// Report is the run rollup: the paper's three reported quantities plus the
// sum of the GatePower rows, which equals PowerUW by construction (the
// attribution walks the same signals in the same order as the report).
type Report struct {
	Gates        int     `json:"gates"`
	Area         float64 `json:"area"`
	DelayNs      float64 `json:"delay_ns"`
	PowerUW      float64 `json:"power_uw"`
	AttributedUW float64 `json:"attributed_uw"`
}

// Generic is a free-form event (e.g. the Monte-Carlo seed stamp of
// powerest -approx).
type Generic struct {
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// envelope tags every event line with its type and sequence number.
type envelope struct {
	Type string `json:"type"`
	Seq  int    `json:"seq"`
}

// Journal is a mutex-guarded JSONL event writer. A nil *Journal disables
// journaling: every method is a no-op, so pipeline code emits
// unconditionally. Methods are safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	buf    *bufio.Writer // non-nil when Journal owns buffering
	closer io.Closer     // non-nil when Journal owns the file
	runID  string
	seq    int
	err    error
	counts map[string]int
	obs    *obs.Scope
	events *obs.Counter
	bytes  *obs.Counter
	byType map[string]*obs.Counter
}

// NewRunID returns a fresh 12-hex-digit random run identifier.
func NewRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; fall back to a
		// time-derived ID rather than panicking in a reporting layer.
		return fmt.Sprintf("t%011x", time.Now().UnixNano()&0xfffffffffff)
	}
	return hex.EncodeToString(b[:])
}

// New returns a journal writing to w, after stamping and emitting the
// header: Schema is set to SchemaVersion, a missing RunID gets NewRunID(),
// and zero Time/Host fields are filled from the environment.
func New(w io.Writer, h Header) *Journal {
	h.Schema = SchemaVersion
	if h.RunID == "" {
		h.RunID = NewRunID()
	}
	if h.Time == "" {
		h.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if h.Host == (Host{}) {
		name, _ := os.Hostname()
		h.Host = Host{
			Name:      name,
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			GoVersion: runtime.Version(),
		}
	}
	j := &Journal{w: w, runID: h.RunID, counts: make(map[string]int)}
	j.emit(TypeHeader, h)
	return j
}

// Create opens (truncating) a journal file at path, buffered; Close
// flushes and closes it.
func Create(path string, h Header) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	buf := bufio.NewWriter(f)
	j := New(buf, h)
	j.buf = buf
	j.closer = f
	return j, nil
}

// SetObs bridges the journal's aggregates into an obs metrics registry:
// every emitted event bumps journal.events (refined by a type label) and
// journal.bytes, so Prometheus/Perfetto views and the journal agree on
// event counts. Nil-safe on both sides.
func (j *Journal) SetObs(sc *obs.Scope) {
	if j == nil || sc == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.obs = sc
	j.events = sc.Counter("journal.events")
	j.bytes = sc.Counter("journal.bytes")
	j.byType = make(map[string]*obs.Counter)
}

// Enabled reports whether events are being recorded. Emission sites doing
// nontrivial event assembly guard on it.
func (j *Journal) Enabled() bool { return j != nil }

// RunID returns the run identifier stamped in the header ("" on nil).
func (j *Journal) RunID() string {
	if j == nil {
		return ""
	}
	return j.runID
}

// emit writes one event line. All exported emit methods funnel here.
func (j *Journal) emit(typ string, payload any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	env, err := json.Marshal(envelope{Type: typ, Seq: j.seq})
	if err != nil {
		j.err = fmt.Errorf("journal: %w", err)
		return
	}
	body, err := json.Marshal(payload)
	if err != nil {
		j.err = fmt.Errorf("journal: %s: %w", typ, err)
		return
	}
	// Splice the envelope and the payload object into one line:
	// {"type":...,"seq":...,<payload fields>}.
	line := env[:len(env)-1]
	if len(body) > 2 { // non-empty object
		line = append(line, ',')
		line = append(line, body[1:len(body)-1]...)
	}
	line = append(line, '}', '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = fmt.Errorf("journal: %w", err)
		return
	}
	j.seq++
	if typ != TypeHeader {
		j.counts[typ]++
	}
	if j.events != nil {
		c := j.byType[typ]
		if c == nil {
			c = j.events.With("type", typ)
			j.byType[typ] = c
		}
		c.Inc()
		j.bytes.Add(int64(len(line)))
	}
}

// DecompNode records one node's decomposition decision.
func (j *Journal) DecompNode(e DecompNode) { j.emit(TypeDecompNode, e) }

// DecompSummary records the decomposition phase rollup.
func (j *Journal) DecompSummary(e DecompSummary) { j.emit(TypeDecompSummary, e) }

// MapSite records one mapper match-site decision.
func (j *Journal) MapSite(e MapSite) { j.emit(TypeMapSite, e) }

// GatePower records one per-gate power attribution row.
func (j *Journal) GatePower(e GatePower) { j.emit(TypeGatePower, e) }

// Report records the run rollup.
func (j *Journal) Report(e Report) { j.emit(TypeReport, e) }

// Event records a free-form named event.
func (j *Journal) Event(name string, attrs map[string]any) {
	j.emit(TypeEvent, Generic{Name: name, Attrs: attrs})
}

// EventCounts returns the number of events emitted so far by type
// (excluding the header). Nil-safe.
func (j *Journal) EventCounts() map[string]int {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// Err returns the first write or encode error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes buffered output and closes the underlying file when the
// journal owns one (Create); it returns the first error seen over the
// journal's lifetime.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.buf != nil {
		if err := j.buf.Flush(); err != nil && j.err == nil {
			j.err = fmt.Errorf("journal: %w", err)
		}
		j.buf = nil
	}
	if j.closer != nil {
		if err := j.closer.Close(); err != nil && j.err == nil {
			j.err = fmt.Errorf("journal: %w", err)
		}
		j.closer = nil
	}
	return j.err
}
