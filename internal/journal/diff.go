package journal

import (
	"math"
	"sort"
	"strconv"
)

// GateDelta is one signal's power change between two runs. OnlyIn marks
// signals present in only one run ("a" or "b"); their missing side
// contributes zero power, so the deltas of all rows still sum to the
// report-level power delta.
type GateDelta struct {
	Signal string  `json:"signal"`
	CellA  string  `json:"cell_a,omitempty"`
	CellB  string  `json:"cell_b,omitempty"`
	PowerA float64 `json:"power_a_uw"`
	PowerB float64 `json:"power_b_uw"`
	Delta  float64 `json:"delta_uw"` // PowerB - PowerA
	OnlyIn string  `json:"only_in,omitempty"`
}

// DecisionDelta is one algorithmic decision that differs between the runs:
// a decomposition tree change ("tree": construction kind or height) or a
// mapper match change ("cell") at a node present in both.
type DecisionDelta struct {
	Node string `json:"node"`
	Kind string `json:"kind"` // "tree" or "cell"
	A    string `json:"a"`
	B    string `json:"b"`
}

// Diff is the comparison of two runs: report-level deltas, the per-gate
// power attribution deltas (largest magnitude first), and the decision
// changes that explain them.
type Diff struct {
	A Header `json:"a"`
	B Header `json:"b"`

	GatesA int     `json:"gates_a"`
	GatesB int     `json:"gates_b"`
	AreaA  float64 `json:"area_a"`
	AreaB  float64 `json:"area_b"`
	DelayA float64 `json:"delay_a_ns"`
	DelayB float64 `json:"delay_b_ns"`
	PowerA float64 `json:"power_a_uw"`
	PowerB float64 `json:"power_b_uw"`

	// PowerDelta is the report-level total power change (B - A).
	PowerDelta float64 `json:"power_delta_uw"`
	// GateDeltaSum is the sum of the per-gate deltas; it matches
	// PowerDelta up to float accumulation order (well within 1e-9).
	GateDeltaSum float64 `json:"gate_delta_sum_uw"`

	Gates     []GateDelta     `json:"gates"`
	Decisions []DecisionDelta `json:"decisions,omitempty"`
}

// DiffRuns compares two journals gate by gate and decision by decision.
func DiffRuns(a, b *Run) *Diff {
	d := &Diff{A: a.Header, B: b.Header}
	if a.Report != nil {
		d.GatesA, d.AreaA, d.DelayA, d.PowerA = a.Report.Gates, a.Report.Area, a.Report.DelayNs, a.Report.PowerUW
	}
	if b.Report != nil {
		d.GatesB, d.AreaB, d.DelayB, d.PowerB = b.Report.Gates, b.Report.Area, b.Report.DelayNs, b.Report.PowerUW
	}
	d.PowerDelta = d.PowerB - d.PowerA

	// Per-gate deltas over the union of attributed signals.
	cellA := siteCells(a)
	cellB := siteCells(b)
	type pair struct{ a, b *GatePower }
	bySignal := make(map[string]*pair, len(a.Gates)+len(b.Gates))
	order := make([]string, 0, len(a.Gates)+len(b.Gates))
	for i := range a.Gates {
		g := &a.Gates[i]
		if bySignal[g.Signal] == nil {
			bySignal[g.Signal] = &pair{}
			order = append(order, g.Signal)
		}
		bySignal[g.Signal].a = g
	}
	for i := range b.Gates {
		g := &b.Gates[i]
		if bySignal[g.Signal] == nil {
			bySignal[g.Signal] = &pair{}
			order = append(order, g.Signal)
		}
		bySignal[g.Signal].b = g
	}
	for _, sig := range order {
		p := bySignal[sig]
		gd := GateDelta{Signal: sig, CellA: cellA[sig], CellB: cellB[sig]}
		switch {
		case p.a == nil:
			gd.OnlyIn = "b"
			gd.PowerB = p.b.PowerUW
			if gd.CellB == "" {
				gd.CellB = p.b.Cell
			}
		case p.b == nil:
			gd.OnlyIn = "a"
			gd.PowerA = p.a.PowerUW
			if gd.CellA == "" {
				gd.CellA = p.a.Cell
			}
		default:
			gd.PowerA, gd.PowerB = p.a.PowerUW, p.b.PowerUW
			if gd.CellA == "" {
				gd.CellA = p.a.Cell
			}
			if gd.CellB == "" {
				gd.CellB = p.b.Cell
			}
		}
		gd.Delta = gd.PowerB - gd.PowerA
		d.GateDeltaSum += gd.Delta
		d.Gates = append(d.Gates, gd)
	}
	sort.SliceStable(d.Gates, func(i, j int) bool {
		di, dj := math.Abs(d.Gates[i].Delta), math.Abs(d.Gates[j].Delta)
		if di != dj {
			return di > dj
		}
		return d.Gates[i].Signal < d.Gates[j].Signal
	})

	// Decision deltas: decomposition tree changes and mapper cell changes
	// at nodes journaled in both runs.
	decompB := make(map[string]*DecompNode, len(b.Decomp))
	for i := range b.Decomp {
		decompB[b.Decomp[i].Node] = &b.Decomp[i]
	}
	for i := range a.Decomp {
		na := &a.Decomp[i]
		nb := decompB[na.Node]
		if nb == nil {
			continue
		}
		if na.Tree != nb.Tree || na.Height != nb.Height {
			d.Decisions = append(d.Decisions, DecisionDelta{
				Node: na.Node,
				Kind: "tree",
				A:    treeDesc(na),
				B:    treeDesc(nb),
			})
		}
	}
	for _, sig := range order {
		ca, okA := cellA[sig]
		cb, okB := cellB[sig]
		if okA && okB && ca != cb {
			d.Decisions = append(d.Decisions, DecisionDelta{Node: sig, Kind: "cell", A: ca, B: cb})
		}
	}
	sort.SliceStable(d.Decisions, func(i, j int) bool {
		if d.Decisions[i].Kind != d.Decisions[j].Kind {
			return d.Decisions[i].Kind < d.Decisions[j].Kind
		}
		return d.Decisions[i].Node < d.Decisions[j].Node
	})
	return d
}

func siteCells(r *Run) map[string]string {
	m := make(map[string]string, len(r.Sites))
	for i := range r.Sites {
		m[r.Sites[i].Node] = r.Sites[i].Cell
	}
	return m
}

func treeDesc(n *DecompNode) string {
	desc := n.Tree
	if n.Rebuilt {
		desc += " (rebuilt)"
	}
	return desc + " h=" + strconv.Itoa(n.Height)
}
