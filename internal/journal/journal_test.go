package journal

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"powermap/internal/obs"
)

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if j.Enabled() {
		t.Fatal("nil journal reports Enabled")
	}
	if j.RunID() != "" {
		t.Fatal("nil journal has a run ID")
	}
	j.DecompNode(DecompNode{Node: "n"})
	j.MapSite(MapSite{Node: "n"})
	j.GatePower(GatePower{Signal: "n"})
	j.Report(Report{})
	j.DecompSummary(DecompSummary{})
	j.Event("x", nil)
	j.SetObs(obs.New(obs.Config{}))
	if j.EventCounts() != nil {
		t.Fatal("nil journal has event counts")
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, Header{RunID: "r1", Circuit: "x2", Method: "II", Strategy: "minpower"})
	sc := obs.New(obs.Config{})
	j.SetObs(sc)
	j.DecompNode(DecompNode{
		Node: "g1", Tree: "huffman", Cubes: 2, Leaves: 4, Height: 2, MinHeight: 2,
		Inputs: []TreeLeaf{{Signal: "a", Prob: 0.5, Activity: 0.5}},
		Merges: []Merge{{Gate: "and", A: "a", B: "b", Prob: 0.25, Cost: 0.375}},
	})
	j.DecompSummary(DecompSummary{Nodes: 1, TotalActivity: 1.5, SubjectNodes: 7, Depth: 3})
	j.MapSite(MapSite{
		Node: "g1", Cell: "nand2", Matches: 3, CurvePoints: 2,
		Required: 1.2, Arrival: 1.0, Cost: 4, Load: 1.5,
		Why:        "min-cost point meeting required time",
		Candidates: []Candidate{{Cell: "nand2", Arrival: 1.0, Cost: 4, Chosen: true}},
	})
	j.GatePower(GatePower{Signal: "g1", Cell: "nand2", Load: 1.5, Activity: 0.375, PowerUW: 2.5})
	j.GatePower(GatePower{Signal: "a", Load: 1.0, Activity: 0.5, PowerUW: 1.25})
	j.Report(Report{Gates: 1, Area: 2, DelayNs: 1.0, PowerUW: 3.75, AttributedUW: 3.75})
	j.Event("seed", map[string]any{"seed": 42})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	run, err := ReadRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if run.Header.RunID != "r1" || run.Header.Schema != SchemaVersion || run.Header.Circuit != "x2" {
		t.Fatalf("header mismatch: %+v", run.Header)
	}
	if run.Header.Host.GoVersion == "" || run.Header.Host.OS == "" {
		t.Fatalf("host not stamped: %+v", run.Header.Host)
	}
	if len(run.Decomp) != 1 || run.Decomp[0].Node != "g1" || len(run.Decomp[0].Merges) != 1 {
		t.Fatalf("decomp events: %+v", run.Decomp)
	}
	if run.DecompSummary == nil || run.DecompSummary.SubjectNodes != 7 {
		t.Fatalf("decomp summary: %+v", run.DecompSummary)
	}
	if len(run.Sites) != 1 || run.Sites[0].Cell != "nand2" || !run.Sites[0].Candidates[0].Chosen {
		t.Fatalf("map sites: %+v", run.Sites)
	}
	if len(run.Gates) != 2 || run.Gates[1].Cell != "" {
		t.Fatalf("gate rows: %+v", run.Gates)
	}
	if run.Report == nil || run.Report.PowerUW != 3.75 {
		t.Fatalf("report: %+v", run.Report)
	}
	if len(run.Events) != 1 || run.Events[0].Name != "seed" {
		t.Fatalf("events: %+v", run.Events)
	}
	if run.Counts[TypeGatePower] != 2 || run.Counts[TypeMapSite] != 1 {
		t.Fatalf("counts: %+v", run.Counts)
	}
	if run.Site("g1") == nil || run.Gate("a") == nil || run.DecompNodeByName("g1") == nil {
		t.Fatal("lookup helpers failed")
	}

	// Writer-side counts and the obs bridge agree with the reader.
	counts := j.EventCounts()
	for typ, n := range run.Counts {
		if counts[typ] != n {
			t.Fatalf("writer count %s = %d, reader saw %d", typ, counts[typ], n)
		}
	}
	sn := sc.Snapshot()
	if got := sn.Counters[`journal.events{type="power.gate"}`]; got != 2 {
		t.Fatalf("obs bridge: journal.events{type=power.gate} = %d", got)
	}
	if sn.Counters["journal.bytes"] <= 0 {
		t.Fatal("obs bridge: journal.bytes not counted")
	}
}

func TestSeqAndTypeTags(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, Header{RunID: "r"})
	j.Event("a", nil)
	j.Event("b", map[string]any{"k": "v"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	for i, line := range lines {
		var env envelope
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if env.Seq != i {
			t.Fatalf("line %d has seq %d", i, env.Seq)
		}
	}
}

func TestCreateAndReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Create(path, Header{Circuit: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if j.RunID() == "" {
		t.Fatal("no run ID generated")
	}
	j.Report(Report{Gates: 3})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := ReadRunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if run.Report == nil || run.Report.Gates != 3 || run.Path != path {
		t.Fatalf("round trip: %+v", run)
	}
}

func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, Header{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.GatePower(GatePower{Signal: "s", PowerUW: 1})
			}
		}()
	}
	wg.Wait()
	run, err := ReadRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Gates) != 400 {
		t.Fatalf("want 400 rows, got %d", len(run.Gates))
	}
}

func TestReadRejectsNewerSchema(t *testing.T) {
	in := `{"type":"header","seq":0,"schema":99,"run_id":"x","host":{"os":"linux","arch":"amd64","cpus":1,"go_version":"go"}}` + "\n"
	if _, err := ReadRun(strings.NewReader(in)); err == nil {
		t.Fatal("schema 99 accepted")
	}
}

func TestReadSkipsUnknownEventTypes(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, Header{RunID: "r"})
	j.Report(Report{Gates: 1})
	buf.WriteString(`{"type":"future.kind","seq":99,"payload":1}` + "\n")
	run, err := ReadRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if run.Counts["future.kind"] != 1 || run.Report == nil {
		t.Fatalf("unknown type handling: %+v", run.Counts)
	}
}

func TestDiffRuns(t *testing.T) {
	mk := func(runID string, gates []GatePower, sites []MapSite, decomp []DecompNode, rep Report) *Run {
		var buf bytes.Buffer
		j := New(&buf, Header{RunID: runID})
		for _, d := range decomp {
			j.DecompNode(d)
		}
		for _, s := range sites {
			j.MapSite(s)
		}
		for _, g := range gates {
			j.GatePower(g)
		}
		j.Report(rep)
		run, err := ReadRun(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a := mk("a",
		[]GatePower{{Signal: "g1", Cell: "nand2", PowerUW: 2}, {Signal: "g2", Cell: "inv", PowerUW: 1}, {Signal: "pi", PowerUW: 0.5}},
		[]MapSite{{Node: "g1", Cell: "nand2"}, {Node: "g2", Cell: "inv"}},
		[]DecompNode{{Node: "g1", Tree: "balanced", Height: 3}},
		Report{Gates: 2, PowerUW: 3.5, AttributedUW: 3.5})
	b := mk("b",
		[]GatePower{{Signal: "g1", Cell: "nand3", PowerUW: 1.25}, {Signal: "g3", Cell: "inv", PowerUW: 0.75}, {Signal: "pi", PowerUW: 0.5}},
		[]MapSite{{Node: "g1", Cell: "nand3"}, {Node: "g3", Cell: "inv"}},
		[]DecompNode{{Node: "g1", Tree: "huffman", Height: 4}},
		Report{Gates: 2, PowerUW: 2.5, AttributedUW: 2.5})

	d := DiffRuns(a, b)
	if d.PowerDelta != -1.0 {
		t.Fatalf("power delta = %v", d.PowerDelta)
	}
	if math.Abs(d.GateDeltaSum-d.PowerDelta) > 1e-12 {
		t.Fatalf("gate delta sum %v != power delta %v", d.GateDeltaSum, d.PowerDelta)
	}
	if len(d.Gates) != 4 {
		t.Fatalf("want 4 gate rows (union), got %d", len(d.Gates))
	}
	// Largest magnitude first: g2 (-1.0) before g1 (-0.75) and g3 (+0.75).
	if d.Gates[0].Signal != "g2" || d.Gates[0].OnlyIn != "a" {
		t.Fatalf("first delta: %+v", d.Gates[0])
	}
	var sawTree, sawCell bool
	for _, dec := range d.Decisions {
		if dec.Node == "g1" && dec.Kind == "tree" && strings.Contains(dec.B, "huffman") {
			sawTree = true
		}
		if dec.Node == "g1" && dec.Kind == "cell" && dec.A == "nand2" && dec.B == "nand3" {
			sawCell = true
		}
	}
	if !sawTree || !sawCell {
		t.Fatalf("decision deltas missing: %+v", d.Decisions)
	}
}

func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 12 || a == b {
		t.Fatalf("run IDs: %q %q", a, b)
	}
}
