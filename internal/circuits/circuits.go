// Package circuits provides the benchmark suite for the experiments of
// Section 4. The original paper evaluates on subsets of ISCAS-89 and
// MCNC-91; those netlists are not redistributable here, so each named
// circuit is a deterministic stand-in with the same interface size and a
// comparable optimized-network size (see DESIGN.md section 2):
//
//   - cm42a is implemented exactly: a 4-to-10 BCD decoder, which is the
//     real MCNC cm42a function;
//   - alu2 is a structural 4-bit ALU (carry chain, operation select) with
//     the original's 10-input/6-output interface;
//   - the ISCAS-89 s-circuits and remaining MCNC circuits are seeded
//     layered random logic with the original PI/PO counts, exercising the
//     identical synthesis code paths.
//
// All builders are deterministic: the same name always yields the same
// network.
package circuits

import (
	"fmt"
	"math/rand"

	"powermap/internal/network"
	"powermap/internal/sop"
)

// Benchmark is one suite entry.
type Benchmark struct {
	Name string
	// Build constructs a fresh copy of the circuit.
	Build func() *network.Network
	// Description records what the circuit is and what it stands in for.
	Description string
}

// Suite returns the 17 benchmark circuits of Tables 2 and 3, in the
// paper's row order.
func Suite() []Benchmark {
	random := func(name string, npi, npo, nnodes int, seed int64) Benchmark {
		return Benchmark{
			Name: name,
			Build: func() *network.Network {
				return Random(name, seed, npi, npo, nnodes)
			},
			Description: fmt.Sprintf("seeded random logic, %d PI / %d PO / %d nodes (stand-in)", npi, npo, nnodes),
		}
	}
	return []Benchmark{
		random("s208", 11, 9, 55, 208),
		random("s344", 15, 13, 105, 344),
		random("s382", 14, 12, 100, 382),
		random("s444", 14, 12, 110, 444),
		random("s510", 25, 20, 180, 510),
		random("s526", 14, 12, 125, 526),
		random("s641", 22, 19, 145, 641),
		random("s713", 22, 19, 140, 713),
		random("s820", 23, 19, 195, 820),
		{Name: "cm42a", Build: func() *network.Network { return Decoder10() },
			Description: "exact MCNC cm42a: 4-to-10 BCD decoder"},
		random("x1", 30, 20, 190, 101),
		random("x2", 10, 7, 38, 102),
		random("x3", 60, 40, 460, 103),
		random("ttt2", 24, 21, 145, 104),
		random("apex7", 28, 20, 155, 105),
		{Name: "alu2", Build: func() *network.Network { return ALU(4) },
			Description: "structural 4-bit ALU with carry chain (alu2 interface)"},
		random("ex2", 20, 15, 210, 106),
	}
}

// ByName returns the named benchmark, or an error listing valid names.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	names := ""
	for _, b := range Suite() {
		names += " " + b.Name
	}
	return Benchmark{}, fmt.Errorf("circuits: unknown benchmark %q (have:%s)", name, names)
}

// Random builds a deterministic layered random multi-level network with the
// given interface and internal node count. Nodes are organized into layers
// (like the 10–20-level structure of real ISCAS/MCNC netlists): each node
// draws most fanins from the immediately preceding layer, with occasional
// taps further back and to the primary inputs.
//
// Wide circuits are split into independent blocks of at most blockPIs
// primary inputs each. Real netlists have bounded per-output input cones;
// unconstrained random logic over many shared inputs does not, and is
// intractable for the exact BDD-based power estimator (random functions
// have exponential BDDs under every variable order).
func Random(name string, seed int64, npi, npo, nnodes int) *network.Network {
	const blockPIs = 18
	if npi > blockPIs {
		return randomBlocks(name, seed, npi, npo, nnodes, blockPIs)
	}
	return randomBlock(network.New(name), rand.New(rand.NewSource(seed)), "", npi, npo, nnodes)
}

// randomBlocks stitches independent sub-circuits into one network.
func randomBlocks(name string, seed int64, npi, npo, nnodes, blockPIs int) *network.Network {
	nw := network.New(name)
	blocks := (npi + blockPIs - 1) / blockPIs
	r := rand.New(rand.NewSource(seed))
	for bi := 0; bi < blocks; bi++ {
		bpi := npi / blocks
		bpo := npo / blocks
		bnodes := nnodes / blocks
		if bi == blocks-1 { // remainder goes to the last block
			bpi = npi - bpi*(blocks-1)
			bpo = npo - bpo*(blocks-1)
			bnodes = nnodes - bnodes*(blocks-1)
		}
		randomBlock(nw, rand.New(rand.NewSource(seed+int64(bi)*7919)), fmt.Sprintf("b%d_", bi), bpi, bpo, bnodes)
	}
	_ = r
	return nw
}

// randomBlock adds one layered random cone to nw with prefixed names.
func randomBlock(nw *network.Network, r *rand.Rand, prefix string, npi, npo, nnodes int) *network.Network {
	var pis []*network.Node
	for i := 0; i < npi; i++ {
		pis = append(pis, nw.AddPI(fmt.Sprintf("%spi%02d", prefix, i)))
	}
	// Depth grows slowly with size, matching real multilevel circuits.
	layers := 5 + nnodes/60
	if layers > 14 {
		layers = 14
	}
	width := (nnodes + layers - 1) / layers
	prev := pis
	var all [][]*network.Node
	made := 0
	for l := 0; l < layers && made < nnodes; l++ {
		var layer []*network.Node
		for w := 0; w < width && made < nnodes; w++ {
			k := 2 + r.Intn(3) // 2..4 fanins
			var fanins []*network.Node
			seen := map[*network.Node]bool{}
			pick := func(src []*network.Node) {
				f := src[r.Intn(len(src))]
				if !seen[f] {
					seen[f] = true
					fanins = append(fanins, f)
				}
			}
			for tries := 0; len(fanins) < k && tries < 40; tries++ {
				switch {
				case r.Intn(10) < 6 || len(all) == 0:
					pick(prev)
				case r.Intn(10) < 7 && len(all) > 0:
					pick(all[r.Intn(len(all))])
				default:
					pick(pis)
				}
			}
			if len(fanins) < 2 {
				pick(pis)
			}
			f := randomCover(r, len(fanins))
			layer = append(layer, nw.AddNode(fmt.Sprintf("%sn%04d", prefix, made), fanins, f))
			made++
		}
		all = append(all, layer)
		prev = layer
	}
	// Outputs: mostly from the last layers, a few mid-depth taps.
	var candidates []*network.Node
	for l := len(all) - 1; l >= 0 && len(candidates) < npo*3; l-- {
		candidates = append(candidates, all[l]...)
	}
	used := map[*network.Node]bool{}
	for o := 0; o < npo; o++ {
		var d *network.Node
		for tries := 0; tries < 60; tries++ {
			d = candidates[r.Intn(len(candidates))]
			if !used[d] {
				break
			}
		}
		used[d] = true
		nw.MarkOutput(fmt.Sprintf("%spo%02d", prefix, o), d)
	}
	nw.Sweep()
	return nw
}

// randomCover produces a non-constant cover with 1..3 cubes of 2..k
// literals.
func randomCover(r *rand.Rand, k int) *sop.Cover {
	for {
		f := sop.NewCover(k)
		ncubes := 1 + r.Intn(3)
		for c := 0; c < ncubes; c++ {
			cube := sop.NewCube(k)
			nlits := 2
			if k > 2 {
				nlits = 2 + r.Intn(k-1)
			}
			perm := r.Perm(k)
			for _, v := range perm[:nlits] {
				if r.Intn(2) == 0 {
					cube[v] = sop.Pos
				} else {
					cube[v] = sop.Neg
				}
			}
			f.AddCube(cube)
		}
		f.Minimize()
		if !f.IsZero() && !f.IsOne() {
			return f
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Decoder10 builds the exact cm42a function: a 4-to-10 BCD decoder with
// active outputs d0..d9 (output i is the minterm of BCD value i).
func Decoder10() *network.Network {
	nw := network.New("cm42a")
	ins := make([]*network.Node, 4)
	for i := range ins {
		ins[i] = nw.AddPI(fmt.Sprintf("a%d", i))
	}
	for v := 0; v < 10; v++ {
		f := sop.NewCover(4)
		cube := sop.NewCube(4)
		for b := 0; b < 4; b++ {
			if v>>b&1 == 1 {
				cube[b] = sop.Pos
			} else {
				cube[b] = sop.Neg
			}
		}
		f.AddCube(cube)
		n := nw.AddNode(fmt.Sprintf("m%d", v), ins, f)
		nw.MarkOutput(fmt.Sprintf("d%d", v), n)
	}
	return nw
}

// ALU builds a structural ALU over two bits-wide operands with a carry
// input and a 2-bit operation select (00 add, 01 and, 10 or, 11 xor),
// producing the result bits and carry out. ALU(4) has the 10-input,
// 6-output interface of MCNC alu2.
func ALU(bits int) *network.Network {
	nw := network.New(fmt.Sprintf("alu%d", bits/2))
	a := make([]*network.Node, bits)
	b := make([]*network.Node, bits)
	for i := 0; i < bits; i++ {
		a[i] = nw.AddPI(fmt.Sprintf("a%d", i))
		b[i] = nw.AddPI(fmt.Sprintf("b%d", i))
	}
	cin := nw.AddPI("cin")
	op0 := nw.AddPI("op0")
	op1 := nw.AddPI("op1")

	xor2 := func(n int) *sop.Cover {
		f := sop.NewCover(2)
		f.AddCube(sop.Cube{sop.Pos, sop.Neg})
		f.AddCube(sop.Cube{sop.Neg, sop.Pos})
		_ = n
		return f
	}
	and2 := func() *sop.Cover {
		f := sop.NewCover(2)
		f.AddCube(sop.Cube{sop.Pos, sop.Pos})
		return f
	}
	or2 := func() *sop.Cover {
		f := sop.NewCover(2)
		f.AddCube(sop.Cube{sop.Pos, sop.DC})
		f.AddCube(sop.Cube{sop.DC, sop.Pos})
		return f
	}
	// Carry chain: c_{i+1} = a·b + c·(a+b); sum_i = a ^ b ^ c.
	carry := cin
	sums := make([]*network.Node, bits)
	for i := 0; i < bits; i++ {
		axb := nw.AddNode(fmt.Sprintf("axb%d", i), []*network.Node{a[i], b[i]}, xor2(i))
		sums[i] = nw.AddNode(fmt.Sprintf("sum%d", i), []*network.Node{axb, carry}, xor2(i))
		// c' = a·b + carry·(a^b)
		gen := nw.AddNode(fmt.Sprintf("gen%d", i), []*network.Node{a[i], b[i]}, and2())
		prop := nw.AddNode(fmt.Sprintf("prop%d", i), []*network.Node{axb, carry}, and2())
		carry = nw.AddNode(fmt.Sprintf("cry%d", i), []*network.Node{gen, prop}, or2())
	}
	// Logic ops per bit and the 4-way op mux.
	for i := 0; i < bits; i++ {
		andN := nw.AddNode(fmt.Sprintf("and%d", i), []*network.Node{a[i], b[i]}, and2())
		orN := nw.AddNode(fmt.Sprintf("or%d", i), []*network.Node{a[i], b[i]}, or2())
		xorN := nw.AddNode(fmt.Sprintf("xor%d", i), []*network.Node{a[i], b[i]}, xor2(i))
		// mux: op1'op0'·sum + op1'op0·and + op1 op0'·or + op1 op0·xor
		f := sop.NewCover(6) // vars: op1 op0 sum and or xor
		f.AddCube(sop.Cube{sop.Neg, sop.Neg, sop.Pos, sop.DC, sop.DC, sop.DC})
		f.AddCube(sop.Cube{sop.Neg, sop.Pos, sop.DC, sop.Pos, sop.DC, sop.DC})
		f.AddCube(sop.Cube{sop.Pos, sop.Neg, sop.DC, sop.DC, sop.Pos, sop.DC})
		f.AddCube(sop.Cube{sop.Pos, sop.Pos, sop.DC, sop.DC, sop.DC, sop.Pos})
		res := nw.AddNode(fmt.Sprintf("res%d", i),
			[]*network.Node{op1, op0, sums[i], andN, orN, xorN}, f)
		nw.MarkOutput(fmt.Sprintf("r%d", i), res)
	}
	// Carry out gated to the add operation.
	f := sop.NewCover(3) // op1 op0 carry
	f.AddCube(sop.Cube{sop.Neg, sop.Neg, sop.Pos})
	cout := nw.AddNode("coutn", []*network.Node{op1, op0, carry}, f)
	nw.MarkOutput("cout", cout)
	nw.MarkOutput("zero", sums[0]) // a cheap extra status output
	return nw
}

// Figure1 returns the paper's Figure 1 example: a 4-input AND with the
// probabilities used in the worked example, for a p-type dynamic circuit.
func Figure1() (*network.Network, map[string]float64) {
	nw := network.New("figure1")
	ins := make([]*network.Node, 4)
	names := []string{"a", "b", "c", "d"}
	for i, s := range names {
		ins[i] = nw.AddPI(s)
	}
	f := sop.NewCover(4)
	f.AddCube(sop.Cube{sop.Pos, sop.Pos, sop.Pos, sop.Pos})
	y := nw.AddNode("y", ins, f)
	nw.MarkOutput("y", y)
	return nw, map[string]float64{"a": 0.3, "b": 0.4, "c": 0.7, "d": 0.5}
}

// Parity builds an n-input parity tree (used by examples and tests as a
// high-activity workload).
func Parity(n int) *network.Network {
	nw := network.New(fmt.Sprintf("parity%d", n))
	var pool []*network.Node
	for i := 0; i < n; i++ {
		pool = append(pool, nw.AddPI(fmt.Sprintf("x%d", i)))
	}
	xor2 := func() *sop.Cover {
		f := sop.NewCover(2)
		f.AddCube(sop.Cube{sop.Pos, sop.Neg})
		f.AddCube(sop.Cube{sop.Neg, sop.Pos})
		return f
	}
	i := 0
	for len(pool) > 1 {
		a, b := pool[0], pool[1]
		pool = pool[2:]
		pool = append(pool, nw.AddNode(fmt.Sprintf("p%d", i), []*network.Node{a, b}, xor2()))
		i++
	}
	nw.MarkOutput("parity", pool[0])
	return nw
}
