package circuits

import (
	"math"
	"math/rand"
	"testing"

	"powermap/internal/huffman"
	"powermap/internal/prob"
)

func TestSuiteBuildsValidNetworks(t *testing.T) {
	for _, b := range Suite() {
		nw := b.Build()
		if err := nw.Check(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		s := nw.Stats()
		if s.Nodes == 0 || s.POs == 0 || s.PIs == 0 {
			t.Errorf("%s: degenerate stats %+v", b.Name, s)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, b := range Suite() {
		a, c := b.Build(), b.Build()
		sa, sc := a.Stats(), c.Stats()
		if sa != sc {
			t.Errorf("%s: stats differ between builds: %+v vs %+v", b.Name, sa, sc)
			continue
		}
		// Spot-check equivalence on random vectors (full equivalence is
		// covered by the generator being a pure function of the seed).
		for trial := 0; trial < 30; trial++ {
			assign := map[string]bool{}
			for _, pi := range a.PINames() {
				assign[pi] = r.Intn(2) == 1
			}
			oa, oc := a.Eval(assign), c.Eval(assign)
			for name, v := range oa {
				if oc[name] != v {
					t.Fatalf("%s: builds diverge on output %s", b.Name, name)
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("cm42a")
	if err != nil || b.Name != "cm42a" {
		t.Fatalf("ByName(cm42a) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDecoder10IsExactBCD(t *testing.T) {
	nw := Decoder10()
	for v := 0; v < 16; v++ {
		assign := map[string]bool{}
		for b := 0; b < 4; b++ {
			assign[nameAB(b)] = v>>b&1 == 1
		}
		out := nw.Eval(assign)
		for d := 0; d < 10; d++ {
			want := v == d
			if out[nameD(d)] != want {
				t.Errorf("input %d: d%d = %v, want %v", v, d, out[nameD(d)], want)
			}
		}
	}
}

func nameAB(b int) string { return "a" + string(rune('0'+b)) }
func nameD(d int) string  { return "d" + string(rune('0'+d)) }

func TestALUAdds(t *testing.T) {
	nw := ALU(4)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			assign := map[string]bool{"cin": false, "op0": false, "op1": false}
			for i := 0; i < 4; i++ {
				assign["a"+string(rune('0'+i))] = a>>i&1 == 1
				assign["b"+string(rune('0'+i))] = b>>i&1 == 1
			}
			out := nw.Eval(assign)
			sum := a + b
			for i := 0; i < 4; i++ {
				if out["r"+string(rune('0'+i))] != (sum>>i&1 == 1) {
					t.Fatalf("add %d+%d bit %d wrong", a, b, i)
				}
			}
			if out["cout"] != (sum >= 16) {
				t.Fatalf("add %d+%d carry wrong", a, b)
			}
		}
	}
}

func TestALULogicOps(t *testing.T) {
	nw := ALU(4)
	cases := []struct {
		op0, op1 bool
		f        func(a, b int) int
	}{
		{true, false, func(a, b int) int { return a & b }},
		{false, true, func(a, b int) int { return a | b }},
		{true, true, func(a, b int) int { return a ^ b }},
	}
	for _, tc := range cases {
		for _, pair := range [][2]int{{5, 3}, {12, 10}, {15, 0}, {7, 7}} {
			a, b := pair[0], pair[1]
			assign := map[string]bool{"cin": false, "op0": tc.op0, "op1": tc.op1}
			for i := 0; i < 4; i++ {
				assign["a"+string(rune('0'+i))] = a>>i&1 == 1
				assign["b"+string(rune('0'+i))] = b>>i&1 == 1
			}
			out := nw.Eval(assign)
			want := tc.f(a, b)
			for i := 0; i < 4; i++ {
				if out["r"+string(rune('0'+i))] != (want>>i&1 == 1) {
					t.Fatalf("op(%v,%v) %d,%d bit %d wrong", tc.op0, tc.op1, a, b, i)
				}
			}
		}
	}
}

func TestFigure1Probabilities(t *testing.T) {
	nw, probs := Figure1()
	if _, err := prob.Compute(nw, probs, huffman.DominoP); err != nil {
		t.Fatal(err)
	}
	y := nw.NodeByName("y")
	want := 0.3 * 0.4 * 0.7 * 0.5
	if math.Abs(y.Prob1-want) > 1e-12 {
		t.Errorf("P(y) = %v, want %v", y.Prob1, want)
	}
}

func TestParity(t *testing.T) {
	nw := Parity(5)
	for bits := 0; bits < 32; bits++ {
		assign := map[string]bool{}
		ones := 0
		for i := 0; i < 5; i++ {
			v := bits>>i&1 == 1
			assign["x"+string(rune('0'+i))] = v
			if v {
				ones++
			}
		}
		if nw.Eval(assign)["parity"] != (ones%2 == 1) {
			t.Fatalf("parity(%05b) wrong", bits)
		}
	}
}

func TestRandomRespectsInterface(t *testing.T) {
	nw := Random("t", 7, 12, 9, 50)
	s := nw.Stats()
	if s.PIs > 12 || s.POs != 9 {
		t.Errorf("interface %+v", s)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
}
