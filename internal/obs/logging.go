package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// LogOptions configures the shared CLI log handler built by NewLogHandler.
type LogOptions struct {
	// Level is the minimum level emitted (default slog.LevelInfo).
	Level slog.Level
	// JSON selects slog's JSON handler instead of the text handler.
	JSON bool
	// RunID, when non-empty, is stamped on every record as run_id, tying
	// console logs to the journals/telemetry of the same run.
	RunID string
}

// ParseLogLevel maps the -log-level flag values (debug, info, warn, error;
// case-insensitive) to slog levels; unknown strings default to info.
func ParseLogLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogHandler builds the uniform CLI logging handler: slog text or JSON
// at the requested level, stamping the run-id on every record and the
// context labels (circuit, method in the experiment suite — see
// WithLabels) on records logged with a context. The obs span sink
// (Config.Logger) and the flight recorder's tee both layer over the same
// handler, so one -log-level/-log-json choice governs all output.
func NewLogHandler(w io.Writer, opts LogOptions) slog.Handler {
	ho := &slog.HandlerOptions{Level: opts.Level}
	var h slog.Handler
	if opts.JSON {
		h = slog.NewJSONHandler(w, ho)
	} else {
		h = slog.NewTextHandler(w, ho)
	}
	if opts.RunID != "" {
		h = h.WithAttrs([]slog.Attr{slog.String("run_id", opts.RunID)})
	}
	return &labelStampHandler{next: h}
}

// labelStampHandler appends the context's obs labels (WithLabels pairs) to
// every record, so suite workers' logs carry circuit/method without each
// call site threading them.
type labelStampHandler struct {
	next slog.Handler
}

func (h *labelStampHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.next.Enabled(ctx, level)
}

func (h *labelStampHandler) Handle(ctx context.Context, rec slog.Record) error {
	if labels := LabelsFrom(ctx); len(labels) >= 2 {
		rec = rec.Clone()
		for i := 0; i+1 < len(labels); i += 2 {
			rec.AddAttrs(slog.String(labels[i], labels[i+1]))
		}
	}
	return h.next.Handle(ctx, rec)
}

func (h *labelStampHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &labelStampHandler{next: h.next.WithAttrs(attrs)}
}

func (h *labelStampHandler) WithGroup(name string) slog.Handler {
	return &labelStampHandler{next: h.next.WithGroup(name)}
}
