package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"
)

// FlightSchemaVersion identifies the flight-record JSON layout. Bump it on
// any incompatible change so post-mortem tooling can reject records it
// does not understand instead of misreading them.
const FlightSchemaVersion = 1

// Flight-record ring bounds: the recorder is a post-mortem tail, not an
// archive, so each section keeps only the most recent window.
const (
	defaultFlightSpans   = 256
	defaultFlightLogs    = 256
	defaultFlightSamples = 64
)

// FlightLogRecord is one captured slog record as it appears in a flight
// record.
type FlightLogRecord struct {
	UnixNano int64          `json:"unix_nano"`
	Level    string         `json:"level"`
	Message  string         `json:"msg"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// FlightRecord is a self-contained post-mortem capture: the last spans,
// log records and runtime samples retained at the capture instant, plus
// the SLO breach ledger and the health status. It is schema-versioned and
// round-trips through ParseFlightRecord.
type FlightRecord struct {
	Schema int    `json:"schema"`
	RunID  string `json:"run_id,omitempty"`
	// Reason says what triggered the capture: a failing phase (e.g.
	// "core.synthesize"), "sigquit", or "on-demand" (/debug/flight).
	Reason           string            `json:"reason"`
	Error            string            `json:"error,omitempty"`
	CapturedUnixNano int64             `json:"captured_unix_nano"`
	Attrs            map[string]any    `json:"attrs,omitempty"`
	Spans            []SpanRecord      `json:"spans,omitempty"`
	Logs             []FlightLogRecord `json:"logs,omitempty"`
	RuntimeSamples   []RuntimeSample   `json:"runtime_samples,omitempty"`
	Breaches         []Breach          `json:"breaches,omitempty"`
	Health           *HealthStatus     `json:"health,omitempty"`
}

// WriteJSON writes the record as indented JSON.
func (fr *FlightRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fr)
}

// ParseFlightRecord reads a record previously written by WriteJSON. It
// rejects records from a newer schema.
func ParseFlightRecord(r io.Reader) (*FlightRecord, error) {
	fr := &FlightRecord{}
	if err := json.NewDecoder(r).Decode(fr); err != nil {
		return nil, fmt.Errorf("obs: parse flight record: %w", err)
	}
	if fr.Schema > FlightSchemaVersion {
		return nil, fmt.Errorf("obs: flight record schema v%d is newer than supported v%d", fr.Schema, FlightSchemaVersion)
	}
	return fr, nil
}

// FlightRecorder is the scope's black box: a bounded ring of recent slog
// records plus, via the scope, the span ring, the runtime-sample ring and
// the breach ledger. Capture assembles those tails into a FlightRecord; a
// failure capture is kept as Last() (served by /debug/flight?last=1) and,
// when an auto-dump path is set, written to disk — first failure wins, so
// cascade cancellations never overwrite the root cause. All methods are
// nil-safe.
type FlightRecorder struct {
	scope *Scope

	mu     sync.Mutex
	logs   []FlightLogRecord
	next   int
	wrap   bool
	last   *FlightRecord
	dump   string // auto-dump destination ("" = off)
	dumped bool   // a failure record was already written to dump
}

func newFlightRecorder(s *Scope) *FlightRecorder {
	return &FlightRecorder{scope: s}
}

// Flight returns the scope's flight recorder, or nil on a nil scope.
func (s *Scope) Flight() *FlightRecorder {
	if s == nil {
		return nil
	}
	return s.flight
}

// SetAutoDump arranges for the first failure capture to be written as JSON
// to path ("" disables). Safe on nil.
func (f *FlightRecorder) SetAutoDump(path string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.dump = path
	f.mu.Unlock()
}

// AutoDumpPath returns the configured auto-dump destination ("" on nil or
// when unset).
func (f *FlightRecorder) AutoDumpPath() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dump
}

// addLog appends one captured slog record to the bounded ring.
func (f *FlightRecorder) addLog(rec FlightLogRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.logs) < defaultFlightLogs {
		f.logs = append(f.logs, rec)
		return
	}
	f.logs[f.next] = rec
	f.next = (f.next + 1) % defaultFlightLogs
	f.wrap = true
}

// logTail returns the retained log records, oldest first.
func (f *FlightRecorder) logTail() []FlightLogRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.wrap {
		return append([]FlightLogRecord(nil), f.logs...)
	}
	out := make([]FlightLogRecord, 0, len(f.logs))
	out = append(out, f.logs[f.next:]...)
	out = append(out, f.logs[:f.next]...)
	return out
}

// Capture assembles a FlightRecord from the scope's current tails. The
// optional alternating key/value pairs become record attributes. Returns
// nil on a nil recorder.
func (f *FlightRecorder) Capture(reason string, err error, kv ...any) *FlightRecord {
	if f == nil {
		return nil
	}
	s := f.scope
	fr := &FlightRecord{
		Schema:           FlightSchemaVersion,
		RunID:            s.RunID(),
		Reason:           reason,
		CapturedUnixNano: time.Now().UnixNano(),
		Logs:             f.logTail(),
		RuntimeSamples:   tail(s.RuntimeSamples(), defaultFlightSamples),
		Spans:            tail(s.Spans(), defaultFlightSpans),
		Breaches:         s.Breaches(),
	}
	h := s.Health()
	fr.Health = &h
	if err != nil {
		fr.Error = err.Error()
	}
	if len(kv) >= 2 {
		fr.Attrs = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			fr.Attrs[fmt.Sprint(kv[i])] = normalizeAttr(kv[i+1])
		}
	}
	return fr
}

// CaptureFailure is Capture for an error path: the record is retained as
// Last() and — on the first failure only — written to the auto-dump path.
// It also appends a synthetic error-level log record carrying the failure,
// so the captured log tail always ends with the event that triggered it.
// Safe on nil; returns the captured record (nil on a nil recorder).
func (f *FlightRecorder) CaptureFailure(reason string, err error, kv ...any) *FlightRecord {
	if f == nil {
		return nil
	}
	lr := FlightLogRecord{
		UnixNano: time.Now().UnixNano(),
		Level:    slog.LevelError.String(),
		Message:  "failure: " + reason,
	}
	if err != nil || len(kv) >= 2 {
		lr.Attrs = make(map[string]any, 1+len(kv)/2)
		if err != nil {
			lr.Attrs["error"] = err.Error()
		}
		for i := 0; i+1 < len(kv); i += 2 {
			lr.Attrs[fmt.Sprint(kv[i])] = normalizeAttr(kv[i+1])
		}
	}
	f.addLog(lr)
	fr := f.Capture(reason, err, kv...)
	f.mu.Lock()
	f.last = fr
	dump, dumped := f.dump, f.dumped
	if dump != "" {
		f.dumped = true
	}
	f.mu.Unlock()
	if dump != "" && !dumped {
		if werr := writeFlightFile(dump, fr); werr != nil {
			// A failed post-mortem write must not mask the original error;
			// it is reported on stderr and nowhere else.
			fmt.Fprintf(os.Stderr, "obs: flight auto-dump: %v\n", werr)
		}
	}
	return fr
}

// Last returns the most recent failure capture (nil when none happened, or
// on a nil recorder).
func (f *FlightRecorder) Last() *FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

func writeFlightFile(path string, fr *FlightRecord) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fr.WriteJSON(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func tail[T any](s []T, n int) []T {
	if len(s) > n {
		return s[len(s)-n:]
	}
	return s
}

// LogHandler returns a slog.Handler that records every log record into the
// flight recorder's ring and forwards to next (which may be nil to capture
// only). The handler is what the CLI -log-level/-log-json flags install,
// so console logging and the black box see one stream. Safe on a nil
// recorder (returns next unchanged).
func (f *FlightRecorder) LogHandler(next slog.Handler) slog.Handler {
	if f == nil {
		return next
	}
	return &flightHandler{fr: f, next: next}
}

// flightHandler tees slog records into the flight ring. It captures at
// every level (the black box should hold more detail than the console) and
// forwards only records the wrapped handler accepts.
type flightHandler struct {
	fr    *FlightRecorder
	next  slog.Handler
	attrs []slog.Attr
	group string
}

func (h *flightHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return true
}

func (h *flightHandler) Handle(ctx context.Context, rec slog.Record) error {
	flr := FlightLogRecord{
		UnixNano: rec.Time.UnixNano(),
		Level:    rec.Level.String(),
		Message:  rec.Message,
	}
	n := rec.NumAttrs() + len(h.attrs)
	if labels := LabelsFrom(ctx); len(labels) > 0 {
		n += len(labels) / 2
	}
	if n > 0 {
		flr.Attrs = make(map[string]any, n)
		// Handler-level attrs were captured with their group prefix already
		// resolved at WithAttrs time (the open group only scopes attrs added
		// after it).
		for _, a := range h.attrs {
			flr.Attrs[a.Key] = normalizeAttr(a.Value.Any())
		}
		rec.Attrs(func(a slog.Attr) bool {
			flr.Attrs[h.key(a.Key)] = normalizeAttr(a.Value.Any())
			return true
		})
		// Context labels (circuit, method, stage in the eval suite) stamp
		// the captured record even when the console handler drops them.
		for labels := LabelsFrom(ctx); len(labels) >= 2; labels = labels[2:] {
			flr.Attrs[labels[0]] = labels[1]
		}
	}
	h.fr.addLog(flr)
	if h.next != nil && h.next.Enabled(ctx, rec.Level) {
		return h.next.Handle(ctx, rec)
	}
	return nil
}

func (h *flightHandler) key(k string) string {
	if h.group == "" {
		return k
	}
	return h.group + "." + k
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &flightHandler{fr: h.fr, group: h.group}
	nh.attrs = append([]slog.Attr(nil), h.attrs...)
	for _, a := range attrs {
		a.Key = h.key(a.Key)
		nh.attrs = append(nh.attrs, a)
	}
	if h.next != nil {
		nh.next = h.next.WithAttrs(attrs)
	}
	return nh
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	nh := &flightHandler{fr: h.fr, attrs: h.attrs, group: name}
	if h.group != "" {
		nh.group = h.group + "." + name
	}
	if h.next != nil {
		nh.next = h.next.WithGroup(name)
	}
	return nh
}
