package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// traceEvent is one entry of the Chrome/Perfetto trace-event JSON format
// (the "JSON Array Format" with complete events). Timestamps and durations
// are in microseconds; pid/tid identify the process and (virtual) thread
// lanes Perfetto renders.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON Object Format wrapper Perfetto and
// chrome://tracing both accept.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePid is the synthetic process id used for all lanes.
const tracePid = 1

// WriteTraceEvents writes the snapshot's spans as Chrome/Perfetto
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
// Coordinator spans render on thread 0 ("flow"); worker-pool spans render
// on one virtual thread per worker, named after the pool and worker index
// (e.g. "mapper.curves/w2"). Span attributes and parents appear under each
// slice's args; span events become thread-scoped instant markers. Runtime
// samples (when a sampler ran) render as counter tracks — heap live/goal,
// goroutines, RSS — alongside the span lanes. Timestamps are rebased so
// the earliest span or sample starts at 0.
func (sn *Snapshot) WriteTraceEvents(w io.Writer) error {
	var base int64
	for i, sp := range sn.Spans {
		if i == 0 || sp.StartUnixNano < base {
			base = sp.StartUnixNano
		}
	}
	for i, rs := range sn.RuntimeSamples {
		if (i == 0 && len(sn.Spans) == 0) || rs.UnixNano < base {
			base = rs.UnixNano
		}
	}
	events := make([]traceEvent, 0, 2+2*len(sn.Spans))
	procArgs := map[string]any{"name": "powermap"}
	if sn.RunID != "" {
		procArgs["run_id"] = sn.RunID
	}
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
		Args: procArgs,
	})
	events = append(events, traceEvent{
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: 0,
		Args: map[string]any{"name": "flow"},
	})
	trackIDs := make([]int64, 0, len(sn.Tracks))
	for id := range sn.Tracks {
		trackIDs = append(trackIDs, id)
	}
	sort.Slice(trackIDs, func(i, j int) bool { return trackIDs[i] < trackIDs[j] })
	for _, id := range trackIDs {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: id,
			Args: map[string]any{"name": sn.Tracks[id]},
		})
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, sp := range sn.Spans {
		args := make(map[string]any, len(sp.Attrs)+1)
		for k, v := range sp.Attrs {
			args[k] = v
		}
		if sp.Parent != "" {
			args["parent"] = sp.Parent
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, traceEvent{
			Name: sp.Name,
			Cat:  "phase",
			Ph:   "X",
			Ts:   us(sp.StartUnixNano - base),
			Dur:  us(sp.DurationNs),
			Pid:  tracePid,
			Tid:  sp.Track,
			Args: args,
		})
		for _, ev := range sp.Events {
			events = append(events, traceEvent{
				Name: ev.Name,
				Cat:  "event",
				Ph:   "i",
				Ts:   us(ev.UnixNano - base),
				Pid:  tracePid,
				Tid:  sp.Track,
				S:    "t",
				Args: ev.Attrs,
			})
		}
	}
	// Counter tracks from the runtime-sample ring: each named track renders
	// as a value-over-time chart above the span lanes.
	for _, rs := range sn.RuntimeSamples {
		ts := us(rs.UnixNano - base)
		events = append(events,
			traceEvent{Name: "heap (bytes)", Cat: "runtime", Ph: "C", Ts: ts, Pid: tracePid,
				Args: map[string]any{"live": rs.HeapLiveBytes, "goal": rs.HeapGoalBytes}},
			traceEvent{Name: "goroutines", Cat: "runtime", Ph: "C", Ts: ts, Pid: tracePid,
				Args: map[string]any{"count": rs.Goroutines}},
		)
		if rs.RSSBytes > 0 {
			events = append(events, traceEvent{Name: "rss (bytes)", Cat: "runtime", Ph: "C",
				Ts: ts, Pid: tracePid, Args: map[string]any{"rss": rs.RSSBytes}})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteTraceEvents writes a scope snapshot in Chrome/Perfetto trace-event
// JSON; see Snapshot.WriteTraceEvents. Safe on a nil scope (an empty but
// valid trace).
func WriteTraceEvents(w io.Writer, s *Scope) error {
	return s.Snapshot().WriteTraceEvents(w)
}
