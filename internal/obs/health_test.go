package obs

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in   string
		want Budget
	}{
		{"decompose=200ms", Budget{Phase: "decompose", MaxDur: 200 * time.Millisecond}},
		{"synthesize=50000nodes", Budget{Phase: "synthesize", MaxLiveNodes: 50000}},
		{"map=1s,20000nodes", Budget{Phase: "map", MaxDur: time.Second, MaxLiveNodes: 20000}},
		{" map = 1s , 20000nodes ", Budget{Phase: "map", MaxDur: time.Second, MaxLiveNodes: 20000}},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if err != nil {
			t.Errorf("ParseBudget(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBudget(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String() renders back into parseable flag syntax.
		back, err := ParseBudget(got.String())
		if err != nil || back != got {
			t.Errorf("Budget(%q).String() = %q does not round-trip: %+v, %v", c.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"", "decompose", "=1s", "p=", "p=0s", "p=-1s", "p=xnodes", "p=0nodes", "p=junk"} {
		if b, err := ParseBudget(bad); err == nil {
			t.Errorf("ParseBudget(%q) accepted as %+v", bad, b)
		}
	}
}

// breachedScope returns a scope whose "decompose" latency budget has
// provably breached (a 1ns ceiling against a real span).
func breachedScope(t *testing.T) *Scope {
	t.Helper()
	sc := New(Config{})
	sc.SetBudgets([]Budget{{Phase: "decompose", MaxDur: time.Nanosecond}})
	span := sc.Start("decompose")
	time.Sleep(time.Millisecond)
	span.End()
	if n := sc.BreachCount(); n == 0 {
		t.Fatal("1ns budget did not breach")
	}
	return sc
}

func TestBudgetBreachLedgerAndCounter(t *testing.T) {
	sc := breachedScope(t)
	br := sc.Breaches()
	if len(br) != 1 {
		t.Fatalf("breach ledger has %d entries, want 1", len(br))
	}
	b := br[0]
	if b.Phase != "decompose" || b.Kind != "latency" {
		t.Errorf("breach = %+v, want decompose/latency", b)
	}
	if b.Value <= b.Limit {
		t.Errorf("breach value %d not above limit %d", b.Value, b.Limit)
	}
	// Spans for unbudgeted phases never breach.
	other := sc.Start("map")
	other.End()
	if n := sc.BreachCount(); n != 1 {
		t.Errorf("unbudgeted span breached: count = %d", n)
	}
}

func TestLiveNodesBreach(t *testing.T) {
	sc := New(Config{})
	sc.SetBudgets([]Budget{{Phase: "synthesize", MaxLiveNodes: 100}})
	sc.Gauge(LiveNodesGauge).Set(250)
	span := sc.Start("synthesize")
	span.End()
	br := sc.Breaches()
	if len(br) != 1 || br[0].Kind != "live_nodes" {
		t.Fatalf("breaches = %+v, want one live_nodes breach", br)
	}
	if br[0].Value != 250 || br[0].Limit != 100 {
		t.Errorf("breach = %+v, want value 250 limit 100", br[0])
	}
}

// TestHealthzDegradesOnBreach is the acceptance check for the SLO layer:
// a budget breach flips /healthz from 200 to 503 while the breach shows up
// in the powermap_slo_breaches metric series; /readyz stays 200 (the
// process can still serve, the run just missed its SLO).
func TestHealthzDegradesOnBreach(t *testing.T) {
	sc := New(Config{})
	h := sc.Handler()
	get := func(path string) (int, []byte) {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr.Code, rr.Body.Bytes()
	}

	code, body := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz before breach = %d:\n%s", code, body)
	}
	var hs HealthStatus
	if err := json.Unmarshal(body, &hs); err != nil || !hs.Healthy {
		t.Fatalf("/healthz body not a healthy HealthStatus: %v\n%s", err, body)
	}

	sc.SetBudgets([]Budget{{Phase: "decompose", MaxDur: time.Nanosecond}})
	span := sc.Start("decompose")
	time.Sleep(time.Millisecond)
	span.End()

	code, body = get("/healthz")
	if code != 503 {
		t.Fatalf("/healthz after breach = %d, want 503:\n%s", code, body)
	}
	if err := json.Unmarshal(body, &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Healthy || hs.Breaches != 1 || len(hs.Reasons) == 0 {
		t.Errorf("degraded status not reported: %+v", hs)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz after breach = %d, want 200 (breaches are a liveness concern)", code)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(string(body), `powermap_slo_breaches{kind="latency",phase="decompose"} 1`) {
		t.Errorf("breach not visible in /metrics (%d):\n%s", code, body)
	}
}

func TestHealthSamplerStall(t *testing.T) {
	sc := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := sc.StartRuntimeSampler(ctx, time.Millisecond)
	if st := sc.Health(); !st.Ready || !st.SamplerStarted {
		t.Fatalf("first sample is synchronous, so a fresh sampler must be ready: %+v", st)
	}
	s.Stop()
	// With the sampler dead, the last sample ages past 3x the 1ms interval.
	time.Sleep(50 * time.Millisecond)
	st := sc.Health()
	if !st.SamplerStalled || st.Healthy {
		t.Errorf("dead sampler not reported as a stall: %+v", st)
	}
}

func TestHealthSpanDropGrowth(t *testing.T) {
	sc := New(Config{MaxSpans: 2})
	sc.Health() // arm the probe watermark
	for i := 0; i < 5; i++ {
		sc.Start("s").End()
	}
	if st := sc.Health(); st.Healthy {
		t.Errorf("span-drop growth between probes did not degrade health: %+v", st)
	}
	// Drops recorded, no further growth: the next probe heals.
	if st := sc.Health(); !st.Healthy {
		t.Errorf("health did not heal once drops stopped growing: %+v", st)
	}
}

func TestHealthNilScope(t *testing.T) {
	var sc *Scope
	if st := sc.Health(); !st.Healthy || !st.Ready {
		t.Errorf("nil scope must report healthy+ready: %+v", st)
	}
	sc.SetBudgets([]Budget{{Phase: "p", MaxDur: time.Second}}) // must not panic
	if sc.Budgets() != nil || sc.Breaches() != nil || sc.BreachCount() != 0 {
		t.Error("nil scope has SLO state")
	}
}

// TestServeGzip checks the satellite fix: /trace and /snapshot honor
// Accept-Encoding: gzip with the correct Content-Type, and the compressed
// payload inflates to the same valid JSON an identity request returns.
func TestServeGzip(t *testing.T) {
	sc := New(Config{})
	sc.Start("decompose").End()
	sc.Counter("decomp.nodes_planned").Add(3)
	h := sc.Handler()

	for _, path := range []string{"/trace", "/snapshot", "/debug/flight"} {
		req := httptest.NewRequest("GET", path, nil)
		req.Header.Set("Accept-Encoding", "gzip, deflate")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q, want application/json", path, ct)
		}
		if ce := rr.Header().Get("Content-Encoding"); ce != "gzip" {
			t.Fatalf("%s Content-Encoding = %q, want gzip", path, ce)
		}
		if v := rr.Header().Get("Vary"); v != "Accept-Encoding" {
			t.Errorf("%s Vary = %q, want Accept-Encoding", path, v)
		}
		zr, err := gzip.NewReader(rr.Body)
		if err != nil {
			t.Fatalf("%s body is not gzip: %v", path, err)
		}
		inflated, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s inflate: %v", path, err)
		}
		if !json.Valid(inflated) {
			t.Errorf("%s inflated body is not JSON:\n%s", path, inflated)
		}

		// The identity request must stay uncompressed.
		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if ce := rr.Header().Get("Content-Encoding"); ce != "" {
			t.Errorf("%s without Accept-Encoding got Content-Encoding %q", path, ce)
		}
		// The Vary header must be present even on the identity response, or
		// a shared cache that first saw an identity client would later serve
		// the uncompressed body to everyone (and vice versa).
		if v := rr.Header().Get("Vary"); v != "Accept-Encoding" {
			t.Errorf("%s identity response Vary = %q, want Accept-Encoding", path, v)
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Errorf("%s identity body is not JSON:\n%s", path, rr.Body.String())
		}
	}
}

// TestDebugFlightEndpoint checks both modes: ?last=1 serves only a retained
// failure capture (404 before one exists), and the bare path captures
// on-demand.
func TestDebugFlightEndpoint(t *testing.T) {
	sc := New(Config{RunID: "run-df"})
	sc.Start("map").End()
	h := sc.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?last=1", nil))
	if rr.Code != 404 {
		t.Fatalf("?last=1 with no failure = %d, want 404", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("on-demand capture = %d", rr.Code)
	}
	fr, err := ParseFlightRecord(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Reason != "on-demand" || fr.RunID != "run-df" || len(fr.Spans) != 1 {
		t.Errorf("on-demand record wrong: reason=%q run=%q spans=%d", fr.Reason, fr.RunID, len(fr.Spans))
	}

	sc.Flight().CaptureFailure("core.synthesize", io.ErrUnexpectedEOF)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?last=1", nil))
	if rr.Code != 200 {
		t.Fatalf("?last=1 after failure = %d", rr.Code)
	}
	if fr, err = ParseFlightRecord(rr.Body); err != nil || fr.Reason != "core.synthesize" {
		t.Errorf("retained capture wrong: %v, %+v", err, fr)
	}
}

// brokenWriter fails every Write, simulating a health probe that hung up
// mid-body.
type brokenWriter struct {
	header http.Header
	code   int
}

func (b *brokenWriter) Header() http.Header {
	if b.header == nil {
		b.header = make(http.Header)
	}
	return b.header
}
func (b *brokenWriter) WriteHeader(code int)      { b.code = code }
func (b *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("peer hung up") }

// TestWriteHealthLogsEncodeFailure checks the satellite fix: a failed
// health-body encode is surfaced through the scope's slog handler instead
// of being silently discarded.
func TestWriteHealthLogsEncodeFailure(t *testing.T) {
	sc := New(Config{})
	var logged bytes.Buffer
	sc.SetSpanLogger(slog.New(slog.NewTextHandler(&logged, nil)))

	sc.writeHealth(&brokenWriter{}, "/healthz", sc.Health(), true)
	out := logged.String()
	if !strings.Contains(out, "health write failed") || !strings.Contains(out, "peer hung up") {
		t.Errorf("encode failure not logged; log output:\n%s", out)
	}

	// A healthy write logs nothing, and a logger-less or nil scope must not
	// panic on the failure path.
	logged.Reset()
	rr := httptest.NewRecorder()
	sc.writeHealth(rr, "/healthz", sc.Health(), true)
	if logged.Len() != 0 {
		t.Errorf("successful write logged: %s", logged.String())
	}
	New(Config{}).writeHealth(&brokenWriter{}, "/healthz", HealthStatus{}, false)
	var nilScope *Scope
	nilScope.LogError("must not panic")
}
