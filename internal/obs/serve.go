package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the scope's live telemetry:
//
//	/metrics    Prometheus text exposition (scraped snapshot)
//	/snapshot   the full JSON snapshot (spans + metrics)
//	/trace      Chrome/Perfetto trace-event JSON of the retained spans
//	/debug/pprof/...  the standard Go profiling endpoints
//
// Every request snapshots the scope at that instant, so a scraping
// Prometheus sees current values while the flow runs. Safe on a nil scope
// (all exports are empty but well-formed).
func (s *Scope) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.Snapshot().WriteTraceEvents(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
