package obs

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns an http.Handler exposing the scope's live telemetry:
//
//	/metrics       Prometheus text exposition (scraped snapshot)
//	/snapshot      the full JSON snapshot (spans + metrics + runtime samples)
//	/trace         Chrome/Perfetto trace-event JSON of the retained spans
//	/healthz       200 while healthy, 503 after a budget breach, sampler
//	               stall, or span-ring drop growth (JSON HealthStatus body)
//	/readyz        200 once the scope is serving and the sampler (if
//	               started) has produced a sample; 503 otherwise
//	/debug/flight  on-demand flight record (?last=1 returns the retained
//	               failure capture instead; 404 when none exists)
//	/debug/pprof/...  the standard Go profiling endpoints
//
// Every request snapshots the scope at that instant, so a scraping
// Prometheus sees current values while the flow runs. /snapshot and /trace
// honor Accept-Encoding: gzip (they are the large payloads). Safe on a nil
// scope (exports are empty but well-formed; health reports healthy).
func (s *Scope) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out, done := maybeGzip(w, r)
		defer done()
		s.Snapshot().WriteJSON(out)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out, done := maybeGzip(w, r)
		defer done()
		s.Snapshot().WriteTraceEvents(out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		s.writeHealth(w, "/healthz", h, h.Healthy)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		s.writeHealth(w, "/readyz", h, h.Ready)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		fl := s.Flight()
		var fr *FlightRecord
		if r.URL.Query().Get("last") != "" {
			if fr = fl.Last(); fr == nil {
				http.Error(w, "no failure capture retained", http.StatusNotFound)
				return
			}
		} else if fr = fl.Capture("on-demand", nil); fr == nil {
			// Nil scope: serve an empty but schema-valid record.
			fr = &FlightRecord{Schema: FlightSchemaVersion, Reason: "on-demand"}
		}
		w.Header().Set("Content-Type", "application/json")
		out, done := maybeGzip(w, r)
		defer done()
		fr.WriteJSON(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeHealth serves one health verdict. An Encode failure usually means
// the probe hung up mid-body (a truncated /healthz looks like a flapping
// service to an orchestrator), so it is logged instead of discarded.
func (s *Scope) writeHealth(w http.ResponseWriter, endpoint string, h HealthStatus, ok bool) {
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		s.LogError("health write failed", "endpoint", endpoint, "err", err)
	}
}

// LogError emits an error record through the scope's span logger (the
// shared -log-level/-log-json chain once the CLI installed it). Safe on a
// nil or logger-less scope.
func (s *Scope) LogError(msg string, args ...any) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	logger := s.tracer.logger
	s.tracer.mu.Unlock()
	if logger != nil {
		logger.Error(msg, args...)
	}
}

// maybeGzip wraps the response in a gzip writer when the client advertises
// support. The returned cleanup must run before the handler returns (it
// flushes the gzip trailer). The response varies on Accept-Encoding whether
// or not this client negotiated gzip, so the header is set unconditionally
// — otherwise an intermediary cache could hand the gzipped body to a
// client that never asked for it.
func maybeGzip(w http.ResponseWriter, r *http.Request) (io.Writer, func()) {
	w.Header().Add("Vary", "Accept-Encoding")
	if !acceptsGzip(r) {
		return w, func() {}
	}
	w.Header().Set("Content-Encoding", "gzip")
	gz := gzip.NewWriter(w)
	return gz, func() { gz.Close() }
}

func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc = strings.TrimSpace(enc)
		if enc == "gzip" || strings.HasPrefix(enc, "gzip;") {
			return true
		}
	}
	return false
}
