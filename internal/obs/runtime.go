package obs

import (
	"context"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleInterval is the runtime sampler cadence used when
// StartRuntimeSampler is given a non-positive interval. Half a second keeps
// a long -serve process's counter tracks smooth while costing microseconds
// per tick.
const DefaultSampleInterval = 500 * time.Millisecond

// defaultMaxRuntimeSamples bounds the per-scope runtime-sample ring: at the
// default interval it retains the last ~4 minutes, and at any interval it
// caps flight-record and snapshot payloads.
const defaultMaxRuntimeSamples = 512

// RuntimeSample is one observation of the Go runtime's resource state, as
// captured by the background sampler. GC pause and scheduling-latency
// quantiles summarize the runtime's process-lifetime distributions at the
// sample instant.
type RuntimeSample struct {
	UnixNano          int64   `json:"unix_nano"`
	HeapLiveBytes     uint64  `json:"heap_live_bytes"`
	HeapGoalBytes     uint64  `json:"heap_goal_bytes"`
	Goroutines        int64   `json:"goroutines"`
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseP50Ns      float64 `json:"gc_pause_p50_ns"`
	GCPauseP99Ns      float64 `json:"gc_pause_p99_ns"`
	SchedLatencyP50Ns float64 `json:"sched_latency_p50_ns"`
	SchedLatencyP99Ns float64 `json:"sched_latency_p99_ns"`
	// RSSBytes is the OS-reported resident set size (0 where /proc is
	// unavailable).
	RSSBytes uint64 `json:"rss_bytes,omitempty"`
}

// runtimeState is the scope's sampler-side state: the bounded sample ring
// plus the liveness bookkeeping the health layer reads for stall
// detection.
type runtimeState struct {
	mu      sync.Mutex
	samples []RuntimeSample
	next    int // overwrite cursor once the ring is full
	wrapped bool

	// started is 1 once a sampler was attached to the scope; lastNano and
	// intervalNs feed the health layer's stall check.
	started    atomic.Int64
	lastNano   atomic.Int64
	intervalNs atomic.Int64
}

func (r *runtimeState) add(s RuntimeSample) {
	r.mu.Lock()
	if len(r.samples) < defaultMaxRuntimeSamples {
		r.samples = append(r.samples, s)
	} else {
		r.samples[r.next] = s
		r.next = (r.next + 1) % defaultMaxRuntimeSamples
		r.wrapped = true
	}
	r.mu.Unlock()
	r.lastNano.Store(s.UnixNano)
}

// RuntimeSamples returns the retained runtime samples, oldest first (nil on
// a nil scope or before the first sample).
func (s *Scope) RuntimeSamples() []RuntimeSample {
	if s == nil {
		return nil
	}
	r := &s.rt
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]RuntimeSample(nil), r.samples...)
	}
	out := make([]RuntimeSample, 0, len(r.samples))
	out = append(out, r.samples[r.next:]...)
	out = append(out, r.samples[:r.next]...)
	return out
}

// samplerKeys are the runtime/metrics series the sampler reads, in the
// order of the prepared sample slice.
var samplerKeys = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeSampler is a background goroutine bridging runtime/metrics into
// the scope: every interval it appends one RuntimeSample to the scope's
// ring and refreshes the runtime.* gauges and histograms (exported as
// powermap_runtime_* by WritePrometheus and as counter tracks by
// WriteTraceEvents). Stop it exactly once; it also stops when the start
// context is cancelled. A nil *RuntimeSampler (from a nil scope) is inert.
type RuntimeSampler struct {
	scope    *Scope
	interval time.Duration
	cancel   context.CancelFunc
	done     chan struct{}
}

// StartRuntimeSampler starts the background resource sampler on the scope.
// A non-positive interval selects DefaultSampleInterval. The first sample
// is taken synchronously, so even a run shorter than one interval records
// the runtime state it started under. Returns nil on a nil scope.
func (s *Scope) StartRuntimeSampler(ctx context.Context, interval time.Duration) *RuntimeSampler {
	if s == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s.rt.started.Store(1)
	s.rt.intervalNs.Store(int64(interval))
	ctx, cancel := context.WithCancel(ctx)
	r := &RuntimeSampler{scope: s, interval: interval, cancel: cancel, done: make(chan struct{})}
	r.sampleOnce()
	go r.loop(ctx)
	return r
}

// Stop halts the sampler and waits for its goroutine to exit. Safe on nil
// and safe to call after context cancellation (but not twice).
func (r *RuntimeSampler) Stop() {
	if r == nil {
		return
	}
	r.cancel()
	<-r.done
}

func (r *RuntimeSampler) loop(ctx context.Context) {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.sampleOnce()
		}
	}
}

// sampleOnce takes one sample and publishes it to the ring and the metric
// registry. The handles are looked up per call (not hoisted) because the
// cadence is human-scale; registry lookups are noise next to metrics.Read.
func (r *RuntimeSampler) sampleOnce() {
	sc := r.scope
	s := readRuntimeSample()
	sc.rt.add(s)
	sc.Gauge("runtime.heap_live_bytes").Set(float64(s.HeapLiveBytes))
	sc.Gauge("runtime.heap_goal_bytes").Set(float64(s.HeapGoalBytes))
	sc.Gauge("runtime.goroutines").Set(float64(s.Goroutines))
	sc.Gauge("runtime.gc_cycles").Set(float64(s.GCCycles))
	sc.Gauge("runtime.gc_pause_p50_ns").Set(s.GCPauseP50Ns)
	sc.Gauge("runtime.gc_pause_p99_ns").Set(s.GCPauseP99Ns)
	sc.Gauge("runtime.sched_latency_p50_ns").Set(s.SchedLatencyP50Ns)
	sc.Gauge("runtime.sched_latency_p99_ns").Set(s.SchedLatencyP99Ns)
	if s.RSSBytes > 0 {
		sc.Gauge("runtime.rss_bytes").Set(float64(s.RSSBytes))
	}
	// Distribution-over-time views: the gauges are last-write-wins, the
	// histograms keep the run's spread for p50/p90/p99 summaries.
	sc.Histogram("runtime.heap_live_dist_bytes").Observe(float64(s.HeapLiveBytes))
	sc.Histogram("runtime.goroutines_dist").Observe(float64(s.Goroutines))
	sc.Counter("runtime.samples").Inc()
}

// readRuntimeSample reads the runtime/metrics series once.
func readRuntimeSample() RuntimeSample {
	samples := make([]metrics.Sample, len(samplerKeys))
	for i, k := range samplerKeys {
		samples[i].Name = k
	}
	metrics.Read(samples)
	out := RuntimeSample{UnixNano: time.Now().UnixNano()}
	for i, k := range samplerKeys {
		v := samples[i].Value
		switch k {
		case "/memory/classes/heap/objects:bytes":
			if v.Kind() == metrics.KindUint64 {
				out.HeapLiveBytes = v.Uint64()
			}
		case "/gc/heap/goal:bytes":
			if v.Kind() == metrics.KindUint64 {
				out.HeapGoalBytes = v.Uint64()
			}
		case "/sched/goroutines:goroutines":
			if v.Kind() == metrics.KindUint64 {
				out.Goroutines = int64(v.Uint64())
			}
		case "/gc/cycles/total:gc-cycles":
			if v.Kind() == metrics.KindUint64 {
				out.GCCycles = v.Uint64()
			}
		case "/gc/pauses:seconds":
			if v.Kind() == metrics.KindFloat64Histogram {
				out.GCPauseP50Ns = histQuantileNs(v.Float64Histogram(), 0.50)
				out.GCPauseP99Ns = histQuantileNs(v.Float64Histogram(), 0.99)
			}
		case "/sched/latencies:seconds":
			if v.Kind() == metrics.KindFloat64Histogram {
				out.SchedLatencyP50Ns = histQuantileNs(v.Float64Histogram(), 0.50)
				out.SchedLatencyP99Ns = histQuantileNs(v.Float64Histogram(), 0.99)
			}
		}
	}
	if out.Goroutines == 0 {
		out.Goroutines = int64(runtime.NumGoroutine())
	}
	out.RSSBytes = readRSSBytes()
	return out
}

// histQuantileNs estimates the q-quantile of a runtime/metrics histogram
// (whose unit is seconds) in nanoseconds, taking each bucket's upper bound.
func histQuantileNs(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Buckets[i+1] is the bucket's upper bound; the last bucket's
			// bound may be +Inf, in which case fall back to its lower bound.
			hi := h.Buckets[i+1]
			if hi > 1e18 || hi != hi { // +Inf or NaN
				hi = h.Buckets[i]
			}
			return hi * 1e9
		}
	}
	return h.Buckets[len(h.Buckets)-1] * 1e9
}

// readRSSBytes reads the resident set size from /proc/self/statm (Linux);
// returns 0 on any other platform or error.
func readRSSBytes() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}
