package obs

import (
	"context"
	"fmt"
	"testing"
)

func TestSpanRingBuffer(t *testing.T) {
	sc := New(Config{MaxSpans: 4})
	for i := 0; i < 10; i++ {
		span := sc.Start(fmt.Sprintf("phase%d", i))
		span.End()
	}
	spans := sc.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Oldest-first: the ring keeps the newest 4 of 10.
	for i, sp := range spans {
		if want := fmt.Sprintf("phase%d", 6+i); sp.Name != want {
			t.Errorf("spans[%d] = %q, want %q", i, sp.Name, want)
		}
	}
	if got := sc.SpansDropped(); got != 6 {
		t.Errorf("SpansDropped = %d, want 6", got)
	}
	sn := sc.Snapshot()
	if sn.SpansDropped != 6 {
		t.Errorf("snapshot SpansDropped = %d, want 6", sn.SpansDropped)
	}
}

func TestSpanRingUnbounded(t *testing.T) {
	sc := New(Config{MaxSpans: -1})
	for i := 0; i < 100; i++ {
		sc.Start("p").End()
	}
	if got := len(sc.Spans()); got != 100 {
		t.Errorf("unbounded scope retained %d spans, want 100", got)
	}
	if got := sc.SpansDropped(); got != 0 {
		t.Errorf("unbounded scope dropped %d spans", got)
	}
}

func TestSpanAttrsAndEvents(t *testing.T) {
	sc := New(Config{})
	span := sc.Start("map")
	span.SetAttr("gates", 23).SetAttr("objective", "pd-map").SetAttr("ok", true).SetAttr("ratio", 0.5)
	span.Event("pass", "n", 2)
	span.End()
	spans := sc.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	sp := spans[0]
	if sp.Attrs["gates"] != int64(23) || sp.Attrs["objective"] != "pd-map" || sp.Attrs["ok"] != true || sp.Attrs["ratio"] != 0.5 {
		t.Errorf("attrs = %#v", sp.Attrs)
	}
	if len(sp.Events) != 1 || sp.Events[0].Name != "pass" || sp.Events[0].Attrs["n"] != int64(2) {
		t.Errorf("events = %#v", sp.Events)
	}
	// Nil-safety: chaining on a nil span must not panic.
	var nilSpan *Span
	nilSpan.SetAttr("k", 1).SetAttr("k2", 2)
	nilSpan.Event("e")
	nilSpan.End()
}

func TestTracksAndContext(t *testing.T) {
	sc := New(Config{})
	w0 := sc.TrackFor("pool/w0")
	w1 := sc.TrackFor("pool/w1")
	if w0 == 0 || w1 == 0 || w0 == w1 {
		t.Fatalf("track ids not distinct and nonzero: %d, %d", w0, w1)
	}
	if again := sc.TrackFor("pool/w0"); again != w0 {
		t.Errorf("TrackFor not stable: %d then %d", w0, again)
	}
	names := sc.TrackNames()
	if names[w0] != "pool/w0" || names[w1] != "pool/w1" {
		t.Errorf("track names = %v", names)
	}

	// Spans on different tracks nest independently: a span opened on the
	// worker track must not become the parent of a coordinator span.
	ctx := WithScope(context.Background(), sc)
	cw := sc.StartCtx(WithTrack(ctx, w0), "worker-span")
	co := sc.StartCtx(ctx, "coordinator-span")
	co.End()
	cw.End()
	byName := map[string]SpanRecord{}
	for _, sp := range sc.Spans() {
		byName[sp.Name] = sp
	}
	if p := byName["coordinator-span"].Parent; p != "" {
		t.Errorf("coordinator span parented to %q across tracks", p)
	}
	if tr := byName["worker-span"].Track; tr != w0 {
		t.Errorf("worker span track = %d, want %d", tr, w0)
	}

	// Labels from the context surface as span attributes.
	lctx := WithLabels(ctx, "circuit", "cm42a", "method", "VI")
	ls := sc.StartCtx(lctx, "labeled")
	ls.End()
	spans := sc.Spans()
	last := spans[len(spans)-1]
	if last.Attrs["circuit"] != "cm42a" || last.Attrs["method"] != "VI" {
		t.Errorf("labeled span attrs = %#v", last.Attrs)
	}

	// Nil scope: context helpers must be safe no-ops.
	var nilScope *Scope
	nctx := WithScope(context.Background(), nilScope)
	if got := ScopeFrom(nctx); got != nil {
		t.Errorf("ScopeFrom(nil-scope ctx) = %v", got)
	}
	nilScope.StartCtx(nctx, "x").End()
	if nilScope.TrackFor("t") != 0 {
		t.Error("nil scope allocated a track")
	}
}

func TestLabeledMetrics(t *testing.T) {
	sc := New(Config{})
	a := sc.Counter("eval.runs").With("method", "VI", "circuit", "cm42a")
	b := sc.Counter("eval.runs").With("circuit", "cm42a", "method", "VI")
	if a != b {
		t.Error("label order changed series identity")
	}
	a.Add(2)
	b.Inc()
	if got := a.Value(); got != 3 {
		t.Errorf("labeled counter value = %d, want 3", got)
	}
	// The unlabeled series is distinct.
	sc.Counter("eval.runs").Inc()
	sn := sc.Snapshot()
	if sn.Counters[`eval.runs{circuit="cm42a",method="VI"}`] != 3 {
		t.Errorf("snapshot missing labeled series: %v", sn.Counters)
	}
	if sn.Counters["eval.runs"] != 1 {
		t.Errorf("unlabeled series = %d, want 1", sn.Counters["eval.runs"])
	}

	// Escaping: quotes and backslashes in values must round-trip the
	// series key unambiguously.
	sc.Gauge("g").With("k", `a"b\c`).Set(1)
	if _, ok := sc.Snapshot().Gauges[`g{k="a\"b\\c"}`]; !ok {
		t.Errorf("escaped series key missing: %v", sc.Snapshot().Gauges)
	}

	// With on further refinement merges labels.
	h := sc.Histogram("lat").With("stage", "map").With("circuit", "x2")
	h.Observe(1)
	if _, ok := sc.Snapshot().Histograms[`lat{circuit="x2",stage="map"}`]; !ok {
		t.Errorf("merged-label histogram missing: %v", sc.Snapshot().Histograms)
	}

	// Nil safety.
	var nilC *Counter
	nilC.With("a", "b").Inc()
	var nilScope *Scope
	nilScope.Counter("c").With("a", "b").Add(1)
	nilScope.Gauge("g").With("a", "b").Set(1)
	nilScope.Histogram("h").With("a", "b").Observe(1)
}
