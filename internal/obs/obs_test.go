package obs

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	sc := New(Config{})
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sc.Counter("shared")
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := sc.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("concurrent counter = %d, want %d", got, goroutines*perG)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	sc := New(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			h := sc.Histogram("shared")
			for j := 0; j < 1000; j++ {
				h.Observe(float64(base + j))
			}
		}(i)
	}
	wg.Wait()
	if got := sc.Histogram("shared").Stats().Count; got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestNilScopeNoOp(t *testing.T) {
	var sc *Scope // everything below must be a silent no-op
	if sc.Enabled() {
		t.Error("nil scope reports enabled")
	}
	span := sc.Start("phase")
	sc.Counter("c").Add(5)
	sc.Counter("c").Inc()
	sc.Gauge("g").Set(1.5)
	sc.Gauge("g").SetMax(2.5)
	sc.Histogram("h").Observe(3)
	if d := span.End(); d != 0 {
		t.Errorf("nil span duration = %v, want 0", d)
	}
	if v := sc.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := sc.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %v", v)
	}
	if st := sc.Histogram("h").Stats(); st.Count != 0 {
		t.Errorf("nil histogram stats = %+v", st)
	}
	if got := sc.Spans(); got != nil {
		t.Errorf("nil scope spans = %v", got)
	}
	sn := sc.Snapshot()
	if sn == nil || len(sn.Counters) != 0 || len(sn.Spans) != 0 {
		t.Errorf("nil scope snapshot = %+v", sn)
	}
	var buf bytes.Buffer
	if err := sn.WriteJSON(&buf); err != nil {
		t.Fatalf("nil-scope snapshot JSON: %v", err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	sc := New(Config{})
	h := sc.Histogram("lat")
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	st := h.Stats()
	if st.Count != 100 || st.Min != 1 || st.Max != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Sum-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", st.Sum)
	}
	checks := []struct {
		q, want, tol float64
	}{{0, 1, 0}, {0.5, 50.5, 0.51}, {0.9, 90.1, 0.51}, {0.99, 99.01, 0.51}, {1, 100, 0}}
	for _, c := range checks {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("quantile(%v) = %v, want %v ± %v", c.q, got, c.want, c.tol)
		}
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	sc := New(Config{})
	h := sc.Histogram("big")
	for v := 0; v < 10*maxHistogramSamples; v++ {
		h.Observe(float64(v))
	}
	if len(h.samples) != maxHistogramSamples {
		t.Errorf("reservoir size = %d, want %d", len(h.samples), maxHistogramSamples)
	}
	st := h.Stats()
	if st.Count != int64(10*maxHistogramSamples) {
		t.Errorf("count = %d", st.Count)
	}
	// The p50 of a uniform 0..N stream should land near N/2 even after
	// reservoir sampling.
	mid := float64(10*maxHistogramSamples) / 2
	if math.Abs(st.P50-mid) > mid/4 {
		t.Errorf("reservoir p50 = %v, want ≈ %v", st.P50, mid)
	}
}

func TestSpanNestingAndLogging(t *testing.T) {
	var logBuf bytes.Buffer
	sc := New(Config{Logger: slog.New(slog.NewTextHandler(&logBuf, nil))})
	outer := sc.Start("outer")
	inner := sc.Start("inner")
	inner.End()
	outer.End()
	spans := sc.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// End order: inner first.
	if spans[0].Name != "inner" || spans[0].Parent != "outer" {
		t.Errorf("inner span = %+v", spans[0])
	}
	if spans[1].Name != "outer" || spans[1].Parent != "" {
		t.Errorf("outer span = %+v", spans[1])
	}
	if spans[0].DurationNs < 0 || spans[0].StartUnixNano == 0 {
		t.Errorf("span timing not recorded: %+v", spans[0])
	}
	logged := logBuf.String()
	for _, want := range []string{"phase", "name=inner", "parent=outer", "name=outer"} {
		if !strings.Contains(logged, want) {
			t.Errorf("log output missing %q:\n%s", want, logged)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	sc := New(Config{})
	sp := sc.Start("decompose")
	sc.Start("plan-trees").End()
	sp.End()
	sc.Counter("decomp.merge_evals").Add(42)
	sc.Gauge("decomp.total_activity").Set(3.25)
	h := sc.Histogram("mapper.curve_points_per_node")
	h.Observe(4)
	h.Observe(8)

	sn := sc.Snapshot()
	var buf bytes.Buffer
	if err := sn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 2 || back.Spans[0].Name != "plan-trees" || back.Spans[0].Parent != "decompose" {
		t.Errorf("spans did not round-trip: %+v", back.Spans)
	}
	if back.Counters["decomp.merge_evals"] != 42 {
		t.Errorf("counter did not round-trip: %+v", back.Counters)
	}
	if back.Gauges["decomp.total_activity"] != 3.25 {
		t.Errorf("gauge did not round-trip: %+v", back.Gauges)
	}
	hs := back.Histograms["mapper.curve_points_per_node"]
	if hs.Count != 2 || hs.Sum != 12 || hs.Min != 4 || hs.Max != 8 {
		t.Errorf("histogram did not round-trip: %+v", hs)
	}

	var table bytes.Buffer
	if err := back.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phases:", "decompose", "counters:", "decomp.merge_evals", "gauges:", "histograms:"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
}

func TestGaugeSetMax(t *testing.T) {
	sc := New(Config{})
	g := sc.Gauge("depth")
	g.SetMax(3)
	g.SetMax(1)
	if got := g.Value(); got != 3 {
		t.Errorf("SetMax kept %v, want 3", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Errorf("SetMax kept %v, want 7", got)
	}
}

func TestMetricsHandleIdentity(t *testing.T) {
	sc := New(Config{})
	if sc.Counter("x") != sc.Counter("x") {
		t.Error("same counter name returned distinct handles")
	}
	if sc.Counter("x") == sc.Counter("y") {
		t.Error("distinct counter names returned the same handle")
	}
}
