package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// goldenSnapshot builds a fully deterministic snapshot (fixed timestamps,
// tracks, attributes, events) so exporter output can be compared
// byte-for-byte against committed golden files.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		Spans: []SpanRecord{
			{
				Name:          "decompose",
				StartUnixNano: 1_000_000_000,
				DurationNs:    2_500_000,
				Attrs:         map[string]any{"strategy": "bh-minpower", "circuit": "cm42a"},
				Events: []SpanEvent{
					{Name: "replan", UnixNano: 1_001_000_000, Attrs: map[string]any{"node": "n7"}},
				},
			},
			{
				Name:          "decomp.plan-trees",
				Parent:        "decompose",
				StartUnixNano: 1_000_200_000,
				DurationNs:    900_000,
			},
			{
				Name:          "mapper.levels.worker",
				Track:         2,
				StartUnixNano: 1_002_000_000,
				DurationNs:    1_200_000,
				Attrs:         map[string]any{"worker": int64(1), "items": int64(7)},
			},
		},
		Counters: map[string]int64{"decomp.nodes_planned": 10},
		Tracks:   map[int64]string{2: "mapper.levels/w1"},
	}
}

// TestPerfettoGolden pins the trace-event export byte-for-byte. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/obs -run Perfetto.
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

// TestPerfettoStructure validates a live scope's export against the
// trace-event format contract: parseable JSON, the required keys on every
// event, microsecond timestamps rebased to zero, metadata naming every
// used track, and parent attribution via args.
func TestPerfettoStructure(t *testing.T) {
	sc := New(Config{})
	ctx := WithScope(context.Background(), sc)
	outer := sc.StartCtx(ctx, "outer")
	inner := sc.StartCtx(ctx, "inner")
	inner.Event("checkpoint", "k", "v")
	inner.End()
	outer.End()
	wtid := sc.TrackFor("pool/w0")
	wspan := sc.StartCtx(WithTrack(ctx, wtid), "pool.worker")
	wspan.End()

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, sc); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace export is not valid JSON: %v\n%s", err, buf.String())
	}
	if tf.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.Unit)
	}
	var sawOuter, sawInnerParent, sawWorkerTrack, sawInstant bool
	threadNames := map[float64]string{}
	for _, ev := range tf.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		switch ph {
		case "M":
			if name == "thread_name" {
				args := ev["args"].(map[string]any)
				threadNames[ev["tid"].(float64)] = args["name"].(string)
			}
		case "X":
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Errorf("event %q has bad ts %v", name, ev["ts"])
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("event %q missing dur", name)
			}
			if name == "outer" {
				sawOuter = true
			}
			if name == "inner" {
				args, _ := ev["args"].(map[string]any)
				if args["parent"] == "outer" {
					sawInnerParent = true
				}
			}
			if name == "pool.worker" && ev["tid"].(float64) == float64(wtid) {
				sawWorkerTrack = true
			}
		case "i":
			if name == "checkpoint" {
				sawInstant = true
			}
		}
	}
	if !sawOuter || !sawInnerParent {
		t.Errorf("span events missing or unparented: outer=%v innerParent=%v", sawOuter, sawInnerParent)
	}
	if !sawWorkerTrack {
		t.Error("worker span not attributed to its virtual track")
	}
	if !sawInstant {
		t.Error("span event did not export as an instant event")
	}
	if got := threadNames[float64(wtid)]; got != "pool/w0" {
		t.Errorf("track %d thread_name = %q, want pool/w0 (have %v)", wtid, got, threadNames)
	}
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// scanPromExposition is a strict line-oriented parser of the text
// exposition format: every sample must follow a # TYPE header for its
// family, names and labels must match the Prometheus charset, and values
// must parse as floats. Returns family kind by name and sample count.
func scanPromExposition(t *testing.T, text string) (kinds map[string]string, samples int) {
	t.Helper()
	kinds = map[string]string{}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for _, line := range lines {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, kind := parts[2], parts[3]
			if !promNameRe.MatchString(name) {
				t.Fatalf("bad family name %q", name)
			}
			switch kind {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("bad family kind %q in %q", kind, line)
			}
			if _, dup := kinds[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			kinds[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comments allowed
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("sample %q value %q does not parse: %v", series, value, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unclosed label braces: %q", line)
			}
			name = series[:i]
			for _, pair := range splitPromLabels(t, series[i+1:len(series)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("label without '=' in %q", line)
				}
				lname, lval := pair[:eq], pair[eq+1:]
				if !promLabelRe.MatchString(lname) {
					t.Fatalf("bad label name %q in %q", lname, line)
				}
				if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
					t.Fatalf("unquoted label value %q in %q", lval, line)
				}
			}
		}
		if !promNameRe.MatchString(name) {
			t.Fatalf("bad metric name %q", name)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := kinds[family]; !ok {
			if _, ok := kinds[name]; !ok {
				t.Fatalf("sample %q has no preceding # TYPE", name)
			}
		}
		samples++
	}
	return kinds, samples
}

// splitPromLabels splits a label body at commas outside quotes.
func splitPromLabels(t *testing.T, body string) []string {
	t.Helper()
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		parts = append(parts, body[start:])
	}
	return parts
}

func TestPrometheusExposition(t *testing.T) {
	sc := New(Config{})
	sc.Counter("decomp.nodes_planned").Add(42)
	sc.Counter("eval.runs").With("circuit", "cm42a", "method", "VI").Inc()
	sc.Gauge("core.power_uw").Set(176.11)
	h := sc.Histogram("mapper.matches_per_node")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	sc.Histogram("eval.run_ms").With("method", "I").Observe(12.5)
	span := sc.Start("map")
	span.End()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, sc); err != nil {
		t.Fatal(err)
	}
	kinds, samples := scanPromExposition(t, buf.String())
	if kinds["powermap_decomp_nodes_planned"] != "counter" {
		t.Errorf("counter family missing: %v", kinds)
	}
	if kinds["powermap_core_power_uw"] != "gauge" {
		t.Errorf("gauge family missing: %v", kinds)
	}
	if kinds["powermap_mapper_matches_per_node"] != "summary" {
		t.Errorf("histogram-as-summary family missing: %v", kinds)
	}
	if kinds["powermap_phase_seconds"] != "summary" {
		t.Errorf("phase summary family missing: %v", kinds)
	}
	text := buf.String()
	for _, want := range []string{
		`powermap_eval_runs{circuit="cm42a",method="VI"} 1`,
		`powermap_mapper_matches_per_node{quantile="0.5"}`,
		`powermap_mapper_matches_per_node_count 100`,
		`powermap_eval_run_ms{method="I",quantile="0.9"}`,
		`powermap_phase_seconds_count{phase="map"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if samples < 10 {
		t.Errorf("suspiciously few samples: %d", samples)
	}

	// Determinism: a second export of the same scope is byte-identical.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, sc); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("exposition is not deterministic across exports")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	sc := New(Config{})
	sc.Counter("decomp.nodes_planned").Add(7)
	span := sc.Start("decompose")
	span.End()

	srv := httptest.NewServer(sc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	scanPromExposition(t, string(body))
	if !strings.Contains(string(body), "powermap_decomp_nodes_planned 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	for _, path := range []string{"/snapshot", "/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !json.Valid(body) {
			t.Errorf("%s is not valid JSON:\n%s", path, body)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

func TestNilScopeExports(t *testing.T) {
	var sc *Scope
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, sc); err != nil {
		t.Fatalf("nil-scope trace export: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil-scope trace is not JSON: %s", buf.String())
	}
	buf.Reset()
	if err := WritePrometheus(&buf, sc); err != nil {
		t.Fatalf("nil-scope prometheus export: %v", err)
	}
	srv := httptest.NewServer(sc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("nil-scope /metrics status = %d", resp.StatusCode)
	}
}
