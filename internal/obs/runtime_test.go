package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRuntimeSamplerCapturesState(t *testing.T) {
	sc := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := sc.StartRuntimeSampler(ctx, time.Millisecond)

	// The first sample is synchronous, so even a zero-duration run has one.
	samples := sc.RuntimeSamples()
	if len(samples) == 0 {
		t.Fatal("no synchronous first sample")
	}
	first := samples[0]
	if first.UnixNano == 0 || first.HeapLiveBytes == 0 || first.Goroutines <= 0 {
		t.Errorf("first sample looks empty: %+v", first)
	}

	time.Sleep(20 * time.Millisecond)
	s.Stop()

	if n := len(sc.RuntimeSamples()); n < 2 {
		t.Errorf("sampler produced %d samples in 20ms at 1ms cadence, want more", n)
	}

	// The sampler feeds the metric registry: gauges for Prometheus...
	var prom bytes.Buffer
	if err := WritePrometheus(&prom, sc); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"powermap_runtime_heap_live_bytes",
		"powermap_runtime_goroutines",
		"powermap_runtime_samples",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus export missing %s:\n%s", want, prom.String())
		}
	}

	// ...the snapshot carries the raw ring...
	sn := sc.Snapshot()
	if len(sn.RuntimeSamples) != len(sc.RuntimeSamples()) {
		t.Errorf("snapshot carries %d samples, scope has %d", len(sn.RuntimeSamples), len(sc.RuntimeSamples()))
	}

	// ...and the Perfetto export renders counter tracks from it.
	var trace bytes.Buffer
	if err := sn.WriteTraceEvents(&trace); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &tf); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	counters := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ph, _ := ev["ph"].(string); ph == "C" {
			name, _ := ev["name"].(string)
			counters[name] = true
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Errorf("counter event %q has bad ts %v", name, ev["ts"])
			}
		}
	}
	if !counters["heap (bytes)"] || !counters["goroutines"] {
		t.Errorf("counter tracks missing from trace export: %v", counters)
	}
}

func TestRuntimeSampleRingWraps(t *testing.T) {
	sc := New(Config{})
	for i := 0; i < defaultMaxRuntimeSamples+7; i++ {
		sc.rt.add(RuntimeSample{UnixNano: int64(i)})
	}
	samples := sc.RuntimeSamples()
	if len(samples) != defaultMaxRuntimeSamples {
		t.Fatalf("ring holds %d samples, want %d", len(samples), defaultMaxRuntimeSamples)
	}
	if samples[0].UnixNano != 7 || samples[len(samples)-1].UnixNano != int64(defaultMaxRuntimeSamples+6) {
		t.Errorf("ring not oldest-first after wrap: first=%d last=%d",
			samples[0].UnixNano, samples[len(samples)-1].UnixNano)
	}
}

func TestRuntimeSamplerNilScope(t *testing.T) {
	var sc *Scope
	s := sc.StartRuntimeSampler(context.Background(), time.Millisecond)
	if s != nil {
		t.Fatal("nil scope returned a live sampler")
	}
	s.Stop() // must not panic
	if sc.RuntimeSamples() != nil {
		t.Error("nil scope has samples")
	}
}

// TestMetricsRaceUnderSampler hammers the label-interning fast path of
// Counter.With (and the gauge/histogram registries) while the runtime
// sampler concurrently publishes into the same scope, with snapshot
// exports racing both. Run under -race (the Makefile check target does);
// the assertions only pin the totals.
func TestMetricsRaceUnderSampler(t *testing.T) {
	sc := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sampler := sc.StartRuntimeSampler(ctx, time.Millisecond)
	defer sampler.Stop()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sc.Counter("race.hits").With("worker", fmt.Sprint(w%4)).Inc()
				sc.Gauge("race.level").Set(float64(i))
				sc.Histogram("race.dist").Observe(float64(i))
				if i%50 == 0 {
					sc.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for w := 0; w < 4; w++ {
		total += sc.Counter("race.hits").With("worker", fmt.Sprint(w)).Value()
	}
	if want := int64(workers * iters); total != want {
		t.Errorf("labeled counter lost increments: %d, want %d", total, want)
	}
}

func TestGaugeAdd(t *testing.T) {
	sc := New(Config{})
	g := sc.Gauge("exec.inflight")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Errorf("balanced Add calls left gauge at %v", v)
	}
	g.Add(2.5)
	if v := g.Value(); v != 2.5 {
		t.Errorf("Add(2.5) = %v", v)
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}
