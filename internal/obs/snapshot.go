package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a self-contained export of a Scope at one instant: all
// retained spans and the current value of every metric series. Labeled
// series appear under their Prometheus-style key, name{k="v",...}, with
// label keys sorted; unlabeled series under the bare name. It marshals to
// stable JSON (map keys sort on encoding) and round-trips through
// ParseSnapshot.
type Snapshot struct {
	// RunID is the identifier the scope was configured with (Config.RunID),
	// tying this snapshot to the journals and traces of the same run.
	RunID string       `json:"run_id,omitempty"`
	Spans []SpanRecord `json:"spans,omitempty"`
	// SpansDropped counts spans lost to the ring buffer before this
	// snapshot was taken.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
	// Tracks names the worker virtual tracks referenced by Spans[i].Track
	// (track 0, the coordinator, is implicit).
	Tracks     map[int64]string          `json:"tracks,omitempty"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	// RuntimeSamples is the retained runtime-resource sample ring (present
	// only when a RuntimeSampler ran on the scope).
	RuntimeSamples []RuntimeSample `json:"runtime_samples,omitempty"`
	// Breaches is the SLO breach ledger (present only when a phase budget
	// was violated).
	Breaches []Breach `json:"breaches,omitempty"`
}

// Snapshot captures the scope's current state. On a nil scope it returns
// an empty (but usable) snapshot.
func (s *Scope) Snapshot() *Snapshot {
	sn := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if s == nil {
		return sn
	}
	sn.RunID = s.runID
	sn.Spans = s.Spans()
	sn.SpansDropped = s.SpansDropped()
	sn.Tracks = s.TrackNames()
	sn.RuntimeSamples = s.RuntimeSamples()
	sn.Breaches = s.Breaches()
	m := &s.metrics
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(m.histograms))
	for k, v := range m.histograms {
		hists[k] = v
	}
	m.mu.Unlock()
	for k, c := range counters {
		sn.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		sn.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		sn.Histograms[k] = h.Stats()
	}
	return sn
}

// WriteJSON writes the snapshot as indented JSON.
func (sn *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sn)
}

// ParseSnapshot reads a snapshot previously written by WriteJSON.
func ParseSnapshot(r io.Reader) (*Snapshot, error) {
	sn := &Snapshot{}
	if err := json.NewDecoder(r).Decode(sn); err != nil {
		return nil, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	return sn, nil
}

// WriteTable writes the snapshot as a human-readable report: spans as an
// indented phase tree in end order, then metrics sorted by name.
func (sn *Snapshot) WriteTable(w io.Writer) error {
	if len(sn.Spans) > 0 {
		if _, err := fmt.Fprintln(w, "phases:"); err != nil {
			return err
		}
		for _, sp := range sn.Spans {
			indent := "  "
			if sp.Parent != "" {
				indent = "    "
			}
			if _, err := fmt.Fprintf(w, "%s%-28s %12v\n", indent, sp.Name, sp.Duration().Round(time.Microsecond)); err != nil {
				return err
			}
		}
		if sn.SpansDropped > 0 {
			fmt.Fprintf(w, "  (%d older spans dropped by the ring buffer)\n", sn.SpansDropped)
		}
	}
	if len(sn.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(sn.Counters) {
			fmt.Fprintf(w, "  %-36s %12d\n", k, sn.Counters[k])
		}
	}
	if len(sn.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(sn.Gauges) {
			fmt.Fprintf(w, "  %-36s %12.4f\n", k, sn.Gauges[k])
		}
	}
	if len(sn.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, k := range sortedKeys(sn.Histograms) {
			h := sn.Histograms[k]
			fmt.Fprintf(w, "  %-36s n=%d sum=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
				k, h.Count, h.Sum, h.Min, h.P50, h.P90, h.P99, h.Max)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
