package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promNamespace prefixes every exported metric name, per Prometheus
// naming conventions.
const promNamespace = "powermap_"

// sanitizeMetricName maps a snapshot metric name (dotted) onto the
// Prometheus name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamespace) + len(name))
	b.WriteString(promNamespace)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && b.Len() > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitSeriesKey splits a snapshot series key (name or name{k="v",...})
// into the metric name and the brace-enclosed label body ("" when
// unlabeled).
func splitSeriesKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// promSample is one exposition line under a family.
type promSample struct {
	suffix string // appended to the family name (e.g. "_sum")
	labels string // label body without braces
	value  string
}

// promFamily is one # TYPE block.
type promFamily struct {
	name    string
	kind    string
	samples []promSample
}

func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// joinLabels merges two label bodies, skipping empties.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges map directly; histograms are
// exported as summaries with p50/p90/p99 quantile series plus _sum and
// _count; span wall times aggregate into the powermap_phase_seconds
// summary, labeled by phase (span name), so per-phase pipeline time is
// directly queryable. Metric names are prefixed with "powermap_" and
// sanitized to the Prometheus charset; families and series print in
// sorted order, so the output is deterministic for a given snapshot.
func (sn *Snapshot) WritePrometheus(w io.Writer) error {
	families := make(map[string]*promFamily)
	family := func(name, kind string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			families[name] = f
		}
		return f
	}
	for key, v := range sn.Counters {
		name, labels := splitSeriesKey(key)
		f := family(sanitizeMetricName(name), "counter")
		f.samples = append(f.samples, promSample{labels: labels, value: strconv.FormatInt(v, 10)})
	}
	for key, v := range sn.Gauges {
		name, labels := splitSeriesKey(key)
		f := family(sanitizeMetricName(name), "gauge")
		f.samples = append(f.samples, promSample{labels: labels, value: formatPromValue(v)})
	}
	if sn.SpansDropped > 0 {
		f := family(promNamespace+"spans_dropped", "gauge")
		f.samples = append(f.samples, promSample{value: strconv.FormatInt(sn.SpansDropped, 10)})
	}
	for key, st := range sn.Histograms {
		name, labels := splitSeriesKey(key)
		f := family(sanitizeMetricName(name), "summary")
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", st.P50}, {"0.9", st.P90}, {"0.99", st.P99}} {
			f.samples = append(f.samples, promSample{
				labels: joinLabels(labels, `quantile="`+q.q+`"`),
				value:  formatPromValue(q.v),
			})
		}
		f.samples = append(f.samples,
			promSample{suffix: "_sum", labels: labels, value: formatPromValue(st.Sum)},
			promSample{suffix: "_count", labels: labels, value: strconv.FormatInt(st.Count, 10)})
	}
	if len(sn.Spans) > 0 {
		byPhase := make(map[string][]float64)
		for _, sp := range sn.Spans {
			byPhase[sp.Name] = append(byPhase[sp.Name], float64(sp.DurationNs)/1e9)
		}
		f := family(promNamespace+"phase_seconds", "summary")
		for phase, durs := range byPhase {
			sort.Float64s(durs)
			sum := 0.0
			for _, d := range durs {
				sum += d
			}
			labels := `phase="` + labelEscaper.Replace(phase) + `"`
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", sortedQuantile(durs, 0.5)}, {"0.9", sortedQuantile(durs, 0.9)}, {"0.99", sortedQuantile(durs, 0.99)}} {
				f.samples = append(f.samples, promSample{
					labels: joinLabels(labels, `quantile="`+q.q+`"`),
					value:  formatPromValue(q.v),
				})
			}
			f.samples = append(f.samples,
				promSample{suffix: "_sum", labels: labels, value: formatPromValue(sum)},
				promSample{suffix: "_count", labels: labels, value: strconv.FormatInt(int64(len(durs)), 10)})
		}
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		sort.Slice(f.samples, func(i, j int) bool {
			if f.samples[i].suffix != f.samples[j].suffix {
				return f.samples[i].suffix < f.samples[j].suffix
			}
			return f.samples[i].labels < f.samples[j].labels
		})
		for _, s := range f.samples {
			series := f.name + s.suffix
			if s.labels != "" {
				series += "{" + s.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", series, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus writes a scope snapshot in the Prometheus text
// exposition format; see Snapshot.WritePrometheus. Safe on a nil scope.
func WritePrometheus(w io.Writer, s *Scope) error {
	return s.Snapshot().WritePrometheus(w)
}
