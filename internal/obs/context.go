package obs

import "context"

type ctxKey int

const (
	scopeKey ctxKey = iota
	trackKey
	labelsKey
)

// WithScope returns a context carrying the scope, so layers that only see
// a context (the exec worker pool, deeply nested phases) can still
// instrument. A nil scope is stored as-is and reads back as nil.
func WithScope(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, scopeKey, s)
}

// ScopeFrom returns the scope carried by the context, or nil.
func ScopeFrom(ctx context.Context) *Scope {
	s, _ := ctx.Value(scopeKey).(*Scope)
	return s
}

// WithTrack returns a context whose spans (via StartCtx) land on the given
// virtual track. Worker pools set this per worker goroutine so nested
// phase spans nest correctly per worker instead of interleaving on the
// coordinator track.
func WithTrack(ctx context.Context, track int64) context.Context {
	return context.WithValue(ctx, trackKey, track)
}

// TrackFrom returns the context's virtual track (0, the coordinator, when
// unset).
func TrackFrom(ctx context.Context) int64 {
	t, _ := ctx.Value(trackKey).(int64)
	return t
}

// WithLabels returns a context carrying additional alternating key/value
// label pairs. StartCtx attaches them as span attributes, so everything a
// labeled job runs — decomposition, mapping, timing — is sliceable by the
// job's labels (e.g. circuit and method in the experiment suite). A
// trailing odd key is ignored.
func WithLabels(ctx context.Context, kv ...string) context.Context {
	if len(kv) < 2 {
		return ctx
	}
	prev := LabelsFrom(ctx)
	merged := make([]string, 0, len(prev)+len(kv))
	merged = append(merged, prev...)
	merged = append(merged, kv[:len(kv)&^1]...)
	return context.WithValue(ctx, labelsKey, merged)
}

// LabelsFrom returns the context's accumulated label pairs (nil when
// unset). The slice must not be mutated.
func LabelsFrom(ctx context.Context) []string {
	l, _ := ctx.Value(labelsKey).([]string)
	return l
}

// StartCtx opens a phase span on the context's track and attaches the
// context's labels as span attributes. It is the preferred Start variant
// inside the pipeline, where work may run on worker-pool goroutines on
// behalf of labeled jobs. Returns nil on a nil scope.
func (s *Scope) StartCtx(ctx context.Context, name string) *Span {
	if s == nil {
		return nil
	}
	var attrs map[string]any
	if labels := LabelsFrom(ctx); len(labels) > 0 {
		attrs = make(map[string]any, len(labels)/2)
		for i := 0; i+1 < len(labels); i += 2 {
			attrs[labels[i]] = labels[i+1]
		}
	}
	return s.startOn(TrackFrom(ctx), name, attrs)
}
