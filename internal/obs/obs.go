// Package obs is the pipeline-wide observability layer: structured phase
// spans (tracing, with attributes, events, and per-worker virtual tracks),
// a registry of named counters/gauges/histograms refinable into labeled
// series, and a snapshot/export API producing a human-readable table,
// JSON, Chrome/Perfetto trace-event JSON (WriteTraceEvents), or the
// Prometheus text exposition format (WritePrometheus, plus a live
// /metrics + /debug/pprof http.Handler via Scope.Handler). It depends only
// on the standard library.
//
// A single *Scope is threaded through the flow (core → decomp, mapper,
// bdd, timing). Every entry point is safe on a nil receiver, so packages
// instrument unconditionally and a disabled flow pays only a nil check:
//
//	sc := opt.Obs                    // may be nil
//	span := sc.Start("decompose")    // no-op span when sc == nil
//	merges := sc.Counter("decomp.merge_evals")
//	...
//	merges.Add(1)                    // no-op on a nil *Counter
//	span.End()
//
// Hot loops should hoist Counter/Gauge/Histogram lookups out of the loop:
// the returned handles are either live (and concurrency-safe) or nil (and
// free), so the loop body never touches the registry map.
package obs

import "log/slog"

// Config configures a Scope.
type Config struct {
	// Logger receives one record per completed span (phase name, parent,
	// duration). Nil disables span logging; spans are still recorded for
	// the snapshot.
	Logger *slog.Logger
	// MaxSpans caps the completed-span ring buffer. Zero selects
	// DefaultMaxSpans; a negative value disables the cap (unbounded
	// growth — only sensible for short one-shot runs). Once the buffer is
	// full the oldest spans are overwritten and counted in SpansDropped.
	MaxSpans int
	// RunID identifies the run this scope instruments. It is stamped into
	// snapshots and Perfetto trace metadata, and ties telemetry exports to
	// the decision journals written under the same ID. Empty leaves the
	// exports unstamped.
	RunID string
}

// Scope bundles a tracer, a metrics registry, a flight recorder, a
// runtime-sample ring and the health/SLO state for one flow run. The zero
// value is not useful; use New. A nil *Scope disables all instrumentation.
type Scope struct {
	tracer  tracer
	metrics Metrics
	runID   string
	rt      runtimeState
	health  healthState
	flight  *FlightRecorder
}

// New returns an enabled Scope.
func New(cfg Config) *Scope {
	s := &Scope{runID: cfg.RunID}
	s.tracer.logger = cfg.Logger
	s.tracer.max = cfg.MaxSpans
	s.flight = newFlightRecorder(s)
	return s
}

// Enabled reports whether instrumentation is live.
func (s *Scope) Enabled() bool { return s != nil }

// RunID returns the run identifier the scope was configured with, or ""
// on a nil or unstamped scope.
func (s *Scope) RunID() string {
	if s == nil {
		return ""
	}
	return s.runID
}

// Metrics returns the scope's metrics registry, or nil on a nil scope.
func (s *Scope) Metrics() *Metrics {
	if s == nil {
		return nil
	}
	return &s.metrics
}

// Counter returns the named counter, or nil on a nil scope.
func (s *Scope) Counter(name string) *Counter { return s.Metrics().Counter(name) }

// Gauge returns the named gauge, or nil on a nil scope.
func (s *Scope) Gauge(name string) *Gauge { return s.Metrics().Gauge(name) }

// Histogram returns the named histogram, or nil on a nil scope.
func (s *Scope) Histogram(name string) *Histogram { return s.Metrics().Histogram(name) }
