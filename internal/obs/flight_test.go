package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenFlightRecord builds a fully deterministic flight record (fixed
// timestamps, sorted-key attribute maps) so the dump format can be compared
// byte-for-byte against the committed golden file.
func goldenFlightRecord() *FlightRecord {
	healthy := HealthStatus{
		Healthy:        false,
		Ready:          true,
		Breaches:       1,
		SamplerStarted: true,
		Reasons:        []string{"1 budget breach(es)"},
	}
	return &FlightRecord{
		Schema:           FlightSchemaVersion,
		RunID:            "run-golden",
		Reason:           "core.synthesize",
		Error:            "bdd: node limit 64 exceeded",
		CapturedUnixNano: 1_700_000_005_000_000_000,
		Attrs:            map[string]any{"circuit": "s344", "node_limit": true},
		Spans: []SpanRecord{
			{
				Name:          "decompose",
				StartUnixNano: 1_700_000_001_000_000_000,
				DurationNs:    2_000_000,
				Attrs:         map[string]any{"strategy": "bh-minpower"},
			},
			{
				Name:          "sim.annotate-exact",
				StartUnixNano: 1_700_000_002_000_000_000,
				DurationNs:    5_000_000,
				Events: []SpanEvent{
					{Name: "error", UnixNano: 1_700_000_002_004_000_000,
						Attrs: map[string]any{"node_limit": true}},
				},
			},
		},
		Logs: []FlightLogRecord{
			{UnixNano: 1_700_000_000_000_000_000, Level: "INFO", Message: "starting"},
			{UnixNano: 1_700_000_004_000_000_000, Level: "ERROR",
				Message: "failure: core.synthesize",
				Attrs:   map[string]any{"error": "bdd: node limit 64 exceeded"}},
		},
		RuntimeSamples: []RuntimeSample{
			{UnixNano: 1_700_000_003_000_000_000, HeapLiveBytes: 1 << 20,
				HeapGoalBytes: 4 << 20, Goroutines: 7, GCCycles: 3},
		},
		Breaches: []Breach{
			{Phase: "decompose", Kind: "latency",
				UnixNano: 1_700_000_001_500_000_000, Value: 2_000_000, Limit: 1_000_000},
		},
		Health: &healthy,
	}
}

// TestFlightGolden pins the flight-record dump byte-for-byte. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/obs -run FlightGolden.
func TestFlightGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFlightRecord().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "flight_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("flight dump drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

func TestFlightRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFlightRecord().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fr, err := ParseFlightRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Schema != FlightSchemaVersion || fr.Reason != "core.synthesize" {
		t.Errorf("round trip lost header: schema=%d reason=%q", fr.Schema, fr.Reason)
	}
	if len(fr.Spans) != 2 || fr.Spans[1].Name != "sim.annotate-exact" {
		t.Errorf("round trip lost spans: %+v", fr.Spans)
	}
	if len(fr.Logs) != 2 || fr.Logs[1].Level != "ERROR" {
		t.Errorf("round trip lost logs: %+v", fr.Logs)
	}
	if fr.Health == nil || fr.Health.Healthy {
		t.Errorf("round trip lost health: %+v", fr.Health)
	}
	if nl, ok := fr.Attrs["node_limit"].(bool); !ok || !nl {
		t.Errorf("round trip lost node_limit attr: %+v", fr.Attrs)
	}
}

func TestFlightRejectsNewerSchema(t *testing.T) {
	in := strings.NewReader(fmt.Sprintf(`{"schema": %d, "reason": "x"}`, FlightSchemaVersion+1))
	if _, err := ParseFlightRecord(in); err == nil {
		t.Fatal("newer-schema record was accepted")
	}
}

// TestCaptureFailure checks the black-box assembly path: the record carries
// the span tail, a synthetic trailing ERROR log record, the health verdict,
// and is retained as Last(); the auto-dump file holds the FIRST failure even
// when later failures (cancellation cascades) follow.
func TestCaptureFailure(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.json")
	sc := New(Config{RunID: "run-cf"})
	sc.Flight().SetAutoDump(dump)
	if got := sc.Flight().AutoDumpPath(); got != dump {
		t.Fatalf("AutoDumpPath = %q, want %q", got, dump)
	}
	span := sc.Start("decompose")
	span.End()

	fr := sc.Flight().CaptureFailure("core.synthesize",
		errors.New("node limit exceeded"), "circuit", "s344", "node_limit", true)
	if fr == nil {
		t.Fatal("CaptureFailure returned nil on a live scope")
	}
	if fr.RunID != "run-cf" || fr.Error != "node limit exceeded" {
		t.Errorf("record header wrong: %+v", fr)
	}
	if len(fr.Spans) != 1 || fr.Spans[0].Name != "decompose" {
		t.Errorf("span tail missing: %+v", fr.Spans)
	}
	if n := len(fr.Logs); n == 0 || fr.Logs[n-1].Message != "failure: core.synthesize" ||
		fr.Logs[n-1].Level != "ERROR" {
		t.Errorf("log tail does not end with the failure record: %+v", fr.Logs)
	}
	if fr.Health == nil {
		t.Error("health verdict missing from failure capture")
	}
	if sc.Flight().Last() != fr {
		t.Error("failure capture not retained as Last()")
	}

	// A second failure must not overwrite the dumped root cause.
	sc.Flight().CaptureFailure("eval.run_suite", errors.New("context canceled"))
	f, err := os.Open(dump)
	if err != nil {
		t.Fatalf("auto-dump file missing: %v", err)
	}
	defer f.Close()
	dumped, err := ParseFlightRecord(f)
	if err != nil {
		t.Fatal(err)
	}
	if dumped.Reason != "core.synthesize" {
		t.Errorf("auto-dump holds %q, want the first failure core.synthesize", dumped.Reason)
	}
	// Last() always follows the newest failure, even though the dump froze.
	if last := sc.Flight().Last(); last.Reason != "eval.run_suite" {
		t.Errorf("Last() = %q, want the newest failure", last.Reason)
	}
}

func TestFlightLogRingWraps(t *testing.T) {
	sc := New(Config{})
	fl := sc.Flight()
	for i := 0; i < defaultFlightLogs+10; i++ {
		fl.addLog(FlightLogRecord{UnixNano: int64(i), Message: fmt.Sprintf("m%d", i)})
	}
	tail := fl.logTail()
	if len(tail) != defaultFlightLogs {
		t.Fatalf("ring holds %d records, want %d", len(tail), defaultFlightLogs)
	}
	if tail[0].Message != "m10" || tail[len(tail)-1].Message != fmt.Sprintf("m%d", defaultFlightLogs+9) {
		t.Errorf("ring not oldest-first after wrap: first=%q last=%q",
			tail[0].Message, tail[len(tail)-1].Message)
	}
}

// TestFlightLogHandlerTee checks the tee contract: every record lands in
// the flight ring regardless of level, while the wrapped console handler
// only sees records it accepts; context labels stamp the captured copy.
func TestFlightLogHandlerTee(t *testing.T) {
	sc := New(Config{})
	var console bytes.Buffer
	next := slog.NewTextHandler(&console, &slog.HandlerOptions{Level: slog.LevelWarn})
	logger := slog.New(sc.Flight().LogHandler(next))

	ctx := WithLabels(context.Background(), "circuit", "s344", "method", "I")
	logger.Log(ctx, slog.LevelDebug, "quiet detail", "k", "v")
	logger.WarnContext(ctx, "loud problem")

	tail := sc.Flight().logTail()
	if len(tail) != 2 {
		t.Fatalf("flight ring holds %d records, want both levels captured", len(tail))
	}
	if tail[0].Attrs["circuit"] != "s344" || tail[0].Attrs["method"] != "I" {
		t.Errorf("context labels not stamped on captured record: %+v", tail[0].Attrs)
	}
	out := console.String()
	if strings.Contains(out, "quiet detail") {
		t.Errorf("debug record leaked past the warn-level console handler:\n%s", out)
	}
	if !strings.Contains(out, "loud problem") {
		t.Errorf("warn record not forwarded to the console handler:\n%s", out)
	}

	// WithAttrs/WithGroup propagate to both branches of the tee.
	slog.New(sc.Flight().LogHandler(next)).With("stage", "map").WithGroup("bdd").Error("boom", "nodes", 9)
	tail = sc.Flight().logTail()
	rec := tail[len(tail)-1]
	if rec.Attrs["stage"] != "map" {
		t.Errorf("WithAttrs attr missing from captured record: %+v", rec.Attrs)
	}
	if _, ok := rec.Attrs["bdd.nodes"]; !ok {
		t.Errorf("grouped attr not captured with group prefix: %+v", rec.Attrs)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var sc *Scope
	fl := sc.Flight()
	if fl != nil {
		t.Fatal("nil scope returned a live recorder")
	}
	fl.SetAutoDump("x") // must not panic
	if fl.AutoDumpPath() != "" {
		t.Error("nil recorder has a dump path")
	}
	if fl.Capture("r", nil) != nil || fl.CaptureFailure("r", errors.New("e")) != nil || fl.Last() != nil {
		t.Error("nil recorder captured something")
	}
	var console bytes.Buffer
	next := slog.NewTextHandler(&console, nil)
	if h := fl.LogHandler(next); h == nil {
		t.Error("nil recorder should pass the next handler through, got nil")
	}
}
