package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges, and histograms. All
// methods are safe for concurrent use and safe on a nil receiver (they
// return nil handles, whose methods are in turn no-ops).
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counters == nil {
		m.counters = make(map[string]*Counter)
	}
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gauges == nil {
		m.gauges = make(map[string]*Gauge)
	}
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.histograms == nil {
		m.histograms = make(map[string]*Histogram)
	}
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing (or freely adjusted) integer.
type Counter struct {
	v atomic.Int64
}

// Add adds delta; no-op on a nil counter.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one; no-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v; no-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax stores v only if it exceeds the current value; no-op on nil.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// maxHistogramSamples caps per-histogram memory; beyond it observations
// are reservoir-sampled so quantiles stay representative.
const maxHistogramSamples = 4096

// Histogram tracks a value distribution: exact count/sum/min/max plus a
// bounded reservoir of samples for quantile estimation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	rng     uint64 // xorshift state for deterministic reservoir sampling
}

// Observe records one value; no-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < maxHistogramSamples {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir replacement with a deterministic xorshift64* stream, so
	// repeated runs snapshot identically.
	if h.rng == 0 {
		h.rng = 0x9e3779b97f4a7c15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % uint64(h.count); j < maxHistogramSamples {
		h.samples[j] = v
	}
}

// Stats summarizes a histogram for export.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Stats returns the current summary (zero value on a nil histogram).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	st.P50 = quantile(h.samples, 0.50)
	st.P90 = quantile(h.samples, 0.90)
	st.P99 = quantile(h.samples, 0.99)
	return st
}

// Quantile estimates the q-quantile (q in [0,1]) from the sample
// reservoir, with linear interpolation. Returns 0 on a nil or empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantile(h.samples, q)
}

func quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
