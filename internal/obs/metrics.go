package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Metrics is a registry of named counters, gauges, and histograms, each
// optionally refined into labeled series via the handles' With method. All
// methods are safe for concurrent use and safe on a nil receiver (they
// return nil handles, whose methods are in turn no-ops).
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// labelEscaper escapes label values for the canonical series key, which
// doubles as the Prometheus-style display name (name{k="v",...}).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// seriesKey builds the canonical registry key: the bare name for an
// unlabeled series, name{k="v",k2="v2"} (keys sorted) otherwise.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels combines a base label set with alternating key/value pairs,
// later pairs overriding earlier keys, and returns the result sorted by
// key. A trailing odd key is ignored.
func mergeLabels(base []Label, kv []string) []Label {
	m := make(map[string]string, len(base)+len(kv)/2)
	for _, l := range base {
		m[l.Key] = l.Value
	}
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	out := make([]Label, 0, len(m))
	for k, v := range m {
		out = append(out, Label{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (m *Metrics) Counter(name string) *Counter { return m.counter(name, nil) }

func (m *Metrics) counter(name string, labels []Label) *Counter {
	if m == nil {
		return nil
	}
	key := seriesKey(name, labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counters == nil {
		m.counters = make(map[string]*Counter)
	}
	c, ok := m.counters[key]
	if !ok {
		c = &Counter{reg: m, name: name, labels: labels, key: key}
		m.counters[key] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (m *Metrics) Gauge(name string) *Gauge { return m.gauge(name, nil) }

func (m *Metrics) gauge(name string, labels []Label) *Gauge {
	if m == nil {
		return nil
	}
	key := seriesKey(name, labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gauges == nil {
		m.gauges = make(map[string]*Gauge)
	}
	g, ok := m.gauges[key]
	if !ok {
		g = &Gauge{reg: m, name: name, labels: labels, key: key}
		m.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (m *Metrics) Histogram(name string) *Histogram { return m.histogram(name, nil) }

func (m *Metrics) histogram(name string, labels []Label) *Histogram {
	if m == nil {
		return nil
	}
	key := seriesKey(name, labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.histograms == nil {
		m.histograms = make(map[string]*Histogram)
	}
	h, ok := m.histograms[key]
	if !ok {
		h = &Histogram{reg: m, name: name, labels: labels, key: key}
		m.histograms[key] = h
	}
	return h
}

// Counter is a monotonically increasing (or freely adjusted) integer
// series.
type Counter struct {
	v      atomic.Int64
	reg    *Metrics
	name   string
	labels []Label
	key    string
}

// With returns the counter series refined by the given alternating
// key/value label pairs (merged with — and overriding — the receiver's
// labels). Handles are interned: the same name and label set always
// returns the same handle, so hot loops should hoist With out of the
// loop. Nil-safe.
func (c *Counter) With(kv ...string) *Counter {
	if c == nil {
		return nil
	}
	return c.reg.counter(c.name, mergeLabels(c.labels, kv))
}

// Name returns the series' metric name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Labels returns the series' sorted label set (nil on nil).
func (c *Counter) Labels() []Label {
	if c == nil {
		return nil
	}
	return c.labels
}

// Add adds delta; no-op on a nil counter.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one; no-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float series.
type Gauge struct {
	bits   atomic.Uint64
	reg    *Metrics
	name   string
	labels []Label
	key    string
}

// With returns the gauge series refined by the given label pairs; see
// Counter.With. Nil-safe.
func (g *Gauge) With(kv ...string) *Gauge {
	if g == nil {
		return nil
	}
	return g.reg.gauge(g.name, mergeLabels(g.labels, kv))
}

// Set stores v; no-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta to the gauge (negative deltas decrement); it
// is what up/down quantities like in-flight job counts use. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// SetMax stores v only if it exceeds the current value; no-op on nil.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// maxHistogramSamples caps per-histogram memory; beyond it observations
// are reservoir-sampled so quantiles stay representative.
const maxHistogramSamples = 4096

// Histogram tracks a value distribution: exact count/sum/min/max plus a
// bounded reservoir of samples for quantile estimation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	rng     uint64 // xorshift state for deterministic reservoir sampling
	reg     *Metrics
	name    string
	labels  []Label
	key     string
}

// With returns the histogram series refined by the given label pairs; see
// Counter.With. Nil-safe.
func (h *Histogram) With(kv ...string) *Histogram {
	if h == nil {
		return nil
	}
	return h.reg.histogram(h.name, mergeLabels(h.labels, kv))
}

// Observe records one value; no-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < maxHistogramSamples {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir replacement with a deterministic xorshift64* stream, so
	// repeated runs snapshot identically.
	if h.rng == 0 {
		h.rng = 0x9e3779b97f4a7c15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % uint64(h.count); j < maxHistogramSamples {
		h.samples[j] = v
	}
}

// Stats summarizes a histogram for export.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Stats returns the current summary (zero value on a nil histogram).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	st.P50 = quantile(h.samples, 0.50)
	st.P90 = quantile(h.samples, 0.90)
	st.P99 = quantile(h.samples, 0.99)
	return st
}

// Quantile estimates the q-quantile (q in [0,1]) from the sample
// reservoir, with linear interpolation. Returns 0 on a nil or empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantile(h.samples, q)
}

func quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// sortedQuantile is quantile over an already-sorted sample slice.
func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
