package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LiveNodesGauge is the gauge the live-node budget checks against. The BDD
// layer maintains it as a high-water mark of live manager nodes
// (Gauge.SetMax in the decomposition flow), so a budget breach means the
// run actually held that many nodes live at once.
const LiveNodesGauge = "bdd.nodes_live_max"

// maxBreaches bounds the breach ledger; the counter series keeps the full
// tally even after the ledger wraps.
const maxBreaches = 256

// samplerStallFactor: a sampler that has not produced a sample for this
// many intervals is considered stalled and degrades /healthz.
const samplerStallFactor = 3

// Budget is a declarative per-phase SLO: a phase (span name) must finish
// within MaxDur and/or must not drive the live-BDD-node high-water mark
// (LiveNodesGauge) above MaxLiveNodes. Zero fields are unchecked. Budgets
// are evaluated when the matching span ends.
type Budget struct {
	Phase        string        `json:"phase"`
	MaxDur       time.Duration `json:"max_dur,omitempty"`
	MaxLiveNodes int64         `json:"max_live_nodes,omitempty"`
}

// String renders the budget in the -budget flag syntax.
func (b Budget) String() string {
	switch {
	case b.MaxDur > 0 && b.MaxLiveNodes > 0:
		return fmt.Sprintf("%s=%v,%dnodes", b.Phase, b.MaxDur, b.MaxLiveNodes)
	case b.MaxLiveNodes > 0:
		return fmt.Sprintf("%s=%dnodes", b.Phase, b.MaxLiveNodes)
	default:
		return fmt.Sprintf("%s=%v", b.Phase, b.MaxDur)
	}
}

// ParseBudget parses the -budget flag syntax: "phase=dur" (a Go duration,
// e.g. decompose=200ms), "phase=Nnodes" (a live-node ceiling, e.g.
// synthesize=50000nodes), or both comma-separated ("map=1s,20000nodes").
func ParseBudget(s string) (Budget, error) {
	phase, spec, ok := strings.Cut(s, "=")
	phase, spec = strings.TrimSpace(phase), strings.TrimSpace(spec)
	if !ok || phase == "" || spec == "" {
		return Budget{}, fmt.Errorf("obs: budget %q: want phase=dur, phase=Nnodes, or phase=dur,Nnodes", s)
	}
	b := Budget{Phase: phase}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if n, found := strings.CutSuffix(part, "nodes"); found {
			v, err := strconv.ParseInt(n, 10, 64)
			if err != nil || v <= 0 {
				return Budget{}, fmt.Errorf("obs: budget %q: bad node limit %q", s, part)
			}
			b.MaxLiveNodes = v
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil || d <= 0 {
			return Budget{}, fmt.Errorf("obs: budget %q: bad duration %q", s, part)
		}
		b.MaxDur = d
	}
	return b, nil
}

// Breach records one budget violation.
type Breach struct {
	Phase string `json:"phase"`
	// Kind is "latency" (MaxDur exceeded) or "live_nodes" (MaxLiveNodes
	// exceeded).
	Kind     string `json:"kind"`
	UnixNano int64  `json:"unix_nano"`
	// Value is the observed quantity (nanoseconds for latency, nodes for
	// live_nodes); Limit is the budget it crossed.
	Value int64 `json:"value"`
	Limit int64 `json:"limit"`
}

// healthState carries the scope's SLO bookkeeping: the configured budgets,
// the bounded breach ledger, and the span-drop watermark the health probe
// compares against.
type healthState struct {
	mu       sync.Mutex
	budgets  map[string]Budget
	breaches []Breach
	next     int
	wrapped  bool
	total    int64
	// probeDropped is the SpansDropped value seen by the previous Health()
	// probe; growth between probes degrades health (the ring is losing
	// telemetry faster than it is being exported).
	probeDropped int64
	probed       bool
}

// SetBudgets replaces the scope's phase budgets. Safe on nil.
func (s *Scope) SetBudgets(budgets []Budget) {
	if s == nil {
		return
	}
	h := &s.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(budgets) == 0 {
		h.budgets = nil
		return
	}
	h.budgets = make(map[string]Budget, len(budgets))
	for _, b := range budgets {
		h.budgets[b.Phase] = b
	}
}

// Budgets returns the configured budgets sorted by phase (nil on a nil or
// unbudgeted scope).
func (s *Scope) Budgets() []Budget {
	if s == nil {
		return nil
	}
	h := &s.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.budgets) == 0 {
		return nil
	}
	out := make([]Budget, 0, len(h.budgets))
	for _, k := range sortedKeys(h.budgets) {
		out = append(out, h.budgets[k])
	}
	return out
}

// Breaches returns the retained breach records, oldest first (nil on a nil
// scope or when nothing breached). The ledger is bounded at maxBreaches;
// BreachCount and the slo.breaches counter series keep the full tally.
func (s *Scope) Breaches() []Breach {
	if s == nil {
		return nil
	}
	h := &s.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.wrapped {
		return append([]Breach(nil), h.breaches...)
	}
	out := make([]Breach, 0, len(h.breaches))
	out = append(out, h.breaches[h.next:]...)
	out = append(out, h.breaches[:h.next]...)
	return out
}

// BreachCount reports the total number of budget breaches so far (0 on a
// nil scope).
func (s *Scope) BreachCount() int64 {
	if s == nil {
		return 0
	}
	s.health.mu.Lock()
	defer s.health.mu.Unlock()
	return s.health.total
}

// afterSpan evaluates the ended span against its phase budget (if any).
// Called from Span.End after the tracer mutex is released; breaches land
// in the ledger and the slo.breaches counter, labeled by phase and kind.
func (s *Scope) afterSpan(rec SpanRecord) {
	h := &s.health
	h.mu.Lock()
	b, ok := h.budgets[rec.Name]
	h.mu.Unlock()
	if !ok {
		return
	}
	now := time.Now().UnixNano()
	if b.MaxDur > 0 && rec.DurationNs > int64(b.MaxDur) {
		s.addBreach(Breach{Phase: rec.Name, Kind: "latency", UnixNano: now,
			Value: rec.DurationNs, Limit: int64(b.MaxDur)})
	}
	if b.MaxLiveNodes > 0 {
		if live := int64(s.Gauge(LiveNodesGauge).Value()); live > b.MaxLiveNodes {
			s.addBreach(Breach{Phase: rec.Name, Kind: "live_nodes", UnixNano: now,
				Value: live, Limit: b.MaxLiveNodes})
		}
	}
}

func (s *Scope) addBreach(b Breach) {
	h := &s.health
	h.mu.Lock()
	if len(h.breaches) < maxBreaches {
		h.breaches = append(h.breaches, b)
	} else {
		h.breaches[h.next] = b
		h.next = (h.next + 1) % maxBreaches
		h.wrapped = true
	}
	h.total++
	h.mu.Unlock()
	s.Counter("slo.breaches").With("phase", b.Phase, "kind", b.Kind).Inc()
}

// HealthStatus is the scope's liveness/readiness verdict as served by
// /healthz and /readyz.
type HealthStatus struct {
	// Healthy is false once any budget breached, the runtime sampler
	// stalled, or the span ring dropped spans between consecutive probes.
	Healthy bool `json:"healthy"`
	// Ready is false until the scope exists and — when a sampler was
	// started — it has produced at least one fresh sample.
	Ready          bool  `json:"ready"`
	Breaches       int64 `json:"breaches"`
	SpansDropped   int64 `json:"spans_dropped"`
	SamplerStarted bool  `json:"sampler_started"`
	SamplerStalled bool  `json:"sampler_stalled"`
	// LastSampleUnixNano is the timestamp of the newest runtime sample (0
	// when the sampler never ran).
	LastSampleUnixNano int64 `json:"last_sample_unix_nano,omitempty"`
	// Reasons lists, in stable order, why Healthy or Ready is false.
	Reasons []string `json:"reasons,omitempty"`
}

// Health evaluates the scope's current health. A nil scope is reported
// healthy and ready (nothing is instrumented, so nothing is wrong).
//
// Health is the stateful probe backing /healthz: each call records the
// span-drop watermark, and the next call degrades if the count grew in
// between. Breaches and sampler stalls are evaluated fresh each call (a
// breach degrades the run permanently; a stall heals if sampling resumes).
func (s *Scope) Health() HealthStatus {
	st := HealthStatus{Healthy: true, Ready: true}
	if s == nil {
		return st
	}
	h := &s.health
	st.SpansDropped = s.SpansDropped()
	h.mu.Lock()
	st.Breaches = h.total
	droppedGrew := h.probed && st.SpansDropped > h.probeDropped
	h.probeDropped = st.SpansDropped
	h.probed = true
	h.mu.Unlock()

	if st.Breaches > 0 {
		st.Healthy = false
		st.Reasons = append(st.Reasons, fmt.Sprintf("%d budget breach(es)", st.Breaches))
	}
	if droppedGrew {
		st.Healthy = false
		st.Reasons = append(st.Reasons, "span ring dropping records between probes")
	}
	st.SamplerStarted = s.rt.started.Load() == 1
	if st.SamplerStarted {
		st.LastSampleUnixNano = s.rt.lastNano.Load()
		interval := s.rt.intervalNs.Load()
		if st.LastSampleUnixNano == 0 {
			st.Ready = false
			st.Reasons = append(st.Reasons, "runtime sampler has not produced a sample")
		} else if age := time.Now().UnixNano() - st.LastSampleUnixNano; interval > 0 && age > samplerStallFactor*interval {
			st.SamplerStalled = true
			st.Healthy = false
			st.Reasons = append(st.Reasons, fmt.Sprintf("runtime sampler stalled (%v since last sample)", time.Duration(age).Round(time.Millisecond)))
		}
	}
	return st
}
