package obs

import (
	"log/slog"
	"sync"
	"time"
)

// SpanRecord is one completed phase span as it appears in a snapshot.
type SpanRecord struct {
	Name   string `json:"name"`
	Parent string `json:"parent,omitempty"`
	// StartUnixNano anchors the span on the wall clock.
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationNs is the measured wall time in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
}

// Duration returns the span's wall time.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.DurationNs) }

// tracer records phase spans. Parentage follows the start/end nesting
// order: a span started while another is open becomes its child. The flow
// itself is single-goroutine, but the tracer is mutex-guarded so stray
// concurrent spans never corrupt it.
type tracer struct {
	mu     sync.Mutex
	logger *slog.Logger
	stack  []string
	spans  []SpanRecord
}

// Span is one in-flight phase. End it exactly once. A nil *Span (from a
// nil scope) is a no-op.
type Span struct {
	scope  *Scope
	name   string
	parent string
	start  time.Time
}

// Start opens a phase span. The span nests under the most recently started
// still-open span. Returns nil on a nil scope.
func (s *Scope) Start(name string) *Span {
	if s == nil {
		return nil
	}
	t := &s.tracer
	t.mu.Lock()
	parent := ""
	if len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1]
	}
	t.stack = append(t.stack, name)
	t.mu.Unlock()
	return &Span{scope: s, name: name, parent: parent, start: time.Now()}
}

// End closes the span, records it, and logs it when the scope has a
// logger. It returns the measured wall time (0 on a nil span).
func (sp *Span) End() time.Duration {
	if sp == nil {
		return 0
	}
	d := time.Since(sp.start)
	t := &sp.scope.tracer
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == sp.name {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	t.spans = append(t.spans, SpanRecord{
		Name:          sp.name,
		Parent:        sp.parent,
		StartUnixNano: sp.start.UnixNano(),
		DurationNs:    int64(d),
	})
	logger := t.logger
	t.mu.Unlock()
	if logger != nil {
		if sp.parent != "" {
			logger.Info("phase", "name", sp.name, "parent", sp.parent, "dur", d)
		} else {
			logger.Info("phase", "name", sp.name, "dur", d)
		}
	}
	return d
}

// Spans returns the completed spans in end order (nil on a nil scope).
func (s *Scope) Spans() []SpanRecord {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]SpanRecord(nil), s.tracer.spans...)
}
