package obs

import (
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// DefaultMaxSpans is the span ring-buffer capacity used when
// Config.MaxSpans is zero. It is deliberately generous: a full six-method
// suite run records a few thousand spans, so nothing is dropped in normal
// one-shot use, while a long -serve process stays bounded.
const DefaultMaxSpans = 16384

// SpanEvent is a timestamped point-in-time annotation inside a span.
type SpanEvent struct {
	Name     string         `json:"name"`
	UnixNano int64          `json:"unix_nano"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// SpanRecord is one completed phase span as it appears in a snapshot.
type SpanRecord struct {
	Name   string `json:"name"`
	Parent string `json:"parent,omitempty"`
	// Track is the virtual thread the span ran on: 0 is the coordinator
	// (the flow's own goroutine); worker-pool goroutines get tracks
	// allocated by TrackFor, so exporters can lay spans out side by side.
	Track int64 `json:"track,omitempty"`
	// StartUnixNano anchors the span on the wall clock.
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationNs is the measured wall time in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
	// Attrs carries the span's attributes (scalar values only).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Events lists the span's point-in-time annotations.
	Events []SpanEvent `json:"events,omitempty"`
}

// Duration returns the span's wall time.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.DurationNs) }

// tracer records phase spans. Parentage follows the start/end nesting
// order per track: a span started while another is open on the same track
// becomes its child. Completed spans live in a bounded ring buffer so
// long-lived processes (-serve) never grow without bound; overwritten
// spans are counted in dropped.
type tracer struct {
	mu      sync.Mutex
	logger  *slog.Logger
	max     int // ring capacity; < 0 means unbounded
	stacks  map[int64][]string
	spans   []SpanRecord
	next    int // overwrite cursor once len(spans) == max
	dropped int64

	tracks    map[int64]string // track id -> display name
	trackByID map[string]int64 // display name -> track id
	nextTrack int64
}

// SetSpanLogger replaces the logger that receives one record per completed
// span (Config.Logger). The CLI layer uses it to install the shared
// -log-level/-log-json handler chain (which tees into the flight recorder)
// after the scope — and with it the recorder — exists. Safe on nil.
func (s *Scope) SetSpanLogger(l *slog.Logger) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.tracer.logger = l
	s.tracer.mu.Unlock()
}

// Span is one in-flight phase. End it exactly once. A Span is owned by the
// goroutine that started it; SetAttr/Event are not safe for concurrent use
// on the same span. A nil *Span (from a nil scope) is a no-op.
type Span struct {
	scope  *Scope
	name   string
	parent string
	track  int64
	start  time.Time
	attrs  map[string]any
	events []SpanEvent
}

// Start opens a phase span on the coordinator track (track 0). The span
// nests under the most recently started still-open span of that track.
// Returns nil on a nil scope.
func (s *Scope) Start(name string) *Span { return s.startOn(0, name, nil) }

// startOn opens a span on an explicit track with optional initial attrs.
func (s *Scope) startOn(track int64, name string, attrs map[string]any) *Span {
	if s == nil {
		return nil
	}
	t := &s.tracer
	t.mu.Lock()
	if t.stacks == nil {
		t.stacks = make(map[int64][]string)
	}
	parent := ""
	if st := t.stacks[track]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	t.stacks[track] = append(t.stacks[track], name)
	t.mu.Unlock()
	return &Span{scope: s, name: name, parent: parent, track: track, attrs: attrs, start: time.Now()}
}

// SetAttr records one span attribute. Values are normalized to scalar JSON
// types (string, bool, int64, float64). Safe on a nil span; returns the
// span for chaining.
func (sp *Span) SetAttr(key string, value any) *Span {
	if sp == nil {
		return nil
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]any)
	}
	sp.attrs[key] = normalizeAttr(value)
	return sp
}

// Event records a timestamped point-in-time annotation on the span, with
// optional alternating key/value attribute pairs. Safe on a nil span.
func (sp *Span) Event(name string, kv ...any) {
	if sp == nil {
		return
	}
	ev := SpanEvent{Name: name, UnixNano: time.Now().UnixNano()}
	if len(kv) >= 2 {
		ev.Attrs = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[fmt.Sprint(kv[i])] = normalizeAttr(kv[i+1])
		}
	}
	sp.events = append(sp.events, ev)
}

// normalizeAttr maps attribute values onto the scalar types that survive a
// JSON round-trip unchanged in kind: string, bool, int64, float64.
func normalizeAttr(v any) any {
	switch x := v.(type) {
	case string, bool, int64, float64:
		return x
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	case time.Duration:
		return int64(x)
	default:
		return fmt.Sprint(v)
	}
}

// End closes the span, records it, and logs it when the scope has a
// logger. It returns the measured wall time (0 on a nil span).
func (sp *Span) End() time.Duration {
	if sp == nil {
		return 0
	}
	d := time.Since(sp.start)
	t := &sp.scope.tracer
	t.mu.Lock()
	if st := t.stacks[sp.track]; len(st) > 0 {
		for i := len(st) - 1; i >= 0; i-- {
			if st[i] == sp.name {
				t.stacks[sp.track] = append(st[:i], st[i+1:]...)
				break
			}
		}
	}
	rec := SpanRecord{
		Name:          sp.name,
		Parent:        sp.parent,
		Track:         sp.track,
		StartUnixNano: sp.start.UnixNano(),
		DurationNs:    int64(d),
		Attrs:         sp.attrs,
		Events:        sp.events,
	}
	t.record(rec)
	logger := t.logger
	t.mu.Unlock()
	sp.scope.afterSpan(rec)
	if logger != nil {
		if sp.parent != "" {
			logger.Info("phase", "name", sp.name, "parent", sp.parent, "dur", d)
		} else {
			logger.Info("phase", "name", sp.name, "dur", d)
		}
	}
	return d
}

// record appends one completed span, overwriting the oldest record once
// the ring is full. Callers hold t.mu.
func (t *tracer) record(r SpanRecord) {
	if t.max < 0 {
		t.spans = append(t.spans, r)
		return
	}
	max := t.max
	if max == 0 {
		max = DefaultMaxSpans
	}
	if len(t.spans) < max {
		t.spans = append(t.spans, r)
		return
	}
	t.spans[t.next] = r
	t.next = (t.next + 1) % max
	t.dropped++
}

// Spans returns the retained completed spans in end order, oldest first
// (nil on a nil scope). When the ring buffer has wrapped, only the newest
// MaxSpans records remain; SpansDropped counts the overwritten rest.
func (s *Scope) Spans() []SpanRecord {
	if s == nil {
		return nil
	}
	t := &s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropped == 0 {
		return append([]SpanRecord(nil), t.spans...)
	}
	out := make([]SpanRecord, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// SpansDropped reports how many completed spans were overwritten by the
// ring buffer (0 on a nil scope).
func (s *Scope) SpansDropped() int64 {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.tracer.dropped
}

// TrackFor returns a stable virtual-track id for a display name,
// allocating one on first use (track ids start at 1; 0 is the
// coordinator). Worker pools use it so repeated pool invocations reuse one
// Perfetto lane per worker. Returns 0 on a nil scope.
func (s *Scope) TrackFor(name string) int64 {
	if s == nil {
		return 0
	}
	t := &s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.trackByID == nil {
		t.trackByID = make(map[string]int64)
		t.tracks = make(map[int64]string)
	}
	if id, ok := t.trackByID[name]; ok {
		return id
	}
	t.nextTrack++
	id := t.nextTrack
	t.trackByID[name] = id
	t.tracks[id] = name
	return id
}

// TrackNames returns the display names of all allocated worker tracks,
// keyed by track id (nil on a nil scope or when no tracks were used).
func (s *Scope) TrackNames() map[int64]string {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if len(s.tracer.tracks) == 0 {
		return nil
	}
	out := make(map[int64]string, len(s.tracer.tracks))
	for id, name := range s.tracer.tracks {
		out[id] = name
	}
	return out
}
