// Package network implements the multi-level Boolean network used throughout
// the synthesis flow: a DAG of nodes, each carrying a sum-of-products local
// function over its fanins, with primary inputs and outputs.
//
// This mirrors the Boolean-network abstraction of MIS/SIS on which the paper
// builds: technology-independent optimization, technology decomposition and
// technology mapping all operate on (or produce) instances of this type.
package network

import (
	"fmt"
	"sort"

	"powermap/internal/sop"
)

// Kind discriminates node roles inside a network.
type Kind int

const (
	// Internal is a logic node with a local SOP function over its fanins.
	Internal Kind = iota
	// PI is a primary input; it has no fanins and no function.
	PI
	// Constant is a source node with a constant function (0 or 1).
	Constant
)

// Node is one vertex of the Boolean network. Local function variables are
// positional: variable i of Func refers to Fanin[i].
type Node struct {
	Name   string
	Kind   Kind
	Func   *sop.Cover // nil for PI
	Fanin  []*Node
	Fanout []*Node

	// Annotations used by analysis and synthesis passes. They carry no
	// structural meaning and are recomputed by the passes that need them.
	Prob1    float64 // probability of the signal being 1
	Activity float64 // switching activity under the selected design style
	Arrival  float64
	Required float64
	flag     int // scratch mark for traversals
}

// Slack returns Required - Arrival using the most recent timing annotation.
func (n *Node) Slack() float64 { return n.Required - n.Arrival }

// IsSource reports whether the node has no structural fanins.
func (n *Node) IsSource() bool { return n.Kind == PI || n.Kind == Constant }

// FaninIndex returns the position of m in n's fanin list, or -1.
func (n *Node) FaninIndex(m *Node) int {
	for i, f := range n.Fanin {
		if f == m {
			return i
		}
	}
	return -1
}

func (n *Node) String() string { return n.Name }

// Network is a combinational Boolean network.
type Network struct {
	Name    string
	PIs     []*Node
	Nodes   []*Node // internal and constant nodes, in insertion order
	Outputs []Output
	byName  map[string]*Node
	nameSeq int
}

// Output is a named primary output driven by a node (possibly a PI).
type Output struct {
	Name   string
	Driver *Node
}

// New returns an empty network with the given model name.
func New(name string) *Network {
	return &Network{Name: name, byName: make(map[string]*Node)}
}

// NodeByName returns the node with the given name, or nil.
func (nw *Network) NodeByName(name string) *Node { return nw.byName[name] }

// AddPI creates and returns a new primary input. It panics on duplicate
// names, which always indicate a construction bug.
func (nw *Network) AddPI(name string) *Node {
	nw.mustBeFresh(name)
	n := &Node{Name: name, Kind: PI}
	nw.PIs = append(nw.PIs, n)
	nw.byName[name] = n
	return n
}

// AddNode creates an internal node with the given fanins and local function.
// The function's variable count must equal len(fanins).
func (nw *Network) AddNode(name string, fanins []*Node, f *sop.Cover) *Node {
	nw.mustBeFresh(name)
	if f == nil {
		panic("network: AddNode with nil function")
	}
	if f.NumVars != len(fanins) {
		panic(fmt.Sprintf("network: node %s function width %d != fanin count %d",
			name, f.NumVars, len(fanins)))
	}
	n := &Node{Name: name, Kind: Internal, Func: f, Fanin: append([]*Node(nil), fanins...)}
	for _, fi := range fanins {
		fi.Fanout = append(fi.Fanout, n)
	}
	nw.Nodes = append(nw.Nodes, n)
	nw.byName[name] = n
	return n
}

// AddConstant creates a constant-0 or constant-1 source node.
func (nw *Network) AddConstant(name string, value bool) *Node {
	nw.mustBeFresh(name)
	f := sop.Zero(0)
	if value {
		f = sop.One(0)
	}
	n := &Node{Name: name, Kind: Constant, Func: f}
	nw.Nodes = append(nw.Nodes, n)
	nw.byName[name] = n
	return n
}

// FreshName returns a name of the form prefix_k not yet present.
func (nw *Network) FreshName(prefix string) string {
	for {
		nw.nameSeq++
		name := fmt.Sprintf("%s_%d", prefix, nw.nameSeq)
		if _, ok := nw.byName[name]; !ok {
			return name
		}
	}
}

// MarkOutput registers the node as driving a primary output with the given
// name.
func (nw *Network) MarkOutput(name string, driver *Node) {
	nw.Outputs = append(nw.Outputs, Output{Name: name, Driver: driver})
}

func (nw *Network) mustBeFresh(name string) {
	if _, ok := nw.byName[name]; ok {
		panic(fmt.Sprintf("network: duplicate node name %q", name))
	}
}

// SetFunction atomically replaces a node's fanin list and local function,
// maintaining fanout symmetry. The cover width must match the new fanin
// count.
func (nw *Network) SetFunction(n *Node, fanins []*Node, f *sop.Cover) {
	if n.Kind == PI {
		panic("network: cannot set a function on a primary input")
	}
	if f.NumVars != len(fanins) {
		panic(fmt.Sprintf("network: node %s new function width %d != fanin count %d",
			n.Name, f.NumVars, len(fanins)))
	}
	for _, old := range n.Fanin {
		removeFanout(old, n)
	}
	n.Fanin = append([]*Node(nil), fanins...)
	n.Func = f
	for _, fi := range fanins {
		fi.Fanout = append(fi.Fanout, n)
	}
}

// ReplaceFanin rewires every use of old in n's fanin list to repl, keeping
// the local function unchanged (the variable keeps its position).
func (nw *Network) ReplaceFanin(n, old, repl *Node) {
	changed := false
	for i, f := range n.Fanin {
		if f == old {
			n.Fanin[i] = repl
			changed = true
		}
	}
	if !changed {
		return
	}
	removeFanout(old, n)
	repl.Fanout = append(repl.Fanout, n)
}

func removeFanout(from, to *Node) {
	out := from.Fanout[:0]
	for _, f := range from.Fanout {
		if f != to {
			out = append(out, f)
		}
	}
	from.Fanout = out
}

// DeleteNode removes an internal node that has no fanouts and drives no
// output. It panics if the node is still in use.
func (nw *Network) DeleteNode(n *Node) {
	if n.Kind == PI {
		panic("network: cannot delete a primary input")
	}
	if len(n.Fanout) > 0 {
		panic(fmt.Sprintf("network: deleting node %s with live fanout", n.Name))
	}
	for _, o := range nw.Outputs {
		if o.Driver == n {
			panic(fmt.Sprintf("network: deleting output driver %s", n.Name))
		}
	}
	for _, fi := range n.Fanin {
		removeFanout(fi, n)
	}
	n.Fanin = nil
	out := nw.Nodes[:0]
	for _, m := range nw.Nodes {
		if m != n {
			out = append(out, m)
		}
	}
	nw.Nodes = out
	delete(nw.byName, n.Name)
}

// TopoOrder returns all nodes reachable from the outputs in topological
// order (fanins before fanouts), including PIs and constants.
func (nw *Network) TopoOrder() []*Node {
	for _, n := range nw.allNodes() {
		n.flag = 0
	}
	var order []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		if n.flag != 0 {
			return
		}
		n.flag = 1
		for _, f := range n.Fanin {
			visit(f)
		}
		order = append(order, n)
	}
	for _, o := range nw.Outputs {
		visit(o.Driver)
	}
	return order
}

// TopoOrderAll is TopoOrder extended to include nodes not reachable from any
// output (useful before sweeping).
func (nw *Network) TopoOrderAll() []*Node {
	order := nw.TopoOrder()
	for _, n := range nw.allNodes() {
		if n.flag == 0 {
			// Dangling cone: append in dependency order.
			var visit func(m *Node)
			visit = func(m *Node) {
				if m.flag != 0 {
					return
				}
				m.flag = 1
				for _, f := range m.Fanin {
					visit(f)
				}
				order = append(order, m)
			}
			visit(n)
		}
	}
	return order
}

func (nw *Network) allNodes() []*Node {
	all := make([]*Node, 0, len(nw.PIs)+len(nw.Nodes))
	all = append(all, nw.PIs...)
	all = append(all, nw.Nodes...)
	return all
}

// Sweep removes internal nodes unreachable from every primary output.
// It returns the number of nodes removed.
func (nw *Network) Sweep() int {
	reach := make(map[*Node]bool)
	for _, n := range nw.TopoOrder() {
		reach[n] = true
	}
	removed := 0
	// Delete in reverse insertion order so fanout-free nodes go first.
	for {
		deletedAny := false
		for i := len(nw.Nodes) - 1; i >= 0; i-- {
			n := nw.Nodes[i]
			if !reach[n] && len(n.Fanout) == 0 {
				nw.DeleteNode(n)
				removed++
				deletedAny = true
			}
		}
		if !deletedAny {
			break
		}
	}
	return removed
}

// Check validates structural invariants: acyclicity, fanin/fanout symmetry,
// function widths, name-table consistency. It returns the first violation.
func (nw *Network) Check() error {
	for name, n := range nw.byName {
		if n.Name != name {
			return fmt.Errorf("network: name table maps %q to node named %q", name, n.Name)
		}
	}
	for _, n := range nw.allNodes() {
		if n.Kind == PI {
			if len(n.Fanin) != 0 || n.Func != nil {
				return fmt.Errorf("network: PI %s has fanins or a function", n.Name)
			}
			continue
		}
		if n.Func == nil {
			return fmt.Errorf("network: node %s has no function", n.Name)
		}
		if n.Func.NumVars != len(n.Fanin) {
			return fmt.Errorf("network: node %s function width %d != fanin count %d",
				n.Name, n.Func.NumVars, len(n.Fanin))
		}
		for _, fi := range n.Fanin {
			if !containsNode(fi.Fanout, n) {
				return fmt.Errorf("network: %s -> %s missing from fanout list", fi.Name, n.Name)
			}
		}
		for _, fo := range n.Fanout {
			if fo.FaninIndex(n) < 0 {
				return fmt.Errorf("network: %s lists fanout %s that does not read it", n.Name, fo.Name)
			}
		}
	}
	// Acyclicity: DFS with colors.
	state := make(map[*Node]int)
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("network: cycle through node %s", n.Name)
		case 2:
			return nil
		}
		state[n] = 1
		for _, f := range n.Fanin {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[n] = 2
		return nil
	}
	for _, o := range nw.Outputs {
		if o.Driver == nil {
			return fmt.Errorf("network: output %s has no driver", o.Name)
		}
		if err := visit(o.Driver); err != nil {
			return err
		}
	}
	return nil
}

func containsNode(list []*Node, n *Node) bool {
	for _, m := range list {
		if m == n {
			return true
		}
	}
	return false
}

// Duplicate returns a deep structural copy of the network. Annotations
// (probability, timing) are copied as well.
func (nw *Network) Duplicate() *Network {
	cp := New(nw.Name)
	clone := make(map[*Node]*Node, len(nw.PIs)+len(nw.Nodes))
	for _, p := range nw.PIs {
		np := cp.AddPI(p.Name)
		copyAnnotations(np, p)
		clone[p] = np
	}
	// Nodes are stored in insertion order, which is not necessarily
	// topological; duplicate in topological order instead.
	for _, n := range nw.TopoOrderAll() {
		if n.Kind == PI {
			continue
		}
		fanins := make([]*Node, len(n.Fanin))
		for i, f := range n.Fanin {
			fanins[i] = clone[f]
		}
		nn := cp.AddNode(n.Name, fanins, n.Func.Clone())
		nn.Kind = n.Kind
		copyAnnotations(nn, n)
		clone[n] = nn
	}
	for _, o := range nw.Outputs {
		cp.MarkOutput(o.Name, clone[o.Driver])
	}
	return cp
}

func copyAnnotations(dst, src *Node) {
	dst.Prob1 = src.Prob1
	dst.Activity = src.Activity
	dst.Arrival = src.Arrival
	dst.Required = src.Required
}

// Eval computes the value of every reachable node under a full PI
// assignment keyed by PI name, returning output values keyed by output name.
func (nw *Network) Eval(piValues map[string]bool) map[string]bool {
	val := make(map[*Node]bool)
	for _, n := range nw.TopoOrder() {
		switch n.Kind {
		case PI:
			val[n] = piValues[n.Name]
		default:
			assign := make([]bool, len(n.Fanin))
			for i, f := range n.Fanin {
				assign[i] = val[f]
			}
			val[n] = n.Func.Eval(assign)
		}
	}
	out := make(map[string]bool, len(nw.Outputs))
	for _, o := range nw.Outputs {
		out[o.Name] = val[o.Driver]
	}
	return out
}

// PINames returns the primary input names in declaration order.
func (nw *Network) PINames() []string {
	names := make([]string, len(nw.PIs))
	for i, p := range nw.PIs {
		names[i] = p.Name
	}
	return names
}

// OutputNames returns the primary output names in declaration order.
func (nw *Network) OutputNames() []string {
	names := make([]string, len(nw.Outputs))
	for i, o := range nw.Outputs {
		names[i] = o.Name
	}
	return names
}

// Stats summarizes network size.
type Stats struct {
	PIs, POs, Nodes, Literals int
	Depth                     int // unit-delay depth in 2-input-decomposed terms is not implied; this is level count
}

// Stats returns size statistics for the network.
func (nw *Network) Stats() Stats {
	s := Stats{PIs: len(nw.PIs), POs: len(nw.Outputs)}
	level := make(map[*Node]int)
	for _, n := range nw.TopoOrder() {
		if n.Kind == Internal {
			s.Nodes++
			s.Literals += n.Func.NumLiterals()
		}
		l := 0
		for _, f := range n.Fanin {
			if level[f]+1 > l {
				l = level[f] + 1
			}
		}
		level[n] = l
		if l > s.Depth {
			s.Depth = l
		}
	}
	return s
}

// EquivalentBrute reports whether two networks with identical PI name sets
// compute the same outputs for every assignment, by exhaustive simulation.
// Intended for tests on networks with few inputs.
func EquivalentBrute(a, b *Network) (bool, error) {
	an, bn := a.PINames(), b.PINames()
	sort.Strings(an)
	sort.Strings(bn)
	if len(an) != len(bn) {
		return false, fmt.Errorf("network: PI count mismatch %d vs %d", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return false, fmt.Errorf("network: PI name mismatch %s vs %s", an[i], bn[i])
		}
	}
	ao, bo := a.OutputNames(), b.OutputNames()
	if len(ao) != len(bo) {
		return false, fmt.Errorf("network: output count mismatch %d vs %d", len(ao), len(bo))
	}
	if len(an) > 20 {
		return false, fmt.Errorf("network: too many PIs (%d) for brute-force equivalence", len(an))
	}
	for bits := 0; bits < 1<<len(an); bits++ {
		assign := make(map[string]bool, len(an))
		for i, name := range an {
			assign[name] = bits>>i&1 != 0
		}
		av, bv := a.Eval(assign), b.Eval(assign)
		for name, v := range av {
			if bv[name] != v {
				return false, nil
			}
		}
	}
	return true, nil
}
