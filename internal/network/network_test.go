package network

import (
	"strings"
	"testing"

	"powermap/internal/sop"
)

// buildAndOr constructs y = (a AND b) OR c used by several tests.
func buildAndOr(t *testing.T) (*Network, *Node, *Node, *Node, *Node) {
	t.Helper()
	nw := New("andor")
	a := nw.AddPI("a")
	b := nw.AddPI("b")
	c := nw.AddPI("c")
	and := sop.NewCover(2)
	and.AddCube(sop.Cube{sop.Pos, sop.Pos})
	n1 := nw.AddNode("n1", []*Node{a, b}, and)
	or := sop.NewCover(2)
	or.AddCube(sop.Cube{sop.Pos, sop.DC})
	or.AddCube(sop.Cube{sop.DC, sop.Pos})
	y := nw.AddNode("y", []*Node{n1, c}, or)
	nw.MarkOutput("y", y)
	if err := nw.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	return nw, a, b, c, n1
}

func TestEval(t *testing.T) {
	nw, _, _, _, _ := buildAndOr(t)
	cases := []struct {
		a, b, c, want bool
	}{
		{false, false, false, false},
		{true, true, false, true},
		{true, false, false, false},
		{false, false, true, true},
	}
	for _, tc := range cases {
		got := nw.Eval(map[string]bool{"a": tc.a, "b": tc.b, "c": tc.c})["y"]
		if got != tc.want {
			t.Errorf("eval(%v,%v,%v) = %v, want %v", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	nw, _, _, _, _ := buildAndOr(t)
	order := nw.TopoOrder()
	pos := make(map[string]int)
	for i, n := range order {
		pos[n.Name] = i
	}
	if pos["n1"] > pos["y"] || pos["a"] > pos["n1"] || pos["c"] > pos["y"] {
		t.Errorf("bad topo order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("order has %d nodes, want 5", len(order))
	}
}

func TestDuplicateIndependence(t *testing.T) {
	nw, _, _, _, _ := buildAndOr(t)
	cp := nw.Duplicate()
	if err := cp.Check(); err != nil {
		t.Fatalf("duplicate check: %v", err)
	}
	ok, err := EquivalentBrute(nw, cp)
	if err != nil || !ok {
		t.Fatalf("duplicate not equivalent: %v %v", ok, err)
	}
	// Mutating the copy must not affect the original.
	cpY := cp.NodeByName("y")
	cpY.Func = sop.Zero(2)
	orig := nw.Eval(map[string]bool{"a": true, "b": true, "c": false})["y"]
	if !orig {
		t.Error("mutating duplicate changed original")
	}
}

func TestSweep(t *testing.T) {
	nw, a, b, _, _ := buildAndOr(t)
	dead := sop.NewCover(2)
	dead.AddCube(sop.Cube{sop.Pos, sop.Neg})
	nw.AddNode("dead", []*Node{a, b}, dead)
	if removed := nw.Sweep(); removed != 1 {
		t.Errorf("sweep removed %d, want 1", removed)
	}
	if nw.NodeByName("dead") != nil {
		t.Error("dead node survived sweep")
	}
	if err := nw.Check(); err != nil {
		t.Fatalf("post-sweep check: %v", err)
	}
}

func TestSweepChain(t *testing.T) {
	// A dead chain must be removed entirely.
	nw, a, _, _, _ := buildAndOr(t)
	buf := sop.FromLiteral(1, 0, true)
	d1 := nw.AddNode("d1", []*Node{a}, buf)
	nw.AddNode("d2", []*Node{d1}, buf.Clone())
	if removed := nw.Sweep(); removed != 2 {
		t.Errorf("sweep removed %d, want 2", removed)
	}
}

func TestReplaceFanin(t *testing.T) {
	nw, a, _, c, n1 := buildAndOr(t)
	y := nw.NodeByName("y")
	nw.ReplaceFanin(y, n1, a)
	if y.FaninIndex(a) < 0 {
		t.Fatal("fanin not replaced")
	}
	if containsNode(n1.Fanout, y) {
		t.Error("old fanin still lists fanout")
	}
	if !containsNode(a.Fanout, y) {
		t.Error("new fanin missing fanout")
	}
	got := nw.Eval(map[string]bool{"a": true, "b": false, "c": false})["y"]
	if !got {
		t.Error("rewired network mis-evaluates")
	}
	_ = c
}

func TestDeleteNodePanics(t *testing.T) {
	nw, _, _, _, n1 := buildAndOr(t)
	defer func() {
		if recover() == nil {
			t.Error("deleting a live node must panic")
		}
	}()
	nw.DeleteNode(n1)
}

func TestCheckDetectsCycle(t *testing.T) {
	nw, _, _, _, n1 := buildAndOr(t)
	y := nw.NodeByName("y")
	// Manually create a cycle y -> n1.
	n1.Fanin = append(n1.Fanin, y)
	n1.Func = sop.One(3).And(sop.FromLiteral(3, 0, true)) // keep widths consistent
	y.Fanout = append(y.Fanout, n1)
	if err := nw.Check(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestConstantNode(t *testing.T) {
	nw := New("const")
	one := nw.AddConstant("one", true)
	nw.MarkOutput("o", one)
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	if !nw.Eval(nil)["o"] {
		t.Error("constant one evaluates to false")
	}
}

func TestStats(t *testing.T) {
	nw, _, _, _, _ := buildAndOr(t)
	s := nw.Stats()
	if s.PIs != 3 || s.POs != 1 || s.Nodes != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Literals != 4 {
		t.Errorf("literals = %d, want 4", s.Literals)
	}
	if s.Depth != 2 {
		t.Errorf("depth = %d, want 2", s.Depth)
	}
}

func TestFreshName(t *testing.T) {
	nw, _, _, _, _ := buildAndOr(t)
	n1 := nw.FreshName("t")
	n2 := nw.FreshName("t")
	if n1 == n2 {
		t.Error("fresh names collide")
	}
	if nw.NodeByName(n1) != nil {
		t.Error("fresh name already taken")
	}
}

func TestEquivalentBruteDetectsDifference(t *testing.T) {
	a, _, _, _, _ := buildAndOr(t)
	b := a.Duplicate()
	yb := b.NodeByName("y")
	yb.Func = sop.Zero(2)
	ok, err := EquivalentBrute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("different networks reported equivalent")
	}
}

func TestSetFunction(t *testing.T) {
	nw, a, b, c, n1 := buildAndOr(t)
	// Rewire n1 from AND(a,b) to OR(b,c).
	or := sop.NewCover(2)
	or.AddCube(sop.Cube{sop.Pos, sop.DC})
	or.AddCube(sop.Cube{sop.DC, sop.Pos})
	nw.SetFunction(n1, []*Node{b, c}, or)
	if err := nw.Check(); err != nil {
		t.Fatalf("post-SetFunction check: %v", err)
	}
	if containsNode(a.Fanout, n1) {
		t.Error("old fanin still lists n1")
	}
	if !containsNode(c.Fanout, n1) {
		t.Error("new fanin missing n1")
	}
	got := nw.Eval(map[string]bool{"a": false, "b": false, "c": true})["y"]
	if !got {
		t.Error("rewired function mis-evaluates")
	}
}

func TestSetFunctionPanics(t *testing.T) {
	nw, a, b, _, _ := buildAndOr(t)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch must panic")
		}
	}()
	nw.SetFunction(nw.NodeByName("y"), []*Node{a, b}, sop.FromLiteral(1, 0, true))
}

func TestTopoOrderAllIncludesDangling(t *testing.T) {
	nw, a, b, _, _ := buildAndOr(t)
	dead := sop.NewCover(2)
	dead.AddCube(sop.Cube{sop.Pos, sop.Neg})
	nw.AddNode("dead", []*Node{a, b}, dead)
	reach := nw.TopoOrder()
	all := nw.TopoOrderAll()
	if len(all) != len(reach)+1 {
		t.Errorf("TopoOrderAll %d vs TopoOrder %d", len(all), len(reach))
	}
	pos := map[string]int{}
	for i, n := range all {
		pos[n.Name] = i
	}
	if pos["a"] > pos["dead"] {
		t.Error("dangling node precedes its fanin")
	}
}

func TestEquivalentBruteErrors(t *testing.T) {
	a, _, _, _, _ := buildAndOr(t)
	b := New("other")
	b.AddPI("a")
	b.MarkOutput("y", b.NodeByName("a"))
	if _, err := EquivalentBrute(a, b); err == nil {
		t.Error("PI count mismatch accepted")
	}
	c := New("other2")
	for _, n := range []string{"a", "b", "x"} {
		c.AddPI(n)
	}
	c.MarkOutput("y", c.NodeByName("a"))
	if _, err := EquivalentBrute(a, c); err == nil {
		t.Error("PI name mismatch accepted")
	}
	d := a.Duplicate()
	d.MarkOutput("extra", d.NodeByName("y"))
	if _, err := EquivalentBrute(a, d); err == nil {
		t.Error("output count mismatch accepted")
	}
}

func TestPINamesOutputNames(t *testing.T) {
	nw, _, _, _, _ := buildAndOr(t)
	if got := nw.PINames(); len(got) != 3 || got[0] != "a" {
		t.Errorf("PINames %v", got)
	}
	if got := nw.OutputNames(); len(got) != 1 || got[0] != "y" {
		t.Errorf("OutputNames %v", got)
	}
}

func TestOutputDrivenByPI(t *testing.T) {
	nw := New("wire")
	a := nw.AddPI("a")
	nw.MarkOutput("o", a)
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	if !nw.Eval(map[string]bool{"a": true})["o"] {
		t.Error("PI-driven output broken")
	}
}
