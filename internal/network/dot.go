package network

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDot renders the network as a Graphviz digraph: primary inputs as
// diamonds, internal nodes as boxes labelled with their local function,
// primary outputs as double circles. Probability annotations are included
// when present (non-zero).
func (nw *Network) WriteDot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", nw.Name)
	for _, n := range nw.TopoOrder() {
		switch n.Kind {
		case PI:
			fmt.Fprintf(bw, "  %q [shape=diamond,label=%q];\n", n.Name, n.Name)
		case Constant:
			v := "0"
			if n.Func.IsOne() {
				v = "1"
			}
			fmt.Fprintf(bw, "  %q [shape=plaintext,label=%q];\n", n.Name, n.Name+"="+v)
		default:
			label := n.Name
			if n.Prob1 != 0 || n.Activity != 0 {
				label = fmt.Sprintf("%s\\np=%.3f E=%.3f", n.Name, n.Prob1, n.Activity)
			}
			fmt.Fprintf(bw, "  %q [shape=box,label=%q];\n", n.Name, label)
		}
		for _, f := range n.Fanin {
			fmt.Fprintf(bw, "  %q -> %q;\n", f.Name, n.Name)
		}
	}
	for _, o := range nw.Outputs {
		port := "out_" + o.Name
		fmt.Fprintf(bw, "  %q [shape=doublecircle,label=%q];\n", port, o.Name)
		fmt.Fprintf(bw, "  %q -> %q;\n", o.Driver.Name, port)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
