package network

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	nw, _, _, _, _ := buildAndOr(t)
	nw.AddConstant("k1", true)
	nw.MarkOutput("konst", nw.NodeByName("k1"))
	var buf bytes.Buffer
	if err := nw.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph", "rankdir=LR", "shape=diamond", "shape=box",
		"shape=doublecircle", `"n1" -> "y"`, `"a" -> "n1"`, "k1=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}
