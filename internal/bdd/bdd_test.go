package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powermap/internal/sop"
)

func TestTerminals(t *testing.T) {
	m := New(2)
	if m.Not(False) != True || m.Not(True) != False {
		t.Fatal("terminal complement broken")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("terminal and/or broken")
	}
}

func TestVarBasics(t *testing.T) {
	m := New(3)
	x := m.Var(0)
	if m.And(x, m.Not(x)) != False {
		t.Error("x & !x != 0")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Error("x | !x != 1")
	}
	if m.Xor(x, x) != False {
		t.Error("x ^ x != 0")
	}
	if m.NVar(0) != m.Not(x) {
		t.Error("NVar != Not(Var)")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a&b)|c  built two different ways must be pointer-equal.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Or(c, m.And(b, a))
	if f1 != f2 {
		t.Error("equivalent functions got different refs")
	}
	f3 := m.Ite(a, m.Or(b, c), c)
	if f1 != f3 {
		t.Error("ite form differs from or/and form")
	}
}

func TestDeMorgan(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Error("De Morgan violated")
	}
}

func TestRestrict(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	if m.Restrict(f, 0, true) != m.Or(b, c) {
		t.Error("restrict a=1 wrong")
	}
	if m.Restrict(f, 0, false) != c {
		t.Error("restrict a=0 wrong")
	}
	if m.Restrict(f, 2, true) != True {
		t.Error("restrict c=1 wrong")
	}
}

func TestEvalAgainstTruthTable(t *testing.T) {
	m := New(4)
	vars := []Ref{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
	// f = (x0 XOR x1) AND (x2 OR !x3)
	f := m.And(m.Xor(vars[0], vars[1]), m.Or(vars[2], m.Not(vars[3])))
	for bits := 0; bits < 16; bits++ {
		assign := []bool{bits&1 != 0, bits&2 != 0, bits&4 != 0, bits&8 != 0}
		want := (assign[0] != assign[1]) && (assign[2] || !assign[3])
		if m.Eval(f, assign) != want {
			t.Fatalf("eval mismatch at %04b", bits)
		}
	}
}

func TestFromCover(t *testing.T) {
	m := New(3)
	f := sop.NewCover(2)
	f.AddCube(sop.Cube{sop.Pos, sop.Pos})
	inputs := []Ref{m.Var(0), m.Var(1)}
	r := m.FromCover(f, inputs)
	if r != m.And(m.Var(0), m.Var(1)) {
		t.Error("FromCover of AND cube wrong")
	}
	// Composition: local AND over (x0 OR x2, x1).
	comp := m.FromCover(f, []Ref{m.Or(m.Var(0), m.Var(2)), m.Var(1)})
	want := m.And(m.Or(m.Var(0), m.Var(2)), m.Var(1))
	if comp != want {
		t.Error("FromCover composition wrong")
	}
	if m.FromCover(sop.Zero(2), inputs) != False {
		t.Error("zero cover != False")
	}
	if m.FromCover(sop.One(2), inputs) != True {
		t.Error("one cover != True")
	}
}

func TestProbSimple(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	p := []float64{0.3, 0.4}
	if got := m.Prob(m.And(a, b), p); math.Abs(got-0.12) > 1e-12 {
		t.Errorf("P(ab) = %v, want 0.12", got)
	}
	if got := m.Prob(m.Or(a, b), p); math.Abs(got-(0.3+0.4-0.12)) > 1e-12 {
		t.Errorf("P(a+b) = %v", got)
	}
	if got := m.Prob(m.Xor(a, b), p); math.Abs(got-(0.3*0.6+0.7*0.4)) > 1e-12 {
		t.Errorf("P(a^b) = %v", got)
	}
}

func TestProbReconvergence(t *testing.T) {
	// f = a AND a must have P = p, not p^2: BDDs capture reconvergence.
	m := New(1)
	a := m.Var(0)
	f := m.And(a, a)
	if got := m.Prob(f, []float64{0.3}); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("P(a&a) = %v, want 0.3", got)
	}
}

// truthProb computes the exact probability by full enumeration.
func truthProb(m *Manager, f Ref, p []float64) float64 {
	n := m.NumVars()
	total := 0.0
	assign := make([]bool, n)
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == n {
			if m.Eval(f, assign) {
				total += w
			}
			return
		}
		assign[i] = false
		rec(i+1, w*(1-p[i]))
		assign[i] = true
		rec(i+1, w*p[i])
	}
	rec(0, 1)
	return total
}

func TestProbMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := New(5)
		// Random function from random cover.
		f := sop.NewCover(5)
		for i := 0; i < 1+r.Intn(6); i++ {
			c := sop.NewCube(5)
			for v := range c {
				c[v] = sop.Lit(r.Intn(3))
			}
			f.AddCube(c)
		}
		inputs := make([]Ref, 5)
		for i := range inputs {
			inputs[i] = m.Var(i)
		}
		g := m.FromCover(f, inputs)
		p := make([]float64, 5)
		for i := range p {
			p[i] = r.Float64()
		}
		got := m.Prob(g, p)
		want := truthProb(m, g, p)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Prob=%v enumeration=%v for %v", got, want, f)
		}
	}
}

func TestProbBounds(t *testing.T) {
	// Property: probability is always within [0,1] for probabilities in [0,1].
	check := func(raw [5]uint8, seeds [3]uint8) bool {
		m := New(5)
		p := make([]float64, 5)
		for i, b := range raw {
			p[i] = float64(b) / 255
		}
		f := m.Var(int(seeds[0]) % 5)
		f = m.Or(f, m.And(m.Var(int(seeds[1])%5), m.Not(m.Var(int(seeds[2])%5))))
		pr := m.Prob(f, p)
		return pr >= -1e-12 && pr <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(a, b)); got != 2 { // c free
		t.Errorf("satcount(ab) = %v, want 2", got)
	}
	if got := m.SatCount(True); got != 8 {
		t.Errorf("satcount(1) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("satcount(0) = %v, want 0", got)
	}
	if got := m.SatCount(m.Xor(a, b)); got != 4 {
		t.Errorf("satcount(a^b) = %v, want 4", got)
	}
}

func TestSupport(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Or(m.Var(2), m.Var(3)))
	sup := m.Support(f)
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 2 || sup[2] != 3 {
		t.Errorf("support = %v", sup)
	}
	if len(m.Support(True)) != 0 {
		t.Error("constant has support")
	}
}

func TestCondProb(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	p := []float64{0.5, 0.5}
	// P(a | a&b) = 1.
	if got := m.CondProb(a, m.And(a, b), p); math.Abs(got-1) > 1e-12 {
		t.Errorf("P(a|ab) = %v", got)
	}
	// P(a | b) = P(a) for independent vars.
	if got := m.CondProb(a, b, p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(a|b) = %v", got)
	}
	if got := m.CondProb(a, False, p); got != 0 {
		t.Errorf("P(a|0) = %v, want 0", got)
	}
}

func TestIteIdentities(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	if m.Ite(a, b, b) != b {
		t.Error("ite(a,b,b) != b")
	}
	if m.Ite(a, True, False) != a {
		t.Error("ite(a,1,0) != a")
	}
	if m.Ite(a, False, True) != m.Not(a) {
		t.Error("ite(a,0,1) != !a")
	}
	lhs := m.Ite(a, b, c)
	rhs := m.Or(m.And(a, b), m.And(m.Not(a), c))
	if lhs != rhs {
		t.Error("ite expansion identity broken")
	}
}

func TestNodeLimit(t *testing.T) {
	m := New(8)
	m.SetNodeLimit(4) // absurdly small: any mk should trip it
	defer func() {
		if r := recover(); r != ErrNodeLimit {
			t.Errorf("expected ErrNodeLimit panic, got %v", r)
		}
	}()
	f := True
	for i := 0; i < 8; i++ {
		f = m.And(f, m.Var(i))
	}
}
