package bdd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powermap/internal/sop"
)

// tb wraps a Manager so functional tests can compose operations without
// threading errors; any kernel error fails the test at the call site.
type tb struct {
	t *testing.T
	m *Manager
}

func wrap(t *testing.T, m *Manager) *tb { return &tb{t: t, m: m} }

func (b *tb) ok(r Ref, err error) Ref {
	if err != nil {
		b.t.Helper()
		b.t.Fatalf("bdd op failed: %v", err)
	}
	return r
}

func (b *tb) Var(v int) Ref           { return b.ok(b.m.Var(v)) }
func (b *tb) NVar(v int) Ref          { return b.ok(b.m.NVar(v)) }
func (b *tb) Not(f Ref) Ref           { return b.ok(b.m.Not(f)) }
func (b *tb) And(f, g Ref) Ref        { return b.ok(b.m.And(f, g)) }
func (b *tb) Or(f, g Ref) Ref         { return b.ok(b.m.Or(f, g)) }
func (b *tb) Xor(f, g Ref) Ref        { return b.ok(b.m.Xor(f, g)) }
func (b *tb) Ite(f, g, h Ref) Ref     { return b.ok(b.m.Ite(f, g, h)) }
func (b *tb) Restrict(f Ref, v int, val bool) Ref {
	return b.ok(b.m.Restrict(f, v, val))
}
func (b *tb) FromCover(c *sop.Cover, inputs []Ref) Ref {
	return b.ok(b.m.FromCover(c, inputs))
}
func (b *tb) Prob(f Ref, p []float64) float64 {
	pr, err := b.m.Prob(f, p)
	if err != nil {
		b.t.Helper()
		b.t.Fatalf("Prob failed: %v", err)
	}
	return pr
}
func (b *tb) CondProb(f, g Ref, p []float64) float64 {
	pr, err := b.m.CondProb(f, g, p)
	if err != nil {
		b.t.Helper()
		b.t.Fatalf("CondProb failed: %v", err)
	}
	return pr
}
func (b *tb) Eval(f Ref, assign []bool) bool {
	v, err := b.m.Eval(f, assign)
	if err != nil {
		b.t.Helper()
		b.t.Fatalf("Eval failed: %v", err)
	}
	return v
}

func TestTerminals(t *testing.T) {
	m := wrap(t, New(2))
	if m.Not(False) != True || m.Not(True) != False {
		t.Fatal("terminal complement broken")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("terminal and/or broken")
	}
}

func TestVarBasics(t *testing.T) {
	m := wrap(t, New(3))
	x := m.Var(0)
	if m.And(x, m.Not(x)) != False {
		t.Error("x & !x != 0")
	}
	if m.Or(x, m.Not(x)) != True {
		t.Error("x | !x != 1")
	}
	if m.Xor(x, x) != False {
		t.Error("x ^ x != 0")
	}
	if m.NVar(0) != m.Not(x) {
		t.Error("NVar != Not(Var)")
	}
}

func TestVarRangeError(t *testing.T) {
	m := New(3)
	if _, err := m.Var(3); err == nil {
		t.Error("Var(3) on 3-var manager should fail")
	} else {
		var vre *VarRangeError
		if !errors.As(err, &vre) || vre.Var != 3 || vre.NumVars != 3 {
			t.Errorf("want VarRangeError{3,3}, got %v", err)
		}
	}
	if _, err := m.NVar(-1); err == nil {
		t.Error("NVar(-1) should fail")
	}
	if _, err := m.Restrict(True, 7, true); err == nil {
		t.Error("Restrict out-of-range variable should fail")
	}
}

func TestCanonicity(t *testing.T) {
	m := wrap(t, New(3))
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a&b)|c  built two different ways must be pointer-equal.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Or(c, m.And(b, a))
	if f1 != f2 {
		t.Error("equivalent functions got different refs")
	}
	f3 := m.Ite(a, m.Or(b, c), c)
	if f1 != f3 {
		t.Error("ite form differs from or/and form")
	}
}

func TestDeMorgan(t *testing.T) {
	m := wrap(t, New(2))
	a, b := m.Var(0), m.Var(1)
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Error("De Morgan violated")
	}
}

func TestRestrict(t *testing.T) {
	m := wrap(t, New(3))
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	if m.Restrict(f, 0, true) != m.Or(b, c) {
		t.Error("restrict a=1 wrong")
	}
	if m.Restrict(f, 0, false) != c {
		t.Error("restrict a=0 wrong")
	}
	if m.Restrict(f, 2, true) != True {
		t.Error("restrict c=1 wrong")
	}
}

func TestEvalAgainstTruthTable(t *testing.T) {
	m := wrap(t, New(4))
	vars := []Ref{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
	// f = (x0 XOR x1) AND (x2 OR !x3)
	f := m.And(m.Xor(vars[0], vars[1]), m.Or(vars[2], m.Not(vars[3])))
	for bits := 0; bits < 16; bits++ {
		assign := []bool{bits&1 != 0, bits&2 != 0, bits&4 != 0, bits&8 != 0}
		want := (assign[0] != assign[1]) && (assign[2] || !assign[3])
		if m.Eval(f, assign) != want {
			t.Fatalf("eval mismatch at %04b", bits)
		}
	}
}

func TestEvalAssignLenError(t *testing.T) {
	m := New(4)
	if _, err := m.Eval(True, []bool{true}); err == nil {
		t.Error("short assignment should fail")
	} else {
		var ale *AssignLenError
		if !errors.As(err, &ale) || ale.Got != 1 || ale.Want != 4 {
			t.Errorf("want AssignLenError{1,4}, got %v", err)
		}
	}
}

func TestFromCover(t *testing.T) {
	m := wrap(t, New(3))
	f := sop.NewCover(2)
	f.AddCube(sop.Cube{sop.Pos, sop.Pos})
	inputs := []Ref{m.Var(0), m.Var(1)}
	r := m.FromCover(f, inputs)
	if r != m.And(m.Var(0), m.Var(1)) {
		t.Error("FromCover of AND cube wrong")
	}
	// Composition: local AND over (x0 OR x2, x1).
	comp := m.FromCover(f, []Ref{m.Or(m.Var(0), m.Var(2)), m.Var(1)})
	want := m.And(m.Or(m.Var(0), m.Var(2)), m.Var(1))
	if comp != want {
		t.Error("FromCover composition wrong")
	}
	if m.FromCover(sop.Zero(2), inputs) != False {
		t.Error("zero cover != False")
	}
	if m.FromCover(sop.One(2), inputs) != True {
		t.Error("one cover != True")
	}
}

func TestFromCoverWidthError(t *testing.T) {
	m := New(3)
	c := sop.NewCover(2)
	c.AddCube(sop.Cube{sop.Pos, sop.Pos})
	_, err := m.FromCover(c, []Ref{True})
	if err == nil {
		t.Fatal("width mismatch should fail")
	}
	var cwe *CoverWidthError
	if !errors.As(err, &cwe) || cwe.CoverVars != 2 || cwe.Inputs != 1 {
		t.Errorf("want CoverWidthError{2,1}, got %v", err)
	}
}

func TestProbSimple(t *testing.T) {
	m := wrap(t, New(2))
	a, b := m.Var(0), m.Var(1)
	p := []float64{0.3, 0.4}
	if got := m.Prob(m.And(a, b), p); math.Abs(got-0.12) > 1e-12 {
		t.Errorf("P(ab) = %v, want 0.12", got)
	}
	if got := m.Prob(m.Or(a, b), p); math.Abs(got-(0.3+0.4-0.12)) > 1e-12 {
		t.Errorf("P(a+b) = %v", got)
	}
	if got := m.Prob(m.Xor(a, b), p); math.Abs(got-(0.3*0.6+0.7*0.4)) > 1e-12 {
		t.Errorf("P(a^b) = %v", got)
	}
}

func TestProbLenError(t *testing.T) {
	m := New(2)
	if _, err := m.Prob(True, []float64{0.5}); err == nil {
		t.Fatal("length mismatch should fail")
	} else {
		var ple *ProbLenError
		if !errors.As(err, &ple) || ple.Got != 1 || ple.Want != 2 {
			t.Errorf("want ProbLenError{1,2}, got %v", err)
		}
	}
	if _, err := m.CondProb(True, True, []float64{0.5, 0.5, 0.5}); err == nil {
		t.Error("CondProb length mismatch should fail")
	}
}

func TestProbReconvergence(t *testing.T) {
	// f = a AND a must have P = p, not p^2: BDDs capture reconvergence.
	m := wrap(t, New(1))
	a := m.Var(0)
	f := m.And(a, a)
	if got := m.Prob(f, []float64{0.3}); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("P(a&a) = %v, want 0.3", got)
	}
}

// truthProb computes the exact probability by full enumeration.
func truthProb(m *tb, f Ref, p []float64) float64 {
	n := m.m.NumVars()
	total := 0.0
	assign := make([]bool, n)
	var rec func(i int, w float64)
	rec = func(i int, w float64) {
		if i == n {
			if m.Eval(f, assign) {
				total += w
			}
			return
		}
		assign[i] = false
		rec(i+1, w*(1-p[i]))
		assign[i] = true
		rec(i+1, w*p[i])
	}
	rec(0, 1)
	return total
}

func TestProbMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := wrap(t, New(5))
		// Random function from random cover.
		f := sop.NewCover(5)
		for i := 0; i < 1+r.Intn(6); i++ {
			c := sop.NewCube(5)
			for v := range c {
				c[v] = sop.Lit(r.Intn(3))
			}
			f.AddCube(c)
		}
		inputs := make([]Ref, 5)
		for i := range inputs {
			inputs[i] = m.Var(i)
		}
		g := m.FromCover(f, inputs)
		p := make([]float64, 5)
		for i := range p {
			p[i] = r.Float64()
		}
		got := m.Prob(g, p)
		want := truthProb(m, g, p)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Prob=%v enumeration=%v for %v", got, want, f)
		}
	}
}

func TestProbBounds(t *testing.T) {
	// Property: probability is always within [0,1] for probabilities in [0,1].
	check := func(raw [5]uint8, seeds [3]uint8) bool {
		m := wrap(t, New(5))
		p := make([]float64, 5)
		for i, b := range raw {
			p[i] = float64(b) / 255
		}
		f := m.Var(int(seeds[0]) % 5)
		f = m.Or(f, m.And(m.Var(int(seeds[1])%5), m.Not(m.Var(int(seeds[2])%5))))
		pr := m.Prob(f, p)
		return pr >= -1e-12 && pr <= 1+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSatCount(t *testing.T) {
	m := wrap(t, New(3))
	a, b := m.Var(0), m.Var(1)
	if got := m.m.SatCount(m.And(a, b)); got != 2 { // c free
		t.Errorf("satcount(ab) = %v, want 2", got)
	}
	if got := m.m.SatCount(True); got != 8 {
		t.Errorf("satcount(1) = %v, want 8", got)
	}
	if got := m.m.SatCount(False); got != 0 {
		t.Errorf("satcount(0) = %v, want 0", got)
	}
	if got := m.m.SatCount(m.Xor(a, b)); got != 4 {
		t.Errorf("satcount(a^b) = %v, want 4", got)
	}
}

func TestSupport(t *testing.T) {
	m := wrap(t, New(4))
	f := m.And(m.Var(0), m.Or(m.Var(2), m.Var(3)))
	sup := m.m.Support(f)
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 2 || sup[2] != 3 {
		t.Errorf("support = %v", sup)
	}
	if len(m.m.Support(True)) != 0 {
		t.Error("constant has support")
	}
}

func TestCondProb(t *testing.T) {
	m := wrap(t, New(2))
	a, b := m.Var(0), m.Var(1)
	p := []float64{0.5, 0.5}
	// P(a | a&b) = 1.
	if got := m.CondProb(a, m.And(a, b), p); math.Abs(got-1) > 1e-12 {
		t.Errorf("P(a|ab) = %v", got)
	}
	// P(a | b) = P(a) for independent vars.
	if got := m.CondProb(a, b, p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(a|b) = %v", got)
	}
	if got := m.CondProb(a, False, p); got != 0 {
		t.Errorf("P(a|0) = %v, want 0", got)
	}
}

func TestIteIdentities(t *testing.T) {
	m := wrap(t, New(3))
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	if m.Ite(a, b, b) != b {
		t.Error("ite(a,b,b) != b")
	}
	if m.Ite(a, True, False) != a {
		t.Error("ite(a,1,0) != a")
	}
	if m.Ite(a, False, True) != m.Not(a) {
		t.Error("ite(a,0,1) != !a")
	}
	lhs := m.Ite(a, b, c)
	rhs := m.Or(m.And(a, b), m.And(m.Not(a), c))
	if lhs != rhs {
		t.Error("ite expansion identity broken")
	}
}

func TestNodeLimitError(t *testing.T) {
	m := New(8)
	m.SetNodeLimit(4) // absurdly small: building the conjunction trips it
	f := True
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		var x Ref
		x, err = m.Var(i)
		if err == nil {
			f, err = m.And(f, x)
		}
	}
	if err == nil {
		t.Fatal("expected node-limit error")
	}
	if !errors.Is(err, ErrNodeLimit) {
		t.Errorf("errors.Is(err, ErrNodeLimit) false for %v", err)
	}
	var nle *NodeLimitError
	if !errors.As(err, &nle) || nle.Limit != 4 {
		t.Errorf("want *NodeLimitError with limit 4, got %v", err)
	}
}

// xorChain builds x0 ^ x1 ^ ... ^ x(n-1): linear in any order, handy for
// structural tests.
func xorChain(m *tb, n int) Ref {
	f := False
	for i := 0; i < n; i++ {
		f = m.Xor(f, m.Var(i))
	}
	return f
}

func TestGCReclaimsToRootedSet(t *testing.T) {
	m := wrap(t, New(8))
	f := xorChain(m, 8)
	root := m.m.Protect(f)
	m.m.GC() // drop the chain's intermediate prefixes
	rootedSize := m.m.NumNodes()

	// Pile up garbage: conjunction trees that nothing roots.
	for trial := 0; trial < 4; trial++ {
		g := True
		for i := 0; i < 8; i++ {
			g = m.And(g, m.Or(m.Var(i), m.Var((i+trial+1)%8)))
		}
		_ = g
	}
	if m.m.NumNodes() <= rootedSize {
		t.Fatal("expected garbage growth before GC")
	}
	m.m.GC()
	if got := m.m.NumNodes(); got != rootedSize {
		t.Errorf("after GC: %d nodes, want rooted set %d", got, rootedSize)
	}
	st := m.m.Stats()
	if st.GCRuns != 2 || st.NodesFreed == 0 {
		t.Errorf("stats after GC: %+v", st)
	}
	// The rooted function still works.
	pr := m.Prob(root.Ref(), []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	if math.Abs(pr-0.5) > 1e-12 {
		t.Errorf("P(xor chain) = %v, want 0.5", pr)
	}

	// Releasing the root lets GC take everything.
	root.Release()
	m.m.GC()
	if got := m.m.NumNodes(); got != 2 {
		t.Errorf("after releasing root: %d nodes, want 2 terminals", got)
	}
}

func TestGCPreservesCanonicity(t *testing.T) {
	m := wrap(t, New(6))
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2))
	root := m.m.Protect(f)
	defer root.Release()
	// Garbage, then GC, then rebuild the same function: must be the same Ref.
	_ = xorChain(m, 6)
	m.m.GC()
	g := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2))
	if g != f {
		t.Errorf("rebuilt function got ref %d, want %d", g, f)
	}
}

func TestRootRefcounting(t *testing.T) {
	m := wrap(t, New(4))
	f := m.And(m.Var(0), m.Var(1))
	r1 := m.m.Protect(f)
	r2 := m.m.Protect(f)
	if m.m.NumRoots() != 1 {
		t.Errorf("NumRoots = %d, want 1 distinct", m.m.NumRoots())
	}
	r1.Release()
	m.m.GC()
	// Still protected through r2.
	if m.m.NumNodes() <= 2 {
		t.Error("node collected while still rooted")
	}
	r2.Release()
	r2.Release() // double release is a no-op
	m.m.GC()
	if m.m.NumNodes() != 2 {
		t.Error("node survived after all roots released")
	}
}

func TestCacheBound(t *testing.T) {
	m := wrap(t, NewWith(10, Config{CacheLimit: 16}))
	_ = xorChain(m, 10)
	for i := 0; i < 9; i++ {
		_ = m.And(m.Var(i), m.Var(i+1))
		_ = m.Or(m.Var(i), m.Var(i+1))
	}
	st := m.m.Stats()
	if st.CacheResets == 0 {
		t.Error("expected cache resets with a 16-entry bound")
	}
	if st.CacheEntries > 16 {
		t.Errorf("cache occupancy %d exceeds bound 16", st.CacheEntries)
	}
}

func TestMaintainTriggersGC(t *testing.T) {
	m := wrap(t, NewWith(8, Config{GCThreshold: 8}))
	f := xorChain(m, 8)
	root := m.m.Protect(f)
	defer root.Release()
	for trial := 0; trial < 3; trial++ {
		g := True
		for i := 0; i < 8; i++ {
			g = m.And(g, m.Xor(m.Var(i), m.Var((i+1+trial)%8)))
		}
		m.m.Maintain()
	}
	if st := m.m.Stats(); st.GCRuns == 0 {
		t.Errorf("Maintain never ran GC: %+v", st)
	}
}

// orderSensitive builds the classic order-sensitive function
// (x0&x1) | (x2&x3) | ... over pairs interleaved badly: with variable
// order x0, xk, x1, xk+1, ... the BDD is exponential in pairs, with the
// paired order it is linear. Sifting must find (near-)linear size.
func orderSensitive(m *tb, pairs int) Ref {
	f := False
	for i := 0; i < pairs; i++ {
		// Partner variables deliberately far apart in index order.
		f = m.Or(f, m.And(m.Var(i), m.Var(pairs+i)))
	}
	return f
}

func TestReorderShrinksOrderSensitiveFunction(t *testing.T) {
	const pairs = 6
	m := wrap(t, New(2*pairs))
	f := orderSensitive(m, pairs)
	root := m.m.Protect(f)
	defer root.Release()
	m.m.GC()
	before := m.m.NumNodes()
	m.m.Reorder()
	after := m.m.NumNodes()
	if after >= before {
		t.Errorf("sifting did not shrink: %d -> %d nodes", before, after)
	}
	// Optimal size for the paired order is 2 nodes per pair + terminals.
	if after > 3*pairs+2 {
		t.Errorf("sifting left %d nodes, want near-linear (<= %d)", after, 3*pairs+2)
	}
	if st := m.m.Stats(); st.ReorderRuns != 1 || st.ReorderSwaps == 0 {
		t.Errorf("reorder stats: %+v", st)
	}
}

func TestReorderPreservesFunctions(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		const nv = 7
		m := wrap(t, New(nv))
		// Random cover-built functions, all rooted.
		var refs []Ref
		for k := 0; k < 3; k++ {
			c := sop.NewCover(nv)
			for i := 0; i < 1+r.Intn(5); i++ {
				cube := sop.NewCube(nv)
				for v := range cube {
					cube[v] = sop.Lit(r.Intn(3))
				}
				c.AddCube(cube)
			}
			inputs := make([]Ref, nv)
			for i := range inputs {
				inputs[i] = m.Var(i)
			}
			refs = append(refs, m.FromCover(c, inputs))
		}
		// Record truth tables, reorder, compare: Refs must keep their
		// functions bit-for-bit.
		var before [][]bool
		for _, f := range refs {
			row := make([]bool, 1<<nv)
			for bits := range row {
				assign := make([]bool, nv)
				for v := range assign {
					assign[v] = bits&(1<<v) != 0
				}
				row[bits] = m.Eval(f, assign)
			}
			before = append(before, row)
		}
		var roots []*Root
		for _, f := range refs {
			roots = append(roots, m.m.Protect(f))
		}
		m.m.Reorder()
		for k, f := range refs {
			for bits := 0; bits < 1<<nv; bits++ {
				assign := make([]bool, nv)
				for v := range assign {
					assign[v] = bits&(1<<v) != 0
				}
				if got := m.Eval(f, assign); got != before[k][bits] {
					t.Fatalf("trial %d: function %d changed at %07b after reorder", trial, k, bits)
				}
			}
			// Probabilities (variable-indexed) must also be invariant.
			p := make([]float64, nv)
			for i := range p {
				p[i] = 0.25 + 0.5*float64(i)/nv
			}
			pr := m.Prob(f, p)
			pw := truthProb(m, f, p)
			if math.Abs(pr-pw) > 1e-9 {
				t.Fatalf("trial %d: Prob drifted after reorder: %v vs %v", trial, pr, pw)
			}
		}
		for _, rt := range roots {
			rt.Release()
		}
	}
}

func TestReorderKeepsCanonicity(t *testing.T) {
	m := wrap(t, New(8))
	f := orderSensitive(m, 4)
	root := m.m.Protect(f)
	defer root.Release()
	m.m.Reorder()
	// Rebuilding the same function after reorder must hit the same Ref.
	g := orderSensitive(m, 4)
	if g != f {
		t.Errorf("rebuilt ref %d != original %d after reorder", g, f)
	}
	// And the unique tables must be self-consistent: one more GC keeps
	// exactly the rooted set.
	m.m.GC()
	h := orderSensitive(m, 4)
	if h != f {
		t.Errorf("rebuilt ref %d != original %d after reorder+GC", h, f)
	}
}

func TestMaintainTriggersReorder(t *testing.T) {
	m := wrap(t, NewWith(12, Config{Reorder: true, ReorderThreshold: 8, GCThreshold: -1}))
	f := orderSensitive(m, 6)
	root := m.m.Protect(f)
	defer root.Release()
	m.m.Maintain()
	if st := m.m.Stats(); st.ReorderRuns == 0 {
		t.Errorf("Maintain never reordered: %+v", st)
	}
	// Function survives.
	assign := make([]bool, 12)
	assign[0], assign[6] = true, true
	if !m.Eval(f, assign) {
		t.Error("function broken after Maintain reorder")
	}
}

func TestOrderReportsPermutation(t *testing.T) {
	m := wrap(t, New(4))
	ord := m.m.Order()
	if len(ord) != 4 {
		t.Fatalf("order length %d", len(ord))
	}
	seen := make(map[int]bool)
	for _, v := range ord {
		if v < 0 || v >= 4 || seen[v] {
			t.Fatalf("order %v is not a permutation", ord)
		}
		seen[v] = true
	}
	f := orderSensitive(m, 2)
	rt := m.m.Protect(f)
	defer rt.Release()
	m.m.Reorder()
	ord = m.m.Order()
	seen = make(map[int]bool)
	for _, v := range ord {
		if v < 0 || v >= 4 || seen[v] {
			t.Fatalf("post-reorder order %v is not a permutation", ord)
		}
		seen[v] = true
	}
}

func TestNodeLimitDuringReorderIsSafe(t *testing.T) {
	// A swap that would exceed the limit must abort cleanly, leaving every
	// rooted function intact.
	m := wrap(t, New(8))
	f := orderSensitive(m, 4)
	rt := m.m.Protect(f)
	defer rt.Release()
	m.m.GC()
	m.m.SetNodeLimit(m.m.NumNodes() - 2) // no headroom at all
	m.m.Reorder()
	assign := make([]bool, 8)
	assign[1], assign[5] = true, true
	if !m.Eval(f, assign) {
		t.Error("function broken after limited reorder")
	}
}
