package bdd

import "sync"

// DefaultPoolSize is the free-list capacity a Pool uses when NewPool is
// given a non-positive size.
const DefaultPoolSize = 8

// Pool is a bounded warm pool of managers for request-per-computation
// workloads (the pserve daemon): instead of allocating a node store, unique
// tables and a computed table per request, a manager is drawn with Get,
// Reset to the request's variable count and kernel limits, and handed back
// with Put (usually via Manager.Recycle or prob.Model.Release) once the
// request's results have been serialized. Reset reuses the backing storage
// of every internal structure, so a warm manager costs no allocation churn
// beyond what the new computation itself grows.
//
// The pool is safe for concurrent Get/Put; the managers it hands out keep
// the usual single-goroutine contract. The free list is bounded: Put on a
// full pool discards the manager to the garbage collector instead of
// growing without limit.
type Pool struct {
	mu    sync.Mutex
	free  []*Manager
	max   int
	stats PoolStats
}

// PoolStats counts the pool's traffic since creation.
type PoolStats struct {
	// Reuses counts Gets answered from the free list; Allocs counts Gets
	// that had to allocate a fresh manager.
	Reuses int64
	Allocs int64
	// Puts counts managers parked back in the free list; Discards counts
	// Puts dropped because the pool was full (or the manager was already
	// parked).
	Puts     int64
	Discards int64
}

// NewPool returns a pool retaining at most max idle managers
// (DefaultPoolSize when max <= 0).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = DefaultPoolSize
	}
	return &Pool{max: max}
}

// Cap returns the pool's free-list capacity.
func (p *Pool) Cap() int { return p.max }

// Idle returns the number of managers currently parked in the pool.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats returns the traffic counters accumulated since creation.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Get returns a manager over numVars variables configured by cfg: a Reset
// pooled manager when one is idle, a fresh one otherwise. The cfg.Pool
// field is ignored (the receiver is the pool). The manager remembers its
// origin, so Recycle returns it here.
func (p *Pool) Get(numVars int, cfg Config) *Manager {
	cfg.Pool = nil
	p.mu.Lock()
	var m *Manager
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		m.pooled = false
		p.stats.Reuses++
	} else {
		p.stats.Allocs++
	}
	p.mu.Unlock()
	if m == nil {
		m = NewWith(numVars, cfg)
		m.pool = p
		return m
	}
	m.Reset(numVars, cfg)
	return m
}

// Put parks m for reuse. A full pool (or a double Put) discards the
// manager instead; either way the caller must not touch m afterwards.
// Put(nil) is a no-op.
func (p *Pool) Put(m *Manager) {
	if m == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if m.pooled || len(p.free) >= p.max {
		p.stats.Discards++
		return
	}
	m.pool = p
	m.pooled = true
	p.free = append(p.free, m)
	p.stats.Puts++
}

// Warm pre-populates the pool with up to n idle managers sized for
// numVars variables under cfg, so the first requests of a freshly booted
// daemon already reuse storage. Managers beyond the pool capacity are not
// created.
func (p *Pool) Warm(n, numVars int, cfg Config) {
	cfg.Pool = nil
	for i := 0; i < n; i++ {
		p.mu.Lock()
		full := len(p.free) >= p.max
		p.mu.Unlock()
		if full {
			return
		}
		m := NewWith(numVars, cfg)
		p.Put(m)
	}
}

// Recycle hands the manager back to the pool it was drawn from; on a
// manager allocated outside any pool (or nil) it is a no-op. The caller
// must be completely done with the manager and every Ref it produced:
// the next Get will Reset it, invalidating all state.
func (m *Manager) Recycle() {
	if m == nil || m.pool == nil {
		return
	}
	m.pool.Put(m)
}

// Reset returns the manager to its freshly constructed state over numVars
// variables under cfg, reusing the already-allocated node store, free
// list, unique tables, computed table and order arrays — the warm-pool
// fast path (no reallocation). Every outstanding Ref and Root is
// invalidated; statistics restart from zero. Behavior after Reset is
// indistinguishable from NewWith(numVars, cfg).
func (m *Manager) Reset(numVars int, cfg Config) {
	cfg = cfg.withDefaults()
	m.numVars = numVars
	m.termVar = int32(numVars)
	m.live = 0
	m.limit = cfg.NodeLimit
	m.cacheLimit = cfg.CacheLimit
	m.gcThreshold = cfg.GCThreshold
	m.gcAt = cfg.GCThreshold
	m.autoReorder = cfg.Reorder
	m.reorderThreshold = cfg.ReorderThreshold
	m.reorderAt = cfg.ReorderThreshold
	m.stats = Stats{}

	m.nodes = append(m.nodes[:0],
		node{varID: m.termVar}, // False
		node{varID: m.termVar}, // True
	)
	m.free = m.free[:0]
	if m.computed == nil {
		m.computed = make(map[cacheKey]Ref)
	} else {
		clear(m.computed)
	}
	if m.roots == nil {
		m.roots = make(map[Ref]int)
	} else {
		clear(m.roots)
	}

	if numVars <= cap(m.unique) {
		m.unique = m.unique[:numVars]
	} else {
		grown := make([]map[pair]Ref, numVars)
		copy(grown, m.unique)
		m.unique = grown
	}
	for v := range m.unique {
		if m.unique[v] == nil {
			m.unique[v] = make(map[pair]Ref)
		} else {
			clear(m.unique[v])
		}
	}

	if numVars+1 <= cap(m.var2level) {
		m.var2level = m.var2level[:numVars+1]
	} else {
		m.var2level = make([]int32, numVars+1)
	}
	if numVars <= cap(m.level2var) {
		m.level2var = m.level2var[:numVars]
	} else {
		m.level2var = make([]int32, numVars)
	}
	for v := 0; v <= numVars; v++ {
		m.var2level[v] = int32(v)
	}
	for l := 0; l < numVars; l++ {
		m.level2var[l] = int32(l)
	}
}
