// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table, the ite operator, and the linear-traversal
// signal-probability computation of Najm used by the paper (Equation 2):
//
//	P(f) = P(x)·P(f_x) + (1-P(x))·P(f_x̄)
//
// evaluated by one depth-first pass over the DAG with memoization.
//
// The kernel is production-grade: every constructive operation returns an
// error instead of panicking (a too-wide function yields a wrapped
// ErrNodeLimit), node storage is garbage-collected by mark-and-sweep from
// external root handles (Protect/Release), the computed table is size
// bounded and cleared on GC, and the variable order can be improved at run
// time by Rudell-style sifting (Reorder), either explicitly or
// automatically on live-node growth via Maintain.
//
// A Ref identifies a function, not a storage slot: garbage collection and
// reordering both preserve the Ref → function mapping of every live
// reference, so callers may hold Refs across GC (if rooted) and across
// reorder (always).
//
// The manager is not safe for concurrent use.
package bdd

import (
	"math"

	"powermap/internal/sop"
)

// Ref identifies a BDD node within a Manager. The constants False and True
// are valid in every manager.
type Ref int32

// Terminal references shared by all managers.
const (
	False Ref = 0
	True  Ref = 1
)

// node is one slot of the manager's node store. varID is the variable
// tested by the node (not its level: levels move under reordering);
// terminals use the sentinel m.termVar and free slots use varFree. rc
// counts references from parent nodes only — external references are
// tracked separately in the root table.
type node struct {
	varID  int32
	lo, hi Ref
	rc     int32
}

// varFree marks a reclaimed slot on the free list.
const varFree = int32(-1)

type pair struct {
	lo, hi Ref
}

type cacheKey struct {
	op      int32
	f, g, h Ref
}

const (
	opAnd = iota
	opOr
	opXor
	opIte
)

// Defaults applied by NewWith when the corresponding Config field is zero.
const (
	DefaultNodeLimit        = 4 << 20
	DefaultCacheLimit       = 1 << 20
	DefaultGCThreshold      = 1 << 16
	DefaultReorderThreshold = 1 << 13
)

// Config tunes a Manager. The zero value selects the defaults above with
// dynamic reordering disabled.
type Config struct {
	// NodeLimit caps live internal nodes; operations that would exceed it
	// return a wrapped ErrNodeLimit. 0 selects DefaultNodeLimit.
	NodeLimit int
	// CacheLimit bounds the computed-table entry count; when full the
	// table is cleared (counted in Stats.CacheResets). 0 selects
	// DefaultCacheLimit; negative leaves the table unbounded.
	CacheLimit int
	// GCThreshold is the live-node count at which Maintain first runs a
	// mark-and-sweep; after each GC the trigger doubles from the surviving
	// live count. 0 selects DefaultGCThreshold; negative disables
	// automatic GC (explicit GC calls still work).
	GCThreshold int
	// Reorder enables dynamic variable reordering by sifting in Maintain.
	Reorder bool
	// ReorderThreshold is the live-node count at which Maintain first
	// sifts; after each reorder the trigger doubles from the surviving
	// live count. 0 selects DefaultReorderThreshold.
	ReorderThreshold int
	// Pool, when non-nil, makes NewWith draw a Reset manager from the
	// shared warm pool instead of allocating fresh storage. Every layer
	// that threads a Config (prob, decomp, verify) then reuses pooled
	// node stores transparently; managers return to the pool via Recycle
	// (prob.Model.Release and friends). A fresh manager is still
	// allocated when the pool is empty.
	Pool *Pool
}

// withDefaults resolves the zero-value Config fields to the package
// defaults, exactly as NewWith and Reset apply them.
func (cfg Config) withDefaults() Config {
	if cfg.NodeLimit == 0 {
		cfg.NodeLimit = DefaultNodeLimit
	}
	if cfg.CacheLimit == 0 {
		cfg.CacheLimit = DefaultCacheLimit
	}
	if cfg.GCThreshold == 0 {
		cfg.GCThreshold = DefaultGCThreshold
	}
	if cfg.ReorderThreshold == 0 {
		cfg.ReorderThreshold = DefaultReorderThreshold
	}
	return cfg
}

// Stats counts the work a Manager has performed since creation. The
// counters are plain integers bumped on the hot paths (the manager is
// single-threaded by contract), cheap enough to stay always-on; callers
// that thread an obs.Scope flush them into the metrics registry.
type Stats struct {
	// Allocs is the number of nodes created (terminals excluded).
	Allocs int64
	// UniqueHits counts mk calls answered from the unique table (or
	// collapsed by the lo==hi reduction rule).
	UniqueHits int64
	// CacheHits / CacheMisses count computed-table lookups in the apply
	// and ite operators.
	CacheHits   int64
	CacheMisses int64
	// GCRuns counts mark-and-sweep passes; NodesFreed sums the nodes they
	// (and sifting's eager reclamation) returned to the free list.
	GCRuns     int64
	NodesFreed int64
	// Live is the current live internal node count; PeakLive its maximum
	// since creation.
	Live     int64
	PeakLive int64
	// ReorderRuns counts sifting passes; ReorderSwaps the adjacent-level
	// swaps they performed.
	ReorderRuns  int64
	ReorderSwaps int64
	// CacheResets counts computed-table clears (size bound or GC);
	// CacheEntries is the current occupancy.
	CacheResets  int64
	CacheEntries int64
}

// Manager owns a forest of ROBDD nodes over a dynamic variable order.
// Variable v initially has level v; Reorder may move it.
type Manager struct {
	nodes    []node
	free     []Ref
	unique   []map[pair]Ref // per-variable unique tables
	computed map[cacheKey]Ref
	roots    map[Ref]int

	var2level []int32 // variable -> level; entry numVars is the terminal level
	level2var []int32 // level -> variable

	numVars int
	termVar int32
	live    int // live internal nodes (terminals excluded)

	limit      int
	cacheLimit int

	gcThreshold      int
	gcAt             int
	autoReorder      bool
	reorderThreshold int
	reorderAt        int

	// pool is the warm pool this manager was drawn from (nil when it was
	// allocated directly); pooled flags a manager currently parked in it.
	pool   *Pool
	pooled bool

	stats Stats
}

// New returns a manager over numVars variables with the default
// configuration.
func New(numVars int) *Manager { return NewWith(numVars, Config{}) }

// NewWith returns a manager over numVars variables tuned by cfg. With
// cfg.Pool set the manager is drawn from the pool (Reset for numVars and
// cfg) rather than allocated, so repeated computations reuse node storage.
func NewWith(numVars int, cfg Config) *Manager {
	if cfg.Pool != nil {
		return cfg.Pool.Get(numVars, cfg)
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		computed:         make(map[cacheKey]Ref),
		roots:            make(map[Ref]int),
		numVars:          numVars,
		termVar:          int32(numVars),
		limit:            cfg.NodeLimit,
		cacheLimit:       cfg.CacheLimit,
		gcThreshold:      cfg.GCThreshold,
		gcAt:             cfg.GCThreshold,
		autoReorder:      cfg.Reorder,
		reorderThreshold: cfg.ReorderThreshold,
		reorderAt:        cfg.ReorderThreshold,
	}
	m.nodes = append(m.nodes,
		node{varID: m.termVar}, // False
		node{varID: m.termVar}, // True
	)
	m.unique = make([]map[pair]Ref, numVars)
	for v := range m.unique {
		m.unique[v] = make(map[pair]Ref)
	}
	m.var2level = make([]int32, numVars+1)
	m.level2var = make([]int32, numVars)
	for v := 0; v <= numVars; v++ {
		m.var2level[v] = int32(v)
	}
	for l := 0; l < numVars; l++ {
		m.level2var[l] = int32(l)
	}
	return m
}

// SetNodeLimit overrides the live-node limit. Operations that would exceed
// it return a wrapped ErrNodeLimit.
func (m *Manager) SetNodeLimit(n int) { m.limit = n }

// NumVars returns the number of variables in the manager's order.
func (m *Manager) NumVars() int { return m.numVars }

// NumNodes returns the number of live nodes, including the two terminals.
func (m *Manager) NumNodes() int { return m.live + 2 }

// Stats returns the work counters accumulated since creation.
func (m *Manager) Stats() Stats {
	st := m.stats
	st.Live = int64(m.live)
	st.CacheEntries = int64(len(m.computed))
	return st
}

// Order returns the current variable order: element l is the variable at
// level l (tested l-th from the top).
func (m *Manager) Order() []int {
	out := make([]int, m.numVars)
	for l, v := range m.level2var {
		out[l] = int(v)
	}
	return out
}

// level returns the order position of r's test variable; terminals sit
// below every variable.
func (m *Manager) level(r Ref) int32 { return m.var2level[m.nodes[r].varID] }

// Var returns the BDD for variable v.
func (m *Manager) Var(v int) (Ref, error) {
	if v < 0 || v >= m.numVars {
		return False, &VarRangeError{Var: v, NumVars: m.numVars}
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD for the negation of variable v.
func (m *Manager) NVar(v int) (Ref, error) {
	if v < 0 || v >= m.numVars {
		return False, &VarRangeError{Var: v, NumVars: m.numVars}
	}
	return m.mk(int32(v), True, False)
}

// mk returns the canonical node (v, lo, hi), reusing the unique table and
// applying the lo==hi reduction rule.
func (m *Manager) mk(v int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		m.stats.UniqueHits++
		return lo, nil
	}
	key := pair{lo, hi}
	if r, ok := m.unique[v][key]; ok {
		m.stats.UniqueHits++
		return r, nil
	}
	return m.alloc(v, lo, hi)
}

// alloc creates a fresh node, preferring recycled free-list slots. The
// internal reference counts of both children are bumped; the new node
// starts with rc 0 (nothing points at it yet).
func (m *Manager) alloc(v int32, lo, hi Ref) (Ref, error) {
	if m.live >= m.limit {
		return False, &NodeLimitError{Live: m.live, Limit: m.limit}
	}
	var r Ref
	if n := len(m.free); n > 0 {
		r = m.free[n-1]
		m.free = m.free[:n-1]
		m.nodes[r] = node{varID: v, lo: lo, hi: hi}
	} else {
		r = Ref(len(m.nodes))
		m.nodes = append(m.nodes, node{varID: v, lo: lo, hi: hi})
	}
	m.nodes[lo].rc++
	m.nodes[hi].rc++
	m.unique[v][pair{lo, hi}] = r
	m.live++
	if int64(m.live) > m.stats.PeakLive {
		m.stats.PeakLive = int64(m.live)
	}
	m.stats.Allocs++
	return r, nil
}

// cachePut inserts into the computed table, clearing it first when the
// size bound is reached (cheap amortized eviction; correctness is
// unaffected because entries are pure memoization).
func (m *Manager) cachePut(k cacheKey, r Ref) {
	if m.cacheLimit > 0 && len(m.computed) >= m.cacheLimit {
		m.computed = make(map[cacheKey]Ref)
		m.stats.CacheResets++
	}
	m.computed[k] = r
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) (Ref, error) { return m.Ite(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.apply(opAnd, f, g) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.apply(opOr, f, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) (Ref, error) { return m.apply(opXor, f, g) }

func (m *Manager) apply(op int32, f, g Ref) (Ref, error) {
	switch op {
	case opAnd:
		if f == False || g == False {
			return False, nil
		}
		if f == True {
			return g, nil
		}
		if g == True {
			return f, nil
		}
		if f == g {
			return f, nil
		}
	case opOr:
		if f == True || g == True {
			return True, nil
		}
		if f == False {
			return g, nil
		}
		if g == False {
			return f, nil
		}
		if f == g {
			return f, nil
		}
	case opXor:
		if f == False {
			return g, nil
		}
		if g == False {
			return f, nil
		}
		if f == g {
			return False, nil
		}
		if f == True && g == True {
			return False, nil
		}
	}
	// Normalize commutative operand order for cache hits.
	a, b := f, g
	if a > b {
		a, b = b, a
	}
	key := cacheKey{op: op, f: a, g: b}
	if r, ok := m.computed[key]; ok {
		m.stats.CacheHits++
		return r, nil
	}
	m.stats.CacheMisses++
	top := m.level(a)
	if l := m.level(b); l < top {
		top = l
	}
	tv := m.level2var[top]
	a0, a1 := m.cofactors(a, tv)
	b0, b1 := m.cofactors(b, tv)
	r0, err := m.apply(op, a0, b0)
	if err != nil {
		return False, err
	}
	r1, err := m.apply(op, a1, b1)
	if err != nil {
		return False, err
	}
	r, err := m.mk(tv, r0, r1)
	if err != nil {
		return False, err
	}
	m.cachePut(key, r)
	return r, nil
}

// cofactors returns f's children when f tests variable v, else (f, f).
func (m *Manager) cofactors(f Ref, v int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.varID != v {
		return f, f
	}
	return n.lo, n.hi
}

// Ite returns if-then-else(f, g, h) = f·g + f̄·h.
func (m *Manager) Ite(f, g, h Ref) (Ref, error) {
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := cacheKey{op: opIte, f: f, g: g, h: h}
	if r, ok := m.computed[key]; ok {
		m.stats.CacheHits++
		return r, nil
	}
	m.stats.CacheMisses++
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	tv := m.level2var[top]
	f0, f1 := m.cofactors(f, tv)
	g0, g1 := m.cofactors(g, tv)
	h0, h1 := m.cofactors(h, tv)
	r0, err := m.Ite(f0, g0, h0)
	if err != nil {
		return False, err
	}
	r1, err := m.Ite(f1, g1, h1)
	if err != nil {
		return False, err
	}
	r, err := m.mk(tv, r0, r1)
	if err != nil {
		return False, err
	}
	m.cachePut(key, r)
	return r, nil
}

// Restrict returns f with variable v fixed to the given value.
func (m *Manager) Restrict(f Ref, v int, value bool) (Ref, error) {
	if v < 0 || v >= m.numVars {
		return False, &VarRangeError{Var: v, NumVars: m.numVars}
	}
	cut := m.var2level[v]
	memo := make(map[Ref]Ref)
	var rec func(g Ref) (Ref, error)
	rec = func(g Ref) (Ref, error) {
		if m.level(g) > cut {
			return g, nil
		}
		if r, ok := memo[g]; ok {
			return r, nil
		}
		n := m.nodes[g]
		var r Ref
		if n.varID == int32(v) {
			if value {
				r = n.hi
			} else {
				r = n.lo
			}
		} else {
			lo, err := rec(n.lo)
			if err != nil {
				return False, err
			}
			hi, err := rec(n.hi)
			if err != nil {
				return False, err
			}
			r, err = m.mk(n.varID, lo, hi)
			if err != nil {
				return False, err
			}
		}
		memo[g] = r
		return r, nil
	}
	return rec(f)
}

// FromCover builds the BDD of an SOP cover where cover variable i is
// represented by inputs[i] (an arbitrary function, enabling composition of
// a local function with its fanins' global functions).
func (m *Manager) FromCover(f *sop.Cover, inputs []Ref) (Ref, error) {
	if f.NumVars != len(inputs) {
		return False, &CoverWidthError{CoverVars: f.NumVars, Inputs: len(inputs)}
	}
	result := False
	for _, c := range f.Cubes {
		term := True
		for v, l := range c {
			var err error
			switch l {
			case sop.Pos:
				term, err = m.And(term, inputs[v])
			case sop.Neg:
				var neg Ref
				neg, err = m.Not(inputs[v])
				if err == nil {
					term, err = m.And(term, neg)
				}
			}
			if err != nil {
				return False, err
			}
			if term == False {
				break
			}
		}
		var err error
		result, err = m.Or(result, term)
		if err != nil {
			return False, err
		}
		if result == True {
			break
		}
	}
	return result, nil
}

// Prob computes the probability that f evaluates to 1 when variable v is 1
// independently with probability p1[v] (Equation 2 of the paper), via a
// single memoized depth-first traversal. p1 is indexed by variable, not by
// order position, so it is stable under reordering.
func (m *Manager) Prob(f Ref, p1 []float64) (float64, error) {
	if len(p1) != m.numVars {
		return 0, &ProbLenError{Got: len(p1), Want: m.numVars}
	}
	memo := make(map[Ref]float64)
	var rec func(g Ref) float64
	rec = func(g Ref) float64 {
		switch g {
		case False:
			return 0
		case True:
			return 1
		}
		if p, ok := memo[g]; ok {
			return p
		}
		n := m.nodes[g]
		pv := p1[n.varID]
		p := pv*rec(n.hi) + (1-pv)*rec(n.lo)
		memo[g] = p
		return p
	}
	return rec(f), nil
}

// CondProb returns P(f=1 | g=1) under independent variable probabilities,
// computed as P(f·g)/P(g). It returns 0 when P(g)=0.
func (m *Manager) CondProb(f, g Ref, p1 []float64) (float64, error) {
	pg, err := m.Prob(g, p1)
	if err != nil {
		return 0, err
	}
	if pg == 0 {
		return 0, nil
	}
	fg, err := m.And(f, g)
	if err != nil {
		return 0, err
	}
	pfg, err := m.Prob(fg, p1)
	if err != nil {
		return 0, err
	}
	return pfg / pg, nil
}

// SatCount returns the number of satisfying assignments of f over all
// numVars variables.
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var rec func(g Ref, level int32) float64
	rec = func(g Ref, level int32) float64 {
		if g == False {
			return 0
		}
		gl := m.level(g)
		skip := math.Exp2(float64(gl - level))
		if g == True {
			return skip
		}
		if c, ok := memo[g]; ok {
			return skip * c
		}
		n := m.nodes[g]
		c := rec(n.lo, gl+1) + rec(n.hi, gl+1)
		memo[g] = c
		return skip * c
	}
	return rec(f, 0)
}

// Support returns the ascending variable indices appearing in f.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[int32]bool)
	visited := make(map[Ref]bool)
	var rec func(g Ref)
	rec = func(g Ref) {
		if g == False || g == True || visited[g] {
			return
		}
		visited[g] = true
		n := m.nodes[g]
		seen[n.varID] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(seen))
	for v := int32(0); v < int32(m.numVars); v++ {
		if seen[v] {
			out = append(out, int(v))
		}
	}
	return out
}

// Eval evaluates f under a full assignment indexed by variable.
func (m *Manager) Eval(f Ref, assign []bool) (bool, error) {
	if len(assign) != m.numVars {
		return false, &AssignLenError{Got: len(assign), Want: m.numVars}
	}
	for f != False && f != True {
		n := m.nodes[f]
		if assign[n.varID] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True, nil
}

// AnySat returns one satisfying assignment of f as a cube over all numVars
// variables (don't-care for variables not tested on the chosen path), or
// (nil, false) when f is unsatisfiable. The walk prefers the lo branch, so
// the witness is the lexicographically smallest path in {lo, hi} order; any
// non-False node has at least one branch leading to True by ROBDD
// reducedness.
func (m *Manager) AnySat(f Ref) (sop.Cube, bool) {
	if f == False {
		return nil, false
	}
	cube := sop.NewCube(m.numVars)
	for f != True {
		n := m.nodes[f]
		if n.lo != False {
			cube[n.varID] = sop.Neg
			f = n.lo
		} else {
			cube[n.varID] = sop.Pos
			f = n.hi
		}
	}
	return cube, true
}
