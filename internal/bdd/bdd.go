// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table, the ite operator, and the linear-traversal
// signal-probability computation of Najm used by the paper (Equation 2):
//
//	P(f) = P(x)·P(f_x) + (1-P(x))·P(f_x̄)
//
// evaluated by one depth-first pass over the DAG with memoization.
//
// The manager is not safe for concurrent use.
package bdd

import (
	"errors"
	"fmt"

	"powermap/internal/sop"
)

// Ref identifies a BDD node within a Manager. The constants False and True
// are valid in every manager.
type Ref int32

// Terminal references shared by all managers.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable level; terminals use maxLevel
	lo, hi Ref
}

const maxLevel = int32(1<<30 - 1)

type triple struct {
	level  int32
	lo, hi Ref
}

type cacheKey struct {
	op      int32
	f, g, h Ref
}

const (
	opAnd = iota
	opOr
	opXor
	opIte
)

// ErrNodeLimit is returned when an operation would grow the manager past its
// configured node limit.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Stats counts the work a Manager has performed since creation. The
// counters are plain integers bumped on the hot paths (the manager is
// single-threaded by contract), cheap enough to stay always-on; callers
// that thread an obs.Scope flush them into the metrics registry.
type Stats struct {
	// Allocs is the number of nodes created (terminals excluded).
	Allocs int64
	// UniqueHits counts mk calls answered from the unique table (or
	// collapsed by the lo==hi reduction rule).
	UniqueHits int64
	// CacheHits / CacheMisses count computed-table lookups in the apply
	// and ite operators.
	CacheHits   int64
	CacheMisses int64
}

// Manager owns a forest of ROBDD nodes over a fixed variable order.
// Variable i has level i; smaller levels are tested first.
type Manager struct {
	nodes    []node
	unique   map[triple]Ref
	computed map[cacheKey]Ref
	numVars  int
	limit    int
	stats    Stats
}

// New returns a manager over numVars variables with a default node limit
// suitable for the benchmark networks in this repository.
func New(numVars int) *Manager {
	m := &Manager{
		unique:   make(map[triple]Ref),
		computed: make(map[cacheKey]Ref),
		numVars:  numVars,
		limit:    4 << 20,
	}
	m.nodes = append(m.nodes,
		node{level: maxLevel}, // False
		node{level: maxLevel}, // True
	)
	return m
}

// SetNodeLimit overrides the default node limit. Operations that would
// exceed it panic with ErrNodeLimit wrapped in the panic value; the flow
// treats this as a fatal configuration error.
func (m *Manager) SetNodeLimit(n int) { m.limit = n }

// NumVars returns the number of variables in the manager's order.
func (m *Manager) NumVars() int { return m.numVars }

// NumNodes returns the number of live nodes, including the two terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Stats returns the work counters accumulated since creation.
func (m *Manager) Stats() Stats { return m.stats }

// Var returns the BDD for variable v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD for the negation of variable v.
func (m *Manager) NVar(v int) Ref {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return m.mk(int32(v), True, False)
}

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		m.stats.UniqueHits++
		return lo
	}
	key := triple{level, lo, hi}
	if r, ok := m.unique[key]; ok {
		m.stats.UniqueHits++
		return r
	}
	if len(m.nodes) >= m.limit {
		panic(ErrNodeLimit)
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[key] = r
	m.stats.Allocs++
	return r
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.Ite(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.apply(opAnd, f, g) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.apply(opOr, f, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.apply(opXor, f, g) }

func (m *Manager) apply(op int32, f, g Ref) Ref {
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return False
		}
		if f == True && g == True {
			return False
		}
	}
	// Normalize commutative operand order for cache hits.
	a, b := f, g
	if a > b {
		a, b = b, a
	}
	key := cacheKey{op: op, f: a, g: b}
	if r, ok := m.computed[key]; ok {
		m.stats.CacheHits++
		return r
	}
	m.stats.CacheMisses++
	lf, lg := m.level(a), m.level(b)
	top := lf
	if lg < top {
		top = lg
	}
	a0, a1 := m.cofactors(a, top)
	b0, b1 := m.cofactors(b, top)
	r := m.mk(top, m.apply(op, a0, b0), m.apply(op, a1, b1))
	m.computed[key] = r
	return r
}

func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	if m.level(f) != level {
		return f, f
	}
	n := m.nodes[f]
	return n.lo, n.hi
}

// Ite returns if-then-else(f, g, h) = f·g + f̄·h.
func (m *Manager) Ite(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := cacheKey{op: opIte, f: f, g: g, h: h}
	if r, ok := m.computed[key]; ok {
		m.stats.CacheHits++
		return r
	}
	m.stats.CacheMisses++
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.computed[key] = r
	return r
}

// Restrict returns f with variable v fixed to the given value.
func (m *Manager) Restrict(f Ref, v int, value bool) Ref {
	level := int32(v)
	var rec func(g Ref) Ref
	memo := make(map[Ref]Ref)
	rec = func(g Ref) Ref {
		if m.level(g) > level {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := m.nodes[g]
		var r Ref
		if n.level == level {
			if value {
				r = n.hi
			} else {
				r = n.lo
			}
		} else {
			r = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// FromCover builds the BDD of an SOP cover where cover variable i is
// represented by inputs[i] (an arbitrary function, enabling composition of a
// local function with its fanins' global functions).
func (m *Manager) FromCover(f *sop.Cover, inputs []Ref) Ref {
	if f.NumVars != len(inputs) {
		panic(fmt.Sprintf("bdd: cover width %d != input count %d", f.NumVars, len(inputs)))
	}
	result := False
	for _, c := range f.Cubes {
		term := True
		for v, l := range c {
			switch l {
			case sop.Pos:
				term = m.And(term, inputs[v])
			case sop.Neg:
				term = m.And(term, m.Not(inputs[v]))
			}
			if term == False {
				break
			}
		}
		result = m.Or(result, term)
		if result == True {
			break
		}
	}
	return result
}

// Prob computes the probability that f evaluates to 1 when variable v is 1
// independently with probability p1[v] (Equation 2 of the paper), via a
// single memoized depth-first traversal.
func (m *Manager) Prob(f Ref, p1 []float64) float64 {
	if len(p1) != m.numVars {
		panic(fmt.Sprintf("bdd: got %d probabilities for %d variables", len(p1), m.numVars))
	}
	memo := make(map[Ref]float64)
	var rec func(g Ref) float64
	rec = func(g Ref) float64 {
		switch g {
		case False:
			return 0
		case True:
			return 1
		}
		if p, ok := memo[g]; ok {
			return p
		}
		n := m.nodes[g]
		pv := p1[n.level]
		p := pv*rec(n.hi) + (1-pv)*rec(n.lo)
		memo[g] = p
		return p
	}
	return rec(f)
}

// SatCount returns the number of satisfying assignments of f over all
// numVars variables.
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var rec func(g Ref, level int32) float64
	rec = func(g Ref, level int32) float64 {
		if g == False {
			return 0
		}
		gl := m.level(g)
		if g == True {
			gl = int32(m.numVars)
		}
		skip := float64(int64(1) << uint(gl-level))
		if g == True {
			return skip
		}
		if c, ok := memo[g]; ok {
			return skip * c
		}
		n := m.nodes[g]
		c := rec(n.lo, n.level+1) + rec(n.hi, n.level+1)
		memo[g] = c
		return skip * c
	}
	return rec(f, 0)
}

// Support returns the ascending variable indices appearing in f.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[int32]bool)
	visited := make(map[Ref]bool)
	var rec func(g Ref)
	rec = func(g Ref) {
		if g == False || g == True || visited[g] {
			return
		}
		visited[g] = true
		n := m.nodes[g]
		seen[n.level] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(seen))
	for v := int32(0); v < int32(m.numVars); v++ {
		if seen[v] {
			out = append(out, int(v))
		}
	}
	return out
}

// Eval evaluates f under a full assignment.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != False && f != True {
		n := m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// AnySat returns one satisfying assignment of f as a cube over all numVars
// variables (don't-care for variables not tested on the chosen path), or
// (nil, false) when f is unsatisfiable. The walk prefers the lo branch, so
// the witness is the lexicographically smallest path in {lo, hi} order; any
// non-False node has at least one branch leading to True by ROBDD
// reducedness.
func (m *Manager) AnySat(f Ref) (sop.Cube, bool) {
	if f == False {
		return nil, false
	}
	cube := sop.NewCube(m.numVars)
	for f != True {
		n := m.nodes[f]
		if n.lo != False {
			cube[n.level] = sop.Neg
			f = n.lo
		} else {
			cube[n.level] = sop.Pos
			f = n.hi
		}
	}
	return cube, true
}

// CondProb returns P(f=1 | g=1) under independent variable probabilities,
// computed as P(f·g)/P(g). It returns 0 when P(g)=0.
func (m *Manager) CondProb(f, g Ref, p1 []float64) float64 {
	pg := m.Prob(g, p1)
	if pg == 0 {
		return 0
	}
	return m.Prob(m.And(f, g), p1) / pg
}
