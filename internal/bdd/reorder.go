package bdd

import "sort"

// Reorder improves the variable order by Rudell-style sifting: each
// variable (largest unique table first) is moved through every order
// position by adjacent-level swaps and parked where the live-node count
// was smallest. The Ref → function mapping of every live node is
// preserved — callers' Refs stay valid — only the order arrays and the
// nodes' internal structure change.
//
// A GC runs first so dead nodes do not distort size decisions, which
// invalidates unrooted Refs exactly as GC does; the computed table is
// cleared (cached results remain function-correct across reorders, but the
// tidy cache keeps peak memory honest after a large structural change).
func (m *Manager) Reorder() {
	if m.numVars < 2 {
		return
	}
	m.GC()

	// Sift biggest tables first: moving a fat variable early shrinks the
	// graph the following sifts have to push around.
	vars := make([]int32, m.numVars)
	for i := range vars {
		vars[i] = int32(i)
	}
	sort.Slice(vars, func(i, j int) bool {
		si, sj := len(m.unique[vars[i]]), len(m.unique[vars[j]])
		if si != sj {
			return si > sj
		}
		return vars[i] < vars[j]
	})
	for _, v := range vars {
		m.siftVar(v)
	}
	m.stats.ReorderRuns++
}

// siftVar moves variable v through the order and leaves it at the position
// that minimized live nodes. It walks toward the nearer end first, then
// sweeps to the other end, then returns to the best position seen. A
// growth budget aborts a direction that inflates the graph pathologically.
func (m *Manager) siftVar(v int32) {
	start := int(m.var2level[v])
	last := m.numVars - 1
	bestSize := m.live
	bestLevel := start
	budget := m.live + m.live/5 + 16

	// Move the variable at level l one step in dir (+1 down, -1 up) by
	// swapping the pair of adjacent levels; track the best size seen.
	step := func(dir int) bool {
		l := int(m.var2level[v])
		swapLevel := l
		if dir < 0 {
			swapLevel = l - 1
		}
		if !m.swapAdjacent(swapLevel) {
			return false
		}
		if m.live < bestSize {
			bestSize = m.live
			bestLevel = int(m.var2level[v])
		}
		return m.live <= budget
	}

	downFirst := last-start <= start
	dirs := [2]int{-1, +1}
	if downFirst {
		dirs = [2]int{+1, -1}
	}
	for _, dir := range dirs {
		for {
			l := int(m.var2level[v])
			if (dir > 0 && l >= last) || (dir < 0 && l <= 0) {
				break
			}
			if !step(dir) {
				break
			}
		}
	}
	// Return to the best position.
	for int(m.var2level[v]) > bestLevel {
		if !m.swapAdjacent(int(m.var2level[v]) - 1) {
			break
		}
	}
	for int(m.var2level[v]) < bestLevel {
		if !m.swapAdjacent(int(m.var2level[v])) {
			break
		}
	}
}

// swapAdjacent exchanges the variables at levels l and l+1, rewriting in
// place every level-l node that depends on both. Let u be the variable at
// level l and v below it. A u-node with no v-child commutes untouched —
// only its level changes. A u-node f = (u, lo, hi) with a v-child is
// rewritten as
//
//	f = (v, (u, f00, f10), (u, f01, f11))
//
// where fij is the cofactor of f under u=i, v=j. The rewritten node always
// depends on u (its v-cofactors differ in u by construction, else f would
// not have tested u), so reinserting it into unique[v] cannot collide with
// a pre-existing v-node, and reusing f's slot keeps every parent Ref valid.
// Children orphaned by the rewrite are reclaimed eagerly via deref.
//
// Returns false (order unchanged) if the transient node growth could
// exceed the manager's node limit.
func (m *Manager) swapAdjacent(l int) bool {
	if l < 0 || l+1 >= m.numVars {
		return false
	}
	u := m.level2var[l]
	v := m.level2var[l+1]

	// Collect the u-nodes that must be rewritten, in deterministic order
	// (map iteration is randomized; Ref order is allocation order).
	affected := make([]Ref, 0, len(m.unique[u]))
	for _, r := range m.unique[u] {
		n := m.nodes[r]
		if m.nodes[n.lo].varID == v || m.nodes[n.hi].varID == v {
			affected = append(affected, r)
		}
	}
	// Worst case each rewrite allocates two fresh u-nodes.
	if m.live+2*len(affected) > m.limit {
		return false
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	for _, r := range affected {
		delete(m.unique[u], pair{m.nodes[r].lo, m.nodes[r].hi})
	}
	for _, r := range affected {
		n := m.nodes[r]
		f00, f01 := m.cofactors(n.lo, v)
		f10, f11 := m.cofactors(n.hi, v)
		// Keep the grandchildren alive through the rewrite even if the
		// old children die.
		m.nodes[f00].rc++
		m.nodes[f01].rc++
		m.nodes[f10].rc++
		m.nodes[f11].rc++
		m.deref(n.lo)
		m.deref(n.hi)
		a := m.mkSwap(u, f00, f10)
		b := m.mkSwap(u, f01, f11)
		m.nodes[f00].rc--
		m.nodes[f01].rc--
		m.nodes[f10].rc--
		m.nodes[f11].rc--
		m.nodes[r] = node{varID: v, lo: a, hi: b, rc: m.nodes[r].rc}
		m.nodes[a].rc++
		m.nodes[b].rc++
		m.unique[v][pair{a, b}] = r
		m.stats.ReorderSwaps++
	}
	m.level2var[l], m.level2var[l+1] = v, u
	m.var2level[u], m.var2level[v] = int32(l+1), int32(l)
	return true
}

// mkSwap is mk for swapAdjacent's rewrites: the headroom check in
// swapAdjacent guarantees allocation cannot fail, and the free list
// (refilled by deref) absorbs most of the transient growth.
func (m *Manager) mkSwap(v int32, lo, hi Ref) Ref {
	if lo == hi {
		m.stats.UniqueHits++
		return lo
	}
	if r, ok := m.unique[v][pair{lo, hi}]; ok {
		m.stats.UniqueHits++
		return r
	}
	var r Ref
	if n := len(m.free); n > 0 {
		r = m.free[n-1]
		m.free = m.free[:n-1]
		m.nodes[r] = node{varID: v, lo: lo, hi: hi}
	} else {
		r = Ref(len(m.nodes))
		m.nodes = append(m.nodes, node{varID: v, lo: lo, hi: hi})
	}
	m.nodes[lo].rc++
	m.nodes[hi].rc++
	m.unique[v][pair{lo, hi}] = r
	m.live++
	if int64(m.live) > m.stats.PeakLive {
		m.stats.PeakLive = int64(m.live)
	}
	m.stats.Allocs++
	return r
}

// deref drops one internal reference from r and eagerly reclaims it (and
// recursively its children) once no parents and no roots hold it. Eager
// reclamation keeps sifting's size signal honest: dead intermediate nodes
// would otherwise mask genuine improvements until the next GC.
func (m *Manager) deref(r Ref) {
	if r == False || r == True {
		return
	}
	m.nodes[r].rc--
	if m.nodes[r].rc > 0 || m.roots[r] > 0 {
		return
	}
	n := m.nodes[r]
	delete(m.unique[n.varID], pair{n.lo, n.hi})
	m.nodes[r] = node{varID: varFree}
	m.free = append(m.free, r)
	m.live--
	m.stats.NodesFreed++
	m.deref(n.lo)
	m.deref(n.hi)
}
