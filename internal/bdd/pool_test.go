package bdd

import "testing"

// buildParity builds the n-variable parity function and returns its
// satisfying-assignment count (2^(n-1)) alongside manager stats, as a
// fingerprint of the computation.
func buildParity(t *testing.T, m *Manager, n int) float64 {
	t.Helper()
	f := False
	for v := 0; v < n; v++ {
		x, err := m.Var(v)
		if err != nil {
			t.Fatalf("Var(%d): %v", v, err)
		}
		f, err = m.Xor(f, x)
		if err != nil {
			t.Fatalf("Xor: %v", err)
		}
	}
	return m.SatCount(f)
}

// TestResetMatchesFresh proves a Reset manager is indistinguishable from a
// freshly constructed one: same results, same statistics, empty state.
func TestResetMatchesFresh(t *testing.T) {
	cfg := Config{NodeLimit: 1 << 12, GCThreshold: 64}
	fresh := NewWith(8, cfg)
	want := buildParity(t, fresh, 8)
	wantStats := fresh.Stats()

	m := NewWith(12, Config{})
	buildParity(t, m, 12)
	m.Protect(True)
	m.Reset(8, cfg)

	if m.NumVars() != 8 {
		t.Fatalf("NumVars after Reset = %d, want 8", m.NumVars())
	}
	if m.NumNodes() != 2 {
		t.Fatalf("NumNodes after Reset = %d, want 2 (terminals only)", m.NumNodes())
	}
	if m.NumRoots() != 0 {
		t.Fatalf("NumRoots after Reset = %d, want 0", m.NumRoots())
	}
	if got := buildParity(t, m, 8); got != want {
		t.Fatalf("parity SatCount after Reset = %v, want %v", got, want)
	}
	if got := m.Stats(); got != wantStats {
		t.Fatalf("stats after Reset diverge from fresh manager:\n got %+v\nwant %+v", got, wantStats)
	}
	// The reused manager enforces the new config's node limit.
	m.Reset(4, Config{NodeLimit: 1})
	if _, err := m.Var(0); err != nil {
		t.Fatalf("Var(0) under NodeLimit 1: %v", err)
	}
	if _, err := m.Var(1); err == nil || !IsNodeLimit(err) {
		t.Fatalf("Var(1) under NodeLimit 1 after Reset: err = %v, want node-limit", err)
	}
}

// TestResetGrowsAndShrinks exercises variable-count changes across Resets,
// including regrowing past a shrunken width (stale per-variable unique
// tables must come back empty).
func TestResetGrowsAndShrinks(t *testing.T) {
	m := NewWith(16, Config{})
	buildParity(t, m, 16)
	for _, n := range []int{4, 10, 16, 20, 3} {
		m.Reset(n, Config{})
		fresh := NewWith(n, Config{})
		want := buildParity(t, fresh, n)
		if got := buildParity(t, m, n); got != want {
			t.Fatalf("Reset(%d): SatCount = %v, want %v", n, got, want)
		}
		if gs, ws := m.Stats(), fresh.Stats(); gs != ws {
			t.Fatalf("Reset(%d): stats %+v, want %+v", n, gs, ws)
		}
	}
}

func TestPoolReuseAndBounds(t *testing.T) {
	p := NewPool(1)
	m1 := p.Get(6, Config{})
	buildParity(t, m1, 6)
	m2 := p.Get(6, Config{})
	if m1 == m2 {
		t.Fatal("pool handed out the same manager twice while both leased")
	}
	m1.Recycle()
	if p.Idle() != 1 {
		t.Fatalf("Idle after one Recycle = %d, want 1", p.Idle())
	}
	m2.Recycle() // pool full: discarded
	if p.Idle() != 1 {
		t.Fatalf("Idle after over-capacity Recycle = %d, want 1", p.Idle())
	}
	m3 := p.Get(9, Config{NodeLimit: 1 << 10})
	if m3 != m1 {
		t.Fatal("Get did not reuse the recycled manager")
	}
	if m3.NumVars() != 9 || m3.NumNodes() != 2 {
		t.Fatalf("reused manager not Reset: vars=%d nodes=%d", m3.NumVars(), m3.NumNodes())
	}
	// Double-Recycle must not park the manager twice.
	m3.Recycle()
	m3.Recycle()
	if p.Idle() != 1 {
		t.Fatalf("Idle after double Recycle = %d, want 1", p.Idle())
	}
	st := p.Stats()
	if st.Reuses != 1 || st.Allocs != 2 || st.Puts != 2 || st.Discards != 2 {
		t.Fatalf("stats = %+v, want Reuses 1, Allocs 2, Puts 2, Discards 2", st)
	}
}

// TestConfigPoolDrawsFromPool proves the Config.Pool seam: NewWith with a
// pooled config reuses recycled storage, which is how prob/decomp/verify
// pick up the daemon's warm pool without call-site changes.
func TestConfigPoolDrawsFromPool(t *testing.T) {
	p := NewPool(2)
	p.Warm(2, 8, Config{})
	if p.Idle() != 2 {
		t.Fatalf("Idle after Warm = %d, want 2", p.Idle())
	}
	m := NewWith(8, Config{Pool: p, NodeLimit: 1 << 12})
	if p.Idle() != 1 {
		t.Fatalf("Idle after pooled NewWith = %d, want 1", p.Idle())
	}
	buildParity(t, m, 8)
	m.Recycle()
	if p.Idle() != 2 {
		t.Fatalf("Idle after Recycle = %d, want 2", p.Idle())
	}
	if st := p.Stats(); st.Reuses != 1 {
		t.Fatalf("Reuses = %d, want 1", st.Reuses)
	}
	// A nil-pool manager's Recycle is a no-op.
	NewWith(4, Config{}).Recycle()
}
