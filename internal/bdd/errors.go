package bdd

import (
	"errors"
	"fmt"
)

// ErrNodeLimit is the sentinel matched by errors.Is when an operation would
// grow the manager past its configured node limit. The concrete error in
// the chain is a *NodeLimitError carrying the limit and live-node count.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// NodeLimitError reports an operation aborted because the manager reached
// its live-node limit. It matches ErrNodeLimit under errors.Is.
type NodeLimitError struct {
	// Live is the number of live internal nodes when the limit tripped.
	Live int
	// Limit is the configured ceiling.
	Limit int
}

func (e *NodeLimitError) Error() string {
	return fmt.Sprintf("bdd: node limit exceeded (%d live nodes, limit %d)", e.Live, e.Limit)
}

// Is makes errors.Is(err, ErrNodeLimit) succeed on wrapped NodeLimitErrors.
func (e *NodeLimitError) Is(target error) bool { return target == ErrNodeLimit }

// IsNodeLimit reports whether err is (or wraps) a node-limit failure.
func IsNodeLimit(err error) bool { return errors.Is(err, ErrNodeLimit) }

// VarRangeError reports a variable index outside [0, NumVars).
type VarRangeError struct {
	Var     int
	NumVars int
}

func (e *VarRangeError) Error() string {
	return fmt.Sprintf("bdd: variable %d out of range [0,%d)", e.Var, e.NumVars)
}

// CoverWidthError reports a FromCover call whose cover width disagrees with
// the number of input functions supplied.
type CoverWidthError struct {
	CoverVars int
	Inputs    int
}

func (e *CoverWidthError) Error() string {
	return fmt.Sprintf("bdd: cover width %d != input count %d", e.CoverVars, e.Inputs)
}

// ProbLenError reports a probability vector whose length disagrees with the
// manager's variable count.
type ProbLenError struct {
	Got  int
	Want int
}

func (e *ProbLenError) Error() string {
	return fmt.Sprintf("bdd: got %d probabilities for %d variables", e.Got, e.Want)
}

// AssignLenError reports an Eval assignment whose length disagrees with the
// manager's variable count.
type AssignLenError struct {
	Got  int
	Want int
}

func (e *AssignLenError) Error() string {
	return fmt.Sprintf("bdd: got %d assignment values for %d variables", e.Got, e.Want)
}
