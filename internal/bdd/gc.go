package bdd

// Root is an external handle keeping a function alive across garbage
// collection. Roots are reference-counted per Ref: protecting the same Ref
// twice requires two Releases.
type Root struct {
	m   *Manager
	ref Ref
}

// Protect registers r as a GC root and returns its handle. Terminals are
// accepted (they are never collected) so callers need no special casing.
func (m *Manager) Protect(r Ref) *Root {
	m.roots[r]++
	return &Root{m: m, ref: r}
}

// Ref returns the protected reference.
func (rt *Root) Ref() Ref { return rt.ref }

// Release drops the handle's protection. Releasing twice is a no-op.
func (rt *Root) Release() {
	if rt.m == nil {
		return
	}
	m, r := rt.m, rt.ref
	rt.m = nil
	if m.roots[r] > 1 {
		m.roots[r]--
	} else {
		delete(m.roots, r)
	}
}

// NumRoots returns the number of distinct protected references.
func (m *Manager) NumRoots() int { return len(m.roots) }

// GC reclaims every node unreachable from the root set by mark-and-sweep,
// clears the computed table (its entries may name dead nodes), and rebuilds
// internal reference counts for the survivors. Refs of unrooted functions
// are invalidated; rooted Refs survive unchanged.
func (m *Manager) GC() {
	marked := make([]bool, len(m.nodes))
	marked[False], marked[True] = true, true
	stack := make([]Ref, 0, len(m.roots))
	for r := range m.roots {
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if marked[r] {
			continue
		}
		marked[r] = true
		n := m.nodes[r]
		if !marked[n.lo] {
			stack = append(stack, n.lo)
		}
		if !marked[n.hi] {
			stack = append(stack, n.hi)
		}
	}
	freed := int64(0)
	for i := range m.nodes {
		m.nodes[i].rc = 0
	}
	for i := 2; i < len(m.nodes); i++ {
		r := Ref(i)
		n := m.nodes[r]
		if n.varID == varFree {
			continue
		}
		if !marked[r] {
			delete(m.unique[n.varID], pair{n.lo, n.hi})
			m.nodes[r] = node{varID: varFree}
			m.free = append(m.free, r)
			m.live--
			freed++
			continue
		}
		m.nodes[n.lo].rc++
		m.nodes[n.hi].rc++
	}
	if len(m.computed) > 0 {
		m.computed = make(map[cacheKey]Ref)
		m.stats.CacheResets++
	}
	m.stats.GCRuns++
	m.stats.NodesFreed += freed
}

// Maintain runs the manager's housekeeping when growth thresholds are hit:
// a GC sweep once live nodes pass the GC trigger, then (when dynamic
// reordering is enabled) a sifting pass once they pass the reorder trigger.
// After each action its trigger is rearmed at double the surviving live
// count, so housekeeping cost stays amortized-constant per allocation.
//
// Contract: the caller must hold Root handles for every Ref it intends to
// use afterwards — Maintain may collect anything unrooted and may change
// the variable order. Call it between logical work items (e.g. between
// network nodes when building global BDDs), never with loose intermediate
// Refs in hand.
func (m *Manager) Maintain() {
	if m.gcThreshold > 0 && m.live >= m.gcAt {
		m.GC()
		m.gcAt = maxInt(m.gcThreshold, 2*m.live)
	}
	if m.autoReorder && m.live >= m.reorderAt {
		m.Reorder()
		m.reorderAt = maxInt(m.reorderThreshold, 2*m.live)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
