package timing

import (
	"math"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/network"
)

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

const chainBlif = `
.model chain
.inputs a b c d
.outputs y z
.names a b t1
11 1
.names t1 c t2
11 1
.names t2 d y
11 1
.names a b z
11 1
.end
`

func TestAnnotateUnitArrival(t *testing.T) {
	nw := mustParse(t, chainBlif)
	delay := AnnotateUnit(nw, UnitOptions{})
	if delay != 3 {
		t.Errorf("network delay = %v, want 3", delay)
	}
	if got := nw.NodeByName("t1").Arrival; got != 1 {
		t.Errorf("arrival(t1) = %v, want 1", got)
	}
	if got := nw.NodeByName("y").Arrival; got != 3 {
		t.Errorf("arrival(y) = %v, want 3", got)
	}
}

func TestAnnotateUnitSlack(t *testing.T) {
	nw := mustParse(t, chainBlif)
	AnnotateUnit(nw, UnitOptions{})
	// With default required = max arrival = 3, the chain is critical.
	for _, name := range []string{"t1", "t2", "y"} {
		if s := nw.NodeByName(name).Slack(); math.Abs(s) > 1e-12 {
			t.Errorf("slack(%s) = %v, want 0", name, s)
		}
	}
	// z finishes at 1 but is required at 3: slack 2.
	if s := nw.NodeByName("z").Slack(); math.Abs(s-2) > 1e-12 {
		t.Errorf("slack(z) = %v, want 2", s)
	}
	if ws := WorstSlack(nw); math.Abs(ws) > 1e-12 {
		t.Errorf("worst slack = %v, want 0", ws)
	}
}

func TestAnnotateUnitNegativeSlack(t *testing.T) {
	nw := mustParse(t, chainBlif)
	AnnotateUnit(nw, UnitOptions{PORequired: map[string]float64{"y": 2, "z": 2}})
	if s := nw.NodeByName("y").Slack(); math.Abs(s-(-1)) > 1e-12 {
		t.Errorf("slack(y) = %v, want -1", s)
	}
	if ws := WorstSlack(nw); math.Abs(ws-(-1)) > 1e-12 {
		t.Errorf("worst slack = %v, want -1", ws)
	}
}

func TestAnnotateUnitPIArrival(t *testing.T) {
	nw := mustParse(t, chainBlif)
	delay := AnnotateUnit(nw, UnitOptions{PIArrival: map[string]float64{"d": 5}})
	// d arrives at 5, so y arrives at 6.
	if delay != 6 {
		t.Errorf("delay = %v, want 6", delay)
	}
}

func TestAnnotateUnitDefaultRequired(t *testing.T) {
	nw := mustParse(t, chainBlif)
	AnnotateUnit(nw, UnitOptions{DefaultRequired: 10})
	if s := nw.NodeByName("y").Slack(); math.Abs(s-7) > 1e-12 {
		t.Errorf("slack(y) = %v, want 7", s)
	}
}

func TestAnnotateUnitNoOutputs(t *testing.T) {
	// A network with no outputs has zero delay by definition.
	nw := network.New("empty")
	nw.AddPI("a")
	if delay := AnnotateUnit(nw, UnitOptions{}); delay != 0 {
		t.Errorf("delay = %v, want 0", delay)
	}
}

func TestSlackDistributionMixedRequired(t *testing.T) {
	// Listing only one output in PORequired leaves the others on the
	// default (latest arrival), so slack distributes per output cone:
	// the y cone carries the explicit -1 violation while z stays relaxed.
	nw := mustParse(t, chainBlif)
	AnnotateUnit(nw, UnitOptions{PORequired: map[string]float64{"y": 2}})
	for name, want := range map[string]float64{"y": -1, "t2": -1, "t1": -1, "z": 2} {
		if s := nw.NodeByName(name).Slack(); math.Abs(s-want) > 1e-12 {
			t.Errorf("slack(%s) = %v, want %v", name, s, want)
		}
	}
	if ws := WorstSlack(nw); math.Abs(ws-(-1)) > 1e-12 {
		t.Errorf("worst slack = %v, want -1", ws)
	}
	// t1 feeds both cones and must take the tighter (negative) requirement.
	if r := nw.NodeByName("t1").Required; math.Abs(r-0) > 1e-12 {
		t.Errorf("required(t1) = %v, want 0", r)
	}
}

func TestRequiredMinOverFanouts(t *testing.T) {
	// A node feeding two paths takes the tighter required time.
	text := `
.model fan
.inputs a b
.outputs y z
.names a b t
11 1
.names t y
1 1
.names t u
0 1
.names u z
1 1
.end
`
	nw := mustParse(t, text)
	AnnotateUnit(nw, UnitOptions{})
	// t arrives at 1; y at 2, z at 3; default required = 3.
	// Required(t) = min(required(y)-1, required(u)-1) = min(2, 1) = 1.
	tn := nw.NodeByName("t")
	if tn.Required != 1 {
		t.Errorf("required(t) = %v, want 1", tn.Required)
	}
	if s := tn.Slack(); math.Abs(s) > 1e-12 {
		t.Errorf("slack(t) = %v, want 0", s)
	}
}
