// Package timing implements the unit-delay timing analysis used by the
// technology-decomposition driver (paper Section 2.3): arrival times
// propagate forward from primary inputs, required times propagate backward
// from primary outputs, and slack is their difference. The paper argues the
// unit-delay model is the sensible choice before mapping, since the mapped
// netlist's structure will differ substantially from the NAND-decomposed
// network; the pin-dependent library delay model (Equation 14) is applied
// after mapping by the mapper package.
package timing

import (
	"context"
	"math"

	"powermap/internal/network"
	"powermap/internal/obs"
)

// UnitOptions configures AnnotateUnit.
type UnitOptions struct {
	// Obs receives timing metrics (annotate runs, nodes visited, network
	// depth, worst slack). Nil disables instrumentation.
	Obs *obs.Scope
	// PIArrival gives arrival times at primary inputs by name; missing
	// inputs default to 0.
	PIArrival map[string]float64
	// PORequired gives required times at primary outputs by name. When nil
	// or missing an output, the output's required time defaults to
	// DefaultRequired; when DefaultRequired is 0 too, the latest arrival
	// over all outputs is used (zero-slack normalization).
	PORequired map[string]float64
	// DefaultRequired is the required time applied to outputs not listed in
	// PORequired. Zero means "latest output arrival".
	DefaultRequired float64
}

// AnnotateUnit computes unit-delay Arrival and Required annotations for
// every node reachable from the outputs and returns the maximum arrival
// time over the primary outputs (the network delay).
func AnnotateUnit(nw *network.Network, opt UnitOptions) float64 {
	return AnnotateUnitContext(context.Background(), nw, opt)
}

// AnnotateUnitContext is AnnotateUnit with the caller's context, so the
// timing span files under the context's telemetry track and labels (the
// computation itself is context-free and never blocks).
func AnnotateUnitContext(ctx context.Context, nw *network.Network, opt UnitOptions) float64 {
	span := opt.Obs.StartCtx(ctx, "timing.annotate")
	defer span.End()
	order := nw.TopoOrder()
	span.SetAttr("nodes", len(order))
	opt.Obs.Counter("timing.annotate_runs").Inc()
	opt.Obs.Counter("timing.nodes_annotated").Add(int64(len(order)))
	for _, n := range order {
		if n.IsSource() {
			a := 0.0
			if opt.PIArrival != nil {
				a = opt.PIArrival[n.Name]
			}
			n.Arrival = a
			continue
		}
		worst := math.Inf(-1)
		for _, f := range n.Fanin {
			if f.Arrival > worst {
				worst = f.Arrival
			}
		}
		n.Arrival = worst + 1
	}
	maxOut := math.Inf(-1)
	for _, o := range nw.Outputs {
		if o.Driver.Arrival > maxOut {
			maxOut = o.Driver.Arrival
		}
	}
	if len(nw.Outputs) == 0 {
		maxOut = 0
	}

	// Required times: initialize to +inf, clip at outputs, sweep backward.
	for _, n := range order {
		n.Required = math.Inf(1)
	}
	for _, o := range nw.Outputs {
		req, ok := 0.0, false
		if opt.PORequired != nil {
			req, ok = opt.PORequired[o.Name]
		}
		if !ok {
			req = opt.DefaultRequired
			if req == 0 {
				req = maxOut
			}
		}
		if req < o.Driver.Required {
			o.Driver.Required = req
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.IsSource() {
			continue
		}
		for _, f := range n.Fanin {
			if r := n.Required - 1; r < f.Required {
				f.Required = r
			}
		}
	}
	// Sources also need required times for slack reporting.
	worstSlack := math.Inf(1)
	for _, n := range order {
		if math.IsInf(n.Required, 1) {
			n.Required = maxOut
		}
		if s := n.Slack(); s < worstSlack {
			worstSlack = s
		}
	}
	opt.Obs.Gauge("timing.depth").Set(maxOut)
	if len(order) > 0 {
		opt.Obs.Gauge("timing.worst_slack").Set(worstSlack)
	}
	return maxOut
}

// WorstSlack returns the minimum slack over all annotated nodes reachable
// from the outputs. Call AnnotateUnit first.
func WorstSlack(nw *network.Network) float64 {
	worst := math.Inf(1)
	for _, n := range nw.TopoOrder() {
		if s := n.Slack(); s < worst {
			worst = s
		}
	}
	return worst
}
