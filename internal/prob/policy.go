package prob

import (
	"fmt"

	"powermap/internal/network"
)

// Engine selects how switching activities are computed: the exact global
// BDD model of this package, or the bit-parallel Monte-Carlo sampling
// engine of internal/sim. The Auto engine decides per network: exact below
// a node-count threshold, sampling above — and, when an exact build still
// runs into bdd.ErrNodeLimit, falls back to sampling instead of failing.
type Engine int

const (
	// Exact always builds the exact BDD probability model (the zero value:
	// existing callers keep their behavior).
	Exact Engine = iota
	// Sampling always uses the bit-parallel sampling engine.
	Sampling
	// Auto picks exact for networks at or below the policy threshold and
	// sampling above it, with a sampling fallback on bdd.ErrNodeLimit.
	Auto
)

// String names the engine as the CLI flags spell it.
func (e Engine) String() string {
	switch e {
	case Exact:
		return "exact"
	case Sampling:
		return "sample"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// DefaultAutoThreshold is the Auto node-count threshold when
// Policy.AutoThreshold is zero. The bundled benchmark suite sits far below
// it, so Auto preserves exact results there by default; networks beyond it
// are the regime where global BDDs stop fitting node limits.
const DefaultAutoThreshold = 4096

// Policy is the activity-engine decision: which engine to run, and where
// Auto draws the exact/sampling line. The zero value is the historical
// behavior (always exact).
type Policy struct {
	Engine Engine
	// AutoThreshold is the reachable-node count above which Auto selects
	// sampling (0 selects DefaultAutoThreshold).
	AutoThreshold int
}

// Decide resolves the policy for a concrete network: the returned engine
// is Exact or Sampling, never Auto.
func (p Policy) Decide(s network.Stats) Engine {
	switch p.Engine {
	case Sampling:
		return Sampling
	case Auto:
		th := p.AutoThreshold
		if th <= 0 {
			th = DefaultAutoThreshold
		}
		if s.Nodes > th {
			return Sampling
		}
		return Exact
	default:
		return Exact
	}
}
