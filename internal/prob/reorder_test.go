package prob_test

import (
	"context"
	"math"
	"testing"

	"powermap/internal/bdd"
	"powermap/internal/circuits"
	"powermap/internal/huffman"
	"powermap/internal/prob"
	"powermap/internal/verify"
)

// reorderCfg uses thresholds low enough that GC and sifting actually fire
// on benchmark-sized circuits, so the invariance claim is exercised for
// real and not vacuously (with default thresholds none of the suite
// circuits ever trigger a reorder).
var reorderCfg = bdd.Config{GCThreshold: 256, Reorder: true, ReorderThreshold: 256}

// TestReorderInvariance proves dynamic reordering is semantics-free: for
// every suite benchmark, signal probabilities computed with sifting on
// must match the fixed-order values exactly (to float tolerance), and the
// reordering manager must still prove the circuit equivalent to itself
// under the verification oracle.
func TestReorderInvariance(t *testing.T) {
	ctx := context.Background()
	for _, b := range circuits.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			base := b.Build()
			if _, err := prob.ComputeWith(ctx, base, nil, huffman.Static, bdd.Config{}); err != nil {
				t.Fatalf("fixed-order compute: %v", err)
			}
			sifted := b.Build()
			model, err := prob.ComputeWith(ctx, sifted, nil, huffman.Static, reorderCfg)
			if err != nil {
				t.Fatalf("reordered compute: %v", err)
			}
			want := map[string][2]float64{}
			for _, n := range base.TopoOrder() {
				want[n.Name] = [2]float64{n.Prob1, n.Activity}
			}
			for _, n := range sifted.TopoOrder() {
				w, ok := want[n.Name]
				if !ok {
					t.Fatalf("node %s only exists in the reordered build", n.Name)
				}
				if math.Abs(n.Prob1-w[0]) > 1e-12 || math.Abs(n.Activity-w[1]) > 1e-12 {
					t.Errorf("node %s drifted under reordering: P(1) %.15f vs %.15f, E %.15f vs %.15f",
						n.Name, n.Prob1, w[0], n.Activity, w[1])
				}
			}
			st := model.Manager().Stats()
			t.Logf("%s: peak %d live nodes, %d gc runs, %d reorder runs (%d swaps)",
				b.Name, st.PeakLive, st.GCRuns, st.ReorderRuns, st.ReorderSwaps)
			if err := verify.EquivalentWith(ctx, base, sifted, reorderCfg); err != nil {
				t.Errorf("oracle rejects self-equivalence under reordering: %v", err)
			}
		})
	}
}
