package prob

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/sop"
)

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

const andOrBlif = `
.model andor
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
`

func TestComputeBasic(t *testing.T) {
	nw := mustParse(t, andOrBlif)
	m, err := Compute(nw, map[string]float64{"a": 0.5, "b": 0.5, "c": 0.5}, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	tn := nw.NodeByName("t")
	if math.Abs(tn.Prob1-0.25) > 1e-12 {
		t.Errorf("P(t) = %v, want 0.25", tn.Prob1)
	}
	y := nw.NodeByName("y")
	// P(y) = P(t or c) = 0.25 + 0.5 - 0.125 = 0.625.
	if math.Abs(y.Prob1-0.625) > 1e-12 {
		t.Errorf("P(y) = %v, want 0.625", y.Prob1)
	}
	if math.Abs(y.Activity-2*0.625*0.375) > 1e-12 {
		t.Errorf("E(y) = %v, want %v", y.Activity, 2*0.625*0.375)
	}
	_ = m
}

func TestComputeStyles(t *testing.T) {
	nw := mustParse(t, andOrBlif)
	if _, err := Compute(nw, nil, huffman.DominoP); err != nil {
		t.Fatal(err)
	}
	y := nw.NodeByName("y")
	if math.Abs(y.Activity-y.Prob1) > 1e-12 {
		t.Errorf("domino-p activity %v != prob1 %v", y.Activity, y.Prob1)
	}
	if _, err := Compute(nw, nil, huffman.DominoN); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y.Activity-(1-y.Prob1)) > 1e-12 {
		t.Errorf("domino-n activity %v != 1-prob1 %v", y.Activity, 1-y.Prob1)
	}
}

func TestReconvergenceExact(t *testing.T) {
	// y = (a AND b) OR (a AND c): naive independence would mis-estimate;
	// the BDD model must be exact. P = P(a)(P(b)+P(c)-P(b)P(c)).
	text := `
.model reconv
.inputs a b c
.outputs y
.names a b t1
11 1
.names a c t2
11 1
.names t1 t2 y
1- 1
-1 1
.end
`
	nw := mustParse(t, text)
	pa, pb, pc := 0.5, 0.3, 0.7
	_, err := Compute(nw, map[string]float64{"a": pa, "b": pb, "c": pc}, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	want := pa * (pb + pc - pb*pc)
	if got := nw.NodeByName("y").Prob1; math.Abs(got-want) > 1e-12 {
		t.Errorf("P(y) = %v, want %v", got, want)
	}
}

func TestDefaultProbability(t *testing.T) {
	nw := mustParse(t, andOrBlif)
	if _, err := Compute(nw, nil, huffman.Static); err != nil {
		t.Fatal(err)
	}
	for _, pi := range nw.PIs {
		if math.Abs(pi.Prob1-0.5) > 1e-12 {
			t.Errorf("PI %s prob = %v, want 0.5", pi.Name, pi.Prob1)
		}
	}
}

func TestBadProbability(t *testing.T) {
	nw := mustParse(t, andOrBlif)
	if _, err := Compute(nw, map[string]float64{"a": 1.5}, huffman.Static); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestJointProb(t *testing.T) {
	nw := mustParse(t, andOrBlif)
	m, err := Compute(nw, nil, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	a, b := nw.NodeByName("a"), nw.NodeByName("b")
	jab, err := m.JointProb(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(jab-0.25) > 1e-12 {
		t.Errorf("P(a,b) = %v, want 0.25", jab)
	}
	// Joint of t with a: t implies a, so P(t,a) = P(t) = 0.25.
	tn := nw.NodeByName("t")
	jta, err := m.JointProb(tn, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(jta-0.25) > 1e-12 {
		t.Errorf("P(t,a) = %v, want 0.25", jta)
	}
}

func TestRegister(t *testing.T) {
	nw := mustParse(t, andOrBlif)
	m, err := Compute(nw, nil, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	// Add a new AND node over a and c after the model was computed.
	and := sop.NewCover(2)
	and.AddCube(sop.Cube{sop.Pos, sop.Pos})
	n := nw.AddNode("late", []*network.Node{nw.NodeByName("a"), nw.NodeByName("c")}, and)
	if _, err := m.Register(n); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Prob1-0.25) > 1e-12 {
		t.Errorf("registered node prob = %v, want 0.25", n.Prob1)
	}
	// Chained registration: node over the fresh node.
	inv := sop.FromLiteral(1, 0, false)
	n2 := nw.AddNode("late2", []*network.Node{n}, inv)
	if _, err := m.Register(n2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n2.Prob1-0.75) > 1e-12 {
		t.Errorf("chained registered node prob = %v, want 0.75", n2.Prob1)
	}
}

func TestEquivalentOutputs(t *testing.T) {
	a := mustParse(t, andOrBlif)
	b := a.Duplicate()
	ok, err := EquivalentOutputs(context.Background(), a, b)
	if err != nil || !ok {
		t.Fatalf("duplicate not equivalent: %v %v", ok, err)
	}
	// Change b's output function.
	y := b.NodeByName("y")
	y.Func = sop.FromLiteral(2, 0, true)
	ok, err = EquivalentOutputs(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("different networks reported equivalent")
	}
}

func TestProbMatchesSimulation(t *testing.T) {
	// Property: BDD probability equals weighted truth-table enumeration on
	// random small networks.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		nw := randomNetwork(r, 4, 5)
		pp := map[string]float64{}
		probs := make([]float64, 4)
		for i, pi := range nw.PIs {
			probs[i] = r.Float64()
			pp[pi.Name] = probs[i]
		}
		if _, err := Compute(nw, pp, huffman.Static); err != nil {
			t.Fatal(err)
		}
		for _, o := range nw.Outputs {
			want := 0.0
			for bits := 0; bits < 16; bits++ {
				assign := map[string]bool{}
				w := 1.0
				for i, pi := range nw.PIs {
					v := bits>>i&1 != 0
					assign[pi.Name] = v
					if v {
						w *= probs[i]
					} else {
						w *= 1 - probs[i]
					}
				}
				if nw.Eval(assign)[o.Name] {
					want += w
				}
			}
			if math.Abs(o.Driver.Prob1-want) > 1e-9 {
				t.Fatalf("output %s: BDD prob %v, simulated %v", o.Name, o.Driver.Prob1, want)
			}
		}
	}
}

func TestModelAccessors(t *testing.T) {
	nw := mustParse(t, andOrBlif)
	m, err := Compute(nw, nil, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	y := nw.NodeByName("y")
	p, err := m.Prob1(y)
	if err != nil || math.Abs(p-y.Prob1) > 1e-12 {
		t.Errorf("Prob1 accessor: %v %v", p, err)
	}
	ref, ok := m.Global(y)
	if !ok {
		t.Fatal("no global BDD for y")
	}
	if got := m.Prob1OfRef(ref); math.Abs(got-p) > 1e-12 {
		t.Errorf("Prob1OfRef = %v, want %v", got, p)
	}
	if got := m.ActivityOfRef(ref); math.Abs(got-2*p*(1-p)) > 1e-12 {
		t.Errorf("ActivityOfRef = %v", got)
	}
	pp := m.PIProbs()
	if len(pp) != 3 {
		t.Errorf("PIProbs len %d", len(pp))
	}
	// Accessors on an unknown node fail cleanly.
	other := mustParse(t, andOrBlif)
	if _, err := m.Prob1(other.NodeByName("y")); err == nil {
		t.Error("foreign node accepted by Prob1")
	}
	if _, err := m.JointProb(y, other.NodeByName("y")); err == nil {
		t.Error("foreign node accepted by JointProb")
	}
	if _, err := m.JointProb(other.NodeByName("y"), y); err == nil {
		t.Error("foreign node accepted by JointProb (first arg)")
	}
	if _, ok := m.Global(other.NodeByName("y")); ok {
		t.Error("foreign node has a global BDD")
	}
}

func TestEquivalentOutputsMismatches(t *testing.T) {
	a := mustParse(t, andOrBlif)
	// Different PI count.
	b := mustParse(t, ".model x\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
	if _, err := EquivalentOutputs(context.Background(), a, b); err == nil {
		t.Error("PI count mismatch accepted")
	}
	// Different PI names.
	c := mustParse(t, ".model x\n.inputs a b q\n.outputs y\n.names a b q y\n111 1\n.end\n")
	if _, err := EquivalentOutputs(context.Background(), a, c); err == nil {
		t.Error("PI name mismatch accepted")
	}
	// Different output names.
	d := mustParse(t, ".model x\n.inputs a b c\n.outputs z\n.names a b c z\n111 1\n.end\n")
	if _, err := EquivalentOutputs(context.Background(), a, d); err == nil {
		t.Error("output name mismatch accepted")
	}
}

func TestPIProbsDeclarationOrder(t *testing.T) {
	// PIs are declared a, b, c but the output cover lists them c, b, a, so
	// the DFS-from-outputs variable order is the reverse of declaration
	// order. PIProbs must still come back in declaration order; before the
	// remap through piIndex it returned the level-ordered vector verbatim.
	nw := mustParse(t, ".model p\n.inputs a b c\n.outputs y\n.names c b a y\n111 1\n.end\n")
	m, err := Compute(nw, map[string]float64{"a": 0.1, "b": 0.2, "c": 0.3}, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 0.3}
	got := m.PIProbs()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("PIProbs = %v, want %v (declaration order)", got, want)
		}
	}
}

func TestDFSOrderCoversUnreachablePIs(t *testing.T) {
	// An unreachable PI must still get a variable level.
	nw := mustParse(t, andOrBlif)
	nw.AddPI("unused")
	m, err := Compute(nw, nil, huffman.Static)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.PIProbs()); got != 4 {
		t.Errorf("PIProbs len %d, want 4", got)
	}
}

// randomNetwork builds a random small network for property tests.
func randomNetwork(r *rand.Rand, npi, nnodes int) *network.Network {
	nw := network.New("rand")
	pool := make([]*network.Node, 0, npi+nnodes)
	for i := 0; i < npi; i++ {
		pool = append(pool, nw.AddPI(nw.FreshName("pi")))
	}
	for i := 0; i < nnodes; i++ {
		k := 1 + r.Intn(3)
		fanins := make([]*network.Node, 0, k)
		seen := map[*network.Node]bool{}
		for len(fanins) < k {
			f := pool[r.Intn(len(pool))]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		f := sop.NewCover(len(fanins))
		for c := 0; c < 1+r.Intn(2); c++ {
			cube := sop.NewCube(len(fanins))
			for v := range cube {
				cube[v] = sop.Lit(r.Intn(3))
			}
			f.AddCube(cube)
		}
		f.Minimize()
		if f.IsZero() {
			f = sop.FromLiteral(len(fanins), 0, true)
		}
		pool = append(pool, nw.AddNode(nw.FreshName("n"), fanins, f))
	}
	nw.MarkOutput("out", pool[len(pool)-1])
	return nw
}
