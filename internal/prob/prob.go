// Package prob computes exact zero-delay signal probabilities and switching
// activities for every node of a Boolean network, in the model of
// Section 1.4 of the paper: global ROBDDs over the primary inputs are built
// for every node, probabilities are evaluated by the Equation 2 linear
// traversal, and switching activity follows the design style:
//
//	static CMOS:  E = P(0→1) + P(1→0) = 2·p·(1-p)   (Equation 3)
//	domino p:     E = P(sig = 1)
//	domino n:     E = P(sig = 0)
//
// Primary inputs are assumed spatially and temporally independent;
// reconvergent fanout inside the network is handled exactly by the BDDs.
// This is the repository's stand-in for the Ghosh et al. power estimator
// the paper used.
//
// The model owns a garbage-collected BDD manager: every node's global
// function is rooted for the model's lifetime, the manager's Maintain hook
// runs between nodes (collecting build intermediates and, when the caller
// enabled it via bdd.Config.Reorder, sifting the variable order), and a
// network too wide for the configured node limit surfaces as a wrapped
// bdd.ErrNodeLimit instead of a panic.
package prob

import (
	"context"
	"fmt"

	"powermap/internal/bdd"
	"powermap/internal/huffman"
	"powermap/internal/network"
)

// Model holds the global BDDs and probabilities of one network.
type Model struct {
	Style   huffman.Style
	mgr     *bdd.Manager
	global  map[*network.Node]bdd.Ref
	pis     []*network.Node
	piProb  []float64
	piIndex map[*network.Node]int
}

// wideHint is appended to node-limit errors everywhere the prob layer can
// hit one, so CLI users see the remedy, not just the failure.
const wideHint = "network too wide for exact global BDDs; raise the node limit, enable reordering, or fall back to approximate activities"

// Compute builds global BDDs for every node reachable from the outputs of
// nw and annotates each node's Prob1 and Activity fields. piProb supplies
// P(pi=1) by input name; missing inputs default to 0.5.
//
// The initial BDD variable order follows a depth-first traversal of the
// network from the outputs (the standard structural ordering heuristic),
// which keeps related inputs adjacent and the diagrams small; dynamic
// reordering (ComputeWith with Config.Reorder) can improve it further at
// run time.
func Compute(nw *network.Network, piProb map[string]float64, style huffman.Style) (*Model, error) {
	return ComputeContext(context.Background(), nw, piProb, style)
}

// ComputeContext is Compute with cancellation: the per-node BDD build loop
// checks ctx between nodes, so a deadline aborts the estimate promptly even
// on wide networks. One BDD manager is shared across the whole model, so
// the build itself stays sequential.
func ComputeContext(ctx context.Context, nw *network.Network, piProb map[string]float64, style huffman.Style) (*Model, error) {
	return ComputeWith(ctx, nw, piProb, style, bdd.Config{})
}

// ComputeWith is ComputeContext with an explicit BDD kernel configuration
// (node limit, GC thresholds, dynamic reordering). When cfg.Pool is set the
// manager is drawn warm from that pool and every failure path recycles it,
// so an over-budget or cancelled request never leaks pool capacity.
func ComputeWith(ctx context.Context, nw *network.Network, piProb map[string]float64, style huffman.Style, cfg bdd.Config) (model *Model, err error) {
	m := &Model{
		Style:   style,
		mgr:     bdd.NewWith(len(nw.PIs), cfg),
		global:  make(map[*network.Node]bdd.Ref),
		pis:     append([]*network.Node(nil), nw.PIs...),
		piIndex: make(map[*network.Node]int),
		piProb:  make([]float64, len(nw.PIs)),
	}
	defer func() {
		if err != nil {
			m.Release()
		}
	}()
	for pi, level := range dfsVariableOrder(nw) {
		m.piIndex[pi] = level
		p, ok := piProb[pi.Name]
		if !ok {
			p = 0.5
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("prob: P(%s)=%v outside [0,1]", pi.Name, p)
		}
		m.piProb[level] = p
	}
	for _, n := range nw.TopoOrder() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("prob: %w", err)
		}
		if err := m.build(n); err != nil {
			return nil, err
		}
		// All node globals are rooted, so housekeeping between nodes is
		// safe: GC reclaims only build intermediates, reordering (when
		// enabled) preserves every Ref's function.
		m.mgr.Maintain()
	}
	return m, nil
}

// build constructs and roots n's global BDD and annotates the node.
func (m *Model) build(n *network.Node) error {
	var r bdd.Ref
	var err error
	switch n.Kind {
	case network.PI:
		r, err = m.mgr.Var(m.piIndex[n])
	default:
		inputs := make([]bdd.Ref, len(n.Fanin))
		for i, f := range n.Fanin {
			g, ok := m.global[f]
			if !ok {
				return fmt.Errorf("prob: fanin %s of %s visited out of order", f.Name, n.Name)
			}
			inputs[i] = g
		}
		r, err = m.mgr.FromCover(n.Func, inputs)
	}
	if err != nil {
		return wideErr("building global BDD of "+n.Name, err)
	}
	m.global[n] = r
	m.mgr.Protect(r) // rooted for the model's lifetime
	p1, err := m.mgr.Prob(r, m.piProb)
	if err != nil {
		return fmt.Errorf("prob: %s: %w", n.Name, err)
	}
	n.Prob1 = p1
	n.Activity = m.activityOf(p1)
	return nil
}

// wideErr wraps kernel errors, attaching the too-wide remedy hint to
// node-limit failures so it survives to the CLI surface.
func wideErr(doing string, err error) error {
	if bdd.IsNodeLimit(err) {
		return fmt.Errorf("prob: %s: %w (%s)", doing, err, wideHint)
	}
	return fmt.Errorf("prob: %s: %w", doing, err)
}

// dfsVariableOrder assigns each primary input a BDD level by first
// encounter in a depth-first, fanin-first traversal from the outputs.
// Unreachable inputs take the remaining levels.
func dfsVariableOrder(nw *network.Network) map[*network.Node]int {
	order := make(map[*network.Node]int, len(nw.PIs))
	var visit func(n *network.Node)
	visited := make(map[*network.Node]bool)
	visit = func(n *network.Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		if n.Kind == network.PI {
			order[n] = len(order)
			return
		}
		for _, f := range n.Fanin {
			visit(f)
		}
	}
	for _, o := range nw.Outputs {
		visit(o.Driver)
	}
	for _, pi := range nw.PIs {
		if _, ok := order[pi]; !ok {
			order[pi] = len(order)
		}
	}
	return order
}

func (m *Model) activityOf(p1 float64) float64 {
	switch m.Style {
	case huffman.Static:
		return 2 * p1 * (1 - p1)
	case huffman.DominoP:
		return p1
	default:
		return 1 - p1
	}
}

// Manager exposes the underlying BDD manager (for equivalence checks).
func (m *Model) Manager() *bdd.Manager { return m.mgr }

// Release hands the model's BDD manager back to its warm pool (a no-op for
// managers allocated outside a pool) and poisons the model: every Ref it
// produced is invalid afterwards. Safe on nil and idempotent, so callers on
// error paths can release unconditionally.
func (m *Model) Release() {
	if m == nil || m.mgr == nil {
		return
	}
	m.mgr.Recycle()
	m.mgr = nil
	m.global = nil
}

// Global returns the global BDD of a node, or false when the node was not
// reachable when the model was computed.
func (m *Model) Global(n *network.Node) (bdd.Ref, bool) {
	r, ok := m.global[n]
	return r, ok
}

// Prob1 returns the exact 1-probability of a node's global function.
func (m *Model) Prob1(n *network.Node) (float64, error) {
	r, ok := m.global[n]
	if !ok {
		return 0, fmt.Errorf("prob: node %s has no global BDD", n.Name)
	}
	return m.mgr.Prob(r, m.piProb)
}

// ActivityOfRef returns the switching activity of an arbitrary global
// function under the model's style.
func (m *Model) ActivityOfRef(r bdd.Ref) float64 {
	return m.activityOf(m.Prob1OfRef(r))
}

// Prob1OfRef returns the 1-probability of an arbitrary global function.
// The model's own probability vector always matches its manager, so the
// traversal cannot fail.
func (m *Model) Prob1OfRef(r bdd.Ref) float64 {
	p, err := m.mgr.Prob(r, m.piProb)
	if err != nil {
		// Unreachable by construction; surface loudly in tests if the
		// invariant is ever broken rather than silently returning 0.
		panic(err)
	}
	return p
}

// JointProb returns P(a=1 ∧ b=1) exactly, used to seed the correlated
// decomposition algebra with pairwise joints of a node's fanins.
func (m *Model) JointProb(a, b *network.Node) (float64, error) {
	ra, ok := m.global[a]
	if !ok {
		return 0, fmt.Errorf("prob: node %s has no global BDD", a.Name)
	}
	rb, ok := m.global[b]
	if !ok {
		return 0, fmt.Errorf("prob: node %s has no global BDD", b.Name)
	}
	ab, err := m.mgr.And(ra, rb)
	if err != nil {
		return 0, wideErr(fmt.Sprintf("joint of %s and %s", a.Name, b.Name), err)
	}
	return m.mgr.Prob(ab, m.piProb)
}

// PIProbs returns the per-PI probability vector in PI declaration order.
// The internal vector is indexed by BDD variable (DFS encounter order from
// the outputs), which generally differs from declaration order, so each
// entry is remapped through the variable index.
func (m *Model) PIProbs() []float64 {
	out := make([]float64, len(m.pis))
	for i, pi := range m.pis {
		out[i] = m.piProb[m.piIndex[pi]]
	}
	return out
}

// Register makes the model aware of a node created after Compute, whose
// global function is the AND/OR combination of nodes already known to the
// model. It returns the node's global BDD. This is how technology
// decomposition keeps exact probabilities for the tree nodes it creates.
func (m *Model) Register(n *network.Node) (bdd.Ref, error) {
	if r, ok := m.global[n]; ok {
		return r, nil
	}
	inputs := make([]bdd.Ref, len(n.Fanin))
	for i, f := range n.Fanin {
		r, ok := m.global[f]
		if !ok {
			// Recurse: the fanin may itself be freshly created.
			var err error
			r, err = m.Register(f)
			if err != nil {
				return 0, fmt.Errorf("prob: registering %s: %w", n.Name, err)
			}
		}
		inputs[i] = r
	}
	if n.Func == nil {
		return 0, fmt.Errorf("prob: node %s has no function to register", n.Name)
	}
	if err := m.build(n); err != nil {
		return 0, err
	}
	return m.global[n], nil
}

// EquivalentOutputs checks that two networks over the same PIs compute
// identical output functions, by comparing global BDDs in one shared
// manager. Outputs are matched by name. The ctx is checked between nodes,
// so a deadline aborts the check mid-build.
func EquivalentOutputs(ctx context.Context, a, b *network.Network) (bool, error) {
	return EquivalentOutputsWith(ctx, a, b, bdd.Config{})
}

// EquivalentOutputsWith is EquivalentOutputs with an explicit BDD kernel
// configuration; an over-wide pair of networks yields a wrapped
// bdd.ErrNodeLimit instead of a panic.
func EquivalentOutputsWith(ctx context.Context, a, b *network.Network, cfg bdd.Config) (bool, error) {
	if len(a.PIs) != len(b.PIs) {
		return false, fmt.Errorf("prob: PI count mismatch %d vs %d", len(a.PIs), len(b.PIs))
	}
	index := make(map[string]int, len(a.PIs))
	for i, pi := range a.PIs {
		index[pi.Name] = i
	}
	mgr := bdd.NewWith(len(a.PIs), cfg)
	defer mgr.Recycle()
	build := func(nw *network.Network) (map[string]bdd.Ref, error) {
		global := make(map[*network.Node]bdd.Ref)
		for _, n := range nw.TopoOrder() {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("prob: %w", err)
			}
			var r bdd.Ref
			var err error
			if n.Kind == network.PI {
				i, ok := index[n.Name]
				if !ok {
					return nil, fmt.Errorf("prob: PI %s missing from reference network", n.Name)
				}
				r, err = mgr.Var(i)
			} else {
				inputs := make([]bdd.Ref, len(n.Fanin))
				for i, f := range n.Fanin {
					inputs[i] = global[f]
				}
				r, err = mgr.FromCover(n.Func, inputs)
			}
			if err != nil {
				return nil, wideErr("equivalence BDD of "+n.Name, err)
			}
			global[n] = r
			mgr.Protect(r)
			// Only GC between nodes here: output refs from the first
			// network must stay comparable to the second build's, and
			// reordering in a comparison manager buys nothing (the refs
			// are discarded immediately after the == checks).
			mgr.Maintain()
		}
		outs := make(map[string]bdd.Ref, len(nw.Outputs))
		for _, o := range nw.Outputs {
			outs[o.Name] = global[o.Driver]
		}
		return outs, nil
	}
	ao, err := build(a)
	if err != nil {
		return false, err
	}
	bo, err := build(b)
	if err != nil {
		return false, err
	}
	if len(ao) != len(bo) {
		return false, fmt.Errorf("prob: output count mismatch %d vs %d", len(ao), len(bo))
	}
	for name, ra := range ao {
		rb, ok := bo[name]
		if !ok {
			return false, fmt.Errorf("prob: output %s missing", name)
		}
		if ra != rb {
			return false, nil
		}
	}
	return true, nil
}
