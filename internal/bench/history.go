package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// HistorySchemaVersion identifies the BENCH_history.jsonl entry layout;
// bump it on any incompatible change so trend tooling can skip entries it
// does not understand.
const HistorySchemaVersion = 1

// TrendMetrics are the manifest metrics the trend ledger carries forward:
// the ordering-quality watermarks (ROADMAP item 4) and the sampling-engine
// speedup, each copied from the manifest when present.
var TrendMetrics = []string{
	"bdd.wide_peak_live_nodes",
	"bdd.wide_peak_live_nodes_reorder",
	"sim.sampling_speedup",
}

// HistoryEntry is one appended line of the BENCH_history.jsonl ledger: a
// flattened view of one manifest, keeping the per-phase minimum wall times
// and the trend metrics so bench trajectory queries never need the full
// manifests.
type HistoryEntry struct {
	Schema int    `json:"schema"`
	RunID  string `json:"run_id,omitempty"`
	Date   string `json:"date,omitempty"`
	GitRev string `json:"git_rev,omitempty"`
	Note   string `json:"note,omitempty"`
	WallNs int64  `json:"wall_ns"`
	// Phases maps phase name to its min-of-N wall time in nanoseconds.
	Phases  map[string]int64   `json:"phases,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// HistoryFromManifest flattens a manifest into a ledger entry.
func HistoryFromManifest(m *Manifest) HistoryEntry {
	e := HistoryEntry{
		Schema: HistorySchemaVersion,
		RunID:  m.RunID,
		Date:   m.Date,
		GitRev: m.GitRev,
		Note:   m.Note,
		WallNs: m.WallNs,
	}
	if len(m.Phases) > 0 {
		e.Phases = make(map[string]int64, len(m.Phases))
		for name, st := range m.Phases {
			e.Phases[name] = st.WallNs
		}
	}
	for _, k := range TrendMetrics {
		if v, ok := m.Metrics[k]; ok {
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[k] = v
		}
	}
	return e
}

// AppendHistoryFile appends one entry to the JSONL ledger at path, creating
// the file if missing. Appends are whole-line writes, so a ledger shared by
// sequential CI runs never interleaves partial entries.
func AppendHistoryFile(path string, e HistoryEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("bench: history entry: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("bench: history: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("bench: history: %w", err)
	}
	return f.Close()
}

// ReadHistoryFile reads the ledger at path, oldest first. Blank lines are
// skipped; entries from a newer schema are kept (their known fields still
// parse), so old tooling degrades gracefully instead of failing the read.
func ReadHistoryFile(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("bench: history %s:%d: %w", path, line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: history %s: %w", path, err)
	}
	return out, nil
}

// FormatTrend renders the newest `last` ledger entries (oldest first) as a
// GitHub-flavored markdown table with per-run deltas against the previous
// entry — the CI step summary's bench-trajectory view. Zero or negative
// last means all entries.
func FormatTrend(entries []HistoryEntry, last int) string {
	if len(entries) == 0 {
		return "no bench history yet\n"
	}
	if last > 0 && len(entries) > last {
		entries = entries[len(entries)-last:]
	}
	var b strings.Builder
	b.WriteString("| date | rev | wall (ms) | Δ wall | peak live nodes | peak live (reorder) | sampling speedup |\n")
	b.WriteString("|------|-----|----------:|-------:|----------------:|--------------------:|-----------------:|\n")
	for i, e := range entries {
		delta := "—"
		if i > 0 && entries[i-1].WallNs > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*float64(e.WallNs-entries[i-1].WallNs)/float64(entries[i-1].WallNs))
		}
		rev := e.GitRev
		if len(rev) > 9 {
			rev = rev[:9]
		}
		if rev == "" {
			rev = "—"
		}
		fmt.Fprintf(&b, "| %s | %s | %.1f | %s | %s | %s | %s |\n",
			orDash(e.Date), rev, float64(e.WallNs)/1e6, delta,
			metricCell(e, "bdd.wide_peak_live_nodes", "%.0f"),
			metricCell(e, "bdd.wide_peak_live_nodes_reorder", "%.0f"),
			metricCell(e, "sim.sampling_speedup", "%.1fx"))
	}
	// Name the slowest phases of the newest entry so a wall-time jump in
	// the table is immediately attributable without opening the manifest.
	newest := entries[len(entries)-1]
	if len(newest.Phases) > 0 {
		type pw struct {
			name string
			ns   int64
		}
		phases := make([]pw, 0, len(newest.Phases))
		for name, ns := range newest.Phases {
			phases = append(phases, pw{name, ns})
		}
		sort.Slice(phases, func(i, j int) bool {
			if phases[i].ns != phases[j].ns {
				return phases[i].ns > phases[j].ns
			}
			return phases[i].name < phases[j].name
		})
		if len(phases) > 5 {
			phases = phases[:5]
		}
		b.WriteString("\nslowest phases (latest run): ")
		for i, p := range phases {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %.1fms", p.name, float64(p.ns)/1e6)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func metricCell(e HistoryEntry, key, format string) string {
	v, ok := e.Metrics[key]
	if !ok {
		return "—"
	}
	return fmt.Sprintf(format, v)
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}
