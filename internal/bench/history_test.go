package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHistoryFromManifest(t *testing.T) {
	m := &Manifest{
		RunID:  "r1",
		Date:   "2026-08-07",
		GitRev: "abcdef1234567890",
		WallNs: 120_000_000,
		Phases: map[string]PhaseStat{
			"decompose": {Spans: 3, WallNs: 50_000_000},
			"map":       {Spans: 3, WallNs: 70_000_000},
		},
		Metrics: map[string]float64{
			"bdd.wide_peak_live_nodes": 4200,
			"sim.sampling_speedup":     3.5,
			"decomp.nodes_planned":     99, // not a trend metric: dropped
		},
	}
	e := HistoryFromManifest(m)
	if e.Schema != HistorySchemaVersion || e.RunID != "r1" || e.WallNs != 120_000_000 {
		t.Errorf("entry header wrong: %+v", e)
	}
	if e.Phases["map"] != 70_000_000 || e.Phases["decompose"] != 50_000_000 {
		t.Errorf("phase wall times not flattened: %+v", e.Phases)
	}
	if e.Metrics["bdd.wide_peak_live_nodes"] != 4200 || e.Metrics["sim.sampling_speedup"] != 3.5 {
		t.Errorf("trend metrics not copied: %+v", e.Metrics)
	}
	if _, ok := e.Metrics["decomp.nodes_planned"]; ok {
		t.Error("non-trend metric leaked into the ledger entry")
	}
}

func TestHistoryLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	entries := []HistoryEntry{
		{Schema: HistorySchemaVersion, RunID: "a", WallNs: 100, Phases: map[string]int64{"map": 60}},
		{Schema: HistorySchemaVersion, RunID: "b", WallNs: 110,
			Metrics: map[string]float64{"sim.sampling_speedup": 2.0}},
	}
	for _, e := range entries {
		if err := AppendHistoryFile(path, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadHistoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].RunID != "a" || got[1].RunID != "b" {
		t.Fatalf("round trip = %+v", got)
	}
	if got[1].Metrics["sim.sampling_speedup"] != 2.0 {
		t.Errorf("metrics lost in round trip: %+v", got[1])
	}

	// Blank lines are tolerated; a newer schema still parses (known fields
	// only), so old tooling reads ledgers written by future versions.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n{\"schema\": 99, \"run_id\": \"future\", \"wall_ns\": 7}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = ReadHistoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].RunID != "future" || got[2].Schema != 99 {
		t.Errorf("newer-schema entry not kept: %+v", got)
	}

	// A corrupt line fails with the file and line number in the error.
	if err := os.WriteFile(path, []byte("{\"schema\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistoryFile(path); err == nil || !strings.Contains(err.Error(), ":2") {
		t.Errorf("corrupt line error does not name the line: %v", err)
	}
}

func TestFormatTrend(t *testing.T) {
	if got := FormatTrend(nil, 5); !strings.Contains(got, "no bench history") {
		t.Errorf("empty ledger rendering: %q", got)
	}
	entries := []HistoryEntry{
		{Date: "2026-08-01", GitRev: "1111111111111111", WallNs: 100_000_000,
			Metrics: map[string]float64{"bdd.wide_peak_live_nodes": 4000}},
		{Date: "2026-08-02", GitRev: "2222222", WallNs: 150_000_000,
			Metrics: map[string]float64{"sim.sampling_speedup": 3.0},
			Phases:  map[string]int64{"map": 90_000_000, "decompose": 40_000_000, "eval": 10_000_000}},
	}
	out := FormatTrend(entries, 5)
	for _, want := range []string{
		"| date | rev |",
		"| 2026-08-01 | 111111111 |", // rev truncated to 9 chars
		"+50.0%",                     // delta vs previous run
		"4000",
		"3.0x",
		"slowest phases (latest run): map 90.0ms, decompose 40.0ms, eval 10.0ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trend table missing %q:\n%s", want, out)
		}
	}

	// The `last` window keeps the newest entries only.
	out = FormatTrend(entries, 1)
	if strings.Contains(out, "2026-08-01") {
		t.Errorf("last=1 window kept an older entry:\n%s", out)
	}
	if !strings.Contains(out, "| — |") {
		t.Errorf("windowed first row should have no delta:\n%s", out)
	}
}
