package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteManifest writes m as indented JSON.
func WriteManifest(w io.Writer, m *Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteManifestFile writes m to path, creating or truncating it.
func WriteManifestFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteManifest(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses a manifest and validates its schema version.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("bench: parse manifest: %w", err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: manifest schema v%d not supported (want v%d); regenerate the baseline", m.Schema, SchemaVersion)
	}
	return &m, nil
}

// ReadManifestFile reads a manifest from path. A missing file returns
// os.ErrNotExist (callers treat that as "no baseline yet").
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadManifest(f)
}
