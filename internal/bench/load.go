package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"powermap/internal/circuits"
	"powermap/internal/exec"
	"powermap/internal/serve"
)

// ServeSchemaVersion versions BENCH_serve.json; readers refuse manifests
// from an incompatible writer rather than misinterpret them.
const ServeSchemaVersion = 1

// LoadOptions configures RunLoad, the pserve load generator behind
// `pbench -load`.
type LoadOptions struct {
	// URL is the daemon base URL (e.g. http://localhost:8080).
	URL string
	// Concurrency is the number of in-flight requests the generator holds
	// open (default 8 — the acceptance floor).
	Concurrency int
	// Passes replays the circuit list this many times (default 2, so the
	// second pass measures the cache).
	Passes int
	// Circuits is the benchmark subset (default: the full bundled suite).
	Circuits []string
	// Method is the paper method every request asks for (default VI).
	Method string
	// Timeout bounds one HTTP request (default 5m: a cold full-suite pass
	// at high concurrency queues the big circuits behind the small ones).
	Timeout time.Duration
}

// PassStats is one replay pass of the circuit list.
type PassStats struct {
	Pass      int     `json:"pass"`
	Requests  int     `json:"requests"`
	CacheHits int     `json:"cache_hits"`
	WallNs    int64   `json:"wall_ns"`
	LatP50Ms  float64 `json:"lat_p50_ms"`
	LatP99Ms  float64 `json:"lat_p99_ms"`
}

// ServeManifest is the BENCH_serve.json payload: one load run against a
// live pserve, aggregated and per pass.
type ServeManifest struct {
	Schema      int      `json:"schema"`
	URL         string   `json:"url"`
	Concurrency int      `json:"concurrency"`
	Passes      int      `json:"passes"`
	Method      string   `json:"method"`
	Circuits    []string `json:"circuits"`

	Requests int `json:"requests"`
	// Failures counts transport-level errors (no HTTP status at all).
	Failures int `json:"failures"`
	// StatusCounts tallies responses by HTTP status code.
	StatusCounts map[string]int `json:"status_counts"`
	// Server5xx is the count of 5xx responses — the acceptance criterion
	// demands zero.
	Server5xx int `json:"server_5xx"`
	// CacheHits counts responses served from the daemon's result cache.
	CacheHits int `json:"cache_hits"`
	// Retries429 counts backpressure rounds: requests the daemon refused
	// with 429 that the generator retried (StatusCounts records only each
	// request's final status).
	Retries429 int `json:"retries_429"`

	WallNs int64 `json:"wall_ns"`
	// Throughput is completed requests per second over the whole run.
	Throughput float64 `json:"throughput_rps"`
	LatMeanMs  float64 `json:"lat_mean_ms"`
	LatP50Ms   float64 `json:"lat_p50_ms"`
	LatP99Ms   float64 `json:"lat_p99_ms"`
	LatMaxMs   float64 `json:"lat_max_ms"`

	PassStats []PassStats `json:"pass_stats"`
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Passes <= 0 {
		o.Passes = 2
	}
	if len(o.Circuits) == 0 {
		for _, b := range circuits.Suite() {
			o.Circuits = append(o.Circuits, b.Name)
		}
	}
	if o.Method == "" {
		o.Method = "VI"
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	return o
}

// loadResult is one request's outcome.
type loadResult struct {
	status  int // 0 = transport failure
	cached  bool
	lat     time.Duration
	retries int // 429 backpressure rounds before the final status
}

// RunLoad replays the configured circuits against a live pserve, Passes
// times at Concurrency in-flight requests, and aggregates latency and
// status statistics. Request failures are data, not errors: the only
// error returns are a malformed URL and context cancellation.
func RunLoad(ctx context.Context, opts LoadOptions) (*ServeManifest, error) {
	opts = opts.withDefaults()
	base := strings.TrimSuffix(opts.URL, "/")
	if !strings.Contains(base, "://") {
		return nil, fmt.Errorf("bench: load URL %q has no scheme (want e.g. http://localhost:8080)", opts.URL)
	}
	bodies := make([][]byte, len(opts.Circuits))
	for i, name := range opts.Circuits {
		body, err := json.Marshal(serve.Request{
			Circuit: name,
			Options: serve.Options{Method: opts.Method},
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	client := &http.Client{Timeout: opts.Timeout}
	m := &ServeManifest{
		Schema:       ServeSchemaVersion,
		URL:          base,
		Concurrency:  opts.Concurrency,
		Passes:       opts.Passes,
		Method:       opts.Method,
		Circuits:     opts.Circuits,
		StatusCounts: make(map[string]int),
	}
	var allLats []time.Duration
	start := time.Now()
	for pass := 1; pass <= opts.Passes; pass++ {
		results := make([]loadResult, len(bodies))
		passStart := time.Now()
		err := exec.ForEach(ctx, opts.Concurrency, len(bodies), func(ctx context.Context, i int) error {
			results[i] = post(ctx, client, base+"/synth", bodies[i])
			return ctx.Err()
		})
		if err != nil {
			return nil, fmt.Errorf("bench: load pass %d: %w", pass, err)
		}
		ps := PassStats{Pass: pass, Requests: len(results), WallNs: int64(time.Since(passStart))}
		var passLats []time.Duration
		for _, r := range results {
			m.Requests++
			m.Retries429 += r.retries
			if r.status == 0 {
				m.Failures++
				continue
			}
			m.StatusCounts[fmt.Sprint(r.status)]++
			if r.status >= 500 {
				m.Server5xx++
			}
			if r.cached {
				ps.CacheHits++
				m.CacheHits++
			}
			passLats = append(passLats, r.lat)
			allLats = append(allLats, r.lat)
		}
		ps.LatP50Ms = quantileMs(passLats, 0.50)
		ps.LatP99Ms = quantileMs(passLats, 0.99)
		m.PassStats = append(m.PassStats, ps)
	}
	m.WallNs = int64(time.Since(start))
	if m.WallNs > 0 {
		m.Throughput = float64(m.Requests) / (float64(m.WallNs) / 1e9)
	}
	if len(allLats) > 0 {
		var sum time.Duration
		max := allLats[0]
		for _, l := range allLats {
			sum += l
			if l > max {
				max = l
			}
		}
		m.LatMeanMs = float64(sum) / float64(len(allLats)) / 1e6
		m.LatMaxMs = float64(max) / 1e6
	}
	m.LatP50Ms = quantileMs(allLats, 0.50)
	m.LatP99Ms = quantileMs(allLats, 0.99)
	return m, nil
}

// maxRetries429 bounds the backpressure retry loop: with the capped 1 s
// backoff this gives the daemon well over a minute to free a slot before
// the generator records the 429 as the final status.
const maxRetries429 = 100

// post runs one synthesis request. A 429 is admission backpressure, not
// an answer: the generator retries with a linearly growing (1 s-capped)
// backoff so the suite completes even when the daemon's waiting room is
// far smaller than the generator's concurrency, and the recorded latency
// is the client-observed one including the waiting. A transport failure
// returns status 0.
func post(ctx context.Context, client *http.Client, url string, body []byte) loadResult {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		res := postOnce(ctx, client, url, body)
		res.retries = attempt
		res.lat = time.Since(start)
		if res.status != http.StatusTooManyRequests || attempt >= maxRetries429 {
			return res
		}
		backoff := time.Duration(attempt+1) * 50 * time.Millisecond
		if backoff > time.Second {
			backoff = time.Second
		}
		select {
		case <-ctx.Done():
			return res
		case <-time.After(backoff):
		}
	}
}

// postOnce is a single request round; lat and retries are filled by post.
func postOnce(ctx context.Context, client *http.Client, url string, body []byte) loadResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return loadResult{}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return loadResult{}
	}
	defer resp.Body.Close()
	var out serve.Response
	cached := false
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out) == nil {
		cached = out.Cached
	}
	io.Copy(io.Discard, resp.Body) // drain so the connection is reused
	return loadResult{status: resp.StatusCode, cached: cached}
}

// quantileMs is the nearest-rank q-quantile of lats, in milliseconds.
func quantileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / 1e6
}

// WriteServeManifestFile writes m to path as indented JSON.
func WriteServeManifestFile(path string, m *ServeManifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadServeManifestFile reads a BENCH_serve.json, refusing incompatible
// schema versions.
func ReadServeManifestFile(path string) (*ServeManifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m ServeManifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("bench: parse serve manifest: %w", err)
	}
	if m.Schema != ServeSchemaVersion {
		return nil, fmt.Errorf("bench: serve manifest schema v%d not supported (want v%d); regenerate it", m.Schema, ServeSchemaVersion)
	}
	return &m, nil
}
