package bench

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"powermap/internal/core"
)

func manifestPair() (baseline, current *Manifest) {
	baseline = &Manifest{
		Schema:   SchemaVersion,
		Circuits: []string{"x2"},
		Methods:  []string{"I"},
		WallNs:   100e6,
		Phases: map[string]PhaseStat{
			"decompose": {Spans: 1, WallNs: 40e6},
			"map":       {Spans: 1, WallNs: 50e6},
			"gone":      {Spans: 1, WallNs: 1e6},
		},
	}
	current = &Manifest{
		Schema:   SchemaVersion,
		Circuits: []string{"x2"},
		Methods:  []string{"I"},
		WallNs:   105e6,
		Phases: map[string]PhaseStat{
			"decompose": {Spans: 1, WallNs: 60e6}, // +50%: regression
			"map":       {Spans: 1, WallNs: 30e6}, // -40%: improvement
			"fresh":     {Spans: 1, WallNs: 5e6},  // new phase
		},
	}
	return baseline, current
}

func TestCompareRegressionAndImprovement(t *testing.T) {
	baseline, current := manifestPair()
	cmp := Compare(baseline, current, 25, 1)
	if cmp.Err != nil {
		t.Fatal(cmp.Err)
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Phase != "decompose" {
		t.Fatalf("regressions = %+v, want exactly decompose", regs)
	}
	if regs[0].Pct < 49 || regs[0].Pct > 51 {
		t.Errorf("decompose pct = %.1f, want ~50", regs[0].Pct)
	}
	// Worst regression sorts first.
	if cmp.Deltas[0].Phase != "decompose" {
		t.Errorf("deltas[0] = %+v, want decompose first", cmp.Deltas[0])
	}
	// The improvement is present but not a regression.
	var mapDelta *Delta
	for i := range cmp.Deltas {
		if cmp.Deltas[i].Phase == "map" {
			mapDelta = &cmp.Deltas[i]
		}
	}
	if mapDelta == nil || mapDelta.Regressed || mapDelta.Pct > -39 {
		t.Errorf("map delta = %+v, want ~-40%% not regressed", mapDelta)
	}
	if len(cmp.MissingInBaseline) != 1 || cmp.MissingInBaseline[0] != "fresh" {
		t.Errorf("MissingInBaseline = %v", cmp.MissingInBaseline)
	}
	if len(cmp.MissingInCurrent) != 1 || cmp.MissingInCurrent[0] != "gone" {
		t.Errorf("MissingInCurrent = %v", cmp.MissingInCurrent)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	baseline, current := manifestPair()
	// With the floor above every phase, nothing can regress.
	cmp := Compare(baseline, current, 25, 1e12)
	if cmp.Err != nil {
		t.Fatal(cmp.Err)
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Errorf("regressions above an impossible floor: %+v", regs)
	}
	// The default floor (50ms) still catches the 60ms decompose phase.
	cmp = Compare(baseline, current, 25, 0)
	if len(cmp.Regressions()) != 1 {
		t.Errorf("default floor missed the real regression: %+v", cmp.Deltas)
	}
}

func TestCompareIdenticalManifests(t *testing.T) {
	baseline, _ := manifestPair()
	cmp := Compare(baseline, baseline, 0, 0)
	if cmp.Err != nil {
		t.Fatal(cmp.Err)
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Errorf("self-comparison reported regressions: %+v", regs)
	}
	for _, d := range cmp.Deltas {
		if d.Pct != 0 {
			t.Errorf("self-comparison delta %s = %.1f%%", d.Phase, d.Pct)
		}
	}
}

func TestCompareMismatches(t *testing.T) {
	baseline, current := manifestPair()
	current.Schema = SchemaVersion + 1
	if cmp := Compare(baseline, current, 0, 0); cmp.Err == nil {
		t.Error("schema mismatch not rejected")
	}
	_, current = manifestPair()
	current.Circuits = []string{"alu2"}
	if cmp := Compare(baseline, current, 0, 0); cmp.Err == nil {
		t.Error("workload mismatch not rejected")
	}
	_, current = manifestPair()
	current.Workers = 4
	if cmp := Compare(baseline, current, 0, 0); cmp.Err == nil {
		t.Error("workers mismatch not rejected")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m, _ := manifestPair()
	m.GitRev = "abc123"
	m.Metrics = map[string]float64{"decomp.nodes_planned": 10}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GitRev != "abc123" || got.WallNs != m.WallNs || got.Phases["map"] != m.Phases["map"] {
		t.Errorf("round trip lost data: %+v", got)
	}

	// A stale schema is rejected on read, not silently mis-compared.
	m.Schema = SchemaVersion + 7
	buf.Reset()
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(&buf); err == nil {
		t.Error("stale schema accepted")
	}

	// Missing baseline surfaces as os.ErrNotExist.
	if _, err := ReadManifestFile(filepath.Join(t.TempDir(), "nope.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing baseline error = %v, want os.ErrNotExist", err)
	}
}

// TestRunSmoke executes the smallest real workload end to end and checks
// the manifest carries phases and fingerprint metrics.
func TestRunSmoke(t *testing.T) {
	m, err := Run(context.Background(), Options{
		Circuits: []string{"x2"},
		Methods:  []core.Method{core.MethodI},
		Runs:     1,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != SchemaVersion || m.WallNs <= 0 || m.AllocBytes == 0 {
		t.Errorf("manifest totals: %+v", m)
	}
	for _, phase := range []string{"decompose", "map", "eval.run", "eval.reference"} {
		st, ok := m.Phases[phase]
		if !ok || st.WallNs <= 0 || st.Spans <= 0 {
			t.Errorf("phase %q missing or empty: %+v (have %v)", phase, st, m.Phases)
		}
	}
	if m.Metrics["decomp.nodes_planned"] <= 0 {
		t.Errorf("fingerprint metrics missing: %v", m.Metrics)
	}
	// Determinism of the workload fingerprint: a second run must plan the
	// same node count.
	m2, err := Run(context.Background(), Options{
		Circuits: []string{"x2"},
		Methods:  []core.Method{core.MethodI},
		Runs:     1,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["decomp.nodes_planned"] != m2.Metrics["decomp.nodes_planned"] {
		t.Errorf("workload fingerprint drifted: %v vs %v", m.Metrics, m2.Metrics)
	}
	cmp := Compare(m, m2, 1000, 0) // huge threshold: only comparability is under test
	if cmp.Err != nil {
		t.Errorf("back-to-back manifests not comparable: %v", cmp.Err)
	}
}

// TestWideWorkload checks the wide-BDD workload's two contracts: it
// records both kernel fingerprints, and sifting actually reduces the peak
// live-node count on WideCircuit (the acceptance evidence for dynamic
// reordering, re-proved on every run).
func TestWideWorkload(t *testing.T) {
	wide, err := wideWorkload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	base := wide["bdd.wide_peak_live_nodes"]
	sifted := wide["bdd.wide_peak_live_nodes_reorder"]
	if base <= 0 || sifted <= 0 {
		t.Fatalf("peaks not recorded: %v", wide)
	}
	if sifted >= base {
		t.Errorf("sifting did not reduce peak live nodes on %s: %v -> %v", WideCircuit, base, sifted)
	}
	if wide["bdd.wide_gc_runs"] <= 0 {
		t.Errorf("wide workload never triggered GC: %v", wide)
	}
	if wide["bdd.wide_reorder_runs"] <= 0 {
		t.Errorf("wide workload never triggered reordering: %v", wide)
	}
}

func TestRunJournalCrossCheck(t *testing.T) {
	dir := t.TempDir()
	m, err := Run(context.Background(), Options{
		Circuits:   []string{"x2"},
		Methods:    []core.Method{core.MethodI},
		Runs:       2, // only the final repetition is journaled
		Workers:    1,
		JournalDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.RunID == "" {
		t.Error("manifest run_id not stamped")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".jsonl" {
			jsonl++
		}
	}
	if jsonl != 2 { // x2-ref.jsonl + x2-I.jsonl
		t.Errorf("journal dir holds %d .jsonl files, want 2", jsonl)
	}
	if m.Metrics["mapper.sites_selected"] <= 0 {
		t.Errorf("fingerprint missing mapper.sites_selected: %v", m.Metrics)
	}
	// The cross-check inside Run must reject a tampered journal set.
	if err := os.Remove(filepath.Join(dir, "x2-I.jsonl")); err != nil {
		t.Fatal(err)
	}
	if err := crossCheckJournals(dir, m.Metrics); err == nil {
		t.Error("cross-check accepted a journal set with a missing file")
	}
}
