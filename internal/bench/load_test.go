package bench

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"

	"powermap/internal/serve"
)

// fakeDaemon mimics the pserve /synth contract: every distinct body
// synthesizes once, repeats are "cached", and an optional failure budget
// serves 500s first.
func fakeDaemon(fail5xx *atomic.Int64) http.Handler {
	seen := make(map[string]bool)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /synth", func(w http.ResponseWriter, r *http.Request) {
		if fail5xx != nil && fail5xx.Add(-1) >= 0 {
			w.WriteHeader(500)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "boom"})
			return
		}
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(400)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: err.Error()})
			return
		}
		// The map is raced by concurrent requests only across passes in
		// this test's configs; serialize anyway to stay race-clean.
		resp := serve.Response{Circuit: req.Circuit, Cached: seen[req.Circuit]}
		seen[req.Circuit] = true
		resp.Report.PowerUW = 42
		json.NewEncoder(w).Encode(&resp)
	})
	return mux
}

func TestRunLoadAggregates(t *testing.T) {
	mu := make(chan struct{}, 1)
	inner := fakeDaemon(nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu <- struct{}{} // serialize the fake's map access under -race
		defer func() { <-mu }()
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	m, err := RunLoad(context.Background(), LoadOptions{
		URL:         srv.URL,
		Concurrency: 4,
		Passes:      2,
		Circuits:    []string{"a", "b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != ServeSchemaVersion {
		t.Errorf("schema = %d, want %d", m.Schema, ServeSchemaVersion)
	}
	if m.Requests != 6 || m.Failures != 0 || m.Server5xx != 0 {
		t.Errorf("requests/failures/5xx = %d/%d/%d, want 6/0/0", m.Requests, m.Failures, m.Server5xx)
	}
	if m.StatusCounts["200"] != 6 {
		t.Errorf("status counts = %v, want 6x 200", m.StatusCounts)
	}
	// Pass 1 is all cold, pass 2 all cached.
	if m.CacheHits != 3 || len(m.PassStats) != 2 || m.PassStats[0].CacheHits != 0 || m.PassStats[1].CacheHits != 3 {
		t.Errorf("cache accounting wrong: total %d, passes %+v", m.CacheHits, m.PassStats)
	}
	if m.LatP99Ms <= 0 || m.LatP50Ms <= 0 || m.LatP99Ms < m.LatP50Ms {
		t.Errorf("latency quantiles implausible: p50 %v p99 %v", m.LatP50Ms, m.LatP99Ms)
	}
	if m.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", m.Throughput)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := WriteServeManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadServeManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != m.Requests || back.LatP99Ms != m.LatP99Ms {
		t.Error("manifest did not round-trip")
	}
	// A future schema is refused, not misread.
	back.Schema = ServeSchemaVersion + 1
	if err := WriteServeManifestFile(path, back); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadServeManifestFile(path); err == nil {
		t.Error("incompatible schema version accepted")
	}
}

func TestRunLoadCounts5xx(t *testing.T) {
	var budget atomic.Int64
	budget.Store(2)
	mu := make(chan struct{}, 1)
	inner := fakeDaemon(&budget)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu <- struct{}{}
		defer func() { <-mu }()
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	m, err := RunLoad(context.Background(), LoadOptions{
		URL: srv.URL, Concurrency: 2, Passes: 1, Circuits: []string{"a", "b", "c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Server5xx != 2 {
		t.Errorf("Server5xx = %d, want 2", m.Server5xx)
	}
	if m.StatusCounts["500"] != 2 || m.StatusCounts["200"] != 2 {
		t.Errorf("status counts = %v, want 2x 500 + 2x 200", m.StatusCounts)
	}
}

func TestRunLoadRetries429(t *testing.T) {
	// Every circuit's first attempt is refused with 429 backpressure; the
	// generator must retry until the 200 and record the refusals as
	// retries, not as final statuses.
	var refused atomic.Int64
	mu := make(chan struct{}, 1)
	firstTry := make(map[string]bool)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu <- struct{}{}
		defer func() { <-mu }()
		var req serve.Request
		json.NewDecoder(r.Body).Decode(&req)
		if !firstTry[req.Circuit] {
			firstTry[req.Circuit] = true
			refused.Add(1)
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "queue full"})
			return
		}
		json.NewEncoder(w).Encode(serve.Response{Circuit: req.Circuit})
	}))
	defer srv.Close()

	m, err := RunLoad(context.Background(), LoadOptions{
		URL: srv.URL, Concurrency: 2, Passes: 1, Circuits: []string{"a", "b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.StatusCounts["200"] != 3 || m.StatusCounts["429"] != 0 {
		t.Errorf("status counts = %v, want 3x 200 and no final 429", m.StatusCounts)
	}
	if m.Retries429 != 3 || refused.Load() != 3 {
		t.Errorf("Retries429 = %d (daemon refused %d), want 3", m.Retries429, refused.Load())
	}
}

func TestRunLoadRejectsBadURL(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadOptions{URL: "localhost:8080"}); err == nil {
		t.Error("schemeless URL accepted")
	}
}
