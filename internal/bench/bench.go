// Package bench is the pipeline's benchmark-regression harness: it runs
// the evaluation suite under an instrumented scope N times, aggregates
// per-phase wall time and per-run allocation into a schema-versioned JSON
// manifest (BENCH_pipeline.json), and compares the manifest against a
// committed baseline, flagging phases whose best-of-N wall time regressed
// beyond a threshold.
//
// Min-of-N is the comparison statistic: on a noisy shared host the minimum
// wall time is the least-contended observation of the same deterministic
// work, so it drifts far less than the mean. The default threshold is
// generous (25%) because single-CPU CI containers still show ~10%
// run-to-run noise even on minima.
package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"powermap/internal/bdd"
	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/eval"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/mapper"
	"powermap/internal/obs"
	"powermap/internal/prob"
	"powermap/internal/sim"
)

// SchemaVersion identifies the manifest layout; bump it on any
// incompatible change so stale baselines are rejected instead of
// mis-compared.
const SchemaVersion = 1

// DefaultThresholdPct is the regression threshold applied when a caller
// passes 0: a phase fails when its wall time exceeds the baseline by more
// than this percentage.
const DefaultThresholdPct = 25

// DefaultMinWallNs is the noise floor: phases whose baseline and current
// wall times are both below it are reported but never flagged as
// regressions — short phases swing tens of percent on scheduler jitter
// alone (a 30% regression of 10ms is not a signal on a shared host), so
// only the pipeline's dominant phases are strictly enforced by default.
const DefaultMinWallNs = 50e6

// QuickCircuits is the -quick suite: the smallest real benchmark plus the
// smallest stand-in, matching BenchmarkRunSuiteParallel's workload.
var QuickCircuits = []string{"cm42a", "x2"}

// DefaultCircuits is the standard harness workload: small enough to run
// in seconds, wide enough to exercise every decomposition strategy and
// both mapping objectives on distinct circuit shapes.
var DefaultCircuits = []string{"cm42a", "x2", "s208", "alu2"}

// Options configures Run.
type Options struct {
	// Circuits names the benchmarks to synthesize (nil selects
	// DefaultCircuits).
	Circuits []string
	// Methods lists the synthesis methods (nil selects all six).
	Methods []core.Method
	// Runs is the number of repetitions (values < 1 become 1); per-phase
	// wall times take the minimum over runs.
	Runs int
	// Workers is forwarded to the pipeline (0 = all CPUs).
	Workers int
	// GitRev, Command and Note are recorded verbatim in the manifest.
	GitRev  string
	Command string
	Note    string
	// Wide additionally runs the wide-BDD workload (an exact probability
	// model of WideCircuit with tight GC/reorder thresholds, with and
	// without sifting) and records its peak-live-node and GC counters as
	// manifest metrics.
	Wide bool
	// Cuts additionally runs the suite once with the cut-based NPN mapper
	// backend under its own scope, recording its phases as "cuts."-prefixed
	// entries and its NPN-cache/AIG counters as "cuts."-prefixed metrics.
	// The manifest's workload identity fields (Circuits, Methods, Workers)
	// are untouched, so baselines without the cuts leg stay comparable.
	Cuts bool
	// Sampling additionally runs the sampling workload — the scalar and
	// bit-parallel activity engines over the same circuits at the same
	// vector budget — and records both wall times plus their ratio as
	// manifest metrics. The speedup metric is the harness's standing proof
	// that the 64-lane engine keeps its advantage over the scalar sampler.
	Sampling bool
	// JournalDir, when set, captures decision-provenance journals for the
	// final repetition only (journaling the timed repetitions would perturb
	// the phases being measured) and cross-checks the fingerprint counters
	// against the journal event counts before the manifest is returned.
	JournalDir string
	// RunID is stamped into the manifest and every journal header; empty
	// generates one when JournalDir is set.
	RunID string
	// SampleInterval, when positive, runs the runtime-resource sampler on
	// each repetition's scope at this cadence (heap, GC pauses, goroutines),
	// so bench runs leave resource watermarks beside their wall times.
	SampleInterval time.Duration
	// Budgets installs per-phase SLOs on each repetition's scope; a breach
	// fails the bench run, on the theory that a benchmark exceeding its
	// declared budget is itself a regression.
	Budgets []obs.Budget
	// FlightPath arms the flight recorder's auto-dump on each repetition's
	// scope: the first failing run leaves a post-mortem JSON there.
	FlightPath string
}

// WideCircuit is the benchmark the wide-BDD workload builds exact global
// BDDs for. Chosen because its DFS variable order is measurably
// improvable: sifting cuts peak live nodes by roughly a third, so the
// recorded pair of peaks also acts as a regression check on the reorderer.
const WideCircuit = "s344"

// wideBDDConfig returns the kernel tuning of the wide workload: thresholds
// far below the defaults so GC and (optionally) sifting actually trigger
// on a benchmark-sized circuit.
func wideBDDConfig(reorder bool) bdd.Config {
	return bdd.Config{GCThreshold: 256, Reorder: reorder, ReorderThreshold: 256}
}

// wideWorkload builds the exact probability model of WideCircuit twice —
// fixed DFS order, then with dynamic sifting — and returns the kernel
// fingerprints of both runs.
func wideWorkload(ctx context.Context) (map[string]float64, error) {
	b, err := circuits.ByName(WideCircuit)
	if err != nil {
		return nil, fmt.Errorf("bench: wide workload: %w", err)
	}
	run := func(reorder bool) (bdd.Stats, error) {
		model, err := prob.ComputeWith(ctx, b.Build(), nil, huffman.Static, wideBDDConfig(reorder))
		if err != nil {
			return bdd.Stats{}, fmt.Errorf("bench: wide workload (reorder=%v): %w", reorder, err)
		}
		return model.Manager().Stats(), nil
	}
	base, err := run(false)
	if err != nil {
		return nil, err
	}
	sifted, err := run(true)
	if err != nil {
		return nil, err
	}
	return map[string]float64{
		"bdd.wide_peak_live_nodes":         float64(base.PeakLive),
		"bdd.wide_peak_live_nodes_reorder": float64(sifted.PeakLive),
		"bdd.wide_gc_runs":                 float64(base.GCRuns),
		"bdd.wide_gc_runs_reorder":         float64(sifted.GCRuns),
		"bdd.wide_reorder_runs":            float64(sifted.ReorderRuns),
		"bdd.wide_reorder_swaps":           float64(sifted.ReorderSwaps),
	}, nil
}

// SamplingCircuits is the sampling workload: the two -quick circuits plus
// the widest benchmark, so the scalar-vs-bitwise ratio is measured on both
// shallow and deep netlists.
var SamplingCircuits = []string{"cm42a", "x2", WideCircuit}

// SamplingVectors is the per-circuit vector budget of the sampling
// workload: large enough that both engines are dominated by evaluation
// rather than setup, small enough to finish in seconds on a 1-CPU host.
const SamplingVectors = 1 << 16

// samplingWorkload times the scalar Monte-Carlo sampler and the
// bit-parallel engine over the same circuits and vector budget and returns
// the aggregate wall times, their ratio, and the widest activity CI the
// bitwise engine reported.
func samplingWorkload(ctx context.Context) (map[string]float64, error) {
	var scalarNs, bitwiseNs int64
	maxCI := 0.0
	for _, name := range SamplingCircuits {
		b, err := circuits.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: sampling workload: %w", err)
		}
		nw := b.Build()
		probs := map[string]float64{}
		for _, pi := range nw.PINames() {
			probs[pi] = 0.5
		}
		start := time.Now()
		if _, err := sim.Activities(nw, probs, SamplingVectors, 1); err != nil {
			return nil, fmt.Errorf("bench: sampling workload (%s, scalar): %w", name, err)
		}
		scalarNs += time.Since(start).Nanoseconds()
		start = time.Now()
		res, err := sim.ActivitiesBitwise(ctx, nw, probs, sim.BitwiseOptions{
			Vectors: SamplingVectors, Seed: 1, Workers: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: sampling workload (%s, bitwise): %w", name, err)
		}
		bitwiseNs += time.Since(start).Nanoseconds()
		if res.MaxActivityCI > maxCI {
			maxCI = res.MaxActivityCI
		}
	}
	speedup := 0.0
	if bitwiseNs > 0 {
		speedup = float64(scalarNs) / float64(bitwiseNs)
	}
	return map[string]float64{
		"sim.sampling_vectors":          float64(SamplingVectors),
		"sim.sampling_scalar_ns":        float64(scalarNs),
		"sim.sampling_bitwise_ns":       float64(bitwiseNs),
		"sim.sampling_speedup":          speedup,
		"sim.sampling_ci_halfwidth_max": maxCI,
	}, nil
}

// PhaseStat is one phase's aggregated cost in a Manifest.
type PhaseStat struct {
	// Spans is the number of spans recorded under this phase name in one
	// run (identical across runs: the pipeline is deterministic).
	Spans int `json:"spans"`
	// WallNs is the minimum over runs of the summed span wall time.
	WallNs int64 `json:"wall_ns"`
}

// Host describes the machine a manifest was produced on.
type Host struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// Manifest is the serialized benchmark result (BENCH_pipeline.json).
type Manifest struct {
	Schema   int      `json:"schema"`
	Name     string   `json:"name"`
	RunID    string   `json:"run_id,omitempty"`
	Date     string   `json:"date,omitempty"`
	GitRev   string   `json:"git_rev,omitempty"`
	Command  string   `json:"command,omitempty"`
	Note     string   `json:"note,omitempty"`
	Host     Host     `json:"host"`
	Circuits []string `json:"circuits"`
	Methods  []string `json:"methods"`
	Runs     int      `json:"runs"`
	Workers  int      `json:"workers"`
	// WallNs is the minimum end-to-end suite wall time over runs.
	WallNs int64 `json:"wall_ns"`
	// AllocBytes is the minimum heap allocation delta over runs.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Phases maps phase (span) name to its aggregated cost.
	Phases map[string]PhaseStat `json:"phases"`
	// Metrics records selected pipeline counters/gauges from the final
	// run, as workload fingerprints: if these move, the comparison is
	// between different workloads, not a perf change.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run executes the suite opts.Runs times and aggregates the manifest.
func Run(ctx context.Context, opts Options) (*Manifest, error) {
	circuitNames := opts.Circuits
	if len(circuitNames) == 0 {
		circuitNames = DefaultCircuits
	}
	methods := opts.Methods
	if len(methods) == 0 {
		methods = core.Methods()
	}
	runs := opts.Runs
	if runs < 1 {
		runs = 1
	}
	if opts.JournalDir != "" && opts.RunID == "" {
		opts.RunID = journal.NewRunID()
	}
	m := &Manifest{
		Schema:   SchemaVersion,
		Name:     "pipeline",
		RunID:    opts.RunID,
		Date:     time.Now().UTC().Format("2006-01-02"),
		GitRev:   opts.GitRev,
		Command:  opts.Command,
		Note:     opts.Note,
		Circuits: circuitNames,
		Runs:     runs,
		Workers:  opts.Workers,
		Host: Host{
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
		Phases: map[string]PhaseStat{},
	}
	for _, mm := range methods {
		m.Methods = append(m.Methods, mm.String())
	}
	for run := 0; run < runs; run++ {
		sc := obs.New(obs.Config{RunID: opts.RunID})
		sc.SetBudgets(opts.Budgets)
		sc.Flight().SetAutoDump(opts.FlightPath)
		var sampler *obs.RuntimeSampler
		if opts.SampleInterval > 0 {
			sampler = sc.StartRuntimeSampler(ctx, opts.SampleInterval)
		}
		base := core.Options{Obs: sc, Workers: opts.Workers}
		// Journal only the final repetition: the earlier ones supply the
		// min-of-N timing, and journal writes would perturb them.
		var jc eval.JournalConfig
		if opts.JournalDir != "" && run == runs-1 {
			jc = eval.JournalConfig{Dir: opts.JournalDir, RunID: opts.RunID}
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		_, err := eval.RunSuiteJournaled(ctx, methods, base, circuitNames, jc)
		wall := time.Since(start).Nanoseconds()
		sampler.Stop()
		if err != nil {
			return nil, fmt.Errorf("bench: run %d: %w", run+1, err)
		}
		if n := sc.BreachCount(); n > 0 {
			br := sc.Breaches()
			worst := br[len(br)-1]
			return nil, fmt.Errorf("bench: run %d: %d SLO budget breach(es), e.g. %s %s (%d > %d)",
				run+1, n, worst.Phase, worst.Kind, worst.Value, worst.Limit)
		}
		runtime.ReadMemStats(&after)
		alloc := after.TotalAlloc - before.TotalAlloc

		if run == 0 || wall < m.WallNs {
			m.WallNs = wall
		}
		if run == 0 || alloc < m.AllocBytes {
			m.AllocBytes = alloc
		}
		sn := sc.Snapshot()
		phaseWall := map[string]int64{}
		phaseSpans := map[string]int{}
		for _, sp := range sn.Spans {
			phaseWall[sp.Name] += sp.DurationNs
			phaseSpans[sp.Name]++
		}
		for name, wall := range phaseWall {
			st, ok := m.Phases[name]
			if !ok || wall < st.WallNs {
				st.WallNs = wall
			}
			if spans := phaseSpans[name]; spans > st.Spans {
				st.Spans = spans
			}
			m.Phases[name] = st
		}
		if run == runs-1 {
			m.Metrics = fingerprintMetrics(sn)
		}
	}
	if opts.Wide {
		start := time.Now()
		wide, err := wideWorkload(ctx)
		if err != nil {
			return nil, err
		}
		m.Phases["bench.wide-bdd"] = PhaseStat{Spans: 1, WallNs: time.Since(start).Nanoseconds()}
		if m.Metrics == nil {
			m.Metrics = map[string]float64{}
		}
		for k, v := range wide {
			m.Metrics[k] = v
		}
	}
	if opts.Cuts {
		if err := cutsWorkload(ctx, m, methods, circuitNames, opts.Workers); err != nil {
			return nil, err
		}
	}
	if opts.Sampling {
		start := time.Now()
		sampling, err := samplingWorkload(ctx)
		if err != nil {
			return nil, err
		}
		m.Phases["bench.sampling"] = PhaseStat{Spans: 1, WallNs: time.Since(start).Nanoseconds()}
		if m.Metrics == nil {
			m.Metrics = map[string]float64{}
		}
		for k, v := range sampling {
			m.Metrics[k] = v
		}
	}
	if opts.JournalDir != "" {
		if err := crossCheckJournals(opts.JournalDir, m.Metrics); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// cutsWorkload runs the suite once with the cut-based NPN mapper backend
// under its own scope and folds "cuts."-prefixed phases and metrics into
// the manifest. Prefixing keeps the cuts leg out of the structural phases'
// baselines: old manifests simply list the new entries as missing, which
// Compare reports as informational, never as a regression.
func cutsWorkload(ctx context.Context, m *Manifest, methods []core.Method, circuitNames []string, workers int) error {
	sc := obs.New(obs.Config{})
	base := core.Options{Obs: sc, Workers: workers, Mapper: mapper.BackendCuts}
	start := time.Now()
	if _, err := eval.RunSuite(ctx, methods, base, circuitNames); err != nil {
		return fmt.Errorf("bench: cuts workload: %w", err)
	}
	m.Phases["bench.cuts-suite"] = PhaseStat{Spans: 1, WallNs: time.Since(start).Nanoseconds()}
	sn := sc.Snapshot()
	phaseWall := map[string]int64{}
	phaseSpans := map[string]int{}
	for _, sp := range sn.Spans {
		phaseWall[sp.Name] += sp.DurationNs
		phaseSpans[sp.Name]++
	}
	for name, wall := range phaseWall {
		m.Phases["cuts."+name] = PhaseStat{Spans: phaseSpans[name], WallNs: wall}
	}
	if m.Metrics == nil {
		m.Metrics = map[string]float64{}
	}
	for _, key := range []string{"mapper.npn_cache_hits", "mapper.npn_cache_misses", "mapper.cuts_enumerated"} {
		if v, ok := sn.Counters[key]; ok {
			m.Metrics["cuts."+key] = float64(v)
		}
	}
	for _, key := range []string{"mapper.npn_classes", "aig.nodes", "aig.strash_dedup"} {
		if v, ok := sn.Gauges[key]; ok {
			m.Metrics["cuts."+key] = v
		}
	}
	return nil
}

// crossCheckJournals verifies the journaled final repetition against the
// fingerprint counters of the same repetition: the journals must contain
// exactly one decomp.node event per planned node and one map.site event
// per selected gate. A mismatch means the provenance stream dropped or
// duplicated decisions, so the manifest is rejected.
func crossCheckJournals(dir string, metrics map[string]float64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("bench: journal cross-check: %w", err)
	}
	var decompNodes, mapSites float64
	files := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		run, err := journal.ReadRunFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("bench: journal cross-check: %s: %w", e.Name(), err)
		}
		decompNodes += float64(run.Counts[journal.TypeDecompNode])
		mapSites += float64(run.Counts[journal.TypeMapSite])
		files++
	}
	if files == 0 {
		return fmt.Errorf("bench: journal cross-check: no .jsonl files in %s", dir)
	}
	if want := metrics["decomp.nodes_planned"]; decompNodes != want {
		return fmt.Errorf("bench: journal cross-check: %g decomp.node events vs decomp.nodes_planned=%g", decompNodes, want)
	}
	if want := metrics["mapper.sites_selected"]; mapSites != want {
		return fmt.Errorf("bench: journal cross-check: %g map.site events vs mapper.sites_selected=%g", mapSites, want)
	}
	return nil
}

// fingerprintMetrics extracts workload-identity metrics from a snapshot:
// monotone counts that are bit-identical across runs of the same suite.
func fingerprintMetrics(sn *obs.Snapshot) map[string]float64 {
	keep := map[string]bool{
		"decomp.nodes_planned":   true,
		"timing.nodes_annotated": true,
		"mapper.nodes_covered":   true,
		"mapper.sites_selected":  true,
	}
	out := map[string]float64{}
	for key, v := range sn.Counters {
		if keep[key] {
			out[key] = float64(v)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Delta is one phase's baseline-vs-current comparison.
type Delta struct {
	Phase      string
	BaselineNs int64
	CurrentNs  int64
	// Pct is the relative change in percent (positive = slower).
	Pct float64
	// Regressed is set when Pct exceeds the comparison threshold.
	Regressed bool
}

// Comparison is the result of Compare.
type Comparison struct {
	ThresholdPct float64
	MinWallNs    int64
	// Deltas holds one entry per phase present in both manifests, plus
	// the synthetic "total" phase for the end-to-end wall time, sorted by
	// descending Pct (worst regression first).
	Deltas []Delta
	// MissingInBaseline lists current phases the baseline lacks (new
	// instrumentation — informational, never a regression).
	MissingInBaseline []string
	// MissingInCurrent lists baseline phases the current run lacks
	// (removed instrumentation — informational).
	MissingInCurrent []string
	// Err is set when the manifests are not comparable (schema or
	// workload mismatch); Deltas is empty in that case.
	Err error
}

// Regressions returns the deltas that exceeded the threshold.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Compare evaluates current against baseline with the given regression
// threshold in percent (0 selects DefaultThresholdPct) and noise floor in
// nanoseconds (0 selects DefaultMinWallNs; negative disables the floor).
// Phases below the floor in both manifests are compared but never flagged.
// Manifests with different schemas or workloads (circuits, methods,
// workers) are not comparable and yield a Comparison with Err set.
func Compare(baseline, current *Manifest, thresholdPct float64, minWallNs int64) Comparison {
	if thresholdPct <= 0 {
		thresholdPct = DefaultThresholdPct
	}
	if minWallNs == 0 {
		minWallNs = DefaultMinWallNs
	}
	c := Comparison{ThresholdPct: thresholdPct, MinWallNs: minWallNs}
	if baseline.Schema != current.Schema {
		c.Err = fmt.Errorf("bench: schema mismatch: baseline v%d vs current v%d", baseline.Schema, current.Schema)
		return c
	}
	if !equalStrings(baseline.Circuits, current.Circuits) || !equalStrings(baseline.Methods, current.Methods) || baseline.Workers != current.Workers {
		c.Err = fmt.Errorf("bench: workload mismatch: baseline (%v × %v, workers=%d) vs current (%v × %v, workers=%d)",
			baseline.Circuits, baseline.Methods, baseline.Workers,
			current.Circuits, current.Methods, current.Workers)
		return c
	}
	add := func(phase string, base, cur int64) {
		d := Delta{Phase: phase, BaselineNs: base, CurrentNs: cur}
		if base > 0 {
			d.Pct = 100 * float64(cur-base) / float64(base)
			d.Regressed = d.Pct > thresholdPct && (base >= minWallNs || cur >= minWallNs)
		}
		c.Deltas = append(c.Deltas, d)
	}
	add("total", baseline.WallNs, current.WallNs)
	for phase, cur := range current.Phases {
		base, ok := baseline.Phases[phase]
		if !ok {
			c.MissingInBaseline = append(c.MissingInBaseline, phase)
			continue
		}
		add(phase, base.WallNs, cur.WallNs)
	}
	for phase := range baseline.Phases {
		if _, ok := current.Phases[phase]; !ok {
			c.MissingInCurrent = append(c.MissingInCurrent, phase)
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool {
		if c.Deltas[i].Pct != c.Deltas[j].Pct {
			return c.Deltas[i].Pct > c.Deltas[j].Pct
		}
		return c.Deltas[i].Phase < c.Deltas[j].Phase
	})
	sort.Strings(c.MissingInBaseline)
	sort.Strings(c.MissingInCurrent)
	return c
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
