package huffman

import "fmt"

// Gate selects the logic operation realized by every internal node of a
// decomposition tree.
type Gate int

const (
	// GateAnd decomposes an AND (paper Section 2.1: AND decomposition).
	GateAnd Gate = iota
	// GateOr decomposes an OR (used for the OR level of SOP nodes).
	GateOr
)

func (g Gate) String() string {
	if g == GateAnd {
		return "AND"
	}
	return "OR"
}

// Style is the CMOS design style, which determines which probability counts
// as switching activity (paper Section 1.2).
type Style int

const (
	// Static CMOS: activity = P(0→1) + P(1→0).
	Static Style = iota
	// DominoP: p-type dynamic CMOS, precharged low; activity = P(out=1).
	DominoP
	// DominoN: n-type dynamic CMOS, precharged high; activity = P(out=0).
	DominoN
)

func (s Style) String() string {
	switch s {
	case Static:
		return "static"
	case DominoP:
		return "domino-p"
	default:
		return "domino-n"
	}
}

// Signal is the probabilistic state of a subtree root: the joint
// distribution of (previous value, next value) of the signal. The four
// entries sum to 1. Under the paper's temporal-independence assumption the
// leaf distribution factorizes from the static probability p = P(sig=1):
// P01 = (1-p)p, P11 = p², and so on (Equation 3).
type Signal struct {
	P00, P01, P10, P11 float64
}

// SignalFromProb returns the leaf signal for a static 1-probability p under
// temporal independence of consecutive input vectors.
func SignalFromProb(p float64) Signal {
	q := 1 - p
	return Signal{P00: q * q, P01: q * p, P10: p * q, P11: p * p}
}

// Prob1 returns the static probability of the signal being 1.
func (s Signal) Prob1() float64 { return s.P01 + s.P11 }

// Prob0 returns the static probability of the signal being 0.
func (s Signal) Prob0() float64 { return s.P00 + s.P10 }

// Toggle returns the static-CMOS switching activity P(0→1) + P(1→0).
func (s Signal) Toggle() float64 { return s.P01 + s.P10 }

// MergeSignals combines two independent child signals through a 2-input
// gate. For AND the output is 1 exactly when both inputs are 1, so the
// transition distribution is the product distribution marginalized through
// the gate; this reproduces Equations 5 and 10–11 of the paper. OR is the
// De Morgan dual (Equation 6).
func MergeSignals(g Gate, a, b Signal) Signal {
	switch g {
	case GateAnd:
		// prev1 = a.prev1 & b.prev1, next1 = a.next1 & b.next1.
		p11 := a.P11 * b.P11
		prev1 := (a.P10 + a.P11) * (b.P10 + b.P11)
		next1 := (a.P01 + a.P11) * (b.P01 + b.P11)
		p10 := prev1 - p11
		p01 := next1 - p11
		return Signal{P00: 1 - p01 - p10 - p11, P01: p01, P10: p10, P11: p11}
	case GateOr:
		na, nb := a.negate(), b.negate()
		return MergeSignals(GateAnd, na, nb).negate()
	}
	panic(fmt.Sprintf("huffman: unknown gate %d", g))
}

func (s Signal) negate() Signal {
	return Signal{P00: s.P11, P01: s.P10, P10: s.P01, P11: s.P00}
}

// SignalAlgebra is the uncorrelated-input algebra over Signal states for a
// given gate type and design style. For DominoP/DominoN the cost functions
// are the quasi-linear weight combinations of Equations 5 and 6 (Lemma 2.1),
// so Build (plain Huffman) is optimal; for Static the cost (Equations
// 10–11) is not quasi-linear and BuildModified is the intended constructor.
type SignalAlgebra struct {
	Gate  Gate
	Style Style
}

// Merge combines two child signals through the algebra's gate.
func (a SignalAlgebra) Merge(x, y Signal) Signal { return MergeSignals(a.Gate, x, y) }

// Cost returns the switching activity of a node with state s under the
// algebra's design style.
func (a SignalAlgebra) Cost(s Signal) float64 {
	switch a.Style {
	case Static:
		return s.Toggle()
	case DominoP:
		return s.Prob1()
	default:
		return s.Prob0()
	}
}

// QuasiLinear reports whether the algebra's weight combination function is
// quasi-linear, i.e. whether plain Huffman construction is optimal
// (Lemma 2.1 / Theorem 2.2).
func (a SignalAlgebra) QuasiLinear() bool { return a.Style != Static }

// CorrState is the state used by the correlated-domino algebra: the static
// 1-probability of the subtree output plus an identifier into the algebra's
// pairwise conditional-probability table.
type CorrState struct {
	P1 float64
	id int
}

// CorrDomino is the correlated-input domino algebra of Section 2.1.1
// (Equations 7–9): leaves carry pairwise joint probabilities
// joint[i][j] = P(sig_i = 1 ∧ sig_j = 1), from which conditionals are
// derived, and a merged node A = i·j receives a joint with every remaining
// node k by the Equation 9 heuristic, which averages the three chain-rule
// factorizations of the triple joint P(i ∧ j ∧ k):
//
//	P(A∧k) ≈ ( (P(k|i)+P(k|j))/2·P(i,j) + (P(j|k)+P(j|i))/2·P(i,k)
//	          + (P(i|j)+P(i|k))/2·P(j,k) ) / 3
//
// Under independent inputs this reduces exactly to P(i)P(j)P(k). The weight
// combination is not quasi-linear, so BuildModified is the intended
// constructor. The algebra is stateful (it grows its joint table as nodes
// merge) and must not be shared between concurrent builds.
type CorrDomino struct {
	NType bool // n-type domino: activity is P(out = 0)
	joint [][]float64
	p1    []float64
}

// NewCorrDomino returns an algebra over len(p1) leaves with the given
// pairwise joint probabilities joint[i][j] = P(i=1 ∧ j=1). The table must
// be square with len(p1) rows; diagonal entries are forced to p1[i].
func NewCorrDomino(nType bool, p1 []float64, joint [][]float64) (*CorrDomino, error) {
	n := len(p1)
	if len(joint) != n {
		return nil, fmt.Errorf("huffman: joint table has %d rows, want %d", len(joint), n)
	}
	c := &CorrDomino{NType: nType}
	c.p1 = append([]float64(nil), p1...)
	c.joint = make([][]float64, n)
	for i := range joint {
		if len(joint[i]) != n {
			return nil, fmt.Errorf("huffman: joint table row %d has %d entries, want %d", i, len(joint[i]), n)
		}
		c.joint[i] = append([]float64(nil), joint[i]...)
		c.joint[i][i] = p1[i]
	}
	return c, nil
}

// Leaves returns the leaf states for use with BuildModified.
func (c *CorrDomino) Leaves() []CorrState {
	out := make([]CorrState, len(c.p1))
	for i, p := range c.p1 {
		out[i] = CorrState{P1: p, id: i}
	}
	return out
}

// cond returns P(x=1 | y=1).
func (c *CorrDomino) cond(x, y int) float64 {
	if c.p1[y] == 0 {
		return 0
	}
	return clamp01(c.joint[x][y] / c.p1[y])
}

// Merge combines two subtrees through an AND gate: the new node's
// 1-probability is the joint of its children (Equation 7), and its joint
// with every remaining node is estimated by the Equation 9 heuristic.
func (c *CorrDomino) Merge(a, b CorrState) CorrState {
	pAB := c.joint[a.id][b.id]
	newID := len(c.p1)
	c.p1 = append(c.p1, pAB)
	for i := range c.joint {
		c.joint[i] = append(c.joint[i], 0)
	}
	c.joint = append(c.joint, make([]float64, newID+1))
	c.joint[newID][newID] = pAB
	i, j := a.id, b.id
	for k := 0; k < newID; k++ {
		t1 := (c.cond(k, i) + c.cond(k, j)) / 2 * c.joint[i][j]
		t2 := (c.cond(j, k) + c.cond(j, i)) / 2 * c.joint[i][k]
		t3 := (c.cond(i, j) + c.cond(i, k)) / 2 * c.joint[j][k]
		w := (t1 + t2 + t3) / 3
		if w > pAB {
			w = pAB
		}
		if w > c.p1[k] {
			w = c.p1[k]
		}
		c.joint[newID][k] = w
		c.joint[k][newID] = w
	}
	return CorrState{P1: pAB, id: newID}
}

// Cost prices a node: P(out=1) for p-type domino, P(out=0) for n-type
// (Equations 7 and 8).
func (c *CorrDomino) Cost(s CorrState) float64 {
	if c.NType {
		return 1 - s.P1
	}
	return s.P1
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// OracleAlgebra prices nodes through an externally supplied cost function
// while combining states with an externally supplied merge; the technology
// decomposition uses it with a BDD-backed exact-activity oracle, the
// alternative the paper offers to Equation 9 ("Alternatively, W_Ak can be
// calculated using BDDs").
type OracleAlgebra[S any] struct {
	MergeFn func(a, b S) S
	CostFn  func(s S) float64
}

// Merge applies the supplied merge function.
func (o OracleAlgebra[S]) Merge(a, b S) S { return o.MergeFn(a, b) }

// Cost applies the supplied cost function.
func (o OracleAlgebra[S]) Cost(s S) float64 { return o.CostFn(s) }
