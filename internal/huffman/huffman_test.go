package huffman

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// leafSignals builds leaf states from static 1-probabilities.
func leafSignals(ps ...float64) []Signal {
	out := make([]Signal, len(ps))
	for i, p := range ps {
		out[i] = SignalFromProb(p)
	}
	return out
}

// collectLeaves returns the sorted leaf indices of a tree.
func collectLeaves[S any](t *Tree[S]) []int {
	var out []int
	var rec func(n *Tree[S])
	rec = func(n *Tree[S]) {
		if n.IsLeaf() {
			out = append(out, n.Leaf)
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(t)
	sort.Ints(out)
	return out
}

func checkTree[S any](t *testing.T, tr *Tree[S], n int) {
	t.Helper()
	leaves := collectLeaves(tr)
	if len(leaves) != n {
		t.Fatalf("tree has %d leaves, want %d", len(leaves), n)
	}
	for i, l := range leaves {
		if l != i {
			t.Fatalf("leaf indices %v are not a permutation of 0..%d", leaves, n-1)
		}
	}
}

// chainCost computes the cost of the left-deep chain over the given order,
// used to reproduce the Figure 1 configurations.
func chainCost(alg SignalAlgebra, leaves []Signal, order []int) float64 {
	st := leaves[order[0]]
	total := 0.0
	for _, i := range order[1:] {
		st = alg.Merge(st, leaves[i])
		total += alg.Cost(st)
	}
	return total
}

func TestFigure1(t *testing.T) {
	// Paper Figure 1: p-type domino, P(a)=0.3 P(b)=0.4 P(c)=0.7 P(d)=0.5.
	// SR includes the four leaf activities (sum = 1.9), a constant offset.
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	leaves := leafSignals(0.3, 0.4, 0.7, 0.5)
	leafSum := 0.3 + 0.4 + 0.7 + 0.5

	// Configuration A: ((a·b)·c)·d.
	srA := chainCost(alg, leaves, []int{0, 1, 2, 3}) + leafSum
	if math.Abs(srA-2.146) > 1e-9 {
		t.Errorf("SR(A) = %v, want 2.146", srA)
	}
	// Configuration B: (a·b)·(c·d).
	ab := alg.Merge(leaves[0], leaves[1])
	cd := alg.Merge(leaves[2], leaves[3])
	srB := alg.Cost(ab) + alg.Cost(cd) + alg.Cost(alg.Merge(ab, cd)) + leafSum
	if math.Abs(srB-2.412) > 1e-9 {
		t.Errorf("SR(B) = %v, want 2.412", srB)
	}
	// Huffman must do at least as well as configuration A.
	tr := Build[Signal](alg, leaves)
	checkTree(t, tr, 4)
	if got := TotalCost[Signal](alg, tr) + leafSum; got > srA+1e-12 {
		t.Errorf("Huffman SR = %v, worse than configuration A %v", got, srA)
	}
}

func TestSignalFromProb(t *testing.T) {
	s := SignalFromProb(0.3)
	if math.Abs(s.P00+s.P01+s.P10+s.P11-1) > 1e-12 {
		t.Error("signal distribution does not sum to 1")
	}
	if math.Abs(s.Prob1()-0.3) > 1e-12 {
		t.Errorf("Prob1 = %v", s.Prob1())
	}
	if math.Abs(s.Toggle()-2*0.3*0.7) > 1e-12 {
		t.Errorf("Toggle = %v, want 0.42", s.Toggle())
	}
}

func TestMergeSignalsAndOr(t *testing.T) {
	a, b := SignalFromProb(0.3), SignalFromProb(0.4)
	and := MergeSignals(GateAnd, a, b)
	if math.Abs(and.Prob1()-0.12) > 1e-12 {
		t.Errorf("AND Prob1 = %v, want 0.12", and.Prob1())
	}
	// AND output under temporal independence is itself temporally
	// independent with p = 0.12.
	want := SignalFromProb(0.12)
	if math.Abs(and.Toggle()-want.Toggle()) > 1e-12 {
		t.Errorf("AND Toggle = %v, want %v", and.Toggle(), want.Toggle())
	}
	or := MergeSignals(GateOr, a, b)
	if math.Abs(or.Prob1()-(0.3+0.4-0.12)) > 1e-12 {
		t.Errorf("OR Prob1 = %v", or.Prob1())
	}
	sum := or.P00 + or.P01 + or.P10 + or.P11
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("OR distribution sums to %v", sum)
	}
}

func TestEquation10Expansion(t *testing.T) {
	// W_o(0->1) = w1_01 w2_01 + w1_11 w2_01 + w1_01 w2_11 (Equation 10).
	a, b := SignalFromProb(0.35), SignalFromProb(0.6)
	and := MergeSignals(GateAnd, a, b)
	want01 := a.P01*b.P01 + a.P11*b.P01 + a.P01*b.P11
	if math.Abs(and.P01-want01) > 1e-12 {
		t.Errorf("P01 = %v, want %v (Eq. 10)", and.P01, want01)
	}
	want10 := a.P11*b.P10 + a.P10*b.P11 + a.P10*b.P10
	if math.Abs(and.P10-want10) > 1e-12 {
		t.Errorf("P10 = %v, want %v (Eq. 11)", and.P10, want10)
	}
}

func TestHuffmanOptimalDominoP(t *testing.T) {
	// Theorem 2.2: plain Huffman is optimal for domino with uncorrelated
	// inputs. Verify against exhaustive enumeration.
	r := rand.New(rand.NewSource(11))
	for _, style := range []Style{DominoP, DominoN} {
		for _, gate := range []Gate{GateAnd, GateOr} {
			alg := SignalAlgebra{Gate: gate, Style: style}
			for trial := 0; trial < 60; trial++ {
				n := 3 + r.Intn(4)
				ps := make([]float64, n)
				for i := range ps {
					ps[i] = r.Float64()
				}
				leaves := leafSignals(ps...)
				tr := Build[Signal](alg, leaves)
				checkTree(t, tr, n)
				_, opt := Enumerate[Signal](alg, leaves, 0)
				got := TotalCost[Signal](alg, tr)
				if got > opt+1e-9 {
					t.Fatalf("%v/%v: Huffman cost %v > optimal %v for %v", style, gate, got, opt, ps)
				}
			}
		}
	}
}

func TestModifiedHuffmanNearOptimalStatic(t *testing.T) {
	// Table 1 regime: static AND decomposition with random probabilities.
	// The paper reports ~94% optimality on average; require the greedy to
	// be optimal in a clear majority and never worse than 10% off.
	r := rand.New(rand.NewSource(13))
	alg := SignalAlgebra{Gate: GateAnd, Style: Static}
	trials, optimal := 0, 0
	for n := 3; n <= 6; n++ {
		for trial := 0; trial < 50; trial++ {
			ps := make([]float64, n)
			for i := range ps {
				ps[i] = r.Float64()
			}
			leaves := leafSignals(ps...)
			tr := BuildModified[Signal](alg, leaves)
			checkTree(t, tr, n)
			got := TotalCost[Signal](alg, tr)
			_, opt := Enumerate[Signal](alg, leaves, 0)
			if got < opt-1e-9 {
				t.Fatalf("greedy beat the exhaustive optimum: %v < %v", got, opt)
			}
			if got <= opt+1e-9 {
				optimal++
			} else if got > opt*1.30 {
				t.Fatalf("greedy %v more than 30%% off optimal %v for %v", got, opt, ps)
			}
			trials++
		}
	}
	if rate := float64(optimal) / float64(trials); rate < 0.75 {
		t.Errorf("optimality rate %.2f below 0.75", rate)
	}
}

func TestBuildBalancedShape(t *testing.T) {
	alg := SignalAlgebra{Gate: GateAnd, Style: Static}
	for n := 1; n <= 9; n++ {
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = 0.5
		}
		tr := BuildBalanced[Signal](alg, leafSignals(ps...))
		checkTree(t, tr, n)
		want := ceilLog2(n)
		if h := tr.Height(); h != want {
			t.Errorf("n=%d: balanced height %d, want %d", n, h, want)
		}
	}
}

func TestBuildBoundedRespectsBound(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, modified := range []bool{false, true} {
		alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
		if modified {
			alg.Style = Static
		}
		for trial := 0; trial < 80; trial++ {
			n := 2 + r.Intn(7)
			ps := make([]float64, n)
			for i := range ps {
				ps[i] = r.Float64()
			}
			leaves := leafSignals(ps...)
			minL := ceilLog2(n)
			for L := minL; L <= n; L++ {
				tr, err := BuildBounded[Signal](alg, leaves, L, modified)
				if err != nil {
					t.Fatalf("BuildBounded(n=%d,L=%d): %v", n, L, err)
				}
				checkTree(t, tr, n)
				if h := tr.Height(); h > L {
					t.Fatalf("height %d exceeds bound %d (n=%d modified=%v)", h, L, n, modified)
				}
			}
		}
	}
}

func TestBuildBoundedQuality(t *testing.T) {
	// Bounded trees should be close to the bounded-enumeration optimum.
	r := rand.New(rand.NewSource(19))
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	worst := 1.0
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(3)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = 0.05 + 0.9*r.Float64()
		}
		leaves := leafSignals(ps...)
		L := ceilLog2(n) // tightest possible bound forces restructuring
		tr, err := BuildBounded[Signal](alg, leaves, L, false)
		if err != nil {
			t.Fatal(err)
		}
		got := TotalCost[Signal](alg, tr)
		_, opt := Enumerate[Signal](alg, leaves, L)
		if got < opt-1e-9 {
			t.Fatalf("bounded build beat bounded enumeration: %v < %v", got, opt)
		}
		if opt > 0 && got/opt > worst {
			worst = got / opt
		}
	}
	if worst > 1.25 {
		t.Errorf("bounded construction up to %.2fx off the bounded optimum", worst)
	}
}

func TestBuildBoundedTooTight(t *testing.T) {
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	if _, err := BuildBounded[Signal](alg, leafSignals(0.1, 0.2, 0.3, 0.4, 0.5), 2, false); err == nil {
		t.Error("expected error for 5 leaves with height bound 2")
	}
}

func TestBuildBoundedSingleLeaf(t *testing.T) {
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	tr, err := BuildBounded[Signal](alg, leafSignals(0.4), 3, false)
	if err != nil || !tr.IsLeaf() {
		t.Errorf("single leaf: %v %v", tr, err)
	}
}

func TestEnumerateBoundedFiltersHeight(t *testing.T) {
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	leaves := leafSignals(0.1, 0.2, 0.3, 0.4)
	trU, _ := Enumerate[Signal](alg, leaves, 0)
	trB, _ := Enumerate[Signal](alg, leaves, 2)
	if trB.Height() > 2 {
		t.Errorf("bounded enumeration returned height %d", trB.Height())
	}
	if trU.Height() < trB.Height() {
		t.Error("unbounded optimum shallower than bounded optimum?")
	}
}

func TestLinearBoundedDepthsOptimal(t *testing.T) {
	// The classic package-merge must match the textbook example: it
	// minimizes weighted path length subject to the bound.
	weights := []float64{1, 1, 5, 7, 10, 14}
	depths, ok := linearBoundedDepths(weights, 4)
	if !ok {
		t.Fatal("no valid depth profile")
	}
	if !validDepths(depths, 4) {
		t.Fatalf("invalid depths %v", depths)
	}
	cost := 0.0
	for i, d := range depths {
		cost += weights[i] * float64(d)
	}
	// Exhaustively verify optimality over all valid profiles.
	best := bruteBoundedLinear(weights, 4)
	if math.Abs(cost-best) > 1e-9 {
		t.Errorf("package-merge cost %v, optimal %v (depths %v)", cost, best, depths)
	}
}

// bruteBoundedLinear finds the optimal bounded weighted path length by
// enumerating sorted depth profiles satisfying Kraft equality.
func bruteBoundedLinear(weights []float64, limit int) float64 {
	n := len(weights)
	ws := append([]float64(nil), weights...)
	sort.Float64s(ws)
	best := math.Inf(1)
	depths := make([]int, n)
	unit := int64(1) << uint(limit)
	var rec func(i int, rem int64, minDepth int)
	rec = func(i int, rem int64, minDepth int) {
		if i == n {
			if rem == 0 {
				cost := 0.0
				// Heavier weights get shallower depths: pair sorted weights
				// ascending with depths descending (depths built descending).
				for k, d := range depths {
					cost += ws[k] * float64(d)
				}
				if cost < best {
					best = cost
				}
			}
			return
		}
		for d := limit; d >= minDepth; d-- {
			w := unit >> uint(d)
			if w > rem {
				continue
			}
			depths[i] = d
			rec(i+1, rem-w, 1)
		}
	}
	rec(0, unit, 1)
	return best
}

func TestCorrDominoIndependentMatchesPlain(t *testing.T) {
	// With joint[i][j] = P(i)P(j), the correlated algebra degenerates to
	// the independent product rule.
	p1 := []float64{0.3, 0.4, 0.7}
	joint := make([][]float64, 3)
	for i := range joint {
		joint[i] = make([]float64, 3)
		for j := range joint[i] {
			joint[i][j] = p1[i] * p1[j]
		}
	}
	alg, err := NewCorrDomino(false, p1, joint)
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildModified[CorrState](alg, alg.Leaves())
	checkTree(t, tr, 3)
	got := TotalCost[CorrState](alg, tr)
	plain := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	want := TotalCost[Signal](plain, BuildModified[Signal](plain, leafSignals(p1...)))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("independent-correlated cost %v != plain cost %v", got, want)
	}
}

func TestCorrDominoPerfectCorrelation(t *testing.T) {
	// Two perfectly correlated signals: P(a AND b) = P(a).
	p1 := []float64{0.5, 0.5}
	cond := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	alg, err := NewCorrDomino(false, p1, cond)
	if err != nil {
		t.Fatal(err)
	}
	leaves := alg.Leaves()
	m := alg.Merge(leaves[0], leaves[1])
	if math.Abs(m.P1-0.5) > 1e-12 {
		t.Errorf("P(a AND a) = %v, want 0.5", m.P1)
	}
}

func TestCorrDominoValidation(t *testing.T) {
	if _, err := NewCorrDomino(false, []float64{0.5, 0.5}, [][]float64{{1}}); err == nil {
		t.Error("bad table shape accepted")
	}
	if _, err := NewCorrDomino(false, []float64{0.5}, [][]float64{{1, 1}}); err == nil {
		t.Error("bad row shape accepted")
	}
}

func TestCorrDominoNType(t *testing.T) {
	p1 := []float64{0.3, 0.4}
	cond := [][]float64{{0.3, 0.2}, {0.2, 0.4}}
	alg, _ := NewCorrDomino(true, p1, cond)
	leaves := alg.Leaves()
	m := alg.Merge(leaves[0], leaves[1])
	if got := alg.Cost(m); math.Abs(got-(1-m.P1)) > 1e-12 {
		t.Errorf("n-type cost %v, want %v", got, 1-m.P1)
	}
}

func TestOracleAlgebra(t *testing.T) {
	// An oracle that mimics domino-p products must reproduce Build exactly.
	alg := OracleAlgebra[float64]{
		MergeFn: func(a, b float64) float64 { return a * b },
		CostFn:  func(s float64) float64 { return s },
	}
	leaves := []float64{0.3, 0.4, 0.7, 0.5}
	tr := Build[float64](alg, leaves)
	checkTree(t, tr, 4)
	want := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	trWant := Build[Signal](want, leafSignals(leaves...))
	if math.Abs(TotalCost[float64](alg, tr)-TotalCost[Signal](want, trWant)) > 1e-12 {
		t.Error("oracle algebra diverges from signal algebra")
	}
}

func TestTreeAccessors(t *testing.T) {
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	tr := Build[Signal](alg, leafSignals(0.2, 0.8))
	if tr.IsLeaf() || tr.Leaves() != 2 || tr.Height() != 1 {
		t.Errorf("tree accessors wrong: leaves=%d height=%d", tr.Leaves(), tr.Height())
	}
}
