package huffman

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearBoundedDepthsRandomOptimal(t *testing.T) {
	// Property: the classic package-merge minimizes Σ wᵢ·lᵢ over all valid
	// bounded depth profiles, for random weights.
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(5)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.1 + 10*r.Float64()
		}
		minL := ceilLog2(n)
		for L := minL; L <= minL+2; L++ {
			depths, ok := linearBoundedDepths(weights, L)
			if !ok {
				t.Fatalf("n=%d L=%d: no profile", n, L)
			}
			if !validDepths(depths, L) {
				t.Fatalf("n=%d L=%d: invalid profile %v", n, L, depths)
			}
			// depths[i] is the depth of original leaf i (counts are kept
			// per original index through the internal sorting).
			cost := 0.0
			for i, d := range depths {
				cost += weights[i] * float64(d)
			}
			best := bruteBoundedLinear(weights, L)
			if cost > best+1e-9 {
				t.Fatalf("n=%d L=%d: package-merge cost %v > optimal %v (weights %v depths %v)",
					n, L, cost, best, weights, depths)
			}
		}
	}
}

func TestBalancedDepthsAlwaysValid(t *testing.T) {
	for n := 2; n <= 33; n++ {
		d := balancedDepths(n, ceilLog2(n))
		if !validDepths(d, ceilLog2(n)) {
			t.Errorf("n=%d: balanced depths %v invalid", n, d)
		}
	}
}

func TestValidDepths(t *testing.T) {
	cases := []struct {
		depths []int
		limit  int
		want   bool
	}{
		{[]int{1, 1}, 1, true},
		{[]int{1, 2, 2}, 2, true},
		{[]int{2, 2, 2, 2}, 2, true},
		{[]int{1, 1, 1}, 2, false}, // Kraft > 1
		{[]int{2, 2, 2}, 2, false}, // Kraft < 1
		{[]int{0, 1}, 1, false},    // depth 0 forbidden
		{[]int{1, 3}, 2, false},    // exceeds limit
		{[]int{1, 2, 3, 3}, 3, true},
	}
	for _, tc := range cases {
		if got := validDepths(tc.depths, tc.limit); got != tc.want {
			t.Errorf("validDepths(%v, %d) = %v, want %v", tc.depths, tc.limit, got, tc.want)
		}
	}
}

func TestBuildBoundedMatchesTheorem23(t *testing.T) {
	// Theorem 2.3 regime: domino (quasi-linear) weights. BuildBounded must
	// track the bounded enumeration optimum closely; measure the rate.
	r := rand.New(rand.NewSource(89))
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	matches, trials := 0, 0
	worst := 1.0
	for trial := 0; trial < 80; trial++ {
		n := 4 + r.Intn(4)
		leaves := make([]Signal, n)
		for i := range leaves {
			leaves[i] = SignalFromProb(0.05 + 0.9*r.Float64())
		}
		L := ceilLog2(n)
		tr, err := BuildBounded[Signal](alg, leaves, L, false)
		if err != nil {
			t.Fatal(err)
		}
		got := TotalCost[Signal](alg, tr)
		_, opt := Enumerate[Signal](alg, leaves, L)
		trials++
		if got <= opt+1e-9 {
			matches++
		}
		if opt > 0 && got/opt > worst {
			worst = got / opt
		}
	}
	if rate := float64(matches) / float64(trials); rate < 0.70 {
		t.Errorf("bounded construction optimal in only %.0f%% of trials", 100*rate)
	}
	if worst > 1.2 {
		t.Errorf("worst bounded ratio %.3f exceeds 1.2", worst)
	}
}

func TestBuildBoundedModifiedStatic(t *testing.T) {
	// The general-F (modified) variant under the static model.
	r := rand.New(rand.NewSource(97))
	alg := SignalAlgebra{Gate: GateAnd, Style: Static}
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(4)
		leaves := make([]Signal, n)
		for i := range leaves {
			leaves[i] = SignalFromProb(r.Float64())
		}
		L := ceilLog2(n)
		tr, err := BuildBounded[Signal](alg, leaves, L, true)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Height() > L {
			t.Fatalf("height %d > %d", tr.Height(), L)
		}
		got := TotalCost[Signal](alg, tr)
		_, opt := Enumerate[Signal](alg, leaves, L)
		if got < opt-1e-9 {
			t.Fatalf("impossible: %v < bounded optimum %v", got, opt)
		}
		if opt > 0 && got/opt > 1.35 {
			t.Errorf("static bounded ratio %.3f too far off", got/opt)
		}
	}
}

func TestPackLevelModifiedPairsAll(t *testing.T) {
	// The modified PACKAGE step must consume items in pairs, halving the
	// list (odd leftover dropped), like the classic step.
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	items := make([]pmItem[Signal], 7)
	for i := range items {
		s := SignalFromProb(float64(i+1) / 8)
		counts := make([]int, 7)
		counts[i] = 1
		items[i] = pmItem[Signal]{state: s, cost: alg.Cost(s), counts: counts}
	}
	out := packLevel[Signal](alg, items, true)
	if len(out) != 3 {
		t.Fatalf("modified packaging produced %d packages from 7 items, want 3", len(out))
	}
	classic := packLevel[Signal](alg, items, false)
	if len(classic) != 3 {
		t.Fatalf("classic packaging produced %d packages from 7 items, want 3", len(classic))
	}
	// Packages carry merged leaf counts.
	for _, p := range out {
		total := 0
		for _, c := range p.counts {
			total += c
		}
		if total != 2 {
			t.Errorf("package holds %d leaves, want 2", total)
		}
	}
}

func TestBoundedGreedyFallbackNeverExceedsBound(t *testing.T) {
	alg := SignalAlgebra{Gate: GateAnd, Style: DominoP}
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(14)
		leaves := make([]Signal, n)
		for i := range leaves {
			leaves[i] = SignalFromProb(r.Float64())
		}
		L := ceilLog2(n) + r.Intn(3)
		tr := buildBoundedGreedy[Signal](alg, leaves, L)
		if tr == nil {
			t.Fatalf("greedy returned nil for n=%d L=%d", n, L)
		}
		if tr.Height() > L {
			t.Fatalf("greedy height %d > %d", tr.Height(), L)
		}
		if got := tr.Leaves(); got != n {
			t.Fatalf("greedy lost leaves: %d != %d", got, n)
		}
		if math.IsNaN(TotalCost[Signal](alg, tr)) {
			t.Fatal("NaN cost")
		}
	}
}
