// Package huffman implements the weighted binary-tree construction
// algorithms of Section 2 of the paper:
//
//   - Algorithm 2.1, Huffman's construction, optimal for quasi-linear weight
//     combination functions (domino CMOS with uncorrelated inputs);
//   - Algorithm 2.2, the Modified Huffman greedy construction for general
//     weight combination functions (static CMOS, correlated inputs);
//   - Algorithm 2.3, the Larmore–Hirschberg package-merge construction for
//     BOUNDED-HEIGHT trees, in both its classic pairing form and the
//     paper's modified (min-F pairing) form;
//   - a balanced construction (the conventional-decomposition baseline);
//   - an exhaustive enumerator used as the optimality oracle (Table 1).
//
// The algorithms are generic over the subtree state type S and an Algebra
// that combines two child states into a parent state and prices a state.
// The tree cost function G is the sum of Cost over all internal nodes,
// which is the paper's total-switching-activity objective.
package huffman

import (
	"fmt"
	"math"
	"sort"
)

// Algebra combines child states and prices the resulting node.
type Algebra[S any] interface {
	// Merge returns the state of a parent whose children have states a and b.
	Merge(a, b S) S
	// Cost returns the switching cost charged for a node with state s.
	Cost(s S) float64
}

// Tree is a binary decomposition tree. Leaves carry the index of the
// corresponding input in the original leaf slice; internal nodes have both
// children non-nil.
type Tree[S any] struct {
	Leaf        int // leaf index, or -1 for internal nodes
	State       S
	Left, Right *Tree[S]
}

// IsLeaf reports whether t is a leaf.
func (t *Tree[S]) IsLeaf() bool { return t.Left == nil }

// Height returns the edge-count height of the tree (0 for a leaf).
func (t *Tree[S]) Height() int {
	if t.IsLeaf() {
		return 0
	}
	l, r := t.Left.Height(), t.Right.Height()
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves under t.
func (t *Tree[S]) Leaves() int {
	if t.IsLeaf() {
		return 1
	}
	return t.Left.Leaves() + t.Right.Leaves()
}

// TotalCost returns the tree cost G: the sum of Cost over internal nodes.
func TotalCost[S any](alg Algebra[S], t *Tree[S]) float64 {
	if t == nil || t.IsLeaf() {
		return 0
	}
	return alg.Cost(t.State) + TotalCost(alg, t.Left) + TotalCost(alg, t.Right)
}

func leafTrees[S any](leaves []S) []*Tree[S] {
	ts := make([]*Tree[S], len(leaves))
	for i, s := range leaves {
		ts[i] = &Tree[S]{Leaf: i, State: s}
	}
	return ts
}

func merge[S any](alg Algebra[S], a, b *Tree[S]) *Tree[S] {
	return &Tree[S]{Leaf: -1, State: alg.Merge(a.State, b.State), Left: a, Right: b}
}

// Build implements Algorithm 2.1: repeatedly merge the two subtrees of
// smallest cost. Optimal when the weight combination function is
// quasi-linear (Theorem 2.2). It panics on an empty leaf slice.
func Build[S any](alg Algebra[S], leaves []S) *Tree[S] {
	work := leafTreesChecked[S](leaves)
	for len(work) > 1 {
		// Select the two minimum-cost subtrees.
		i0, i1 := minTwo(alg, work)
		m := merge(alg, work[i0], work[i1])
		work = replacePair(work, i0, i1, m)
	}
	return work[0]
}

func leafTreesChecked[S any](leaves []S) []*Tree[S] {
	if len(leaves) == 0 {
		panic("huffman: no leaves")
	}
	return leafTrees(leaves)
}

func minTwo[S any](alg Algebra[S], work []*Tree[S]) (int, int) {
	i0, i1 := -1, -1
	c0, c1 := math.Inf(1), math.Inf(1)
	for i, t := range work {
		c := alg.Cost(t.State)
		switch {
		case c < c0:
			i1, c1 = i0, c0
			i0, c0 = i, c
		case c < c1:
			i1, c1 = i, c
		}
	}
	return i0, i1
}

func replacePair[S any](work []*Tree[S], i0, i1 int, m *Tree[S]) []*Tree[S] {
	if i1 < i0 {
		i0, i1 = i1, i0
	}
	work[i0] = m
	work[i1] = work[len(work)-1]
	return work[:len(work)-1]
}

// BuildModified implements Algorithm 2.2: at each step merge the pair whose
// combined node has minimum cost. This is the greedy heuristic the paper
// uses for non-quasi-linear weight combination functions.
func BuildModified[S any](alg Algebra[S], leaves []S) *Tree[S] {
	work := leafTreesChecked[S](leaves)
	for len(work) > 1 {
		bi, bj := bestPair(alg, work)
		m := merge(alg, work[bi], work[bj])
		work = replacePair(work, bi, bj, m)
	}
	return work[0]
}

func bestPair[S any](alg Algebra[S], work []*Tree[S]) (int, int) {
	bi, bj := -1, -1
	best := math.Inf(1)
	for i := 0; i < len(work); i++ {
		for j := i + 1; j < len(work); j++ {
			c := alg.Cost(alg.Merge(work[i].State, work[j].State))
			if c < best {
				best, bi, bj = c, i, j
			}
		}
	}
	return bi, bj
}

// BuildBalanced builds a balanced tree over the leaves in the given order by
// pairing adjacent subtrees round by round. This models the conventional
// technology decomposition used as the paper's baseline (Methods I and IV).
func BuildBalanced[S any](alg Algebra[S], leaves []S) *Tree[S] {
	work := leafTreesChecked[S](leaves)
	for len(work) > 1 {
		var next []*Tree[S]
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, merge(alg, work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// Enumerate exhaustively searches all binary trees over the leaves (all
// (2n-3)!! shapes) and returns a minimum-cost tree and its cost. When
// maxHeight > 0, only trees of height at most maxHeight are considered; it
// returns nil if no tree satisfies the bound. Exponential; intended for the
// Table 1 experiment and as a test oracle (n ≤ 8 or so).
func Enumerate[S any](alg Algebra[S], leaves []S, maxHeight int) (*Tree[S], float64) {
	work := leafTreesChecked[S](leaves)
	var best *Tree[S]
	bestCost := math.Inf(1)
	var rec func(ts []*Tree[S], acc float64)
	rec = func(ts []*Tree[S], acc float64) {
		if acc >= bestCost {
			return // branch-and-bound: costs are non-negative
		}
		if len(ts) == 1 {
			t := ts[0]
			if maxHeight > 0 && t.Height() > maxHeight {
				return
			}
			best, bestCost = t, acc
			return
		}
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				m := merge(alg, ts[i], ts[j])
				next := make([]*Tree[S], 0, len(ts)-1)
				for k, t := range ts {
					if k != i && k != j {
						next = append(next, t)
					}
				}
				next = append(next, m)
				rec(next, acc+alg.Cost(m.State))
			}
		}
	}
	rec(work, 0)
	return best, bestCost
}

// Telemetry collects construction counters from one BuildBoundedObserved
// call. It is a plain value so this package stays free of observability
// dependencies; callers fold it into their metrics registry.
type Telemetry struct {
	// PackageMergeLevels is the number of level lists the package-merge
	// construction generated.
	PackageMergeLevels int
	// PackageMergeItems is the total item count across all level lists.
	PackageMergeItems int64
	// MaxListLen is the longest level list encountered.
	MaxListLen int
	// Candidates is the number of feasible candidate trees compared.
	Candidates int
}

func (t *Telemetry) observeList(n int) {
	if t == nil {
		return
	}
	t.PackageMergeLevels++
	t.PackageMergeItems += int64(n)
	if n > t.MaxListLen {
		t.MaxListLen = n
	}
}

// BuildBounded implements Algorithm 2.3: the Larmore–Hirschberg
// package-merge construction of a minimum-cost tree of height at most limit.
// With modified=false the PACKAGE step pairs consecutive items in cost
// order (the classic algorithm, optimal for quasi-linear weight
// combinations, Theorem 2.3); with modified=true it pairs items by minimum
// combined cost, the paper's O(n²L) generalization for arbitrary weight
// combination functions.
//
// It returns an error when limit < ceil(log2(n)), for which no binary tree
// exists.
func BuildBounded[S any](alg Algebra[S], leaves []S, limit int, modified bool) (*Tree[S], error) {
	return BuildBoundedObserved(alg, leaves, limit, modified, nil)
}

// BuildBoundedObserved is BuildBounded with construction telemetry
// recorded into tel (which may be nil).
func BuildBoundedObserved[S any](alg Algebra[S], leaves []S, limit int, modified bool, tel *Telemetry) (*Tree[S], error) {
	n := len(leaves)
	if n == 0 {
		return nil, fmt.Errorf("huffman: no leaves")
	}
	if n == 1 {
		return &Tree[S]{Leaf: 0, State: leaves[0]}, nil
	}
	if limit < ceilLog2(n) {
		return nil, fmt.Errorf("huffman: height bound %d < ceil(log2(%d)) = %d", limit, n, ceilLog2(n))
	}
	// Unbounded result may already satisfy the bound; prefer it since the
	// bounded construction can only match or worsen the cost.
	var unb *Tree[S]
	if modified {
		unb = BuildModified(alg, leaves)
	} else {
		unb = Build(alg, leaves)
	}
	if unb.Height() <= limit {
		return unb, nil
	}
	// Generate candidate trees from several constructions and keep the
	// cheapest: exhaustive search when the instance is small enough, the
	// feasibility-constrained greedy, the generalized package-merge
	// profile, the classic linear package-merge profile, and a balanced
	// profile as a guaranteed-feasible fallback.
	var candidates []*Tree[S]
	if n <= 8 {
		// (2n-3)!! ≤ 10395 shapes with branch-and-bound: exact and cheap.
		if tr, _ := Enumerate(alg, leaves, limit); tr != nil {
			candidates = append(candidates, tr)
		}
	}
	candidates = append(candidates, buildBoundedGreedy(alg, leaves, limit))
	if depths, ok := packageMerge(alg, leaves, limit, modified, tel); ok {
		if t, err := treeFromDepths(alg, leaves, depths); err == nil {
			candidates = append(candidates, t)
		}
	}
	costs := make([]float64, n)
	for i, s := range leaves {
		costs[i] = alg.Cost(s)
	}
	if depths, ok := linearBoundedDepths(costs, limit); ok {
		if t, err := treeFromDepths(alg, leaves, depths); err == nil {
			candidates = append(candidates, t)
		}
	}
	if t, err := treeFromDepths(alg, leaves, balancedDepths(n, limit)); err == nil {
		candidates = append(candidates, t)
	}
	var best *Tree[S]
	bestCost := math.Inf(1)
	for _, t := range candidates {
		if t == nil || t.Height() > limit {
			continue
		}
		if tel != nil {
			tel.Candidates++
		}
		if c := TotalCost(alg, t); c < bestCost {
			best, bestCost = t, c
		}
	}
	if best == nil {
		return nil, fmt.Errorf("huffman: no bounded tree found for n=%d, limit=%d", n, limit)
	}
	return best, nil
}

// buildBoundedGreedy merges the feasible pair with minimum combined cost at
// each step, where a merge is feasible when the remaining subtrees can still
// be packed into a tree of height ≤ limit (Kraft condition Σ 2^hᵢ ≤ 2^limit
// over subtree heights hᵢ).
func buildBoundedGreedy[S any](alg Algebra[S], leaves []S, limit int) *Tree[S] {
	type item struct {
		t *Tree[S]
		h int
	}
	work := make([]item, len(leaves))
	for i, s := range leaves {
		work[i] = item{t: &Tree[S]{Leaf: i, State: s}, h: 0}
	}
	sum := int64(len(leaves))
	capSum := int64(1) << uint(limit)
	for len(work) > 1 {
		bi, bj := -1, -1
		bestCost := math.Inf(1)
		var bestSum int64 = math.MaxInt64
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				newH := work[i].h
				if work[j].h > newH {
					newH = work[j].h
				}
				newH++
				newSum := sum - (1 << uint(work[i].h)) - (1 << uint(work[j].h)) + (1 << uint(newH))
				if newH > limit || newSum > capSum {
					continue
				}
				c := alg.Cost(alg.Merge(work[i].t.State, work[j].t.State))
				if c < bestCost || (c == bestCost && newSum < bestSum) {
					bestCost, bestSum, bi, bj = c, newSum, i, j
				}
			}
		}
		if bi < 0 {
			// No pair passed the feasibility scan; merge the two shallowest
			// subtrees, which perturbs the Kraft sum least.
			s0, s1 := 0, 1
			for k := 2; k < len(work); k++ {
				if work[k].h < work[s0].h {
					s1, s0 = s0, k
				} else if work[k].h < work[s1].h {
					s1 = k
				}
			}
			bi, bj = s0, s1
			if bi > bj {
				bi, bj = bj, bi
			}
		}
		newH := work[bi].h
		if work[bj].h > newH {
			newH = work[bj].h
		}
		newH++
		sum = sum - (1 << uint(work[bi].h)) - (1 << uint(work[bj].h)) + (1 << uint(newH))
		m := item{t: merge(alg, work[bi].t, work[bj].t), h: newH}
		work[bi] = m
		work[bj] = work[len(work)-1]
		work = work[:len(work)-1]
	}
	if work[0].h > limit {
		return nil
	}
	return work[0].t
}

// linearBoundedDepths is the classic Larmore–Hirschberg algorithm on scalar
// additive weights: it minimizes Σ wᵢ·lᵢ subject to lᵢ ≤ limit and returns
// the optimal depth profile.
func linearBoundedDepths(weights []float64, limit int) ([]int, bool) {
	type item struct {
		weight float64
		counts []int
	}
	n := len(weights)
	mkLeaves := func() []item {
		items := make([]item, n)
		for i, w := range weights {
			counts := make([]int, n)
			counts[i] = 1
			items[i] = item{weight: w, counts: counts}
		}
		sort.SliceStable(items, func(a, b int) bool { return items[a].weight < items[b].weight })
		return items
	}
	cur := mkLeaves()
	for d := limit; d >= 2; d-- {
		var packages []item
		for i := 0; i+1 < len(cur); i += 2 {
			counts := make([]int, n)
			for k := range counts {
				counts[k] = cur[i].counts[k] + cur[i+1].counts[k]
			}
			packages = append(packages, item{weight: cur[i].weight + cur[i+1].weight, counts: counts})
		}
		next := append(mkLeaves(), packages...)
		sort.SliceStable(next, func(a, b int) bool { return next[a].weight < next[b].weight })
		cur = next
	}
	if len(cur) < 2*n-2 {
		return nil, false
	}
	depths := make([]int, n)
	for _, it := range cur[:2*n-2] {
		for i, c := range it.counts {
			depths[i] += c
		}
	}
	return depths, validDepths(depths, limit)
}

func ceilLog2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

func balancedDepths(n, limit int) []int {
	// A complete binary tree: some leaves at depth d, the rest at d-1.
	d := ceilLog2(n)
	if d < 1 {
		d = 1
	}
	deep := 2 * (n - 1<<(d-1)) // leaves at depth d
	depths := make([]int, n)
	for i := range depths {
		if i < deep {
			depths[i] = d
		} else {
			depths[i] = d - 1
		}
	}
	if n == 1 {
		depths[0] = 0
	}
	_ = limit
	return depths
}

// pmItem is one entry of a package-merge level list: either an original
// leaf or a package of two lower-level items.
type pmItem[S any] struct {
	state  S
	cost   float64
	counts []int // occurrences per leaf index
}

// packageMerge runs the (generalized) package-merge construction and
// returns the per-leaf depths, with ok=false when the selected node set is
// not a valid tree profile (possible for non-additive cost algebras).
// Level-list sizes are recorded into tel when non-nil.
func packageMerge[S any](alg Algebra[S], leaves []S, limit int, modified bool, tel *Telemetry) ([]int, bool) {
	n := len(leaves)
	mkLeafItems := func() []pmItem[S] {
		items := make([]pmItem[S], n)
		for i, s := range leaves {
			counts := make([]int, n)
			counts[i] = 1
			items[i] = pmItem[S]{state: s, cost: alg.Cost(s), counts: counts}
		}
		sort.SliceStable(items, func(a, b int) bool { return items[a].cost < items[b].cost })
		return items
	}
	cur := mkLeafItems()
	tel.observeList(len(cur))
	for d := limit; d >= 2; d-- {
		packages := packLevel(alg, cur, modified)
		next := append(mkLeafItems(), packages...)
		sort.SliceStable(next, func(a, b int) bool { return next[a].cost < next[b].cost })
		cur = next
		tel.observeList(len(cur))
	}
	// Select the first 2n-2 items of the level-1 list.
	if len(cur) < 2*n-2 {
		return nil, false
	}
	depths := make([]int, n)
	for _, it := range cur[:2*n-2] {
		for i, c := range it.counts {
			depths[i] += c
		}
	}
	return depths, validDepths(depths, limit)
}

func packLevel[S any](alg Algebra[S], items []pmItem[S], modified bool) []pmItem[S] {
	combine := func(a, b pmItem[S]) pmItem[S] {
		st := alg.Merge(a.state, b.state)
		counts := make([]int, len(a.counts))
		for i := range counts {
			counts[i] = a.counts[i] + b.counts[i]
		}
		return pmItem[S]{state: st, cost: alg.Cost(st), counts: counts}
	}
	if !modified {
		var out []pmItem[S]
		for i := 0; i+1 < len(items); i += 2 {
			out = append(out, combine(items[i], items[i+1]))
		}
		return out
	}
	// Modified PACKAGE: greedily extract the pair with minimum combined
	// cost, as in Algorithm 2.2.
	work := append([]pmItem[S](nil), items...)
	var out []pmItem[S]
	for len(work) >= 2 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if c := alg.Cost(alg.Merge(work[i].state, work[j].state)); c < best {
					best, bi, bj = c, i, j
				}
			}
		}
		out = append(out, combine(work[bi], work[bj]))
		work[bi] = work[len(work)-1]
		work = work[:len(work)-1]
		if bj == len(work) { // bj pointed at the element we moved into bi
			bj = bi
		}
		work[bj] = work[len(work)-1]
		work = work[:len(work)-1]
	}
	return out
}

// validDepths checks the Kraft equality Σ 2^-l = 1 with every l in [1,limit].
func validDepths(depths []int, limit int) bool {
	sum := int64(0)
	unit := int64(1) << uint(limit)
	for _, d := range depths {
		if d < 1 || d > limit {
			return false
		}
		sum += unit >> uint(d)
	}
	return sum == unit
}

// treeFromDepths assembles a tree realizing the given leaf depths (which
// must satisfy the Kraft equality). Within each level two pairing
// heuristics are evaluated — cheapest-with-most-expensive (which minimizes
// sums of products by the rearrangement inequality) and adjacent-in-cost-
// order — and the pairing with smaller total node cost at that level wins.
func treeFromDepths[S any](alg Algebra[S], leaves []S, depths []int) (*Tree[S], error) {
	maxD := 0
	for _, d := range depths {
		if d > maxD {
			maxD = d
		}
	}
	byDepth := make([][]*Tree[S], maxD+1)
	for i, s := range leaves {
		byDepth[depths[i]] = append(byDepth[depths[i]], &Tree[S]{Leaf: i, State: s})
	}
	for d := maxD; d >= 1; d-- {
		level := byDepth[d]
		if len(level)%2 != 0 {
			return nil, fmt.Errorf("huffman: odd node count %d at depth %d (invalid Kraft profile)", len(level), d)
		}
		sort.SliceStable(level, func(a, b int) bool {
			return alg.Cost(level[a].State) < alg.Cost(level[b].State)
		})
		k := len(level)
		pairAcross := func() ([]*Tree[S], float64) {
			out := make([]*Tree[S], 0, k/2)
			total := 0.0
			for i := 0; i < k/2; i++ {
				m := merge(alg, level[i], level[k-1-i])
				total += alg.Cost(m.State)
				out = append(out, m)
			}
			return out, total
		}
		pairAdjacent := func() ([]*Tree[S], float64) {
			out := make([]*Tree[S], 0, k/2)
			total := 0.0
			for i := 0; i+1 < k; i += 2 {
				m := merge(alg, level[i], level[i+1])
				total += alg.Cost(m.State)
				out = append(out, m)
			}
			return out, total
		}
		p1, c1 := pairAcross()
		p2, c2 := pairAdjacent()
		promoted := p1
		if c2 < c1 {
			promoted = p2
		}
		byDepth[d-1] = append(byDepth[d-1], promoted...)
	}
	if len(byDepth[0]) != 1 {
		return nil, fmt.Errorf("huffman: depth profile does not reduce to a single root")
	}
	return byDepth[0][0], nil
}
