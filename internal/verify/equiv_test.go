package verify

import (
	"context"
	"errors"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/network"
)

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

const refBlif = `
.model ref
.inputs a b c
.outputs y z
.names a b t
11 1
.names t c y
1- 1
-1 1
.names a c z
10 1
.end
`

func TestEquivalentProvesEqual(t *testing.T) {
	ref := mustParse(t, refBlif)
	// Same functions, different structure: y = ab + c via distributed form,
	// z = a·c̄ directly.
	impl := mustParse(t, `
.model impl
.inputs a b c
.outputs y z
.names a b c y
11- 1
--1 1
.names c a z
01 1
.end
`)
	if err := Equivalent(context.Background(), ref, impl); err != nil {
		t.Fatalf("equivalent networks rejected: %v", err)
	}
}

func TestEquivalentFindsCounterexample(t *testing.T) {
	ref := mustParse(t, refBlif)
	// z is a·c̄ in ref but a·c here; y is unchanged.
	impl := mustParse(t, `
.model impl
.inputs a b c
.outputs y z
.names a b t
11 1
.names t c y
1- 1
-1 1
.names a c z
11 1
.end
`)
	err := Equivalent(context.Background(), ref, impl)
	if err == nil {
		t.Fatal("inequivalent networks accepted")
	}
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("want *MismatchError, got %T: %v", err, err)
	}
	if mm.Output != "z" {
		t.Fatalf("mismatch reported on output %q, want z", mm.Output)
	}
	if len(mm.Cube) != len(ref.PIs) {
		t.Fatalf("cube width %d, want %d", len(mm.Cube), len(ref.PIs))
	}
	// The counterexample must actually distinguish the networks.
	w := mm.Witness()
	if ref.Eval(w)[mm.Output] == impl.Eval(w)[mm.Output] {
		t.Fatalf("counterexample %v does not distinguish output %s", w, mm.Output)
	}
}

func TestEquivalentStructuralMismatches(t *testing.T) {
	ref := mustParse(t, refBlif)
	cases := map[string]string{
		"PI count":       ".model x\n.inputs a b\n.outputs y z\n.names a b y\n11 1\n.names a b z\n10 1\n.end\n",
		"PI names":       ".model x\n.inputs a b q\n.outputs y z\n.names a b q y\n111 1\n.names a q z\n10 1\n.end\n",
		"missing output": ".model x\n.inputs a b c\n.outputs y w\n.names a b t\n11 1\n.names t c y\n1- 1\n-1 1\n.names a c w\n10 1\n.end\n",
	}
	for name, text := range cases {
		err := Equivalent(context.Background(), ref, mustParse(t, text))
		if err == nil {
			t.Errorf("%s mismatch accepted", name)
			continue
		}
		var mm *MismatchError
		if errors.As(err, &mm) {
			t.Errorf("%s mismatch reported as functional counterexample: %v", name, err)
		}
	}
}

func TestEquivalentCancellation(t *testing.T) {
	ref := mustParse(t, refBlif)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Equivalent(ctx, ref, ref.Duplicate()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled check returned %v", err)
	}
}
