package verify

import (
	"context"
	"fmt"
	"strings"

	"powermap/internal/bdd"
	"powermap/internal/network"
	"powermap/internal/sop"
)

// MismatchError reports a disproved output equivalence together with one
// concrete counterexample: a cube over the reference network's primary
// inputs (declaration order) on which the two networks disagree. Don't-care
// positions mean the disagreement holds for either value of that input.
type MismatchError struct {
	// Output is the name of the differing primary output.
	Output string
	// PINames are the reference network's primary inputs in declaration
	// order, indexing Cube.
	PINames []string
	// Cube is a satisfying cube of ref_output XOR impl_output.
	Cube sop.Cube
}

// Error renders the counterexample in PI=value form, e.g.
// "output y differs; counterexample a=1 b=0 c=-".
func (e *MismatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: output %s differs; counterexample", e.Output)
	for i, name := range e.PINames {
		fmt.Fprintf(&b, " %s=%s", name, e.Cube[i].String())
	}
	return b.String()
}

// Witness returns a full concrete assignment realizing the counterexample
// (don't-care inputs are set to 0), suitable for Network.Eval.
func (e *MismatchError) Witness() map[string]bool {
	w := make(map[string]bool, len(e.PINames))
	for i, name := range e.PINames {
		w[name] = e.Cube[i] == sop.Pos
	}
	return w
}

// Equivalent proves that ref and impl compute identical output functions
// over the same primary inputs, by building global ROBDDs for both networks
// in one shared manager whose variable order is ref's PI declaration order.
// Outputs are matched by name. On a disproof the returned error is a
// *MismatchError carrying a counterexample cube extracted from the XOR of
// the two output functions; structural problems (PI/output mismatches)
// yield ordinary errors. A nil return is a proof of equivalence.
//
// An over-wide pair of networks surfaces as a wrapped bdd.ErrNodeLimit
// (never a panic); use EquivalentWith to raise the limit or enable dynamic
// reordering for such cases.
func Equivalent(ctx context.Context, ref, impl *network.Network) error {
	return EquivalentWith(ctx, ref, impl, bdd.Config{})
}

// EquivalentWith is Equivalent with an explicit BDD kernel configuration.
func EquivalentWith(ctx context.Context, ref, impl *network.Network, cfg bdd.Config) error {
	if len(ref.PIs) != len(impl.PIs) {
		return fmt.Errorf("verify: PI count mismatch: %d vs %d", len(ref.PIs), len(impl.PIs))
	}
	piNames := ref.PINames()
	index := make(map[string]int, len(piNames))
	for i, name := range piNames {
		index[name] = i
	}
	mgr := bdd.NewWith(len(piNames), cfg)
	defer mgr.Recycle()
	build := func(nw *network.Network) (map[string]bdd.Ref, error) {
		global := make(map[*network.Node]bdd.Ref)
		for _, n := range nw.TopoOrder() {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("verify: %w", err)
			}
			var r bdd.Ref
			var err error
			if n.Kind == network.PI {
				i, ok := index[n.Name]
				if !ok {
					return nil, fmt.Errorf("verify: PI %s missing from reference network", n.Name)
				}
				r, err = mgr.Var(i)
			} else {
				inputs := make([]bdd.Ref, len(n.Fanin))
				for i, f := range n.Fanin {
					inputs[i] = global[f]
				}
				r, err = mgr.FromCover(n.Func, inputs)
			}
			if err != nil {
				if bdd.IsNodeLimit(err) {
					return nil, fmt.Errorf("verify: building BDD of %s: %w (networks too wide for the equivalence oracle; raise the node limit or enable reordering)", n.Name, err)
				}
				return nil, fmt.Errorf("verify: building BDD of %s: %w", n.Name, err)
			}
			global[n] = r
			mgr.Protect(r)
			mgr.Maintain()
		}
		outs := make(map[string]bdd.Ref, len(nw.Outputs))
		for _, o := range nw.Outputs {
			outs[o.Name] = global[o.Driver]
		}
		return outs, nil
	}
	refOuts, err := build(ref)
	if err != nil {
		return err
	}
	implOuts, err := build(impl)
	if err != nil {
		return err
	}
	if len(refOuts) != len(implOuts) {
		return fmt.Errorf("verify: output count mismatch: %d vs %d", len(refOuts), len(implOuts))
	}
	// Walk ref's outputs in declaration order so the first mismatch
	// reported is deterministic.
	for _, o := range ref.Outputs {
		ra := refOuts[o.Name]
		rb, ok := implOuts[o.Name]
		if !ok {
			return fmt.Errorf("verify: output %s missing from implementation", o.Name)
		}
		if ra == rb {
			continue
		}
		diff, err := mgr.Xor(ra, rb)
		if err != nil {
			return fmt.Errorf("verify: extracting counterexample for %s: %w", o.Name, err)
		}
		cube, ok := mgr.AnySat(diff)
		if !ok {
			// Distinct refs always differ somewhere (ROBDD canonicity).
			return fmt.Errorf("verify: output %s differs but no counterexample found", o.Name)
		}
		return &MismatchError{Output: o.Name, PINames: piNames, Cube: cube}
	}
	return nil
}
