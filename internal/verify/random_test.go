package verify

import (
	"context"
	"strings"
	"testing"

	"powermap/internal/blif"
)

func TestRandomNetworkWellFormed(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := RandConfig{Seed: seed, PIs: 6, Nodes: 14, MaxFanin: 4, Depth: 4, Outputs: 3}
		nw := RandomNetwork("rnd", cfg)
		if err := nw.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := nw.Stats()
		// Stats counts output-reachable nodes only; created nodes outside
		// every output cone may dangle.
		if s.PIs != 6 || len(nw.Nodes) != 14 || s.POs != 3 {
			t.Fatalf("seed %d: %d PI / %d nodes / %d PO, want 6 / 14 / 3", seed, s.PIs, len(nw.Nodes), s.POs)
		}
		for _, n := range nw.Nodes {
			if len(n.Fanin) < 2 || len(n.Fanin) > 4 {
				t.Fatalf("seed %d: node %s has %d fanins", seed, n.Name, len(n.Fanin))
			}
			if n.Func.IsZero() || n.Func.IsOne() {
				t.Fatalf("seed %d: node %s is syntactically constant", seed, n.Name)
			}
		}
	}
}

func TestRandomNetworkDeterministic(t *testing.T) {
	cfg := RandConfig{Seed: 42}
	a, b := RandomNetwork("r", cfg), RandomNetwork("r", cfg)
	var wa, wb strings.Builder
	if err := blif.Write(&wa, a); err != nil {
		t.Fatal(err)
	}
	if err := blif.Write(&wb, b); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatal("same seed produced different networks")
	}
	if err := Equivalent(context.Background(), a, b); err != nil {
		t.Fatalf("same-seed networks not equivalent: %v", err)
	}
	c := RandomNetwork("r", RandConfig{Seed: 43})
	var wc strings.Builder
	if err := blif.Write(&wc, c); err != nil {
		t.Fatal(err)
	}
	if wa.String() == wc.String() {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestRandomNetworkDefaultsAndClamps(t *testing.T) {
	nw := RandomNetwork("d", RandConfig{Seed: 1})
	if s := nw.Stats(); s.PIs != 5 || len(nw.Nodes) != 12 || s.POs != 2 {
		t.Fatalf("defaults: %d PI / %d nodes / %d PO", s.PIs, len(nw.Nodes), s.POs)
	}
	// Depth and outputs clamp to the node count.
	tiny := RandomNetwork("t", RandConfig{Seed: 2, PIs: 3, Nodes: 2, Depth: 9, Outputs: 9})
	if st := tiny.Stats(); len(tiny.Nodes) != 2 || st.POs != 2 {
		t.Fatalf("clamped: %d nodes / %d PO", len(tiny.Nodes), st.POs)
	}
}

func TestRandomNetworkRealizesDepth(t *testing.T) {
	// With one node per level the network must form a chain of the full
	// requested depth.
	nw := RandomNetwork("deep", RandConfig{Seed: 7, PIs: 4, Nodes: 6, Depth: 6, Outputs: 1})
	depth := 0
	for _, n := range nw.TopoOrder() {
		d := 0
		for _, f := range n.Fanin {
			if fd := int(f.Arrival) + 1; fd > d {
				d = fd
			}
		}
		n.Arrival = float64(d) // reuse the annotation as a level scratch
		if d > depth {
			depth = d
		}
	}
	if depth != 6 {
		t.Fatalf("depth %d, want 6", depth)
	}
}
