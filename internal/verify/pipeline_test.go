package verify

import (
	"context"
	"errors"
	"testing"

	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/genlib"
	"powermap/internal/mapper"
)

// TestSynthesizePropertyFuzz drives the whole pipeline over seeded random
// networks and proves every run end to end: source ≡ optimized ≡ decomposed
// ≡ mapped, report self-consistent, every curve non-inferior. Modes cycle
// through DAG/tree partitioning × worker counts {1, 8} and all six methods
// (covering unbounded and height-bounded decomposition).
func TestSynthesizePropertyFuzz(t *testing.T) {
	runs := 200
	if testing.Short() {
		runs = 40
	}
	methods := core.Methods()
	ctx := context.Background()
	totalCurves := 0
	for seed := 0; seed < runs; seed++ {
		cfg := RandConfig{
			Seed:     int64(seed),
			PIs:      4 + seed%4,  // 4..7
			Nodes:    8 + seed%9,  // 8..16
			MaxFanin: 2 + seed%3,  // 2..4
			Depth:    3 + seed%3,  // 3..5
			Outputs:  1 + seed%3,  // 1..3
		}
		src := RandomNetwork("fuzz", cfg)
		tree := seed%2 == 1
		workers := 1
		if seed%4 >= 2 {
			workers = 8
		}
		var audit CurveAuditor
		res, err := core.SynthesizeContext(ctx, src, core.Options{
			Method:     methods[seed%len(methods)],
			TreeMode:   tree,
			Workers:    workers,
			CurveAudit: audit.Hook(),
		})
		if err != nil {
			t.Fatalf("seed %d (tree=%v workers=%d): synthesize: %v", seed, tree, workers, err)
		}
		if err := CheckResult(ctx, src, res); err != nil {
			t.Fatalf("seed %d (tree=%v workers=%d): %v", seed, tree, workers, err)
		}
		if audit.Err() != nil {
			t.Fatalf("seed %d: curve invariant: %v", seed, audit.Err())
		}
		// A run may legitimately audit zero curves (quick-opt can collapse a
		// small network to source-driven outputs); require coverage overall.
		totalCurves += audit.Checked()
	}
	if totalCurves == 0 {
		t.Fatal("curve audit hook never ran across the whole fuzz sweep")
	}
}

// TestBundledCircuitsVerify proves original ≡ decomposed ≡ mapped on every
// bundled benchmark under both mapping objectives.
func TestBundledCircuitsVerify(t *testing.T) {
	ctx := context.Background()
	methods := []core.Method{core.MethodI, core.MethodVI}
	for _, b := range circuits.Suite() {
		if testing.Short() && b.Name != "cm42a" && b.Name != "decod" {
			continue
		}
		src := b.Build()
		for _, m := range methods {
			res, err := core.SynthesizeContext(ctx, src, core.Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%v: synthesize: %v", b.Name, m, err)
			}
			if err := CheckResult(ctx, src, res); err != nil {
				t.Errorf("%s/%v: %v", b.Name, m, err)
			}
		}
	}
}

// TestBundledCircuitsVerifyCutBackend proves original ≡ decomposed ≡
// mapped when matching is done by the cut-based NPN backend, in both
// library and generic-LUT modes. The mapped netlist is proven equivalent
// to the source by construction-independent global BDDs, so the proof
// covers the whole AIG/cut/NPN match chain.
func TestBundledCircuitsVerifyCutBackend(t *testing.T) {
	ctx := context.Background()
	for _, b := range circuits.Suite() {
		if testing.Short() && b.Name != "cm42a" && b.Name != "decod" {
			continue
		}
		src := b.Build()
		for _, lut := range []int{0, 4} {
			var audit CurveAuditor
			res, err := core.SynthesizeContext(ctx, src, core.Options{
				Method:     core.MethodVI,
				Mapper:     mapper.BackendCuts,
				LUT:        lut,
				CurveAudit: audit.Hook(),
			})
			if err != nil {
				t.Fatalf("%s/lut=%d: synthesize: %v", b.Name, lut, err)
			}
			if err := CheckResult(ctx, src, res); err != nil {
				t.Errorf("%s/lut=%d: %v", b.Name, lut, err)
			}
			if err := audit.Err(); err != nil {
				t.Errorf("%s/lut=%d: curve invariant: %v", b.Name, lut, err)
			}
		}
	}
}

// TestCorruptedNetlistRejected swaps one mapped gate's cell for a
// functionally different cell with the same pin count and demands the
// equivalence check reject the reconstruction with a counterexample cube.
func TestCorruptedNetlistRejected(t *testing.T) {
	ctx := context.Background()
	b, err := circuits.ByName("cm42a")
	if err != nil {
		t.Fatal(err)
	}
	src := b.Build()
	res, err := core.SynthesizeContext(ctx, src, core.Options{Method: core.MethodVI})
	if err != nil {
		t.Fatal(err)
	}
	lib := genlib.Lib2()
	for _, g := range res.Netlist.Gates {
		orig := g.Cell
		for _, c := range lib.Cells {
			if c == orig || len(c.Pins) != len(orig.Pins) {
				continue
			}
			if c.Cover().Equal(orig.Cover()) {
				continue // same function (e.g. a different drive strength)
			}
			g.Cell = c
			mapped, err := res.Netlist.ToNetwork()
			if err != nil {
				t.Fatal(err)
			}
			err = Equivalent(ctx, src, mapped)
			if err == nil {
				// The corruption was masked downstream; restore and try
				// another injection site.
				g.Cell = orig
				continue
			}
			var mm *MismatchError
			if !errors.As(err, &mm) {
				t.Fatalf("want *MismatchError with counterexample, got %T: %v", err, err)
			}
			w := mm.Witness()
			if src.Eval(w)[mm.Output] == mapped.Eval(w)[mm.Output] {
				t.Fatalf("counterexample %v does not distinguish output %s", w, mm.Output)
			}
			return
		}
	}
	t.Fatal("no cell substitution produced a detectable corruption")
}
