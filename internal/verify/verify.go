// Package verify is the correctness oracle for the synthesis pipeline: a
// BDD-based combinational equivalence checker with counterexample
// extraction, a seeded random-network generator for property-based testing
// of the whole flow, and invariant checkers for the paper's optimality
// claims (Huffman/package-merge tree costs against exhaustive enumeration,
// power-delay curve non-inferiority, mapped-report self-consistency).
//
// The equivalence oracle is independent of the flow under test: it
// rebuilds global ROBDDs for both networks from scratch in a fresh manager
// ordered by the reference network's PI declaration order, so a bug in the
// pipeline's own probability model cannot mask itself. A disproof comes
// back as a *MismatchError carrying a satisfying cube of the XOR of the
// two output functions — a concrete input on which the circuits disagree.
//
// CheckResult chains the checks every synthesis run must pass and is wired
// into eval.RunSuite (making benchmark runs self-verifying) and the pcheck
// CLI (cmd/pcheck).
package verify

import (
	"context"
	"fmt"

	"powermap/internal/bdd"
	"powermap/internal/core"
	"powermap/internal/network"
)

// CheckResult verifies one completed synthesis run end to end against its
// source network: src ≡ optimized network, src ≡ decomposed subject graph,
// src ≡ mapped netlist (reconstructed as a Boolean network from the gate
// list, independently of the pipeline's own gate-by-gate check), and the
// netlist report's internal consistency. Any failure is returned with the
// stage that broke; equivalence failures are *MismatchError values with a
// counterexample cube.
func CheckResult(ctx context.Context, src *network.Network, res *core.Result) error {
	return CheckResultWith(ctx, src, res, bdd.Config{})
}

// CheckResultWith is CheckResult with an explicit BDD kernel configuration
// for the oracle's equivalence managers (node limit, GC, reordering).
func CheckResultWith(ctx context.Context, src *network.Network, res *core.Result, cfg bdd.Config) error {
	if err := EquivalentWith(ctx, src, res.Optimized, cfg); err != nil {
		return fmt.Errorf("optimized network: %w", err)
	}
	if err := EquivalentWith(ctx, src, res.Decomp.Network, cfg); err != nil {
		return fmt.Errorf("decomposed subject graph: %w", err)
	}
	mapped, err := res.Netlist.ToNetwork()
	if err != nil {
		return fmt.Errorf("reconstructing mapped netlist: %w", err)
	}
	if err := mapped.Check(); err != nil {
		return fmt.Errorf("reconstructed mapped netlist: %w", err)
	}
	if err := EquivalentWith(ctx, src, mapped, cfg); err != nil {
		return fmt.Errorf("mapped netlist: %w", err)
	}
	if err := CheckNetlist(res.Netlist); err != nil {
		return fmt.Errorf("netlist report: %w", err)
	}
	return nil
}
