package verify

import (
	"fmt"
	"math/rand"

	"powermap/internal/network"
	"powermap/internal/sop"
)

// RandConfig parameterizes RandomNetwork. The zero value of any field
// selects a sensible default, so RandConfig{Seed: s} is a usable config.
type RandConfig struct {
	// Seed drives the generator; equal configs produce identical networks.
	Seed int64
	// PIs is the number of primary inputs (default 5).
	PIs int
	// Nodes is the number of internal nodes (default 12).
	Nodes int
	// MaxFanin bounds each node's fanin count (default 3, minimum 2).
	MaxFanin int
	// Depth is the number of logic levels the nodes are layered into
	// (default 4, clamped to [1, Nodes]).
	Depth int
	// Outputs is the number of primary outputs (default 2, clamped to
	// [1, Nodes]).
	Outputs int
}

func (c RandConfig) withDefaults() RandConfig {
	if c.PIs <= 0 {
		c.PIs = 5
	}
	if c.Nodes <= 0 {
		c.Nodes = 12
	}
	if c.MaxFanin < 2 {
		c.MaxFanin = 3
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.Depth > c.Nodes {
		c.Depth = c.Nodes
	}
	if c.Outputs <= 0 {
		c.Outputs = 2
	}
	if c.Outputs > c.Nodes {
		c.Outputs = c.Nodes
	}
	return c
}

// RandomNetwork builds a seeded random multi-level network: cfg.Nodes
// internal nodes layered into cfg.Depth levels over cfg.PIs primary
// inputs, each node a random non-constant SOP over 2..MaxFanin distinct
// fanins with at least one fanin drawn from the previous level (so the
// target depth is actually realized). The last level's nodes drive primary
// outputs first; remaining outputs tap random earlier nodes. Nodes outside
// every output cone may dangle (real netlists have them too; quick-opt
// sweeps them). The result is deterministic in cfg and always passes
// Network.Check.
func RandomNetwork(name string, cfg RandConfig) *network.Network {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	nw := network.New(name)
	pis := make([]*network.Node, cfg.PIs)
	for i := range pis {
		pis[i] = nw.AddPI(fmt.Sprintf("pi%02d", i))
	}
	pool := append([]*network.Node(nil), pis...)
	prev := pis
	var last []*network.Node
	made := 0
	width := (cfg.Nodes + cfg.Depth - 1) / cfg.Depth
	for level := 0; level < cfg.Depth && made < cfg.Nodes; level++ {
		var layer []*network.Node
		for w := 0; w < width && made < cfg.Nodes; w++ {
			k := 2
			if cfg.MaxFanin > 2 {
				k += r.Intn(cfg.MaxFanin - 1)
			}
			fanins := pickFanins(r, prev, pool, k)
			n := nw.AddNode(fmt.Sprintf("n%03d", made), fanins, randCover(r, len(fanins)))
			layer = append(layer, n)
			made++
		}
		pool = append(pool, layer...)
		prev = layer
		last = layer
	}
	// Outputs: the deepest layer first (keeping the target depth visible
	// from the outputs), then random distinct internal nodes.
	internal := pool[cfg.PIs:]
	chosen := make(map[*network.Node]bool, cfg.Outputs)
	po := 0
	emit := func(n *network.Node) {
		if chosen[n] || po >= cfg.Outputs {
			return
		}
		chosen[n] = true
		nw.MarkOutput(fmt.Sprintf("po%02d", po), n)
		po++
	}
	for _, n := range last {
		emit(n)
	}
	for _, i := range r.Perm(len(internal)) {
		emit(internal[i])
	}
	return nw
}

// pickFanins selects k distinct fanins, the first from the previous level
// (forcing a depth chain), the rest from the whole pool.
func pickFanins(r *rand.Rand, prev, pool []*network.Node, k int) []*network.Node {
	if k > len(pool) {
		k = len(pool)
	}
	seen := make(map[*network.Node]bool, k)
	out := make([]*network.Node, 0, k)
	first := prev[r.Intn(len(prev))]
	out = append(out, first)
	seen[first] = true
	for len(out) < k {
		n := pool[r.Intn(len(pool))]
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// randCover returns a random non-constant SOP over k variables: 1-3 cubes
// of at least two literals each (one when k < 2), rejected and redrawn when
// minimization collapses it to a constant.
func randCover(r *rand.Rand, k int) *sop.Cover {
	for {
		f := sop.NewCover(k)
		ncubes := 1 + r.Intn(3)
		for c := 0; c < ncubes; c++ {
			cube := sop.NewCube(k)
			nlits := 1
			if k >= 2 {
				nlits = 2
				if k > 2 {
					nlits += r.Intn(k - 1)
				}
			}
			for _, v := range r.Perm(k)[:nlits] {
				if r.Intn(2) == 0 {
					cube[v] = sop.Pos
				} else {
					cube[v] = sop.Neg
				}
			}
			f.AddCube(cube)
		}
		f.Minimize()
		if !f.IsZero() && !f.IsOne() {
			return f
		}
	}
}
