package verify

import (
	"fmt"
	"math"

	"powermap/internal/huffman"
	"powermap/internal/mapper"
	"powermap/internal/network"
)

// tol absorbs float summation noise in the cost comparisons.
const tol = 1e-9

// maxOracleLeaves bounds the exhaustive enumeration oracle: (2n-3)!! tree
// shapes stay tractable through n = 6.
const maxOracleLeaves = 6

func signalLeaves(probs []float64) []huffman.Signal {
	leaves := make([]huffman.Signal, len(probs))
	for i, p := range probs {
		leaves[i] = huffman.SignalFromProb(p)
	}
	return leaves
}

// CheckHuffmanOptimal verifies the paper's optimality claims for the
// unbounded constructions against the exhaustive enumeration oracle, for
// len(probs) ≤ 6 leaves. For quasi-linear algebras (domino styles) Build
// (Algorithm 2.1) must attain the enumerated optimum exactly (Theorem 2.2);
// for static CMOS BuildModified (Algorithm 2.2) is a heuristic, so it is
// only required not to beat the optimum — which would expose an oracle or
// cost-algebra bug.
func CheckHuffmanOptimal(gate huffman.Gate, style huffman.Style, probs []float64) error {
	if len(probs) == 0 {
		return fmt.Errorf("verify: no leaves")
	}
	if len(probs) > maxOracleLeaves {
		return fmt.Errorf("verify: %d leaves exceed the n<=%d enumeration oracle", len(probs), maxOracleLeaves)
	}
	alg := huffman.SignalAlgebra{Gate: gate, Style: style}
	leaves := signalLeaves(probs)
	var t *huffman.Tree[huffman.Signal]
	if alg.QuasiLinear() {
		t = huffman.Build(alg, leaves)
	} else {
		t = huffman.BuildModified(alg, leaves)
	}
	got := huffman.TotalCost(alg, t)
	_, best := huffman.Enumerate(alg, leaves, 0)
	if got < best-tol {
		return fmt.Errorf("verify: huffman %v/%v: construction cost %.12g beats enumerated optimum %.12g", gate, style, got, best)
	}
	if alg.QuasiLinear() && got > best+tol {
		return fmt.Errorf("verify: huffman %v/%v: Build cost %.12g exceeds enumerated optimum %.12g (Theorem 2.2 violated)", gate, style, got, best)
	}
	return nil
}

// CheckBoundedHeight verifies the Algorithm 2.3 package-merge invariants
// for one leaf set and height limit: the tree respects the bound; for
// quasi-linear algebras its cost never drops below the unbounded optimum,
// exceeds it only when the bound actually constrains (the unbounded optimum
// violates the limit), and — when the oracle is tractable — matches the
// enumerated bounded optimum exactly (Theorem 2.3).
func CheckBoundedHeight(gate huffman.Gate, style huffman.Style, probs []float64, limit int) error {
	if len(probs) == 0 {
		return fmt.Errorf("verify: no leaves")
	}
	alg := huffman.SignalAlgebra{Gate: gate, Style: style}
	leaves := signalLeaves(probs)
	bounded, err := huffman.BuildBounded(alg, leaves, limit, !alg.QuasiLinear())
	if err != nil {
		return fmt.Errorf("verify: huffman %v/%v limit %d: %w", gate, style, limit, err)
	}
	if h := bounded.Height(); h > limit {
		return fmt.Errorf("verify: huffman %v/%v: bounded tree height %d exceeds limit %d", gate, style, h, limit)
	}
	if bounded.Leaves() != len(leaves) {
		return fmt.Errorf("verify: huffman %v/%v: bounded tree has %d leaves, want %d", gate, style, bounded.Leaves(), len(leaves))
	}
	if !alg.QuasiLinear() {
		return nil // greedy baselines carry no optimality guarantee to compare against
	}
	costB := huffman.TotalCost(alg, bounded)
	unbounded := huffman.Build(alg, leaves)
	costU := huffman.TotalCost(alg, unbounded)
	if costB < costU-tol {
		return fmt.Errorf("verify: huffman %v/%v limit %d: bounded cost %.12g beats unbounded optimum %.12g", gate, style, limit, costB, costU)
	}
	if unbounded.Height() <= limit && costB > costU+tol {
		return fmt.Errorf("verify: huffman %v/%v limit %d: bound is slack yet bounded cost %.12g exceeds unbounded %.12g", gate, style, limit, costB, costU)
	}
	if len(probs) <= maxOracleLeaves {
		if _, best := huffman.Enumerate(alg, leaves, limit); costB > best+tol {
			return fmt.Errorf("verify: huffman %v/%v limit %d: package-merge cost %.12g exceeds enumerated bounded optimum %.12g (Theorem 2.3 violated)", gate, style, limit, costB, best)
		}
	}
	return nil
}

// CheckCurve verifies a power-delay curve's non-inferiority invariant
// (Lemma 3.1): at least one point, arrivals strictly increasing, costs
// strictly decreasing — so no point dominates another.
func CheckCurve(name string, c *mapper.Curve) error {
	if c == nil || len(c.Points) == 0 {
		return fmt.Errorf("verify: curve at %s is empty", name)
	}
	for i := 1; i < len(c.Points); i++ {
		p, q := c.Points[i-1], c.Points[i]
		if q.Arrival <= p.Arrival {
			return fmt.Errorf("verify: curve at %s: arrivals not strictly increasing at point %d (%.9g after %.9g)", name, i, q.Arrival, p.Arrival)
		}
		if q.Cost >= p.Cost {
			return fmt.Errorf("verify: curve at %s: point %d (arrival %.9g, cost %.9g) is dominated by point %d (arrival %.9g, cost %.9g)", name, i, q.Arrival, q.Cost, i-1, p.Arrival, p.Cost)
		}
	}
	return nil
}

// CurveAuditor adapts CheckCurve to the mapper's CurveAudit hook: it
// records the first violation and counts the curves checked. The mapper
// calls the hook only on its coordinator goroutine, so no locking is
// needed; read Err after the run returns.
type CurveAuditor struct {
	err     error
	checked int
}

// Hook returns the function to install as Options.CurveAudit.
func (a *CurveAuditor) Hook() func(*network.Node, *mapper.Curve) {
	return func(n *network.Node, c *mapper.Curve) {
		a.checked++
		if a.err == nil {
			a.err = CheckCurve(n.Name, c)
		}
	}
}

// Err returns the first curve invariant violation, or nil.
func (a *CurveAuditor) Err() error { return a.err }

// Checked returns the number of curves audited.
func (a *CurveAuditor) Checked() int { return a.checked }

// CheckNetlist verifies a mapped netlist's report against independent
// recomputations: the per-signal power breakdown sums to the reported
// power, the worst output arrival equals the reported delay, the gate
// areas sum to the reported area, and the gate count matches.
func CheckNetlist(nl *mapper.Netlist) error {
	if got := len(nl.Gates); got != nl.Report.Gates {
		return fmt.Errorf("verify: netlist %s: %d gates, report says %d", nl.Name, got, nl.Report.Gates)
	}
	area := 0.0
	for _, g := range nl.Gates {
		area += g.Cell.Area
	}
	if !closeRel(area, nl.Report.GateArea) {
		return fmt.Errorf("verify: netlist %s: gate areas sum to %.9g, report says %.9g", nl.Name, area, nl.Report.GateArea)
	}
	power := 0.0
	for _, row := range nl.PowerBreakdown() {
		power += row.PowerUW
	}
	if !closeRel(power, nl.Report.PowerUW) {
		return fmt.Errorf("verify: netlist %s: power breakdown sums to %.9g uW, report says %.9g", nl.Name, power, nl.Report.PowerUW)
	}
	delay := 0.0
	for _, a := range nl.OutputArrivals() {
		if a > delay {
			delay = a
		}
	}
	if !closeRel(delay, nl.Report.Delay) {
		return fmt.Errorf("verify: netlist %s: worst output arrival %.9g ns, report says %.9g", nl.Name, delay, nl.Report.Delay)
	}
	return nil
}

// closeRel compares with a relative tolerance absorbing summation-order
// noise (absolute near zero).
func closeRel(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-6 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
