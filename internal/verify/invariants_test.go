package verify

import (
	"math/rand"
	"testing"

	"powermap/internal/huffman"
	"powermap/internal/mapper"
)

func randProbs(r *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.05 + 0.9*r.Float64()
	}
	return p
}

func TestHuffmanOptimalAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	gates := []huffman.Gate{huffman.GateAnd, huffman.GateOr}
	styles := []huffman.Style{huffman.DominoP, huffman.DominoN, huffman.Static}
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 8; trial++ {
			probs := randProbs(r, n)
			for _, g := range gates {
				for _, s := range styles {
					if err := CheckHuffmanOptimal(g, s, probs); err != nil {
						t.Errorf("n=%d trial=%d: %v", n, trial, err)
					}
				}
			}
		}
	}
}

func TestHuffmanOptimalRejectsBadInput(t *testing.T) {
	if err := CheckHuffmanOptimal(huffman.GateAnd, huffman.DominoP, nil); err == nil {
		t.Error("empty leaf set accepted")
	}
	if err := CheckHuffmanOptimal(huffman.GateAnd, huffman.DominoP, make([]float64, 9)); err == nil {
		t.Error("oversized leaf set accepted")
	}
}

func TestBoundedHeightInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 6; trial++ {
			probs := randProbs(r, n)
			// From the tightest feasible bound (ceil(log2 n)) to a slack one.
			for limit := 1; limit <= n; limit++ {
				if 1<<uint(limit) < n {
					continue // infeasible bound; BuildBounded rejects it
				}
				for _, g := range []huffman.Gate{huffman.GateAnd, huffman.GateOr} {
					for _, s := range []huffman.Style{huffman.DominoP, huffman.DominoN, huffman.Static} {
						if err := CheckBoundedHeight(g, s, probs, limit); err != nil {
							t.Errorf("n=%d limit=%d: %v", n, limit, err)
						}
					}
				}
			}
		}
	}
}

func TestBoundedHeightInfeasibleLimit(t *testing.T) {
	if err := CheckBoundedHeight(huffman.GateAnd, huffman.DominoP, randProbs(rand.New(rand.NewSource(1)), 5), 2); err == nil {
		t.Error("infeasible height bound accepted")
	}
}

func TestCheckCurve(t *testing.T) {
	good := &mapper.Curve{Points: []mapper.Point{
		{Arrival: 1.0, Cost: 9.0},
		{Arrival: 2.0, Cost: 5.0},
		{Arrival: 3.5, Cost: 1.0},
	}}
	if err := CheckCurve("n", good); err != nil {
		t.Errorf("non-inferior curve rejected: %v", err)
	}
	if err := CheckCurve("n", &mapper.Curve{}); err == nil {
		t.Error("empty curve accepted")
	}
	unsorted := &mapper.Curve{Points: []mapper.Point{
		{Arrival: 2.0, Cost: 5.0},
		{Arrival: 1.0, Cost: 9.0},
	}}
	if err := CheckCurve("n", unsorted); err == nil {
		t.Error("unsorted curve accepted")
	}
	dominated := &mapper.Curve{Points: []mapper.Point{
		{Arrival: 1.0, Cost: 5.0},
		{Arrival: 2.0, Cost: 5.0},
	}}
	if err := CheckCurve("n", dominated); err == nil {
		t.Error("dominated point accepted")
	}
}

func TestCurveAuditorRecordsFirstViolation(t *testing.T) {
	var a CurveAuditor
	hook := a.Hook()
	nwk := RandomNetwork("aud", RandConfig{Seed: 3, PIs: 3, Nodes: 3})
	n := nwk.Nodes[0]
	hook(n, &mapper.Curve{Points: []mapper.Point{{Arrival: 1, Cost: 1}}})
	if a.Err() != nil || a.Checked() != 1 {
		t.Fatalf("after good curve: err=%v checked=%d", a.Err(), a.Checked())
	}
	hook(n, &mapper.Curve{})
	first := a.Err()
	if first == nil {
		t.Fatal("violation not recorded")
	}
	hook(n, &mapper.Curve{Points: []mapper.Point{{Arrival: 2, Cost: 2}, {Arrival: 1, Cost: 3}}})
	if a.Err() != first {
		t.Error("first violation not preserved")
	}
	if a.Checked() != 3 {
		t.Errorf("checked = %d, want 3", a.Checked())
	}
}
