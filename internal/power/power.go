// Package power implements the paper's average-power model (Equation 1):
//
//	P_avg = 0.5 · C_load · V_dd² / T_cycle · E(transitions)
//
// with the experimental conditions of Section 4: V_dd = 5 V and a 20 MHz
// clock. Capacitances are expressed in library load units (0.01 pF per
// unit, chosen so mapped benchmark circuits land in the paper's µW range),
// and powers are reported in µW.
package power

// Environment captures the electrical operating point.
type Environment struct {
	Vdd      float64 // supply voltage, volts
	FClk     float64 // clock frequency, Hz
	CapUnitF float64 // farads per library capacitance unit
}

// Default returns the paper's experimental operating point: 5 V, 20 MHz,
// 0.01 pF per load unit.
func Default() Environment {
	return Environment{Vdd: 5, FClk: 20e6, CapUnitF: 1e-14}
}

// GatePowerUW returns the average power in µW dissipated charging a load of
// cLoad capacitance units with switching activity e (Equation 1, with
// 1/T_cycle = f_clk).
func (env Environment) GatePowerUW(cLoad, e float64) float64 {
	watts := 0.5 * cLoad * env.CapUnitF * env.Vdd * env.Vdd * env.FClk * e
	return watts * 1e6
}

// Report aggregates the three quantities of the paper's result tables.
type Report struct {
	GateArea float64 // total cell area
	Delay    float64 // critical-path delay, ns
	PowerUW  float64 // average power, µW
	Gates    int     // mapped gate count
}
