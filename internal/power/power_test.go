package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultEnvironment(t *testing.T) {
	env := Default()
	if env.Vdd != 5 || env.FClk != 20e6 || env.CapUnitF != 1e-14 {
		t.Errorf("default environment %+v", env)
	}
}

func TestGatePowerEquation1(t *testing.T) {
	env := Default()
	// P = 0.5 * C * Vdd^2 * f * E; C = 1 unit = 0.01 pF, E = 1:
	// 0.5 * 1e-14 * 25 * 2e7 = 2.5e-6 W = 2.5 uW.
	if got := env.GatePowerUW(1, 1); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("GatePowerUW(1,1) = %v, want 2.5", got)
	}
	if got := env.GatePowerUW(2, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("GatePowerUW(2,0.5) = %v, want 2.5", got)
	}
	if got := env.GatePowerUW(0, 1); got != 0 {
		t.Errorf("zero load gives power %v", got)
	}
}

func TestGatePowerLinearity(t *testing.T) {
	// Property: power is bilinear in load and activity.
	env := Default()
	f := func(c, e float64) bool {
		c, e = math.Abs(c), math.Abs(e)
		if math.IsInf(c, 0) || math.IsNaN(c) || math.IsInf(e, 0) || math.IsNaN(e) || c > 1e6 || e > 1e6 {
			return true
		}
		lhs := env.GatePowerUW(2*c, e)
		rhs := 2 * env.GatePowerUW(c, e)
		return math.Abs(lhs-rhs) <= 1e-9*math.Max(1, math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVoltageScaling(t *testing.T) {
	// Halving Vdd quarters the power (the paper's motivation for voltage
	// scaling, Section 1.1).
	hi := Environment{Vdd: 5, FClk: 20e6, CapUnitF: 1e-14}
	lo := Environment{Vdd: 2.5, FClk: 20e6, CapUnitF: 1e-14}
	if got := hi.GatePowerUW(1, 0.5) / lo.GatePowerUW(1, 0.5); math.Abs(got-4) > 1e-12 {
		t.Errorf("Vdd scaling ratio %v, want 4", got)
	}
}
