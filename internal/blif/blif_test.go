package blif

import (
	"bytes"
	"strings"
	"testing"

	"powermap/internal/network"
)

const simpleBlif = `
# a small combinational model
.model simple
.inputs a b c
.outputs y z
.names a b t1
11 1
.names t1 c y
1- 1
-1 1
.names a c z
10 1
.end
`

func TestParseSimple(t *testing.T) {
	nw, err := ParseString(simpleBlif)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "simple" {
		t.Errorf("model name %q", nw.Name)
	}
	s := nw.Stats()
	if s.PIs != 3 || s.POs != 2 || s.Nodes != 3 {
		t.Errorf("stats %+v", s)
	}
	got := nw.Eval(map[string]bool{"a": true, "b": true, "c": false})
	if !got["y"] || !got["z"] {
		t.Errorf("eval = %v", got)
	}
	got = nw.Eval(map[string]bool{"a": false, "b": false, "c": false})
	if got["y"] || got["z"] {
		t.Errorf("eval all-zero = %v", got)
	}
}

func TestParseOutOfOrderNames(t *testing.T) {
	// t1 is used before it is defined.
	text := `
.model ooo
.inputs a b
.outputs y
.names t1 y
0 1
.names a b t1
11 1
.end
`
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	got := nw.Eval(map[string]bool{"a": true, "b": true})
	if got["y"] {
		t.Error("y should be NOT(a AND b)")
	}
}

func TestParseOffsetRows(t *testing.T) {
	// Function given by its off-set: y = NOT(a AND b).
	text := `
.model offset
.inputs a b
.outputs y
.names a b y
11 0
.end
`
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want bool }{
		{true, true, false}, {true, false, true}, {false, false, true},
	}
	for _, tc := range cases {
		if got := nw.Eval(map[string]bool{"a": tc.a, "b": tc.b})["y"]; got != tc.want {
			t.Errorf("eval(%v,%v) = %v want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestParseConstants(t *testing.T) {
	text := `
.model consts
.inputs a
.outputs one zero y
.names one
1
.names zero
.names a one y
11 1
.end
`
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	got := nw.Eval(map[string]bool{"a": true})
	if !got["one"] || got["zero"] || !got["y"] {
		t.Errorf("constants eval = %v", got)
	}
}

func TestParseLatchCut(t *testing.T) {
	text := `
.model seq
.inputs x
.outputs q
.latch d s 0
.names x s d
10 1
.names s q
1 1
.end
`
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	// s (latch output) must be a PI, d (latch input) a PO.
	if nw.NodeByName("s") == nil || nw.NodeByName("s").Kind != network.PI {
		t.Error("latch output not cut into a PI")
	}
	found := false
	for _, o := range nw.Outputs {
		if o.Name == "d" {
			found = true
		}
	}
	if !found {
		t.Error("latch input not cut into a PO")
	}
}

func TestParseContinuation(t *testing.T) {
	text := ".model cont\n.inputs a b \\\n  c\n.outputs y\n.names a b c y\n111 1\n.end\n"
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.PIs) != 3 {
		t.Errorf("PIs = %d, want 3", len(nw.PIs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"undefined", ".model m\n.inputs a\n.outputs y\n.end\n", "never defined"},
		{"cycle", ".model m\n.inputs a\n.outputs y\n.names y a t\n11 1\n.names t y\n1 1\n.end\n", "cycle"},
		{"mixed", ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n", "mixed"},
		{"badchar", ".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n", "bad cover"},
		{"width", ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n", "columns"},
		{"redef", ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n", "twice"},
		{"unsupported", ".model m\n.subckt foo\n.end\n", "unsupported"},
		{"rowoutside", ".model m\n11 1\n.end\n", "outside"},
		{"nomodel", ".inputs a\n", "missing .model"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := ParseString(simpleBlif)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	ok, err := network.EquivalentBrute(orig, back)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("round-trip not equivalent:\n%s", buf.String())
	}
}

func TestWriteWrapsLongLines(t *testing.T) {
	nw := network.New("long")
	var last *network.Node
	for i := 0; i < 30; i++ {
		last = nw.AddPI(strings.Repeat("x", 10) + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	nw.MarkOutput("o", last)
	var buf bytes.Buffer
	if err := Write(&buf, nw); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 80 {
			t.Errorf("line too long (%d): %q", len(line), line)
		}
	}
	back, err := ParseString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.PIs) != 30 {
		t.Errorf("wrapped inputs reparse to %d PIs", len(back.PIs))
	}
}

func TestParseDanglingContinuation(t *testing.T) {
	if _, err := ParseString(".model m\n.inputs a \\"); err == nil ||
		!strings.Contains(err.Error(), "dangling") {
		t.Errorf("dangling continuation not reported: %v", err)
	}
	// Continuation followed by blank content (fuzz regression).
	if _, err := ParseString("\\\n "); err == nil {
		t.Error("continuation-to-whitespace should fail with missing .model")
	}
}

func TestRoundTripPIOutput(t *testing.T) {
	// An output driven directly by a PI requires an alias buffer on write.
	text := ".model wire\n.inputs a\n.outputs a_out\n.names a a_out\n1 1\n.end\n"
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, nw); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Eval(map[string]bool{"a": true})["a_out"]; !got {
		t.Error("alias output broken after round trip")
	}
}
