// Package blif reads and writes the Berkeley Logic Interchange Format used
// by MIS/SIS and the MCNC/ISCAS benchmark suites. The subset handled covers
// combinational synthesis: .model, .inputs, .outputs, .names, .latch (cut
// into pseudo PI/PO pairs, which is how the paper's sequential ISCAS-89
// circuits are used combinationally), .end, comments, and line continuation.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"powermap/internal/network"
	"powermap/internal/sop"
)

// ParseError reports a syntax or semantic error with its 1-based line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("blif: line %d: %s", e.Line, e.Msg) }

type rawNames struct {
	line    int
	signals []string // inputs then output
	rows    []string // "in-plane out-value"
}

type parser struct {
	model       string
	inputs      []string
	outputs     []string
	names       []rawNames
	latchIn     []string
	latchOut    []string
	sawModel    bool
	sawEnd      bool
	latchCutMsg int
}

// Parse reads a BLIF description and builds a combinational Boolean network.
// Latches are cut: each latch output becomes a pseudo primary input and each
// latch input a pseudo primary output.
func Parse(r io.Reader) (*network.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	p := &parser{}
	lineNo := 0
	pending := ""
	pendingStart := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "\\") {
			if pending == "" {
				pendingStart = lineNo
			}
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		start := lineNo
		if pending != "" {
			line = strings.TrimSpace(pending + line)
			start = pendingStart
			pending = ""
		}
		if line == "" {
			continue
		}
		if err := p.handle(start, line); err != nil {
			return nil, err
		}
		if p.sawEnd {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: read: %w", err)
	}
	if pending != "" {
		return nil, &ParseError{Line: pendingStart, Msg: "dangling line continuation"}
	}
	if !p.sawModel {
		return nil, &ParseError{Line: lineNo, Msg: "missing .model"}
	}
	return p.build()
}

// ParseString is Parse over an in-memory BLIF text.
func ParseString(s string) (*network.Network, error) { return Parse(strings.NewReader(s)) }

func (p *parser) handle(line int, text string) error {
	fields := strings.Fields(text)
	switch fields[0] {
	case ".model":
		if p.sawModel {
			return &ParseError{Line: line, Msg: "duplicate .model (single-model files only)"}
		}
		p.sawModel = true
		if len(fields) > 1 {
			p.model = fields[1]
		}
	case ".inputs":
		p.inputs = append(p.inputs, fields[1:]...)
	case ".outputs":
		p.outputs = append(p.outputs, fields[1:]...)
	case ".names":
		if len(fields) < 2 {
			return &ParseError{Line: line, Msg: ".names with no signals"}
		}
		p.names = append(p.names, rawNames{line: line, signals: fields[1:]})
	case ".latch":
		if len(fields) < 3 {
			return &ParseError{Line: line, Msg: ".latch needs input and output"}
		}
		p.latchIn = append(p.latchIn, fields[1])
		p.latchOut = append(p.latchOut, fields[2])
	case ".end":
		p.sawEnd = true
	case ".exdc":
		return &ParseError{Line: line, Msg: ".exdc networks are not supported"}
	case ".wire_load_slope", ".wire", ".gate", ".mlatch", ".clock",
		".area", ".delay", ".input_arrival", ".output_required",
		".default_input_arrival", ".default_output_required",
		".input_drive", ".output_load", ".default_input_drive",
		".default_output_load", ".clock_event", ".search":
		// Annotations irrelevant to this flow; ignore.
	default:
		if strings.HasPrefix(fields[0], ".") {
			return &ParseError{Line: line, Msg: fmt.Sprintf("unsupported construct %s", fields[0])}
		}
		// Cover row for the most recent .names.
		if len(p.names) == 0 {
			return &ParseError{Line: line, Msg: "cover row outside .names"}
		}
		cur := &p.names[len(p.names)-1]
		cur.rows = append(cur.rows, text)
	}
	return nil
}

func (p *parser) build() (*network.Network, error) {
	nw := network.New(p.model)
	// Latch outputs become pseudo-PIs.
	pis := append([]string(nil), p.inputs...)
	pis = append(pis, p.latchOut...)
	for _, name := range pis {
		if nw.NodeByName(name) != nil {
			return nil, &ParseError{Line: 1, Msg: fmt.Sprintf("duplicate input %s", name)}
		}
		nw.AddPI(name)
	}

	// Build dependency-ordered node creation: .names may appear in any order.
	type pendingNode struct {
		raw    rawNames
		output string
		inputs []string
	}
	byOutput := make(map[string]*pendingNode)
	var order []string
	for _, rn := range p.names {
		out := rn.signals[len(rn.signals)-1]
		if byOutput[out] != nil {
			return nil, &ParseError{Line: rn.line, Msg: fmt.Sprintf("signal %s defined twice", out)}
		}
		if nw.NodeByName(out) != nil {
			return nil, &ParseError{Line: rn.line, Msg: fmt.Sprintf("signal %s shadows an input", out)}
		}
		byOutput[out] = &pendingNode{raw: rn, output: out, inputs: rn.signals[:len(rn.signals)-1]}
		order = append(order, out)
	}
	// Topologically create nodes.
	state := make(map[string]int)
	var create func(name string) error
	create = func(name string) error {
		if nw.NodeByName(name) != nil {
			return nil
		}
		pn, ok := byOutput[name]
		if !ok {
			return &ParseError{Line: 1, Msg: fmt.Sprintf("signal %s is used but never defined", name)}
		}
		switch state[name] {
		case 1:
			return &ParseError{Line: pn.raw.line, Msg: fmt.Sprintf("combinational cycle through %s", name)}
		case 2:
			return nil
		}
		state[name] = 1
		for _, in := range pn.inputs {
			if err := create(in); err != nil {
				return err
			}
		}
		cover, err := coverFromRows(pn.raw)
		if err != nil {
			return err
		}
		fanins := make([]*network.Node, len(pn.inputs))
		for i, in := range pn.inputs {
			fanins[i] = nw.NodeByName(in)
		}
		if len(pn.inputs) == 0 {
			n := nw.AddConstant(name, cover.IsOne())
			_ = n
		} else {
			nw.AddNode(name, fanins, cover)
		}
		state[name] = 2
		return nil
	}
	for _, name := range order {
		if err := create(name); err != nil {
			return nil, err
		}
	}
	// Latch inputs become pseudo-POs; real outputs keep their names.
	outs := append([]string(nil), p.outputs...)
	outs = append(outs, p.latchIn...)
	for _, name := range outs {
		drv := nw.NodeByName(name)
		if drv == nil {
			return nil, &ParseError{Line: 1, Msg: fmt.Sprintf("output %s is never defined", name)}
		}
		nw.MarkOutput(name, drv)
	}
	if err := nw.Check(); err != nil {
		return nil, fmt.Errorf("blif: built network invalid: %w", err)
	}
	return nw, nil
}

func coverFromRows(rn rawNames) (*sop.Cover, error) {
	nin := len(rn.signals) - 1
	onSet := sop.NewCover(nin)
	offSet := sop.NewCover(nin)
	sawOn, sawOff := false, false
	for _, row := range rn.rows {
		fields := strings.Fields(row)
		var inPlane, outVal string
		switch {
		case nin == 0 && len(fields) == 1:
			inPlane, outVal = "", fields[0]
		case len(fields) == 2:
			inPlane, outVal = fields[0], fields[1]
		default:
			return nil, &ParseError{Line: rn.line, Msg: fmt.Sprintf("malformed cover row %q", row)}
		}
		if len(inPlane) != nin {
			return nil, &ParseError{Line: rn.line,
				Msg: fmt.Sprintf("cover row %q has %d columns, want %d", row, len(inPlane), nin)}
		}
		cube := sop.NewCube(nin)
		for i, ch := range inPlane {
			switch ch {
			case '1':
				cube[i] = sop.Pos
			case '0':
				cube[i] = sop.Neg
			case '-':
				cube[i] = sop.DC
			default:
				return nil, &ParseError{Line: rn.line, Msg: fmt.Sprintf("bad cover character %q", ch)}
			}
		}
		switch outVal {
		case "1":
			sawOn = true
			onSet.AddCube(cube)
		case "0":
			sawOff = true
			offSet.AddCube(cube)
		default:
			return nil, &ParseError{Line: rn.line, Msg: fmt.Sprintf("bad output value %q", outVal)}
		}
	}
	if sawOn && sawOff {
		return nil, &ParseError{Line: rn.line, Msg: "mixed on-set and off-set rows in one .names"}
	}
	if sawOff {
		// Off-set specification: the function is the complement of the rows.
		f := offSet.Complement()
		return f, nil
	}
	onSet.Minimize()
	return onSet, nil
}

// Write serializes a network as BLIF. Node local functions are emitted as
// their on-set cubes.
func Write(w io.Writer, nw *network.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nw.Name)
	writeSignalList(bw, ".inputs", nw.PINames())
	writeSignalList(bw, ".outputs", nw.OutputNames())
	// Outputs driven directly by PIs (or by nodes whose BLIF name differs
	// from the output name) need alias buffers.
	aliases := map[string]string{}
	for _, o := range nw.Outputs {
		if o.Driver.Name != o.Name {
			aliases[o.Name] = o.Driver.Name
		}
	}
	for _, n := range nw.TopoOrder() {
		if n.Kind == network.PI {
			continue
		}
		fmt.Fprintf(bw, ".names")
		for _, fi := range n.Fanin {
			fmt.Fprintf(bw, " %s", fi.Name)
		}
		fmt.Fprintf(bw, " %s\n", n.Name)
		if n.Func.IsZero() {
			// Constant 0: no rows.
		} else {
			for _, c := range n.Func.Cubes {
				if len(c) == 0 {
					fmt.Fprintf(bw, "1\n")
				} else {
					fmt.Fprintf(bw, "%s 1\n", c)
				}
			}
		}
	}
	// Emit alias buffers deterministically.
	aliasNames := make([]string, 0, len(aliases))
	for name := range aliases {
		aliasNames = append(aliasNames, name)
	}
	sort.Strings(aliasNames)
	for _, name := range aliasNames {
		fmt.Fprintf(bw, ".names %s %s\n1 1\n", aliases[name], name)
	}
	fmt.Fprintf(bw, ".end\n")
	return bw.Flush()
}

func writeSignalList(w io.Writer, directive string, names []string) {
	fmt.Fprintf(w, "%s", directive)
	col := len(directive)
	for _, n := range names {
		if col+len(n)+1 > 78 {
			fmt.Fprintf(w, " \\\n   ")
			col = 4
		}
		fmt.Fprintf(w, " %s", n)
		col += len(n) + 1
	}
	fmt.Fprintf(w, "\n")
}
