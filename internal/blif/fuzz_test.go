package blif

import (
	"bytes"
	"context"
	"testing"

	"powermap/internal/bdd"
	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/prob"
)

// FuzzParse exercises the BLIF parser on arbitrary inputs: it must never
// panic, and any network it accepts must pass the structural checker and
// survive a write/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		simpleBlif,
		".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
		".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n",
		".model m\n.inputs a\n.outputs y\n.latch d q 0\n.names a q d\n11 1\n.names q y\n1 1\n.end\n",
		".model m\n.inputs a b \\\n c\n.outputs y\n.names a b c y\n1-1 1\n.end\n",
		".model m\n.outputs y\n.names y\n1\n.end\n",
		"# comment only\n",
		".model m\n.inputs a\n.outputs y\n.names y a t\n11 1\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		nw, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := nw.Check(); err != nil {
			t.Fatalf("accepted network fails Check: %v\ninput:\n%s", err, input)
		}
		var buf bytes.Buffer
		if err := Write(&buf, nw); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", err, buf.String())
		}
		if len(back.PIs) != len(nw.PIs) || len(back.Outputs) != len(nw.Outputs) {
			t.Fatalf("round trip changed interface: %d/%d -> %d/%d",
				len(nw.PIs), len(nw.Outputs), len(back.PIs), len(back.Outputs))
		}
		// Any accepted network must also flow into the exact probability
		// model without panicking, even under a starvation-level node
		// limit: over-wide inputs are errors, not crashes.
		if _, perr := prob.ComputeWith(context.Background(), nw, nil, huffman.Static,
			bdd.Config{NodeLimit: 16}); perr != nil && !bdd.IsNodeLimit(perr) {
			t.Fatalf("prob rejected an accepted network with a non-limit error: %v", perr)
		}
		_ = network.EquivalentBrute // equivalence is covered by unit tests; fuzz guards structure
	})
}
