// Package core integrates the paper's contribution into one synthesis
// flow: technology-independent quick-opt (the SIS rugged stand-in),
// power-efficient technology decomposition (Section 2), and power-efficient
// technology mapping (Section 3). The six experimental methods of Tables 2
// and 3 are first-class values:
//
//	Method I    conventional decomposition + area-delay mapping
//	Method II   MINPOWER decomposition     + area-delay mapping
//	Method III  bounded-height MINPOWER    + area-delay mapping
//	Method IV   conventional decomposition + power-delay mapping
//	Method V    MINPOWER decomposition     + power-delay mapping
//	Method VI   bounded-height MINPOWER    + power-delay mapping
package core

import (
	"context"
	"fmt"

	"powermap/internal/bdd"
	"powermap/internal/decomp"
	"powermap/internal/genlib"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/mapper"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/opt"
	"powermap/internal/power"
	"powermap/internal/prob"
)

// Method is one of the paper's six decomposition×mapping combinations.
type Method int

// The six methods of Tables 2 and 3.
const (
	MethodI Method = iota + 1
	MethodII
	MethodIII
	MethodIV
	MethodV
	MethodVI
)

// String returns the Roman numeral used in the paper.
func (m Method) String() string {
	switch m {
	case MethodI:
		return "I"
	case MethodII:
		return "II"
	case MethodIII:
		return "III"
	case MethodIV:
		return "IV"
	case MethodV:
		return "V"
	case MethodVI:
		return "VI"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Decomposition returns the method's technology-decomposition strategy.
func (m Method) Decomposition() decomp.Strategy {
	switch m {
	case MethodI, MethodIV:
		return decomp.Conventional
	case MethodII, MethodV:
		return decomp.MinPower
	default:
		return decomp.BoundedMinPower
	}
}

// Mapping returns the method's mapping objective.
func (m Method) Mapping() mapper.Objective {
	if m <= MethodIII {
		return mapper.AreaDelay
	}
	return mapper.PowerDelay
}

// Methods lists all six in table order.
func Methods() []Method {
	return []Method{MethodI, MethodII, MethodIII, MethodIV, MethodV, MethodVI}
}

// Options configures Synthesize.
type Options struct {
	// Method selects decomposition strategy and mapping objective. When 0,
	// Decomposition and Mapping are used directly.
	Method        Method
	Decomposition decomp.Strategy
	Mapping       mapper.Objective

	// Style is the CMOS design style (static in the paper's experiments).
	Style huffman.Style
	// Exact uses global-BDD costs during decomposition.
	Exact bool
	// PIProb gives P(pi=1) by name (default 0.5: the paper's independent,
	// uniform primary inputs).
	PIProb map[string]float64
	// Library is the target cell library (default the embedded lib2).
	Library *genlib.Library
	// SkipOptimize bypasses the technology-independent script (the input
	// is already optimized).
	SkipOptimize bool
	// EliminateThreshold is passed to opt.Optimize (0 collapses only
	// growth-free nodes, the default; negative disables elimination).
	EliminateThreshold int
	// Relax loosens the mapper's defaulted required times as a fraction of
	// the fastest mapping's delay. Nil selects mapper.DefaultRelax (0.15),
	// giving both ad-map and pd-map the same modest timing slack to spend;
	// Float64(0) demands the fastest mapping.
	Relax *float64
	// Mapper selects the mapper's match enumerator: the structural pattern
	// matcher (default) or the cut-based NPN Boolean matcher over a
	// structurally hashed AIG.
	Mapper mapper.Backend
	// LUT, with the cuts backend, maps every k-feasible cut to a generic
	// k-input LUT cell instead of matching the library (2 <= k <= 6). Zero
	// disables LUT mode.
	LUT int
	// Epsilon is the mapper's curve-pruning width.
	Epsilon float64
	// TreeMode uses strict tree partitioning in the mapper.
	TreeMode bool
	// PowerMethod2 selects the Section 3.1 Method 2 power accounting in
	// the mapper (for ablations; Method 1 is the paper's choice).
	PowerMethod2 bool
	// Strash enables structural hashing of the subject graph (an
	// extension; off by default for fidelity to the paper's pipeline).
	Strash bool
	// StrongSimplify enables Espresso-style node simplification in
	// quick-opt (an extension; off by default — see EXPERIMENTS.md).
	StrongSimplify bool
	// PIArrival/PORequired pass mapped-domain (ns) timing constraints.
	PIArrival  map[string]float64
	PORequired map[string]float64
	// Env overrides the electrical operating point.
	Env power.Environment
	// CurveAudit is forwarded to the mapper: when non-nil it observes every
	// internal node's pruned power-delay curve as it is installed, on the
	// coordinator goroutine. The verification layer uses it to check curve
	// invariants in-flight.
	CurveAudit func(*network.Node, *mapper.Curve)
	// Obs is the observability scope threaded through every pipeline
	// stage (decomp, mapper, bdd, timing). Nil — the default — disables
	// all instrumentation at near-zero cost.
	Obs *obs.Scope
	// Budgets declares per-phase SLOs (latency and/or live-BDD-node
	// ceilings) installed on Obs before the run; breaches land in the
	// scope's slo.breaches series and degrade its /healthz. Ignored when
	// Obs is nil.
	Budgets []obs.Budget
	// Journal records the run's decision provenance (per-node
	// decomposition events, per-site mapper decisions, per-gate power
	// attribution) as JSONL, threaded through decomp and mapper the same
	// way Obs is. Nil — the default — disables journaling; cmd/pexplain
	// queries and diffs the resulting files.
	Journal *journal.Journal
	// Workers bounds the worker pool used by the parallel pipeline phases
	// (decomposition planning, mapper curve construction). <= 0 means one
	// worker per CPU; 1 reproduces the sequential pipeline exactly. Results
	// are identical for every worker count.
	Workers int
	// BDD tunes the kernel behind every exact probability model and
	// equivalence check in the run: node limit (an over-wide network then
	// surfaces as a wrapped bdd.ErrNodeLimit, never a panic), GC
	// thresholds, and dynamic variable reordering by sifting. The zero
	// value keeps the kernel defaults.
	BDD bdd.Config
	// Activity selects the engine measuring the decomposition's switching-
	// activity objective (decomp's AND/OR activity model): exact BDDs (the
	// zero value), bit-parallel Monte-Carlo sampling, or auto (exact below
	// the policy's node threshold, sampling above or on a BDD node-limit
	// failure). The synthesis models the mapper prices and verifies with
	// remain exact regardless.
	Activity prob.Policy
	// ActivityVectors overrides the sampling budget of that measurement
	// (0 selects the decomp default). The seed is fixed, so the objective
	// is deterministic either way.
	ActivityVectors int
}

// Float64 returns a pointer to v, for optional fields like Options.Relax.
func Float64(v float64) *float64 { return &v }

// Result is the outcome of a full synthesis run.
type Result struct {
	// Optimized is the technology-independent optimized network.
	Optimized *network.Network
	// Decomp is the decomposition result (subject graph + probabilities).
	Decomp *decomp.Result
	// Netlist is the mapped circuit.
	Netlist *mapper.Netlist
	// Report carries the paper's three reported metrics.
	Report power.Report
	// OptStats reports what quick-opt changed.
	OptStats opt.Stats
}

// Release returns the result's BDD resources (the decomposition's
// probability model) to their warm pool, if Options.BDD.Pool was set.
// Call it once the report, netlist and verification verdict have been
// extracted; the Decomp model must not be used afterwards. Safe on nil
// and idempotent.
func (r *Result) Release() {
	if r == nil || r.Decomp == nil {
		return
	}
	r.Decomp.Model.Release()
}

// Synthesize runs the full flow on a copy of the input network. The input
// is never modified.
func Synthesize(nw *network.Network, o Options) (*Result, error) {
	return SynthesizeContext(context.Background(), nw, o)
}

// SynthesizeContext is Synthesize with cancellation: the ctx is checked
// between pipeline phases and inside the long per-node loops of each
// phase, so deadlines abort long runs promptly. The input is never
// modified either way.
//
// On failure the scope's flight recorder captures a post-mortem record
// (reason "core.synthesize", with the circuit name and whether the error is
// a BDD node-limit) holding the failing phase's spans, recent logs and the
// last runtime samples — auto-dumped to disk when -flight configured a
// path.
func SynthesizeContext(ctx context.Context, nw *network.Network, o Options) (_ *Result, err error) {
	if o.Method != 0 {
		o.Decomposition = o.Method.Decomposition()
		o.Mapping = o.Method.Mapping()
	}
	if o.Library == nil {
		o.Library = genlib.Lib2()
	}
	res := &Result{}
	sc := o.Obs
	if len(o.Budgets) > 0 {
		sc.SetBudgets(o.Budgets)
	}
	defer func() {
		if err != nil {
			sc.Flight().CaptureFailure("core.synthesize", err,
				"circuit", nw.Name, "node_limit", bdd.IsNodeLimit(err))
		}
	}()
	// Carry the scope on the context so context-only layers (the exec
	// worker pool, nested phases) can instrument; spans started below pick
	// up the context's track and labels, so a run launched from a labeled
	// worker task (the eval suite) files its phases under that job.
	ctx = obs.WithScope(ctx, sc)

	work := nw.Duplicate()
	if !o.SkipOptimize {
		// MaxNodeLiterals keeps optimized nodes small, matching the
		// "relatively simple nodes" the paper attributes to its
		// fast_extract/quick-decomposition front end (Section 4).
		span := sc.StartCtx(ctx, "quick-opt")
		st, err := opt.Optimize(ctx, work, opt.Options{
			EliminateThreshold: o.EliminateThreshold,
			MaxNodeLiterals:    6,
			StrongSimplify:     o.StrongSimplify,
		})
		span.SetAttr("literals_before", st.LiteralsBefore).SetAttr("literals_after", st.LiteralsAfter)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("core: optimize: %w", err)
		}
		res.OptStats = st
		sc.Counter("core.opt_literals_removed").Add(int64(st.LiteralsBefore - st.LiteralsAfter))
	}
	res.Optimized = work

	span := sc.StartCtx(ctx, "decompose")
	span.SetAttr("strategy", o.Decomposition.String()).SetAttr("circuit", work.Name)
	d, err := decomp.Decompose(ctx, work, decomp.Options{
		Strategy:        o.Decomposition,
		Style:           o.Style,
		Exact:           o.Exact,
		PIProb:          o.PIProb,
		Strash:          o.Strash,
		Obs:             sc,
		Journal:         o.Journal,
		Workers:         o.Workers,
		BDD:             o.BDD,
		Activity:        o.Activity,
		ActivityVectors: o.ActivityVectors,
	})
	if err != nil {
		// The typed failure lands on the span as an event, so the flight
		// record's span tail names the phase and the error class.
		span.Event("error", "error", err.Error(), "node_limit", bdd.IsNodeLimit(err))
		span.End()
		return nil, fmt.Errorf("core: decompose: %w", err)
	}
	span.SetAttr("subject_nodes", d.Network.Stats().Nodes)
	span.End()
	res.Decomp = d

	span = sc.StartCtx(ctx, "map")
	span.SetAttr("objective", o.Mapping.String()).SetAttr("backend", o.Mapper.String())
	nl, err := mapper.Map(ctx, d.Network, d.Model, mapper.Options{
		Objective:    o.Mapping,
		Library:      o.Library,
		Backend:      o.Mapper,
		LUT:          o.LUT,
		TreeMode:     o.TreeMode,
		Epsilon:      o.Epsilon,
		Env:          o.Env,
		PIArrival:    o.PIArrival,
		PORequired:   o.PORequired,
		Relax:        o.Relax,
		PowerMethod2: o.PowerMethod2,
		CurveAudit:   o.CurveAudit,
		Obs:          sc,
		Journal:      o.Journal,
		Workers:      o.Workers,
	})
	if err != nil {
		span.Event("error", "error", err.Error(), "node_limit", bdd.IsNodeLimit(err))
		span.End()
		return nil, fmt.Errorf("core: map: %w", err)
	}
	span.SetAttr("gates", nl.Report.Gates)
	span.End()
	span = sc.StartCtx(ctx, "verify-netlist")
	err = nl.Verify(d.Model)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("core: mapped netlist failed verification: %w", err)
	}
	res.Netlist = nl
	res.Report = nl.Report
	sc.Gauge("core.gates").Set(float64(nl.Report.Gates))
	sc.Gauge("core.area").Set(nl.Report.GateArea)
	sc.Gauge("core.delay_ns").Set(nl.Report.Delay)
	sc.Gauge("core.power_uw").Set(nl.Report.PowerUW)
	return res, nil
}

// VerifyAgainstSource checks that the synthesized result still computes the
// original network's outputs (BDD equivalence of the optimized network vs
// the source; the mapped netlist is verified gate-by-gate in Synthesize).
func VerifyAgainstSource(ctx context.Context, src *network.Network, res *Result) error {
	return VerifyAgainstSourceWith(ctx, src, res, bdd.Config{})
}

// VerifyAgainstSourceWith is VerifyAgainstSource with an explicit BDD
// kernel configuration for the equivalence managers.
func VerifyAgainstSourceWith(ctx context.Context, src *network.Network, res *Result, cfg bdd.Config) error {
	ok, err := prob.EquivalentOutputsWith(ctx, src, res.Optimized, cfg)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: optimized network is not equivalent to the source")
	}
	ok, err = prob.EquivalentOutputsWith(ctx, src, res.Decomp.Network, cfg)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: subject graph is not equivalent to the source")
	}
	return nil
}
