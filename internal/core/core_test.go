package core

import (
	"context"
	"testing"

	"powermap/internal/circuits"
	"powermap/internal/huffman"
)

func TestMethodProperties(t *testing.T) {
	if len(Methods()) != 6 {
		t.Fatal("expected six methods")
	}
	wantsAD := map[Method]bool{MethodI: true, MethodII: true, MethodIII: true}
	for _, m := range Methods() {
		if (m.Mapping().String() == "ad-map") != wantsAD[m] {
			t.Errorf("method %v mapping %v wrong", m, m.Mapping())
		}
	}
	if MethodI.Decomposition() != MethodIV.Decomposition() {
		t.Error("I and IV must share decomposition")
	}
	if MethodI.String() != "I" || MethodVI.String() != "VI" {
		t.Error("Roman numerals broken")
	}
}

func TestSynthesizeAllMethodsSmallCircuit(t *testing.T) {
	bench, err := circuits.ByName("cm42a")
	if err != nil {
		t.Fatal(err)
	}
	src := bench.Build()
	for _, m := range Methods() {
		res, err := Synthesize(src, Options{Method: m, Style: huffman.Static})
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if err := VerifyAgainstSource(context.Background(), src, res); err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if res.Report.Gates == 0 || res.Report.GateArea <= 0 || res.Report.PowerUW <= 0 {
			t.Errorf("method %v: degenerate report %+v", m, res.Report)
		}
	}
}

func TestSynthesizeALU(t *testing.T) {
	src := circuits.ALU(4)
	adRes, err := Synthesize(src, Options{Method: MethodI, Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	pdRes, err := Synthesize(src, Options{Method: MethodIV, Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstSource(context.Background(), src, adRes); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstSource(context.Background(), src, pdRes); err != nil {
		t.Fatal(err)
	}
	// The headline shape: pd-map spends area to save power.
	if pdRes.Report.PowerUW > adRes.Report.PowerUW*1.10 {
		t.Errorf("pd-map power %.2f clearly worse than ad-map %.2f",
			pdRes.Report.PowerUW, adRes.Report.PowerUW)
	}
}

func TestSynthesizeDominoStyles(t *testing.T) {
	src := circuits.Decoder10()
	for _, style := range []huffman.Style{huffman.DominoP, huffman.DominoN} {
		res, err := Synthesize(src, Options{Method: MethodV, Style: style})
		if err != nil {
			t.Fatalf("style %v: %v", style, err)
		}
		if err := VerifyAgainstSource(context.Background(), src, res); err != nil {
			t.Fatalf("style %v: %v", style, err)
		}
	}
}

func TestSynthesizeExactCosting(t *testing.T) {
	src := circuits.Decoder10()
	res, err := Synthesize(src, Options{Method: MethodV, Style: huffman.Static, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstSource(context.Background(), src, res); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeDoesNotMutateInput(t *testing.T) {
	src := circuits.Decoder10()
	before := src.Stats()
	if _, err := Synthesize(src, Options{Method: MethodIV, Style: huffman.Static}); err != nil {
		t.Fatal(err)
	}
	if src.Stats() != before {
		t.Error("input network mutated by Synthesize")
	}
}

func TestSynthesizeOptionPaths(t *testing.T) {
	src := circuits.Decoder10()
	for _, o := range []Options{
		{Method: MethodV, Style: huffman.Static, TreeMode: true},
		{Method: MethodV, Style: huffman.Static, Epsilon: 0.3},
		{Method: MethodV, Style: huffman.Static, PowerMethod2: true},
		{Method: MethodV, Style: huffman.Static, EliminateThreshold: -1},
		{Decomposition: 1 /* MinPower */, Mapping: 1 /* PowerDelay */, Style: huffman.Static},
	} {
		res, err := Synthesize(src, o)
		if err != nil {
			t.Fatalf("options %+v: %v", o, err)
		}
		if err := VerifyAgainstSource(context.Background(), src, res); err != nil {
			t.Fatalf("options %+v: %v", o, err)
		}
	}
}

func TestSynthesizeTimingConstraints(t *testing.T) {
	src := circuits.ALU(4)
	ref, err := Synthesize(src, Options{Method: MethodIV, Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	req := ref.Netlist.OutputArrivals()
	for name, a := range req {
		req[name] = a * 1.2
	}
	res, err := Synthesize(src, Options{
		Method:     MethodIV,
		Style:      huffman.Static,
		PORequired: req,
		PIArrival:  map[string]float64{"a0": 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.WorstSlack(req) < -1e-6 {
		// Some slack misses are tolerated (fixed-load residuals), but the
		// overall delay must stay within the budget regime.
		if res.Report.Delay > ref.Report.Delay*1.3 {
			t.Errorf("constrained run much slower: %.2f vs %.2f", res.Report.Delay, ref.Report.Delay)
		}
	}
}

func TestSynthesizeBadProbability(t *testing.T) {
	src := circuits.Decoder10()
	_, err := Synthesize(src, Options{Method: MethodI, Style: huffman.Static,
		PIProb: map[string]float64{"a0": -1}})
	if err == nil {
		t.Error("bad probability accepted")
	}
}

func TestSynthesizeSkipOptimize(t *testing.T) {
	src := circuits.Decoder10()
	res, err := Synthesize(src, Options{Method: MethodI, Style: huffman.Static, SkipOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptStats.LiteralsBefore != 0 {
		t.Error("optimize ran despite SkipOptimize")
	}
}
