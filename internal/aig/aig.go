// Package aig implements a structurally hashed AND-inverter graph with
// complemented edges: the mapper's subject graph. Every internal node is a
// 2-input AND; inversion lives on edges as the low bit of a literal.
// Construction folds constants and identities (AND(a,a) = a, AND(a,~a) = 0,
// AND(a,1) = a, AND(a,0) = 0) and structurally hashes AND nodes, so two
// syntactically different but structurally identical cones share one node.
// The cut enumerator and truth-table evaluator in cuts.go feed the mapper's
// NPN Boolean-matching backend.
package aig

// Lit is a literal: an edge to a node, possibly complemented. Bit 0 is the
// complement flag, the remaining bits the node id. Node 0 is the constant
// node, so ConstFalse = literal 0 and ConstTrue = literal 1.
type Lit uint32

// MakeLit builds a literal from a node id and a complement flag.
func MakeLit(node uint32, neg bool) Lit {
	l := Lit(node << 1)
	if neg {
		l |= 1
	}
	return l
}

// Node returns the node id the literal points at.
func (l Lit) Node() uint32 { return uint32(l >> 1) }

// Neg reports whether the literal is complemented.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// The two constant literals (both edges of node 0).
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindPI
	kindAnd
)

// Graph is a structurally hashed AIG. Node ids are dense and topologically
// ordered by construction: an AND's fanins always have smaller ids.
type Graph struct {
	kind   []nodeKind
	fanin0 []Lit
	fanin1 []Lit
	strash map[[2]Lit]Lit
	numPIs int
	dedup  int
}

// New returns an empty graph holding only the constant node.
func New() *Graph {
	return &Graph{
		kind:   []nodeKind{kindConst},
		fanin0: []Lit{0},
		fanin1: []Lit{0},
		strash: make(map[[2]Lit]Lit),
	}
}

// Len returns the number of nodes, including the constant and PIs.
func (g *Graph) Len() int { return len(g.kind) }

// NumPIs returns the number of primary inputs.
func (g *Graph) NumPIs() int { return g.numPIs }

// NumAnds returns the number of AND nodes.
func (g *Graph) NumAnds() int { return len(g.kind) - 1 - g.numPIs }

// Dedup returns how many AND constructions were answered from the
// structural hash instead of creating a node.
func (g *Graph) Dedup() int { return g.dedup }

// AddPI appends a primary input and returns its positive literal.
func (g *Graph) AddPI() Lit {
	id := uint32(len(g.kind))
	g.kind = append(g.kind, kindPI)
	g.fanin0 = append(g.fanin0, 0)
	g.fanin1 = append(g.fanin1, 0)
	g.numPIs++
	return MakeLit(id, false)
}

// IsPI reports whether the node is a primary input.
func (g *Graph) IsPI(node uint32) bool { return g.kind[node] == kindPI }

// IsAnd reports whether the node is an AND node.
func (g *Graph) IsAnd(node uint32) bool { return g.kind[node] == kindAnd }

// Fanins returns the two fanin literals of an AND node.
func (g *Graph) Fanins(node uint32) (Lit, Lit) {
	return g.fanin0[node], g.fanin1[node]
}

// And returns a literal for a & b, folding constants and identities and
// reusing a structurally identical node when one exists.
func (g *Graph) And(a, b Lit) Lit {
	switch {
	case a == b:
		return a
	case a == b.Not():
		return ConstFalse
	case a == ConstFalse || b == ConstFalse:
		return ConstFalse
	case a == ConstTrue:
		return b
	case b == ConstTrue:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if l, ok := g.strash[key]; ok {
		g.dedup++
		return l
	}
	id := uint32(len(g.kind))
	g.kind = append(g.kind, kindAnd)
	g.fanin0 = append(g.fanin0, a)
	g.fanin1 = append(g.fanin1, b)
	l := MakeLit(id, false)
	g.strash[key] = l
	return l
}
