package aig

import (
	"context"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/decomp"
	"powermap/internal/huffman"
	"powermap/internal/network"
)

func TestFoldingAndStrash(t *testing.T) {
	g := New()
	a := g.AddPI()
	b := g.AddPI()
	if got := g.And(a, a); got != a {
		t.Fatalf("And(a,a) = %v, want %v", got, a)
	}
	if got := g.And(a, a.Not()); got != ConstFalse {
		t.Fatalf("And(a,~a) = %v, want const0", got)
	}
	if got := g.And(a, ConstTrue); got != a {
		t.Fatalf("And(a,1) = %v, want a", got)
	}
	if got := g.And(ConstFalse, b); got != ConstFalse {
		t.Fatalf("And(0,b) = %v, want const0", got)
	}
	ab := g.And(a, b)
	if ab2 := g.And(b, a); ab2 != ab {
		t.Fatalf("And is not commutative under strash: %v vs %v", ab, ab2)
	}
	if g.Dedup() != 1 {
		t.Fatalf("dedup counter = %d, want 1", g.Dedup())
	}
	if g.NumAnds() != 1 || g.NumPIs() != 2 || g.Len() != 4 {
		t.Fatalf("unexpected sizes: %d nodes, %d PIs, %d ANDs", g.Len(), g.NumPIs(), g.NumAnds())
	}
}

func decompose(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := decomp.Decompose(context.Background(), nw, decomp.Options{
		Strategy: decomp.MinPower,
		Style:    huffman.Static,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Network
}

const testBlif = `
.model t
.inputs a b c d
.outputs y z
.names a b c d y
1111 1
.names a b z
00 1
.end
`

func TestFromNetwork(t *testing.T) {
	nw := decompose(t, testBlif)
	s, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	if s.G.NumPIs() != 4 {
		t.Fatalf("PIs = %d, want 4", s.G.NumPIs())
	}
	// Every network node must have a literal and be its own phase's
	// representative or share one created earlier.
	for i, n := range nw.TopoOrder() {
		l, ok := s.Lits[n]
		if !ok {
			t.Fatalf("node %s has no literal", n.Name)
		}
		r := s.Reps[l]
		if r == nil {
			t.Fatalf("literal of %s has no representative", n.Name)
		}
		if s.Topo[r] > i {
			t.Fatalf("representative %s of %s is later in topo order", r.Name, n.Name)
		}
	}
	// y = abcd: the AND cone must strash into 3 AND nodes regardless of
	// the NAND/INV tree shape; z adds one more.
	if s.G.NumAnds() < 4 {
		t.Fatalf("AND nodes = %d, want >= 4", s.G.NumAnds())
	}
}

func TestFromNetworkRejectsNonSubject(t *testing.T) {
	nw, err := blif.ParseString(testBlif)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetwork(nw); err == nil {
		t.Fatal("FromNetwork accepted a raw (undecomposed) network")
	}
}

// TestCutsMatchConeFunctions cross-checks every enumerated cut's truth
// table against direct evaluation of the AIG over all input assignments.
func TestCutsMatchConeFunctions(t *testing.T) {
	nw := decompose(t, testBlif)
	s, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	g := s.G
	cuts := g.EnumerateCuts(4, 8)
	// Evaluate the whole graph for each PI assignment.
	nPI := g.NumPIs()
	values := make([][]bool, g.Len())
	for v := range values {
		values[v] = make([]bool, 1<<uint(nPI))
	}
	for asg := 0; asg < 1<<uint(nPI); asg++ {
		pi := 0
		for v := uint32(0); int(v) < g.Len(); v++ {
			switch {
			case g.IsPI(v):
				values[v][asg] = asg>>uint(pi)&1 == 1
				pi++
			case g.IsAnd(v):
				f0, f1 := g.Fanins(v)
				a := values[f0.Node()][asg] != f0.Neg()
				b := values[f1.Node()][asg] != f1.Neg()
				values[v][asg] = a && b
			}
		}
	}
	checked := 0
	for v := uint32(0); int(v) < g.Len(); v++ {
		if !g.IsAnd(v) {
			continue
		}
		for _, c := range cuts[v] {
			tt, err := g.CutTT(v, c.Leaves)
			if err != nil {
				t.Fatalf("node %d cut %v: %v", v, c.Leaves, err)
			}
			for asg := 0; asg < 1<<uint(nPI); asg++ {
				row := 0
				for i, leaf := range c.Leaves {
					if values[leaf][asg] {
						row |= 1 << uint(i)
					}
				}
				if got := tt>>uint(row)&1 == 1; got != values[v][asg] {
					t.Fatalf("node %d cut %v: tt disagrees with simulation at assignment %d", v, c.Leaves, asg)
				}
			}
			trivial := len(c.Leaves) == 1 && c.Leaves[0] == v
			if size := g.ConeSize(v, c.Leaves); (size < 1) != trivial {
				t.Fatalf("node %d cut %v: cone size %d", v, c.Leaves, size)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cuts checked")
	}
}

// TestCutLimitAndDominance checks pruning behavior: cut counts stay within
// the limit and no cut is a strict superset of another.
func TestCutLimitAndDominance(t *testing.T) {
	nw := decompose(t, testBlif)
	s, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 6
	cuts := s.G.EnumerateCuts(4, limit)
	for v := uint32(0); int(v) < s.G.Len(); v++ {
		cs := cuts[v]
		if len(cs) > limit {
			t.Fatalf("node %d: %d cuts exceeds limit %d", v, len(cs), limit)
		}
		if s.G.IsAnd(v) {
			last := cs[len(cs)-1]
			if len(last.Leaves) != 1 || last.Leaves[0] != v {
				t.Fatalf("node %d: trivial cut missing or misplaced: %v", v, cs)
			}
		}
		for i, c := range cs {
			for j, d := range cs {
				if i == j || len(d.Leaves) >= len(c.Leaves) || len(c.Leaves) == 1 {
					continue
				}
				if isSubset(d.Leaves, c.Leaves) {
					t.Fatalf("node %d: cut %v dominated by %v survived", v, c.Leaves, d.Leaves)
				}
			}
		}
	}
}
