package aig

import (
	"fmt"
	"sort"

	"powermap/internal/npn"
)

// Cut is a k-feasible cut of an AND node: a set of leaf node ids (ascending)
// such that every path from the node to a PI passes through a leaf. The
// node's function over the leaf variables is the candidate for Boolean
// matching.
type Cut struct {
	Leaves []uint32
}

// EnumerateCuts computes, for every node, its priority cuts: all merged
// fanin cuts with at most k leaves, superset-dominated cuts removed, kept
// in deterministic (size, lexicographic) order and truncated to limit, plus
// the trivial {node} cut last. Smaller cuts sort first, so the trivial
// fanin cuts that guarantee a library match always survive pruning.
// The result is indexed by node id.
func (g *Graph) EnumerateCuts(k, limit int) [][]Cut {
	cuts := make([][]Cut, g.Len())
	for v := uint32(0); int(v) < g.Len(); v++ {
		switch g.kind[v] {
		case kindConst:
			cuts[v] = []Cut{{}}
		case kindPI:
			cuts[v] = []Cut{{Leaves: []uint32{v}}}
		case kindAnd:
			f0, f1 := g.fanin0[v], g.fanin1[v]
			var merged []Cut
			seen := make(map[string]bool)
			for _, c0 := range cuts[f0.Node()] {
				for _, c1 := range cuts[f1.Node()] {
					u, ok := mergeLeaves(c0.Leaves, c1.Leaves, k)
					if !ok {
						continue
					}
					key := leafKey(u)
					if seen[key] {
						continue
					}
					seen[key] = true
					merged = append(merged, Cut{Leaves: u})
				}
			}
			merged = filterDominated(merged)
			sort.Slice(merged, func(i, j int) bool {
				return leafLess(merged[i].Leaves, merged[j].Leaves)
			})
			if len(merged) >= limit {
				merged = merged[:limit-1]
			}
			merged = append(merged, Cut{Leaves: []uint32{v}})
			cuts[v] = merged
		}
	}
	return cuts
}

// mergeLeaves unions two ascending leaf lists, rejecting unions larger
// than k.
func mergeLeaves(a, b []uint32, k int) ([]uint32, bool) {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > k {
			return nil, false
		}
	}
	return out, true
}

func leafKey(leaves []uint32) string {
	b := make([]byte, 0, len(leaves)*4)
	for _, l := range leaves {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

func leafLess(a, b []uint32) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// filterDominated drops any cut whose leaves are a strict superset of
// another cut's: the subset cut covers at least as much logic with fewer
// inputs.
func filterDominated(cs []Cut) []Cut {
	out := cs[:0]
	for i, c := range cs {
		dominated := false
		for j, d := range cs {
			if i == j || len(d.Leaves) > len(c.Leaves) {
				continue
			}
			if len(d.Leaves) == len(c.Leaves) && j > i {
				continue // equal-size duplicates were already deduped
			}
			if isSubset(d.Leaves, c.Leaves) && len(d.Leaves) < len(c.Leaves) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// isSubset reports a ⊆ b for ascending lists.
func isSubset(a, b []uint32) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// CutTT evaluates the function of node root over the cut's leaves as a
// truth table (leaf i = input variable i). The cut must cover the cone:
// reaching a PI that is not a leaf is an error.
func (g *Graph) CutTT(root uint32, leaves []uint32) (uint64, error) {
	n := len(leaves)
	if n > npn.Max {
		return 0, fmt.Errorf("aig: cut with %d leaves exceeds %d-input truth tables", n, npn.Max)
	}
	tts := make(map[uint32]uint64, 2*n)
	for i, leaf := range leaves {
		tts[leaf] = npn.Var(i, n)
	}
	var eval func(v uint32) (uint64, error)
	eval = func(v uint32) (uint64, error) {
		if tt, ok := tts[v]; ok {
			return tt, nil
		}
		switch g.kind[v] {
		case kindConst:
			return 0, nil
		case kindPI:
			return 0, fmt.Errorf("aig: cut does not cover PI node %d", v)
		}
		f0, f1 := g.fanin0[v], g.fanin1[v]
		a, err := eval(f0.Node())
		if err != nil {
			return 0, err
		}
		if f0.Neg() {
			a = ^a
		}
		b, err := eval(f1.Node())
		if err != nil {
			return 0, err
		}
		if f1.Neg() {
			b = ^b
		}
		tt := a & b & npn.Mask(n)
		tts[v] = tt
		return tt, nil
	}
	return eval(root)
}

// ConeSize counts the AND nodes strictly inside the cut: between root
// (inclusive) and the leaves (exclusive). It measures how much subject
// logic one matched gate covers.
func (g *Graph) ConeSize(root uint32, leaves []uint32) int {
	stop := make(map[uint32]bool, len(leaves))
	for _, l := range leaves {
		stop[l] = true
	}
	seen := make(map[uint32]bool)
	var walk func(v uint32) int
	walk = func(v uint32) int {
		if stop[v] || seen[v] || g.kind[v] != kindAnd {
			return 0
		}
		seen[v] = true
		return 1 + walk(g.fanin0[v].Node()) + walk(g.fanin1[v].Node())
	}
	return walk(root)
}
