package aig

import (
	"fmt"

	"powermap/internal/decomp"
	"powermap/internal/network"
)

// Subject ties a decomposed NAND2/INV network to its structurally hashed
// AIG. Each network signal maps to one literal; the reverse map records,
// per literal, the earliest network node (in topological order) computing
// exactly that function and phase, so a Boolean match can wire any cut
// leaf phase to a real signal. Inverters and buffers create no AIG nodes —
// they move the complement bit — which is precisely what lets the cut
// backend see through chains the structural matcher must pattern-match.
type Subject struct {
	G *Graph
	// Lits maps every network node to the literal computing its signal.
	Lits map[*network.Node]Lit
	// Reps maps a literal to the earliest network node whose signal is
	// exactly that literal (same node, same phase). Not every literal has
	// a representative: the positive phase of a NAND2's AND node exists in
	// the network only if some inverter re-inverts it.
	Reps map[Lit]*network.Node
	// Topo gives each network node's topological index; matches may only
	// use leaves with a strictly smaller index than the matched root.
	Topo map[*network.Node]int
}

// FromNetwork builds the subject AIG of a decomposed network. Every
// internal node must be a canonical NAND2, INV, or buffer (the contract
// decomp.Decompose guarantees); anything else is an error naming the node.
func FromNetwork(nw *network.Network) (*Subject, error) {
	s := &Subject{
		G:    New(),
		Lits: make(map[*network.Node]Lit),
		Reps: make(map[Lit]*network.Node),
		Topo: make(map[*network.Node]int),
	}
	for i, n := range nw.TopoOrder() {
		var l Lit
		switch {
		case n.Kind == network.PI:
			l = s.G.AddPI()
		case n.Kind == network.Constant:
			l = ConstFalse
			if n.Func.IsOne() {
				l = ConstTrue
			}
		case decomp.IsInv(n):
			l = s.Lits[n.Fanin[0]].Not()
		case decomp.IsBuffer(n):
			l = s.Lits[n.Fanin[0]]
		case decomp.IsNand2(n):
			l = s.G.And(s.Lits[n.Fanin[0]], s.Lits[n.Fanin[1]]).Not()
		default:
			return nil, fmt.Errorf("aig: node %s is not in NAND2/INV subject form", n.Name)
		}
		s.Lits[n] = l
		s.Topo[n] = i
		if _, ok := s.Reps[l]; !ok {
			s.Reps[l] = n
		}
	}
	return s, nil
}
