package npn

import (
	"math/rand"
	"testing"
)

// allTransforms enumerates every NPN transform over n inputs:
// n! permutations x 2^n input flips x 2 output phases.
func allTransforms(n int) []Transform {
	var out []Transform
	for _, perm := range permsByN[n] {
		for fl := 0; fl < 1<<uint(n); fl++ {
			for neg := 0; neg < 2; neg++ {
				out = append(out, Transform{Perm: perm, Flips: uint8(fl), NegOut: neg == 1})
			}
		}
	}
	return out
}

// TestCanonicalExhaustiveSmall brute-forces every function of n <= 3 inputs
// against every member of its NPN orbit: all class members must
// canonicalize to the same representative, the representative must be in
// the orbit, and the returned transform must actually produce it.
func TestCanonicalExhaustiveSmall(t *testing.T) {
	for n := 0; n <= 3; n++ {
		ts := allTransforms(n)
		size := uint64(1) << (1 << uint(n))
		for f := uint64(0); f < size; f++ {
			rep, tr := Canonical(f, n)
			if got := tr.Apply(f, n); got != rep {
				t.Fatalf("n=%d f=%#x: transform gives %#x, want rep %#x", n, f, got, rep)
			}
			for _, u := range ts {
				g := u.Apply(f, n)
				if rep2, _ := Canonical(g, n); rep2 != rep {
					t.Fatalf("n=%d f=%#x: orbit member %#x canonicalizes to %#x, want %#x",
						n, f, g, rep2, rep)
				}
				if g < rep {
					t.Fatalf("n=%d f=%#x: orbit member %#x below representative %#x", n, f, g, rep)
				}
			}
		}
	}
}

// TestCanonicalOrbitN4 samples functions of 4 inputs and checks the full
// orbit (24 x 16 x 2 = 768 transforms) agrees on one representative.
func TestCanonicalOrbitN4(t *testing.T) {
	r := rand.New(rand.NewSource(1993))
	ts := allTransforms(4)
	for i := 0; i < 300; i++ {
		f := r.Uint64() & Mask(4)
		rep, tr := Canonical(f, 4)
		if got := tr.Apply(f, 4); got != rep {
			t.Fatalf("f=%#x: transform gives %#x, want %#x", f, got, rep)
		}
		for _, u := range ts {
			g := u.Apply(f, 4)
			if rep2, _ := Canonical(g, 4); rep2 != rep {
				t.Fatalf("f=%#x: orbit member %#x canonicalizes to %#x, want %#x", f, g, rep2, rep)
			}
		}
	}
}

// TestTransformAlgebra proves Invert and Compose against Apply on random
// functions for every n: round-trips restore f, and composition equals
// sequential application.
func TestTransformAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for n := 0; n <= Max; n++ {
		for i := 0; i < 50; i++ {
			f := r.Uint64() & Mask(n)
			a := randTransform(r, n)
			b := randTransform(r, n)
			if got := a.Invert().Apply(a.Apply(f, n), n); got != f {
				t.Fatalf("n=%d: invert round-trip %#x != %#x (t=%+v)", n, got, f, a)
			}
			if got := a.Apply(a.Invert().Apply(f, n), n); got != f {
				t.Fatalf("n=%d: reverse invert round-trip %#x != %#x", n, got, f)
			}
			want := a.Apply(b.Apply(f, n), n)
			if got := Compose(a, b).Apply(f, n); got != want {
				t.Fatalf("n=%d: compose(a,b) gives %#x, want a(b(f)) = %#x", n, got, want)
			}
		}
	}
}

func randTransform(r *rand.Rand, n int) Transform {
	tr := Identity()
	perm := r.Perm(n)
	for j, p := range perm {
		tr.Perm[j] = uint8(p)
	}
	tr.Flips = uint8(r.Intn(1 << uint(n)))
	tr.NegOut = r.Intn(2) == 1
	return tr
}

// TestAutomorphisms checks the automorphism group on known functions and
// that every returned transform fixes the function.
func TestAutomorphisms(t *testing.T) {
	and2 := uint64(0b1000) // x0 & x1
	auts := Automorphisms(and2, 2, 0)
	// AND2 is fixed only by the two input permutations (no flip/negation
	// pattern maps AND back to AND).
	if len(auts) != 2 {
		t.Fatalf("AND2 automorphisms: got %d, want 2 (%+v)", len(auts), auts)
	}
	xor2 := uint64(0b0110)
	auts = Automorphisms(xor2, 2, 0)
	// XOR2: 2 perms x {no flips; both flips; one flip + output negation x2}.
	if len(auts) != 8 {
		t.Fatalf("XOR2 automorphisms: got %d, want 8", len(auts))
	}
	for _, f := range []uint64{and2, xor2, 0b11010010} {
		n := 3
		if f < 16 {
			n = 2
		}
		for _, u := range Automorphisms(f, n, 0) {
			if got := u.Apply(f, n); got != f {
				t.Fatalf("automorphism %+v moves %#x to %#x", u, f, got)
			}
		}
	}
	if got := Automorphisms(xor2, 2, 3); len(got) != 3 {
		t.Fatalf("limit ignored: got %d transforms, want 3", len(got))
	}
	id := Automorphisms(and2, 2, 1)[0]
	if id != Identity() {
		t.Fatalf("first automorphism %+v is not the identity", id)
	}
}

// TestSupportReduce checks vacuous-input elimination.
func TestSupportReduce(t *testing.T) {
	// f(x0,x1,x2) = x0 & x2 — x1 vacuous.
	var f uint64
	for x := 0; x < 8; x++ {
		if x&1 == 1 && x&4 != 0 {
			f |= 1 << uint(x)
		}
	}
	sup := Support(f, 3)
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("support: got %v, want [0 2]", sup)
	}
	g, kept := Reduce(f, 3)
	if g != 0b1000 || len(kept) != 2 {
		t.Fatalf("reduce: got %#x over %v, want 0x8 over [0 2]", g, kept)
	}
	// Constant functions reduce to empty support.
	if g, kept := Reduce(0, 4); g != 0 || len(kept) != 0 {
		t.Fatalf("constant reduce: got %#x over %v", g, kept)
	}
	// Full-support functions come back unchanged.
	if g, kept := Reduce(0b0110, 2); g != 0b0110 || len(kept) != 2 {
		t.Fatalf("full-support reduce: got %#x over %v", g, kept)
	}
}

// TestVarProjection pins the projection tables the AIG cut evaluator
// builds leaf functions from.
func TestVarProjection(t *testing.T) {
	if got := Var(0, 2); got != 0b1010 {
		t.Fatalf("Var(0,2) = %#b", got)
	}
	if got := Var(1, 2); got != 0b1100 {
		t.Fatalf("Var(1,2) = %#b", got)
	}
	for i := 0; i < Max; i++ {
		f := Var(i, Max)
		if sup := Support(f, Max); len(sup) != 1 || sup[0] != i {
			t.Fatalf("Var(%d): support %v", i, sup)
		}
	}
}

// FuzzCanonical fuzzes the canonicalizer up to n = 6: for arbitrary f and
// an arbitrary transform seed, the transformed function must canonicalize
// to the same representative and never below it.
func FuzzCanonical(f *testing.F) {
	f.Add(uint64(0b0110_1001), uint8(3), uint8(0x15), true)
	f.Add(uint64(0xcafebabe_deadbeef), uint8(6), uint8(0), false)
	f.Add(uint64(0x8000), uint8(4), uint8(0xff), true)
	f.Fuzz(func(t *testing.T, tt uint64, nRaw, seed uint8, neg bool) {
		n := int(nRaw % (Max + 1))
		tt &= Mask(n)
		rep, tr := Canonical(tt, n)
		if got := tr.Apply(tt, n); got != rep {
			t.Fatalf("n=%d f=%#x: transform does not reach rep: %#x != %#x", n, tt, got, rep)
		}
		if rep > tt {
			t.Fatalf("n=%d f=%#x: representative %#x above input", n, tt, rep)
		}
		// Derive one orbit member from the fuzzed seed and check agreement.
		u := Identity()
		perms := permsByN[n]
		u.Perm = perms[int(seed)%len(perms)]
		u.Flips = seed % uint8(1<<uint(n))
		u.NegOut = neg
		g := u.Apply(tt, n)
		rep2, _ := Canonical(g, n)
		if rep2 != rep {
			t.Fatalf("n=%d f=%#x: orbit member %#x gives rep %#x, want %#x", n, tt, g, rep2, rep)
		}
	})
}
