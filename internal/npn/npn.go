// Package npn classifies Boolean functions of up to 6 inputs under NPN
// equivalence: input Negation, input Permutation, and output Negation.
// Functions are truth tables packed into a uint64, bit x holding f(x) with
// input i contributing bit i of the row index x.
//
// Two functions are NPN-equivalent iff one can be obtained from the other
// by permuting inputs, complementing a subset of inputs, and optionally
// complementing the output. Canonical picks a unique representative per
// class (the numerically smallest reachable truth table), so a single
// equality on representatives decides Boolean matchability between a cut
// function and a library cell — the core of the mapper's cut backend.
package npn

import "math/bits"

// Max is the largest supported input count; truth tables of up to 2^6 =
// 64 rows fit one uint64.
const Max = 6

// Transform is one NPN transformation. Applying it to f yields
//
//	g(x_0..x_{n-1}) = f(y_0..y_{n-1}) ^ NegOut,  y_j = x_{Perm[j]} ^ Flips_j
//
// i.e. input j of f is driven by input Perm[j] of g, complemented when bit
// j of Flips is set. Entries Perm[j] for j >= n are kept at j so transforms
// over the same n compose without carrying n around.
type Transform struct {
	Perm   [Max]uint8
	Flips  uint8
	NegOut bool
}

// Identity returns the identity transform.
func Identity() Transform {
	var t Transform
	for j := range t.Perm {
		t.Perm[j] = uint8(j)
	}
	return t
}

// Mask returns the valid truth-table bits for n inputs.
func Mask(n int) uint64 {
	if n >= Max {
		return ^uint64(0)
	}
	return 1<<(1<<uint(n)) - 1
}

// Var returns the projection function of input i over n inputs: the truth
// table of f(x) = x_i.
func Var(i, n int) uint64 {
	var f uint64
	for x := 0; x < 1<<uint(n); x++ {
		if x>>uint(i)&1 == 1 {
			f |= 1 << uint(x)
		}
	}
	return f
}

// Apply applies the transform to an n-input truth table.
func (t Transform) Apply(f uint64, n int) uint64 {
	size := 1 << uint(n)
	var g uint64
	for x := 0; x < size; x++ {
		y := int(t.Flips) & (size - 1)
		for j := 0; j < n; j++ {
			y ^= int(x>>t.Perm[j]&1) << uint(j)
		}
		if f>>uint(y)&1 == 1 {
			g |= 1 << uint(x)
		}
	}
	if t.NegOut {
		g = ^g & Mask(n)
	}
	return g
}

// Invert returns the inverse transform: Invert(t).Apply(t.Apply(f, n), n)
// == f for every n-input f.
func (t Transform) Invert() Transform {
	var inv Transform
	for j, p := range t.Perm {
		inv.Perm[p] = uint8(j)
		if t.Flips>>uint(j)&1 == 1 {
			inv.Flips |= 1 << p
		}
	}
	inv.NegOut = t.NegOut
	return inv
}

// Compose returns the transform c with c.Apply(f, n) == a.Apply(b.Apply(f,
// n), n): first b rewires f's inputs, then a rewires the result's.
func Compose(a, b Transform) Transform {
	var c Transform
	for j := range c.Perm {
		bp := b.Perm[j]
		c.Perm[j] = a.Perm[bp]
		fl := a.Flips>>bp&1 ^ b.Flips>>uint(j)&1
		c.Flips |= fl << uint(j)
	}
	c.NegOut = a.NegOut != b.NegOut
	return c
}

// permsByN[n] holds all permutations of 0..n-1 in lexicographic order, each
// extended to Max entries with the identity tail.
var permsByN [Max + 1][][Max]uint8

func init() {
	for n := 0; n <= Max; n++ {
		permsByN[n] = genPerms(n)
	}
}

func genPerms(n int) [][Max]uint8 {
	base := Identity().Perm
	var out [][Max]uint8
	var rec func(p [Max]uint8, k int)
	rec = func(p [Max]uint8, k int) {
		if k == n {
			out = append(out, p)
			return
		}
		for j := k; j < n; j++ {
			q := p
			// Rotate element j into position k, keeping the remainder in
			// ascending order so the emission order is lexicographic.
			v := q[j]
			copy(q[k+1:j+1], p[k:j])
			q[k] = v
			rec(q, k+1)
		}
	}
	rec(base, 0)
	return out
}

// permute returns f with inputs rewired by perm alone (no flips, no output
// negation): g(x) = f(y), y_j = x_{perm[j]}.
func permute(f uint64, n int, perm [Max]uint8) uint64 {
	size := 1 << uint(n)
	var g uint64
	for x := 0; x < size; x++ {
		y := 0
		for j := 0; j < n; j++ {
			y |= int(x>>perm[j]&1) << uint(j)
		}
		if f>>uint(y)&1 == 1 {
			g |= 1 << uint(x)
		}
	}
	return g
}

// flipSpace maps an input-flip vector from the transformed input space back
// through perm: g(x) = f_perm(x ^ fx) equals the full transform with Flips_j
// = fx_{perm^-1... — callers use flipFor instead; see Canonical.
func flipFor(perm [Max]uint8, fx int) uint8 {
	// f(base(x) ^ F) with F_j = bit perm[j] of fx: base is a bit
	// permutation, so xoring fx before permuting equals xoring F after.
	var fl uint8
	for j := 0; j < Max; j++ {
		fl |= uint8(fx>>perm[j]&1) << uint(j)
	}
	return fl
}

// Canonical returns the canonical NPN representative of an n-input truth
// table — the numerically smallest table reachable by any Transform — and
// one transform t with t.Apply(f, n) == rep. The choice of t among ties is
// deterministic (first in perm-major, flip-minor, plain-before-negated
// order), so canonicalization is reproducible across runs.
func Canonical(f uint64, n int) (uint64, Transform) {
	f &= Mask(n)
	size := 1 << uint(n)
	mask := Mask(n)
	best := f
	bestT := Identity()
	found := false
	for _, perm := range permsByN[n] {
		fp := permute(f, n, perm)
		for fx := 0; fx < size; fx++ {
			// g(x) = fp(x ^ fx); fx in the post-permutation input space.
			var g uint64
			for x := 0; x < size; x++ {
				if fp>>uint(x^fx)&1 == 1 {
					g |= 1 << uint(x)
				}
			}
			for neg := 0; neg < 2; neg++ {
				cand := g
				if neg == 1 {
					cand = ^g & mask
				}
				if !found || cand < best {
					best = cand
					bestT = Transform{Perm: perm, Flips: flipFor(perm, fx), NegOut: neg == 1}
					found = true
				}
			}
		}
	}
	return best, bestT
}

// Automorphisms returns transforms t with t.Apply(f, n) == f, in the same
// deterministic order Canonical scans, up to limit entries (limit <= 0
// means no bound). The identity is always first. Matching composes these
// with the canonicalizing transforms to reach every input binding of a
// matched cell, not just one.
func Automorphisms(f uint64, n int, limit int) []Transform {
	f &= Mask(n)
	size := 1 << uint(n)
	mask := Mask(n)
	var out []Transform
	for _, perm := range permsByN[n] {
		fp := permute(f, n, perm)
		for fx := 0; fx < size; fx++ {
			var g uint64
			for x := 0; x < size; x++ {
				if fp>>uint(x^fx)&1 == 1 {
					g |= 1 << uint(x)
				}
			}
			if g == f {
				out = append(out, Transform{Perm: perm, Flips: flipFor(perm, fx)})
			} else if ^g&mask == f {
				out = append(out, Transform{Perm: perm, Flips: flipFor(perm, fx), NegOut: true})
			}
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// Support returns the indices of inputs f actually depends on, ascending.
func Support(f uint64, n int) []int {
	f &= Mask(n)
	var sup []int
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		for x := 0; x < 1<<uint(n); x++ {
			if uint64(x)&bit != 0 {
				continue
			}
			if f>>uint(x)&1 != f>>(uint(x)|uint(bit))&1 {
				sup = append(sup, i)
				break
			}
		}
	}
	return sup
}

// Reduce projects f onto its support: it returns the equivalent truth
// table over m = len(support) inputs plus the original indices, so
// vacuous cut leaves drop out before canonicalization and functions land
// in the class of their true arity.
func Reduce(f uint64, n int) (uint64, []int) {
	sup := Support(f, n)
	if len(sup) == n {
		return f & Mask(n), sup
	}
	var g uint64
	for x := 0; x < 1<<uint(len(sup)); x++ {
		full := 0
		for i, s := range sup {
			full |= int(x>>uint(i)&1) << uint(s)
		}
		if f>>uint(full)&1 == 1 {
			g |= 1 << uint(x)
		}
	}
	return g, sup
}

// OnesCount reports the number of minterms of an n-input table — handy for
// sanity checks and deterministic tie-breaking in callers.
func OnesCount(f uint64, n int) int {
	return bits.OnesCount64(f & Mask(n))
}
