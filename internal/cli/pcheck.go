package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"strings"

	"powermap/internal/bdd"
	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/genlib"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/mapper"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/verify"
)

// Pcheck runs the pcheck command: formal verification of the synthesis flow
// on a BLIF netlist, a built-in benchmark, seeded random networks, or all
// three. For every requested method it synthesizes the circuit and proves
// source ≡ optimized ≡ decomposed ≡ mapped with global ROBDDs, audits every
// power-delay curve for the non-inferiority invariant, and cross-checks the
// mapped report against independent recomputations. It returns a non-nil
// error (so the command exits nonzero) on any violation, carrying a
// counterexample input cube when the failure is functional.
func Pcheck(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		blifPath = fs.String("blif", "", "input BLIF netlist")
		circuit  = fs.String("circuit", "", "built-in benchmark name (see -list)")
		list     = fs.Bool("list", false, "list built-in benchmarks and exit")
		libPath  = fs.String("lib", "", "genlib library file (default: embedded lib2)")
		methodsF = fs.String("methods", "I,VI", "comma-separated methods to check, or \"all\"")
		styleF   = fs.String("style", "static", "design style: static, domino-p, domino-n")
		tree     = fs.Bool("tree", false, "strict tree partitioning in the mapper")
		relax    = fs.Float64("relax", 0.15, "timing slack fraction for defaulted required times")
		workers  = fs.Int("workers", 0, "worker pool size for parallel phases (0 = all CPUs)")
		randomN  = fs.Int("random", 0, "also verify N seeded random networks end to end")
		huffN    = fs.Int("huffman", 0, "also check N Huffman/package-merge instances against the enumeration oracle")
		seed     = fs.Int64("seed", 1, "base seed for -random and -huffman")
		jpath    = fs.String("journal", "", "write decision-provenance journals (JSONL) to this path; with multiple checks the circuit and method are appended to the name")
		inject   = fs.Bool("inject", false, "corrupt one mapped gate before checking; the checker must reject it (self-test, always exits nonzero)")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	)
	bddf := addBDDFlags(fs)
	mapf := addMapFlags(fs)
	tel := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, treeMode, lut, err := mapf.resolve(*tree)
	if err != nil {
		return err
	}
	if *list {
		for _, b := range circuits.Suite() {
			fmt.Fprintf(out, "%-8s %s\n", b.Name, b.Description)
		}
		return nil
	}
	methods, err := parseMethods(*methodsF)
	if err != nil {
		return err
	}
	st, err := ParseStyle(*styleF)
	if err != nil {
		return err
	}
	lib, err := loadLibrary(*libPath)
	if err != nil {
		return err
	}
	sc := tel.scope(errOut)
	// Synthesis checks each get their own journal. A single check uses
	// -journal verbatim; multiple checks derive per-check file names so the
	// journals don't overwrite each other.
	synthChecks := *randomN
	if *blifPath != "" || *circuit != "" {
		synthChecks += len(methods)
	}
	openCheckJournal := func(name string, m core.Method) (*journal.Journal, error) {
		if *jpath == "" {
			return nil, nil
		}
		path := *jpath
		if synthChecks > 1 {
			ext := filepath.Ext(path)
			path = strings.TrimSuffix(path, ext) + "-" + name + "-" + m.String() + ext
		}
		jr, err := journal.Create(path, journal.Header{
			RunID:     tel.resolveRunID(),
			Circuit:   name,
			Method:    m.String(),
			Strategy:  m.Decomposition().String(),
			Objective: m.Mapping().String(),
			Style:     st.String(),
			Stage:     "pcheck",
			Workers:   *workers,
		})
		if err != nil {
			return nil, err
		}
		jr.SetObs(sc)
		return jr, nil
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	ctx = obs.WithScope(ctx, sc)
	checks := 0
	if *blifPath != "" || *circuit != "" {
		src, err := LoadNetwork(*blifPath, *circuit)
		if err != nil {
			return err
		}
		for _, m := range methods {
			jr, err := openCheckJournal(src.Name, m)
			if err != nil {
				return err
			}
			err = checkOne(ctx, out, src, lib, m, st, backend, lut, treeMode, relax, *workers, *inject, sc, jr, bddf.config())
			if cerr := jr.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("journal: %w", cerr)
			}
			if err != nil {
				return timeoutError(*timeout, err)
			}
			checks++
		}
	} else if *inject {
		return fmt.Errorf("-inject needs a circuit: give -blif FILE or -circuit NAME")
	}
	for i := 0; i < *randomN; i++ {
		s := *seed + int64(i)
		src := verify.RandomNetwork(fmt.Sprintf("rand%04d", s), verify.RandConfig{Seed: s})
		m := methods[i%len(methods)]
		jr, err := openCheckJournal(src.Name, m)
		if err != nil {
			return err
		}
		err = checkOne(ctx, out, src, lib, m, st, backend, lut, treeMode || i%2 == 1, relax, *workers, false, sc, jr, bddf.config())
		if cerr := jr.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("journal: %w", cerr)
		}
		if err != nil {
			return timeoutError(*timeout, err)
		}
		checks++
	}
	if *huffN > 0 {
		if err := checkHuffmanTrials(out, st, *seed, *huffN); err != nil {
			return err
		}
		checks++
	}
	if checks == 0 {
		return fmt.Errorf("nothing to check: need -blif FILE, -circuit NAME, -random N, or -huffman N")
	}
	fmt.Fprintln(out, "pcheck: all checks passed")
	return tel.finish(out, errOut)
}

// parseMethods resolves a comma-separated method list ("I,VI") or "all".
func parseMethods(s string) ([]core.Method, error) {
	if strings.EqualFold(s, "all") {
		return core.Methods(), nil
	}
	var out []core.Method
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := ParseMethod(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no methods in %q", s)
	}
	return out, nil
}

// checkOne synthesizes src under one method and runs the full verification
// chain: curve audit during mapping, end-to-end equivalence, report
// consistency. With inject it corrupts the mapped netlist first and demands
// the checker reject it.
func checkOne(ctx context.Context, out io.Writer, src *network.Network, lib *genlib.Library,
	m core.Method, st huffman.Style, backend mapper.Backend, lut int, tree bool, relax *float64, workers int, inject bool, sc *obs.Scope, jr *journal.Journal, cfg bdd.Config) error {
	ctx = obs.WithLabels(ctx, "circuit", src.Name, "method", m.String())
	span := sc.StartCtx(ctx, "pcheck.check")
	defer span.End()
	var audit verify.CurveAuditor
	res, err := core.SynthesizeContext(ctx, src, core.Options{
		Method:     m,
		Style:      st,
		Relax:      relax,
		Mapper:     backend,
		LUT:        lut,
		TreeMode:   tree,
		Workers:    workers,
		Library:    lib,
		CurveAudit: audit.Hook(),
		Obs:        sc,
		Journal:    jr,
		BDD:        cfg,
	})
	if err != nil {
		return fmt.Errorf("%s method %s: synthesize: %w", src.Name, m, err)
	}
	if err := audit.Err(); err != nil {
		return fmt.Errorf("%s method %s: curve invariant: %w", src.Name, m, err)
	}
	span.SetAttr("curves_audited", audit.Checked()).SetAttr("gates", res.Report.Gates)
	if inject {
		return injectViolation(ctx, out, src, res, lib, cfg)
	}
	vspan := sc.StartCtx(ctx, "pcheck.verify")
	err = verify.CheckResultWith(ctx, src, res, cfg)
	vspan.End()
	if err != nil {
		return fmt.Errorf("%s method %s: %w", src.Name, m, err)
	}
	fmt.Fprintf(out, "ok %-8s method %-3s: %d gates equivalent, report consistent, %d curves audited\n",
		src.Name, m, res.Report.Gates, audit.Checked())
	return nil
}

// injectViolation swaps one mapped gate's cell for a same-pin-count cell
// with a different function and demands the checker reject the result. The
// detection comes back as an error so pcheck exits nonzero; a corruption
// the checker misses is itself an error. The self-test never exits zero.
func injectViolation(ctx context.Context, out io.Writer, src *network.Network, res *core.Result, lib *genlib.Library, cfg bdd.Config) error {
	for _, g := range res.Netlist.Gates {
		orig := g.Cell
		for _, c := range lib.Cells {
			if c == orig || len(c.Pins) != len(orig.Pins) || c.Cover().Equal(orig.Cover()) {
				continue
			}
			g.Cell = c
			err := verify.CheckResultWith(ctx, src, res, cfg)
			if err == nil {
				g.Cell = orig // masked downstream; try another injection site
				continue
			}
			fmt.Fprintf(out, "injected corruption: gate %s cell %s -> %s\n", g.Root.Name, orig.Name, c.Name)
			return fmt.Errorf("injected violation detected: %w", err)
		}
	}
	return fmt.Errorf("injected corruption went undetected by the checker")
}

// checkHuffmanTrials runs n random Huffman and package-merge instances
// (2..6 leaves, so the exhaustive enumeration oracle is exact) through the
// optimality invariants for both gate types.
func checkHuffmanTrials(out io.Writer, st huffman.Style, seed int64, n int) error {
	r := rand.New(rand.NewSource(seed))
	gates := []huffman.Gate{huffman.GateAnd, huffman.GateOr}
	for i := 0; i < n; i++ {
		k := 2 + r.Intn(5)
		probs := make([]float64, k)
		for j := range probs {
			probs[j] = 0.05 + 0.9*r.Float64()
		}
		g := gates[i%len(gates)]
		if err := verify.CheckHuffmanOptimal(g, st, probs); err != nil {
			return fmt.Errorf("huffman trial %d: %w", i, err)
		}
		limit := 1 + r.Intn(k)
		for 1<<limit < k {
			limit++ // a binary tree on k leaves needs height >= ceil(log2 k)
		}
		if err := verify.CheckBoundedHeight(g, st, probs, limit); err != nil {
			return fmt.Errorf("huffman trial %d (height limit %d): %w", i, limit, err)
		}
	}
	fmt.Fprintf(out, "ok huffman : %d trials (%v) against the enumeration oracle\n", n, st)
	return nil
}
