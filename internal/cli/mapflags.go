package cli

import (
	"flag"
	"fmt"

	"powermap/internal/mapper"
)

// mapFlags holds the uniform mapper-backend flags (-mapper, -lut) shared
// by pmap, pcheck and tables.
type mapFlags struct {
	backend *string
	lut     *int
}

// addMapFlags registers the mapper backend selection flags on fs.
func addMapFlags(fs *flag.FlagSet) *mapFlags {
	return &mapFlags{
		backend: fs.String("mapper", "",
			"match enumerator: tree (structural, DAGON partition), dag (structural, fanout division), cuts (NPN Boolean matching on a hashed AIG); default dag, or cuts when -lut is set"),
		lut: fs.Int("lut", 0,
			"map every k-feasible cut to a generic k-input LUT (2..6, implies -mapper cuts; 0 = library matching)"),
	}
}

// resolve materializes the flags as (backend, treeMode, lut). The treeDefault
// carries a tool's own -tree flag so `-tree` keeps working without -mapper.
func (m *mapFlags) resolve(treeDefault bool) (mapper.Backend, bool, int, error) {
	lut := *m.lut
	switch *m.backend {
	case "":
		if lut > 0 {
			return mapper.BackendCuts, false, lut, nil
		}
		return mapper.BackendStructural, treeDefault, 0, nil
	case "tree":
		if lut > 0 {
			return 0, false, 0, fmt.Errorf("-lut requires -mapper cuts")
		}
		return mapper.BackendStructural, true, 0, nil
	case "dag":
		if lut > 0 {
			return 0, false, 0, fmt.Errorf("-lut requires -mapper cuts")
		}
		return mapper.BackendStructural, false, 0, nil
	case "cuts":
		return mapper.BackendCuts, false, lut, nil
	}
	return 0, false, 0, fmt.Errorf("unknown -mapper %q (want tree, dag or cuts)", *m.backend)
}
