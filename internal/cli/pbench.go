package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"powermap/internal/bench"
	"powermap/internal/core"
)

// Pbench runs the benchmark-regression harness: N instrumented runs of
// the evaluation suite aggregated into a BENCH_pipeline.json manifest,
// compared against a committed baseline. Returns an error (non-zero exit
// in cmd/pbench) when a phase regresses beyond -threshold and -fail is
// set.
func Pbench(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		runs      = fs.Int("runs", 3, "repetitions; per-phase wall times take the best (minimum) run")
		quick     = fs.Bool("quick", false, "use the small 2-circuit workload (CI-friendly)")
		circuits  = fs.String("circuits", "", "comma-separated benchmark subset (overrides -quick)")
		methodsF  = fs.String("methods", "", "comma-separated method subset, e.g. I,IV (default all six)")
		workers   = fs.Int("workers", 0, "worker pool size for parallel phases (0 = all CPUs)")
		outPath   = fs.String("out", "BENCH_pipeline.json", "write the result manifest to this file")
		basePath  = fs.String("baseline", "", "baseline manifest to compare against (default: the -out file before it is overwritten)")
		threshold = fs.Float64("threshold", bench.DefaultThresholdPct, "regression threshold in percent")
		floorMs   = fs.Float64("floor", bench.DefaultMinWallNs/1e6, "noise floor in ms: phases faster than this are never flagged")
		failFlag  = fs.Bool("fail", true, "exit non-zero when a phase regresses beyond -threshold")
		gitRev    = fs.String("rev", "", "git revision to record in the manifest")
		note      = fs.String("note", "", "free-form note to record in the manifest")
		wide      = fs.Bool("wide", true, "also run the wide-BDD workload and record peak-node/GC/reorder metrics")
		cuts      = fs.Bool("cuts", false, "also run the suite once with the cut-based NPN mapper backend, recording cuts.-prefixed phases and metrics")
		sampling  = fs.Bool("sampling", true, "also time the scalar vs bit-parallel activity engines and record the speedup as a metric")
		jdir      = fs.String("journal-dir", "", "directory receiving the final run's decision journals, cross-checked against the fingerprint counters")
		runID     = fs.String("run-id", "", "run identifier stamped into the manifest and journal headers (default: generated when -journal-dir is set)")
		trend     = fs.String("trend", "", "append this run to the JSONL trend ledger at this path (e.g. BENCH_history.jsonl) and print the last-5-runs delta table")
		timeout   = fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")

		loadURL    = fs.String("load", "", "load-test a live pserve at this base URL (e.g. http://localhost:8080) instead of benchmarking the pipeline in-process")
		loadConc   = fs.Int("load-concurrency", 8, "concurrent in-flight requests for -load")
		loadPasses = fs.Int("load-passes", 2, "suite replay count for -load (pass 2 onward measures the daemon's result cache)")
		loadMethod = fs.String("load-method", "VI", "method every -load request asks for")
		loadOut    = fs.String("load-out", "BENCH_serve.json", "write the -load result manifest to this file")
	)
	// pbench predates the shared telemetry bundle and defines its own
	// -run-id, so it registers the obs flag set directly instead of
	// addTelemetryFlags; the flags feed bench.Options, which applies them to
	// each repetition's scope.
	obsf := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *loadURL != "" {
		return pbenchLoad(out, errOut, bench.LoadOptions{
			URL:         *loadURL,
			Concurrency: *loadConc,
			Passes:      *loadPasses,
			Circuits:    splitList(*circuits),
			Method:      *loadMethod,
		}, *loadOut, *timeout, *failFlag)
	}
	opts := bench.Options{
		Runs:           *runs,
		Workers:        *workers,
		GitRev:         *gitRev,
		Note:           *note,
		Wide:           *wide,
		Cuts:           *cuts,
		Sampling:       *sampling,
		JournalDir:     *jdir,
		RunID:          *runID,
		Command:        "pbench " + strings.Join(args, " "),
		SampleInterval: *obsf.sampleInterval,
		Budgets:        obsf.budgets,
		FlightPath:     *obsf.flight,
	}
	if *jdir != "" {
		if err := os.MkdirAll(*jdir, 0o755); err != nil {
			return err
		}
	}
	if *quick {
		opts.Circuits = bench.QuickCircuits
	}
	if *circuits != "" {
		opts.Circuits = splitList(*circuits)
	}
	if *methodsF != "" {
		for _, name := range splitList(*methodsF) {
			m, err := ParseMethod(name)
			if err != nil {
				return err
			}
			opts.Methods = append(opts.Methods, m)
		}
	}

	// Load the baseline before running (and before -out is overwritten,
	// since the baseline defaults to the previous -out manifest — so two
	// back-to-back pbench runs compare against each other).
	baselinePath := *basePath
	if baselinePath == "" {
		baselinePath = *outPath
	}
	baseline, err := bench.ReadManifestFile(baselinePath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		fmt.Fprintf(errOut, "pbench: no baseline at %s; recording a fresh manifest\n", baselinePath)
		baseline = nil
	case err != nil:
		return err
	}

	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	fmt.Fprintf(errOut, "pbench: %d run(s) of %s × %s, workers=%d\n",
		maxInt(*runs, 1), describeList(opts.Circuits, bench.DefaultCircuits),
		describeList(methodNames(opts.Methods), []string{"I..VI"}), *workers)
	m, err := bench.Run(ctx, opts)
	if err != nil {
		return timeoutError(*timeout, err)
	}
	if err := bench.WriteManifestFile(*outPath, m); err != nil {
		return err
	}
	fmt.Fprintf(out, "suite wall (best of %d): %.1f ms, alloc %.1f MB — manifest written to %s\n",
		m.Runs, float64(m.WallNs)/1e6, float64(m.AllocBytes)/(1<<20), *outPath)
	if *jdir != "" {
		fmt.Fprintf(out, "decision journals written to %s (run %s, cross-checked against fingerprint counters)\n", *jdir, m.RunID)
	}
	if *trend != "" {
		if err := bench.AppendHistoryFile(*trend, bench.HistoryFromManifest(m)); err != nil {
			return err
		}
		entries, err := bench.ReadHistoryFile(*trend)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nbench trend (%s, last %d of %d):\n%s",
			*trend, minInt(5, len(entries)), len(entries), bench.FormatTrend(entries, 5))
	}

	if baseline == nil {
		return nil
	}
	floor := int64(*floorMs * 1e6)
	if *floorMs <= 0 {
		floor = -1
	}
	cmp := bench.Compare(baseline, m, *threshold, floor)
	if cmp.Err != nil {
		return cmp.Err
	}
	printComparison(out, cmp)
	if regs := cmp.Regressions(); len(regs) > 0 && *failFlag {
		return fmt.Errorf("%d phase(s) regressed beyond %.0f%% (worst: %s %+.1f%%)",
			len(regs), cmp.ThresholdPct, regs[0].Phase, regs[0].Pct)
	}
	return nil
}

// pbenchLoad is the -load mode: replay the suite against a live pserve,
// write BENCH_serve.json, and (under -fail) turn 5xx responses or
// transport failures into a non-zero exit.
func pbenchLoad(out, errOut io.Writer, opts bench.LoadOptions, outPath string, timeout time.Duration, failFlag bool) error {
	ctx, cancel := timeoutContext(timeout)
	defer cancel()
	fmt.Fprintf(errOut, "pbench: load %s × %d pass(es) at concurrency %d against %s\n",
		describeList(opts.Circuits, []string{"full suite"}), maxInt(opts.Passes, 1), maxInt(opts.Concurrency, 1), opts.URL)
	m, err := bench.RunLoad(ctx, opts)
	if err != nil {
		return timeoutError(timeout, err)
	}
	if err := bench.WriteServeManifestFile(outPath, m); err != nil {
		return err
	}
	fmt.Fprintf(out, "load: %d requests in %.1f s (%.1f req/s), %d cache hit(s), %d backpressure retry(ies), %d failure(s), %d server 5xx\n",
		m.Requests, float64(m.WallNs)/1e9, m.Throughput, m.CacheHits, m.Retries429, m.Failures, m.Server5xx)
	fmt.Fprintf(out, "latency: mean %.1f ms, p50 %.1f ms, p99 %.1f ms, max %.1f ms — manifest written to %s\n",
		m.LatMeanMs, m.LatP50Ms, m.LatP99Ms, m.LatMaxMs, outPath)
	for _, ps := range m.PassStats {
		fmt.Fprintf(out, "  pass %d: %d requests, %d cached, p50 %.1f ms, p99 %.1f ms\n",
			ps.Pass, ps.Requests, ps.CacheHits, ps.LatP50Ms, ps.LatP99Ms)
	}
	if failFlag && (m.Server5xx > 0 || m.Failures > 0) {
		return fmt.Errorf("load run unhealthy: %d server 5xx, %d transport failure(s)", m.Server5xx, m.Failures)
	}
	return nil
}

// printComparison renders the baseline-vs-current table, worst first.
func printComparison(out io.Writer, cmp bench.Comparison) {
	fmt.Fprintf(out, "\n%-28s %12s %12s %8s\n", "phase", "baseline", "current", "delta")
	for _, d := range cmp.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(out, "%-28s %10.2fms %10.2fms %+7.1f%%%s\n",
			d.Phase, float64(d.BaselineNs)/1e6, float64(d.CurrentNs)/1e6, d.Pct, mark)
	}
	if len(cmp.MissingInBaseline) > 0 {
		fmt.Fprintf(out, "new phases (no baseline): %s\n", strings.Join(cmp.MissingInBaseline, ", "))
	}
	if len(cmp.MissingInCurrent) > 0 {
		fmt.Fprintf(out, "phases gone from current run: %s\n", strings.Join(cmp.MissingInCurrent, ", "))
	}
	if len(cmp.Regressions()) == 0 {
		fmt.Fprintf(out, "no regressions beyond %.0f%%\n", cmp.ThresholdPct)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func methodNames(ms []core.Method) []string {
	var out []string
	for _, m := range ms {
		out = append(out, m.String())
	}
	return out
}

func describeList(items, fallback []string) string {
	if len(items) == 0 {
		items = fallback
	}
	return "{" + strings.Join(items, ",") + "}"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
