package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powermap/internal/bdd"
	"powermap/internal/blif"
	"powermap/internal/verify"
)

// writeWideBlif writes a deliberately too-wide random network — 40 primary
// inputs feeding 60 nodes — whose global BDDs blow through a small node
// limit long before completion.
func writeWideBlif(t *testing.T) string {
	t.Helper()
	nw := verify.RandomNetwork("toowide", verify.RandConfig{
		Seed: 7, PIs: 40, Nodes: 60, MaxFanin: 4, Depth: 5, Outputs: 4,
	})
	path := filepath.Join(t.TempDir(), "wide.blif")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := blif.Write(f, nw); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPmapTooWideFailsCleanly drives the full pmap flow into the BDD node
// limit and demands a diagnostic error, never a panic: the limit must
// surface as bdd.ErrNodeLimit end to end with the fallback hint attached.
func TestPmapTooWideFailsCleanly(t *testing.T) {
	path := writeWideBlif(t)
	var out, errOut bytes.Buffer
	err := Pmap([]string{"-blif", path, "-method", "I", "-bdd-limit", "128"}, &out, &errOut)
	if err == nil {
		t.Fatal("pmap accepted a network wider than the node limit")
	}
	if !bdd.IsNodeLimit(err) {
		t.Fatalf("error does not carry bdd.ErrNodeLimit: %v", err)
	}
	if !strings.Contains(err.Error(), "node limit") {
		t.Errorf("diagnostic missing from error: %v", err)
	}
}

// TestPcheckTooWideFailsCleanly runs the verification oracle into the node
// limit; pcheck must return the wrapped limit error so the command exits
// nonzero with a diagnostic instead of crashing.
func TestPcheckTooWideFailsCleanly(t *testing.T) {
	path := writeWideBlif(t)
	var out, errOut bytes.Buffer
	err := Pcheck([]string{"-blif", path, "-methods", "I", "-bdd-limit", "128"}, &out, &errOut)
	if err == nil {
		t.Fatal("pcheck accepted a network wider than the node limit")
	}
	if !bdd.IsNodeLimit(err) {
		t.Fatalf("error does not carry bdd.ErrNodeLimit: %v", err)
	}
}

// TestPowerestApproxFallback checks both halves of the -approx contract:
// without it a too-wide network is a clean node-limit error; with it the
// command succeeds and labels its activities as Monte-Carlo approximations.
func TestPowerestApproxFallback(t *testing.T) {
	path := writeWideBlif(t)

	var out, errOut bytes.Buffer
	err := Powerest([]string{"-blif", path, "-bdd-limit", "128"}, &out, &errOut)
	if err == nil {
		t.Fatal("powerest without -approx accepted a too-wide network")
	}
	if !bdd.IsNodeLimit(err) {
		t.Fatalf("error does not carry bdd.ErrNodeLimit: %v", err)
	}

	out.Reset()
	errOut.Reset()
	err = Powerest([]string{"-blif", path, "-bdd-limit", "128", "-approx", "512"}, &out, &errOut)
	if err != nil {
		t.Fatalf("-approx fallback failed: %v", err)
	}
	if !strings.Contains(out.String(), "activities are approximate") {
		t.Errorf("fallback output not labeled approximate:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "falling back to approximate activities") {
		t.Errorf("fallback not announced on the diagnostic stream:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "total internal switching activity") {
		t.Errorf("fallback produced no activity report:\n%s", out.String())
	}
}

// TestPowerestAutoSampling drives the -activity auto policy into the node
// limit: where exact estimation fails cleanly, auto must succeed by
// sampling, label the output as approximate, and report the interval
// quality. A deterministic seed keeps the transcript reproducible.
func TestPowerestAutoSampling(t *testing.T) {
	path := writeWideBlif(t)
	var out, errOut bytes.Buffer
	err := Powerest([]string{
		"-blif", path, "-bdd-limit", "128",
		"-activity", "auto", "-vectors", "2048", "-seed", "5",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("-activity auto failed where it must sample: %v\n%s", err, errOut.String())
	}
	for _, want := range []string{
		"activities are approximate (2048 Monte-Carlo vectors; exact BDDs exceeded the node limit)",
		"max activity CI half-width",
		"total internal switching activity",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "Monte-Carlo seed 5") {
		t.Errorf("seed not echoed on the diagnostic stream:\n%s", errOut.String())
	}

	// Forced sampling skips the exact attempt entirely: no fallback
	// diagnostic, a different reason label, and still a clean exit.
	out.Reset()
	errOut.Reset()
	err = Powerest([]string{
		"-blif", path, "-bdd-limit", "128",
		"-activity", "sample", "-vectors", "1024", "-seed", "5",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("-activity sample failed: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "sampling engine selected") {
		t.Errorf("forced sampling not labeled as selected:\n%s", out.String())
	}
	if strings.Contains(errOut.String(), "falling back") {
		t.Errorf("forced sampling announced a fallback it never took:\n%s", errOut.String())
	}
}

// TestPmapReorderFlag runs a real benchmark with -reorder to confirm the
// flag is plumbed end to end and the reordering flow still verifies.
func TestPmapReorderFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-circuit", "cm42a", "-method", "I", "-reorder"}, &out, &errOut); err != nil {
		t.Fatalf("pmap -reorder: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "mapped:") {
		t.Errorf("missing mapped report:\n%s", out.String())
	}
}
