package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powermap/internal/obs"
)

// obsFlags bundles the continuous-observability flags shared by every
// command: flight recording (-flight), runtime-resource sampling
// (-sample-interval), per-phase SLO budgets (-budget, repeatable), and the
// uniform structured-logging controls (-log-level, -log-json). It is
// registered by addTelemetryFlags on the four commands that share the
// telemetry bundle, and directly by pbench (whose -run-id flag predates
// the bundle).
type obsFlags struct {
	flight         *string
	sampleInterval *time.Duration
	logLevel       *string
	logJSON        *bool
	budgets        []obs.Budget
}

// addObsFlags registers the shared observability flags on fs.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	o.flight = fs.String("flight", "",
		"flight-record destination: on failure (first error wins) or SIGQUIT, dump a post-mortem JSON of the last spans, logs, runtime samples and SLO breaches here")
	o.sampleInterval = fs.Duration("sample-interval", 0,
		"runtime-resource sampler cadence (heap, GC pauses, goroutines, sched latency, RSS) exported as powermap_runtime_* metrics; 0 disables")
	o.logLevel = fs.String("log-level", "info", "minimum structured-log level: debug, info, warn, error")
	o.logJSON = fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	fs.Func("budget",
		"per-phase SLO `phase=spec` (repeatable): spec is a duration (decompose=200ms), a live-BDD-node ceiling (map=50000nodes), or both (map=1s,50000nodes); breaches count in powermap_slo_breaches and flip /healthz to 503",
		func(s string) error {
			b, err := obs.ParseBudget(s)
			if err != nil {
				return err
			}
			o.budgets = append(o.budgets, b)
			return nil
		})
	return o
}

// enabled reports whether any obs flag demands a live scope on its own.
func (o *obsFlags) enabled() bool {
	return *o.flight != "" || *o.sampleInterval > 0 || len(o.budgets) > 0
}

// logOptions resolves the logging flags into the shared handler options.
func (o *obsFlags) logOptions(runID string) obs.LogOptions {
	return obs.LogOptions{
		Level: obs.ParseLogLevel(*o.logLevel),
		JSON:  *o.logJSON,
		RunID: runID,
	}
}

// apply configures a freshly built scope from the flags and returns the
// started sampler (nil when -sample-interval is off). The caller owns
// stopping the sampler.
func (o *obsFlags) apply(sc *obs.Scope) *obs.RuntimeSampler {
	sc.SetBudgets(o.budgets)
	sc.Flight().SetAutoDump(*o.flight)
	if *o.sampleInterval > 0 {
		return sc.StartRuntimeSampler(context.Background(), *o.sampleInterval)
	}
	return nil
}

// notifyFlightOnQuit arranges for SIGQUIT to dump an on-demand flight
// record to the -flight path (stderr reports where it went). Registering
// replaces Go's default SIGQUIT stack-dump-and-exit: the process keeps
// running, so a wedged run can be probed repeatedly. The returned stop
// function unregisters the handler (restoring the default behavior).
func notifyFlightOnQuit(sc *obs.Scope, path string, errOut io.Writer) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
			fr := sc.Flight().Capture("sigquit", nil)
			if fr == nil {
				continue
			}
			if err := writeTo(path, fr.WriteJSON); err != nil {
				fmt.Fprintf(errOut, "flight: SIGQUIT dump: %v\n", err)
				continue
			}
			fmt.Fprintf(errOut, "flight record written to %s (SIGQUIT)\n", path)
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
		<-done
	}
}

// buildLogger assembles the uniform logging chain for a scope: the shared
// text/JSON handler (run-id stamped, context labels appended) teed through
// the scope's flight recorder so the black box sees every record the
// console does — and the debug-level ones it does not.
func (o *obsFlags) buildLogger(sc *obs.Scope, errOut io.Writer, runID string) *slog.Logger {
	console := obs.NewLogHandler(errOut, o.logOptions(runID))
	return slog.New(sc.Flight().LogHandler(console))
}
