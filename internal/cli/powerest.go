package cli

import (
	crand "crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"powermap/internal/bdd"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/prob"
	"powermap/internal/sim"
)

// randomSeed draws a positive Monte-Carlo seed from the OS entropy source
// (falling back to the clock), so unseeded estimates explore fresh vectors
// while remaining reproducible via the echoed value.
func randomSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	s := int64(binary.LittleEndian.Uint64(b[:]) >> 1) // non-negative
	if s == 0 {
		s = 1
	}
	return s
}

// Powerest runs the powerest command: exact zero-delay probability and
// activity estimation of a BLIF network, with optional Monte-Carlo
// cross-checking.
func Powerest(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("powerest", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		blifPath = fs.String("blif", "", "input BLIF netlist")
		circuit  = fs.String("circuit", "", "built-in benchmark name (see pmap -list)")
		style    = fs.String("style", "static", "design style: static, domino-p, domino-n")
		piProb   = fs.Float64("prob", 0.5, "uniform P(pi=1) for all primary inputs")
		perNode  = fs.Bool("nodes", false, "print per-node probabilities and activities")
		top      = fs.Int("top", 10, "print the N most active nodes")
		mc       = fs.Int("mc", 0, "cross-check against N Monte-Carlo vectors")
		approx   = fs.Int("approx", 0, "on a BDD node-limit failure, fall back to approximate activities from N Monte-Carlo vectors (0 = fail instead)")
		seed     = fs.Int64("seed", 0, "Monte-Carlo seed for -mc and the -approx fallback (0 = random; the chosen seed is echoed)")
		jpath    = fs.String("journal", "", "write a decision-provenance journal (JSONL) to this file; query it with pexplain")
		workers  = fs.Int("workers", 1, "Monte-Carlo worker pool size; >1 switches to the chunked parallel stream (0 = all CPUs)")
		timeout  = fs.Duration("timeout", 0, "abort the estimation after this duration (0 = none)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	bddf := addBDDFlags(fs)
	mapf := addMapFlags(fs)
	actf := addActivityFlags(fs, true)
	tel := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Estimation is mapping-free; the shared mapper flags are validated for
	// interface uniformity but do not change the estimate.
	if _, _, _, err := mapf.resolve(false); err != nil {
		return err
	}
	policy, err := actf.policy()
	if err != nil {
		return err
	}
	// -approx N is the historical spelling of "auto with an N-vector
	// budget": kept as an alias so existing invocations behave unchanged.
	if *approx > 0 && policy.Engine == prob.Exact {
		policy.Engine = prob.Auto
		*actf.vectors = *approx
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(errOut, "powerest: profile: %v\n", perr)
		}
	}()
	nw, err := LoadNetwork(*blifPath, *circuit)
	if err != nil {
		return err
	}
	st, err := ParseStyle(*style)
	if err != nil {
		return err
	}
	probs := map[string]float64{}
	for _, name := range nw.PINames() {
		probs[name] = *piProb
	}
	sc := tel.scope(errOut)
	// The Monte-Carlo seed defaults to a random draw so repeated estimates
	// explore the vector space; pass -seed to reproduce a run. Either way
	// it is echoed and journaled, so every output is reproducible.
	if *seed == 0 {
		*seed = randomSeed()
	}
	var jr *journal.Journal
	if *jpath != "" {
		jr, err = journal.Create(*jpath, journal.Header{
			RunID:   tel.resolveRunID(),
			Circuit: nw.Name,
			Style:   st.String(),
			Stage:   "powerest",
			Workers: *workers,
		})
		if err != nil {
			return err
		}
		jr.SetObs(sc)
		defer func() {
			if cerr := jr.Close(); cerr != nil {
				fmt.Fprintf(errOut, "powerest: journal: %v\n", cerr)
			}
		}()
	}
	if *mc > 0 || policy.Engine != prob.Exact || *actf.trans >= 0 {
		fmt.Fprintf(errOut, "powerest: Monte-Carlo seed %d\n", *seed)
		jr.Event("powerest.seed", map[string]any{"seed": *seed})
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	ctx = obs.WithScope(ctx, sc)
	// Annotate runs the configured engine: exact BDDs, the bit-parallel
	// sampling engine, or auto — which falls back to sampling when exact
	// BDDs exceed the node limit, as promised by that error's diagnostic.
	ares, err := sim.Annotate(ctx, nw, probs, sim.AnnotateOptions{
		Policy:   policy,
		Style:    st,
		BDD:      bddf.config(),
		Sampling: actf.sampling(*seed, *workers),
		Trans:    actf.transMap(nw.PINames()),
		Obs:      sc,
		Journal:  jr,
	})
	if err != nil {
		// Estimation failures (typically an exact-BDD node-limit blowup)
		// leave a flight record beside the journal, like core.Synthesize.
		sc.Flight().CaptureFailure("powerest.annotate", err,
			"circuit", nw.Name, "node_limit", bdd.IsNodeLimit(err))
		return timeoutError(*timeout, err)
	}
	approximated := ares.Engine == prob.Sampling
	if ares.ExactErr != nil {
		fmt.Fprintf(errOut, "powerest: %v\n", ares.ExactErr)
		fmt.Fprintf(errOut, "powerest: falling back to approximate activities (%d Monte-Carlo vectors)\n", ares.Vectors)
		jr.Event("powerest.approx-fallback", map[string]any{"vectors": ares.Vectors, "seed": *seed})
	}

	var internals []*network.Node
	total := 0.0
	for _, n := range nw.TopoOrder() {
		if n.Kind == network.Internal {
			internals = append(internals, n)
			total += n.Activity
		}
	}
	jr.Event("powerest.activities", map[string]any{
		"total_activity": total, "approximate": approximated,
	})
	s := nw.Stats()
	fmt.Fprintf(out, "circuit %s: %d PI, %d PO, %d nodes (%s style)\n", nw.Name, s.PIs, s.POs, s.Nodes, st)
	if approximated {
		reason := "sampling engine selected"
		if ares.ExactErr != nil {
			reason = "exact BDDs exceeded the node limit"
		}
		fmt.Fprintf(out, "activities are approximate (%d Monte-Carlo vectors; %s)\n", ares.Vectors, reason)
		fmt.Fprintf(out, "max activity CI half-width %.4f at %.0f%% confidence\n",
			ares.Sampled.MaxActivityCI, 100*ares.Sampled.Confidence)
	}
	fmt.Fprintf(out, "total internal switching activity: %.4f\n", total)
	if len(internals) > 0 {
		fmt.Fprintf(out, "mean activity per node: %.4f\n", total/float64(len(internals)))
	}

	if *mc > 0 {
		// -workers 1 (the default) keeps the historical single-stream
		// sampler; any other value selects the chunked stream, whose
		// estimate is identical for every pool size.
		span := sc.StartCtx(ctx, "powerest.montecarlo")
		span.SetAttr("vectors", *mc).SetAttr("workers", *workers).SetAttr("seed", *seed)
		var est map[*network.Node]sim.Estimate
		if *workers == 1 {
			est, err = sim.Activities(nw, probs, *mc, *seed)
		} else {
			est, err = sim.ActivitiesParallel(ctx, nw, probs, *mc, *seed, *workers)
		}
		span.End()
		if err != nil {
			return timeoutError(*timeout, err)
		}
		worst, mcTotal := 0.0, 0.0
		for _, n := range internals {
			mcTotal += est[n].Activity
			if st == huffman.Static {
				if d := math.Abs(est[n].Activity - n.Activity); d > worst {
					worst = d
				}
			}
		}
		jr.Event("powerest.montecarlo", map[string]any{
			"vectors": *mc, "seed": *seed, "total_activity": mcTotal,
		})
		fmt.Fprintf(out, "Monte-Carlo (%d vectors, seed %d): total activity %.4f", *mc, *seed, mcTotal)
		if st == huffman.Static {
			fmt.Fprintf(out, ", worst per-node |MC - BDD| = %.4f", worst)
		}
		fmt.Fprintln(out)
	}

	switch {
	case *perNode:
		if approximated {
			fmt.Fprintln(out, "\nnode          P(1)     E        ±E")
			for _, n := range internals {
				fmt.Fprintf(out, "%-12s %.4f  %.4f  %.4f\n",
					n.Name, n.Prob1, n.Activity, ares.Sampled.Estimates[n].ActivityCI)
			}
			break
		}
		fmt.Fprintln(out, "\nnode          P(1)     E")
		for _, n := range internals {
			fmt.Fprintf(out, "%-12s %.4f  %.4f\n", n.Name, n.Prob1, n.Activity)
		}
	case *top > 0:
		sorted := append([]*network.Node(nil), internals...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Activity > sorted[j].Activity })
		if len(sorted) > *top {
			sorted = sorted[:*top]
		}
		fmt.Fprintf(out, "\ntop %d most active nodes:\n", len(sorted))
		for _, n := range sorted {
			fmt.Fprintf(out, "  %-12s P(1)=%.4f  E=%.4f\n", n.Name, n.Prob1, n.Activity)
		}
	}
	return tel.finish(out, errOut)
}
