package cli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"powermap/internal/bdd"
	"powermap/internal/blif"
	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/prob"
	"powermap/internal/sim"
)

// Powerest runs the powerest command: exact zero-delay probability and
// activity estimation of a BLIF network, with optional Monte-Carlo
// cross-checking.
func Powerest(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("powerest", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		blifPath = fs.String("blif", "", "input BLIF netlist")
		style    = fs.String("style", "static", "design style: static, domino-p, domino-n")
		piProb   = fs.Float64("prob", 0.5, "uniform P(pi=1) for all primary inputs")
		perNode  = fs.Bool("nodes", false, "print per-node probabilities and activities")
		top      = fs.Int("top", 10, "print the N most active nodes")
		mc       = fs.Int("mc", 0, "cross-check against N Monte-Carlo vectors")
		approx   = fs.Int("approx", 0, "on a BDD node-limit failure, fall back to approximate activities from N Monte-Carlo vectors (0 = fail instead)")
		workers  = fs.Int("workers", 1, "Monte-Carlo worker pool size; >1 switches to the chunked parallel stream (0 = all CPUs)")
		timeout  = fs.Duration("timeout", 0, "abort the estimation after this duration (0 = none)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	bddf := addBDDFlags(fs)
	tel := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(errOut, "powerest: profile: %v\n", perr)
		}
	}()
	if *blifPath == "" {
		return fmt.Errorf("powerest: need -blif FILE")
	}
	f, err := os.Open(*blifPath)
	if err != nil {
		return err
	}
	nw, err := blif.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	st, err := ParseStyle(*style)
	if err != nil {
		return err
	}
	probs := map[string]float64{}
	for _, name := range nw.PINames() {
		probs[name] = *piProb
	}
	sc := tel.scope(errOut)
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	ctx = obs.WithScope(ctx, sc)
	span := sc.StartCtx(ctx, "powerest.exact")
	_, err = prob.ComputeWith(ctx, nw, probs, st, bddf.config())
	span.End()
	approximated := false
	if err != nil {
		if *approx <= 0 || !bdd.IsNodeLimit(err) {
			return timeoutError(*timeout, err)
		}
		// The network is too wide for exact global BDDs under the current
		// limit: fall back to Monte-Carlo probability estimates instead of
		// failing, as promised by the diagnostic.
		fmt.Fprintf(errOut, "powerest: %v\n", err)
		fmt.Fprintf(errOut, "powerest: falling back to approximate activities (%d Monte-Carlo vectors)\n", *approx)
		span := sc.StartCtx(ctx, "powerest.approx-fallback")
		span.SetAttr("vectors", *approx)
		est, aerr := sim.Activities(nw, probs, *approx, 1)
		span.End()
		if aerr != nil {
			return timeoutError(*timeout, aerr)
		}
		for _, n := range nw.TopoOrder() {
			e := est[n]
			n.Prob1 = e.Prob1
			switch st {
			case huffman.Static:
				n.Activity = e.Activity // measured toggle rate
			case huffman.DominoP:
				n.Activity = e.Prob1
			default:
				n.Activity = 1 - e.Prob1
			}
		}
		approximated = true
	}

	var internals []*network.Node
	total := 0.0
	for _, n := range nw.TopoOrder() {
		if n.Kind == network.Internal {
			internals = append(internals, n)
			total += n.Activity
		}
	}
	s := nw.Stats()
	fmt.Fprintf(out, "circuit %s: %d PI, %d PO, %d nodes (%s style)\n", nw.Name, s.PIs, s.POs, s.Nodes, st)
	if approximated {
		fmt.Fprintf(out, "activities are approximate (%d Monte-Carlo vectors; exact BDDs exceeded the node limit)\n", *approx)
	}
	fmt.Fprintf(out, "total internal switching activity: %.4f\n", total)
	if len(internals) > 0 {
		fmt.Fprintf(out, "mean activity per node: %.4f\n", total/float64(len(internals)))
	}

	if *mc > 0 {
		// -workers 1 (the default) keeps the historical single-stream
		// sampler; any other value selects the chunked stream, whose
		// estimate is identical for every pool size.
		span := sc.StartCtx(ctx, "powerest.montecarlo")
		span.SetAttr("vectors", *mc).SetAttr("workers", *workers)
		var est map[*network.Node]sim.Estimate
		if *workers == 1 {
			est, err = sim.Activities(nw, probs, *mc, 1)
		} else {
			est, err = sim.ActivitiesParallel(ctx, nw, probs, *mc, 1, *workers)
		}
		span.End()
		if err != nil {
			return timeoutError(*timeout, err)
		}
		worst, mcTotal := 0.0, 0.0
		for _, n := range internals {
			mcTotal += est[n].Activity
			if st == huffman.Static {
				if d := math.Abs(est[n].Activity - n.Activity); d > worst {
					worst = d
				}
			}
		}
		fmt.Fprintf(out, "Monte-Carlo (%d vectors): total activity %.4f", *mc, mcTotal)
		if st == huffman.Static {
			fmt.Fprintf(out, ", worst per-node |MC - BDD| = %.4f", worst)
		}
		fmt.Fprintln(out)
	}

	switch {
	case *perNode:
		fmt.Fprintln(out, "\nnode          P(1)     E")
		for _, n := range internals {
			fmt.Fprintf(out, "%-12s %.4f  %.4f\n", n.Name, n.Prob1, n.Activity)
		}
	case *top > 0:
		sorted := append([]*network.Node(nil), internals...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Activity > sorted[j].Activity })
		if len(sorted) > *top {
			sorted = sorted[:*top]
		}
		fmt.Fprintf(out, "\ntop %d most active nodes:\n", len(sorted))
		for _, n := range sorted {
			fmt.Fprintf(out, "  %-12s P(1)=%.4f  E=%.4f\n", n.Name, n.Prob1, n.Activity)
		}
	}
	return tel.finish(out, errOut)
}
