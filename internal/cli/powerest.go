package cli

import (
	crand "crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"powermap/internal/bdd"
	"powermap/internal/blif"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/network"
	"powermap/internal/obs"
	"powermap/internal/prob"
	"powermap/internal/sim"
)

// randomSeed draws a positive Monte-Carlo seed from the OS entropy source
// (falling back to the clock), so unseeded estimates explore fresh vectors
// while remaining reproducible via the echoed value.
func randomSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	s := int64(binary.LittleEndian.Uint64(b[:]) >> 1) // non-negative
	if s == 0 {
		s = 1
	}
	return s
}

// Powerest runs the powerest command: exact zero-delay probability and
// activity estimation of a BLIF network, with optional Monte-Carlo
// cross-checking.
func Powerest(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("powerest", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		blifPath = fs.String("blif", "", "input BLIF netlist")
		style    = fs.String("style", "static", "design style: static, domino-p, domino-n")
		piProb   = fs.Float64("prob", 0.5, "uniform P(pi=1) for all primary inputs")
		perNode  = fs.Bool("nodes", false, "print per-node probabilities and activities")
		top      = fs.Int("top", 10, "print the N most active nodes")
		mc       = fs.Int("mc", 0, "cross-check against N Monte-Carlo vectors")
		approx   = fs.Int("approx", 0, "on a BDD node-limit failure, fall back to approximate activities from N Monte-Carlo vectors (0 = fail instead)")
		seed     = fs.Int64("seed", 0, "Monte-Carlo seed for -mc and the -approx fallback (0 = random; the chosen seed is echoed)")
		jpath    = fs.String("journal", "", "write a decision-provenance journal (JSONL) to this file; query it with pexplain")
		workers  = fs.Int("workers", 1, "Monte-Carlo worker pool size; >1 switches to the chunked parallel stream (0 = all CPUs)")
		timeout  = fs.Duration("timeout", 0, "abort the estimation after this duration (0 = none)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	bddf := addBDDFlags(fs)
	mapf := addMapFlags(fs)
	tel := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Estimation is mapping-free; the shared mapper flags are validated for
	// interface uniformity but do not change the estimate.
	if _, _, _, err := mapf.resolve(false); err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(errOut, "powerest: profile: %v\n", perr)
		}
	}()
	if *blifPath == "" {
		return fmt.Errorf("powerest: need -blif FILE")
	}
	f, err := os.Open(*blifPath)
	if err != nil {
		return err
	}
	nw, err := blif.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	st, err := ParseStyle(*style)
	if err != nil {
		return err
	}
	probs := map[string]float64{}
	for _, name := range nw.PINames() {
		probs[name] = *piProb
	}
	sc := tel.scope(errOut)
	// The Monte-Carlo seed defaults to a random draw so repeated estimates
	// explore the vector space; pass -seed to reproduce a run. Either way
	// it is echoed and journaled, so every output is reproducible.
	if *seed == 0 {
		*seed = randomSeed()
	}
	var jr *journal.Journal
	if *jpath != "" {
		jr, err = journal.Create(*jpath, journal.Header{
			RunID:   tel.resolveRunID(),
			Circuit: nw.Name,
			Style:   st.String(),
			Stage:   "powerest",
			Workers: *workers,
		})
		if err != nil {
			return err
		}
		jr.SetObs(sc)
		defer func() {
			if cerr := jr.Close(); cerr != nil {
				fmt.Fprintf(errOut, "powerest: journal: %v\n", cerr)
			}
		}()
	}
	if *mc > 0 || *approx > 0 {
		fmt.Fprintf(errOut, "powerest: Monte-Carlo seed %d\n", *seed)
		jr.Event("powerest.seed", map[string]any{"seed": *seed})
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	ctx = obs.WithScope(ctx, sc)
	span := sc.StartCtx(ctx, "powerest.exact")
	_, err = prob.ComputeWith(ctx, nw, probs, st, bddf.config())
	span.End()
	approximated := false
	if err != nil {
		if *approx <= 0 || !bdd.IsNodeLimit(err) {
			return timeoutError(*timeout, err)
		}
		// The network is too wide for exact global BDDs under the current
		// limit: fall back to Monte-Carlo probability estimates instead of
		// failing, as promised by the diagnostic.
		fmt.Fprintf(errOut, "powerest: %v\n", err)
		fmt.Fprintf(errOut, "powerest: falling back to approximate activities (%d Monte-Carlo vectors)\n", *approx)
		span := sc.StartCtx(ctx, "powerest.approx-fallback")
		span.SetAttr("vectors", *approx).SetAttr("seed", *seed)
		est, aerr := sim.Activities(nw, probs, *approx, *seed)
		span.End()
		if aerr != nil {
			return timeoutError(*timeout, aerr)
		}
		jr.Event("powerest.approx-fallback", map[string]any{"vectors": *approx, "seed": *seed})
		for _, n := range nw.TopoOrder() {
			e := est[n]
			n.Prob1 = e.Prob1
			switch st {
			case huffman.Static:
				n.Activity = e.Activity // measured toggle rate
			case huffman.DominoP:
				n.Activity = e.Prob1
			default:
				n.Activity = 1 - e.Prob1
			}
		}
		approximated = true
	}

	var internals []*network.Node
	total := 0.0
	for _, n := range nw.TopoOrder() {
		if n.Kind == network.Internal {
			internals = append(internals, n)
			total += n.Activity
		}
	}
	jr.Event("powerest.activities", map[string]any{
		"total_activity": total, "approximate": approximated,
	})
	s := nw.Stats()
	fmt.Fprintf(out, "circuit %s: %d PI, %d PO, %d nodes (%s style)\n", nw.Name, s.PIs, s.POs, s.Nodes, st)
	if approximated {
		fmt.Fprintf(out, "activities are approximate (%d Monte-Carlo vectors; exact BDDs exceeded the node limit)\n", *approx)
	}
	fmt.Fprintf(out, "total internal switching activity: %.4f\n", total)
	if len(internals) > 0 {
		fmt.Fprintf(out, "mean activity per node: %.4f\n", total/float64(len(internals)))
	}

	if *mc > 0 {
		// -workers 1 (the default) keeps the historical single-stream
		// sampler; any other value selects the chunked stream, whose
		// estimate is identical for every pool size.
		span := sc.StartCtx(ctx, "powerest.montecarlo")
		span.SetAttr("vectors", *mc).SetAttr("workers", *workers).SetAttr("seed", *seed)
		var est map[*network.Node]sim.Estimate
		if *workers == 1 {
			est, err = sim.Activities(nw, probs, *mc, *seed)
		} else {
			est, err = sim.ActivitiesParallel(ctx, nw, probs, *mc, *seed, *workers)
		}
		span.End()
		if err != nil {
			return timeoutError(*timeout, err)
		}
		worst, mcTotal := 0.0, 0.0
		for _, n := range internals {
			mcTotal += est[n].Activity
			if st == huffman.Static {
				if d := math.Abs(est[n].Activity - n.Activity); d > worst {
					worst = d
				}
			}
		}
		jr.Event("powerest.montecarlo", map[string]any{
			"vectors": *mc, "seed": *seed, "total_activity": mcTotal,
		})
		fmt.Fprintf(out, "Monte-Carlo (%d vectors, seed %d): total activity %.4f", *mc, *seed, mcTotal)
		if st == huffman.Static {
			fmt.Fprintf(out, ", worst per-node |MC - BDD| = %.4f", worst)
		}
		fmt.Fprintln(out)
	}

	switch {
	case *perNode:
		fmt.Fprintln(out, "\nnode          P(1)     E")
		for _, n := range internals {
			fmt.Fprintf(out, "%-12s %.4f  %.4f\n", n.Name, n.Prob1, n.Activity)
		}
	case *top > 0:
		sorted := append([]*network.Node(nil), internals...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Activity > sorted[j].Activity })
		if len(sorted) > *top {
			sorted = sorted[:*top]
		}
		fmt.Fprintf(out, "\ntop %d most active nodes:\n", len(sorted))
		for _, n := range sorted {
			fmt.Fprintf(out, "  %-12s P(1)=%.4f  E=%.4f\n", n.Name, n.Prob1, n.Activity)
		}
	}
	return tel.finish(out, errOut)
}
