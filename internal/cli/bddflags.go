package cli

import (
	"flag"

	"powermap/internal/bdd"
)

// bddFlags holds the uniform BDD kernel flags (-reorder, -bdd-limit)
// shared by pmap, powerest, pcheck and tables.
type bddFlags struct {
	reorder *bool
	limit   *int
}

// addBDDFlags registers the kernel tuning flags on fs.
func addBDDFlags(fs *flag.FlagSet) *bddFlags {
	return &bddFlags{
		reorder: fs.Bool("reorder", false,
			"enable dynamic BDD variable reordering by sifting (helps wide circuits fit the node limit)"),
		limit: fs.Int("bdd-limit", 0,
			"BDD live-node limit; networks needing more fail with a node-limit error (0 = default 4Mi)"),
	}
}

// config materializes the flags as a kernel configuration.
func (b *bddFlags) config() bdd.Config {
	return bdd.Config{
		NodeLimit: *b.limit,
		Reorder:   *b.reorder,
	}
}
