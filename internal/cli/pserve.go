package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powermap/internal/bdd"
	"powermap/internal/journal"
	"powermap/internal/obs"
	"powermap/internal/serve"
)

// Pserve runs the synthesis daemon: POST /synth plus the full telemetry
// surface, until SIGINT/SIGTERM starts a graceful drain. It blocks for
// the life of the daemon.
func Pserve(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pserve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		inflight   = fs.Int("inflight", 0, "max concurrently synthesizing requests (0 = one per CPU)")
		queue      = fs.Int("queue", 0, "max requests waiting for a slot before 429 (0 = 2x -inflight, negative = no waiting room)")
		cacheSize  = fs.Int("cache", 0, "result cache entries (0 = default 128)")
		poolSize   = fs.Int("pool", 0, "warm BDD-manager pool size (0 = -inflight)")
		workers    = fs.Int("workers", 1, "per-request pipeline workers (the daemon parallelizes across requests)")
		defTimeout = fs.Duration("default-timeout", time.Minute, "budget for requests without timeout_ms")
		maxTimeout = fs.Duration("max-timeout", 5*time.Minute, "ceiling clamped onto requested timeouts")
		bddLimit   = fs.Int("bdd-limit", 0, "server-wide BDD live-node ceiling; requests may only lower it (0 = kernel default)")
		grace      = fs.Duration("grace", serve.DefaultShutdownGrace, "shutdown grace for in-flight responses after the drain completes")
		maxSpans   = fs.Int("max-spans", 0, "completed-span ring buffer size (0 = default 16384, negative = unbounded)")
		runID      = fs.String("run-id", "", "run identifier stamped into telemetry (default: generated)")
	)
	obsf := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runID == "" {
		*runID = journal.NewRunID()
	}
	// The daemon always carries a live scope: /metrics, /healthz and the
	// flight recorder are part of its contract, not an opt-in.
	sc := obs.New(obs.Config{MaxSpans: *maxSpans, RunID: *runID})
	sampler := obsf.apply(sc)
	defer sampler.Stop()
	sc.SetSpanLogger(obsf.buildLogger(sc, errOut, *runID))
	if *obsf.flight != "" {
		stopSigq := notifyFlightOnQuit(sc, *obsf.flight, errOut)
		defer stopSigq()
	}

	srv := serve.New(serve.Config{
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		PoolSize:       *poolSize,
		Workers:        *workers,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		BDDLimit:       *bddLimit,
		Scope:          sc,
	})
	// Pre-warm the pool so the first wave of requests reuses storage; 16
	// variables covers the bundled suite's PI counts.
	srv.Pool().Warm(srv.Pool().Cap(), 16, bdd.Config{NodeLimit: *bddLimit})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(errOut, "pserve: serving POST /synth (+ /metrics, /healthz, /readyz, /debug/flight, /debug/pprof) on http://%s (run %s; SIGTERM to drain)\n",
		ln.Addr(), *runID)
	err = serve.ListenAndServe(ctx, ln, srv.Handler(), serve.HTTPOptions{
		ShutdownGrace: *grace,
		OnShutdown: func() {
			fmt.Fprintln(errOut, "pserve: draining (in-flight requests finishing, new work refused)")
			srv.Drain()
		},
	})
	ps := srv.Pool().Stats()
	fmt.Fprintf(out, "pserve: stopped; pool reuses %d, allocs %d, recycles %d, discards %d\n",
		ps.Reuses, ps.Allocs, ps.Puts, ps.Discards)
	return err
}
