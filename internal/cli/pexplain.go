package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"strings"

	"powermap/internal/journal"
)

// Pexplain runs the pexplain command: querying and diffing the decision
// journals written by pmap/tables/pbench -journal. Three subcommands:
//
//	pexplain top  [-n 20] [-json] run.jsonl        where do the microwatts go
//	pexplain why  -gate NAME [-json] run.jsonl     why this gate: attribution -> match -> tree
//	pexplain diff [-n 20] [-json] a.jsonl b.jsonl  what changed between two runs
func Pexplain(args []string, out, errOut io.Writer) error {
	if len(args) < 1 {
		fmt.Fprint(errOut, pexplainUsage)
		return fmt.Errorf("need a subcommand: top, why or diff")
	}
	switch args[0] {
	case "top":
		return pexplainTop(args[1:], out, errOut)
	case "why":
		return pexplainWhy(args[1:], out, errOut)
	case "diff":
		return pexplainDiff(args[1:], out, errOut)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(out, pexplainUsage)
		return nil
	}
	fmt.Fprint(errOut, pexplainUsage)
	return fmt.Errorf("unknown subcommand %q (want top, why or diff)", args[0])
}

const pexplainUsage = `usage:
  pexplain top  [-n N] [-json] run.jsonl         rank signals by attributed power
  pexplain why  -gate NAME [-json] run.jsonl     explain one gate's power end to end
  pexplain diff [-n N] [-json] a.jsonl b.jsonl   per-gate power deltas between two runs
`

// describeRun is the one-line run identity printed above every table.
func describeRun(h journal.Header) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s", h.RunID)
	if h.Circuit != "" {
		fmt.Fprintf(&b, "  circuit %s", h.Circuit)
	}
	if h.Method != "" {
		fmt.Fprintf(&b, "  method %s", h.Method)
	}
	if h.Strategy != "" || h.Objective != "" {
		fmt.Fprintf(&b, " (%s + %s)", h.Strategy, h.Objective)
	}
	if h.Stage != "" {
		fmt.Fprintf(&b, "  stage %s", h.Stage)
	}
	return b.String()
}

func pexplainTop(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pexplain top", flag.ContinueOnError)
	fs.SetOutput(errOut)
	n := fs.Int("n", 20, "number of signals to print (0 = all)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("pexplain top: need exactly one journal file")
	}
	run, err := journal.ReadRunFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rows := make([]journal.GatePower, len(run.Gates))
	copy(rows, run.Gates)
	// Largest consumers first; ties break on name for stable output.
	sortGatePower(rows)
	if *n > 0 && len(rows) > *n {
		rows = rows[:*n]
	}
	if *asJSON {
		return writeJSON(out, struct {
			Header journal.Header      `json:"header"`
			Report *journal.Report     `json:"report,omitempty"`
			Gates  []journal.GatePower `json:"gates"`
		}{run.Header, run.Report, rows})
	}
	fmt.Fprintln(out, describeRun(run.Header))
	total := 0.0
	if run.Report != nil {
		total = run.Report.PowerUW
		fmt.Fprintf(out, "total %.2f uW over %d gates (attributed %.2f uW, delay %.2f ns, area %.0f)\n",
			run.Report.PowerUW, run.Report.Gates, run.Report.AttributedUW,
			run.Report.DelayNs, run.Report.Area)
	}
	fmt.Fprintf(out, "\n%-14s %-10s %7s %9s %10s %7s\n", "signal", "cell", "load", "activity", "power_uw", "share")
	for _, g := range rows {
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%5.1f%%", 100*g.PowerUW/total)
		}
		cell := g.Cell
		if cell == "" {
			cell = "(source)"
		}
		fmt.Fprintf(out, "%-14s %-10s %7.2f %9.3f %10.3f %7s\n",
			g.Signal, cell, g.Load, g.Activity, g.PowerUW, share)
	}
	return nil
}

func sortGatePower(rows []journal.GatePower) {
	for i := 1; i < len(rows); i++ { // insertion sort: rows are short-ish and mostly ordered
		for j := i; j > 0; j-- {
			a, b := rows[j-1], rows[j]
			if a.PowerUW > b.PowerUW || (a.PowerUW == b.PowerUW && a.Signal <= b.Signal) {
				break
			}
			rows[j-1], rows[j] = b, a
		}
	}
}

// whyReport is the JSON shape of pexplain why: the three provenance layers
// for one signal, outermost first.
type whyReport struct {
	Header journal.Header      `json:"header"`
	Gate   *journal.GatePower  `json:"gate,omitempty"`
	Site   *journal.MapSite    `json:"site,omitempty"`
	Decomp *journal.DecompNode `json:"decomp,omitempty"`
}

func pexplainWhy(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pexplain why", flag.ContinueOnError)
	fs.SetOutput(errOut)
	gate := fs.String("gate", "", "signal/gate name to explain (required)")
	asJSON := fs.Bool("json", false, "emit JSON instead of a report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gate == "" {
		return fmt.Errorf("pexplain why: -gate NAME is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("pexplain why: need exactly one journal file")
	}
	run, err := journal.ReadRunFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := whyReport{
		Header: run.Header,
		Gate:   run.Gate(*gate),
		Site:   run.Site(*gate),
		Decomp: run.DecompNodeByName(*gate),
	}
	if rep.Gate == nil && rep.Site == nil && rep.Decomp == nil {
		return fmt.Errorf("pexplain why: no events for %q in %s (try pexplain top to list signals)", *gate, fs.Arg(0))
	}
	if *asJSON {
		return writeJSON(out, rep)
	}
	fmt.Fprintln(out, describeRun(run.Header))
	fmt.Fprintf(out, "signal %s\n", *gate)
	if g := rep.Gate; g != nil {
		cell := g.Cell
		if cell == "" {
			cell = "(source signal: charges the pins it drives)"
		}
		fmt.Fprintf(out, "\npower: %.3f uW = load %.2f x activity %.3f (Equation 1), cell %s\n",
			g.PowerUW, g.Load, g.Activity, cell)
	}
	if s := rep.Site; s != nil {
		fmt.Fprintf(out, "\nmapping: %s covers the node (%d library matches, %d curve points kept)\n",
			s.Cell, s.Matches, s.CurvePoints)
		fmt.Fprintf(out, "  required %.3f ns, arrival %.3f ns under final load %.2f; cone cost %.3f\n",
			s.Required, s.Arrival, s.Load, s.Cost)
		if s.NPNClass != "" {
			fmt.Fprintf(out, "  cut backend: NPN class %s over cut leaves (%s)\n",
				s.NPNClass, strings.Join(s.CutLeaves, ", "))
		}
		fmt.Fprintf(out, "  selected because: %s\n", s.Why)
		if len(s.Candidates) > 0 {
			fmt.Fprintf(out, "  curve (arrivals at default load):\n")
			for _, c := range s.Candidates {
				mark := " "
				if c.Chosen {
					mark = "*"
				}
				fmt.Fprintf(out, "   %s %-10s arrival %8.3f ns  cost %9.3f\n", mark, c.Cell, c.Arrival, c.Cost)
			}
		}
	}
	if dn := rep.Decomp; dn != nil {
		fmt.Fprintf(out, "\ndecomposition: %s tree over %d leaves (%d cubes), height %d (min %d)\n",
			dn.Tree, dn.Leaves, dn.Cubes, dn.Height, dn.MinHeight)
		if dn.Rebuilt {
			fmt.Fprintf(out, "  rebuilt by the bounded-height pass\n")
		}
		if dn.Stuck {
			fmt.Fprintf(out, "  bounded-height pass could not reduce it further\n")
		}
		if dn.Exact {
			fmt.Fprintf(out, "  priced with global-BDD activities (costs below are the independence view)\n")
		}
		if len(dn.Inputs) > 0 {
			fmt.Fprintf(out, "  inputs (prob -> activity):\n")
			for _, in := range dn.Inputs {
				fmt.Fprintf(out, "    %-12s p=%.3f  E=%.3f\n", in.Signal, in.Prob, in.Activity)
			}
		}
		if len(dn.Merges) > 0 {
			fmt.Fprintf(out, "  merge trail (#k = k-th merge below):\n")
			for k, m := range dn.Merges {
				fmt.Fprintf(out, "    #%-3d %-3s (%s, %s)  p=%.3f  cost=%.3f\n", k, m.Gate, m.A, m.B, m.Prob, m.Cost)
			}
		}
	}
	return nil
}

func pexplainDiff(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pexplain diff", flag.ContinueOnError)
	fs.SetOutput(errOut)
	n := fs.Int("n", 20, "number of gate deltas to print (0 = all; JSON always carries all)")
	asJSON := fs.Bool("json", false, "emit the full diff as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("pexplain diff: need exactly two journal files")
	}
	a, err := journal.ReadRunFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := journal.ReadRunFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := journal.DiffRuns(a, b)
	if *asJSON {
		return writeJSON(out, d)
	}
	fmt.Fprintf(out, "A: %s\n", describeRun(d.A))
	fmt.Fprintf(out, "B: %s\n", describeRun(d.B))
	fmt.Fprintf(out, "\n%-10s %12s %12s %12s\n", "", "A", "B", "delta")
	fmt.Fprintf(out, "%-10s %12d %12d %12d\n", "gates", d.GatesA, d.GatesB, d.GatesB-d.GatesA)
	fmt.Fprintf(out, "%-10s %12.0f %12.0f %12.0f\n", "area", d.AreaA, d.AreaB, d.AreaB-d.AreaA)
	fmt.Fprintf(out, "%-10s %12.3f %12.3f %12.3f\n", "delay_ns", d.DelayA, d.DelayB, d.DelayB-d.DelayA)
	fmt.Fprintf(out, "%-10s %12.3f %12.3f %12.3f\n", "power_uw", d.PowerA, d.PowerB, d.PowerDelta)
	fmt.Fprintf(out, "\nper-gate deltas sum to %.9f uW (report delta %.9f uW, residue %.2g)\n",
		d.GateDeltaSum, d.PowerDelta, math.Abs(d.GateDeltaSum-d.PowerDelta))
	rows := d.Gates
	if *n > 0 && len(rows) > *n {
		rows = rows[:*n]
	}
	fmt.Fprintf(out, "\n%-14s %-10s %-10s %10s %10s %10s\n", "signal", "cell A", "cell B", "power A", "power B", "delta")
	for _, g := range rows {
		ca, cb := g.CellA, g.CellB
		switch g.OnlyIn {
		case "a":
			cb = "(absent)"
		case "b":
			ca = "(absent)"
		}
		fmt.Fprintf(out, "%-14s %-10s %-10s %10.3f %10.3f %+10.3f\n",
			g.Signal, ca, cb, g.PowerA, g.PowerB, g.Delta)
	}
	if len(rows) < len(d.Gates) {
		fmt.Fprintf(out, "... %d more (rerun with -n 0 or -json for all)\n", len(d.Gates)-len(rows))
	}
	if len(d.Decisions) > 0 {
		fmt.Fprintf(out, "\ndecision changes:\n")
		for _, dd := range d.Decisions {
			fmt.Fprintf(out, "  %-5s %-14s %s -> %s\n", dd.Kind, dd.Node, dd.A, dd.B)
		}
	}
	return nil
}

func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
