package cli

import (
	"bytes"
	"strings"
	"testing"
)

func TestPcheckCircuit(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pcheck([]string{"-circuit", "cm42a", "-methods", "I,VI"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ok cm42a", "method I", "method VI", "curves audited", "all checks passed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPcheckBlif(t *testing.T) {
	path := writeTempBlif(t)
	var out, errOut bytes.Buffer
	if err := Pcheck([]string{"-blif", path, "-methods", "IV", "-tree"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok clitest") {
		t.Errorf("output missing circuit line:\n%s", out.String())
	}
}

func TestPcheckRandom(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pcheck([]string{"-random", "4", "-seed", "5", "-methods", "all"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "ok rand"); got != 4 {
		t.Errorf("%d random networks checked, want 4:\n%s", got, out.String())
	}
}

func TestPcheckHuffman(t *testing.T) {
	for _, style := range []string{"static", "domino-p", "domino-n"} {
		var out, errOut bytes.Buffer
		if err := Pcheck([]string{"-huffman", "10", "-style", style}, &out, &errOut); err != nil {
			t.Fatalf("style %s: %v", style, err)
		}
		if !strings.Contains(out.String(), "ok huffman") {
			t.Errorf("style %s: output missing huffman line:\n%s", style, out.String())
		}
	}
}

// TestPcheckInjectExitsNonzero is the acceptance criterion for the
// self-test: an injected corruption must be rejected, surfacing as a
// non-nil error (nonzero exit in cmd/pcheck).
func TestPcheckInjectExitsNonzero(t *testing.T) {
	var out, errOut bytes.Buffer
	err := Pcheck([]string{"-circuit", "cm42a", "-methods", "VI", "-inject"}, &out, &errOut)
	if err == nil {
		t.Fatal("injected violation accepted")
	}
	if !strings.Contains(err.Error(), "injected violation detected") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(out.String(), "injected corruption") {
		t.Errorf("output missing injection note:\n%s", out.String())
	}
}

func TestPcheckErrors(t *testing.T) {
	cases := [][]string{
		{},                                        // nothing to check
		{"-circuit", "bogus"},                     // unknown benchmark
		{"-circuit", "cm42a", "-methods", "VII"},  // bad method
		{"-circuit", "cm42a", "-methods", ","},    // empty method list
		{"-circuit", "cm42a", "-style", "ecl"},    // bad style
		{"-inject"},                               // inject without a circuit
		{"-blif", "/nonexistent", "-circuit", "cm42a"}, // both inputs
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := Pcheck(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPcheckList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pcheck([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cm42a") {
		t.Errorf("list output missing cm42a:\n%s", out.String())
	}
}
