package cli

import (
	"flag"
	"fmt"
	"strings"

	"powermap/internal/prob"
	"powermap/internal/sim"
)

// activityFlags is the shared activity-engine flag set: which engine
// computes switching activities (exact BDDs, the bit-parallel sampling
// engine, or the auto policy) and the sampling engine's budget and
// confidence-interval tuning. Registered by every CLI that estimates
// activities, mirroring the bddflags/mapflags idiom.
type activityFlags struct {
	engine        *string
	vectors       *int
	targetCI      *float64
	confidence    *float64
	autoThreshold *int
	trans         *float64
}

// addActivityFlags registers the shared -activity/-vectors/-auto-threshold
// flags; detail additionally registers the estimation-only knobs (-ci,
// -confidence, -trans) that pipeline tools leave at their defaults.
func addActivityFlags(fs *flag.FlagSet, detail bool) *activityFlags {
	a := &activityFlags{
		engine:        fs.String("activity", "exact", "activity engine: exact (global BDDs), sample (bit-parallel Monte-Carlo), auto (exact below -auto-threshold nodes or on a node-limit failure, sampling otherwise)"),
		vectors:       fs.Int("vectors", sim.DefaultSampleVectors, "sampling budget in vectors for -activity sample/auto"),
		autoThreshold: fs.Int("auto-threshold", prob.DefaultAutoThreshold, "node count above which -activity auto samples instead of building exact BDDs"),
	}
	if detail {
		a.targetCI = fs.Float64("ci", 0, "sample sequentially until every node's activity CI half-width is at most this target (0 = fixed -vectors budget)")
		a.confidence = fs.Float64("confidence", sim.DefaultConfidence, "confidence level of the sampling engine's reported intervals")
		a.trans = fs.Float64("trans", -1, "uniform per-PI lag-one toggle probability (forces sampling; negative = temporally independent inputs)")
	} else {
		zero, conf, off := 0.0, sim.DefaultConfidence, -1.0
		a.targetCI, a.confidence, a.trans = &zero, &conf, &off
	}
	return a
}

// policy resolves the -activity/-auto-threshold pair.
func (a *activityFlags) policy() (prob.Policy, error) {
	p := prob.Policy{AutoThreshold: *a.autoThreshold}
	switch strings.ToLower(*a.engine) {
	case "exact":
		p.Engine = prob.Exact
	case "sample", "sampling":
		p.Engine = prob.Sampling
	case "auto":
		p.Engine = prob.Auto
	default:
		return p, fmt.Errorf("unknown -activity %q (want exact, sample or auto)", *a.engine)
	}
	return p, nil
}

// sampling resolves the sampling-engine options for the given seed and
// worker count.
func (a *activityFlags) sampling(seed int64, workers int) sim.BitwiseOptions {
	return sim.BitwiseOptions{
		Vectors:    *a.vectors,
		Seed:       seed,
		Workers:    workers,
		Confidence: *a.confidence,
		TargetCI:   *a.targetCI,
	}
}

// transMap resolves -trans into the per-PI toggle-probability map consumed
// by sim.AnnotateOptions.Trans (nil when unset).
func (a *activityFlags) transMap(piNames []string) map[string]float64 {
	if *a.trans < 0 {
		return nil
	}
	m := make(map[string]float64, len(piNames))
	for _, name := range piNames {
		m[name] = *a.trans
	}
	return m
}
