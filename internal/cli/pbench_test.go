package cli

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"powermap/internal/bench"
)

func TestPbenchFreshBaselineThenCompare(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	args := []string{"-runs", "1", "-circuits", "x2", "-methods", "I", "-workers", "1", "-out", out}

	// First run: no baseline yet — records a fresh manifest and succeeds.
	var stdout, stderr bytes.Buffer
	if err := Pbench(args, &stdout, &stderr); err != nil {
		t.Fatalf("first run: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no baseline") {
		t.Errorf("missing no-baseline notice:\n%s", stderr.String())
	}
	if _, err := bench.ReadManifestFile(out); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}

	// Second run: compares against the manifest the first run wrote.
	// -fail=false keeps the test immune to scheduler noise; the comparison
	// table itself is what's under test.
	stdout.Reset()
	stderr.Reset()
	if err := Pbench(append(args, "-fail=false"), &stdout, &stderr); err != nil {
		t.Fatalf("second run: %v\n%s", err, stderr.String())
	}
	for _, want := range []string{"phase", "baseline", "current", "total"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("comparison table missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestPbenchRegressionFails(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_pipeline.json")
	base := filepath.Join(dir, "baseline.json")
	args := []string{"-runs", "1", "-circuits", "x2", "-methods", "I", "-workers", "1"}

	var stdout, stderr bytes.Buffer
	if err := Pbench(append(args, "-out", base), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// Shrink the baseline so the real run regresses against it.
	m, err := bench.ReadManifestFile(base)
	if err != nil {
		t.Fatal(err)
	}
	m.WallNs /= 100
	for name, st := range m.Phases {
		st.WallNs /= 100
		m.Phases[name] = st
	}
	if err := bench.WriteManifestFile(base, m); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	err = Pbench(append(args, "-out", out, "-baseline", base, "-floor", "0.0001"), &stdout, &stderr)
	if err == nil {
		t.Fatalf("synthetic 100x regression not flagged:\n%s", stdout.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error = %v, want a regression report", err)
	}
	if !strings.Contains(stdout.String(), "REGRESSED") {
		t.Errorf("table missing REGRESSED marker:\n%s", stdout.String())
	}

	// Same regression with -fail=false reports but succeeds.
	stdout.Reset()
	if err := Pbench(append(args, "-out", out, "-baseline", base, "-floor", "0.0001", "-fail=false"), &stdout, &stderr); err != nil {
		t.Errorf("-fail=false still failed: %v", err)
	}
}

func TestPbenchWorkloadMismatch(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	var stdout, stderr bytes.Buffer
	if err := Pbench([]string{"-runs", "1", "-circuits", "x2", "-methods", "I", "-workers", "1", "-out", base}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	err := Pbench([]string{"-runs", "1", "-circuits", "x2", "-methods", "IV", "-workers", "1",
		"-out", filepath.Join(dir, "other.json"), "-baseline", base}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "workload mismatch") {
		t.Errorf("workload mismatch not rejected: %v", err)
	}
}
