// Package cli implements the command-line tools (pmap, powerest, tables)
// as testable functions over io.Writer; the cmd/ mains are thin wrappers.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"powermap/internal/blif"
	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/genlib"
	glitchsim "powermap/internal/glitch"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/network"
	"powermap/internal/power"
)

// Pmap runs the pmap command: the full synthesis flow plus reporting.
// Reports and requested artifacts go to out; flag usage, parse errors and
// -v phase logs go to errOut so piped/-stats output stays machine-readable.
func Pmap(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pmap", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		blifPath = fs.String("blif", "", "input BLIF netlist")
		circuit  = fs.String("circuit", "", "built-in benchmark name (see -list)")
		list     = fs.Bool("list", false, "list built-in benchmarks and exit")
		method   = fs.String("method", "VI", "method I..VI (Tables 2/3 of the paper)")
		style    = fs.String("style", "static", "design style: static, domino-p, domino-n")
		libPath  = fs.String("lib", "", "genlib library file (default: embedded lib2)")
		exact    = fs.Bool("exact", false, "price decomposition merges with global BDDs")
		relax    = fs.Float64("relax", 0.15, "timing slack fraction for defaulted required times")
		epsilon  = fs.Float64("epsilon", 0, "power-delay curve epsilon pruning (ns)")
		tree     = fs.Bool("tree", false, "strict tree partitioning in the mapper")
		piProb   = fs.Float64("prob", 0.5, "uniform P(pi=1) for all primary inputs")
		gates    = fs.Bool("gates", false, "print the mapped gate list")
		verify   = fs.Bool("verify", true, "verify result equivalence against the source")
		write    = fs.String("write", "", "write the mapped netlist as mapped BLIF to this file")
		dot      = fs.String("dot", "", "write the mapped netlist as Graphviz DOT to this file")
		glitch   = fs.Int("glitch", 0, "simulate N vector pairs under the unit-delay model")
		method2  = fs.Bool("method2", false, "use Section 3.1 Method 2 power accounting (ablation)")
		recovery = fs.Bool("recover", false, "run drive-strength power recovery after mapping")
		topPower = fs.Int("top", 0, "print the N most power-hungry signals")
		jpath    = fs.String("journal", "", "write a decision-provenance journal (JSONL) to this file; query it with pexplain")
		workers  = fs.Int("workers", 0, "worker pool size for parallel phases (0 = all CPUs)")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	bddf := addBDDFlags(fs)
	mapf := addMapFlags(fs)
	actf := addActivityFlags(fs, false)
	tel := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, treeMode, lut, err := mapf.resolve(*tree)
	if err != nil {
		return err
	}
	activity, err := actf.policy()
	if err != nil {
		return err
	}
	if *list {
		for _, b := range circuits.Suite() {
			fmt.Fprintf(out, "%-8s %s\n", b.Name, b.Description)
		}
		return nil
	}
	src, err := LoadNetwork(*blifPath, *circuit)
	if err != nil {
		return err
	}
	m, err := ParseMethod(*method)
	if err != nil {
		return err
	}
	st, err := ParseStyle(*style)
	if err != nil {
		return err
	}
	lib, err := loadLibrary(*libPath)
	if err != nil {
		return err
	}
	probs := map[string]float64{}
	for _, name := range src.PINames() {
		probs[name] = *piProb
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(errOut, "pmap: profile: %v\n", perr)
		}
	}()
	sc := tel.scope(errOut)
	var jr *journal.Journal
	if *jpath != "" {
		jr, err = journal.Create(*jpath, journal.Header{
			RunID:     tel.resolveRunID(),
			Circuit:   src.Name,
			Method:    m.String(),
			Strategy:  m.Decomposition().String(),
			Objective: m.Mapping().String(),
			Style:     st.String(),
			Workers:   *workers,
		})
		if err != nil {
			return err
		}
		jr.SetObs(sc)
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	res, err := core.SynthesizeContext(ctx, src, core.Options{
		Method:          m,
		Style:           st,
		Exact:           *exact,
		PIProb:          probs,
		Relax:           relax,
		Epsilon:         *epsilon,
		Mapper:          backend,
		LUT:             lut,
		TreeMode:        treeMode,
		PowerMethod2:    *method2,
		Workers:         *workers,
		Library:         lib,
		Obs:             sc,
		Journal:         jr,
		BDD:             bddf.config(),
		Activity:        activity,
		ActivityVectors: *actf.vectors,
	})
	if cerr := jr.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("journal: %w", cerr)
	}
	if err != nil {
		return timeoutError(*timeout, err)
	}
	if *verify {
		span := sc.StartCtx(ctx, "verify-source")
		err := core.VerifyAgainstSourceWith(ctx, src, res, bddf.config())
		span.End()
		if err != nil {
			return timeoutError(*timeout, err)
		}
	}

	s := src.Stats()
	fmt.Fprintf(out, "circuit %s: %d PI, %d PO, %d nodes, %d literals\n",
		src.Name, s.PIs, s.POs, s.Nodes, s.Literals)
	fmt.Fprintf(out, "method %s (%v decomposition + %v)\n", m, m.Decomposition(), m.Mapping())
	fmt.Fprintf(out, "quick-opt: %d literals -> %d (%d consts, %d buffers, %d eliminated, %d cubes, %d kernels)\n",
		res.OptStats.LiteralsBefore, res.OptStats.LiteralsAfter,
		res.OptStats.ConstantsPropagated, res.OptStats.BuffersCollapsed,
		res.OptStats.NodesEliminated, res.OptStats.CubesExtracted, res.OptStats.KernelsExtracted)
	fmt.Fprintf(out, "subject graph: %d nodes, depth %.0f, total activity %.3f, %d bounded re-decompositions\n",
		res.Decomp.Network.Stats().Nodes, res.Decomp.Depth,
		res.Decomp.TotalActivity, res.Decomp.Redecompositions)
	fmt.Fprintf(out, "mapped: %d gates, area %.0f, delay %.2f ns, power %.2f uW\n",
		res.Report.Gates, res.Report.GateArea, res.Report.Delay, res.Report.PowerUW)
	if *recovery {
		swaps := res.Netlist.RecoverDrive(lib, nil)
		fmt.Fprintf(out, "drive recovery: %d swaps -> area %.0f, delay %.2f ns, power %.2f uW\n",
			swaps, res.Netlist.Report.GateArea, res.Netlist.Report.Delay, res.Netlist.Report.PowerUW)
	}
	if *glitch > 0 {
		rep, err := glitchsim.Simulate(res.Netlist, res.Decomp.Network, probs, *glitch, 1, power.Default())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "glitch-aware power (%d vectors, unit delay): %.2f uW (zero-delay simulated: %.2f uW)\n",
			rep.Vectors, rep.PowerUW, rep.ZeroDelayPowerUW)
	}
	if *dot != "" {
		if err := writeFile(*dot, res.Netlist.WriteDot); err != nil {
			return err
		}
		fmt.Fprintf(out, "netlist graph written to %s\n", *dot)
	}
	if *write != "" {
		if err := writeFile(*write, res.Netlist.WriteBLIF); err != nil {
			return err
		}
		fmt.Fprintf(out, "mapped netlist written to %s\n", *write)
	}
	if *jpath != "" {
		fmt.Fprintf(out, "decision journal written to %s (run %s); query with pexplain\n", *jpath, jr.RunID())
	}
	if *topPower > 0 {
		rows := res.Netlist.PowerBreakdown()
		if len(rows) > *topPower {
			rows = rows[:*topPower]
		}
		fmt.Fprintf(out, "\ntop %d power consumers:\n", len(rows))
		for _, r := range rows {
			fmt.Fprintf(out, "  %-12s load=%5.2f  E=%.3f  %6.2f uW\n",
				r.Signal.Name, r.Load, r.Activity, r.PowerUW)
		}
	}
	if *gates {
		fmt.Fprintln(out, "\ngate list:")
		for _, g := range res.Netlist.Gates {
			ins := make([]string, len(g.Inputs))
			for i, in := range g.Inputs {
				ins[i] = in.Name
			}
			fmt.Fprintf(out, "  %-10s %-8s (%s)\n", g.Root.Name, g.Cell.Name, strings.Join(ins, ", "))
		}
		fmt.Fprintln(out, "\ncell usage:")
		for _, cc := range res.Netlist.CellCounts() {
			fmt.Fprintf(out, "  %-8s x%d\n", cc.Name, cc.Count)
		}
	}
	return tel.finish(out, errOut)
}

// timeoutContext returns a context honoring the -timeout flag; d <= 0
// means no deadline. The cancel func is always non-nil.
func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.WithCancel(context.Background())
}

// timeoutError rewraps a deadline expiry as a one-line user-facing
// message; any other error passes through untouched. The cmd/ mains
// prefix the tool name, so the message doesn't repeat it.
func timeoutError(d time.Duration, err error) error {
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("run exceeded -timeout %v: %w", d, err)
	}
	return err
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadLibrary(path string) (*genlib.Library, error) {
	if path == "" {
		return genlib.Lib2(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return genlib.Parse(f)
}

// LoadNetwork loads a BLIF file or a named built-in benchmark.
func LoadNetwork(blifPath, circuit string) (*network.Network, error) {
	switch {
	case blifPath != "" && circuit != "":
		return nil, fmt.Errorf("give either -blif or -circuit, not both")
	case blifPath != "":
		f, err := os.Open(blifPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return blif.Parse(f)
	case circuit != "":
		b, err := circuits.ByName(circuit)
		if err != nil {
			return nil, err
		}
		return b.Build(), nil
	default:
		return nil, fmt.Errorf("need -blif FILE or -circuit NAME (try -list)")
	}
}

// ParseMethod resolves a Roman-numeral method name.
func ParseMethod(s string) (core.Method, error) {
	for _, m := range core.Methods() {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q (want I..VI)", s)
}

// ParseStyle resolves a design-style name.
func ParseStyle(s string) (huffman.Style, error) {
	switch strings.ToLower(s) {
	case "static":
		return huffman.Static, nil
	case "domino-p", "dominop", "p":
		return huffman.DominoP, nil
	case "domino-n", "dominon", "n":
		return huffman.DominoN, nil
	}
	return 0, fmt.Errorf("unknown style %q", s)
}
