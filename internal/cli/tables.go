package cli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"strings"

	"powermap/internal/circuits"
	"powermap/internal/core"
	"powermap/internal/eval"
	"powermap/internal/huffman"
)

// Tables runs the tables command: regeneration of the paper's Tables 1-3,
// Figure 1, the Section 4 summary, and the correlated-input extension.
func Tables(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		table    = fs.String("table", "all", "1, 2, 3, summary, figure1, correlated, backends, or all")
		patterns = fs.Int("patterns", 500, "random patterns per input count for Table 1")
		seed     = fs.Int64("seed", 1993, "random seed")
		subset   = fs.String("circuits", "", "comma-separated benchmark subset for Tables 2/3")
		relax    = fs.Float64("relax", 0.15, "timing slack fraction of the reference run")
		exact    = fs.Bool("exact", false, "use BDD-exact decomposition costs")
		jdir     = fs.String("journal", "", "directory receiving one decision journal per (circuit, method) run; query with pexplain")
		workers  = fs.Int("workers", 0, "worker pool size for the (circuit, method) runs (0 = all CPUs)")
		timeout  = fs.Duration("timeout", 0, "abort the suite after this duration (0 = none)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
	)
	bddf := addBDDFlags(fs)
	mapf := addMapFlags(fs)
	actf := addActivityFlags(fs, false)
	tel := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, treeMode, lut, err := mapf.resolve(false)
	if err != nil {
		return err
	}
	activity, err := actf.policy()
	if err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintf(errOut, "tables: profile: %v\n", perr)
		}
	}()
	sc := tel.scope(errOut)
	var names []string
	if *subset != "" {
		names = strings.Split(*subset, ",")
	}
	want := strings.ToLower(*table)
	runAll := want == "all"

	if runAll || want == "1" {
		fmt.Fprintln(out, "=== Table 1: Modified Huffman optimality (static AND decomposition) ===")
		fmt.Fprintln(out, eval.FormatTable1(eval.Table1(*patterns, *seed)))
		fmt.Fprintln(out, "paper: 100 / 96 / 93 / 88")
		fmt.Fprintln(out)
	}
	if runAll || want == "figure1" {
		figure1(out)
		fmt.Fprintln(out)
	}
	if runAll || want == "correlated" {
		fmt.Fprintln(out, "=== Extension: correlated-input decomposition (Equations 7-9) ===")
		fmt.Fprintln(out, "8-input p-type domino AND; pairs correlated with strength rho;")
		fmt.Fprintln(out, "activity measured by simulating the correlated stream (20k vectors).")
		var rows []eval.CorrelatedResult
		for _, rho := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
			r, err := eval.Correlated(4, rho, 20000, *seed)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Fprintln(out, eval.FormatCorrelated(rows))
	}

	if want == "backends" {
		ctx, cancel := timeoutContext(*timeout)
		defer cancel()
		base := core.Options{Style: huffman.Static, Relax: relax, Exact: *exact, LUT: lut, Workers: *workers, Obs: sc, BDD: bddf.config(), Activity: activity, ActivityVectors: *actf.vectors}
		fmt.Fprintln(out, "=== Mapper backends: structural vs cuts (Method VI, common constraints) ===")
		rows, err := eval.CompareBackends(ctx, base, core.MethodVI, names)
		if err != nil {
			return timeoutError(*timeout, err)
		}
		fmt.Fprintln(out, eval.FormatBackendTable(rows))
		return tel.finish(out, errOut)
	}

	needSuite := runAll || want == "2" || want == "3" || want == "summary"
	if !needSuite {
		return tel.finish(out, errOut)
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	base := core.Options{Style: huffman.Static, Relax: relax, Exact: *exact, Mapper: backend, LUT: lut, TreeMode: treeMode, Workers: *workers, Obs: sc, BDD: bddf.config(), Activity: activity, ActivityVectors: *actf.vectors}
	var jc eval.JournalConfig
	if *jdir != "" {
		jc = eval.JournalConfig{Dir: *jdir, RunID: tel.resolveRunID()}
	}
	rows, err := eval.RunSuiteJournaled(ctx, core.Methods(), base, names, jc)
	if err != nil {
		// On expiry eval reports how many of the suite's runs completed
		// before the deadline; surface that as the whole story.
		return timeoutError(*timeout, err)
	}
	if *jdir != "" {
		fmt.Fprintf(errOut, "decision journals written to %s (run %s); query with pexplain\n", *jdir, jc.RunID)
	}
	eval.SortRowsByTableOrder(rows)
	if runAll || want == "2" {
		fmt.Fprintln(out, "=== Table 2: area-delay mapping (Methods I, II, III) ===")
		fmt.Fprintln(out, eval.FormatTable(rows, []core.Method{core.MethodI, core.MethodII, core.MethodIII}))
	}
	if runAll || want == "3" {
		fmt.Fprintln(out, "=== Table 3: power-delay mapping (Methods IV, V, VI) ===")
		fmt.Fprintln(out, eval.FormatTable(rows, []core.Method{core.MethodIV, core.MethodV, core.MethodVI}))
	}
	if runAll || want == "summary" {
		fmt.Fprintln(out, "=== Section 4 summary (measured vs paper) ===")
		fmt.Fprintln(out, eval.FormatSummary(eval.Summarize(rows)))
	}
	return tel.finish(out, errOut)
}

// figure1 reproduces the worked decomposition example.
func figure1(out io.Writer) {
	fmt.Fprintln(out, "=== Figure 1: decomposition changes total switching activity ===")
	_, probs := circuits.Figure1()
	alg := huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: huffman.DominoP}
	leaves := []huffman.Signal{
		huffman.SignalFromProb(probs["a"]),
		huffman.SignalFromProb(probs["b"]),
		huffman.SignalFromProb(probs["c"]),
		huffman.SignalFromProb(probs["d"]),
	}
	leafSum := probs["a"] + probs["b"] + probs["c"] + probs["d"]
	chain := func(order []int) float64 {
		st := leaves[order[0]]
		total := 0.0
		for _, i := range order[1:] {
			st = alg.Merge(st, leaves[i])
			total += alg.Cost(st)
		}
		return total + leafSum
	}
	srA := chain([]int{0, 1, 2, 3})
	ab := alg.Merge(leaves[0], leaves[1])
	cd := alg.Merge(leaves[2], leaves[3])
	srB := alg.Cost(ab) + alg.Cost(cd) + alg.Cost(alg.Merge(ab, cd)) + leafSum
	tr := huffman.Build[huffman.Signal](alg, leaves)
	srH := huffman.TotalCost[huffman.Signal](alg, tr) + leafSum
	fmt.Fprintf(out, "configuration A ((ab)c)d : SR = %.3f   (paper: 2.146)\n", srA)
	fmt.Fprintf(out, "configuration B (ab)(cd) : SR = %.3f   (paper: 2.412)\n", srB)
	fmt.Fprintf(out, "Huffman (optimal)        : SR = %.3f\n", srH)
	if srH > math.Min(srA, srB)+1e-12 {
		fmt.Fprintln(out, "WARNING: Huffman did not match the best configuration")
	}
}
