package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powermap/internal/obs"
)

// TestPowerestFlightRecordOnFailure is the acceptance scenario for the
// flight recorder: an induced exact-BDD node-limit failure must leave a
// parseable flight-record JSON carrying the failing phase's spans, the last
// runtime samples, and the typed node-limit event — without the operator
// asking for anything beyond -flight.
func TestPowerestFlightRecordOnFailure(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.json")
	var out, errOut bytes.Buffer
	err := Powerest([]string{
		"-circuit", "s344", "-bdd-limit", "64", "-activity", "exact",
		"-flight", dump, "-sample-interval", "10ms",
	}, &out, &errOut)
	if err == nil {
		t.Fatal("64-node BDD limit on s344 did not fail")
	}

	f, ferr := os.Open(dump)
	if ferr != nil {
		t.Fatalf("no flight record despite failure: %v\nstderr:\n%s", ferr, errOut.String())
	}
	defer f.Close()
	fr, perr := obs.ParseFlightRecord(f)
	if perr != nil {
		t.Fatal(perr)
	}
	if fr.Schema != obs.FlightSchemaVersion || fr.Reason != "powerest.annotate" {
		t.Errorf("record header wrong: schema=%d reason=%q", fr.Schema, fr.Reason)
	}
	if fr.Error == "" || !strings.Contains(fr.Error, "node limit") {
		t.Errorf("record error does not name the node limit: %q", fr.Error)
	}
	if nl, ok := fr.Attrs["node_limit"].(bool); !ok || !nl {
		t.Errorf("typed node_limit attr missing: %+v", fr.Attrs)
	}
	if fr.Attrs["circuit"] != "s344" {
		t.Errorf("circuit attr missing: %+v", fr.Attrs)
	}
	var sawAnnotate bool
	for _, sp := range fr.Spans {
		if strings.HasPrefix(sp.Name, "sim.annotate") {
			sawAnnotate = true
		}
	}
	if !sawAnnotate {
		t.Errorf("failing phase's span missing from record: %+v", fr.Spans)
	}
	if len(fr.RuntimeSamples) == 0 {
		t.Error("no runtime samples in record despite -sample-interval")
	}
	if n := len(fr.Logs); n == 0 || fr.Logs[n-1].Level != "ERROR" {
		t.Errorf("log tail does not end with the failure record: %+v", fr.Logs)
	}
	if fr.Health == nil {
		t.Error("health verdict missing from record")
	}
}

// TestPowerestBudgetBreach checks the -budget flag end to end: a 1ns
// latency budget on the exact-annotation phase breaches on a successful
// run, lands in the stats snapshot, and does not change the exit status
// (budgets degrade /healthz; they do not abort CLI runs).
func TestPowerestBudgetBreach(t *testing.T) {
	dir := t.TempDir()
	stats := filepath.Join(dir, "stats.json")
	var out, errOut bytes.Buffer
	err := Powerest([]string{
		"-circuit", "cm42a", "-budget", "sim.annotate-exact=1ns",
		"-stats", "-stats-out", stats,
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("budgeted run failed: %v\n%s", err, errOut.String())
	}
	data, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"breaches"`) ||
		!strings.Contains(string(data), `"kind": "latency"`) {
		t.Errorf("snapshot does not carry the budget breach:\n%s", data)
	}
}

func TestObsFlagsBadBudget(t *testing.T) {
	var out, errOut bytes.Buffer
	err := Powerest([]string{"-circuit", "cm42a", "-budget", "nonsense"}, &out, &errOut)
	if err == nil {
		t.Fatal("malformed -budget accepted")
	}
}

// TestPmapLogFlags smoke-tests the uniform logging satellite: -log-json -v
// must emit JSON records stamped with the run ID on stderr.
func TestPmapLogFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	err := Pmap([]string{
		"-circuit", "cm42a", "-method", "I", "-v", "-log-json", "-run-id", "logtest",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("pmap -log-json: %v\n%s", err, errOut.String())
	}
	text := errOut.String()
	if !strings.Contains(text, `"run_id":"logtest"`) {
		t.Errorf("JSON log records not stamped with run ID:\n%s", text)
	}
	if !strings.Contains(text, `"msg":"phase"`) {
		t.Errorf("no phase records in -v JSON log output:\n%s", text)
	}
}
