package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powermap/internal/obs"
)

func writeTempBlif(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.blif")
	text := `
.model clitest
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPmapList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"s208", "cm42a", "alu2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %s", want)
		}
	}
}

func TestPmapBlifFlow(t *testing.T) {
	path := writeTempBlif(t)
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-blif", path, "-method", "V", "-gates"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"circuit clitest", "mapped:", "gate list", "cell usage"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPmapWriteAndDot(t *testing.T) {
	path := writeTempBlif(t)
	dir := t.TempDir()
	mapped := filepath.Join(dir, "m.blif")
	dot := filepath.Join(dir, "m.dot")
	var out, errOut bytes.Buffer
	err := Pmap([]string{"-blif", path, "-method", "IV", "-write", mapped, "-dot", dot, "-recover", "-glitch", "200"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mapped)
	if err != nil || !strings.Contains(string(data), ".gate") {
		t.Errorf("mapped BLIF not written: %v", err)
	}
	data, err = os.ReadFile(dot)
	if err != nil || !strings.Contains(string(data), "digraph") {
		t.Errorf("dot not written: %v", err)
	}
	if !strings.Contains(out.String(), "drive recovery") || !strings.Contains(out.String(), "glitch-aware") {
		t.Errorf("missing recovery/glitch lines:\n%s", out.String())
	}
}

func TestPmapErrors(t *testing.T) {
	cases := [][]string{
		{},                                      // no input
		{"-circuit", "bogus"},                   // unknown benchmark
		{"-circuit", "cm42a", "-method", "VII"}, // bad method
		{"-circuit", "cm42a", "-style", "ecl"},  // bad style
		{"-blif", "/nonexistent", "-circuit", "cm42a"}, // both inputs
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := Pmap(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// Flag-parse errors and usage must go to the error writer, never the
// primary output (so piped reports and -stats - stay machine-readable).
func TestPmapUsageGoesToErrWriter(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-definitely-not-a-flag"}, &out, &errOut); err == nil {
		t.Fatal("bad flag accepted")
	}
	if out.Len() != 0 {
		t.Errorf("flag error leaked to primary output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "flag") {
		t.Errorf("error writer missing usage/diagnostic:\n%s", errOut.String())
	}
}

// TestPmapStatsJSON is the observability golden test: a full run with
// -v -stats must emit phase spans to the error writer and a JSON snapshot
// with the expected phase names and nonzero counters from every
// instrumented package (decomp, mapper, bdd, timing).
func TestPmapStatsJSON(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-circuit", "cm42a", "-method", "VI", "-v", "-stats", "-stats-out", statsPath}, &out, &errOut); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sn, err := obs.ParseSnapshot(f)
	if err != nil {
		t.Fatalf("stats file is not a valid snapshot: %v", err)
	}

	phases := map[string]bool{}
	for _, s := range sn.Spans {
		phases[s.Name] = true
		if s.DurationNs < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
	}
	for _, want := range []string{
		"quick-opt", "decompose", "map", "verify-netlist", "verify-source",
		"decomp.plan-trees", "decomp.slack-targets", "mapper.curves", "mapper.select",
		"timing.annotate",
	} {
		if !phases[want] {
			t.Errorf("snapshot missing phase span %q; have %v", want, phases)
		}
	}

	// At least one nonzero decomposition counter, and coverage from all
	// four instrumented packages.
	if sn.Counters["decomp.nodes_planned"] <= 0 {
		t.Errorf("decomp.nodes_planned = %d, want > 0", sn.Counters["decomp.nodes_planned"])
	}
	for _, prefix := range []string{"decomp.", "mapper.", "bdd.", "timing."} {
		found := false
		for name, v := range sn.Counters {
			if strings.HasPrefix(name, prefix) && v > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no nonzero counter with prefix %q in snapshot: %v", prefix, sn.Counters)
		}
	}

	// -v phase log lines arrive on the error writer via slog.
	for _, want := range []string{"phase", "decompose", "mapper.select"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("verbose log missing %q:\n%s", want, errOut.String())
		}
	}
	// The report itself stays clean on the primary writer.
	if strings.Contains(out.String(), "phase") {
		t.Errorf("phase logs leaked to primary output:\n%s", out.String())
	}
}

// -stats-out - writes the snapshot JSON to the primary writer after the
// report; with no -stats-out it defaults to the error writer.
func TestPmapStatsToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-circuit", "cm42a", "-stats", "-stats-out", "-"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(out.String(), "{")
	if idx < 0 {
		t.Fatalf("no JSON object in output:\n%s", out.String())
	}
	var sn obs.Snapshot
	if err := json.Unmarshal([]byte(out.String()[idx:]), &sn); err != nil {
		t.Fatalf("trailing JSON does not parse: %v", err)
	}
	if len(sn.Spans) == 0 {
		t.Error("snapshot has no spans")
	}
}

// With -stats and no -stats-out the snapshot goes to the error writer,
// keeping the primary report machine-readable.
func TestPmapStatsDefaultsToStderr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-circuit", "cm42a", "-stats"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), `"spans"`) {
		t.Errorf("snapshot leaked to primary output:\n%s", out.String())
	}
	idx := strings.Index(errOut.String(), "{")
	if idx < 0 {
		t.Fatalf("no JSON snapshot on the error writer:\n%s", errOut.String())
	}
	var sn obs.Snapshot
	if err := json.Unmarshal([]byte(errOut.String()[idx:]), &sn); err != nil {
		t.Fatalf("stderr snapshot does not parse: %v", err)
	}
	if len(sn.Spans) == 0 {
		t.Error("stderr snapshot has no spans")
	}
}

func TestPowerest(t *testing.T) {
	path := writeTempBlif(t)
	var out, errOut bytes.Buffer
	if err := Powerest([]string{"-blif", path, "-mc", "2000", "-nodes"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"total internal switching activity", "Monte-Carlo", "P(1)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := Powerest([]string{}, &out, &errOut); err == nil {
		t.Error("missing -blif accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	path := writeTempBlif(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-blif", path, "-cpuprofile", cpu, "-memprofile", mem}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestTablesFigure1(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Tables([]string{"-table", "figure1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SR = 2.146") || !strings.Contains(out.String(), "SR = 2.412") {
		t.Errorf("figure1 output wrong:\n%s", out.String())
	}
}

func TestTablesTable1(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Tables([]string{"-table", "1", "-patterns", "30"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "numbers of input") {
		t.Errorf("table 1 output wrong:\n%s", out.String())
	}
}

func TestTablesSubsetSummary(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	var out, errOut bytes.Buffer
	if err := Tables([]string{"-table", "summary", "-circuits", "cm42a,alu2", "-stats", "-stats-out", statsPath}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pd-map vs ad-map: power") {
		t.Errorf("summary output wrong:\n%s", out.String())
	}
	f, err := os.Open(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sn, err := obs.ParseSnapshot(f)
	if err != nil {
		t.Fatalf("tables stats snapshot invalid: %v", err)
	}
	// 2 circuits x 6 methods: the suite's metrics accumulate in one scope.
	if sn.Counters["decomp.nodes_planned"] <= 0 {
		t.Errorf("suite snapshot missing decomposition counters: %v", sn.Counters)
	}
}

func TestTablesUnknownCircuit(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Tables([]string{"-table", "2", "-circuits", "nope"}, &out, &errOut); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseMethod("iii"); err != nil {
		t.Error("case-insensitive method rejected")
	}
	if _, err := ParseStyle("DOMINO-P"); err != nil {
		t.Error("case-insensitive style rejected")
	}
}

// TestPmapTraceFile is the Perfetto acceptance test: -trace must produce
// a valid Chrome trace-event file with the pipeline's phase spans and the
// process/thread metadata Perfetto uses to name lanes.
func TestPmapTraceFile(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-circuit", "cm42a", "-method", "VI", "-trace", tracePath}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int64          `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var processNamed bool
	phases := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ts == nil || *ev.Ts < 0 {
			t.Fatalf("event %q missing or negative ts", ev.Name)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				processNamed = true
			}
		case "X":
			if ev.Dur < 0 {
				t.Errorf("span %q has negative dur", ev.Name)
			}
			phases[ev.Name] = true
		case "i":
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if !processNamed {
		t.Error("trace missing process_name metadata")
	}
	for _, want := range []string{"quick-opt", "decompose", "map", "mapper.curves"} {
		if !phases[want] {
			t.Errorf("trace missing phase %q; have %v", want, phases)
		}
	}
}
