package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempBlif(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.blif")
	text := `
.model clitest
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPmapList(t *testing.T) {
	var out bytes.Buffer
	if err := Pmap([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"s208", "cm42a", "alu2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %s", want)
		}
	}
}

func TestPmapBlifFlow(t *testing.T) {
	path := writeTempBlif(t)
	var out bytes.Buffer
	if err := Pmap([]string{"-blif", path, "-method", "V", "-gates"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"circuit clitest", "mapped:", "gate list", "cell usage"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPmapWriteAndDot(t *testing.T) {
	path := writeTempBlif(t)
	dir := t.TempDir()
	mapped := filepath.Join(dir, "m.blif")
	dot := filepath.Join(dir, "m.dot")
	var out bytes.Buffer
	err := Pmap([]string{"-blif", path, "-method", "IV", "-write", mapped, "-dot", dot, "-recover", "-glitch", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mapped)
	if err != nil || !strings.Contains(string(data), ".gate") {
		t.Errorf("mapped BLIF not written: %v", err)
	}
	data, err = os.ReadFile(dot)
	if err != nil || !strings.Contains(string(data), "digraph") {
		t.Errorf("dot not written: %v", err)
	}
	if !strings.Contains(out.String(), "drive recovery") || !strings.Contains(out.String(), "glitch-aware") {
		t.Errorf("missing recovery/glitch lines:\n%s", out.String())
	}
}

func TestPmapErrors(t *testing.T) {
	cases := [][]string{
		{},                                      // no input
		{"-circuit", "bogus"},                   // unknown benchmark
		{"-circuit", "cm42a", "-method", "VII"}, // bad method
		{"-circuit", "cm42a", "-style", "ecl"},  // bad style
		{"-blif", "/nonexistent", "-circuit", "cm42a"}, // both inputs
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := Pmap(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPowerest(t *testing.T) {
	path := writeTempBlif(t)
	var out bytes.Buffer
	if err := Powerest([]string{"-blif", path, "-mc", "2000", "-nodes"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"total internal switching activity", "Monte-Carlo", "P(1)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := Powerest([]string{}, &out); err == nil {
		t.Error("missing -blif accepted")
	}
}

func TestTablesFigure1(t *testing.T) {
	var out bytes.Buffer
	if err := Tables([]string{"-table", "figure1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SR = 2.146") || !strings.Contains(out.String(), "SR = 2.412") {
		t.Errorf("figure1 output wrong:\n%s", out.String())
	}
}

func TestTablesTable1(t *testing.T) {
	var out bytes.Buffer
	if err := Tables([]string{"-table", "1", "-patterns", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "numbers of input") {
		t.Errorf("table 1 output wrong:\n%s", out.String())
	}
}

func TestTablesSubsetSummary(t *testing.T) {
	var out bytes.Buffer
	if err := Tables([]string{"-table", "summary", "-circuits", "cm42a,alu2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pd-map vs ad-map: power") {
		t.Errorf("summary output wrong:\n%s", out.String())
	}
}

func TestTablesUnknownCircuit(t *testing.T) {
	var out bytes.Buffer
	if err := Tables([]string{"-table", "2", "-circuits", "nope"}, &out); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseMethod("iii"); err != nil {
		t.Error("case-insensitive method rejected")
	}
	if _, err := ParseStyle("DOMINO-P"); err != nil {
		t.Error("case-insensitive style rejected")
	}
}
