package cli

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"powermap/internal/journal"
)

// journalPair synthesizes one suite circuit under two methods with pmap
// -journal and returns the two journal paths.
func journalPair(t *testing.T, circuit, methodA, methodB string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	for _, run := range []struct{ method, path string }{{methodA, a}, {methodB, b}} {
		var out, errOut bytes.Buffer
		args := []string{"-circuit", circuit, "-method", run.method, "-journal", run.path}
		if err := Pmap(args, &out, &errOut); err != nil {
			t.Fatalf("pmap -method %s: %v\n%s", run.method, err, errOut.String())
		}
		if !strings.Contains(out.String(), "decision journal written to") {
			t.Errorf("pmap -method %s did not announce the journal:\n%s", run.method, out.String())
		}
	}
	return a, b
}

// TestPexplainDiffAcceptance is the tentpole acceptance check: diffing the
// conventional (Method I) and minpower (Method II) journals of a suite
// circuit must report per-gate deltas that sum to the report-level power
// delta within 1e-9, and each run's attribution must equal its own report
// total.
func TestPexplainDiffAcceptance(t *testing.T) {
	a, b := journalPair(t, "x2", "I", "II")

	for _, path := range []string{a, b} {
		run, err := journal.ReadRunFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if run.Report == nil {
			t.Fatalf("%s: no report event", path)
		}
		if run.Report.AttributedUW != run.Report.PowerUW {
			t.Errorf("%s: attributed %.12f != report %.12f", path, run.Report.AttributedUW, run.Report.PowerUW)
		}
		if run.Counts[journal.TypeMapSite] == 0 || run.Counts[journal.TypeDecompNode] == 0 {
			t.Errorf("%s: missing provenance events: %v", path, run.Counts)
		}
	}

	var out, errOut bytes.Buffer
	if err := Pexplain([]string{"diff", "-json", a, b}, &out, &errOut); err != nil {
		t.Fatalf("pexplain diff: %v\n%s", err, errOut.String())
	}
	var d journal.Diff
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("diff JSON: %v\n%s", err, out.String())
	}
	if d.PowerA <= 0 || d.PowerB <= 0 {
		t.Fatalf("diff is missing report totals: %+v", d)
	}
	if got := math.Abs(d.PowerDelta - d.GateDeltaSum); got > 1e-9 {
		t.Errorf("per-gate deltas sum to %.12f but report delta is %.12f (|residue| %.3g > 1e-9)",
			d.GateDeltaSum, d.PowerDelta, got)
	}
	if len(d.Gates) == 0 {
		t.Error("diff reports no per-gate rows")
	}
	if d.A.Method != "I" || d.B.Method != "II" {
		t.Errorf("diff headers: A method %q, B method %q", d.A.Method, d.B.Method)
	}

	// The table form renders the same diff with the residue spelled out.
	out.Reset()
	if err := Pexplain([]string{"diff", a, b}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"per-gate deltas sum to", "signal", "power_uw"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff table missing %q:\n%s", want, out.String())
		}
	}
}

func TestPexplainTopAndWhy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	var out, errOut bytes.Buffer
	if err := Pmap([]string{"-circuit", "x2", "-method", "V", "-journal", path, "-run-id", "test-run-7"}, &out, &errOut); err != nil {
		t.Fatalf("pmap: %v\n%s", err, errOut.String())
	}
	run, err := journal.ReadRunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if run.Header.RunID != "test-run-7" {
		t.Errorf("journal run_id = %q, want the -run-id value", run.Header.RunID)
	}
	if len(run.Sites) == 0 {
		t.Fatal("run has no map.site events")
	}

	out.Reset()
	if err := Pexplain([]string{"top", "-n", "5", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run test-run-7", "total", "signal", "power_uw"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("top output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := Pexplain([]string{"top", "-json", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var top struct {
		Gates []journal.GatePower `json:"gates"`
	}
	if err := json.Unmarshal(out.Bytes(), &top); err != nil {
		t.Fatalf("top JSON: %v", err)
	}
	if len(top.Gates) == 0 {
		t.Error("top -json carries no gates")
	}
	for i := 1; i < len(top.Gates); i++ {
		if top.Gates[i].PowerUW > top.Gates[i-1].PowerUW {
			t.Errorf("top rows not sorted: %f before %f", top.Gates[i-1].PowerUW, top.Gates[i].PowerUW)
		}
	}

	// why must chain all three provenance layers for a gate rooted at an
	// original network node (subject-graph-internal sites lack the
	// decomposition layer, by design).
	gate := ""
	for _, s := range run.Sites {
		if run.DecompNodeByName(s.Node) != nil {
			gate = s.Node
			break
		}
	}
	if gate == "" {
		t.Fatal("no mapped gate carries decomposition provenance")
	}
	out.Reset()
	if err := Pexplain([]string{"why", "-gate", gate, path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"power:", "mapping:", "selected because", "decomposition:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("why output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := Pexplain([]string{"why", "-gate", gate, "-json", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var why struct {
		Gate   *journal.GatePower  `json:"gate"`
		Site   *journal.MapSite    `json:"site"`
		Decomp *journal.DecompNode `json:"decomp"`
	}
	if err := json.Unmarshal(out.Bytes(), &why); err != nil {
		t.Fatalf("why JSON: %v", err)
	}
	if why.Gate == nil || why.Site == nil || why.Decomp == nil {
		t.Errorf("why -json misses a layer: gate=%v site=%v decomp=%v", why.Gate != nil, why.Site != nil, why.Decomp != nil)
	}

	// Unknown gates fail loudly instead of printing an empty report.
	if err := Pexplain([]string{"why", "-gate", "no-such-signal", path}, &out, &errOut); err == nil {
		t.Error("why accepted an unknown gate")
	}
}

func TestPexplainUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := Pexplain(nil, &out, &errOut); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := Pexplain([]string{"bogus"}, &out, &errOut); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := Pexplain([]string{"diff", "only-one.jsonl"}, &out, &errOut); err == nil {
		t.Error("diff with one file accepted")
	}
	if err := Pexplain([]string{"why", "run.jsonl"}, &out, &errOut); err == nil {
		t.Error("why without -gate accepted")
	}
	out.Reset()
	if err := Pexplain([]string{"help"}, &out, &errOut); err != nil || !strings.Contains(out.String(), "pexplain top") {
		t.Errorf("help: err=%v out=%q", err, out.String())
	}
}
