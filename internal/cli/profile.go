package cli

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"

	"powermap/internal/obs"
)

// startProfiles starts a CPU profile and/or arranges a heap profile per
// the -cpuprofile/-memprofile flags. The returned stop function must be
// called exactly once (it finalizes both profiles); it is non-nil even
// when both paths are empty.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // publish up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// newScope builds the command's observability scope from the -v/-stats
// flags: nil when both are off (the zero-cost path), logging phase spans
// to errOut when verbose.
func newScope(verbose bool, statsPath string, errOut io.Writer) *obs.Scope {
	if !verbose && statsPath == "" {
		return nil
	}
	cfg := obs.Config{}
	if verbose {
		cfg.Logger = slog.New(slog.NewTextHandler(errOut, nil))
	}
	return obs.New(cfg)
}

// writeStats exports the scope's snapshot as JSON to path ("-" means the
// command's primary output writer).
func writeStats(sc *obs.Scope, path string, out io.Writer) error {
	if sc == nil || path == "" {
		return nil
	}
	sn := sc.Snapshot()
	if path == "-" {
		return sn.WriteJSON(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sn.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
