package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"powermap/internal/journal"
	"powermap/internal/obs"
	"powermap/internal/serve"
)

// startProfiles starts a CPU profile and/or arranges a heap profile per
// the -cpuprofile/-memprofile flags. The returned stop function must be
// called exactly once (it finalizes both profiles); it is non-nil even
// when both paths are empty.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // publish up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// telemetry bundles the observability flags shared by every command
// (-v, -stats/-stats-out, -trace, -serve, -max-spans, -run-id, plus the
// obsFlags set: -flight, -sample-interval, -budget, -log-level, -log-json)
// and the scope they configure. Register with addTelemetryFlags, build the
// scope once with scope(), and call finish() after the run to route the
// exports, stop the runtime sampler, and unhook the SIGQUIT dumper.
type telemetry struct {
	verbose  *bool
	stats    *bool
	statsOut *string
	trace    *string
	serve    *string
	maxSpans *int
	runID    *string
	obsf     *obsFlags
	sc       *obs.Scope
	logger   *slog.Logger
	sampler  *obs.RuntimeSampler
	stopSigq func()
	built    bool
}

// addTelemetryFlags registers the shared observability flags on fs.
func addTelemetryFlags(fs *flag.FlagSet) *telemetry {
	t := &telemetry{}
	t.verbose = fs.Bool("v", false, "log phase spans to stderr as they complete")
	t.stats = fs.Bool("stats", false, "export a JSON metrics/trace snapshot after the run")
	t.statsOut = fs.String("stats-out", "", "snapshot destination: a file, \"-\" for stdout (default stderr)")
	t.trace = fs.String("trace", "", "write a Chrome/Perfetto trace-event JSON file (open in ui.perfetto.dev)")
	t.serve = fs.String("serve", "", "after the run, serve /metrics, /snapshot, /trace, /healthz, /readyz, /debug/flight and /debug/pprof on this address (e.g. :9090) until interrupted")
	t.maxSpans = fs.Int("max-spans", 0, "completed-span ring buffer size (0 = default 16384, negative = unbounded)")
	t.runID = fs.String("run-id", "", "run identifier stamped into snapshots, traces and decision journals (default: generated)")
	t.obsf = addObsFlags(fs)
	return t
}

// resolveRunID returns the -run-id value, generating (and pinning) a fresh
// one on first use when the flag was left empty — so the journal headers,
// the stats snapshot and the trace metadata of one invocation all carry
// the same ID.
func (t *telemetry) resolveRunID() string {
	if *t.runID == "" {
		*t.runID = journal.NewRunID()
	}
	return *t.runID
}

// scope builds (once) the scope implied by the flags: nil when every
// telemetry flag is off, so the pipeline keeps its zero-cost path. A live
// scope gets the full continuous-observability wiring: budgets installed,
// flight auto-dump armed, the runtime sampler started, the SIGQUIT dumper
// hooked, and the shared -log-level/-log-json logging chain (teed into the
// flight recorder) installed as the span sink when -v is on.
func (t *telemetry) scope(errOut io.Writer) *obs.Scope {
	if t.built {
		return t.sc
	}
	t.built = true
	if !*t.verbose && !*t.stats && *t.trace == "" && *t.serve == "" && !t.obsf.enabled() {
		return nil
	}
	runID := t.resolveRunID()
	t.sc = obs.New(obs.Config{MaxSpans: *t.maxSpans, RunID: runID})
	t.sampler = t.obsf.apply(t.sc)
	t.logger = t.obsf.buildLogger(t.sc, errOut, runID)
	if *t.verbose {
		t.sc.SetSpanLogger(t.logger)
	}
	if *t.obsf.flight != "" {
		t.stopSigq = notifyFlightOnQuit(t.sc, *t.obsf.flight, errOut)
	}
	return t.sc
}

// finish routes the post-run exports: the -stats snapshot to -stats-out
// (stderr by default, "-" for the primary output writer), the -trace file,
// and finally the blocking -serve endpoint. The runtime sampler keeps
// running while -serve is live (a scraping Prometheus should see fresh
// samples) and is stopped otherwise; the SIGQUIT dumper is unhooked either
// way once serving ends.
func (t *telemetry) finish(out, errOut io.Writer) error {
	if t.sc == nil {
		return nil
	}
	if *t.serve == "" {
		t.sampler.Stop()
		t.sampler = nil
		if t.stopSigq != nil {
			t.stopSigq()
			t.stopSigq = nil
		}
	}
	sn := t.sc.Snapshot()
	if *t.stats {
		switch *t.statsOut {
		case "":
			if err := sn.WriteJSON(errOut); err != nil {
				return err
			}
		case "-":
			if err := sn.WriteJSON(out); err != nil {
				return err
			}
		default:
			if err := writeTo(*t.statsOut, sn.WriteJSON); err != nil {
				return err
			}
		}
	}
	if *t.trace != "" {
		if err := writeTo(*t.trace, sn.WriteTraceEvents); err != nil {
			return err
		}
	}
	if *t.serve != "" {
		return serveTelemetry(*t.serve, t.sc, errOut)
	}
	return nil
}

// writeTo writes one export to a freshly created file.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serveTelemetry keeps the process alive serving the scope's live
// telemetry endpoints, so the snapshot can be scraped and the heap/CPU
// profiled after (or during, when started from another goroutine) a run.
// The server carries the shared hardening (header/idle timeouts) and
// SIGINT/SIGTERM triggers a graceful shutdown: open scrapes finish instead
// of being cut mid-response by the bare http.Serve this replaced.
func serveTelemetry(addr string, sc *obs.Scope, errOut io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(errOut, "serving /metrics, /snapshot, /trace, /healthz, /readyz, /debug/flight and /debug/pprof on http://%s (interrupt to stop)\n", ln.Addr())
	return serve.ListenAndServe(ctx, ln, sc.Handler(), serve.HTTPOptions{})
}
