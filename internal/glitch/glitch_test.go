package glitch

import (
	"context"
	"math"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/decomp"
	"powermap/internal/genlib"
	"powermap/internal/huffman"
	"powermap/internal/mapper"
	"powermap/internal/network"
	"powermap/internal/power"
)

const testBlif = `
.model simtest
.inputs a b c d
.outputs y z
.names a b t1
11 1
.names t1 c t2
1- 1
-1 1
.names t2 d y
10 1
01 1
.names a c z
11 1
.end
`

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// mapTest builds a mapped netlist for glitch tests.
func mapTest(t *testing.T) (*mapper.Netlist, *network.Network) {
	t.Helper()
	nw := mustParse(t, testBlif)
	d, err := decomp.Decompose(context.Background(), nw, decomp.Options{Strategy: decomp.MinPower, Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mapper.Map(context.Background(), d.Network, d.Model, mapper.Options{
		Objective: mapper.PowerDelay, Library: genlib.Lib2(), Relax: mapper.Float64(0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return nl, d.Network
}

func TestGlitchBoundsZeroDelay(t *testing.T) {
	nl, sub := mapTest(t)
	rep, err := Simulate(nl, sub, nil, 3000, 11, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Per signal, unit-delay transitions on the same vectors must be at
	// least the zero-delay toggles.
	for s, tr := range rep.Transitions {
		if tr+1e-12 < rep.ZeroDelay[s] {
			t.Errorf("signal %s: transitions %.4f < zero-delay toggles %.4f",
				s.Name, tr, rep.ZeroDelay[s])
		}
	}
	if rep.PowerUW+1e-9 < rep.ZeroDelayPowerUW {
		t.Errorf("glitch power %.3f below zero-delay power %.3f",
			rep.PowerUW, rep.ZeroDelayPowerUW)
	}
}

func TestGlitchZeroDelayMatchesAnalytic(t *testing.T) {
	// The simulated zero-delay power over the mapped loads must approach
	// the netlist's analytic report (exact BDD activities × same loads).
	nl, sub := mapTest(t)
	rep, err := Simulate(nl, sub, nil, 30000, 13, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	analytic := nl.Report.PowerUW
	if math.Abs(rep.ZeroDelayPowerUW-analytic) > 0.08*analytic {
		t.Errorf("simulated zero-delay power %.3f vs analytic %.3f (>8%% apart)",
			rep.ZeroDelayPowerUW, analytic)
	}
}

func TestGlitchValidation(t *testing.T) {
	nl, sub := mapTest(t)
	if _, err := Simulate(nl, sub, nil, 0, 1, power.Default()); err == nil {
		t.Error("zero vectors accepted")
	}
}

func TestXorTreeGlitches(t *testing.T) {
	// A cascade of XORs with skewed arrival paths glitches under unit
	// delay: expect strictly more transitions than zero-delay toggles in
	// aggregate.
	text := `
.model xorchain
.inputs a b c d e
.outputs y
.names a b x1
10 1
01 1
.names x1 c x2
10 1
01 1
.names x2 d x3
10 1
01 1
.names x3 e y
10 1
01 1
.end
`
	nw := mustParse(t, text)
	d, err := decomp.Decompose(context.Background(), nw, decomp.Options{Strategy: decomp.MinPower, Style: huffman.Static})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := mapper.Map(context.Background(), d.Network, d.Model, mapper.Options{
		Objective: mapper.AreaDelay, Library: genlib.Lib2(), Relax: mapper.Float64(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(nl, d.Network, nil, 4000, 3, power.Default())
	if err != nil {
		t.Fatal(err)
	}
	sumT, sumZ := 0.0, 0.0
	for s := range rep.Transitions {
		sumT += rep.Transitions[s]
		sumZ += rep.ZeroDelay[s]
	}
	if sumT <= sumZ {
		t.Errorf("xor cascade shows no glitching: %.3f vs %.3f", sumT, sumZ)
	}
}
