// Package glitch implements unit-delay glitch-aware transition counting on
// mapped netlists, in the spirit of the general-delay estimator of Ghosh
// et al. that the paper cites: unequal path delays cause hazard
// transitions that the zero-delay model ignores, so glitch-aware power is
// an upper bound on (and usually strictly above) the zero-delay estimate.
//
// It lives apart from internal/sim (the zero-delay sampling engines) so
// that sim stays free of mapper dependencies: glitch counting needs the
// mapped gates and their loads, activity sampling only the Boolean
// network.
package glitch

import (
	"fmt"
	"math/rand"

	"powermap/internal/mapper"
	"powermap/internal/network"
	"powermap/internal/power"
)

// Report is the outcome of a glitch-aware netlist simulation.
type Report struct {
	// Transitions counts per-cycle transitions (including hazards) at
	// every mapped signal.
	Transitions map[*network.Node]float64
	// ZeroDelay counts per-cycle final-value toggles at the same signals
	// over the same vectors, for direct comparison.
	ZeroDelay map[*network.Node]float64
	// PowerUW and ZeroDelayPowerUW price the two activity sets with the
	// actual mapped loads (Equation 1).
	PowerUW          float64
	ZeroDelayPowerUW float64
	Vectors          int
}

// Simulate runs the mapped netlist under a unit-delay model: after each
// input change, gate outputs update once per time step from their inputs'
// previous-step values, and every intermediate change counts as a
// transition. Transitions at a signal are therefore ≥ its zero-delay
// toggles on the same vectors.
func Simulate(nl *mapper.Netlist, sub *network.Network, piProb map[string]float64, vectors int, seed int64, env power.Environment) (*Report, error) {
	if vectors <= 0 {
		return nil, fmt.Errorf("glitch: need a positive vector count, got %d", vectors)
	}
	r := rand.New(rand.NewSource(seed))
	// Collect the mapped signals: gate roots + their source inputs.
	var gates []*mapper.Gate
	signals := map[*network.Node]bool{}
	for _, g := range nl.Gates {
		gates = append(gates, g)
		signals[g.Root] = true
		for _, in := range g.Inputs {
			signals[in] = true
		}
	}
	value := map[*network.Node]bool{}
	trans := map[*network.Node]float64{}
	zero := map[*network.Node]float64{}

	evalGate := func(g *mapper.Gate, val map[*network.Node]bool) bool {
		assign := make(map[string]bool, len(g.Inputs))
		for pin, in := range g.Inputs {
			assign[g.Cell.Pins[pin].Name] = val[in]
		}
		return g.Cell.Expr.Eval(assign)
	}
	drawPIs := func() {
		for _, pi := range sub.PIs {
			p, ok := piProb[pi.Name]
			if !ok {
				p = 0.5
			}
			value[pi] = r.Float64() < p
		}
	}
	settle := func(count bool) {
		// Synchronous unit-delay relaxation to a fixed point. The netlist
		// is acyclic, so at most depth(netlist) steps are needed.
		for step := 0; step < len(gates)+1; step++ {
			next := make(map[*network.Node]bool, len(gates))
			changed := false
			for _, g := range gates {
				v := evalGate(g, value)
				next[g.Root] = v
				if v != value[g.Root] {
					changed = true
				}
			}
			if !changed {
				break
			}
			for root, v := range next {
				if v != value[root] {
					if count {
						trans[root]++
					}
					value[root] = v
				}
			}
		}
	}
	drawPIs()
	settle(false) // initialize without counting
	prevFinal := map[*network.Node]bool{}
	for s := range signals {
		prevFinal[s] = value[s]
	}
	for v := 0; v < vectors; v++ {
		// New input vector: PIs toggle instantly and count as transitions.
		for _, pi := range sub.PIs {
			old := value[pi]
			p, ok := piProb[pi.Name]
			if !ok {
				p = 0.5
			}
			nv := r.Float64() < p
			value[pi] = nv
			if nv != old && signals[pi] {
				trans[pi]++
			}
		}
		settle(true)
		for s := range signals {
			if value[s] != prevFinal[s] {
				zero[s]++
			}
			prevFinal[s] = value[s]
		}
	}
	rep := &Report{
		Transitions: make(map[*network.Node]float64, len(signals)),
		ZeroDelay:   make(map[*network.Node]float64, len(signals)),
		Vectors:     vectors,
	}
	for s := range signals {
		rep.Transitions[s] = trans[s] / float64(vectors)
		rep.ZeroDelay[s] = zero[s] / float64(vectors)
		load := nl.Load(s)
		rep.PowerUW += env.GatePowerUW(load, rep.Transitions[s])
		rep.ZeroDelayPowerUW += env.GatePowerUW(load, rep.ZeroDelay[s])
	}
	return rep, nil
}
