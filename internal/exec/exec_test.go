package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"powermap/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS = %d", n, got, want)
		}
	}
}

// Results must land in item order for every worker count, and every item
// must run exactly once.
func TestMapDeterministicOrder(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 3, 8, 64} {
		var ran atomic.Int64
		out, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != n {
			t.Errorf("workers=%d: ran %d items, want %d", workers, ran.Load(), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// The lowest failing index must win regardless of scheduling, matching
// what a sequential run would report.
func TestForEachFirstErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
			if i == 7 || i == 30 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7 failed" {
			t.Errorf("workers=%d: err = %v, want item 7's error", workers, err)
		}
	}
}

// After the first error, unclaimed items must be skipped (cancellation).
func TestForEachCancelsSiblings(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 1000 {
		t.Error("no items were skipped after the first error")
	}
}

func TestForEachRespectsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, workers, 10, func(context.Context, int) error { return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "item 3") || !strings.Contains(msg, "kaboom") {
					t.Errorf("workers=%d: panic value %v missing item index or cause", workers, r)
				}
			}()
			_ = ForEach(context.Background(), workers, 10, func(_ context.Context, i int) error {
				if i == 3 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

// A worker-count of 1 must not spawn goroutines and must stop at the
// first error without touching later items, like a plain loop.
func TestSequentialPathStopsAtError(t *testing.T) {
	var ran int
	err := ForEach(context.Background(), 1, 10, func(_ context.Context, i int) error {
		ran++
		if i == 4 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 5 {
		t.Errorf("ran = %d, err = %v; want 5 items and an error", ran, err)
	}
}

func TestEmptyInput(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Errorf("n=0: %v", err)
	}
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("Map n=0: out=%v err=%v", out, err)
	}
}

// TestWorkerTelemetry checks the pool's instrumentation contract: with a
// scope and a label on the context each worker records one span on its own
// virtual track, the label is consumed so nested pools stay silent, and
// the per-worker item counts sum to the task count.
func TestWorkerTelemetry(t *testing.T) {
	sc := obs.New(obs.Config{})
	ctx := obs.WithScope(context.Background(), sc)
	ctx = WithLabel(ctx, "pool")
	const n = 32
	err := ForEach(ctx, 4, n, func(ctx context.Context, i int) error {
		// A nested unlabeled pool must not record worker spans.
		return ForEach(ctx, 2, 2, func(context.Context, int) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	items := 0
	tracks := map[int64]bool{}
	for _, sp := range sc.Spans() {
		if sp.Name != "pool.worker" {
			t.Fatalf("unexpected span %q (nested pool leaked telemetry?)", sp.Name)
		}
		if sp.Track == 0 {
			t.Error("worker span on the coordinator track")
		}
		tracks[sp.Track] = true
		iv, ok := sp.Attrs["items"].(int64)
		if !ok {
			t.Fatalf("worker span missing items attr: %#v", sp.Attrs)
		}
		items += int(iv)
	}
	if spans := len(sc.Spans()); spans != 4 {
		t.Errorf("got %d worker spans, want 4", spans)
	}
	if len(tracks) != 4 {
		t.Errorf("workers shared tracks: %v", tracks)
	}
	if items != n {
		t.Errorf("worker item counts sum to %d, want %d", items, n)
	}
	names := sc.TrackNames()
	if len(names) != 4 {
		t.Errorf("track names = %v", names)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "pool/w") {
			t.Errorf("track name %q does not follow label/wN", name)
		}
	}
}

// TestWorkerTelemetryDisabled pins the zero-overhead contract: without a
// label (or without a scope) the pool records nothing.
func TestWorkerTelemetryDisabled(t *testing.T) {
	sc := obs.New(obs.Config{})
	ctx := obs.WithScope(context.Background(), sc)
	if err := ForEach(ctx, 4, 8, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if spans := sc.Spans(); len(spans) != 0 {
		t.Errorf("unlabeled pool recorded spans: %v", spans)
	}
	// Label but nil scope: no panic, no telemetry.
	ctx = WithLabel(context.Background(), "pool")
	if err := ForEach(ctx, 4, 8, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
