// Package exec is the pipeline's execution layer: a bounded worker pool
// with deterministic, index-ordered result collection, first-error
// cancellation, and panic capture. Every parallel phase of the flow
// (per-node decomposition planning, per-level curve construction in the
// mapper, per-(circuit, method) fan-out in the experiment harness) runs
// through this package, so the concurrency rules live in one place:
//
//   - Work items are claimed in index order and each item is computed by
//     exactly one goroutine; results land in a slice indexed by item, so
//     output order never depends on scheduling.
//   - The first failure (lowest item index) wins: its error is returned
//     and the shared context is cancelled so in-flight siblings can stop
//     early. Items not yet claimed are skipped.
//   - A panic in a worker is captured and re-raised in the caller's
//     goroutine (lowest index first), preserving the sequential contract
//     that a panicking item takes the whole call down.
//   - workers <= 1 (or n <= 1) runs every item inline on the calling
//     goroutine with no pool at all, byte-for-byte reproducing the
//     sequential behavior.
//
// Determinism contract: callers must make each item's computation a pure
// function of its inputs (no shared mutable state, no map-iteration-order
// dependence). Under that contract the results are identical for every
// worker count.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"powermap/internal/obs"
)

// Workers resolves a Workers option: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

type labelKey struct{}

// WithLabel names the next pool invocation run under ctx for telemetry:
// when the context also carries an obs scope (obs.WithScope), each worker
// goroutine records a "<label>.worker" span on its own virtual track
// (named "<label>/w<i>"), and items run with that track on their context
// so nested phase spans nest per worker. The label is consumed by the
// pool: items run with it cleared, so unlabeled nested pools (e.g.
// per-match fan-out inside a level worker) stay silent instead of fighting
// over the worker tracks. An empty label disables worker telemetry.
func WithLabel(ctx context.Context, label string) context.Context {
	return context.WithValue(ctx, labelKey{}, label)
}

func labelFrom(ctx context.Context) string {
	l, _ := ctx.Value(labelKey{}).(string)
	return l
}

// capturedPanic carries a worker panic to the calling goroutine.
type capturedPanic struct {
	value any
	stack []byte
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and returns the error of the lowest failing index, or the
// context's error if it was cancelled before all items ran. On the first
// failure the context passed to still-running items is cancelled.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Inline sequential path: exact legacy behavior, zero goroutines.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next   atomic.Int64 // next unclaimed item
		wg     sync.WaitGroup
		mu     sync.Mutex
		errs   = map[int]error{}
		panics = map[int]capturedPanic{}
	)
	// Worker telemetry: with a scope and a pool label on the context, each
	// worker goroutine gets its own virtual track (stable across repeated
	// pool invocations with the same label) and records one span covering
	// its claim loop, so exporters can attribute pool time per worker. The
	// label is consumed here — items see it cleared.
	sc := obs.ScopeFrom(ctx)
	label := labelFrom(ctx)
	if label != "" {
		wctx = WithLabel(wctx, "")
	}
	// exec.inflight tracks concurrently-running pool workers across all
	// labeled pools; the health layer's runtime sampler picks it up like any
	// other gauge, so a hung pool is visible as a flat non-zero track.
	inflight := sc.Gauge("exec.inflight")
	record := func(i int, err error) {
		mu.Lock()
		errs[i] = err
		mu.Unlock()
		cancel()
	}
	worker := func(w int) {
		defer wg.Done()
		inflight.Add(1)
		defer inflight.Add(-1)
		ictx := wctx
		var span *obs.Span
		if sc.Enabled() && label != "" {
			tid := sc.TrackFor(fmt.Sprintf("%s/w%d", label, w))
			ictx = obs.WithTrack(wctx, tid)
			span = sc.StartCtx(ictx, label+".worker")
			span.SetAttr("worker", w)
		}
		items := 0
		defer func() {
			span.SetAttr("items", items)
			span.End()
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if wctx.Err() != nil {
				return
			}
			items++
			func() {
				defer func() {
					if r := recover(); r != nil {
						stack := make([]byte, 64<<10)
						stack = stack[:runtime.Stack(stack, false)]
						mu.Lock()
						panics[i] = capturedPanic{value: r, stack: stack}
						mu.Unlock()
						cancel()
					}
				}()
				if err := fn(ictx, i); err != nil {
					record(i, err)
				}
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker(w)
	}
	wg.Wait()

	// Re-raise the lowest-index panic unless a lower index failed first.
	panicIdx, errIdx := lowestKey(panics), lowestKey(errs)
	if panicIdx >= 0 && (errIdx < 0 || panicIdx < errIdx) {
		p := panics[panicIdx]
		panic(fmt.Sprintf("exec: worker panic on item %d: %v\n\nworker stack:\n%s", panicIdx, p.value, p.stack))
	}
	if errIdx >= 0 {
		// Prefer the lowest-index intrinsic failure over cancellation noise
		// from siblings that observed the first error's cancel: the error
		// identity then matches what a sequential run would report.
		for i := errIdx; ; i++ {
			err, ok := errs[i]
			if !ok {
				continue
			}
			if !errors.Is(err, context.Canceled) || ctx.Err() != nil {
				return err
			}
			if i >= n-1 {
				break
			}
		}
		return errs[errIdx]
	}
	return ctx.Err()
}

func lowestKey[V any](m map[int]V) int {
	best := -1
	for k := range m {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

// Map runs fn over [0, n) like ForEach and collects the results in item
// order. On error the partial slice is discarded and only the error (per
// ForEach's lowest-index rule) is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
