package genlib

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PatKind is a pattern node kind: the subject graph and patterns share the
// NAND2/INV basis of the paper's technology decomposition.
type PatKind int

const (
	// PatLeaf matches any subject node and binds it to a cell pin.
	PatLeaf PatKind = iota
	// PatInv matches an inverter subject node.
	PatInv
	// PatNand matches a 2-input NAND subject node.
	PatNand
)

// Pattern is a NAND2/INV tree representing one structural decomposition of
// a cell's function. Leaves carry the index of the cell pin bound there.
type Pattern struct {
	Kind PatKind
	L, R *Pattern // L only for PatInv; L and R for PatNand
	Pin  int      // for PatLeaf
}

// Size returns the number of NAND/INV nodes in the pattern. A bare-leaf
// pattern (a wire) has size 0.
func (p *Pattern) Size() int {
	switch p.Kind {
	case PatLeaf:
		return 0
	case PatInv:
		return 1 + p.L.Size()
	default:
		return 1 + p.L.Size() + p.R.Size()
	}
}

// Depth returns the NAND/INV depth of the pattern.
func (p *Pattern) Depth() int {
	switch p.Kind {
	case PatLeaf:
		return 0
	case PatInv:
		return 1 + p.L.Depth()
	default:
		d := p.L.Depth()
		if r := p.R.Depth(); r > d {
			d = r
		}
		return 1 + d
	}
}

// canon returns a canonical string with commutative NAND children ordered,
// used to deduplicate patterns.
func (p *Pattern) canon() string {
	switch p.Kind {
	case PatLeaf:
		return "p" + strconv.Itoa(p.Pin)
	case PatInv:
		return "i(" + p.L.canon() + ")"
	default:
		a, b := p.L.canon(), p.R.canon()
		if b < a {
			a, b = b, a
		}
		return "n(" + a + "," + b + ")"
	}
}

// String renders the pattern for diagnostics.
func (p *Pattern) String() string { return p.canon() }

// maxPatternInputs bounds the cells for which all structural decompositions
// are enumerated; (2k-3)!! grows quickly beyond this.
const maxPatternInputs = 6

// compilePatterns converts the cell expression into all non-isomorphic
// NAND2/INV pattern trees (associativity variants of k-ary AND/OR are
// enumerated; commutativity is handled by the matcher).
func (c *Cell) compilePatterns() error {
	if n := len(c.Expr.Vars()); n > maxPatternInputs {
		return fmt.Errorf("cell has %d inputs; pattern enumeration capped at %d", n, maxPatternInputs)
	}
	pinIndex := make(map[string]int, len(c.Pins))
	for i := range c.Pins {
		pinIndex[c.Pins[i].Name] = i
	}
	pats, err := patternsOf(c.Expr, pinIndex, false)
	if err != nil {
		return err
	}
	// Fully symmetric cells (NANDn, NORn, ...) accept any pin permutation,
	// so leaf labelings are redundant: canonical DFS relabeling collapses
	// the (2n-3)!! labeled shapes to the handful of unlabeled ones
	// (6 for n=6), which keeps matching affordable.
	symmetric := c.isFullySymmetric()
	seen := map[string]bool{}
	c.Patterns = c.Patterns[:0]
	for _, p := range pats {
		if p.Kind == PatLeaf {
			// A pure wire cell (buffer) has no mappable structure.
			continue
		}
		if symmetric && leafCount(p) == c.NumInputs() {
			// Relabeling is only valid when each pin appears exactly once
			// (leaf-DAG patterns like XOR repeat pins and must keep their
			// sharing structure).
			next := 0
			relabelLeaves(p, &next)
		}
		key := p.canon()
		if !seen[key] {
			seen[key] = true
			c.Patterns = append(c.Patterns, p)
		}
	}
	if len(c.Patterns) == 0 {
		return fmt.Errorf("cell %s compiles to no patterns (buffer cells cannot be matched)", c.Name)
	}
	sort.SliceStable(c.Patterns, func(a, b int) bool {
		return strings.Compare(c.Patterns[a].canon(), c.Patterns[b].canon()) < 0
	})
	return nil
}

// isFullySymmetric reports whether the cell function is invariant under
// every transposition of adjacent pins (which generates all permutations)
// and all pins share electrical parameters.
func (c *Cell) isFullySymmetric() bool {
	n := c.NumInputs()
	if n < 2 {
		return false
	}
	for i := 1; i < n; i++ {
		if c.Pins[i] != c.Pins[0] && !samePinParams(c.Pins[i], c.Pins[0]) {
			return false
		}
	}
	assign := map[string]bool{}
	for bits := 0; bits < 1<<n; bits++ {
		for i := 0; i < n; i++ {
			assign[c.Pins[i].Name] = bits>>i&1 != 0
		}
		base := c.Expr.Eval(assign)
		for i := 0; i+1 < n; i++ {
			a, b := c.Pins[i].Name, c.Pins[i+1].Name
			assign[a], assign[b] = assign[b], assign[a]
			if c.Expr.Eval(assign) != base {
				return false
			}
			assign[a], assign[b] = assign[b], assign[a]
		}
	}
	return true
}

func samePinParams(a, b Pin) bool {
	return a.Phase == b.Phase && a.Load == b.Load && a.MaxLoad == b.MaxLoad &&
		a.Block == b.Block && a.Drive == b.Drive
}

// leafCount returns the number of leaves in the pattern.
func leafCount(p *Pattern) int {
	switch p.Kind {
	case PatLeaf:
		return 1
	case PatInv:
		return leafCount(p.L)
	default:
		return leafCount(p.L) + leafCount(p.R)
	}
}

// relabelLeaves rewrites leaf pin indices in DFS order (valid only for
// fully symmetric cells whose patterns bind each pin exactly once).
func relabelLeaves(p *Pattern, next *int) {
	switch p.Kind {
	case PatLeaf:
		p.Pin = *next
		*next++
	case PatInv:
		relabelLeaves(p.L, next)
	default:
		relabelLeaves(p.L, next)
		relabelLeaves(p.R, next)
	}
}

// patternsOf returns all NAND2/INV trees computing e (or its complement
// when negated is true) with leaves bound to pins.
func patternsOf(e *Expr, pinIndex map[string]int, negated bool) ([]*Pattern, error) {
	switch e.Op {
	case OpVar:
		idx, ok := pinIndex[e.Var]
		if !ok {
			return nil, fmt.Errorf("expression variable %s has no pin", e.Var)
		}
		leaf := &Pattern{Kind: PatLeaf, Pin: idx}
		if negated {
			return []*Pattern{{Kind: PatInv, L: leaf}}, nil
		}
		return []*Pattern{leaf}, nil
	case OpNot:
		return patternsOf(e.Kids[0], pinIndex, !negated)
	case OpAnd, OpOr:
		return opPatterns(e, pinIndex, negated)
	}
	return nil, fmt.Errorf("unknown expression operator %d", e.Op)
}

// opPatterns enumerates all binary association trees over the k-ary AND/OR
// node's children and converts each AND/OR pair into the NAND/INV basis:
//
//	AND(x,y)      = INV(NAND(x, y))      NAND(x,y)    when complemented
//	OR(x,y)       = NAND(!x, !y)         INV(NAND(!x, !y)) when complemented
func opPatterns(e *Expr, pinIndex map[string]int, negated bool) ([]*Pattern, error) {
	// For AND we need positive-phase children; for OR negative-phase.
	childNeg := e.Op == OpOr
	childPats := make([][]*Pattern, len(e.Kids))
	for i, k := range e.Kids {
		ps, err := patternsOf(k, pinIndex, childNeg)
		if err != nil {
			return nil, err
		}
		childPats[i] = ps
	}
	groups := groupTrees(len(e.Kids))
	var out []*Pattern
	for _, g := range groups {
		built := buildGroup(g, childPats, e.Op)
		for _, root := range built {
			// root is currently the NAND form: NAND(children...) for AND,
			// NAND(!children...) for OR. Complementing adds/removes an INV.
			andPhaseNeg := e.Op == OpAnd && negated || e.Op == OpOr && !negated
			if andPhaseNeg {
				out = append(out, root)
			} else {
				out = append(out, &Pattern{Kind: PatInv, L: root})
			}
		}
	}
	return out, nil
}

// groupTree is a binary association tree over child indices.
type groupTree struct {
	leaf int // child index, or -1
	l, r *groupTree
}

// groupTrees enumerates all binary association trees over k children.
func groupTrees(k int) []*groupTree {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return groupTreesOf(idx)
}

func groupTreesOf(idx []int) []*groupTree {
	if len(idx) == 1 {
		return []*groupTree{{leaf: idx[0]}}
	}
	var out []*groupTree
	// Split into two non-empty subsets; fix idx[0] on the left to avoid
	// mirror duplicates (the matcher handles commutativity anyway).
	n := len(idx)
	for mask := 0; mask < 1<<(n-1); mask++ {
		var left, right []int
		left = append(left, idx[0])
		for b := 1; b < n; b++ {
			if mask>>(b-1)&1 == 1 {
				left = append(left, idx[b])
			} else {
				right = append(right, idx[b])
			}
		}
		if len(right) == 0 {
			continue
		}
		for _, lt := range groupTreesOf(left) {
			for _, rt := range groupTreesOf(right) {
				out = append(out, &groupTree{leaf: -1, l: lt, r: rt})
			}
		}
	}
	return out
}

// buildGroup converts one association tree into NAND/INV patterns, taking
// the cross product of child pattern alternatives. The returned patterns
// compute the *complement* of the k-ary op over positive-phase (AND) or
// negative-phase (OR) children, i.e. the natural NAND form.
func buildGroup(g *groupTree, childPats [][]*Pattern, op Op) []*Pattern {
	type phased struct {
		pos []*Pattern // patterns computing the group's value v
		neg []*Pattern // patterns computing !v
	}
	var rec func(t *groupTree) phased
	rec = func(t *groupTree) phased {
		if t.leaf >= 0 {
			// childPats already hold the phase needed at the leaves of the
			// op's NAND form (positive for AND, negative for OR): treat them
			// as "pos" here; "neg" adds an inverter.
			pos := childPats[t.leaf]
			neg := make([]*Pattern, len(pos))
			for i, p := range pos {
				if p.Kind == PatInv {
					neg[i] = p.L // collapse double inversion
				} else {
					neg[i] = &Pattern{Kind: PatInv, L: p}
				}
			}
			return phased{pos: pos, neg: neg}
		}
		lp, rp := rec(t.l), rec(t.r)
		// Group value v = AND(l, r) in the op's leaf phase; its NAND form is
		// neg = NAND(l_pos, r_pos), pos = INV(neg).
		var neg []*Pattern
		for _, a := range lp.pos {
			for _, b := range rp.pos {
				neg = append(neg, &Pattern{Kind: PatNand, L: a, R: b})
			}
		}
		pos := make([]*Pattern, len(neg))
		for i, p := range neg {
			pos[i] = &Pattern{Kind: PatInv, L: p}
		}
		return phased{pos: pos, neg: neg}
	}
	res := rec(g)
	_ = op
	return res.neg
}
