package genlib

import (
	"math"
	"strings"
	"testing"
)

func TestParseExprBasics(t *testing.T) {
	cases := []struct {
		in   string
		vars int
	}{
		{"a", 1},
		{"!a", 1},
		{"a*b", 2},
		{"a+b", 2},
		{"!(a*b)", 2},
		{"a*b+c*d", 4},
		{"!((a+b)*c)", 3},
		{"a'*b", 2},
		{"a b", 2}, // implicit AND
	}
	for _, tc := range cases {
		e, err := ParseExpr(tc.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tc.in, err)
			continue
		}
		if got := len(e.Vars()); got != tc.vars {
			t.Errorf("ParseExpr(%q): %d vars, want %d", tc.in, got, tc.vars)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("a+b*c")
	if err != nil {
		t.Fatal(err)
	}
	// a OR (b AND c): true when a=1, b=0, c=0.
	if !e.Eval(map[string]bool{"a": true}) {
		t.Error("precedence broken: a should dominate")
	}
	if e.Eval(map[string]bool{"b": true}) {
		t.Error("b alone should not satisfy a+b*c")
	}
	if !e.Eval(map[string]bool{"b": true, "c": true}) {
		t.Error("b*c should satisfy a+b*c")
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, in := range []string{"", "(a", "a+", "a)", "*a", "CONST1"} {
		if _, err := ParseExpr(in); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", in)
		}
	}
}

func TestNormalizeFlattens(t *testing.T) {
	e, err := ParseExpr("a*(b*c)*d")
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != OpAnd || len(e.Kids) != 4 {
		t.Errorf("flattening failed: %v", e)
	}
	e2, err := ParseExpr("!!a")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Op != OpVar {
		t.Errorf("double negation not collapsed: %v", e2)
	}
}

// evalPattern evaluates a pattern as a NAND2/INV tree over pin values.
func evalPattern(p *Pattern, pins []bool) bool {
	switch p.Kind {
	case PatLeaf:
		return pins[p.Pin]
	case PatInv:
		return !evalPattern(p.L, pins)
	default:
		return !(evalPattern(p.L, pins) && evalPattern(p.R, pins))
	}
}

func TestPatternsComputeCellFunction(t *testing.T) {
	lib := Lib2()
	for _, c := range lib.Cells {
		n := c.NumInputs()
		if len(c.Patterns) == 0 {
			t.Errorf("cell %s has no patterns", c.Name)
			continue
		}
		for bits := 0; bits < 1<<n; bits++ {
			pins := make([]bool, n)
			assign := map[string]bool{}
			for i := 0; i < n; i++ {
				pins[i] = bits>>i&1 != 0
				assign[c.Pins[i].Name] = pins[i]
			}
			want := c.Expr.Eval(assign)
			for _, p := range c.Patterns {
				if got := evalPattern(p, pins); got != want {
					t.Fatalf("cell %s pattern %s: eval %04b = %v, want %v",
						c.Name, p, bits, got, want)
				}
			}
		}
	}
}

func TestPatternEnumerationCounts(t *testing.T) {
	lib := Lib2()
	// nand4 = !(a*b*c*d): the 4-ary AND has 15 binary association trees,
	// but unordered dedup collapses mirror shapes; at least the two
	// canonical shapes (chain and balanced) must appear.
	c := lib.CellByName("nand4")
	if c == nil {
		t.Fatal("nand4 missing")
	}
	if len(c.Patterns) < 2 {
		t.Errorf("nand4 has %d patterns, want >= 2", len(c.Patterns))
	}
	// An inverter has exactly one pattern: INV(leaf).
	inv := lib.CellByName("inv1")
	if len(inv.Patterns) != 1 || inv.Patterns[0].Kind != PatInv {
		t.Errorf("inv1 patterns: %v", inv.Patterns)
	}
	// nand2 has exactly one pattern: NAND(leaf, leaf).
	nd := lib.CellByName("nand2")
	if len(nd.Patterns) != 1 || nd.Patterns[0].Kind != PatNand {
		t.Errorf("nand2 patterns: %v", nd.Patterns)
	}
}

func TestLib2Lookups(t *testing.T) {
	lib := Lib2()
	if lib.Inverter() == nil || lib.Inverter().Name != "inv1" {
		t.Errorf("smallest inverter = %v", lib.Inverter())
	}
	if lib.Nand2() == nil || lib.Nand2().Name != "nand2" {
		t.Errorf("smallest nand2 = %v", lib.Nand2())
	}
	if math.Abs(lib.DefaultLoad()-1.0) > 1e-12 {
		t.Errorf("default load = %v, want 1.0", lib.DefaultLoad())
	}
	if lib.MaxInputs() != 6 {
		t.Errorf("max inputs = %d, want 6", lib.MaxInputs())
	}
}

func TestPinResolution(t *testing.T) {
	text := `
GATE g 10 O=a*!b;
PIN a NONINV 1.5 99 0.5 0.6 0.7 0.8
PIN b INV 2.5 99 1.0 1.0 2.0 2.0
GATE inv 5 O=!x;
PIN * INV 1 99 0.3 0.4 0.3 0.4
GATE nd 8 O=!(x*y);
PIN * INV 1 99 0.3 0.4 0.3 0.4
`
	lib, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	g := lib.CellByName("g")
	if g.PinIndex("a") != 0 || g.PinIndex("b") != 1 {
		t.Fatalf("pin order wrong: %+v", g.Pins)
	}
	if g.Pins[0].Load != 1.5 || g.Pins[1].Load != 2.5 {
		t.Errorf("loads wrong: %+v", g.Pins)
	}
	// Averaged rise/fall: pin b block = (1.0+2.0)/2.
	if math.Abs(g.Pins[1].Block-1.5) > 1e-12 {
		t.Errorf("block = %v, want 1.5", g.Pins[1].Block)
	}
	if g.Pins[0].Phase != PhaseNonInv || g.Pins[1].Phase != PhaseInv {
		t.Error("phases wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"pin-before-gate", "PIN * INV 1 99 1 1 1 1\n", "PIN before"},
		{"latch", "LATCH l 1 O=D;\n", "LATCH"},
		{"no-pins", "GATE g 1 O=a;\nGATE h 1 O=!a;\nPIN * INV 1 99 1 1 1 1\n", "no PIN"},
		{"bad-area", "GATE g x O=!a;\nPIN * INV 1 99 1 1 1 1\n", "bad area"},
		{"missing-eq", "GATE g 1 !a;\nPIN * INV 1 99 1 1 1 1\n", "missing '='"},
		{"unknown-pin", "GATE g 1 O=!(a*b);\nPIN a INV 1 99 1 1 1 1\n", "no PIN declaration"},
		{"no-inverter", "GATE nd 8 O=!(x*y);\nPIN * INV 1 99 1 1 1 1\n", "no inverter"},
		{"no-nand", "GATE inv 5 O=!x;\nPIN * INV 1 99 1 1 1 1\n", "no 2-input NAND"},
		{"empty", "\n", "empty library"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestCellHelpers(t *testing.T) {
	lib := Lib2()
	nd := lib.CellByName("nand2")
	if nd.MaxDrive() != 0.9 {
		t.Errorf("MaxDrive = %v", nd.MaxDrive())
	}
	if math.Abs(nd.AverageInputLoad()-1.0) > 1e-12 {
		t.Errorf("AverageInputLoad = %v", nd.AverageInputLoad())
	}
	if nd.WorstBlock() != 0.45 {
		t.Errorf("WorstBlock = %v", nd.WorstBlock())
	}
	if lib.CellByName("definitely-missing") != nil {
		t.Error("CellByName on missing cell should return nil")
	}
}

func TestPatternSizeDepth(t *testing.T) {
	lib := Lib2()
	nd3 := lib.CellByName("nand3")
	for _, p := range nd3.Patterns {
		// NAND3 = NAND2 + INV + NAND2 in any association: 3 nodes.
		if p.Size() != 3 {
			t.Errorf("nand3 pattern %s size %d, want 3", p, p.Size())
		}
		if p.Depth() != 3 {
			t.Errorf("nand3 pattern %s depth %d, want 3", p, p.Depth())
		}
	}
}

func TestSymmetryDetection(t *testing.T) {
	lib := Lib2()
	for name, want := range map[string]bool{
		"nand4": true, "nor4": true, "and3": true, "xor2": true,
		"aoi21": false, "mux21": false, "maj3": true,
	} {
		c := lib.CellByName(name)
		if c == nil {
			t.Fatalf("cell %s missing", name)
		}
		if got := c.isFullySymmetric(); got != want {
			t.Errorf("%s symmetric = %v, want %v", name, got, want)
		}
	}
}

func TestWideGatePatternCounts(t *testing.T) {
	lib := Lib2()
	// Symmetric relabeling must keep wide-gate pattern counts far below
	// the (2n-3)!! labeled-shape count (945 for n=6).
	for name, maxPats := range map[string]int{"nand4": 20, "nor4": 20, "aoi222": 80} {
		c := lib.CellByName(name)
		if got := len(c.Patterns); got > maxPats {
			t.Errorf("%s has %d patterns, want <= %d", name, got, maxPats)
		}
	}
}

func TestExprString(t *testing.T) {
	e, err := ParseExpr("!(a*b+c)")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseExpr(e.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", e.String(), err)
	}
	for bits := 0; bits < 8; bits++ {
		assign := map[string]bool{"a": bits&1 != 0, "b": bits&2 != 0, "c": bits&4 != 0}
		if e.Eval(assign) != back.Eval(assign) {
			t.Fatalf("String round trip changed function at %03b", bits)
		}
	}
}
