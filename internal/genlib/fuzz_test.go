package genlib

import "testing"

// FuzzParseExpr exercises the genlib expression parser: it must never
// panic, and accepted expressions must round-trip through String.
func FuzzParseExpr(f *testing.F) {
	for _, s := range []string{
		"a", "!a", "a*b", "a+b*c", "!(a*b+c)", "((a))", "a'", "a b",
		"!(a+b)*(c+d)", "x1*x2+x3'",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := ParseExpr(input)
		if err != nil {
			return
		}
		back, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("String output %q does not reparse: %v", e.String(), err)
		}
		// Same variables; semantic equality spot-checked on one assignment.
		va, vb := e.Vars(), back.Vars()
		if len(va) != len(vb) {
			t.Fatalf("variable count changed: %v vs %v", va, vb)
		}
		assign := map[string]bool{}
		for i, v := range va {
			assign[v] = i%2 == 0
		}
		if e.Eval(assign) != back.Eval(assign) {
			t.Fatalf("round trip changed semantics for %q", input)
		}
	})
}

// FuzzParseGenlib exercises the full library parser.
func FuzzParseGenlib(f *testing.F) {
	f.Add("GATE inv 1 O=!a;\nPIN * INV 1 99 1 1 1 1\nGATE nd 2 O=!(a*b);\nPIN * INV 1 99 1 1 1 1\n")
	f.Add(lib2Text)
	f.Add("GATE g 1 O=a*!b;\nPIN a NONINV 1 9 1 1 1 1\nPIN b INV 1 9 1 1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		lib, err := ParseString(input)
		if err != nil {
			return
		}
		// Accepted libraries must have valid lookups and patterns.
		if lib.Inverter() == nil || lib.Nand2() == nil {
			t.Fatal("accepted library lacks inverter or nand2")
		}
		for _, c := range lib.Cells {
			if len(c.Patterns) == 0 {
				t.Fatalf("cell %s has no patterns", c.Name)
			}
		}
	})
}
