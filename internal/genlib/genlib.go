// Package genlib models a standard-cell library in the Berkeley genlib
// format used by MIS/SIS: each cell has an area, a single-output Boolean
// expression over its input pins, and per-pin loads and delays. The SIS
// pin-dependent delay model the paper adopts (Equation 14) maps directly
// onto genlib numbers: the block delay is the intrinsic delay τ and the
// fanout delay is the drive resistance R multiplied by the load seen at the
// cell output.
//
// Each cell is compiled into one or more NAND2/INV pattern trees used by
// the structural tree matcher in the mapper package.
package genlib

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"powermap/internal/sop"
)

// Phase is the genlib pin phase declaration.
type Phase int

const (
	// PhaseUnknown accepts either polarity.
	PhaseUnknown Phase = iota
	// PhaseInv marks an inverting pin.
	PhaseInv
	// PhaseNonInv marks a non-inverting pin.
	PhaseNonInv
)

// Pin describes one input pin of a cell.
type Pin struct {
	Name    string
	Phase   Phase
	Load    float64 // input capacitance presented by this pin
	MaxLoad float64 // maximum load the cell may drive through this pin's arc
	// Delay parameters, averaged over rise and fall: the paper's τ (Block)
	// and R (Drive) of Equation 14.
	Block float64 // intrinsic delay from this pin to the output
	Drive float64 // delay per unit of output load
}

// Cell is one library gate.
type Cell struct {
	Name     string
	Area     float64
	Output   string
	Expr     *Expr
	Pins     []Pin
	Patterns []*Pattern
}

// PinIndex returns the index of the named pin, or -1.
func (c *Cell) PinIndex(name string) int {
	for i := range c.Pins {
		if c.Pins[i].Name == name {
			return i
		}
	}
	return -1
}

// NumInputs returns the number of input pins.
func (c *Cell) NumInputs() int { return len(c.Pins) }

// MaxDrive returns the largest per-unit-load delay over the cell's pins,
// used when shifting delay curves for load changes (Subsection 3.2.3).
func (c *Cell) MaxDrive() float64 {
	d := 0.0
	for i := range c.Pins {
		if c.Pins[i].Drive > d {
			d = c.Pins[i].Drive
		}
	}
	return d
}

// Library is a set of cells plus cached lookups used by the mapper.
type Library struct {
	Name  string
	Cells []*Cell

	inverter  *Cell   // smallest inverter
	nand2     *Cell   // smallest 2-input NAND
	stdLoad   float64 // default load: input cap of the smallest NAND2
	maxInputs int
}

// Inverter returns the smallest inverter cell.
func (l *Library) Inverter() *Cell { return l.inverter }

// Nand2 returns the smallest 2-input NAND cell.
func (l *Library) Nand2() *Cell { return l.nand2 }

// DefaultLoad returns the unknown-load estimate: the input capacitance of
// the smallest 2-input NAND gate in the library (Subsection 3.2.3).
func (l *Library) DefaultLoad() float64 { return l.stdLoad }

// MaxInputs returns the largest input count over all cells.
func (l *Library) MaxInputs() int { return l.maxInputs }

// CellByName returns the named cell or nil.
func (l *Library) CellByName(name string) *Cell {
	for _, c := range l.Cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// finalize validates the library and computes cached lookups and patterns.
func (l *Library) finalize() error {
	if len(l.Cells) == 0 {
		return fmt.Errorf("genlib: empty library")
	}
	for _, c := range l.Cells {
		if err := c.compilePatterns(); err != nil {
			return fmt.Errorf("genlib: cell %s: %w", c.Name, err)
		}
		if c.NumInputs() > l.maxInputs {
			l.maxInputs = c.NumInputs()
		}
		if isInverterExpr(c.Expr) {
			if l.inverter == nil || c.Area < l.inverter.Area {
				l.inverter = c
			}
		}
		if isNand2Expr(c.Expr) {
			if l.nand2 == nil || c.Area < l.nand2.Area {
				l.nand2 = c
			}
		}
	}
	if l.inverter == nil {
		return fmt.Errorf("genlib: library has no inverter; tree covering requires one")
	}
	if l.nand2 == nil {
		return fmt.Errorf("genlib: library has no 2-input NAND; tree covering requires one")
	}
	load := 0.0
	for i := range l.nand2.Pins {
		load += l.nand2.Pins[i].Load
	}
	l.stdLoad = load / float64(len(l.nand2.Pins))
	// Deterministic order: by input count then area then name, so matching
	// explores small cells first.
	sort.SliceStable(l.Cells, func(a, b int) bool {
		ca, cb := l.Cells[a], l.Cells[b]
		if ca.NumInputs() != cb.NumInputs() {
			return ca.NumInputs() < cb.NumInputs()
		}
		if ca.Area != cb.Area {
			return ca.Area < cb.Area
		}
		return ca.Name < cb.Name
	})
	return nil
}

func isInverterExpr(e *Expr) bool {
	return e.Op == OpNot && e.Kids[0].Op == OpVar
}

func isNand2Expr(e *Expr) bool {
	if e.Op != OpNot || e.Kids[0].Op != OpAnd || len(e.Kids[0].Kids) != 2 {
		return false
	}
	return e.Kids[0].Kids[0].Op == OpVar && e.Kids[0].Kids[1].Op == OpVar
}

// Parse reads a genlib description.
func Parse(r io.Reader) (*Library, error) {
	lib := &Library{Name: "genlib"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 4*1024*1024)
	var cur *Cell
	pending := make(map[*Cell][]rawPin)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "GATE":
			// GATE name area out=expr;  — PIN declarations may follow the
			// ';' on the same physical line.
			rest := strings.TrimSpace(line[len(fields[0]):])
			var tail string
			if semi := strings.IndexByte(rest, ';'); semi >= 0 {
				tail = strings.TrimSpace(rest[semi+1:])
				rest = rest[:semi]
			}
			c, err := parseGateLine(rest)
			if err != nil {
				return nil, fmt.Errorf("genlib: line %d: %w", lineNo, err)
			}
			lib.Cells = append(lib.Cells, c)
			cur = c
			for tail != "" {
				pf := strings.Fields(tail)
				if strings.ToUpper(pf[0]) != "PIN" {
					return nil, fmt.Errorf("genlib: line %d: unexpected %q after GATE function", lineNo, pf[0])
				}
				if len(pf) < 9 {
					return nil, fmt.Errorf("genlib: line %d: truncated PIN after GATE function", lineNo)
				}
				if err := parsePinLine(cur, pending, pf[1:9]); err != nil {
					return nil, fmt.Errorf("genlib: line %d: %w", lineNo, err)
				}
				tail = strings.TrimSpace(strings.Join(pf[9:], " "))
			}
		case "PIN":
			if cur == nil {
				return nil, fmt.Errorf("genlib: line %d: PIN before any GATE", lineNo)
			}
			if err := parsePinLine(cur, pending, fields[1:]); err != nil {
				return nil, fmt.Errorf("genlib: line %d: %w", lineNo, err)
			}
		case "LATCH":
			return nil, fmt.Errorf("genlib: line %d: LATCH cells are not supported (combinational flow)", lineNo)
		default:
			return nil, fmt.Errorf("genlib: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("genlib: read: %w", err)
	}
	for _, c := range lib.Cells {
		if err := resolvePins(c, pending); err != nil {
			return nil, fmt.Errorf("genlib: cell %s: %w", c.Name, err)
		}
	}
	if err := lib.finalize(); err != nil {
		return nil, err
	}
	return lib, nil
}

// ParseString is Parse over an in-memory genlib text.
func ParseString(s string) (*Library, error) { return Parse(strings.NewReader(s)) }

func parseGateLine(rest string) (*Cell, error) {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return nil, fmt.Errorf("malformed GATE line %q", rest)
	}
	name := fields[0]
	area, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return nil, fmt.Errorf("bad area %q: %v", fields[1], err)
	}
	funcText := strings.Join(fields[2:], " ")
	funcText = strings.TrimSuffix(strings.TrimSpace(funcText), ";")
	eq := strings.Index(funcText, "=")
	if eq < 0 {
		return nil, fmt.Errorf("GATE function %q missing '='", funcText)
	}
	out := strings.TrimSpace(funcText[:eq])
	expr, err := ParseExpr(funcText[eq+1:])
	if err != nil {
		return nil, fmt.Errorf("function %q: %w", funcText, err)
	}
	return &Cell{Name: name, Area: area, Output: out, Expr: expr}, nil
}

type rawPin struct {
	pin Pin
	any bool // PIN * applies to all inputs
}

func parsePinLine(c *Cell, pending map[*Cell][]rawPin, fields []string) error {
	// PIN name phase load maxload riseBlock riseDrive fallBlock fallDrive
	if len(fields) != 8 {
		return fmt.Errorf("PIN needs 8 fields, got %d", len(fields))
	}
	var p Pin
	p.Name = fields[0]
	switch strings.ToUpper(fields[1]) {
	case "INV":
		p.Phase = PhaseInv
	case "NONINV":
		p.Phase = PhaseNonInv
	case "UNKNOWN":
		p.Phase = PhaseUnknown
	default:
		return fmt.Errorf("bad phase %q", fields[1])
	}
	nums := make([]float64, 6)
	for i, f := range fields[2:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("bad number %q: %v", f, err)
		}
		nums[i] = v
	}
	p.Load, p.MaxLoad = nums[0], nums[1]
	p.Block = (nums[2] + nums[4]) / 2
	p.Drive = (nums[3] + nums[5]) / 2
	pending[c] = append(pending[c], rawPin{pin: p, any: p.Name == "*"})
	return nil
}

// resolvePins assigns PIN declarations to the cell's expression variables
// in order of appearance, expanding "PIN *" wildcards.
func resolvePins(c *Cell, pending map[*Cell][]rawPin) error {
	vars := c.Expr.Vars()
	raws := pending[c]
	if len(raws) == 0 {
		return fmt.Errorf("no PIN declarations")
	}
	c.Pins = make([]Pin, 0, len(vars))
	if len(raws) == 1 && raws[0].any {
		for _, v := range vars {
			p := raws[0].pin
			p.Name = v
			c.Pins = append(c.Pins, p)
		}
		return nil
	}
	byName := make(map[string]Pin, len(raws))
	for _, r := range raws {
		if r.any {
			return fmt.Errorf("PIN * mixed with named pins")
		}
		byName[r.pin.Name] = r.pin
	}
	for _, v := range vars {
		p, ok := byName[v]
		if !ok {
			return fmt.Errorf("variable %s has no PIN declaration", v)
		}
		c.Pins = append(c.Pins, p)
	}
	if len(byName) != len(vars) {
		return fmt.Errorf("PIN declarations do not match expression variables")
	}
	return nil
}

// Cover returns the cell function as a sum-of-products over the pin order,
// used when reconstructing a Boolean network from a mapped netlist.
func (c *Cell) Cover() *sop.Cover {
	pinIdx := make(map[string]int, len(c.Pins))
	for i := range c.Pins {
		pinIdx[c.Pins[i].Name] = i
	}
	f := exprCover(c.Expr, pinIdx, len(c.Pins))
	f.Minimize()
	return f
}

func exprCover(e *Expr, pinIdx map[string]int, n int) *sop.Cover {
	switch e.Op {
	case OpVar:
		return sop.FromLiteral(n, pinIdx[e.Var], true)
	case OpNot:
		return exprCover(e.Kids[0], pinIdx, n).Complement()
	case OpAnd:
		f := sop.One(n)
		for _, k := range e.Kids {
			f = f.And(exprCover(k, pinIdx, n))
		}
		return f
	default:
		f := sop.Zero(n)
		for _, k := range e.Kids {
			f = f.Or(exprCover(k, pinIdx, n))
		}
		f.Minimize()
		return f
	}
}

// AverageInputLoad returns the mean input pin capacitance of the cell.
func (c *Cell) AverageInputLoad() float64 {
	if len(c.Pins) == 0 {
		return 0
	}
	s := 0.0
	for i := range c.Pins {
		s += c.Pins[i].Load
	}
	return s / float64(len(c.Pins))
}

// WorstBlock returns the maximum intrinsic delay over the cell's pins.
func (c *Cell) WorstBlock() float64 {
	d := math.Inf(-1)
	for i := range c.Pins {
		if c.Pins[i].Block > d {
			d = c.Pins[i].Block
		}
	}
	return d
}
