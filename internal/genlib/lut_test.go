package genlib

import "testing"

func TestCellTruthTable(t *testing.T) {
	lib := Lib2()
	inv, ok := lib.Inverter().TruthTable()
	if !ok || inv != 0b01 {
		t.Fatalf("INV truth table = %#b (ok=%v), want 0b01", inv, ok)
	}
	nand, ok := lib.Nand2().TruthTable()
	if !ok || nand != 0b0111 {
		t.Fatalf("NAND2 truth table = %#b (ok=%v), want 0b0111", nand, ok)
	}
	// Every library cell's truth table must agree with its SOP cover.
	for _, c := range lib.Cells {
		tt, ok := c.TruthTable()
		if !ok {
			t.Fatalf("cell %s: no truth table", c.Name)
		}
		cover := c.Cover()
		n := len(c.Pins)
		assign := make([]bool, n)
		for x := 0; x < 1<<uint(n); x++ {
			for i := range assign {
				assign[i] = x>>uint(i)&1 == 1
			}
			if got, want := tt>>uint(x)&1 == 1, cover.Eval(assign); got != want {
				t.Fatalf("cell %s: truth table row %d = %v, cover says %v", c.Name, x, got, want)
			}
		}
	}
}

func TestNewLUTCell(t *testing.T) {
	lib := Lib2()
	proto := lib.Nand2().Pins[0]
	// 3-input majority.
	maj := uint64(0b1110_1000)
	c, err := NewLUTCell("lut3_e8", 3, maj, 4, proto)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c.TruthTable(); !ok || got != maj {
		t.Fatalf("LUT truth table round-trip = %#x, want %#x", got, maj)
	}
	if c.NumInputs() != 3 || c.Area != 4 {
		t.Fatalf("unexpected cell shape: %d pins, area %v", c.NumInputs(), c.Area)
	}
	if c.Cover() == nil || len(c.Cover().Cubes) == 0 {
		t.Fatal("LUT cell has no cover")
	}
	if c.Pins[0].Load != proto.Load || c.Pins[2].Drive != proto.Drive {
		t.Fatal("pin electrical parameters not copied from proto")
	}
	// Identity 1-input LUT (a buffer-shaped cell).
	b, err := NewLUTCell("lut1_2", 1, 0b10, 1, proto)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := b.TruthTable(); got != 0b10 {
		t.Fatalf("1-input LUT = %#b", got)
	}
	// Constants are rejected.
	if _, err := NewLUTCell("bad", 2, 0, 1, proto); err == nil {
		t.Fatal("constant-0 LUT accepted")
	}
	if _, err := NewLUTCell("bad", 2, 0b1111, 1, proto); err == nil {
		t.Fatal("constant-1 LUT accepted")
	}
	if _, err := NewLUTCell("bad", 7, 1, 1, proto); err == nil {
		t.Fatal("7-input LUT accepted")
	}
}
