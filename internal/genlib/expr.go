package genlib

import (
	"fmt"
	"sort"
	"strings"
)

// Op is an expression node operator.
type Op int

const (
	// OpVar is an input pin reference.
	OpVar Op = iota
	// OpNot is logical complement (one child).
	OpNot
	// OpAnd is a k-ary conjunction.
	OpAnd
	// OpOr is a k-ary disjunction.
	OpOr
)

// Expr is a Boolean expression tree over named pins, as written in the
// genlib GATE function. Same-operator children are flattened so AND/OR
// nodes are k-ary.
type Expr struct {
	Op   Op
	Var  string // for OpVar
	Kids []*Expr
}

// ParseExpr parses a genlib Boolean expression: identifiers, '!', '*', '+',
// and parentheses, with standard precedence (! > * > +). The postfix
// complement "a'" is accepted as an alias for "!a".
func ParseExpr(s string) (*Expr, error) {
	p := &exprParser{input: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("trailing input at %q", p.input[p.pos:])
	}
	return normalize(e), nil
}

type exprParser struct {
	input string
	pos   int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *exprParser) parseOr() (*Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []*Expr{e}
	for p.peek() == '+' {
		p.pos++
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return e, nil
	}
	return &Expr{Op: OpOr, Kids: kids}, nil
}

func (p *exprParser) parseAnd() (*Expr, error) {
	e, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	kids := []*Expr{e}
	for {
		c := p.peek()
		// Explicit '*' or implicit juxtaposition before '(' , '!' or ident.
		if c == '*' {
			p.pos++
		} else if c != '(' && c != '!' && !isIdentByte(c) {
			break
		}
		k, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return e, nil
	}
	return &Expr{Op: OpAnd, Kids: kids}, nil
}

func (p *exprParser) parseFactor() (*Expr, error) {
	switch c := p.peek(); {
	case c == '!':
		p.pos++
		k, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return p.postfix(&Expr{Op: OpNot, Kids: []*Expr{k}}), nil
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' at offset %d", p.pos)
		}
		p.pos++
		return p.postfix(e), nil
	case isIdentByte(c):
		start := p.pos
		for p.pos < len(p.input) && isIdentByte(p.input[p.pos]) {
			p.pos++
		}
		name := p.input[start:p.pos]
		if name == "CONST0" || name == "CONST1" {
			return nil, fmt.Errorf("constant cells are not supported")
		}
		return p.postfix(&Expr{Op: OpVar, Var: name}), nil
	case c == 0:
		return nil, fmt.Errorf("unexpected end of expression")
	default:
		return nil, fmt.Errorf("unexpected character %q at offset %d", c, p.pos)
	}
}

// postfix applies any trailing ' complement marks.
func (p *exprParser) postfix(e *Expr) *Expr {
	for p.pos < len(p.input) && p.input[p.pos] == '\'' {
		p.pos++
		e = &Expr{Op: OpNot, Kids: []*Expr{e}}
	}
	return e
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '[' || c == ']' || c == '<' || c == '>' || c == '.' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// normalize flattens nested same-op nodes and collapses double negation.
func normalize(e *Expr) *Expr {
	switch e.Op {
	case OpVar:
		return e
	case OpNot:
		k := normalize(e.Kids[0])
		if k.Op == OpNot {
			return k.Kids[0]
		}
		return &Expr{Op: OpNot, Kids: []*Expr{k}}
	default:
		var kids []*Expr
		for _, k := range e.Kids {
			nk := normalize(k)
			if nk.Op == e.Op {
				kids = append(kids, nk.Kids...)
			} else {
				kids = append(kids, nk)
			}
		}
		return &Expr{Op: e.Op, Kids: kids}
	}
}

// Vars returns the distinct variable names in order of first appearance.
func (e *Expr) Vars() []string {
	var out []string
	seen := map[string]bool{}
	var rec func(x *Expr)
	rec = func(x *Expr) {
		if x.Op == OpVar {
			if !seen[x.Var] {
				seen[x.Var] = true
				out = append(out, x.Var)
			}
			return
		}
		for _, k := range x.Kids {
			rec(k)
		}
	}
	rec(e)
	return out
}

// Eval evaluates the expression under a pin assignment.
func (e *Expr) Eval(assign map[string]bool) bool {
	switch e.Op {
	case OpVar:
		return assign[e.Var]
	case OpNot:
		return !e.Kids[0].Eval(assign)
	case OpAnd:
		for _, k := range e.Kids {
			if !k.Eval(assign) {
				return false
			}
		}
		return true
	default:
		for _, k := range e.Kids {
			if k.Eval(assign) {
				return true
			}
		}
		return false
	}
}

// String renders the expression in genlib syntax.
func (e *Expr) String() string {
	switch e.Op {
	case OpVar:
		return e.Var
	case OpNot:
		k := e.Kids[0]
		if k.Op == OpVar {
			return "!" + k.Var
		}
		return "!(" + k.String() + ")"
	case OpAnd:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			if k.Op == OpOr {
				parts[i] = "(" + k.String() + ")"
			} else {
				parts[i] = k.String()
			}
		}
		return strings.Join(parts, "*")
	default:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.String()
		}
		return strings.Join(parts, "+")
	}
}

// sortedVars returns the sorted distinct variable names (test helper shared
// across files).
func (e *Expr) sortedVars() []string {
	vs := e.Vars()
	sort.Strings(vs)
	return vs
}
