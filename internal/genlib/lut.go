package genlib

import "fmt"

// maxTruthTableInputs bounds single-word truth tables (2^6 = 64 rows).
const maxTruthTableInputs = 6

// TruthTable returns the cell's function as a truth table over its pin
// order: bit x holds f(assignment x), where pin i contributes bit i of x.
// The second result is false for cells with more than 6 pins, which do not
// fit a single word and are skipped by the NPN matcher.
func (c *Cell) TruthTable() (uint64, bool) {
	n := len(c.Pins)
	if n > maxTruthTableInputs {
		return 0, false
	}
	assign := make(map[string]bool, n)
	var tt uint64
	for x := 0; x < 1<<uint(n); x++ {
		for i := range c.Pins {
			assign[c.Pins[i].Name] = x>>uint(i)&1 == 1
		}
		if c.Expr.Eval(assign) {
			tt |= 1 << uint(x)
		}
	}
	return tt, true
}

// NewLUTCell builds a synthetic n-input lookup-table cell computing the
// given truth table over pins v0..v{n-1}, for the mapper's -lut mode. The
// expression is the canonical minterm expansion (Cover() minimizes it when
// needed), and every pin copies its electrical parameters from proto so
// timing and power remain comparable with real library cells. Area grows
// as 2^(n-1), one unit per two LUT rows. Constant functions are rejected:
// a cut whose function is constant never needs a gate.
func NewLUTCell(name string, n int, tt uint64, area float64, proto Pin) (*Cell, error) {
	if n < 1 || n > maxTruthTableInputs {
		return nil, fmt.Errorf("genlib: LUT arity %d out of range 1..%d", n, maxTruthTableInputs)
	}
	size := uint(1) << uint(n)
	mask := uint64(1)<<size - 1
	tt &= mask
	if tt == 0 || tt == mask {
		return nil, fmt.Errorf("genlib: LUT cell %s would compute a constant", name)
	}
	pins := make([]Pin, n)
	for i := range pins {
		pins[i] = Pin{
			Name:    fmt.Sprintf("v%d", i),
			Phase:   PhaseUnknown,
			Load:    proto.Load,
			MaxLoad: proto.MaxLoad,
			Block:   proto.Block,
			Drive:   proto.Drive,
		}
	}
	var minterms []*Expr
	for x := uint(0); x < size; x++ {
		if tt>>x&1 == 0 {
			continue
		}
		lits := make([]*Expr, n)
		for i := 0; i < n; i++ {
			v := &Expr{Op: OpVar, Var: pins[i].Name}
			if x>>uint(i)&1 == 1 {
				lits[i] = v
			} else {
				lits[i] = &Expr{Op: OpNot, Kids: []*Expr{v}}
			}
		}
		if n == 1 {
			minterms = append(minterms, lits[0])
		} else {
			minterms = append(minterms, &Expr{Op: OpAnd, Kids: lits})
		}
	}
	expr := minterms[0]
	if len(minterms) > 1 {
		expr = &Expr{Op: OpOr, Kids: minterms}
	}
	return &Cell{
		Name:   name,
		Area:   area,
		Output: "o",
		Expr:   expr,
		Pins:   pins,
	}, nil
}
