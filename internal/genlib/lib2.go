package genlib

// lib2Text is an embedded MCNC lib2-style standard-cell library. The gate
// variety (inverters and NANDs at several drive strengths, NOR/AND/OR,
// AOI/OAI complex gates, XOR/XNOR) and the value ranges (areas in
// grid units, delays in ns, loads in standardized capacitance units)
// follow the structure of lib2.genlib; the exact numbers are synthetic.
// See DESIGN.md section 2 for the substitution rationale.
//
// PIN fields: name phase input-load max-load rise-block rise-drive
// fall-block fall-drive.
// Input capacitances grow with transistor stack depth: wide NAND/NOR and
// complex AOI/OAI gates keep series devices upsized to preserve drive, so
// their pins load the fanin nets more than a NAND2's. This is the physical
// asymmetry between area cost and capacitance cost that power-aware
// covering exploits (area-cheap wide gates are cap-expensive).
const lib2Text = `
# powermap embedded library, lib2-style.
GATE inv1   16 O=!a;             PIN * INV 1.0 999 0.40 0.90 0.40 0.90
GATE inv2   24 O=!a;             PIN * INV 2.0 999 0.32 0.48 0.32 0.48
GATE inv4   40 O=!a;             PIN * INV 4.0 999 0.27 0.25 0.27 0.25
GATE nand2  24 O=!(a*b);         PIN * INV 1.0 999 0.45 0.90 0.45 0.90
GATE nand2x 36 O=!(a*b);         PIN * INV 2.0 999 0.38 0.48 0.38 0.48
GATE nand3  32 O=!(a*b*c);       PIN * INV 1.8 999 0.60 1.00 0.60 1.00
GATE nand4  40 O=!(a*b*c*d);     PIN * INV 2.6 999 0.80 1.10 0.80 1.10
GATE nor2   24 O=!(a+b);         PIN * INV 1.2 999 0.55 1.10 0.55 1.10
GATE nor2x  36 O=!(a+b);         PIN * INV 2.2 999 0.46 0.58 0.46 0.58
GATE nor3   36 O=!(a+b+c);       PIN * INV 2.1 999 0.80 1.30 0.80 1.30
GATE nor4   48 O=!(a+b+c+d);     PIN * INV 3.0 999 1.10 1.50 1.10 1.50
GATE and2   32 O=a*b;            PIN * NONINV 1.0 999 0.70 0.95 0.70 0.95
GATE and3   40 O=a*b*c;          PIN * NONINV 1.7 999 0.88 1.00 0.88 1.00
GATE and4   48 O=a*b*c*d;        PIN * NONINV 2.4 999 1.05 1.05 1.05 1.05
GATE or2    32 O=a+b;            PIN * NONINV 1.1 999 0.75 1.00 0.75 1.00
GATE or3    40 O=a+b+c;          PIN * NONINV 1.9 999 0.95 1.10 0.95 1.10
GATE or4    48 O=a+b+c+d;        PIN * NONINV 2.7 999 1.15 1.20 1.15 1.20
GATE aoi21  32 O=!(a*b+c);       PIN * INV 1.7 999 0.62 1.10 0.62 1.10
GATE aoi22  40 O=!(a*b+c*d);     PIN * INV 2.0 999 0.72 1.20 0.72 1.20
GATE aoi211 40 O=!(a*b+c+d);     PIN * INV 2.2 999 0.82 1.25 0.82 1.25
GATE oai21  32 O=!((a+b)*c);     PIN * INV 1.7 999 0.62 1.10 0.62 1.10
GATE oai22  40 O=!((a+b)*(c+d)); PIN * INV 2.0 999 0.72 1.20 0.72 1.20
GATE oai211 40 O=!((a+b)*c*d);   PIN * INV 2.2 999 0.82 1.25 0.82 1.25
GATE xor2   56 O=a*!b+!a*b;      PIN * UNKNOWN 2.2 999 1.10 1.30 1.10 1.30
GATE xnor2  56 O=a*b+!a*!b;     PIN * UNKNOWN 2.2 999 1.10 1.30 1.10 1.30
GATE inv8   72 O=!a;                     PIN * INV 8.0 999 0.24 0.13 0.24 0.13
GATE nand3x 48 O=!(a*b*c);               PIN * INV 3.4 999 0.52 0.54 0.52 0.54
GATE nor3x  54 O=!(a+b+c);               PIN * INV 3.8 999 0.68 0.70 0.68 0.70
GATE aoi221 48 O=!(a*b+c*d+e);           PIN * INV 2.4 999 0.90 1.30 0.90 1.30
GATE oai221 48 O=!((a+b)*(c+d)*e);       PIN * INV 2.4 999 0.90 1.30 0.90 1.30
GATE aoi222 56 O=!(a*b+c*d+e*f);         PIN * INV 2.6 999 1.00 1.40 1.00 1.40
GATE oai222 56 O=!((a+b)*(c+d)*(e+f));   PIN * INV 2.6 999 1.00 1.40 1.00 1.40
GATE mux21  48 O=a*s+b*!s;               PIN * UNKNOWN 1.6 999 0.95 1.20 0.95 1.20
GATE maj3   40 O=a*b+a*c+b*c;            PIN * NONINV 1.9 999 0.92 1.15 0.92 1.15
`

// Lib2 returns a freshly parsed copy of the embedded lib2-style library.
// Each call returns an independent value, so callers may not interfere.
func Lib2() *Library {
	lib, err := ParseString(lib2Text)
	if err != nil {
		panic("genlib: embedded library is invalid: " + err.Error())
	}
	lib.Name = "lib2"
	return lib
}
