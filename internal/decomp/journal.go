package decomp

import (
	"strconv"

	"powermap/internal/huffman"
	"powermap/internal/journal"
)

// emitPlans records one decomp.node provenance event per planned node, in
// topological order, after all tree shapes are final (i.e. after the
// bounded re-decomposition pass). The merge trail re-prices each tree with
// the Section 2.1 independence formulas over the fanins' annotated
// probabilities — for Exact runs the construction itself was priced with
// global-BDD activities, so the event carries Exact=true to flag that the
// recorded costs are the closed-form view of the same shapes.
func emitPlans(jr *journal.Journal, plans []*plan, opt Options) {
	if !jr.Enabled() {
		return
	}
	for _, p := range plans {
		jr.DecompNode(planEvent(p, opt))
	}
}

func planEvent(p *plan, opt Options) journal.DecompNode {
	e := journal.DecompNode{
		Node:      p.n.Name,
		Tree:      treeKind(opt),
		Cubes:     len(p.cubes),
		Height:    p.structureHeight(),
		MinHeight: p.minHeight,
		Rebuilt:   p.rebuilt,
		Stuck:     p.stuck,
		Exact:     opt.Exact,
	}
	andAlg := huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: opt.Style}
	orAlg := huffman.SignalAlgebra{Gate: huffman.GateOr, Style: opt.Style}

	// Power-cost inputs: one row per distinct literal, first-seen order.
	seen := make(map[string]bool)
	leafState := func(lit literal) huffman.Signal {
		pr := lit.node.Prob1
		if lit.neg {
			pr = 1 - pr
		}
		return huffman.SignalFromProb(pr)
	}
	for _, cube := range p.cubes {
		e.Leaves += len(cube)
		for _, lit := range cube {
			name := litName(lit)
			if seen[name] {
				continue
			}
			seen[name] = true
			s := leafState(lit)
			e.Inputs = append(e.Inputs, journal.TreeLeaf{
				Signal:   name,
				Prob:     s.Prob1(),
				Activity: andAlg.Cost(s), // style cost; gate-independent for leaves
			})
		}
	}

	// Merge trail: AND trees bottom-up, then the OR tree over the cube
	// roots. "#k" names the k-th earlier merge of this event.
	var walk func(alg huffman.SignalAlgebra, gate string, sh *shape, leaves []huffman.Signal, names []string) (huffman.Signal, string)
	walk = func(alg huffman.SignalAlgebra, gate string, sh *shape, leaves []huffman.Signal, names []string) (huffman.Signal, string) {
		if sh.leaf >= 0 {
			return leaves[sh.leaf], names[sh.leaf]
		}
		ls, ln := walk(alg, gate, sh.l, leaves, names)
		rs, rn := walk(alg, gate, sh.r, leaves, names)
		s := alg.Merge(ls, rs)
		e.Merges = append(e.Merges, journal.Merge{
			Gate: gate,
			A:    ln,
			B:    rn,
			Prob: s.Prob1(),
			Cost: alg.Cost(s),
		})
		return s, "#" + strconv.Itoa(len(e.Merges)-1)
	}
	termStates := make([]huffman.Signal, len(p.cubes))
	termNames := make([]string, len(p.cubes))
	for i, cube := range p.cubes {
		states := make([]huffman.Signal, len(cube))
		names := make([]string, len(cube))
		for j, lit := range cube {
			states[j] = leafState(lit)
			names[j] = litName(lit)
		}
		if p.andShapes[i] == nil {
			termStates[i], termNames[i] = states[0], names[0]
			continue
		}
		termStates[i], termNames[i] = walk(andAlg, "and", p.andShapes[i], states, names)
	}
	if p.orShape != nil {
		walk(orAlg, "or", p.orShape, termStates, termNames)
	}
	return e
}

func litName(lit literal) string {
	if lit.neg {
		return "~" + lit.node.Name
	}
	return lit.node.Name
}

// treeKind names the construction family the strategy selected.
func treeKind(opt Options) string {
	switch {
	case opt.Strategy == Conventional:
		return "balanced"
	case !opt.Exact && (huffman.SignalAlgebra{Style: opt.Style}).QuasiLinear():
		// Exact runs always use the Modified Huffman construction (BDD
		// costs are not quasi-linear), matching builderSet.quasiLinear.
		return "huffman"
	default:
		return "modified-huffman"
	}
}
