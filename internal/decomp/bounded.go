package decomp

import (
	"context"
	"fmt"
	"math"

	"powermap/internal/exec"
	"powermap/internal/network"
	"powermap/internal/prob"
)

// boundedPass implements the Section 2.3 driver loop: after the
// unrestricted MINPOWER pass, unit-delay arrival and required times are
// computed over the *planned* (not yet materialized) decomposition, and the
// node with the most negative slack is re-decomposed under a height bound
// until the delay requirement is met or no node can be tightened further.
//
// The paper distributes path slack to nodes proportionally to their
// depth_surplus (the height excess of the power-efficient tree over a
// balanced tree). Here the same quantity appears per node: a node of
// structure height h with slack s < 0 gets the bound
// L = max(minHeight, h + s), which assigns the node exactly its own share
// of the violation it causes; iterating node-by-node from the most negative
// slack reproduces the paper's greedy order (ties broken toward nodes
// shared by more paths, approximated by fanout count).
func boundedPass(ctx context.Context, cp *network.Network, model *prob.Model, plans []*plan, opt Options) (int, error) {
	planOf := make(map[*network.Node]*plan, len(plans))
	for _, p := range plans {
		planOf[p.n] = p
	}
	maxIters := opt.MaxIters
	if maxIters == 0 {
		maxIters = 2 * len(plans)
	}
	iterations := opt.Obs.Counter("decomp.slack_iterations")
	rebuilt := opt.Obs.Counter("decomp.redecompositions")
	stuck := opt.Obs.Counter("decomp.redecomp_stuck")
	redecomps := 0
	for iter := 0; iter < maxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return redecomps, fmt.Errorf("decomp: bounded pass: %w", err)
		}
		iterations.Inc()
		arrival, required := virtualTiming(cp, planOf, opt)
		// Select the most negative slack plan that can still be tightened.
		var worst *plan
		worstSlack := -1e-9
		for _, p := range plans {
			if p.stuck || p.structureHeight() <= p.minHeight {
				continue
			}
			s := required[p.n] - arrival[p.n]
			if s < worstSlack ||
				(worst != nil && s == worstSlack && len(p.n.Fanout) > len(worst.n.Fanout)) {
				worst, worstSlack = p, s
			}
		}
		if worst == nil {
			break
		}
		h := worst.structureHeight()
		limit := h + int(math.Floor(worstSlack))
		if limit < worst.minHeight {
			limit = worst.minHeight
		}
		if limit >= h {
			limit = h - 1
		}
		ok, err := worst.rebuild(limit)
		if err != nil {
			return redecomps, err
		}
		if !ok || worst.structureHeight() >= h {
			worst.stuck = true
			stuck.Inc()
			continue
		}
		redecomps++
		worst.rebuilt = true
		rebuilt.Inc()
	}
	_ = model
	return redecomps, nil
}

// conventionalArrivals plans a balanced decomposition of every node and
// returns the unit-delay arrival time each primary output would reach with
// it, used as the default required times of the bounded strategy. Like the
// main plan phase, the per-node balanced plans are independent and fan out
// across the worker pool.
func conventionalArrivals(ctx context.Context, cp *network.Network, model *prob.Model, opt Options, workers int) (map[string]float64, error) {
	balOpt := opt
	balOpt.Strategy = Conventional
	var nodes []*network.Node
	for _, n := range cp.TopoOrder() {
		if n.Kind == network.Internal {
			nodes = append(nodes, n)
		}
	}
	plans, err := exec.Map(exec.WithLabel(ctx, "decomp.balanced"), workers, len(nodes), func(ctx context.Context, i int) (*plan, error) {
		return makePlan(cp, model, nodes[i], balOpt)
	})
	if err != nil {
		return nil, err
	}
	planOf := make(map[*network.Node]*plan, len(plans))
	for i, p := range plans {
		planOf[nodes[i]] = p
	}
	arr, _ := virtualTiming(cp, planOf, balOpt)
	req := make(map[string]float64, len(cp.Outputs))
	for _, o := range cp.Outputs {
		req[o.Name] = arr[o.Driver]
	}
	return req, nil
}

// virtualTiming computes unit-delay arrival and required times over the
// planned decomposition without materializing it: each plan contributes its
// per-leaf depths as the delay from a fanin to the node output.
func virtualTiming(cp *network.Network, planOf map[*network.Node]*plan, opt Options) (arrival, required map[*network.Node]float64) {
	order := cp.TopoOrder()
	arrival = make(map[*network.Node]float64, len(order))
	required = make(map[*network.Node]float64, len(order))
	for _, n := range order {
		if n.IsSource() {
			a := 0.0
			if opt.PIArrival != nil {
				a = opt.PIArrival[n.Name]
			}
			arrival[n] = a
			continue
		}
		p := planOf[n]
		if p == nil {
			// Not planned (e.g. constants rejected earlier); fall back to
			// unit delay over direct fanins.
			worstIn := 0.0
			for _, f := range n.Fanin {
				if arrival[f] > worstIn {
					worstIn = arrival[f]
				}
			}
			arrival[n] = worstIn + 1
			continue
		}
		a := 0.0
		for leaf, depth := range p.leafArrivalDepths() {
			if v := arrival[leaf] + float64(depth); v > a {
				a = v
			}
		}
		arrival[n] = a
	}
	maxOut := 0.0
	for _, o := range cp.Outputs {
		if arrival[o.Driver] > maxOut {
			maxOut = arrival[o.Driver]
		}
	}
	for _, n := range order {
		required[n] = math.Inf(1)
	}
	for _, o := range cp.Outputs {
		req, ok := 0.0, false
		if opt.PORequired != nil {
			req, ok = opt.PORequired[o.Name]
		}
		if !ok {
			req = maxOut
		}
		if req < required[o.Driver] {
			required[o.Driver] = req
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.IsSource() {
			continue
		}
		p := planOf[n]
		if p == nil {
			for _, f := range n.Fanin {
				if r := required[n] - 1; r < required[f] {
					required[f] = r
				}
			}
			continue
		}
		for leaf, depth := range p.leafArrivalDepths() {
			if r := required[n] - float64(depth); r < required[leaf] {
				required[leaf] = r
			}
		}
	}
	for _, n := range order {
		if math.IsInf(required[n], 1) {
			required[n] = maxOut
		}
	}
	return arrival, required
}
