// Package decomp implements the paper's power-efficient technology
// decomposition (Section 2): every node of an optimized Boolean network is
// expanded into a tree of 2-input AND/OR gates whose total switching
// activity is minimized, and the result is converted into the NAND2/INV
// subject graph consumed by the technology mapper.
//
// Three strategies are provided, matching the paper's experimental
// methods:
//
//   - Conventional: balanced trees over arrival-ordered leaves (the SIS
//     tech_decomp baseline of Methods I and IV);
//   - MinPower: unrestricted minimum-switching trees (minpower_t_decomp,
//     Methods II and V) — plain Huffman for quasi-linear (domino) weight
//     functions, Modified Huffman otherwise (Section 2.1);
//   - BoundedMinPower: the Section 2.3 driver (bh_minpower_t_decomp,
//     Methods III and VI) — an unrestricted MINPOWER pass followed by
//     slack-driven bounded-height re-decomposition of timing-critical
//     nodes using the (modified) Larmore–Hirschberg construction.
//
// Switching activities driving the tree constructions come either from the
// independence formulas of Section 2.1 (Exact=false) or from exact global
// BDD probabilities (Exact=true), the alternative the paper offers for
// correlated signals.
package decomp

import (
	"context"
	"fmt"

	"powermap/internal/bdd"
	"powermap/internal/exec"
	"powermap/internal/huffman"
	"powermap/internal/journal"
	"powermap/internal/network"
	"powermap/internal/obs"
	netopt "powermap/internal/opt"
	"powermap/internal/prob"
	"powermap/internal/sim"
	"powermap/internal/sop"
	"powermap/internal/timing"
)

// Strategy selects the decomposition algorithm.
type Strategy int

const (
	// Conventional builds balanced trees (the baseline).
	Conventional Strategy = iota
	// MinPower builds unrestricted minimum-switching-activity trees.
	MinPower
	// BoundedMinPower additionally re-decomposes timing-critical nodes
	// under height bounds derived from unit-delay slack.
	BoundedMinPower
)

func (s Strategy) String() string {
	switch s {
	case Conventional:
		return "conventional"
	case MinPower:
		return "minpower"
	default:
		return "bh-minpower"
	}
}

// Options configures Decompose.
type Options struct {
	Strategy Strategy
	// Style is the CMOS design style whose switching activity is minimized.
	Style huffman.Style
	// Exact prices candidate merges with global-BDD probabilities, which
	// accounts for structural input correlations (Section 1.4 / the BDD
	// alternative to Equation 9). When false, the closed-form independence
	// formulas of Section 2.1 are used.
	Exact bool
	// PIProb gives P(pi=1) by name; missing entries default to 0.5.
	PIProb map[string]float64
	// PIArrival and PORequired configure the unit-delay timing view used by
	// BoundedMinPower. A zero PORequired map means "latest arrival", i.e.
	// re-decomposition only repairs the slack the MINPOWER pass destroyed
	// relative to the best achievable depth.
	PIArrival  map[string]float64
	PORequired map[string]float64
	// MaxIters caps bounded re-decomposition passes; 0 means 2×#nodes.
	MaxIters int
	// Strash structurally hashes the subject graph after conversion,
	// merging identical NAND/INV nodes created by independent node
	// expansions. Off by default for fidelity to the paper's pipeline
	// (SIS tech_decomp performs no sharing pass); enabling it shrinks the
	// subject graph but also narrows the gap between decomposition
	// strategies, since the sharing recovers much of what conventional
	// decomposition loses.
	Strash bool
	// Obs receives phase spans and decomposition metrics (tree/merge
	// counts, slack-loop iterations, BDD manager statistics). Nil
	// disables instrumentation.
	Obs *obs.Scope
	// Journal receives one decomp.node provenance event per planned node
	// (construction kind, tree shape, Huffman merge trail with power-cost
	// inputs) plus a decomp.summary rollup. Nil disables journaling.
	Journal *journal.Journal
	// Workers bounds the pool used to plan node trees in parallel. <= 0
	// means one worker per CPU; 1 plans sequentially. Exact mode always
	// plans with one worker (the shared BDD manager is not safe for
	// concurrent use). Plans are identical for every worker count.
	Workers int
	// BDD tunes the kernel behind every probability model this run builds:
	// node limit (an over-wide network then surfaces as a wrapped
	// bdd.ErrNodeLimit, never a panic), GC thresholds, and dynamic
	// variable reordering by sifting. The zero value keeps the defaults.
	BDD bdd.Config
	// Activity selects the engine measuring the AND/OR network's total
	// switching activity (the Section 2 objective value): exact BDDs (the
	// zero value), the bit-parallel sampling engine, or auto. Sampling
	// uses a fixed seed and budget, so the objective stays deterministic
	// for every worker count. Only the objective measurement is affected;
	// the planning and final models the mapper consumes stay exact.
	Activity prob.Policy
	// ActivityVectors overrides the sampling budget of the objective
	// measurement (0 selects the fixed default).
	ActivityVectors int
}

// activitySampleVectors is the fixed sampling budget of the objective
// measurement when Activity selects the sampling engine; together with the
// fixed seed it keeps TotalActivity deterministic across runs and worker
// counts.
const activitySampleVectors = 1 << 14

// flushBDDStats folds one BDD manager's work counters into the metrics
// registry. Call it exactly once per manager, after its last use.
func flushBDDStats(sc *obs.Scope, m *bdd.Manager) {
	if sc == nil || m == nil {
		return
	}
	st := m.Stats()
	sc.Counter("bdd.nodes_allocated").Add(st.Allocs)
	sc.Counter("bdd.unique_hits").Add(st.UniqueHits)
	sc.Counter("bdd.cache_hits").Add(st.CacheHits)
	sc.Counter("bdd.cache_misses").Add(st.CacheMisses)
	sc.Counter("bdd.gc_runs").Add(st.GCRuns)
	sc.Counter("bdd.nodes_freed").Add(st.NodesFreed)
	sc.Counter("bdd.reorder_runs").Add(st.ReorderRuns)
	sc.Counter("bdd.reorder_swaps").Add(st.ReorderSwaps)
	sc.Counter("bdd.cache_resets").Add(st.CacheResets)
	sc.Gauge("bdd.nodes_live_max").SetMax(float64(st.PeakLive) + 2)
	sc.Gauge("bdd.cache_entries_max").SetMax(float64(st.CacheEntries))
}

// Result is the outcome of a decomposition.
type Result struct {
	// Network is the NAND2/INV subject graph (plus PIs).
	Network *network.Network
	// Model holds exact probabilities/activities for every subject node.
	Model *prob.Model
	// TotalActivity is the decomposition objective: the sum of switching
	// activities over all internal subject-graph nodes.
	TotalActivity float64
	// Depth is the unit-delay depth of the subject graph.
	Depth float64
	// Redecompositions counts bounded-height node rebuilds performed.
	Redecompositions int
}

// literal is one leaf of a node's AND-OR tree: a fanin in some phase.
type literal struct {
	node *network.Node
	neg  bool
}

// shape is an algebra-independent binary tree over leaf indices.
type shape struct {
	leaf int // leaf index, or -1
	l, r *shape
}

func shapeOf[S any](t *huffman.Tree[S]) *shape {
	if t.IsLeaf() {
		return &shape{leaf: t.Leaf}
	}
	return &shape{leaf: -1, l: shapeOf(t.Left), r: shapeOf(t.Right)}
}

func (s *shape) height() int {
	if s == nil || s.leaf >= 0 {
		return 0
	}
	hl, hr := s.l.height(), s.r.height()
	if hl > hr {
		return hl + 1
	}
	return hr + 1
}

// leafDepths fills depth[i] for each leaf index.
func (s *shape) leafDepths(depth []int, d int) {
	if s.leaf >= 0 {
		depth[s.leaf] = d
		return
	}
	s.l.leafDepths(depth, d+1)
	s.r.leafDepths(depth, d+1)
}

// plan is the decomposition plan of one original node: its cubes, and the
// chosen tree shapes (andShapes[i] == nil when cube i has a single literal,
// orShape == nil when there is a single cube).
type plan struct {
	n         *network.Node
	cubes     [][]literal
	andShapes []*shape
	orShape   *shape
	minHeight int  // smallest achievable structure height
	stuck     bool // bounded re-decomposition cannot tighten further
	rebuilt   bool // bounded re-decomposition replaced the tree
	// rebuild re-decomposes the node with structure height ≤ limit,
	// reporting false when infeasible. Installed by the builder.
	rebuild func(limit int) (bool, error)
}

// structureHeight is the AND-OR depth of the planned decomposition.
func (p *plan) structureHeight() int {
	if p.orShape == nil {
		if len(p.andShapes) == 0 || p.andShapes[0] == nil {
			return 0
		}
		return p.andShapes[0].height()
	}
	orDepth := make([]int, len(p.cubes))
	p.orShape.leafDepths(orDepth, 0)
	h := 0
	for i := range p.cubes {
		d := orDepth[i]
		if p.andShapes[i] != nil {
			d += p.andShapes[i].height()
		}
		if d > h {
			h = d
		}
	}
	return h
}

// leafArrivalDepths returns, for every literal, the total depth of its leaf
// within the node structure (OR depth + AND depth).
func (p *plan) leafArrivalDepths() map[*network.Node]int {
	worst := make(map[*network.Node]int)
	orDepth := make([]int, len(p.cubes))
	if p.orShape != nil {
		p.orShape.leafDepths(orDepth, 0)
	}
	for i, cube := range p.cubes {
		andDepth := make([]int, len(cube))
		if p.andShapes[i] != nil {
			p.andShapes[i].leafDepths(andDepth, 0)
		}
		for j, lit := range cube {
			d := orDepth[i] + andDepth[j]
			if cur, ok := worst[lit.node]; !ok || d > cur {
				worst[lit.node] = d
			}
		}
	}
	return worst
}

// Decompose expands every internal node of nw into minimum-switching
// NAND2/INV trees per the configured strategy. The input network is not
// modified. The ctx cancels the run between phases and between nodes; the
// Workers option fans the per-node tree planning out across a pool with
// results identical to a sequential run.
func Decompose(ctx context.Context, nw *network.Network, opt Options) (*Result, error) {
	sc := opt.Obs
	workers := exec.Workers(opt.Workers)
	if opt.Exact {
		// Exact mode prices merges through the model's shared BDD manager,
		// which is not safe for concurrent use.
		workers = 1
	}
	cp := nw.Duplicate()
	cp.Sweep()
	if err := cp.Check(); err != nil {
		return nil, fmt.Errorf("decomp: input network: %w", err)
	}
	span := sc.StartCtx(ctx, "decomp.probabilities")
	model, err := prob.ComputeWith(ctx, cp, opt.PIProb, opt.Style, opt.BDD)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("decomp: %w", err)
	}

	// Phase 1: plan a tree for every internal node. Each plan is a pure
	// function of the node's own cover and its fanins' probabilities, so
	// nodes fan out across the pool; index-ordered collection keeps the
	// plan list in topo order regardless of scheduling.
	span = sc.StartCtx(ctx, "decomp.plan-trees")
	var nodes []*network.Node
	for _, n := range cp.TopoOrder() {
		if n.Kind == network.Internal {
			nodes = append(nodes, n)
		}
	}
	span.SetAttr("nodes", len(nodes)).SetAttr("workers", workers)
	plans, err := exec.Map(exec.WithLabel(ctx, "decomp.plan"), workers, len(nodes), func(ctx context.Context, i int) (*plan, error) {
		n := nodes[i]
		n.Func.Minimize()
		if n.Func.IsZero() || n.Func.IsOne() {
			return nil, fmt.Errorf("decomp: node %s is constant; run opt.Sweep/opt.Optimize first", n.Name)
		}
		return makePlan(cp, model, n, opt)
	})
	span.End()
	if err != nil {
		return nil, err
	}
	sc.Counter("decomp.nodes_planned").Add(int64(len(plans)))

	redecomps := 0
	if opt.Strategy == BoundedMinPower {
		if opt.PORequired == nil {
			// Default performance target: the depth a conventional
			// (balanced) decomposition would achieve — i.e. bound the
			// height increase the MINPOWER pass introduced (Section 2.2's
			// problem statement).
			span = sc.StartCtx(ctx, "decomp.slack-targets")
			req, err := conventionalArrivals(ctx, cp, model, opt, workers)
			span.End()
			if err != nil {
				return nil, err
			}
			opt.PORequired = req
		}
		span = sc.StartCtx(ctx, "decomp.bounded-redecomp")
		redecomps, err = boundedPass(ctx, cp, model, plans, opt)
		span.SetAttr("redecompositions", redecomps)
		span.End()
		if err != nil {
			return nil, err
		}
	}

	// Tree shapes are final here (the bounded pass no longer rewrites
	// them), so the provenance events record what will be materialized.
	emitPlans(opt.Journal, plans, opt)

	// Phase 2: materialize the plans as AND2/OR2/INV nodes.
	span = sc.StartCtx(ctx, "decomp.materialize")
	inv := newInvCache(cp)
	for _, p := range plans {
		if err := ctx.Err(); err != nil {
			span.End()
			return nil, fmt.Errorf("decomp: %w", err)
		}
		if err := materialize(cp, inv, p); err != nil {
			span.End()
			return nil, err
		}
	}
	span.End()
	// The decomposition objective (total internal switching activity,
	// Section 2) is measured on the AND/OR tree level: after the NAND/INV
	// conversion every AND node contributes a complementary NAND+INV pair
	// whose domino activities sum to exactly 1, which would make the
	// metric degenerate.
	span = sc.StartCtx(ctx, "decomp.activity")
	totalActivity, err := andOrActivity(ctx, cp, opt)
	span.End()
	if err != nil {
		return nil, err
	}
	// Phase 3: convert to the NAND2/INV basis and clean up.
	span = sc.StartCtx(ctx, "decomp.nand-convert")
	if err := toNandInv(cp, inv); err != nil {
		span.End()
		return nil, err
	}
	sweepBuffersAndInvPairs(cp)
	if opt.Strash {
		// Extension: merge identical NAND/INV nodes created by independent
		// node expansions, shrinking the subject graph the mapper covers.
		netopt.Strash(cp)
		sweepBuffersAndInvPairs(cp)
	}
	cp.Sweep()
	span.End()
	if err := cp.Check(); err != nil {
		return nil, fmt.Errorf("decomp: produced invalid network: %w", err)
	}

	span = sc.StartCtx(ctx, "decomp.final-probabilities")
	final, err := prob.ComputeWith(ctx, cp, opt.PIProb, opt.Style, opt.BDD)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("decomp: final probabilities: %w", err)
	}
	res := &Result{Network: cp, Model: final, Redecompositions: redecomps, TotalActivity: totalActivity}
	// Unit-delay depth (and, via obs, worst slack) of the subject graph.
	// PORequired is deliberately not forwarded: the bounded strategy's
	// required times live in the planned AND-OR unit-delay domain, not the
	// NAND/INV one, so the subject graph gets the zero-slack normalization.
	res.Depth = timing.AnnotateUnitContext(ctx, cp, timing.UnitOptions{
		PIArrival: opt.PIArrival,
		Obs:       sc,
	})
	sc.Gauge("decomp.total_activity").Set(totalActivity)
	sc.Gauge("decomp.subject_nodes").Set(float64(cp.Stats().Nodes))
	sc.Gauge("decomp.depth").Set(res.Depth)
	opt.Journal.DecompSummary(journal.DecompSummary{
		Nodes:            len(plans),
		TotalActivity:    totalActivity,
		SubjectNodes:     cp.Stats().Nodes,
		Depth:            res.Depth,
		Redecompositions: redecomps,
	})
	flushBDDStats(sc, model.Manager())
	flushBDDStats(sc, final.Manager())
	// The planning model is done; its manager can go back to a warm pool.
	// The final model stays live inside res — mapping and verification read
	// it — and is the caller's to release (core.Result.Release).
	model.Release()
	return res, nil
}

// andOrActivity sums the switching activity over the internal nodes of
// the materialized AND/OR network (the Section 2 objective value). The
// Activity policy picks the engine: exact BDDs, the bit-parallel sampling
// engine (fixed seed and budget, so the objective is deterministic), or
// auto with a sampling fallback when exact BDDs exceed the node limit.
func andOrActivity(ctx context.Context, cp *network.Network, opt Options) (float64, error) {
	vectors := opt.ActivityVectors
	if vectors <= 0 {
		vectors = activitySampleVectors
	}
	ares, err := sim.Annotate(ctx, cp, opt.PIProb, sim.AnnotateOptions{
		Policy:   opt.Activity,
		Style:    opt.Style,
		BDD:      opt.BDD,
		Sampling: sim.BitwiseOptions{Vectors: vectors, Seed: 1, Workers: opt.Workers},
		Obs:      opt.Obs,
		Journal:  opt.Journal,
	})
	if err != nil {
		return 0, fmt.Errorf("decomp: AND/OR activities: %w", err)
	}
	if ares.Model != nil {
		flushBDDStats(opt.Obs, ares.Model.Manager())
		ares.Model.Release()
	}
	total := 0.0
	for _, n := range cp.TopoOrder() {
		if n.Kind == network.Internal {
			total += n.Activity
		}
	}
	return total, nil
}

// makePlan chooses tree shapes for one node under the configured strategy
// (bounded re-decomposition happens later, against the whole-network view).
func makePlan(cp *network.Network, model *prob.Model, n *network.Node, opt Options) (*plan, error) {
	p := &plan{n: n}
	for _, c := range n.Func.Cubes {
		var lits []literal
		for v, l := range c {
			switch l {
			case sop.Pos:
				lits = append(lits, literal{node: n.Fanin[v]})
			case sop.Neg:
				lits = append(lits, literal{node: n.Fanin[v], neg: true})
			}
		}
		if len(lits) == 0 {
			return nil, fmt.Errorf("decomp: node %s has a tautology cube", n.Name)
		}
		p.cubes = append(p.cubes, lits)
	}
	if opt.Exact {
		bld := newExactBuilder(model, opt)
		if err := bld.plan(p); err != nil {
			return nil, err
		}
	} else {
		bld := newSignalBuilder(opt)
		if err := bld.plan(p); err != nil {
			return nil, err
		}
	}
	p.minHeight = minStructureHeight(p)
	return p, nil
}

// minStructureHeight is the smallest AND-OR depth any decomposition of the
// node can achieve: balanced AND trees under a balanced OR tree.
func minStructureHeight(p *plan) int {
	maxAnd := 0
	for _, cube := range p.cubes {
		if h := ceilLog2(len(cube)); h > maxAnd {
			maxAnd = h
		}
	}
	return maxAnd + ceilLog2(len(p.cubes))
}

func ceilLog2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
