package decomp

import (
	"fmt"
	"math"

	"powermap/internal/bdd"
	"powermap/internal/huffman"
	"powermap/internal/prob"
)

// builderSet bundles the AND and OR algebras over a state type S together
// with the strategy-dependent construction policy. It fills a plan's tree
// shapes and installs the bounded-rebuild closure used by the Section 2.3
// driver.
type builderSet[S any] struct {
	and, or     huffman.Algebra[S]
	leafState   func(lit literal) S
	strategy    Strategy
	quasiLinear bool // plain Huffman is optimal; otherwise Modified Huffman
}

func (b *builderSet[S]) build(alg huffman.Algebra[S], leaves []S) *huffman.Tree[S] {
	switch {
	case b.strategy == Conventional:
		return huffman.BuildBalanced(alg, leaves)
	case b.quasiLinear:
		return huffman.Build(alg, leaves)
	default:
		return huffman.BuildModified(alg, leaves)
	}
}

// plan fills p.andShapes and p.orShape and installs p.rebuild.
func (b *builderSet[S]) plan(p *plan) error {
	termStates := make([]S, len(p.cubes))
	p.andShapes = make([]*shape, len(p.cubes))
	for i, cube := range p.cubes {
		states := make([]S, len(cube))
		for j, lit := range cube {
			states[j] = b.leafState(lit)
		}
		if len(cube) == 1 {
			termStates[i] = states[0]
			continue
		}
		t := b.build(b.and, states)
		p.andShapes[i] = shapeOf(t)
		termStates[i] = t.State
	}
	if len(p.cubes) > 1 {
		t := b.build(b.or, termStates)
		p.orShape = shapeOf(t)
	}
	p.rebuild = func(limit int) (bool, error) { return b.rebuildBounded(p, limit) }
	return nil
}

// rebuildBounded re-decomposes the node so that its AND-OR structure height
// is at most limit, using the bounded-height constructions of Section 2.2.
// It reports false when the bound is infeasible.
func (b *builderSet[S]) rebuildBounded(p *plan, limit int) (bool, error) {
	modified := !b.quasiLinear
	leafStatesOf := func(cube []literal) []S {
		states := make([]S, len(cube))
		for j, lit := range cube {
			states[j] = b.leafState(lit)
		}
		return states
	}
	if len(p.cubes) == 1 {
		cube := p.cubes[0]
		if len(cube) == 1 {
			return limit >= 0, nil
		}
		if limit < ceilLog2(len(cube)) {
			return false, nil
		}
		t, err := huffman.BuildBounded(b.and, leafStatesOf(cube), limit, modified)
		if err != nil {
			return false, nil
		}
		p.andShapes[0] = shapeOf(t)
		return true, nil
	}
	// Multi-cube: split the height budget between the OR tree and the AND
	// trees and keep the cheapest feasible split.
	bestCost := math.Inf(1)
	var bestAnd []*shape
	var bestOr *shape
	for orH := ceilLog2(len(p.cubes)); orH <= limit; orH++ {
		andBudget := limit - orH
		feasible := true
		for _, cube := range p.cubes {
			if len(cube) > 1 && ceilLog2(len(cube)) > andBudget {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		cost := 0.0
		andShapes := make([]*shape, len(p.cubes))
		termStates := make([]S, len(p.cubes))
		ok := true
		for i, cube := range p.cubes {
			states := leafStatesOf(cube)
			if len(cube) == 1 {
				termStates[i] = states[0]
				continue
			}
			t, err := huffman.BuildBounded(b.and, states, andBudget, modified)
			if err != nil {
				ok = false
				break
			}
			andShapes[i] = shapeOf(t)
			termStates[i] = t.State
			cost += huffman.TotalCost(b.and, t)
		}
		if !ok {
			continue
		}
		orTree, err := huffman.BuildBounded(b.or, termStates, orH, modified)
		if err != nil {
			continue
		}
		cost += huffman.TotalCost(b.or, orTree)
		if cost < bestCost {
			bestCost = cost
			bestAnd = andShapes
			bestOr = shapeOf(orTree)
		}
	}
	if bestOr == nil {
		return false, nil
	}
	p.andShapes = bestAnd
	p.orShape = bestOr
	return true, nil
}

// newSignalBuilder prices merges with the closed-form independence
// formulas of Section 2.1 (Equations 5, 6, 10, 11).
func newSignalBuilder(opt Options) *builderSet[huffman.Signal] {
	return &builderSet[huffman.Signal]{
		and: huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: opt.Style},
		or:  huffman.SignalAlgebra{Gate: huffman.GateOr, Style: opt.Style},
		leafState: func(lit literal) huffman.Signal {
			p := lit.node.Prob1
			if lit.neg {
				p = 1 - p
			}
			return huffman.SignalFromProb(p)
		},
		strategy:    opt.Strategy,
		quasiLinear: huffman.SignalAlgebra{Style: opt.Style}.QuasiLinear(),
	}
}

// newExactBuilder prices merges with global-BDD probabilities, capturing
// structural correlations between the node's fanins exactly — the BDD
// alternative the paper offers to the Equation 9 heuristic.
func newExactBuilder(model *prob.Model, opt Options) *builderSet[bdd.Ref] {
	mgr := model.Manager()
	return &builderSet[bdd.Ref]{
		and: huffman.OracleAlgebra[bdd.Ref]{
			MergeFn: mgr.And,
			CostFn:  model.ActivityOfRef,
		},
		or: huffman.OracleAlgebra[bdd.Ref]{
			MergeFn: mgr.Or,
			CostFn:  model.ActivityOfRef,
		},
		leafState: func(lit literal) bdd.Ref {
			r, ok := model.Global(lit.node)
			if !ok {
				panic(fmt.Sprintf("decomp: leaf %s has no global BDD", lit.node.Name))
			}
			if lit.neg {
				return mgr.Not(r)
			}
			return r
		},
		strategy:    opt.Strategy,
		quasiLinear: false,
	}
}
