package decomp

import (
	"fmt"
	"math"

	"powermap/internal/bdd"
	"powermap/internal/huffman"
	"powermap/internal/obs"
	"powermap/internal/prob"
)

// countedAlgebra wraps an Algebra so every Merge evaluation — including
// the O(n²) candidate pricing of the Modified Huffman constructions — is
// counted. Only installed when observability is enabled, so the disabled
// flow keeps the unwrapped algebra.
type countedAlgebra[S any] struct {
	alg    huffman.Algebra[S]
	merges *obs.Counter
}

func (c countedAlgebra[S]) Merge(a, b S) S {
	c.merges.Inc()
	return c.alg.Merge(a, b)
}

func (c countedAlgebra[S]) Cost(s S) float64 { return c.alg.Cost(s) }

func counted[S any](sc *obs.Scope, alg huffman.Algebra[S]) huffman.Algebra[S] {
	if sc == nil {
		return alg
	}
	return countedAlgebra[S]{alg: alg, merges: sc.Counter("decomp.merge_evals")}
}

// builderSet bundles the AND and OR algebras over a state type S together
// with the strategy-dependent construction policy. It fills a plan's tree
// shapes and installs the bounded-rebuild closure used by the Section 2.3
// driver.
type builderSet[S any] struct {
	and, or     huffman.Algebra[S]
	leafState   func(lit literal) S
	strategy    Strategy
	quasiLinear bool // plain Huffman is optimal; otherwise Modified Huffman
	obs         *obs.Scope
	// kernelErr reports a deferred BDD kernel failure after a batch of
	// merges. The huffman Algebra interface is infallible by design, so
	// the exact builder latches the first kernel error (node limit) inside
	// its ops adapter and plan/rebuild surface it here; nil for algebras
	// that cannot fail.
	kernelErr func() error
}

// checkKernel surfaces a latched kernel error, if any.
func (b *builderSet[S]) checkKernel() error {
	if b.kernelErr == nil {
		return nil
	}
	return b.kernelErr()
}

func (b *builderSet[S]) build(alg huffman.Algebra[S], leaves []S) *huffman.Tree[S] {
	var t *huffman.Tree[S]
	switch {
	case b.strategy == Conventional:
		t = huffman.BuildBalanced(alg, leaves)
		b.obs.Counter("decomp.balanced_trees").Inc()
	case b.quasiLinear:
		t = huffman.Build(alg, leaves)
		b.obs.Counter("decomp.huffman_trees").Inc()
	default:
		t = huffman.BuildModified(alg, leaves)
		b.obs.Counter("decomp.modified_huffman_trees").Inc()
	}
	// A binary tree over n leaves realizes exactly n-1 merges.
	b.obs.Counter("decomp.tree_merges").Add(int64(len(leaves) - 1))
	b.obs.Histogram("decomp.tree_leaves").Observe(float64(len(leaves)))
	return t
}

// plan fills p.andShapes and p.orShape and installs p.rebuild.
func (b *builderSet[S]) plan(p *plan) error {
	termStates := make([]S, len(p.cubes))
	p.andShapes = make([]*shape, len(p.cubes))
	for i, cube := range p.cubes {
		states := make([]S, len(cube))
		for j, lit := range cube {
			states[j] = b.leafState(lit)
		}
		if len(cube) == 1 {
			termStates[i] = states[0]
			continue
		}
		t := b.build(b.and, states)
		p.andShapes[i] = shapeOf(t)
		termStates[i] = t.State
	}
	if len(p.cubes) > 1 {
		t := b.build(b.or, termStates)
		p.orShape = shapeOf(t)
	}
	p.rebuild = func(limit int) (bool, error) { return b.rebuildBounded(p, limit) }
	return b.checkKernel()
}

// telemetry returns a fresh huffman.Telemetry when observability is
// enabled, nil otherwise.
func (b *builderSet[S]) telemetry() *huffman.Telemetry {
	if b.obs == nil {
		return nil
	}
	return &huffman.Telemetry{}
}

// flushTelemetry folds one construction's telemetry into the registry.
func (b *builderSet[S]) flushTelemetry(tel *huffman.Telemetry) {
	if tel == nil {
		return
	}
	b.obs.Counter("huffman.package_merge_levels").Add(int64(tel.PackageMergeLevels))
	b.obs.Counter("huffman.package_merge_items").Add(tel.PackageMergeItems)
	b.obs.Counter("huffman.bounded_candidates").Add(int64(tel.Candidates))
	if tel.MaxListLen > 0 {
		b.obs.Histogram("huffman.package_merge_list_len").Observe(float64(tel.MaxListLen))
	}
}

// rebuildBounded re-decomposes the node so that its AND-OR structure height
// is at most limit, using the bounded-height constructions of Section 2.2.
// It reports false when the bound is infeasible.
func (b *builderSet[S]) rebuildBounded(p *plan, limit int) (bool, error) {
	modified := !b.quasiLinear
	tel := b.telemetry()
	defer b.flushTelemetry(tel)
	leafStatesOf := func(cube []literal) []S {
		states := make([]S, len(cube))
		for j, lit := range cube {
			states[j] = b.leafState(lit)
		}
		return states
	}
	if len(p.cubes) == 1 {
		cube := p.cubes[0]
		if len(cube) == 1 {
			return limit >= 0, nil
		}
		if limit < ceilLog2(len(cube)) {
			return false, nil
		}
		t, err := huffman.BuildBoundedObserved(b.and, leafStatesOf(cube), limit, modified, tel)
		if kerr := b.checkKernel(); kerr != nil {
			return false, kerr
		}
		if err != nil {
			return false, nil
		}
		p.andShapes[0] = shapeOf(t)
		return true, nil
	}
	// Multi-cube: split the height budget between the OR tree and the AND
	// trees and keep the cheapest feasible split.
	bestCost := math.Inf(1)
	var bestAnd []*shape
	var bestOr *shape
	for orH := ceilLog2(len(p.cubes)); orH <= limit; orH++ {
		andBudget := limit - orH
		feasible := true
		for _, cube := range p.cubes {
			if len(cube) > 1 && ceilLog2(len(cube)) > andBudget {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		cost := 0.0
		andShapes := make([]*shape, len(p.cubes))
		termStates := make([]S, len(p.cubes))
		ok := true
		for i, cube := range p.cubes {
			states := leafStatesOf(cube)
			if len(cube) == 1 {
				termStates[i] = states[0]
				continue
			}
			t, err := huffman.BuildBoundedObserved(b.and, states, andBudget, modified, tel)
			if err != nil {
				ok = false
				break
			}
			andShapes[i] = shapeOf(t)
			termStates[i] = t.State
			cost += huffman.TotalCost(b.and, t)
		}
		if !ok {
			continue
		}
		orTree, err := huffman.BuildBoundedObserved(b.or, termStates, orH, modified, tel)
		if err != nil {
			continue
		}
		cost += huffman.TotalCost(b.or, orTree)
		if cost < bestCost {
			bestCost = cost
			bestAnd = andShapes
			bestOr = shapeOf(orTree)
		}
	}
	if err := b.checkKernel(); err != nil {
		return false, err
	}
	if bestOr == nil {
		return false, nil
	}
	p.andShapes = bestAnd
	p.orShape = bestOr
	return true, nil
}

// newSignalBuilder prices merges with the closed-form independence
// formulas of Section 2.1 (Equations 5, 6, 10, 11).
func newSignalBuilder(opt Options) *builderSet[huffman.Signal] {
	return &builderSet[huffman.Signal]{
		and: counted[huffman.Signal](opt.Obs, huffman.SignalAlgebra{Gate: huffman.GateAnd, Style: opt.Style}),
		or:  counted[huffman.Signal](opt.Obs, huffman.SignalAlgebra{Gate: huffman.GateOr, Style: opt.Style}),
		leafState: func(lit literal) huffman.Signal {
			p := lit.node.Prob1
			if lit.neg {
				p = 1 - p
			}
			return huffman.SignalFromProb(p)
		},
		strategy:    opt.Strategy,
		quasiLinear: huffman.SignalAlgebra{Style: opt.Style}.QuasiLinear(),
		obs:         opt.Obs,
	}
}

// bddOps adapts the error-returning BDD kernel to the infallible
// huffman.Algebra interface: the first failure (node limit) is latched and
// every subsequent operation short-circuits to bdd.False. Callers check
// err after a construction batch via builderSet.checkKernel — the tree
// built after a latched error is garbage, but it is never used because the
// error aborts the plan.
type bddOps struct {
	mgr *bdd.Manager
	err error
}

func (o *bddOps) lift2(f func(a, b bdd.Ref) (bdd.Ref, error)) func(a, b bdd.Ref) bdd.Ref {
	return func(a, b bdd.Ref) bdd.Ref {
		if o.err != nil {
			return bdd.False
		}
		r, err := f(a, b)
		if err != nil {
			o.err = err
			return bdd.False
		}
		return r
	}
}

func (o *bddOps) not(r bdd.Ref) bdd.Ref {
	if o.err != nil {
		return bdd.False
	}
	n, err := o.mgr.Not(r)
	if err != nil {
		o.err = err
		return bdd.False
	}
	return n
}

// newExactBuilder prices merges with global-BDD probabilities, capturing
// structural correlations between the node's fanins exactly — the BDD
// alternative the paper offers to the Equation 9 heuristic.
func newExactBuilder(model *prob.Model, opt Options) *builderSet[bdd.Ref] {
	ops := &bddOps{mgr: model.Manager()}
	return &builderSet[bdd.Ref]{
		and: counted[bdd.Ref](opt.Obs, huffman.OracleAlgebra[bdd.Ref]{
			MergeFn: ops.lift2(ops.mgr.And),
			CostFn:  model.ActivityOfRef,
		}),
		or: counted[bdd.Ref](opt.Obs, huffman.OracleAlgebra[bdd.Ref]{
			MergeFn: ops.lift2(ops.mgr.Or),
			CostFn:  model.ActivityOfRef,
		}),
		leafState: func(lit literal) bdd.Ref {
			r, ok := model.Global(lit.node)
			if !ok {
				// The planner registers every fanin before planning, so a
				// missing global is a programming error, not bad input;
				// latch it like a kernel failure so plan() reports it.
				if ops.err == nil {
					ops.err = fmt.Errorf("decomp: leaf %s has no global BDD", lit.node.Name)
				}
				return bdd.False
			}
			if lit.neg {
				return ops.not(r)
			}
			return r
		},
		strategy:    opt.Strategy,
		quasiLinear: false,
		obs:         opt.Obs,
		kernelErr:   func() error { return ops.err },
	}
}
