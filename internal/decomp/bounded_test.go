package decomp

import (
	"context"
	"errors"
	"math"
	"testing"

	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/prob"
)

// planNetwork duplicates and sweeps nw the way Decompose does, computes the
// probability model, and plans every internal node.
func planNetwork(t *testing.T, nw *network.Network, opt Options) (*network.Network, []*plan) {
	t.Helper()
	cp := nw.Duplicate()
	cp.Sweep()
	model, err := prob.Compute(cp, opt.PIProb, opt.Style)
	if err != nil {
		t.Fatal(err)
	}
	var plans []*plan
	for _, n := range cp.TopoOrder() {
		if n.Kind == network.Internal {
			p, err := makePlan(cp, model, n, opt)
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, p)
		}
	}
	return cp, plans
}

// skewedWideAnd returns options under which MINPOWER builds a deep chain
// over the 6-input AND, leaving the bounded pass real work to do.
func skewedWideAnd() Options {
	return Options{
		Strategy: BoundedMinPower,
		Style:    huffman.DominoP,
		PIProb:   map[string]float64{"a": 0.05, "b": 0.1, "c": 0.2, "d": 0.4, "e": 0.6, "f": 0.8},
	}
}

func TestVirtualTimingUnplannedFallback(t *testing.T) {
	// With no plans at all, virtualTiming must degrade to plain unit-delay
	// analysis over the original fanin edges.
	nw := mustParse(t, chainLikeBlif)
	opt := Options{PORequired: map[string]float64{"y": 2}}
	arrival, required := virtualTiming(nw, map[*network.Node]*plan{}, opt)
	wantArr := map[string]float64{"t1": 1, "t2": 2, "y": 3}
	for name, want := range wantArr {
		if got := arrival[nw.NodeByName(name)]; got != want {
			t.Errorf("arrival(%s) = %v, want %v", name, got, want)
		}
	}
	// required(y)=2 ripples back one unit per level: t2=1, t1=0, a=-1.
	wantReq := map[string]float64{"y": 2, "t2": 1, "t1": 0, "a": -1}
	for name, want := range wantReq {
		if got := required[nw.NodeByName(name)]; got != want {
			t.Errorf("required(%s) = %v, want %v", name, got, want)
		}
	}
	if s := required[nw.NodeByName("y")] - arrival[nw.NodeByName("y")]; s != -1 {
		t.Errorf("slack(y) = %v, want -1", s)
	}
}

func TestVirtualTimingPIArrival(t *testing.T) {
	nw := mustParse(t, chainLikeBlif)
	opt := Options{PIArrival: map[string]float64{"d": 5}}
	arrival, _ := virtualTiming(nw, map[*network.Node]*plan{}, opt)
	if got := arrival[nw.NodeByName("y")]; got != 6 {
		t.Errorf("arrival(y) = %v, want 6 (d arrives at 5)", got)
	}
}

const chainLikeBlif = `
.model chainlike
.inputs a b c d
.outputs y
.names a b t1
11 1
.names t1 c t2
11 1
.names t2 d y
11 1
.end
`

func TestVirtualTimingUsesPlannedDepths(t *testing.T) {
	// A planned single-AND node's arrival is its max leaf depth, i.e. the
	// structure height, not the unit-delay 1 of the original fat node.
	opt := skewedWideAnd()
	cp, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	if len(plans) != 1 {
		t.Fatalf("%d plans, want 1", len(plans))
	}
	p := plans[0]
	planOf := map[*network.Node]*plan{p.n: p}
	arrival, _ := virtualTiming(cp, planOf, opt)
	if got, want := arrival[p.n], float64(p.structureHeight()); got != want {
		t.Errorf("planned arrival %v, want structure height %v", got, want)
	}
}

func TestBoundedPassRedecomposesToBound(t *testing.T) {
	opt := skewedWideAnd()
	opt.PORequired = map[string]float64{"y": 3}
	cp, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	p := plans[0]
	before := p.structureHeight()
	if before <= p.minHeight {
		t.Skipf("minpower already at min height %d; nothing to tighten", p.minHeight)
	}
	n, err := boundedPass(context.Background(), cp, nil, plans, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no re-decompositions performed")
	}
	if after := p.structureHeight(); after >= before {
		t.Errorf("structure height %d -> %d, want a reduction", before, after)
	}
	if p.stuck {
		t.Error("successfully tightened plan marked stuck")
	}
}

func TestBoundedPassNoViolationIsNoop(t *testing.T) {
	opt := skewedWideAnd()
	opt.PORequired = map[string]float64{"y": 100}
	cp, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	before := plans[0].structureHeight()
	n, err := boundedPass(context.Background(), cp, nil, plans, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || plans[0].structureHeight() != before || plans[0].stuck {
		t.Errorf("slack-positive pass changed plans: %d redecomps, height %d -> %d, stuck %v",
			n, before, plans[0].structureHeight(), plans[0].stuck)
	}
}

func TestBoundedPassMarksStuckNodes(t *testing.T) {
	// A node whose rebuild cannot shrink it must be marked stuck (not
	// retried forever) and the pass must still terminate cleanly.
	opt := skewedWideAnd()
	opt.PORequired = map[string]float64{"y": 3}
	cp, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	p := plans[0]
	if p.structureHeight() <= p.minHeight {
		t.Skipf("minpower already at min height %d", p.minHeight)
	}
	p.rebuild = func(limit int) (bool, error) { return false, nil }
	n, err := boundedPass(context.Background(), cp, nil, plans, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("%d redecompositions counted for failed rebuilds", n)
	}
	if !p.stuck {
		t.Error("unshrinkable plan not marked stuck")
	}
}

func TestBoundedPassPropagatesRebuildError(t *testing.T) {
	opt := skewedWideAnd()
	opt.PORequired = map[string]float64{"y": 3}
	cp, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	p := plans[0]
	if p.structureHeight() <= p.minHeight {
		t.Skipf("minpower already at min height %d", p.minHeight)
	}
	boom := errors.New("boom")
	p.rebuild = func(limit int) (bool, error) { return false, boom }
	if _, err := boundedPass(context.Background(), cp, nil, plans, opt); !errors.Is(err, boom) {
		t.Errorf("rebuild error not propagated: %v", err)
	}
}

func TestBoundedPassMaxIters(t *testing.T) {
	opt := skewedWideAnd()
	opt.PORequired = map[string]float64{"y": 3}
	opt.MaxIters = 1
	cp, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	if plans[0].structureHeight() <= plans[0].minHeight {
		t.Skipf("minpower already at min height %d", plans[0].minHeight)
	}
	n, err := boundedPass(context.Background(), cp, nil, plans, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n > 1 {
		t.Errorf("%d redecompositions under MaxIters=1", n)
	}
}

func TestBoundedPassCancellation(t *testing.T) {
	opt := skewedWideAnd()
	opt.PORequired = map[string]float64{"y": 3}
	cp, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := boundedPass(ctx, cp, nil, plans, opt); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled pass returned %v", err)
	}
}

func TestRebuildBoundedSingleLiteral(t *testing.T) {
	// An inverter plan has nothing to restructure: any non-negative limit
	// is feasible as-is.
	nw := mustParse(t, ".model inv\n.inputs a b\n.outputs y\n.names a b t\n11 1\n.names t y\n0 1\n.end\n")
	_, plans := planNetwork(t, nw, Options{Strategy: MinPower, Style: huffman.Static})
	var invPlan *plan
	for _, p := range plans {
		if len(p.cubes) == 1 && len(p.cubes[0]) == 1 {
			invPlan = p
		}
	}
	if invPlan == nil {
		t.Fatal("no single-literal plan found")
	}
	if ok, err := invPlan.rebuild(0); err != nil || !ok {
		t.Errorf("rebuild(0) = %v, %v; want feasible", ok, err)
	}
	if ok, err := invPlan.rebuild(-1); err != nil || ok {
		t.Errorf("rebuild(-1) = %v, %v; want infeasible", ok, err)
	}
}

func TestRebuildBoundedSingleCube(t *testing.T) {
	// One 6-literal cube: ceil(log2 6) = 3 is the tightest feasible bound.
	opt := skewedWideAnd()
	_, plans := planNetwork(t, mustParse(t, wideAndBlif), opt)
	p := plans[0]
	if ok, err := p.rebuild(2); err != nil || ok {
		t.Errorf("rebuild(2) = %v, %v; want infeasible for 6 leaves", ok, err)
	}
	if ok, err := p.rebuild(3); err != nil || !ok {
		t.Fatalf("rebuild(3) = %v, %v; want feasible", ok, err)
	}
	if h := p.structureHeight(); h > 3 {
		t.Errorf("rebuilt height %d exceeds limit 3", h)
	}
}

func TestRebuildBoundedMultiCube(t *testing.T) {
	// Three 2-literal cubes: the OR tree needs 2 levels and each AND tree 1,
	// so 3 is the minimum and 2 must be rejected. The rebuild searches
	// OR/AND budget splits and keeps the cheapest feasible one.
	nw := mustParse(t, sopBlif)
	for _, exact := range []bool{false, true} {
		opt := Options{Strategy: MinPower, Style: huffman.Static, Exact: exact,
			PIProb: map[string]float64{"a": 0.1, "b": 0.3, "c": 0.7, "d": 0.9}}
		_, plans := planNetwork(t, nw, opt)
		var p *plan
		for _, q := range plans {
			if len(q.cubes) == 3 {
				p = q
			}
		}
		if p == nil {
			t.Fatal("no 3-cube plan found")
		}
		if p.minHeight != 3 {
			t.Fatalf("exact=%v: minHeight %d, want 3", exact, p.minHeight)
		}
		if ok, err := p.rebuild(2); err != nil || ok {
			t.Errorf("exact=%v: rebuild(2) = %v, %v; want infeasible", exact, ok, err)
		}
		for limit := 3; limit <= 4; limit++ {
			if ok, err := p.rebuild(limit); err != nil || !ok {
				t.Fatalf("exact=%v: rebuild(%d) = %v, %v; want feasible", exact, limit, ok, err)
			}
			if h := p.structureHeight(); h > limit {
				t.Errorf("exact=%v: rebuilt height %d exceeds limit %d", exact, h, limit)
			}
		}
	}
}

func TestConventionalArrivalsMatchBalancedDepth(t *testing.T) {
	// The default required times of the bounded strategy are the balanced
	// decomposition's output arrivals: ceil(log2 6) = 3 for the 6-input AND.
	opt := skewedWideAnd()
	nw := mustParse(t, wideAndBlif)
	cp := nw.Duplicate()
	cp.Sweep()
	model, err := prob.Compute(cp, opt.PIProb, opt.Style)
	if err != nil {
		t.Fatal(err)
	}
	req, err := conventionalArrivals(context.Background(), cp, model, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(req["y"]-3) > 1e-12 {
		t.Errorf("conventional required(y) = %v, want 3", req["y"])
	}
}
