package decomp

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/huffman"
	"powermap/internal/network"
	"powermap/internal/prob"
	"powermap/internal/sop"
)

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

const wideAndBlif = `
.model wide
.inputs a b c d e f
.outputs y
.names a b c d e f y
111111 1
.end
`

const sopBlif = `
.model sopnode
.inputs a b c d
.outputs y z
.names a b c d y
11-- 1
--11 1
1--0 1
.names a b z
10 1
01 1
.end
`

// checkSubjectGraph verifies every internal node is NAND2 or INV.
func checkSubjectGraph(t *testing.T, nw *network.Network) {
	t.Helper()
	for _, n := range nw.Nodes {
		if n.Kind != network.Internal {
			continue
		}
		if !IsNand2(n) && !IsInv(n) {
			t.Fatalf("node %s is not NAND2/INV: %v over %d fanins", n.Name, n.Func, len(n.Fanin))
		}
	}
}

func decomposeAll(t *testing.T, text string, opt Options) *Result {
	t.Helper()
	nw := mustParse(t, text)
	res, err := Decompose(context.Background(), nw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Network.Check(); err != nil {
		t.Fatalf("decomposed network invalid: %v", err)
	}
	checkSubjectGraph(t, res.Network)
	ok, err := prob.EquivalentOutputs(context.Background(), nw, res.Network)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("decomposition changed the function")
	}
	return res
}

func TestDecomposeWideAndAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{Conventional, MinPower, BoundedMinPower} {
		for _, style := range []huffman.Style{huffman.Static, huffman.DominoP, huffman.DominoN} {
			res := decomposeAll(t, wideAndBlif, Options{Strategy: strat, Style: style})
			// A 6-input AND must decompose into 5 NAND/INV pairs at most:
			// node counts vary, but depth must be sane.
			if res.Depth < 3 {
				t.Errorf("%v/%v: depth %v too small", strat, style, res.Depth)
			}
		}
	}
}

func TestDecomposeSOPNode(t *testing.T) {
	res := decomposeAll(t, sopBlif, Options{Strategy: MinPower, Style: huffman.Static})
	if res.TotalActivity <= 0 {
		t.Error("total activity should be positive")
	}
}

func TestMinPowerBeatsConventionalOnSkewedInputs(t *testing.T) {
	// Strongly skewed probabilities give MINPOWER room to win (Figure 1's
	// argument). Compare total activity for a domino-p AND tree.
	piProb := map[string]float64{"a": 0.9, "b": 0.9, "c": 0.9, "d": 0.1, "e": 0.1, "f": 0.1}
	conv := decomposeAll(t, wideAndBlif, Options{Strategy: Conventional, Style: huffman.DominoP, PIProb: piProb})
	mp := decomposeAll(t, wideAndBlif, Options{Strategy: MinPower, Style: huffman.DominoP, PIProb: piProb})
	if mp.TotalActivity > conv.TotalActivity+1e-9 {
		t.Errorf("minpower %.4f worse than conventional %.4f", mp.TotalActivity, conv.TotalActivity)
	}
}

func TestExactOracleNotWorseOnReconvergent(t *testing.T) {
	// With reconvergent fanins the BDD oracle prices merges exactly.
	text := `
.model reconv
.inputs a b c
.outputs y
.names a b t1
11 1
.names a c t2
11 1
.names t1 t2 c y
111 1
.end
`
	res := decomposeAll(t, text, Options{Strategy: MinPower, Style: huffman.Static, Exact: true})
	// The exact model must still report exact final activities.
	if res.TotalActivity <= 0 {
		t.Error("no activity measured")
	}
}

func TestBoundedReducesDepth(t *testing.T) {
	// Skewed probabilities make MINPOWER build a deep chain over the
	// 6-input AND; a tight required time must force it flatter.
	piProb := map[string]float64{"a": 0.05, "b": 0.1, "c": 0.2, "d": 0.4, "e": 0.6, "f": 0.8}
	mp := decomposeAll(t, wideAndBlif, Options{
		Strategy: MinPower, Style: huffman.DominoP, PIProb: piProb,
	})
	bh := decomposeAll(t, wideAndBlif, Options{
		Strategy: BoundedMinPower, Style: huffman.DominoP, PIProb: piProb,
		PORequired: map[string]float64{"y": 3},
	})
	if mp.Depth <= 3 {
		t.Skipf("minpower depth %v already meets bound; nothing to test", mp.Depth)
	}
	if bh.Depth >= mp.Depth {
		t.Errorf("bounded depth %v not smaller than minpower depth %v", bh.Depth, mp.Depth)
	}
	if bh.Redecompositions == 0 {
		t.Error("bounded pass performed no re-decompositions")
	}
	// Power ordering: bounded sacrifices some activity for depth.
	if bh.TotalActivity < mp.TotalActivity-1e-9 {
		t.Errorf("bounded activity %.4f beats unrestricted %.4f, impossible", bh.TotalActivity, mp.TotalActivity)
	}
}

func TestDecomposeRejectsConstantNodes(t *testing.T) {
	nw := network.New("const")
	a := nw.AddPI("a")
	n := nw.AddNode("n", []*network.Node{a}, sop.One(1))
	nw.MarkOutput("y", n)
	_, err := Decompose(context.Background(), nw, Options{Strategy: MinPower, Style: huffman.Static})
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Errorf("constant node not rejected: %v", err)
	}
}

func TestDecomposeLeavesInputNetworkIntact(t *testing.T) {
	nw := mustParse(t, sopBlif)
	before := nw.Stats()
	if _, err := Decompose(context.Background(), nw, Options{Strategy: MinPower, Style: huffman.Static}); err != nil {
		t.Fatal(err)
	}
	after := nw.Stats()
	if before != after {
		t.Errorf("input network mutated: %+v -> %+v", before, after)
	}
}

func TestDecomposeNegativeLiterals(t *testing.T) {
	text := `
.model negs
.inputs a b c
.outputs y
.names a b c y
0-0 1
-10 1
.end
`
	decomposeAll(t, text, Options{Strategy: MinPower, Style: huffman.Static})
}

func TestDecomposeInverterAndWire(t *testing.T) {
	text := `
.model thin
.inputs a b
.outputs y z w
.names a y
0 1
.names b z
1 1
.names a b w
11 1
.end
`
	res := decomposeAll(t, text, Options{Strategy: MinPower, Style: huffman.Static})
	// z is a buffer of b: after sweeping, output z must be driven by b.
	var zDriver *network.Node
	for _, o := range res.Network.Outputs {
		if o.Name == "z" {
			zDriver = o.Driver
		}
	}
	if zDriver == nil || zDriver.Name != "b" {
		t.Errorf("buffer output z driven by %v, want PI b", zDriver)
	}
}

func TestRandomNetworksPreserveFunction(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		nw := randomNetwork(r, 5, 8)
		for _, strat := range []Strategy{Conventional, MinPower} {
			res, err := Decompose(context.Background(), nw, Options{Strategy: strat, Style: huffman.Static})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, strat, err)
			}
			checkSubjectGraph(t, res.Network)
			ok, err := prob.EquivalentOutputs(context.Background(), nw, res.Network)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d %v: function changed", trial, strat)
			}
		}
	}
}

func TestTotalActivityIsAndOrLevel(t *testing.T) {
	// TotalActivity is measured on the AND/OR tree level, before the
	// NAND/INV conversion; on the converted graph every AND contributes a
	// complementary NAND+INV pair, so the NAND/INV sum differs (it would
	// be degenerate for domino styles).
	res := decomposeAll(t, wideAndBlif, Options{Strategy: MinPower, Style: huffman.DominoP})
	// A 6-input AND has exactly 5 internal AND2 nodes; for domino-p their
	// activities are their 1-probabilities, each in (0, 0.25] with p=0.5
	// inputs, so the total lies in (0, 1.25].
	if res.TotalActivity <= 0 || res.TotalActivity > 1.25 {
		t.Errorf("TotalActivity %v outside the AND/OR-level range", res.TotalActivity)
	}
	// The NAND/INV-level sum for domino would be exactly 5 (one per AND2
	// pair, summing to 1 each); make sure we did not report that.
	nandSum := 0.0
	for _, n := range res.Network.TopoOrder() {
		if n.Kind == network.Internal {
			nandSum += n.Activity
		}
	}
	if math.Abs(res.TotalActivity-nandSum) < 1e-9 {
		t.Errorf("TotalActivity %v equals the NAND/INV sum; expected AND/OR-level measurement", res.TotalActivity)
	}
}

func TestClassifiers(t *testing.T) {
	nw := network.New("cls")
	a, b := nw.AddPI("a"), nw.AddPI("b")
	and := nw.AddNode("and", []*network.Node{a, b}, And2Cover())
	or := nw.AddNode("or", []*network.Node{a, b}, Or2Cover())
	nand := nw.AddNode("nand", []*network.Node{a, b}, Nand2Cover())
	inv := nw.AddNode("inv", []*network.Node{a}, InvCover())
	buf := nw.AddNode("buf", []*network.Node{a}, BufCover())
	cases := []struct {
		n    *network.Node
		isA  func(*network.Node) bool
		name string
	}{
		{and, IsAnd2, "and2"},
		{or, IsOr2, "or2"},
		{nand, IsNand2, "nand2"},
		{inv, IsInv, "inv"},
		{buf, IsBuffer, "buffer"},
	}
	all := []func(*network.Node) bool{IsAnd2, IsOr2, IsNand2, IsInv, IsBuffer}
	for _, tc := range cases {
		hits := 0
		for _, f := range all {
			if f(tc.n) {
				hits++
			}
		}
		if !tc.isA(tc.n) {
			t.Errorf("%s not classified as itself", tc.name)
		}
		if hits != 1 {
			t.Errorf("%s matches %d classifiers, want exactly 1", tc.name, hits)
		}
	}
	// Sources match nothing.
	for _, f := range all {
		if f(a) {
			t.Error("PI classified as a gate")
		}
	}
}

func TestBoundedWithExplicitRequired(t *testing.T) {
	piProb := map[string]float64{"a": 0.05, "b": 0.1, "c": 0.2, "d": 0.4, "e": 0.6, "f": 0.8}
	res := decomposeAll(t, wideAndBlif, Options{
		Strategy:   BoundedMinPower,
		Style:      huffman.DominoP,
		PIProb:     piProb,
		PORequired: map[string]float64{"y": 3},
		PIArrival:  map[string]float64{"a": 0},
		MaxIters:   10,
	})
	// The unit-delay bound counts AND/OR levels; the NAND2/INV conversion
	// realizes each AND level as a NAND+INV pair, so a height-3 tree can
	// reach subject depth 2·3+1.
	if res.Depth > 7 {
		t.Errorf("depth %v exceeds the bound regime", res.Depth)
	}
}

func TestBoundedDefaultMatchesConventionalDepth(t *testing.T) {
	// With no explicit required times, BoundedMinPower bounds the height
	// increase relative to the conventional (balanced) decomposition.
	piProb := map[string]float64{"a": 0.05, "b": 0.1, "c": 0.2, "d": 0.4, "e": 0.6, "f": 0.8}
	conv := decomposeAll(t, wideAndBlif, Options{Strategy: Conventional, Style: huffman.DominoP, PIProb: piProb})
	bh := decomposeAll(t, wideAndBlif, Options{Strategy: BoundedMinPower, Style: huffman.DominoP, PIProb: piProb})
	if bh.Depth > conv.Depth+1 {
		t.Errorf("bounded depth %v much worse than conventional %v", bh.Depth, conv.Depth)
	}
}

func TestDecomposeExactDominoStyles(t *testing.T) {
	for _, style := range []huffman.Style{huffman.DominoP, huffman.DominoN} {
		decomposeAll(t, sopBlif, Options{Strategy: MinPower, Style: style, Exact: true})
	}
}

func TestBoundedMultiCubeNodes(t *testing.T) {
	// Bounded re-decomposition must handle SOP nodes (AND trees under an
	// OR tree) by splitting the height budget.
	text := `
.model mc
.inputs a b c d e f g h
.outputs y
.names a b c d e f g h y
11111111 1
11------ 1
--11---- 1
----11-- 1
------11 1
.end
`
	nw := mustParse(t, text)
	piProb := map[string]float64{"a": 0.1, "b": 0.2, "c": 0.3, "d": 0.4,
		"e": 0.6, "f": 0.7, "g": 0.8, "h": 0.9}
	res, err := Decompose(context.Background(), nw, Options{
		Strategy:   BoundedMinPower,
		Style:      huffman.DominoP,
		PIProb:     piProb,
		PORequired: map[string]float64{"y": 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSubjectGraph(t, res.Network)
	ok, err := prob.EquivalentOutputs(context.Background(), nw, res.Network)
	if err != nil || !ok {
		t.Fatalf("bounded multi-cube changed function: %v %v", ok, err)
	}
}

func TestDecomposeWithStrash(t *testing.T) {
	res := decomposeAll(t, sopBlif, Options{Strategy: MinPower, Style: huffman.Static, Strash: true})
	noStrash := decomposeAll(t, sopBlif, Options{Strategy: MinPower, Style: huffman.Static})
	if res.Network.Stats().Nodes > noStrash.Network.Stats().Nodes {
		t.Errorf("strash grew the subject graph: %d > %d",
			res.Network.Stats().Nodes, noStrash.Network.Stats().Nodes)
	}
}

func TestDecomposeBadProbability(t *testing.T) {
	nw := mustParse(t, sopBlif)
	_, err := Decompose(context.Background(), nw, Options{Strategy: MinPower, Style: huffman.Static,
		PIProb: map[string]float64{"a": 2}})
	if err == nil {
		t.Error("bad probability accepted")
	}
}

// randomNetwork builds a random multi-level network (no constants).
func randomNetwork(r *rand.Rand, npi, nnodes int) *network.Network {
	nw := network.New("rand")
	var pool []*network.Node
	for i := 0; i < npi; i++ {
		pool = append(pool, nw.AddPI(nw.FreshName("pi")))
	}
	for i := 0; i < nnodes; i++ {
		k := 1 + r.Intn(3)
		var fanins []*network.Node
		seen := map[*network.Node]bool{}
		for len(fanins) < k {
			f := pool[r.Intn(len(pool))]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		f := sop.NewCover(k)
		for c := 0; c < 1+r.Intn(2); c++ {
			cube := sop.NewCube(k)
			for v := range cube {
				cube[v] = sop.Lit(r.Intn(3))
			}
			if cube.NumLiterals() == 0 {
				cube[0] = sop.Pos
			}
			f.AddCube(cube)
		}
		f.Minimize()
		if f.IsZero() || f.IsOne() {
			f = sop.FromLiteral(k, 0, true)
		}
		pool = append(pool, nw.AddNode(nw.FreshName("n"), fanins, f))
	}
	nw.MarkOutput("o1", pool[len(pool)-1])
	nw.MarkOutput("o2", pool[len(pool)-2])
	return nw
}
