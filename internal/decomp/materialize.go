package decomp

import (
	"fmt"

	"powermap/internal/network"
	"powermap/internal/sop"
)

// Canonical two-input covers used by the subject graph.

// And2Cover returns the cover of a 2-input AND.
func And2Cover() *sop.Cover {
	f := sop.NewCover(2)
	f.AddCube(sop.Cube{sop.Pos, sop.Pos})
	return f
}

// Or2Cover returns the cover of a 2-input OR.
func Or2Cover() *sop.Cover {
	f := sop.NewCover(2)
	f.AddCube(sop.Cube{sop.Pos, sop.DC})
	f.AddCube(sop.Cube{sop.DC, sop.Pos})
	return f
}

// Nand2Cover returns the cover of a 2-input NAND.
func Nand2Cover() *sop.Cover {
	f := sop.NewCover(2)
	f.AddCube(sop.Cube{sop.Neg, sop.DC})
	f.AddCube(sop.Cube{sop.DC, sop.Neg})
	return f
}

// InvCover returns the cover of an inverter.
func InvCover() *sop.Cover { return sop.FromLiteral(1, 0, false) }

// BufCover returns the cover of a buffer.
func BufCover() *sop.Cover { return sop.FromLiteral(1, 0, true) }

// IsInv reports whether the node is an inverter in canonical form.
func IsInv(n *network.Node) bool {
	return n.Kind == network.Internal && len(n.Fanin) == 1 &&
		len(n.Func.Cubes) == 1 && n.Func.Cubes[0][0] == sop.Neg
}

// IsBuffer reports whether the node is a buffer in canonical form.
func IsBuffer(n *network.Node) bool {
	return n.Kind == network.Internal && len(n.Fanin) == 1 &&
		len(n.Func.Cubes) == 1 && n.Func.Cubes[0][0] == sop.Pos
}

// IsAnd2 reports whether the node is a canonical 2-input AND.
func IsAnd2(n *network.Node) bool {
	return n.Kind == network.Internal && len(n.Fanin) == 2 &&
		len(n.Func.Cubes) == 1 &&
		n.Func.Cubes[0][0] == sop.Pos && n.Func.Cubes[0][1] == sop.Pos
}

// IsOr2 reports whether the node is a canonical 2-input OR.
func IsOr2(n *network.Node) bool {
	if n.Kind != network.Internal || len(n.Fanin) != 2 || len(n.Func.Cubes) != 2 {
		return false
	}
	return matchesTwoCube(n.Func, sop.Pos)
}

// IsNand2 reports whether the node is a canonical 2-input NAND.
func IsNand2(n *network.Node) bool {
	if n.Kind != network.Internal || len(n.Fanin) != 2 || len(n.Func.Cubes) != 2 {
		return false
	}
	return matchesTwoCube(n.Func, sop.Neg)
}

// matchesTwoCube checks a cover of the form {x-, -x} for literal x.
func matchesTwoCube(f *sop.Cover, lit sop.Lit) bool {
	c0, c1 := f.Cubes[0], f.Cubes[1]
	ok := func(a, b sop.Cube) bool {
		return a[0] == lit && a[1] == sop.DC && b[0] == sop.DC && b[1] == lit
	}
	return ok(c0, c1) || ok(c1, c0)
}

// invCache creates and reuses inverter nodes per driven signal.
type invCache struct {
	nw  *network.Network
	inv map[*network.Node]*network.Node
}

func newInvCache(nw *network.Network) *invCache {
	return &invCache{nw: nw, inv: make(map[*network.Node]*network.Node)}
}

func (c *invCache) get(x *network.Node) *network.Node {
	if n, ok := c.inv[x]; ok {
		return n
	}
	n := c.nw.AddNode(c.nw.FreshName("inv"), []*network.Node{x}, InvCover())
	c.inv[x] = n
	return n
}

// materialize expands one planned node into AND2/OR2/INV nodes inside the
// network, keeping the original node as the root of the new tree so its
// fanouts and output references are untouched.
func materialize(nw *network.Network, inv *invCache, p *plan) error {
	n := p.n
	// Build a node for the subtree rooted at s over the literal list cube.
	var buildAnd func(s *shape, cube []literal) *network.Node
	buildAnd = func(s *shape, cube []literal) *network.Node {
		if s.leaf >= 0 {
			lit := cube[s.leaf]
			if lit.neg {
				return inv.get(lit.node)
			}
			return lit.node
		}
		l := buildAnd(s.l, cube)
		r := buildAnd(s.r, cube)
		return nw.AddNode(nw.FreshName("d"), []*network.Node{l, r}, And2Cover())
	}

	terms := make([]*network.Node, len(p.cubes))
	// Single-cube nodes: the node itself becomes the AND-tree root.
	if len(p.cubes) == 1 {
		cube := p.cubes[0]
		if len(cube) == 1 {
			lit := cube[0]
			cov := BufCover()
			if lit.neg {
				cov = InvCover()
			}
			nw.SetFunction(n, []*network.Node{lit.node}, cov)
			return nil
		}
		s := p.andShapes[0]
		l := buildAnd(s.l, cube)
		r := buildAnd(s.r, cube)
		nw.SetFunction(n, []*network.Node{l, r}, And2Cover())
		return nil
	}
	for i, cube := range p.cubes {
		if len(cube) == 1 {
			lit := cube[0]
			if lit.neg {
				terms[i] = inv.get(lit.node)
			} else {
				terms[i] = lit.node
			}
			continue
		}
		terms[i] = buildAnd(p.andShapes[i], cube)
	}
	var buildOr func(s *shape) *network.Node
	buildOr = func(s *shape) *network.Node {
		if s.leaf >= 0 {
			return terms[s.leaf]
		}
		l := buildOr(s.l)
		r := buildOr(s.r)
		return nw.AddNode(nw.FreshName("d"), []*network.Node{l, r}, Or2Cover())
	}
	if p.orShape == nil {
		return fmt.Errorf("decomp: node %s has %d cubes but no OR shape", n.Name, len(p.cubes))
	}
	l := buildOr(p.orShape.l)
	r := buildOr(p.orShape.r)
	nw.SetFunction(n, []*network.Node{l, r}, Or2Cover())
	return nil
}

// toNandInv rewrites every AND2/OR2 node into the NAND2/INV basis:
//
//	AND2(a,b) → INV(NAND2(a,b))
//	OR2(a,b)  → NAND2(INV(a), INV(b))
func toNandInv(nw *network.Network, inv *invCache) error {
	nodes := append([]*network.Node(nil), nw.Nodes...)
	for _, n := range nodes {
		switch {
		case IsAnd2(n):
			t := nw.AddNode(nw.FreshName("nd"), []*network.Node{n.Fanin[0], n.Fanin[1]}, Nand2Cover())
			nw.SetFunction(n, []*network.Node{t}, InvCover())
		case IsOr2(n):
			a, b := n.Fanin[0], n.Fanin[1]
			nw.SetFunction(n, []*network.Node{inv.get(a), inv.get(b)}, Nand2Cover())
		case IsInv(n) || IsBuffer(n) || IsNand2(n):
			// Already in the target basis.
		case n.Kind != network.Internal:
			// Sources pass through.
		default:
			return fmt.Errorf("decomp: node %s has unexpected shape %v after materialization", n.Name, n.Func)
		}
	}
	return nil
}

// sweepBuffersAndInvPairs removes buffers and collapses inverter chains
// (INV(INV(x)) → x) by rewiring fanouts and output references, leaving the
// dead nodes for Network.Sweep.
func sweepBuffersAndInvPairs(nw *network.Network) {
	for {
		changed := false
		for _, n := range append([]*network.Node(nil), nw.Nodes...) {
			var repl *network.Node
			switch {
			case IsBuffer(n):
				repl = n.Fanin[0]
			case IsInv(n) && IsInv(n.Fanin[0]):
				repl = n.Fanin[0].Fanin[0]
			default:
				continue
			}
			// A self-replacement cannot happen in an acyclic network, but
			// guard anyway.
			if repl == n {
				continue
			}
			for _, fo := range append([]*network.Node(nil), n.Fanout...) {
				nw.ReplaceFanin(fo, n, repl)
				changed = true
			}
			for i := range nw.Outputs {
				if nw.Outputs[i].Driver == n {
					// Keep buffers that adapt a PO name directly driven by
					// an inverter pair; the driver simply moves to repl.
					nw.Outputs[i].Driver = repl
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}
