// Package sop implements sum-of-products (SOP) representations of
// single-output logic functions: cubes over a positional variable space and
// covers (sets of cubes), together with the algebraic operations required by
// technology-independent optimization and technology decomposition.
//
// A cube assigns each variable one of three values: positive literal,
// negative literal, or don't-care (absent). A cover is the OR of its cubes.
// Variables are identified by small non-negative integers; the mapping from
// integers to named signals is maintained by the network layer.
package sop

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is the value a cube assigns to one variable.
type Lit byte

const (
	// DC marks a variable that does not appear in the cube.
	DC Lit = iota
	// Pos marks a positive literal (variable must be 1).
	Pos
	// Neg marks a negative literal (variable must be 0).
	Neg
)

// String returns "-", "1" or "0" in the usual PLA notation.
func (l Lit) String() string {
	switch l {
	case Pos:
		return "1"
	case Neg:
		return "0"
	default:
		return "-"
	}
}

// Cube is a product term over variables 0..n-1. The zero-length cube is the
// tautology (constant 1 product).
type Cube []Lit

// NewCube returns an all-don't-care cube over n variables.
func NewCube(n int) Cube { return make(Cube, n) }

// Clone returns a copy of c.
func (c Cube) Clone() Cube {
	d := make(Cube, len(c))
	copy(d, c)
	return d
}

// NumLiterals counts the literals (non-DC positions) in c.
func (c Cube) NumLiterals() int {
	n := 0
	for _, l := range c {
		if l != DC {
			n++
		}
	}
	return n
}

// Literals returns the variable indices that appear in c, ascending.
func (c Cube) Literals() []int {
	var vars []int
	for v, l := range c {
		if l != DC {
			vars = append(vars, v)
		}
	}
	return vars
}

// Contains reports whether c contains d, i.e. every minterm of d is a
// minterm of c. This holds when every literal of c appears identically in d.
func (c Cube) Contains(d Cube) bool {
	for v, l := range c {
		if l != DC && d[v] != l {
			return false
		}
	}
	return true
}

// Intersect returns the intersection cube of c and d and true, or nil and
// false when the cubes are disjoint (some variable has opposite literals).
func (c Cube) Intersect(d Cube) (Cube, bool) {
	out := make(Cube, len(c))
	for v := range c {
		switch {
		case c[v] == DC:
			out[v] = d[v]
		case d[v] == DC || d[v] == c[v]:
			out[v] = c[v]
		default:
			return nil, false
		}
	}
	return out, true
}

// Eval evaluates the cube under a full assignment (true = 1).
func (c Cube) Eval(assign []bool) bool {
	for v, l := range c {
		switch l {
		case Pos:
			if !assign[v] {
				return false
			}
		case Neg:
			if assign[v] {
				return false
			}
		}
	}
	return true
}

// Distance1 reports whether c and d conflict in exactly one variable, which
// makes them mergeable by the consensus rule when all other positions agree.
func (c Cube) Distance1(d Cube) (int, bool) {
	conflict := -1
	for v := range c {
		if c[v] != d[v] {
			if c[v] == DC || d[v] == DC {
				return -1, false
			}
			if conflict >= 0 {
				return -1, false
			}
			conflict = v
		}
	}
	return conflict, conflict >= 0
}

// String renders the cube in PLA input-plane notation ("10-1...").
func (c Cube) String() string {
	var b strings.Builder
	for _, l := range c {
		b.WriteString(l.String())
	}
	return b.String()
}

// Cover is an SOP: the OR of its cubes over a fixed variable count.
// A Cover with no cubes is the constant-0 function; a cover containing the
// tautology cube is constant 1 (after minimization).
type Cover struct {
	NumVars int
	Cubes   []Cube
}

// NewCover returns an empty (constant-0) cover over n variables.
func NewCover(n int) *Cover { return &Cover{NumVars: n} }

// Zero returns the constant-0 cover over n variables.
func Zero(n int) *Cover { return NewCover(n) }

// One returns the constant-1 cover over n variables.
func One(n int) *Cover {
	c := NewCover(n)
	c.Cubes = []Cube{NewCube(n)}
	return c
}

// FromLiteral returns the single-literal cover for variable v, positive when
// pos is true.
func FromLiteral(n, v int, pos bool) *Cover {
	c := NewCover(n)
	cube := NewCube(n)
	if pos {
		cube[v] = Pos
	} else {
		cube[v] = Neg
	}
	c.Cubes = []Cube{cube}
	return c
}

// Clone deep-copies the cover.
func (f *Cover) Clone() *Cover {
	g := NewCover(f.NumVars)
	g.Cubes = make([]Cube, len(f.Cubes))
	for i, c := range f.Cubes {
		g.Cubes[i] = c.Clone()
	}
	return g
}

// AddCube appends a cube, which must have the cover's variable count.
func (f *Cover) AddCube(c Cube) {
	if len(c) != f.NumVars {
		panic(fmt.Sprintf("sop: cube width %d != cover width %d", len(c), f.NumVars))
	}
	f.Cubes = append(f.Cubes, c)
}

// IsZero reports whether the cover is the constant-0 function syntactically.
func (f *Cover) IsZero() bool { return len(f.Cubes) == 0 }

// IsOne reports whether some cube is the tautology cube. (This is a
// syntactic check; a cover may be a tautology without containing the
// all-DC cube.)
func (f *Cover) IsOne() bool {
	for _, c := range f.Cubes {
		if c.NumLiterals() == 0 {
			return true
		}
	}
	return false
}

// Eval evaluates the cover under a full assignment.
func (f *Cover) Eval(assign []bool) bool {
	for _, c := range f.Cubes {
		if c.Eval(assign) {
			return true
		}
	}
	return false
}

// Support returns the ascending variable indices on which f syntactically
// depends.
func (f *Cover) Support() []int {
	seen := make(map[int]bool)
	for _, c := range f.Cubes {
		for v, l := range c {
			if l != DC {
				seen[v] = true
			}
		}
	}
	vars := make([]int, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	return vars
}

// NumLiterals returns the total literal count over all cubes, the standard
// SOP cost measure.
func (f *Cover) NumLiterals() int {
	n := 0
	for _, c := range f.Cubes {
		n += c.NumLiterals()
	}
	return n
}

// Minimize applies single-cube containment and distance-1 merging until a
// fixed point, in place. It makes the representation irredundant with
// respect to these two cheap rules (not a full two-level minimization).
func (f *Cover) Minimize() {
	changed := true
	for changed {
		changed = f.removeContained()
		if f.mergeDistance1() {
			changed = true
		}
	}
	f.sortCubes()
}

func (f *Cover) removeContained() bool {
	changed := false
	out := f.Cubes[:0]
	for i, c := range f.Cubes {
		contained := false
		for j, d := range f.Cubes {
			if i == j {
				continue
			}
			// Drop c when d contains it; break ties by index to keep one copy
			// of identical cubes.
			if d.Contains(c) && (!c.Contains(d) || j < i) {
				contained = true
				break
			}
		}
		if contained {
			changed = true
		} else {
			out = append(out, c)
		}
	}
	f.Cubes = out
	return changed
}

func (f *Cover) mergeDistance1() bool {
	changed := false
	for i := 0; i < len(f.Cubes); i++ {
		for j := i + 1; j < len(f.Cubes); j++ {
			v, ok := f.Cubes[i].Distance1(f.Cubes[j])
			if !ok {
				continue
			}
			merged := f.Cubes[i].Clone()
			merged[v] = DC
			f.Cubes[i] = merged
			f.Cubes = append(f.Cubes[:j], f.Cubes[j+1:]...)
			changed = true
			j--
		}
	}
	return changed
}

func (f *Cover) sortCubes() {
	sort.Slice(f.Cubes, func(i, j int) bool {
		return f.Cubes[i].String() < f.Cubes[j].String()
	})
}

// MinimizeStrong applies an Espresso-style expand/irredundant pass: each
// cube is expanded literal by literal against the off-set (any literal
// whose removal keeps the cube disjoint from ¬f is raised to don't-care),
// containment then removes swallowed cubes, and a final irredundancy pass
// drops cubes covered by the union of the others. Cost includes one
// complement, so this is intended for the small node-local functions of
// the synthesis flow; Minimize remains the cheap default.
func (f *Cover) MinimizeStrong() {
	f.Minimize()
	if f.IsZero() || f.IsOne() {
		return
	}
	off := f.Complement()
	// Expand cubes (in place) against the off-set.
	for i, c := range f.Cubes {
		expanded := c.Clone()
		for v := range expanded {
			if expanded[v] == DC {
				continue
			}
			trial := expanded.Clone()
			trial[v] = DC
			if !intersectsAny(trial, off.Cubes) {
				expanded = trial
			}
		}
		f.Cubes[i] = expanded
	}
	f.Minimize()
	// Irredundant: drop cubes covered by the union of the remaining ones.
	for i := 0; i < len(f.Cubes); i++ {
		if cubeCoveredByOthers(f.Cubes[i], f.Cubes, i, f.NumVars) {
			f.Cubes = append(f.Cubes[:i], f.Cubes[i+1:]...)
			i--
		}
	}
	f.sortCubes()
}

func intersectsAny(c Cube, cubes []Cube) bool {
	for _, d := range cubes {
		if _, ok := c.Intersect(d); ok {
			return true
		}
	}
	return false
}

// cubeCoveredByOthers reports whether cube i is contained in the union of
// the other cubes, by checking that the union cofactored against cube i is
// a tautology.
func cubeCoveredByOthers(c Cube, cubes []Cube, skip, numVars int) bool {
	reduced := NewCover(numVars)
	for j, d := range cubes {
		if j == skip {
			continue
		}
		x, ok := c.Intersect(d)
		if !ok {
			continue
		}
		// Express x relative to c: erase c's fixed literals, keeping d's
		// extra constraints over c's free variables.
		rc := x.Clone()
		for v, l := range c {
			if l != DC {
				rc[v] = DC
			}
		}
		reduced.AddCube(rc)
	}
	return reduced.IsTautology()
}

// Cofactor returns f with variable v fixed to the given value: cubes whose
// v-literal conflicts are dropped, and v is erased from the rest.
func (f *Cover) Cofactor(v int, value bool) *Cover {
	g := NewCover(f.NumVars)
	want := Neg
	if value {
		want = Pos
	}
	for _, c := range f.Cubes {
		if c[v] != DC && c[v] != want {
			continue
		}
		d := c.Clone()
		d[v] = DC
		g.Cubes = append(g.Cubes, d)
	}
	return g
}

// Or returns the disjunction of f and g (same variable count).
func (f *Cover) Or(g *Cover) *Cover {
	if f.NumVars != g.NumVars {
		panic("sop: Or over mismatched variable counts")
	}
	h := f.Clone()
	for _, c := range g.Cubes {
		h.Cubes = append(h.Cubes, c.Clone())
	}
	return h
}

// And returns the conjunction of f and g by cube-wise intersection.
func (f *Cover) And(g *Cover) *Cover {
	if f.NumVars != g.NumVars {
		panic("sop: And over mismatched variable counts")
	}
	h := NewCover(f.NumVars)
	for _, c := range f.Cubes {
		for _, d := range g.Cubes {
			if x, ok := c.Intersect(d); ok {
				h.Cubes = append(h.Cubes, x)
			}
		}
	}
	h.Minimize()
	return h
}

// IsSingleCube reports whether f consists of exactly one cube (a pure AND of
// literals).
func (f *Cover) IsSingleCube() bool { return len(f.Cubes) == 1 }

// CommonCube returns the largest cube dividing every cube of f (the product
// of literals shared by all cubes), or an all-DC cube when none is shared.
func (f *Cover) CommonCube() Cube {
	if len(f.Cubes) == 0 {
		return NewCube(f.NumVars)
	}
	common := f.Cubes[0].Clone()
	for _, c := range f.Cubes[1:] {
		for v := range common {
			if common[v] != DC && common[v] != c[v] {
				common[v] = DC
			}
		}
	}
	return common
}

// DivideByCube factors out cube d from f: it returns the quotient (cubes of
// f containing d, with d's literals erased) and the remainder (cubes not
// containing d), so that f = d*quotient + remainder.
func (f *Cover) DivideByCube(d Cube) (quotient, remainder *Cover) {
	quotient = NewCover(f.NumVars)
	remainder = NewCover(f.NumVars)
	for _, c := range f.Cubes {
		if d.Contains(c) {
			q := c.Clone()
			for v, l := range d {
				if l != DC {
					q[v] = DC
				}
			}
			quotient.Cubes = append(quotient.Cubes, q)
		} else {
			remainder.Cubes = append(remainder.Cubes, c.Clone())
		}
	}
	return quotient, remainder
}

// IsTautology reports whether f ≡ 1, using the classic unate-recursive
// paradigm: unate covers are tautologies exactly when they contain the
// all-don't-care cube, and binate covers split on their most binate
// variable.
func (f *Cover) IsTautology() bool {
	if f.IsZero() {
		return false
	}
	if f.IsOne() {
		return true
	}
	v, binate := f.mostBinateVar()
	if !binate {
		// Unate cover: tautology iff some cube is all-DC, already checked
		// by IsOne above.
		return false
	}
	return f.Cofactor(v, false).IsTautology() && f.Cofactor(v, true).IsTautology()
}

// mostBinateVar returns the variable appearing in the most cubes among
// those appearing in both phases, or (any most-frequent var, false) when
// the cover is unate.
func (f *Cover) mostBinateVar() (int, bool) {
	pos := make(map[int]int)
	neg := make(map[int]int)
	for _, c := range f.Cubes {
		for v, l := range c {
			switch l {
			case Pos:
				pos[v]++
			case Neg:
				neg[v]++
			}
		}
	}
	best, bestCount := -1, 0
	for v, p := range pos {
		if n := neg[v]; n > 0 {
			if p+n > bestCount {
				best, bestCount = v, p+n
			}
		}
	}
	if best >= 0 {
		return best, true
	}
	return f.mostFrequentVar(), false
}

// Implies reports whether f ⇒ g semantically (every minterm of f is in g),
// via tautology of g ∪ ¬f.
func (f *Cover) Implies(g *Cover) bool {
	return g.Or(f.Complement()).IsTautology()
}

// Complement returns the complement of f as an SOP, computed by recursive
// Shannon expansion on the most frequent support variable. Cost can be
// exponential in the support size; it is intended for the small local node
// functions handled by the synthesis flow.
func (f *Cover) Complement() *Cover {
	if f.IsZero() {
		return One(f.NumVars)
	}
	if f.IsOne() {
		return Zero(f.NumVars)
	}
	v := f.mostFrequentVar()
	c0 := f.Cofactor(v, false).Complement().And(FromLiteral(f.NumVars, v, false))
	c1 := f.Cofactor(v, true).Complement().And(FromLiteral(f.NumVars, v, true))
	out := c0.Or(c1)
	out.Minimize()
	return out
}

func (f *Cover) mostFrequentVar() int {
	counts := make(map[int]int)
	for _, c := range f.Cubes {
		for v, l := range c {
			if l != DC {
				counts[v]++
			}
		}
	}
	best, bestCount := -1, -1
	for v, n := range counts {
		if n > bestCount || (n == bestCount && v < best) {
			best, bestCount = v, n
		}
	}
	return best
}

// String renders the cover as '+'-joined cubes, or "0" when empty.
func (f *Cover) String() string {
	if f.IsZero() {
		return "0"
	}
	parts := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}

// Equal reports semantic equality of f and g by exhaustive evaluation over
// the union support. It is intended for tests and small covers; cost is
// O(2^support).
func (f *Cover) Equal(g *Cover) bool {
	if f.NumVars != g.NumVars {
		return false
	}
	vars := unionInts(f.Support(), g.Support())
	assign := make([]bool, f.NumVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return f.Eval(assign) == g.Eval(assign)
		}
		assign[vars[i]] = false
		if !rec(i + 1) {
			return false
		}
		assign[vars[i]] = true
		return rec(i + 1)
	}
	return rec(0)
}

func unionInts(a, b []int) []int {
	seen := make(map[int]bool)
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		seen[v] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
