package sop

import (
	"fmt"
	"strings"
)

// ParseCube parses one cube in PLA input-plane notation: one character per
// variable, '1' for a positive literal, '0' for a negative literal, '-' for
// don't-care ("10-1").
func ParseCube(s string) (Cube, error) {
	c := NewCube(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			c[i] = Pos
		case '0':
			c[i] = Neg
		case '-':
		default:
			return nil, fmt.Errorf("sop: cube %q: bad literal %q at position %d", s, s[i], i)
		}
	}
	return c, nil
}

// ParseCover parses the Cover.String format over numVars variables:
// '+'-separated cubes in PLA notation ("10- + -01"), or "0" for the
// constant-0 cover. Whitespace around cubes and separators is ignored;
// every cube must be exactly numVars characters wide.
//
// The textual format is ambiguous at numVars == 1: the one-variable
// negative-literal cube also prints as "0". ParseCover resolves "0" as the
// constant-0 cover in that case too, so parse(String()) is semantically
// stable but not injective there.
func ParseCover(numVars int, s string) (*Cover, error) {
	if numVars < 0 {
		return nil, fmt.Errorf("sop: negative variable count %d", numVars)
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("sop: empty cover text")
	}
	if s == "0" {
		return Zero(numVars), nil
	}
	f := NewCover(numVars)
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("sop: empty cube in %q", s)
		}
		c, err := ParseCube(part)
		if err != nil {
			return nil, err
		}
		if len(c) != numVars {
			return nil, fmt.Errorf("sop: cube %q has %d variables, want %d", part, len(c), numVars)
		}
		f.AddCube(c)
	}
	return f, nil
}
