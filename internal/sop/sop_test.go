package sop

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cube(s string) Cube {
	c := NewCube(len(s))
	for i, ch := range s {
		switch ch {
		case '1':
			c[i] = Pos
		case '0':
			c[i] = Neg
		case '-':
			c[i] = DC
		default:
			panic("bad cube char")
		}
	}
	return c
}

func coverOf(n int, cubes ...string) *Cover {
	f := NewCover(n)
	for _, s := range cubes {
		f.AddCube(cube(s))
	}
	return f
}

func TestLitString(t *testing.T) {
	if Pos.String() != "1" || Neg.String() != "0" || DC.String() != "-" {
		t.Fatalf("unexpected literal strings %q %q %q", Pos, Neg, DC)
	}
}

func TestCubeContains(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"1--", "1--", true},
		{"1--", "11-", true},
		{"11-", "1--", false},
		{"---", "010", true},
		{"0--", "1--", false},
	}
	for _, tc := range cases {
		if got := cube(tc.a).Contains(cube(tc.b)); got != tc.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCubeIntersect(t *testing.T) {
	x, ok := cube("1-0").Intersect(cube("-10"))
	if !ok || x.String() != "110" {
		t.Fatalf("intersect = %v %v, want 110 true", x, ok)
	}
	if _, ok := cube("1--").Intersect(cube("0--")); ok {
		t.Fatal("disjoint cubes reported as intersecting")
	}
}

func TestCubeEval(t *testing.T) {
	c := cube("1-0")
	if !c.Eval([]bool{true, false, false}) {
		t.Error("100 should satisfy 1-0")
	}
	if c.Eval([]bool{true, true, true}) {
		t.Error("111 should not satisfy 1-0")
	}
	if !NewCube(3).Eval([]bool{false, false, false}) {
		t.Error("tautology cube must accept everything")
	}
}

func TestCubeDistance1(t *testing.T) {
	if v, ok := cube("10-").Distance1(cube("11-")); !ok || v != 1 {
		t.Errorf("distance1(10-,11-) = %d,%v want 1,true", v, ok)
	}
	if _, ok := cube("10-").Distance1(cube("01-")); ok {
		t.Error("distance-2 cubes reported distance-1")
	}
	if _, ok := cube("10-").Distance1(cube("1--")); ok {
		t.Error("DC mismatch must not count as distance-1")
	}
}

func TestCoverConstants(t *testing.T) {
	if !Zero(3).IsZero() {
		t.Error("Zero not zero")
	}
	if !One(3).IsOne() {
		t.Error("One not one")
	}
	if One(3).IsZero() || Zero(3).IsOne() {
		t.Error("constant confusion")
	}
}

func TestFromLiteral(t *testing.T) {
	f := FromLiteral(3, 1, true)
	if !f.Eval([]bool{false, true, false}) || f.Eval([]bool{true, false, true}) {
		t.Error("positive literal mis-evaluates")
	}
	g := FromLiteral(3, 1, false)
	if g.Eval([]bool{false, true, false}) || !g.Eval([]bool{true, false, true}) {
		t.Error("negative literal mis-evaluates")
	}
}

func TestMinimizeContainment(t *testing.T) {
	f := coverOf(3, "1--", "11-", "110")
	f.Minimize()
	if len(f.Cubes) != 1 || f.Cubes[0].String() != "1--" {
		t.Fatalf("minimize = %v, want single cube 1--", f)
	}
}

func TestMinimizeDistance1(t *testing.T) {
	f := coverOf(2, "10", "11")
	f.Minimize()
	if len(f.Cubes) != 1 || f.Cubes[0].String() != "1-" {
		t.Fatalf("minimize merge = %v, want 1-", f)
	}
}

func TestMinimizeDuplicate(t *testing.T) {
	f := coverOf(2, "1-", "1-")
	f.Minimize()
	if len(f.Cubes) != 1 {
		t.Fatalf("duplicate cubes not collapsed: %v", f)
	}
}

func TestCofactor(t *testing.T) {
	f := coverOf(3, "11-", "0-1")
	g := f.Cofactor(0, true)
	want := coverOf(3, "-1-")
	if !g.Equal(want) {
		t.Errorf("cofactor(0,1) = %v, want %v", g, want)
	}
	h := f.Cofactor(0, false)
	if !h.Equal(coverOf(3, "--1")) {
		t.Errorf("cofactor(0,0) = %v", h)
	}
}

func TestAndOr(t *testing.T) {
	a := FromLiteral(2, 0, true)
	b := FromLiteral(2, 1, true)
	and := a.And(b)
	if !and.Equal(coverOf(2, "11")) {
		t.Errorf("a&b = %v", and)
	}
	or := a.Or(b)
	if !or.Equal(coverOf(2, "1-", "-1")) {
		t.Errorf("a|b = %v", or)
	}
}

func TestSupportAndLiterals(t *testing.T) {
	f := coverOf(4, "1--0", "-1--")
	sup := f.Support()
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 1 || sup[2] != 3 {
		t.Errorf("support = %v", sup)
	}
	if f.NumLiterals() != 3 {
		t.Errorf("literals = %d, want 3", f.NumLiterals())
	}
}

func TestCommonCube(t *testing.T) {
	f := coverOf(4, "110-", "1-01")
	cc := f.CommonCube()
	if cc.String() != "1-0-" {
		t.Errorf("common cube = %s, want 1-0-", cc)
	}
	g := coverOf(2, "10", "01")
	if g.CommonCube().NumLiterals() != 0 {
		t.Errorf("xor common cube = %s, want all-DC", g.CommonCube())
	}
}

func TestDivideByCube(t *testing.T) {
	f := coverOf(3, "110", "101", "011")
	q, r := f.DivideByCube(cube("1--"))
	if len(q.Cubes) != 2 || len(r.Cubes) != 1 {
		t.Fatalf("divide: q=%v r=%v", q, r)
	}
	// f must equal cube*q + r.
	rebuilt := r.Clone()
	for _, c := range q.Cubes {
		x, ok := c.Intersect(cube("1--"))
		if !ok {
			t.Fatal("quotient cube conflicts with divisor")
		}
		rebuilt.AddCube(x)
	}
	if !rebuilt.Equal(f) {
		t.Errorf("d*q+r = %v != f = %v", rebuilt, f)
	}
}

func TestEqualSemantics(t *testing.T) {
	// x0 XOR written two ways.
	a := coverOf(2, "10", "01")
	b := coverOf(2, "01", "10")
	if !a.Equal(b) {
		t.Error("reordered covers should be equal")
	}
	if a.Equal(coverOf(2, "11")) {
		t.Error("xor != and")
	}
}

func TestComplementProperty(t *testing.T) {
	// Property: f OR f' is a tautology and f AND f' is empty, semantically.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		f := randomCover(r, 4, 1+r.Intn(4))
		fc := f.Complement()
		union := f.Or(fc)
		if !union.Equal(One(4)) {
			t.Fatalf("f + f' != 1 for %v (complement %v)", f, fc)
		}
		inter := f.And(fc)
		if !inter.Equal(Zero(4)) {
			t.Fatalf("f · f' != 0 for %v", f)
		}
	}
}

func TestMinimizeStrongExpands(t *testing.T) {
	// f = ab + a!b ∪ !a b = ... classic: f = ab + !ab + a!b should reduce
	// to a + b (expand merges across distance > 1).
	f := coverOf(2, "11", "01", "10")
	f.MinimizeStrong()
	want := coverOf(2, "1-", "-1")
	if !f.Equal(want) {
		t.Errorf("MinimizeStrong = %v, want a + b", f)
	}
	if f.NumLiterals() != 2 {
		t.Errorf("literal count %d, want 2", f.NumLiterals())
	}
}

func TestMinimizeStrongIrredundant(t *testing.T) {
	// ab + !a c + b c: the consensus term bc is redundant.
	f := coverOf(3, "11-", "0-1", "-11")
	f.MinimizeStrong()
	if len(f.Cubes) > 2 {
		t.Errorf("redundant cube not removed: %v", f)
	}
	if !f.Equal(coverOf(3, "11-", "0-1")) {
		t.Errorf("function changed: %v", f)
	}
}

func TestMinimizeStrongPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		f := randomCover(r, 5, 1+r.Intn(6))
		g := f.Clone()
		g.MinimizeStrong()
		if !f.Equal(g) {
			t.Fatalf("MinimizeStrong changed function: %v -> %v", f, g)
		}
		if g.NumLiterals() > f.NumLiterals() {
			t.Fatalf("MinimizeStrong grew literals: %v -> %v", f, g)
		}
	}
}

func TestMinimizeStrongConstants(t *testing.T) {
	z := Zero(3)
	z.MinimizeStrong()
	if !z.IsZero() {
		t.Error("zero changed")
	}
	o := One(3)
	o.MinimizeStrong()
	if !o.IsOne() {
		t.Error("one changed")
	}
	// A cover that is secretly a tautology must not break.
	taut := coverOf(1, "1", "0")
	taut.MinimizeStrong()
	if !taut.Equal(One(1)) {
		t.Errorf("tautology mishandled: %v", taut)
	}
}

func TestIsTautology(t *testing.T) {
	cases := []struct {
		f    *Cover
		want bool
	}{
		{One(2), true},
		{Zero(2), false},
		{coverOf(1, "1", "0"), true},               // x + !x
		{coverOf(2, "1-", "01"), false},            // x0 + !x0·x1 misses 00
		{coverOf(2, "1-", "0-"), true},             // x0 + !x0
		{coverOf(2, "11", "10", "01", "00"), true}, // all minterms
		{coverOf(3, "1--", "-1-", "00-"), true},    // covers everything
		{coverOf(3, "1--", "-1-", "001"), false},   // misses 000
		{FromLiteral(2, 0, true), false},
	}
	for i, tc := range cases {
		if got := tc.f.IsTautology(); got != tc.want {
			t.Errorf("case %d (%v): IsTautology = %v, want %v", i, tc.f, got, tc.want)
		}
	}
}

func TestIsTautologyMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		f := randomCover(r, 4, 1+r.Intn(6))
		want := f.Equal(One(4))
		if got := f.IsTautology(); got != want {
			t.Fatalf("IsTautology(%v) = %v, enumeration says %v", f, got, want)
		}
	}
}

func TestImplies(t *testing.T) {
	a := FromLiteral(2, 0, true)
	ab := coverOf(2, "11")
	if !ab.Implies(a) {
		t.Error("ab must imply a")
	}
	if a.Implies(ab) {
		t.Error("a must not imply ab")
	}
	if !a.Implies(One(2)) || !Zero(2).Implies(a) {
		t.Error("constant implication broken")
	}
}

func TestComplementConstants(t *testing.T) {
	if !Zero(2).Complement().IsOne() {
		t.Error("!0 != 1")
	}
	if !One(2).Complement().IsZero() {
		t.Error("!1 != 0")
	}
}

func TestCoverString(t *testing.T) {
	if got := Zero(2).String(); got != "0" {
		t.Errorf("Zero string %q", got)
	}
	f := coverOf(2, "10", "01")
	if got := f.String(); got != "10 + 01" {
		t.Errorf("cover string %q", got)
	}
}

func TestAddCubePanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width mismatch must panic")
		}
	}()
	NewCover(3).AddCube(NewCube(2))
}

func TestLiterals(t *testing.T) {
	c := cube("1-0")
	lits := c.Literals()
	if len(lits) != 2 || lits[0] != 0 || lits[1] != 2 {
		t.Errorf("Literals = %v", lits)
	}
	d := c.Clone()
	d[0] = DC
	if c[0] == DC {
		t.Error("Clone aliases storage")
	}
}

// randomCover builds a random cover for property tests.
func randomCover(r *rand.Rand, nvars, ncubes int) *Cover {
	f := NewCover(nvars)
	for i := 0; i < ncubes; i++ {
		c := NewCube(nvars)
		for v := range c {
			c[v] = Lit(r.Intn(3))
		}
		f.AddCube(c)
	}
	return f
}

func TestMinimizePreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		f := randomCover(r, 5, 1+r.Intn(6))
		g := f.Clone()
		g.Minimize()
		if !f.Equal(g) {
			t.Fatalf("minimize changed function: %v -> %v", f, g)
		}
	}
}

func TestCofactorShannon(t *testing.T) {
	// Property: f = x*f_x + x'*f_x' for random covers.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		f := randomCover(r, 4, 1+r.Intn(5))
		v := r.Intn(4)
		fx := f.Cofactor(v, true).And(FromLiteral(4, v, true))
		fnx := f.Cofactor(v, false).And(FromLiteral(4, v, false))
		if !fx.Or(fnx).Equal(f) {
			t.Fatalf("Shannon expansion failed for %v on var %d", f, v)
		}
	}
}

func TestQuickIntersectSound(t *testing.T) {
	// Property: any assignment satisfying the intersection satisfies both.
	f := func(raw [6]byte, assignBits byte) bool {
		a, b := NewCube(3), NewCube(3)
		for i := 0; i < 3; i++ {
			a[i] = Lit(raw[i] % 3)
			b[i] = Lit(raw[3+i] % 3)
		}
		x, ok := a.Intersect(b)
		assign := []bool{assignBits&1 != 0, assignBits&2 != 0, assignBits&4 != 0}
		if !ok {
			// Disjoint: no assignment may satisfy both.
			return !(a.Eval(assign) && b.Eval(assign))
		}
		if x.Eval(assign) != (a.Eval(assign) && b.Eval(assign)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivideRebuildProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		f := randomCover(r, 5, 1+r.Intn(6))
		d := NewCube(5)
		for v := range d {
			d[v] = Lit(r.Intn(3))
		}
		q, rem := f.DivideByCube(d)
		rebuilt := rem.Clone()
		for _, c := range q.Cubes {
			if x, ok := c.Intersect(d); ok {
				rebuilt.AddCube(x)
			} else {
				t.Fatal("quotient conflicts with divisor")
			}
		}
		if !rebuilt.Equal(f) {
			t.Fatalf("divide/rebuild mismatch for %v / %v", f, d)
		}
	}
}
