package sop

import "testing"

func TestParseCoverRoundTrip(t *testing.T) {
	cases := []struct {
		n    int
		text string
	}{
		{3, "10- + -01"},
		{3, "---"},
		{2, "11"},
		{4, "1-0- + --11 + 0---"},
		{1, "1"},
		{3, "0"},
		{0, "0"},
	}
	for _, tc := range cases {
		f, err := ParseCover(tc.n, tc.text)
		if err != nil {
			t.Fatalf("ParseCover(%d, %q): %v", tc.n, tc.text, err)
		}
		if got := f.String(); got != tc.text {
			t.Errorf("ParseCover(%d, %q).String() = %q", tc.n, tc.text, got)
		}
	}
}

func TestParseCoverWhitespace(t *testing.T) {
	f, err := ParseCover(3, "  10-+ -01 ")
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "10- + -01" {
		t.Errorf("got %q", f.String())
	}
}

func TestParseCoverErrors(t *testing.T) {
	cases := []struct {
		n    int
		text string
	}{
		{3, ""},
		{3, "10"},       // wrong width
		{3, "10-+"},     // trailing empty cube
		{3, "1x-"},      // bad literal
		{3, "10- 01-"},  // missing separator
		{-1, "0"},       // bad variable count
		{2, "11 + 1-1"}, // mixed widths
	}
	for _, tc := range cases {
		if _, err := ParseCover(tc.n, tc.text); err == nil {
			t.Errorf("ParseCover(%d, %q) accepted", tc.n, tc.text)
		}
	}
}

func TestParseCoverOneVarZeroCollision(t *testing.T) {
	// The n=1 negative-literal cube prints as "0", colliding with the
	// constant-0 cover; the parser resolves the text as constant 0.
	f, err := ParseCover(1, "0")
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZero() {
		t.Errorf("ParseCover(1, \"0\") = %q, want constant 0", f.String())
	}
}

// FuzzParseCover exercises the cover parser on arbitrary inputs: it must
// never panic, and any cover it accepts must have consistent cube widths,
// survive a String/reparse round trip semantically, and keep its function
// under Minimize.
func FuzzParseCover(f *testing.F) {
	seeds := []struct {
		n int
		s string
	}{
		{3, "10- + -01"},
		{3, "0"},
		{3, "---"},
		{2, "11"},
		{4, "1-0- + --11 + 0---"},
		{1, "1"},
		{2, "1- + -1"},
		{5, "10-01 + -1--0"},
	}
	for _, s := range seeds {
		f.Add(s.n, s.s)
	}
	f.Fuzz(func(t *testing.T, n int, s string) {
		if n < 0 || n > 10 {
			t.Skip() // keep the exhaustive Equal check tractable
		}
		c, err := ParseCover(n, s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if c.NumVars != n {
			t.Fatalf("accepted cover has %d vars, want %d", c.NumVars, n)
		}
		for _, cube := range c.Cubes {
			if len(cube) != n {
				t.Fatalf("accepted cube %q has width %d, want %d", cube, len(cube), n)
			}
		}
		text := c.String()
		back, err := ParseCover(n, text)
		if err != nil {
			t.Fatalf("reparse of own output %q failed: %v", text, err)
		}
		if !c.Equal(back) {
			t.Fatalf("round trip changed function: %q -> %q", s, text)
		}
		m := c.Clone()
		m.Minimize()
		if !m.Equal(c) {
			t.Fatalf("Minimize changed function of %q: %q", text, m.String())
		}
	})
}
