package opt

import (
	"sort"
	"strings"

	"powermap/internal/network"
	"powermap/internal/sop"
)

// Kernel extraction: the multi-cube half of fast_extract. A kernel of an
// SOP f is a cube-free quotient of f by a cube; extracting a kernel shared
// by several nodes (or used several times in one node) as a new node
// removes duplicated literals. Together with the common-cube extraction in
// ExtractCubes this reproduces the character of the SIS rugged front end
// the paper starts from.

// gLit is a literal over a global signal: a driving node and a phase.
type gLit struct {
	node *network.Node
	neg  bool
}

func (l gLit) key() string {
	if l.neg {
		return "!" + l.node.Name
	}
	return l.node.Name
}

// gCube is a product of global literals, sorted by key.
type gCube []gLit

func (c gCube) key() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.key()
	}
	return strings.Join(parts, "*")
}

// gCover is a set of global cubes, sorted by cube key — the canonical form
// used to match divisors across nodes.
type gCover []gCube

func (f gCover) key() string {
	parts := make([]string, len(f))
	for i, c := range f {
		parts[i] = c.key()
	}
	return strings.Join(parts, " + ")
}

func (f gCover) numLiterals() int {
	n := 0
	for _, c := range f {
		n += len(c)
	}
	return n
}

func sortGCover(f gCover) gCover {
	for _, c := range f {
		sort.Slice(c, func(i, j int) bool { return c[i].key() < c[j].key() })
	}
	sort.Slice(f, func(i, j int) bool { return f[i].key() < f[j].key() })
	return f
}

// globalCover converts a node's local SOP into global-literal form.
func globalCover(n *network.Node) gCover {
	out := make(gCover, 0, len(n.Func.Cubes))
	for _, c := range n.Func.Cubes {
		var gc gCube
		for v, l := range c {
			if l != sop.DC {
				gc = append(gc, gLit{node: n.Fanin[v], neg: l == sop.Neg})
			}
		}
		out = append(out, gc)
	}
	return sortGCover(out)
}

// cubeContains reports whether super contains every literal of sub.
func cubeContains(super, sub gCube) bool {
	for _, l := range sub {
		found := false
		for _, s := range super {
			if s == l {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// cubeMinus removes sub's literals from super.
func cubeMinus(super, sub gCube) gCube {
	var out gCube
	for _, s := range super {
		drop := false
		for _, l := range sub {
			if s == l {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, s)
		}
	}
	return out
}

// commonCube returns the cube of literals shared by every cube of f.
func commonCube(f gCover) gCube {
	if len(f) == 0 {
		return nil
	}
	var common gCube
	for _, l := range f[0] {
		inAll := true
		for _, c := range f[1:] {
			if !cubeContains(c, gCube{l}) {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, l)
		}
	}
	return common
}

// divideByCube returns the quotient f / c (cubes of f containing c, with
// c removed).
func divideByCube(f gCover, c gCube) gCover {
	var q gCover
	for _, fc := range f {
		if cubeContains(fc, c) {
			q = append(q, cubeMinus(fc, c))
		}
	}
	return q
}

// weakDivide computes the algebraic division f / d for a multi-cube
// divisor d: the intersection over d's cubes of the single-cube quotients.
// Returns the quotient (nil when empty).
func weakDivide(f gCover, d gCover) gCover {
	if len(d) == 0 {
		return nil
	}
	quotient := divideByCube(f, d[0])
	for _, dc := range d[1:] {
		next := divideByCube(f, dc)
		quotient = intersectCovers(quotient, next)
		if len(quotient) == 0 {
			return nil
		}
	}
	return quotient
}

func intersectCovers(a, b gCover) gCover {
	keys := map[string]bool{}
	for _, c := range b {
		keys[sortedCube(c).key()] = true
	}
	var out gCover
	for _, c := range a {
		if keys[sortedCube(c).key()] {
			out = append(out, c)
		}
	}
	return out
}

func sortedCube(c gCube) gCube {
	d := append(gCube(nil), c...)
	sort.Slice(d, func(i, j int) bool { return d[i].key() < d[j].key() })
	return d
}

// kernelsOf enumerates the kernels of f (cube-free quotients by cubes),
// including f itself when cube-free, bounded by maxKernels.
func kernelsOf(f gCover, maxKernels int) []gCover {
	seen := map[string]bool{}
	var out []gCover
	var rec func(g gCover)
	rec = func(g gCover) {
		if len(out) >= maxKernels {
			return
		}
		// Make cube-free.
		if cc := commonCube(g); len(cc) > 0 {
			g = divideByCube(g, cc)
		}
		if len(g) < 2 {
			return
		}
		g = sortGCover(g)
		k := g.key()
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, g)
		// Recurse on literal quotients with ≥ 2 occurrences.
		counts := map[string]gLit{}
		tally := map[string]int{}
		for _, c := range g {
			for _, l := range c {
				counts[l.key()] = l
				tally[l.key()]++
			}
		}
		keys := make([]string, 0, len(tally))
		for lk, n := range tally {
			if n >= 2 {
				keys = append(keys, lk)
			}
		}
		sort.Strings(keys)
		for _, lk := range keys {
			rec(divideByCube(g, gCube{counts[lk]}))
		}
	}
	rec(f)
	return out
}

// maxKernelsPerNode bounds enumeration; node functions are small after
// simplify, so this is rarely hit.
const maxKernelsPerNode = 40

// ExtractKernels greedily extracts the most valuable multi-cube divisor
// shared across the network (or used repeatedly inside one node), creating
// one new node per extraction. Returns the number of extractions.
func ExtractKernels(nw *network.Network, maxIters int) int {
	extracted := 0
	for iter := 0; iter < maxIters; iter++ {
		if !extractBestKernel(nw) {
			break
		}
		extracted++
	}
	return extracted
}

func extractBestKernel(nw *network.Network) bool {
	// Gather kernel candidates with their uses.
	type use struct {
		node     *network.Node
		quotient gCover
	}
	candidates := map[string]gCover{}
	uses := map[string][]use{}
	for _, n := range nw.Nodes {
		if n.Kind != network.Internal || len(n.Func.Cubes) < 2 {
			continue
		}
		f := globalCover(n)
		for _, k := range kernelsOf(f, maxKernelsPerNode) {
			key := k.key()
			if _, ok := candidates[key]; !ok {
				candidates[key] = k
			}
			q := weakDivide(f, k)
			if len(q) == 0 {
				continue
			}
			uses[key] = append(uses[key], use{node: n, quotient: q})
		}
	}
	// Value = saved literals. In the algebraic model the d·q part of f
	// holds |d|·lits(q) + |q|·lits(d) literals; rewritten as d_var·q it
	// holds lits(q) + |q|, so each use saves
	// (|d|−1)·lits(q) + |q|·(lits(d)−1); the new node itself costs lits(d).
	bestKey := ""
	bestValue := 0
	keys := make([]string, 0, len(candidates))
	for k := range candidates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		d := candidates[key]
		ld := d.numLiterals()
		value := -ld
		for _, u := range uses[key] {
			value += (len(d)-1)*u.quotient.numLiterals() + len(u.quotient)*(ld-1)
		}
		if value > bestValue {
			bestValue, bestKey = value, key
		}
	}
	if bestKey == "" {
		return false
	}
	d := candidates[bestKey]
	dNode := materializeGCover(nw, d)
	for _, u := range uses[bestKey] {
		substituteDivisor(nw, u.node, d, dNode)
	}
	return true
}

// materializeGCover creates a new node computing the divisor.
func materializeGCover(nw *network.Network, d gCover) *network.Node {
	var fanins []*network.Node
	index := map[*network.Node]int{}
	for _, c := range d {
		for _, l := range c {
			if _, ok := index[l.node]; !ok {
				index[l.node] = len(fanins)
				fanins = append(fanins, l.node)
			}
		}
	}
	f := sop.NewCover(len(fanins))
	for _, c := range d {
		cube := sop.NewCube(len(fanins))
		for _, l := range c {
			if l.neg {
				cube[index[l.node]] = sop.Neg
			} else {
				cube[index[l.node]] = sop.Pos
			}
		}
		f.AddCube(cube)
	}
	f.Minimize()
	return nw.AddNode(nw.FreshName("kx"), fanins, f)
}

// substituteDivisor rewrites n as d_var·(f/d) + remainder.
func substituteDivisor(nw *network.Network, n *network.Node, d gCover, dNode *network.Node) {
	f := globalCover(n)
	q := weakDivide(f, d)
	if len(q) == 0 {
		return
	}
	// Remainder: cubes of f not generated by d·q.
	generated := map[string]bool{}
	for _, qc := range q {
		for _, dc := range d {
			merged := append(append(gCube(nil), qc...), dc...)
			generated[sortedCube(merged).key()] = true
		}
	}
	var remainder gCover
	for _, fc := range f {
		if !generated[sortedCube(fc).key()] {
			remainder = append(remainder, fc)
		}
	}
	// New fanin list: union of quotient/remainder signals plus dNode.
	var fanins []*network.Node
	index := map[*network.Node]int{}
	add := func(x *network.Node) int {
		if i, ok := index[x]; ok {
			return i
		}
		index[x] = len(fanins)
		fanins = append(fanins, x)
		return len(fanins) - 1
	}
	toCube := func(c gCube, width int, extra int) sop.Cube {
		cube := sop.NewCube(width)
		for _, l := range c {
			v := add(l.node)
			if l.neg {
				cube[v] = sop.Neg
			} else {
				cube[v] = sop.Pos
			}
		}
		if extra >= 0 {
			cube[extra] = sop.Pos
		}
		return cube
	}
	// First pass registers all signals so the width is known.
	for _, c := range q {
		for _, l := range c {
			add(l.node)
		}
	}
	for _, c := range remainder {
		for _, l := range c {
			add(l.node)
		}
	}
	dVar := add(dNode)
	width := len(fanins)
	out := sop.NewCover(width)
	for _, c := range q {
		out.AddCube(toCube(c, width, dVar))
	}
	for _, c := range remainder {
		out.AddCube(toCube(c, width, -1))
	}
	out.Minimize()
	nw.SetFunction(n, fanins, out)
}
