package opt

import (
	"math/rand"
	"testing"

	"powermap/internal/network"
	"powermap/internal/sop"
)

func TestStrashMergesDuplicates(t *testing.T) {
	nw := network.New("dup")
	a, b := nw.AddPI("a"), nw.AddPI("b")
	and := func() *sop.Cover {
		f := sop.NewCover(2)
		f.AddCube(sop.Cube{sop.Pos, sop.Pos})
		return f
	}
	n1 := nw.AddNode("n1", []*network.Node{a, b}, and())
	n2 := nw.AddNode("n2", []*network.Node{b, a}, and()) // commuted duplicate
	inv := sop.FromLiteral(1, 0, false)
	y1 := nw.AddNode("y1", []*network.Node{n1}, inv)
	y2 := nw.AddNode("y2", []*network.Node{n2}, inv.Clone())
	nw.MarkOutput("o1", y1)
	nw.MarkOutput("o2", y2)
	ref := nw.Duplicate()
	merged := Strash(nw)
	// n2 merges into n1 (commutative), then y2 merges into y1.
	if merged != 2 {
		t.Errorf("merged %d nodes, want 2", merged)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
	if got := nw.Stats().Nodes; got != 2 {
		t.Errorf("%d nodes remain, want 2", got)
	}
}

func TestStrashDistinguishesPhases(t *testing.T) {
	nw := network.New("ph")
	a, b := nw.AddPI("a"), nw.AddPI("b")
	f1 := sop.NewCover(2)
	f1.AddCube(sop.Cube{sop.Pos, sop.Neg})
	f2 := sop.NewCover(2)
	f2.AddCube(sop.Cube{sop.Neg, sop.Pos})
	n1 := nw.AddNode("n1", []*network.Node{a, b}, f1) // a·!b
	n2 := nw.AddNode("n2", []*network.Node{a, b}, f2) // !a·b
	nw.MarkOutput("o1", n1)
	nw.MarkOutput("o2", n2)
	if merged := Strash(nw); merged != 0 {
		t.Errorf("distinct functions merged: %d", merged)
	}
	// But the commuted equivalent of n1 does merge: !b·a over (b,a).
	f3 := sop.NewCover(2)
	f3.AddCube(sop.Cube{sop.Neg, sop.Pos})
	n3 := nw.AddNode("n3", []*network.Node{b, a}, f3) // !b·a == a·!b
	nw.MarkOutput("o3", n3)
	if merged := Strash(nw); merged != 1 {
		t.Errorf("commuted duplicate not merged: %d", merged)
	}
}

func TestStrashRandomPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for trial := 0; trial < 20; trial++ {
		nw := randomNetwork(r, 4, 10)
		ref := nw.Duplicate()
		Strash(nw)
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertEquivalent(t, ref, nw)
	}
}

func TestStrashCascades(t *testing.T) {
	// Two identical chains must collapse into one, requiring the
	// fixed-point iteration.
	nw := network.New("chain")
	a, b := nw.AddPI("a"), nw.AddPI("b")
	and := func() *sop.Cover {
		f := sop.NewCover(2)
		f.AddCube(sop.Cube{sop.Pos, sop.Pos})
		return f
	}
	inv := func() *sop.Cover { return sop.FromLiteral(1, 0, false) }
	c1 := nw.AddNode("c1", []*network.Node{a, b}, and())
	d1 := nw.AddNode("d1", []*network.Node{c1}, inv())
	c2 := nw.AddNode("c2", []*network.Node{a, b}, and())
	d2 := nw.AddNode("d2", []*network.Node{c2}, inv())
	e := nw.AddNode("e", []*network.Node{d1, d2}, and())
	nw.MarkOutput("o", e)
	Strash(nw)
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	// e now reads the same node twice; total internal nodes = c, d, e.
	if got := nw.Stats().Nodes; got != 3 {
		t.Errorf("%d nodes remain, want 3", got)
	}
}
