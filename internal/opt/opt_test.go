package opt

import (
	"context"
	"math/rand"
	"testing"

	"powermap/internal/blif"
	"powermap/internal/network"
	"powermap/internal/prob"
	"powermap/internal/sop"
)

func mustParse(t *testing.T, text string) *network.Network {
	t.Helper()
	nw, err := blif.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func assertEquivalent(t *testing.T, ref, got *network.Network) {
	t.Helper()
	ok, err := prob.EquivalentOutputs(context.Background(), ref, got)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("optimization changed the network function")
	}
}

func TestSweepConstants(t *testing.T) {
	text := `
.model consts
.inputs a b
.outputs y
.names one
1
.names a one t
11 1
.names t b y
1- 1
-1 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	consts, _, err := Sweep(nw)
	if err != nil {
		t.Fatal(err)
	}
	if consts == 0 {
		t.Error("constant not propagated")
	}
	assertEquivalent(t, ref, nw)
	if nw.NodeByName("one") != nil {
		t.Error("constant node survived sweep")
	}
}

func TestSweepConstantZeroFeeding(t *testing.T) {
	text := `
.model zero
.inputs a
.outputs y
.names z
.names a z y
11 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	if _, _, err := Sweep(nw); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
	// y = a AND 0 = 0: y's node becomes constant zero.
	y := nw.NodeByName("y")
	if y == nil || !y.Func.IsZero() {
		t.Errorf("y should be constant 0, got %v", y)
	}
}

func TestSweepBuffers(t *testing.T) {
	text := `
.model bufs
.inputs a b
.outputs y
.names a t
1 1
.names t b y
11 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	_, bufs, err := Sweep(nw)
	if err != nil {
		t.Fatal(err)
	}
	if bufs == 0 {
		t.Error("buffer not collapsed")
	}
	assertEquivalent(t, ref, nw)
	y := nw.NodeByName("y")
	if y.FaninIndex(nw.NodeByName("a")) < 0 {
		t.Error("y should read a directly")
	}
}

func TestSweepInverters(t *testing.T) {
	text := `
.model invs
.inputs a b
.outputs y
.names a t
0 1
.names t b y
11 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	if _, _, err := Sweep(nw); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
	// y = !a AND b now reads a directly with a flipped literal.
	y := nw.NodeByName("y")
	if y.FaninIndex(nw.NodeByName("a")) < 0 {
		t.Error("y should read a directly after inverter collapse")
	}
}

func TestSweepInverterWithSharedFanin(t *testing.T) {
	// y reads both a and !a: collapsing must merge the columns.
	text := `
.model shared
.inputs a b
.outputs y
.names a na
0 1
.names a na b y
1-1 1
-11 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	if _, _, err := Sweep(nw); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
}

func TestEliminateSmallNodes(t *testing.T) {
	text := `
.model elim
.inputs a b c d
.outputs y
.names a b t
11 1
.names t c u
1- 1
-1 1
.names u d y
11 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	n, err := Eliminate(nw, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("nothing eliminated")
	}
	assertEquivalent(t, ref, nw)
}

func TestEliminateRespectsThreshold(t *testing.T) {
	// A node with many fanouts whose substitution grows literals a lot
	// must survive a zero threshold.
	text := `
.model keep
.inputs a b c d e f
.outputs y z w
.names a b c t
111 1
100 1
.names t d y
11 1
.names t e z
11 1
.names t f w
11 1
.end
`
	nw := mustParse(t, text)
	before := len(nw.Nodes)
	if _, err := Eliminate(nw, 0, 40); err != nil {
		t.Fatal(err)
	}
	if nw.NodeByName("t") == nil {
		t.Errorf("high-value node eliminated (nodes %d -> %d)", before, len(nw.Nodes))
	}
}

func TestExtractCubes(t *testing.T) {
	// a·b appears in three nodes: extractable.
	text := `
.model fx
.inputs a b c d e
.outputs x y z
.names a b c x
111 1
.names a b d y
111 1
.names a b e z
111 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	litsBefore := nw.Stats().Literals
	n := ExtractCubes(nw, 10)
	if n == 0 {
		t.Fatal("no cube extracted")
	}
	assertEquivalent(t, ref, nw)
	if lits := nw.Stats().Literals; lits >= litsBefore {
		t.Errorf("extraction did not reduce literals: %d -> %d", litsBefore, lits)
	}
}

func TestOptimizeScriptPreservesFunction(t *testing.T) {
	text := `
.model script
.inputs a b c d e
.outputs y z
.names one
1
.names a buf
1 1
.names buf b t1
11 1
.names t1 one t2
11 1
.names t2 c d t3
11- 1
1-1 1
.names t3 e y
1- 1
-1 1
.names a b z
10 1
01 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	st, err := Optimize(context.Background(), nw, Options{EliminateThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
	if st.LiteralsAfter > st.LiteralsBefore {
		t.Errorf("optimization grew the network: %d -> %d literals",
			st.LiteralsBefore, st.LiteralsAfter)
	}
	if st.ConstantsPropagated == 0 || st.BuffersCollapsed == 0 {
		t.Errorf("expected sweep activity, got %+v", st)
	}
}

func TestOptimizeStrongSimplify(t *testing.T) {
	// The Espresso-style pass must reduce this classic redundancy and
	// preserve the function through the full script.
	text := `
.model strong
.inputs a b c
.outputs y
.names a b c y
11- 1
0-1 1
-11 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	st, err := Optimize(context.Background(), nw, Options{EliminateThreshold: -1, StrongSimplify: true})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
	if st.LiteralsAfter >= 6 {
		t.Errorf("consensus cube not removed: %d literals", st.LiteralsAfter)
	}
}

func TestOptimizeRandomNetworksStrong(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(r, 5, 10)
		ref := nw.Duplicate()
		if _, err := Optimize(context.Background(), nw, Options{EliminateThreshold: 3, StrongSimplify: true}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertEquivalent(t, ref, nw)
	}
}

func TestOptimizeRandomNetworks(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		nw := randomNetwork(r, 5, 10)
		ref := nw.Duplicate()
		if _, err := Optimize(context.Background(), nw, Options{EliminateThreshold: 3}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: invalid network: %v", trial, err)
		}
		assertEquivalent(t, ref, nw)
	}
}

func randomNetwork(r *rand.Rand, npi, nnodes int) *network.Network {
	nw := network.New("rand")
	var pool []*network.Node
	for i := 0; i < npi; i++ {
		pool = append(pool, nw.AddPI(nw.FreshName("pi")))
	}
	for i := 0; i < nnodes; i++ {
		k := 1 + r.Intn(3)
		var fanins []*network.Node
		seen := map[*network.Node]bool{}
		for len(fanins) < k {
			f := pool[r.Intn(len(pool))]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		f := sop.NewCover(k)
		for cbi := 0; cbi < 1+r.Intn(3); cbi++ {
			cube := sop.NewCube(k)
			for v := range cube {
				cube[v] = sop.Lit(r.Intn(3))
			}
			f.AddCube(cube)
		}
		pool = append(pool, nw.AddNode(nw.FreshName("n"), fanins, f))
	}
	nw.MarkOutput("o1", pool[len(pool)-1])
	nw.MarkOutput("o2", pool[len(pool)-2])
	return nw
}
