// Package opt implements the light technology-independent optimization
// used as this repository's stand-in for the SIS "rugged" script, which the
// paper runs before technology decomposition (Section 4). The passes are:
//
//   - Sweep: constant propagation, buffer/inverter collapsing, removal of
//     dangling logic;
//   - Simplify: per-node two-level cleanup (single-cube containment and
//     distance-1 merging);
//   - Eliminate: collapsing low-value nodes into their fanouts (the SIS
//     "eliminate" with a literal-growth threshold);
//   - ExtractCubes: greedy common-cube extraction across nodes, a reduced
//     fast_extract that leaves networks with the same "small simple
//     nodes" character the paper attributes to its starting points.
//
// Optimize runs them as a fixed script. All passes preserve every primary
// output function exactly (tested with BDD equivalence).
package opt

import (
	"context"
	"fmt"
	"sort"

	"powermap/internal/network"
	"powermap/internal/sop"
)

// Options tunes the optimization script.
type Options struct {
	// EliminateThreshold is the maximum literal-count growth tolerated
	// when collapsing a node into its fanouts (SIS eliminate value).
	// Negative disables elimination.
	EliminateThreshold int
	// MaxExtractIterations caps common-cube extractions; 0 means 100.
	MaxExtractIterations int
	// MaxNodeLiterals skips collapsing into nodes that would grow beyond
	// this literal count; 0 means 24.
	MaxNodeLiterals int
	// StrongSimplify applies the Espresso-style expand/irredundant pass to
	// small nodes instead of the cheap containment pass. Off by default:
	// maximally simplified nodes leave the power-aware decomposition less
	// freedom, shifting the Methods II/I comparison (see EXPERIMENTS.md).
	StrongSimplify bool
}

// Stats reports what the script changed.
type Stats struct {
	ConstantsPropagated int
	BuffersCollapsed    int
	NodesEliminated     int
	CubesExtracted      int
	KernelsExtracted    int
	LiteralsBefore      int
	LiteralsAfter       int
}

// Optimize runs the full script on the network in place. The script
// mutates nw as it goes, but every pass leaves the network consistent, so
// a ctx expiry between passes aborts with nw still usable.
func Optimize(ctx context.Context, nw *network.Network, opt Options) (Stats, error) {
	if opt.MaxExtractIterations == 0 {
		opt.MaxExtractIterations = 100
	}
	if opt.MaxNodeLiterals == 0 {
		opt.MaxNodeLiterals = 24
	}
	var st Stats
	st.LiteralsBefore = nw.Stats().Literals
	for pass := 0; pass < 4; pass++ {
		if err := ctx.Err(); err != nil {
			return st, fmt.Errorf("opt: %w", err)
		}
		changed := false
		c, b, err := Sweep(nw)
		if err != nil {
			return st, err
		}
		st.ConstantsPropagated += c
		st.BuffersCollapsed += b
		changed = changed || c > 0 || b > 0
		if opt.StrongSimplify {
			SimplifyStrong(nw)
		} else {
			Simplify(nw)
		}
		if opt.EliminateThreshold >= 0 {
			e, err := Eliminate(nw, opt.EliminateThreshold, opt.MaxNodeLiterals)
			if err != nil {
				return st, err
			}
			st.NodesEliminated += e
			changed = changed || e > 0
		}
		x := ExtractCubes(nw, opt.MaxExtractIterations)
		st.CubesExtracted += x
		changed = changed || x > 0
		kx := ExtractKernels(nw, opt.MaxExtractIterations)
		st.KernelsExtracted += kx
		changed = changed || kx > 0
		if !changed {
			break
		}
	}
	if _, _, err := Sweep(nw); err != nil {
		return st, err
	}
	if opt.StrongSimplify {
		SimplifyStrong(nw)
	} else {
		Simplify(nw)
	}
	nw.Sweep()
	st.LiteralsAfter = nw.Stats().Literals
	return st, nw.Check()
}

// Simplify minimizes every node cover in place with the cheap containment
// and distance-1 pass.
func Simplify(nw *network.Network) {
	for _, n := range nw.Nodes {
		if n.Kind == network.Internal {
			n.Func.Minimize()
		}
	}
}

// SimplifyStrong minimizes small nodes with the Espresso-style
// expand/irredundant pass (the "node simplification" direction of the
// paper's Shen-et-al. reference), falling back to the cheap pass for wide
// nodes (MinimizeStrong complements the cover).
func SimplifyStrong(nw *network.Network) {
	const strongLimit = 10
	for _, n := range nw.Nodes {
		if n.Kind != network.Internal {
			continue
		}
		if n.Func.NumVars <= strongLimit {
			n.Func.MinimizeStrong()
		} else {
			n.Func.Minimize()
		}
	}
}

// Sweep propagates constants and collapses buffers and inverter-feeding
// literals, returning (constants propagated, buffers collapsed).
func Sweep(nw *network.Network) (consts, buffers int, err error) {
	for {
		changed := false
		for _, n := range append([]*network.Node(nil), nw.Nodes...) {
			if n.Kind != network.Internal && n.Kind != network.Constant {
				continue
			}
			if nw.NodeByName(n.Name) != n {
				continue // already deleted this round
			}
			n.Func.Minimize()
			switch {
			case n.Kind == network.Constant || n.Func.IsZero() || n.Func.IsOne():
				if propagateConstant(nw, n) {
					consts++
					changed = true
				}
				// Demote to a true constant source so downstream passes
				// (decomposition, mapping) treat it like an input tied to
				// VDD/GND rather than a logic node.
				if n.Kind == network.Internal {
					value := n.Func.IsOne()
					f := sop.Zero(0)
					if value {
						f = sop.One(0)
					}
					nw.SetFunction(n, nil, f)
					n.Kind = network.Constant
					changed = true
				}
			case isBufferNode(n):
				if collapseWire(nw, n, false) {
					buffers++
					changed = true
				}
			case isInvNode(n):
				if collapseWire(nw, n, true) {
					buffers++
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	nw.Sweep()
	return consts, buffers, nw.Check()
}

func isBufferNode(n *network.Node) bool {
	return len(n.Fanin) == 1 && len(n.Func.Cubes) == 1 && n.Func.Cubes[0][0] == sop.Pos
}

func isInvNode(n *network.Node) bool {
	return len(n.Fanin) == 1 && len(n.Func.Cubes) == 1 && n.Func.Cubes[0][0] == sop.Neg
}

// propagateConstant substitutes a constant node's value into its fanouts by
// cofactoring their covers. Nodes driving outputs stay (the constant value
// must still be produced). Returns whether anything changed.
func propagateConstant(nw *network.Network, n *network.Node) bool {
	value := n.Func.IsOne()
	changed := false
	for _, fo := range append([]*network.Node(nil), n.Fanout...) {
		for {
			v := fo.FaninIndex(n)
			if v < 0 {
				break
			}
			cofactored := fo.Func.Cofactor(v, value)
			fanins := append([]*network.Node(nil), fo.Fanin...)
			fanins = append(fanins[:v], fanins[v+1:]...)
			nw.SetFunction(fo, fanins, dropVar(cofactored, v))
			changed = true
		}
	}
	return changed
}

// dropVar removes variable v (already don't-care in every cube) from the
// cover, shrinking the variable space by one.
func dropVar(f *sop.Cover, v int) *sop.Cover {
	g := sop.NewCover(f.NumVars - 1)
	for _, c := range f.Cubes {
		nc := make(sop.Cube, 0, len(c)-1)
		nc = append(nc, c[:v]...)
		nc = append(nc, c[v+1:]...)
		g.Cubes = append(g.Cubes, nc)
	}
	return g
}

// collapseWire substitutes a buffer (or inverter) node into its fanouts.
// Inverter substitution flips the phase of the corresponding literal in
// every fanout cube. Output-driving wires are preserved. Returns whether
// the node was fully collapsed out of all fanouts.
func collapseWire(nw *network.Network, n *network.Node, invert bool) bool {
	src := n.Fanin[0]
	changed := false
	for _, fo := range append([]*network.Node(nil), n.Fanout...) {
		if fo.FaninIndex(src) >= 0 {
			// The fanout already reads src directly: substituting would
			// create a duplicate fanin column; merge via full substitution.
			if substituteLiteral(nw, fo, n, src, invert) {
				changed = true
			}
			continue
		}
		v := fo.FaninIndex(n)
		if v < 0 {
			continue
		}
		if invert {
			flipVar(fo.Func, v)
		}
		nw.ReplaceFanin(fo, n, src)
		changed = true
	}
	return changed
}

// substituteLiteral rewrites fo's cover so that variable refs to wire go
// through the existing src column instead (phase-adjusted), then drops the
// wire fanin.
func substituteLiteral(nw *network.Network, fo, wire, src *network.Node, invert bool) bool {
	vWire := fo.FaninIndex(wire)
	vSrc := fo.FaninIndex(src)
	if vWire < 0 || vSrc < 0 {
		return false
	}
	out := sop.NewCover(fo.Func.NumVars)
	for _, c := range fo.Func.Cubes {
		nc := c.Clone()
		lit := nc[vWire]
		if lit != sop.DC {
			want := lit
			if invert {
				if want == sop.Pos {
					want = sop.Neg
				} else {
					want = sop.Pos
				}
			}
			if nc[vSrc] != sop.DC && nc[vSrc] != want {
				continue // cube requires src and !src simultaneously: empty
			}
			nc[vSrc] = want
			nc[vWire] = sop.DC
		}
		out.Cubes = append(out.Cubes, nc)
	}
	fanins := append([]*network.Node(nil), fo.Fanin...)
	fanins = append(fanins[:vWire], fanins[vWire+1:]...)
	nw.SetFunction(fo, fanins, dropVar(out, vWire))
	return true
}

// flipVar complements the phase of variable v in every cube.
func flipVar(f *sop.Cover, v int) {
	for _, c := range f.Cubes {
		switch c[v] {
		case sop.Pos:
			c[v] = sop.Neg
		case sop.Neg:
			c[v] = sop.Pos
		}
	}
}

// Eliminate collapses nodes whose substitution into all fanouts grows the
// network by at most threshold literals (and keeps every affected fanout
// under maxNodeLiterals). Returns the number of nodes eliminated.
func Eliminate(nw *network.Network, threshold, maxNodeLiterals int) (int, error) {
	eliminated := 0
	for {
		candidate := pickEliminationCandidate(nw, threshold, maxNodeLiterals)
		if candidate == nil {
			break
		}
		if err := collapseInto(nw, candidate); err != nil {
			return eliminated, err
		}
		eliminated++
	}
	nw.Sweep()
	return eliminated, nw.Check()
}

func pickEliminationCandidate(nw *network.Network, threshold, maxNodeLiterals int) *network.Node {
	var best *network.Node
	bestValue := threshold + 1
	for _, n := range nw.Nodes {
		if n.Kind != network.Internal || len(n.Fanout) == 0 || drivesOutput(nw, n) {
			continue
		}
		value, ok := eliminationValue(nw, n, maxNodeLiterals)
		if !ok {
			continue
		}
		if value < bestValue {
			bestValue = value
			best = n
		}
	}
	if bestValue > threshold {
		return nil
	}
	return best
}

func drivesOutput(nw *network.Network, n *network.Node) bool {
	for _, o := range nw.Outputs {
		if o.Driver == n {
			return true
		}
	}
	return false
}

// eliminationValue estimates the literal growth of collapsing n into all
// its fanouts (the SIS node value). It performs the substitutions on
// scratch copies; ok=false when any fanout would exceed maxNodeLiterals or
// the substitution is structurally impossible.
func eliminationValue(nw *network.Network, n *network.Node, maxNodeLiterals int) (int, bool) {
	before := n.Func.NumLiterals()
	growth := -before
	for _, fo := range n.Fanout {
		merged, err := substituted(fo, n)
		if err != nil {
			return 0, false
		}
		if merged.NumLiterals() > maxNodeLiterals {
			return 0, false
		}
		growth += merged.NumLiterals() - fo.Func.NumLiterals()
	}
	return growth, true
}

// substituted returns fo's cover with node n's function substituted for its
// variable, over the merged fanin space (fo.Fanin \ {n}) ∪ n.Fanin.
func substituted(fo, n *network.Node) (*sop.Cover, error) {
	v := fo.FaninIndex(n)
	if v < 0 {
		return nil, fmt.Errorf("opt: %s does not read %s", fo.Name, n.Name)
	}
	// Merged fanin list.
	var fanins []*network.Node
	index := map[*network.Node]int{}
	add := func(x *network.Node) int {
		if i, ok := index[x]; ok {
			return i
		}
		index[x] = len(fanins)
		fanins = append(fanins, x)
		return len(fanins) - 1
	}
	for i, f := range fo.Fanin {
		if i != v {
			add(f)
		}
	}
	for _, f := range n.Fanin {
		add(f)
	}
	remapFo := func(c sop.Cube) sop.Cube {
		nc := sop.NewCube(len(fanins))
		for i, l := range c {
			if i == v || l == sop.DC {
				continue
			}
			nc[index[fo.Fanin[i]]] = l
		}
		return nc
	}
	remapN := func(c sop.Cube) sop.Cube {
		nc := sop.NewCube(len(fanins))
		for i, l := range c {
			if l != sop.DC {
				nc[index[n.Fanin[i]]] = l
			}
		}
		return nc
	}
	remapCover := func(f *sop.Cover, remap func(sop.Cube) sop.Cube) *sop.Cover {
		g := sop.NewCover(len(fanins))
		for _, c := range f.Cubes {
			g.Cubes = append(g.Cubes, remap(c))
		}
		return g
	}
	fv := remapCover(fo.Func.Cofactor(v, true), remapFo)
	fnv := remapCover(fo.Func.Cofactor(v, false), remapFo)
	g := remapCover(n.Func, remapN)
	gc := remapCover(n.Func.Complement(), remapN)
	merged := g.And(fv).Or(gc.And(fnv))
	merged.Minimize()
	return merged, nil
}

// collapseInto substitutes n into every fanout and leaves n for sweeping.
func collapseInto(nw *network.Network, n *network.Node) error {
	for _, fo := range append([]*network.Node(nil), n.Fanout...) {
		merged, err := substituted(fo, n)
		if err != nil {
			return err
		}
		v := fo.FaninIndex(n)
		var fanins []*network.Node
		seen := map[*network.Node]bool{}
		for i, f := range fo.Fanin {
			if i != v && !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		for _, f := range n.Fanin {
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		if merged.NumVars != len(fanins) {
			return fmt.Errorf("opt: substitution width mismatch at %s", fo.Name)
		}
		nw.SetFunction(fo, fanins, merged)
	}
	return nil
}

// ExtractCubes greedily extracts common two-literal cubes shared by at
// least three cubes across the network, creating a new node per divisor.
// Returns the number of extractions performed.
func ExtractCubes(nw *network.Network, maxIters int) int {
	extracted := 0
	for iter := 0; iter < maxIters; iter++ {
		if !extractBestCube(nw) {
			break
		}
		extracted++
	}
	return extracted
}

// litKey identifies a literal globally: a driving node and a phase.
type litKey struct {
	node *network.Node
	neg  bool
}

type pairKey struct{ a, b litKey }

func orderedPair(a, b litKey) pairKey {
	if a.node.Name > b.node.Name || (a.node.Name == b.node.Name && a.neg && !b.neg) {
		a, b = b, a
	}
	return pairKey{a, b}
}

// extractBestCube finds the most common 2-literal cube and factors it out.
func extractBestCube(nw *network.Network) bool {
	counts := map[pairKey]int{}
	for _, n := range nw.Nodes {
		if n.Kind != network.Internal {
			continue
		}
		for _, c := range n.Func.Cubes {
			lits := cubeLits(n, c)
			for i := 0; i < len(lits); i++ {
				for j := i + 1; j < len(lits); j++ {
					counts[orderedPair(lits[i], lits[j])]++
				}
			}
		}
	}
	var best pairKey
	bestCount := 2 // need ≥3 occurrences to save literals
	found := false
	keys := make([]pairKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return pairLess(keys[i], keys[j]) })
	for _, k := range keys {
		if counts[k] > bestCount {
			bestCount = counts[k]
			best = k
			found = true
		}
	}
	if !found {
		return false
	}
	// Create the divisor node d = l1 · l2.
	div := sop.NewCover(2)
	cube := sop.NewCube(2)
	cube[0] = phaseLit(best.a.neg)
	cube[1] = phaseLit(best.b.neg)
	div.AddCube(cube)
	d := nw.AddNode(nw.FreshName("fx"), []*network.Node{best.a.node, best.b.node}, div)
	// Substitute the divisor into every cube containing both literals.
	for _, n := range append([]*network.Node(nil), nw.Nodes...) {
		if n.Kind != network.Internal || n == d {
			continue
		}
		substituteCube(nw, n, best, d)
	}
	return true
}

func pairLess(x, y pairKey) bool {
	if x.a.node.Name != y.a.node.Name {
		return x.a.node.Name < y.a.node.Name
	}
	if x.a.neg != y.a.neg {
		return !x.a.neg
	}
	if x.b.node.Name != y.b.node.Name {
		return x.b.node.Name < y.b.node.Name
	}
	return !x.b.neg && y.b.neg
}

func phaseLit(neg bool) sop.Lit {
	if neg {
		return sop.Neg
	}
	return sop.Pos
}

func cubeLits(n *network.Node, c sop.Cube) []litKey {
	var out []litKey
	for v, l := range c {
		if l != sop.DC {
			out = append(out, litKey{node: n.Fanin[v], neg: l == sop.Neg})
		}
	}
	return out
}

// substituteCube rewrites n's cubes containing both literals of the pair to
// use divisor d instead.
func substituteCube(nw *network.Network, n *network.Node, pk pairKey, d *network.Node) {
	findVar := func(k litKey) int {
		for i, f := range n.Fanin {
			if f == k.node {
				return i
			}
		}
		return -1
	}
	va, vb := findVar(pk.a), findVar(pk.b)
	if va < 0 || vb < 0 || va == vb {
		return
	}
	la, lb := phaseLit(pk.a.neg), phaseLit(pk.b.neg)
	touched := false
	for _, c := range n.Func.Cubes {
		if c[va] == la && c[vb] == lb {
			touched = true
			break
		}
	}
	if !touched {
		return
	}
	// New fanin list: existing + d.
	fanins := append(append([]*network.Node(nil), n.Fanin...), d)
	out := sop.NewCover(len(fanins))
	for _, c := range n.Func.Cubes {
		nc := sop.NewCube(len(fanins))
		copy(nc, c)
		if c[va] == la && c[vb] == lb {
			nc[va], nc[vb] = sop.DC, sop.DC
			nc[len(fanins)-1] = sop.Pos
		}
		out.Cubes = append(out.Cubes, nc)
	}
	nw.SetFunction(n, fanins, out)
}
