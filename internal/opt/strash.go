package opt

import (
	"sort"
	"strings"

	"powermap/internal/network"
)

// Strash performs structural hashing: internal nodes with identical local
// functions over identical fanin sets are merged, rewiring fanouts and
// output references to one representative. Commutative functions are
// detected up to fanin permutation via a canonical key. Iterates to a
// fixed point (merging two nodes can make their fanouts identical) and
// returns the number of nodes merged.
func Strash(nw *network.Network) int {
	merged := 0
	for {
		changed := false
		byKey := map[string]*network.Node{}
		for _, n := range nw.TopoOrder() {
			if n.Kind != network.Internal {
				continue
			}
			key := strashKey(n)
			rep, ok := byKey[key]
			if !ok {
				byKey[key] = n
				continue
			}
			// Merge n into rep.
			for _, fo := range append([]*network.Node(nil), n.Fanout...) {
				nw.ReplaceFanin(fo, n, rep)
			}
			for i := range nw.Outputs {
				if nw.Outputs[i].Driver == n {
					nw.Outputs[i].Driver = rep
				}
			}
			merged++
			changed = true
		}
		if !changed {
			break
		}
	}
	nw.Sweep()
	return merged
}

// strashKey canonicalizes (function, fanins) up to fanin permutation: the
// cover is re-expressed with fanins sorted by name, and cubes sorted.
func strashKey(n *network.Node) string {
	type col struct {
		name string
		v    int
	}
	cols := make([]col, len(n.Fanin))
	for i, f := range n.Fanin {
		cols[i] = col{name: f.Name, v: i}
	}
	// Position breaks ties so duplicate fanin signals keep a deterministic
	// column order.
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].name != cols[j].name {
			return cols[i].name < cols[j].name
		}
		return cols[i].v < cols[j].v
	})
	var cubes []string
	for _, c := range n.Func.Cubes {
		var b strings.Builder
		for _, cl := range cols {
			b.WriteString(c[cl.v].String())
		}
		cubes = append(cubes, b.String())
	}
	sort.Strings(cubes)
	var b strings.Builder
	for _, cl := range cols {
		b.WriteString(cl.name)
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(strings.Join(cubes, "+"))
	return b.String()
}
