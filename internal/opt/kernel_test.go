package opt

import (
	"context"
	"math/rand"
	"testing"

	"powermap/internal/prob"
)

func TestKernelsOfSimple(t *testing.T) {
	// f = ab + ac = a(b+c): kernels include {b + c} and f itself is not
	// cube-free (common cube a), so the cube-free form a(b+c)/a = b+c.
	text := `
.model k
.inputs a b c
.outputs y
.names a b c y
11- 1
1-1 1
.end
`
	nw := mustParse(t, text)
	y := nw.NodeByName("y")
	ks := kernelsOf(globalCover(y), 10)
	found := false
	for _, k := range ks {
		if k.key() == "b + c" {
			found = true
		}
	}
	if !found {
		keys := []string{}
		for _, k := range ks {
			keys = append(keys, k.key())
		}
		t.Errorf("kernel b+c not found; have %v", keys)
	}
}

func TestWeakDivision(t *testing.T) {
	// f = ad + bd + ae + be + c; d = a + b → f/d = {d, e}, r = c.
	text := `
.model w
.inputs a b c d e
.outputs y
.names a b c d e y
1--1- 1
-1-1- 1
1---1 1
-1--1 1
--1-- 1
.end
`
	nw := mustParse(t, text)
	y := nw.NodeByName("y")
	f := globalCover(y)
	a, b := nw.NodeByName("a"), nw.NodeByName("b")
	d := gCover{gCube{{node: a}}, gCube{{node: b}}}
	q := weakDivide(f, sortGCover(d))
	if len(q) != 2 {
		t.Fatalf("quotient has %d cubes, want 2: %v", len(q), sortGCover(q).key())
	}
}

func TestExtractKernelsSharedDivisor(t *testing.T) {
	// (a+b) appears multiplied into two nodes: extraction must create a
	// shared node and reduce literals.
	text := `
.model kx
.inputs a b c d e
.outputs y z
.names a b c y
1-1 1
-11 1
.names a b d e z
1-1- 1
-11- 1
1--1 1
-1-1 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	before := nw.Stats().Literals
	n := ExtractKernels(nw, 10)
	if n == 0 {
		t.Fatal("no kernel extracted")
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
	if after := nw.Stats().Literals; after >= before {
		t.Errorf("kernel extraction did not reduce literals: %d -> %d", before, after)
	}
}

func TestExtractKernelsWithinOneNode(t *testing.T) {
	// f = ac + bc + ad + bd = (a+b)(c+d): repeated divisor inside one node.
	text := `
.model single
.inputs a b c d
.outputs y
.names a b c d y
1-1- 1
-11- 1
1--1 1
-1-1 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	before := nw.Stats().Literals
	n := ExtractKernels(nw, 10)
	if n == 0 {
		t.Fatal("no kernel extracted")
	}
	assertEquivalent(t, ref, nw)
	if after := nw.Stats().Literals; after >= before {
		t.Errorf("no literal saving: %d -> %d", before, after)
	}
}

func TestExtractKernelsNoCandidates(t *testing.T) {
	// Single-cube nodes have no multi-cube kernels.
	text := `
.model none
.inputs a b
.outputs y
.names a b y
11 1
.end
`
	nw := mustParse(t, text)
	if n := ExtractKernels(nw, 10); n != 0 {
		t.Errorf("extracted %d kernels from a kernel-free network", n)
	}
}

func TestExtractKernelsRandomPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for trial := 0; trial < 15; trial++ {
		nw := randomNetwork(r, 5, 8)
		ref := nw.Duplicate()
		ExtractKernels(nw, 20)
		if err := nw.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ok, err := prob.EquivalentOutputs(context.Background(), ref, nw)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: kernel extraction changed the function", trial)
		}
	}
}

func TestOptimizeWithKernels(t *testing.T) {
	// The full script including kernel extraction preserves functions and
	// reports kernel stats.
	text := `
.model script
.inputs a b c d e f
.outputs y z
.names a b c y
1-1 1
-11 1
.names a b d e f z
1-1-- 1
-11-- 1
1--11 1
-1-11 1
.end
`
	nw := mustParse(t, text)
	ref := nw.Duplicate()
	st, err := Optimize(context.Background(), nw, Options{EliminateThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, ref, nw)
	if st.KernelsExtracted == 0 {
		t.Error("script extracted no kernels")
	}
	_ = st
}

func TestGCoverHelpers(t *testing.T) {
	nw := mustParse(t, ".model h\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n")
	y := nw.NodeByName("y")
	f := globalCover(y)
	if f.numLiterals() != 4 {
		t.Errorf("numLiterals = %d", f.numLiterals())
	}
	if cc := commonCube(f); len(cc) != 0 {
		t.Errorf("xor has common cube %v", cc)
	}
	if got := f.key(); got != "!a*b + !b*a" && got != "!b*a + !a*b" {
		t.Errorf("cover key %q", got)
	}
}
