package mapper

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"powermap/internal/genlib"
	"powermap/internal/network"
)

// WriteBLIF serializes the mapped netlist in SIS mapped-BLIF form: one
// ".gate" statement per cell instance, with formal=actual pin bindings.
func (nl *Netlist) WriteBLIF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mapped by powermap: %d gates, area %.0f, delay %.2f ns, power %.2f uW\n",
		nl.Report.Gates, nl.Report.GateArea, nl.Report.Delay, nl.Report.PowerUW)
	fmt.Fprintf(bw, ".model %s\n", nl.Name)
	writeList(bw, ".inputs", nl.sub.PINames())
	writeList(bw, ".outputs", nl.sub.OutputNames())
	// Topological emission keeps the file readable; gates are already
	// stored sorted by root name, so sort by arrival then name instead.
	gates := append([]*Gate(nil), nl.Gates...)
	sort.SliceStable(gates, func(i, j int) bool {
		ai, aj := nl.arrival[gates[i].Root], nl.arrival[gates[j].Root]
		if ai != aj {
			return ai < aj
		}
		return gates[i].Root.Name < gates[j].Root.Name
	})
	for _, g := range gates {
		fmt.Fprintf(bw, ".gate %s", g.Cell.Name)
		for pin, in := range g.Inputs {
			fmt.Fprintf(bw, " %s=%s", g.Cell.Pins[pin].Name, in.Name)
		}
		fmt.Fprintf(bw, " %s=%s\n", g.Cell.Output, g.Root.Name)
	}
	// Outputs driven by a signal of a different name need alias wiring;
	// mapped BLIF has no buffers, so emit a comment documenting the alias
	// and a .names buffer for tools that accept mixed form.
	for _, o := range nl.sub.Outputs {
		if o.Driver.Name != o.Name {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", o.Driver.Name, o.Name)
		}
	}
	fmt.Fprintf(bw, ".end\n")
	return bw.Flush()
}

func writeList(w io.Writer, directive string, names []string) {
	fmt.Fprintf(w, "%s", directive)
	col := len(directive)
	for _, n := range names {
		if col+len(n)+1 > 78 {
			fmt.Fprintf(w, " \\\n   ")
			col = 4
		}
		fmt.Fprintf(w, " %s", n)
		col += len(n) + 1
	}
	fmt.Fprintf(w, "\n")
}

// WriteDot renders the mapped netlist as a Graphviz digraph: sources as
// diamonds, gates as boxes labelled "cell\nsignal @arrival", outputs as
// double circles.
func (nl *Netlist) WriteDot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", nl.Name)
	for _, pi := range nl.sub.PIs {
		fmt.Fprintf(bw, "  %q [shape=diamond,label=%q];\n", pi.Name, pi.Name)
	}
	for _, g := range nl.Gates {
		label := fmt.Sprintf("%s\\n%s @%.2f", g.Cell.Name, g.Root.Name, nl.arrival[g.Root])
		fmt.Fprintf(bw, "  %q [shape=box,label=%q];\n", g.Root.Name, label)
		for pin, in := range g.Inputs {
			fmt.Fprintf(bw, "  %q -> %q [label=%q];\n", in.Name, g.Root.Name, g.Cell.Pins[pin].Name)
		}
	}
	for _, o := range nl.sub.Outputs {
		port := "out_" + o.Name
		fmt.Fprintf(bw, "  %q [shape=doublecircle,label=%q];\n", port, o.Name)
		fmt.Fprintf(bw, "  %q -> %q;\n", o.Driver.Name, port)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// ReadMappedBLIF parses a mapped-BLIF file (".gate" statements over cells
// of lib) into a plain Boolean network in which every gate instance is a
// node carrying the cell's SOP, suitable for equivalence checking against
// the pre-mapping network.
func ReadMappedBLIF(r io.Reader, lib *genlib.Library) (*network.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	nw := network.New("mapped")
	type pendingGate struct {
		line    int
		cell    *genlib.Cell
		actuals []string // by pin order
		output  string
	}
	type pendingBuf struct {
		line     int
		src, dst string
	}
	var gates []pendingGate
	var bufs []pendingBuf
	var outputs []string
	lineNo := 0
	var lastNames *pendingBuf
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				nw.Name = fields[1]
			}
		case ".inputs":
			for _, name := range fields[1:] {
				if name == "\\" {
					continue
				}
				nw.AddPI(name)
			}
		case ".outputs":
			for _, name := range fields[1:] {
				if name == "\\" {
					continue
				}
				outputs = append(outputs, name)
			}
		case ".gate":
			if len(fields) < 3 {
				return nil, fmt.Errorf("mapper: line %d: malformed .gate", lineNo)
			}
			cell := lib.CellByName(fields[1])
			if cell == nil {
				return nil, fmt.Errorf("mapper: line %d: unknown cell %q", lineNo, fields[1])
			}
			pg := pendingGate{line: lineNo, cell: cell, actuals: make([]string, cell.NumInputs())}
			for _, kv := range fields[2:] {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					return nil, fmt.Errorf("mapper: line %d: malformed binding %q", lineNo, kv)
				}
				formal, actual := kv[:eq], kv[eq+1:]
				if formal == cell.Output {
					pg.output = actual
					continue
				}
				idx := cell.PinIndex(formal)
				if idx < 0 {
					return nil, fmt.Errorf("mapper: line %d: cell %s has no pin %q", lineNo, cell.Name, formal)
				}
				pg.actuals[idx] = actual
			}
			if pg.output == "" {
				return nil, fmt.Errorf("mapper: line %d: .gate without output binding", lineNo)
			}
			for i, a := range pg.actuals {
				if a == "" {
					return nil, fmt.Errorf("mapper: line %d: pin %s unbound", lineNo, cell.Pins[i].Name)
				}
			}
			gates = append(gates, pg)
		case ".names":
			// Only the 1-input buffer form emitted by WriteBLIF.
			if len(fields) != 3 {
				return nil, fmt.Errorf("mapper: line %d: only buffer .names supported in mapped BLIF", lineNo)
			}
			lastNames = &pendingBuf{line: lineNo, src: fields[1], dst: fields[2]}
		case "1":
			if lastNames == nil {
				return nil, fmt.Errorf("mapper: line %d: stray cover row", lineNo)
			}
			bufs = append(bufs, *lastNames)
			lastNames = nil
		case ".end":
		default:
			if fields[0] == "1" {
				continue
			}
			return nil, fmt.Errorf("mapper: line %d: unsupported construct %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mapper: read: %w", err)
	}
	// Create nodes in dependency order.
	byOutput := make(map[string]*pendingGate, len(gates))
	for i := range gates {
		g := &gates[i]
		if byOutput[g.output] != nil {
			return nil, fmt.Errorf("mapper: line %d: signal %s driven twice", g.line, g.output)
		}
		byOutput[g.output] = g
	}
	state := make(map[string]int)
	var create func(name string) error
	create = func(name string) error {
		if nw.NodeByName(name) != nil {
			return nil
		}
		g, ok := byOutput[name]
		if !ok {
			return fmt.Errorf("mapper: signal %s is never driven", name)
		}
		switch state[name] {
		case 1:
			return fmt.Errorf("mapper: combinational cycle through %s", name)
		case 2:
			return nil
		}
		state[name] = 1
		for _, a := range g.actuals {
			if err := create(a); err != nil {
				return err
			}
		}
		fanins := make([]*network.Node, len(g.actuals))
		for i, a := range g.actuals {
			fanins[i] = nw.NodeByName(a)
		}
		nw.AddNode(name, fanins, g.cell.Cover())
		state[name] = 2
		return nil
	}
	for name := range byOutput {
		if err := create(name); err != nil {
			return nil, err
		}
	}
	alias := make(map[string]string, len(bufs))
	for _, b := range bufs {
		alias[b.dst] = b.src
	}
	for _, name := range outputs {
		drvName := name
		if src, ok := alias[name]; ok {
			drvName = src
		}
		drv := nw.NodeByName(drvName)
		if drv == nil {
			return nil, fmt.Errorf("mapper: output %s is never driven", name)
		}
		nw.MarkOutput(name, drv)
	}
	if err := nw.Check(); err != nil {
		return nil, fmt.Errorf("mapper: reconstructed network invalid: %w", err)
	}
	return nw, nil
}
