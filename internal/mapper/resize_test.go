package mapper

import (
	"context"
	"testing"

	"powermap/internal/genlib"
)

func TestRecoverDriveReducesPower(t *testing.T) {
	sub, model := subject(t, smallBlif)
	lib := genlib.Lib2()
	// Map tightly so high-drive variants get used.
	nl, err := Map(context.Background(), sub, model, Options{Objective: AreaDelay, Library: lib, Relax: Float64(0.0001)})
	if err != nil {
		t.Fatal(err)
	}
	before := nl.Report
	// Generous budget: 1.5× the achieved delay leaves room to downsize.
	required := map[string]float64{}
	for name, a := range nl.OutputArrivals() {
		required[name] = a * 1.5
	}
	swaps := nl.RecoverDrive(lib, required)
	after := nl.Report
	if swaps == 0 {
		t.Skip("no resizable gates in this mapping")
	}
	if after.PowerUW > before.PowerUW+1e-9 {
		t.Errorf("recovery increased power: %.3f -> %.3f", before.PowerUW, after.PowerUW)
	}
	if !nl.meetsRequired(required) {
		t.Error("recovery violated the required times")
	}
	if err := nl.Verify(model); err != nil {
		t.Fatalf("recovery broke functionality: %v", err)
	}
}

func TestRecoverDriveFrozenDelay(t *testing.T) {
	sub, model := subject(t, smallBlif)
	lib := genlib.Lib2()
	nl, err := Map(context.Background(), sub, model, Options{Objective: PowerDelay, Library: lib, Relax: Float64(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	before := nl.Report
	nl.RecoverDrive(lib, nil) // nil: freeze current delay
	if nl.Report.Delay > before.Delay+1e-9 {
		t.Errorf("frozen-delay recovery slowed the circuit: %.3f -> %.3f",
			before.Delay, nl.Report.Delay)
	}
	if nl.Report.PowerUW > before.PowerUW+1e-9 {
		t.Errorf("recovery increased power: %.3f -> %.3f", before.PowerUW, nl.Report.PowerUW)
	}
}

func TestEquivalenceClasses(t *testing.T) {
	lib := genlib.Lib2()
	classes := equivalenceClasses(lib)
	// The three inverters form one class, sorted by pin load.
	invs := classes[cellClassKey(lib.CellByName("inv1"))]
	if len(invs) != 4 {
		t.Fatalf("inverter class has %d members, want 4", len(invs))
	}
	if invs[0].Name != "inv1" || invs[3].Name != "inv8" {
		t.Errorf("inverter class order: %v %v %v", invs[0].Name, invs[1].Name, invs[3].Name)
	}
	// nand2 and nand2x share a class; nand3 does not.
	nds := classes[cellClassKey(lib.CellByName("nand2"))]
	if len(nds) != 2 {
		t.Errorf("nand2 class has %d members, want 2", len(nds))
	}
	for _, c := range nds {
		if c.Name == "nand3" {
			t.Error("nand3 grouped with nand2")
		}
	}
}
